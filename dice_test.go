package dice

import (
	"context"
	"strings"
	"testing"
)

var quickCfg = ExperimentConfig{Quick: true, Seed: 1}

func TestFacadeDeployAndCheck(t *testing.T) {
	topo := Line(3)
	d, err := Deploy(topo, DeployOptions{Seed: 1})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	d.Converge()
	if v := CheckDeployment(d, DefaultProperties(topo)); len(v) != 0 {
		t.Fatalf("healthy deployment reported violations: %v", v)
	}
	dur, size, err := ConvergeAndSnapshotSize(d)
	if err != nil || size == 0 || dur < 0 {
		t.Errorf("snapshot measurement broken: %v %d %v", dur, size, err)
	}
}

func TestFacadeEngineDetectsHijack(t *testing.T) {
	topo := Line(3)
	victim := topo.Nodes[0].Prefixes[0]
	opts := DeployOptions{Seed: 1, ConfigOverride: ApplyConfigFaults(MisOrigination{Router: "R3", Prefix: victim})}
	d, err := Deploy(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	d.Converge()
	res, err := NewEngine(d, topo, EngineOptions{Explorer: "R2", MaxInputs: 4, FuzzSeeds: 2, UseConcolic: true, Seed: 1, ClusterOptions: opts}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Detected(OperatorMistake) {
		t.Fatalf("hijack not detected through the public API")
	}
}

func TestFacadeCampaignStreamsDetections(t *testing.T) {
	topo := Line(3)
	victim := topo.Nodes[0].Prefixes[0]
	opts := DeployOptions{Seed: 1, ConfigOverride: ApplyConfigFaults(MisOrigination{Router: "R3", Prefix: victim})}
	d, err := Deploy(topo, opts)
	if err != nil {
		t.Fatal(err)
	}
	d.Converge()

	campaign := NewCampaign(d, topo,
		WithStrategy(AllNodesStrategy{}),
		WithBudget(Budget{TotalInputs: 12}),
		WithSeed(1),
		WithClusterOptions(opts),
		WithWorkers(2))
	events := campaign.Events()
	streamed := make(chan int, 1)
	go func() {
		n := 0
		for ev := range events {
			if ev.Kind == EventDetection {
				n++
			}
		}
		streamed <- n
	}()
	res, err := campaign.Run(context.Background())
	if err != nil {
		t.Fatalf("campaign Run: %v", err)
	}
	if !res.Detected(OperatorMistake) {
		t.Fatalf("hijack not detected through the campaign API")
	}
	if n := <-streamed; n == 0 || n != len(res.Detections) {
		t.Errorf("streamed %d detection events, want %d (one per merged detection)", n, len(res.Detections))
	}
	if res.Strategy != "all-nodes" || len(res.Units) != 3 {
		t.Errorf("campaign plan wrong: strategy=%s units=%d", res.Strategy, len(res.Units))
	}
}

func TestRunE8Quick(t *testing.T) {
	res, err := RunE8(quickCfg)
	if err != nil {
		t.Fatalf("RunE8: %v", err)
	}
	if res.Routers != 27 || res.Units != 27 {
		t.Errorf("E8 should sweep all 27 routers: %+v", res)
	}
	if !res.SameDetections {
		t.Errorf("serial and parallel campaigns must find the same detections")
	}
	if res.SerialDuration <= 0 || res.ParallelDuration <= 0 || res.Speedup <= 0 {
		t.Errorf("timing accounting missing: %+v", res)
	}
	if res.Detections == 0 || res.DetectionsStreamed != res.Detections {
		t.Errorf("streamed %d detections, merged %d — should match", res.DetectionsStreamed, res.Detections)
	}
	if !strings.Contains(res.String(), "campaign scaling") {
		t.Errorf("report rendering broken")
	}
}

func TestRunE1Quick(t *testing.T) {
	res, err := RunE1(quickCfg)
	if err != nil {
		t.Fatalf("RunE1: %v", err)
	}
	if res.Routers != 27 {
		t.Errorf("demo must use 27 routers, got %d", res.Routers)
	}
	if !res.DetectedClasses["operator-mistake"] {
		t.Errorf("demo run should detect at least the operator mistake; got %v", res.Detections)
	}
	if !strings.Contains(res.String(), "27 routers") {
		t.Errorf("report rendering broken")
	}
}

func TestRunE2Quick(t *testing.T) {
	res, err := RunE2(quickCfg)
	if err != nil {
		t.Fatalf("RunE2: %v", err)
	}
	if !res.LiveStateUntouched {
		t.Errorf("exploration must not perturb the deployed system")
	}
	if res.ClonesCreated == 0 || res.SnapshotBytes == 0 {
		t.Errorf("workflow accounting incomplete: %+v", res)
	}
	if res.String() == "" {
		t.Errorf("report rendering broken")
	}
}

func TestRunE3Quick(t *testing.T) {
	rows, err := RunE3(quickCfg)
	if err != nil {
		t.Fatalf("RunE3: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("quick E3 should produce 3 rows, got %d", len(rows))
	}
	classes := map[string]bool{}
	for _, r := range rows {
		classes[r.Class] = true
	}
	for _, want := range []string{"operator-mistake", "programming-error", "policy-conflict"} {
		if !classes[want] {
			t.Errorf("E3 missing class %s", want)
		}
	}
	if FormatE3(rows) == "" {
		t.Errorf("E3 formatting broken")
	}
}

func TestRunE4Quick(t *testing.T) {
	res, err := RunE4(quickCfg)
	if err != nil {
		t.Fatalf("RunE4: %v", err)
	}
	if res.BaselinePerUpdate <= 0 || res.InstrumentedPerUpdate <= 0 {
		t.Errorf("per-update timing missing: %+v", res)
	}
	if res.CheckpointBytesNode <= 0 || res.SnapshotTotalBytes <= 0 {
		t.Errorf("checkpoint accounting missing: %+v", res)
	}
	if res.String() == "" {
		t.Errorf("report rendering broken")
	}
}

func TestRunE5Quick(t *testing.T) {
	rows, err := RunE5(quickCfg)
	if err != nil {
		t.Fatalf("RunE5: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("E5 should compare 3 modes")
	}
	var combined *E5Row
	for i := range rows {
		if rows[i].Mode == "concolic+fuzzing" {
			combined = &rows[i]
		}
	}
	if combined == nil || !combined.FoundBug {
		t.Errorf("combined exploration should find the guarded bug: %+v", rows)
	}
	if FormatE5(rows) == "" {
		t.Errorf("E5 formatting broken")
	}
}

func TestRunE6Quick(t *testing.T) {
	res, err := RunE6(quickCfg)
	if err != nil {
		t.Fatalf("RunE6: %v", err)
	}
	if res.ValidRatio != 1.0 {
		t.Errorf("grammar-based generation should be 100%% valid, got %.3f", res.ValidRatio)
	}
	if res.MutatedRatio >= 1.0 {
		t.Errorf("mutated generation should include invalid messages")
	}
	if res.MeanBodyBytes <= 0 || res.String() == "" {
		t.Errorf("fuzzer metrics incomplete: %+v", res)
	}
}

func TestRunE7Quick(t *testing.T) {
	res, err := RunE7(quickCfg)
	if err != nil {
		t.Fatalf("RunE7: %v", err)
	}
	if !res.BothDetectHijack {
		t.Errorf("hijack should be detectable through the narrow interface")
	}
	if res.ReductionFactor <= 1 {
		t.Errorf("narrow interface should disclose less than full state (factor %.1f)", res.ReductionFactor)
	}
	if res.String() == "" {
		t.Errorf("report rendering broken")
	}
}

func TestRunE10Quick(t *testing.T) {
	res, err := RunE10(quickCfg)
	if err != nil {
		t.Fatalf("RunE10: %v", err)
	}
	if res.Routers != 27 || res.Domains != 27 {
		t.Errorf("E10 should federate the demo per AS: %+v", res)
	}
	if !res.SameDetections {
		t.Errorf("federated campaign must find exactly the centralized detections")
	}
	if res.Detections == 0 {
		t.Errorf("campaign found nothing")
	}
	if res.Summaries == 0 || res.SummaryBytes == 0 {
		t.Errorf("federated run disclosed nothing: %+v", res)
	}
	if res.ReductionVsFullState <= 1 {
		t.Errorf("per-input summary traffic should undercut full-state sharing (%.1fx)", res.ReductionVsFullState)
	}
	if !strings.Contains(res.String(), "federated vs centralized") {
		t.Errorf("report rendering broken")
	}
}

func TestRunE11Quick(t *testing.T) {
	res, err := RunE11(quickCfg)
	if err != nil {
		t.Fatalf("RunE11: %v", err)
	}
	if res.Routers != 27 || res.Implementations["bird"] != 12 || res.Implementations["frr"] != 15 {
		t.Errorf("E11 should mix 12 bird + 15 frr routers: %+v", res.Implementations)
	}
	if res.Divergences == 0 || len(res.DivergentNodes) == 0 {
		t.Fatalf("mixed campaign found no implementation divergences")
	}
	if !res.SteadyStateDivergence {
		t.Errorf("seeded divergence must already hold in the converged deployment")
	}
	if !res.SameSafetyClasses {
		t.Errorf("heterogeneity must not mask a fault class")
	}
	if res.SafetyDetections == 0 {
		t.Errorf("mixed campaign found no safety detections")
	}
	if !res.DivergenceExplainsDiffs {
		t.Errorf("%d safety detections moved to nodes the divergence checker did not flag", res.SafetyDiffering)
	}
	if !strings.Contains(res.String(), "heterogeneous backends") {
		t.Errorf("report rendering broken")
	}
}

func TestRunE14Quick(t *testing.T) {
	res, err := RunE14(quickCfg)
	if err != nil {
		t.Fatalf("RunE14: %v", err)
	}
	if res.Routers != 27 || len(res.Implementations) != 3 {
		t.Fatalf("E14 should run a three-way 27-router mix: %+v", res.Implementations)
	}
	if res.Implementations["bird"] == 0 || res.Implementations["obgpd"] == 0 || res.Implementations["frr"] == 0 {
		t.Errorf("a backend is missing from the mix: %+v", res.Implementations)
	}
	if res.Divergences == 0 || len(res.DivergentNodes) == 0 {
		t.Fatalf("three-way campaign found no implementation divergences")
	}
	if res.MajorityOutvoted+res.PairwiseLegal != res.Divergences {
		t.Errorf("vote classes don't partition the divergences: %d + %d != %d",
			res.MajorityOutvoted, res.PairwiseLegal, res.Divergences)
	}
	if res.MajorityOutvoted == 0 {
		t.Errorf("no divergence classified as majority-outvoted (2-vs-1)")
	}
	if !res.DeterministicDivergence {
		t.Errorf("re-running the mixed campaign changed the divergence set")
	}
	if !res.SteadyStateDivergence {
		t.Errorf("seeded divergence must already hold in the converged deployment")
	}
	if !res.SameSafetyClasses {
		t.Errorf("three-way heterogeneity must not mask a fault class")
	}
	if !res.DivergenceExplainsDiffs {
		t.Errorf("%d safety detections moved to nodes the divergence checker did not flag", res.SafetyDiffering)
	}
	if res.ProcChecked {
		if !res.ProcSameDetections {
			t.Errorf("proc:obgpd campaign detections differ from in-process obgpd")
		}
	} else if res.ProcSkipReason == "" {
		t.Errorf("process-isolation leg skipped without a recorded reason")
	}
	if !strings.Contains(res.String(), "three-way differential conformance") {
		t.Errorf("report rendering broken")
	}
}

func TestRunE12Quick(t *testing.T) {
	res, err := RunE12(quickCfg)
	if err != nil {
		t.Fatalf("E12: %v", err)
	}
	if res.Epochs < 2 {
		t.Fatalf("soak took %d epochs, want >= 2", res.Epochs)
	}
	if res.Findings == 0 || !res.DetectedClasses["operator-mistake"] {
		t.Fatalf("live soak missed the planted mis-origination: %+v", res)
	}
	if res.FirstDetectionEpoch < 1 || res.FirstDetectionEpoch > 2 {
		t.Errorf("first detection in epoch %d, want within the first two", res.FirstDetectionEpoch)
	}
	if !res.AllReverified {
		t.Errorf("not every finding's minimized trace re-reproduced from a cold clone")
	}
	if res.TraceStepsAfter > res.TraceStepsBefore {
		t.Errorf("minimization grew traces: %d -> %d", res.TraceStepsBefore, res.TraceStepsAfter)
	}
	if res.CampaignsDeduped == 0 || res.InputsSaved == 0 {
		t.Errorf("idle epochs not deduped: %+v", res)
	}
	if res.SnapshotBytesPerEpoch <= 0 || res.DeltaBytesPerEpoch <= 0 {
		t.Errorf("epoch footprint not measured: %+v", res)
	}
	if res.DeltaBytesPerEpoch >= res.SnapshotBytesPerEpoch {
		t.Errorf("delta measurement not smaller than full: %d vs %d", res.DeltaBytesPerEpoch, res.SnapshotBytesPerEpoch)
	}
	if s := res.String(); !strings.Contains(s, "E12") || !strings.Contains(s, "dedupe") {
		t.Errorf("report rendering broken:\n%s", s)
	}
}

func TestRunE9Quick(t *testing.T) {
	res, err := RunE9(ExperimentConfig{Quick: true, Seed: 1})
	if err != nil {
		t.Fatalf("RunE9: %v", err)
	}
	if res.Routers != 27 {
		t.Errorf("routers = %d, want 27", res.Routers)
	}
	if res.CloneSpeedup < 1 {
		t.Errorf("pooled reset slower than cold rebuild: %.2fx", res.CloneSpeedup)
	}
	if !res.SameDetections {
		t.Errorf("pooled campaign found different detections than cold campaign")
	}
	if res.Detections == 0 {
		t.Errorf("campaign found nothing")
	}
	if res.PooledColdBuilds < 1 || res.PooledResets == 0 {
		t.Errorf("pooled campaign lifecycle stats %d cold / %d resets", res.PooledColdBuilds, res.PooledResets)
	}
	if res.MeanDeltaBytes <= 0 || res.MeanDeltaBytes >= res.MeanNodeBytes {
		t.Errorf("delta accounting %d of %d bytes; want a real saving", res.MeanDeltaBytes, res.MeanNodeBytes)
	}
	if res.String() == "" {
		t.Errorf("empty report")
	}
}

func TestRunE13Quick(t *testing.T) {
	res, err := RunE13(quickCfg)
	if err != nil {
		t.Fatalf("E13: %v", err)
	}
	if !res.SameDetectionsOneAgent || !res.SameDetectionsThreeAgents {
		t.Fatalf("distributed runs diverged from in-process: 1-agent same=%v 3-agent same=%v",
			res.SameDetectionsOneAgent, res.SameDetectionsThreeAgents)
	}
	if res.Detections == 0 {
		t.Fatal("campaign found no detections; the planted hijack should be caught")
	}
	if res.Shards == 0 || res.AgentsLeased == 0 {
		t.Fatalf("no distribution happened: %d shards, %d agents leased", res.Shards, res.AgentsLeased)
	}
	if res.BaselineBytes == 0 || res.ShardBytes == 0 || res.ResultBytes == 0 {
		t.Fatalf("wire accounting empty: baseline=%d shard=%d result=%d",
			res.BaselineBytes, res.ShardBytes, res.ResultBytes)
	}
	if res.ReductionVsFullState <= 1 {
		t.Errorf("result traffic not below full-state counterfactual: %.2fx", res.ReductionVsFullState)
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}

func TestRunE15Quick(t *testing.T) {
	res, err := RunE15(quickCfg)
	if err != nil {
		t.Fatalf("E15: %v", err)
	}
	if res.Routers != 27 || res.Epochs == 0 {
		t.Fatalf("E15 should soak the 27-router demo: %d routers, %d epochs", res.Routers, res.Epochs)
	}
	if !res.SameFindings {
		t.Fatal("instrumented soak changed the finding set")
	}
	if res.Findings == 0 {
		t.Fatal("soak over the planted faults produced no findings")
	}
	if !res.ExpositionDeterministic {
		t.Fatal("32 scrapes of settled state were not byte-identical")
	}
	if res.SeriesCount == 0 || res.ExpositionBytes == 0 {
		t.Fatalf("exposition empty: %d series, %d bytes", res.SeriesCount, res.ExpositionBytes)
	}
	if res.SpansRecorded == 0 {
		t.Error("no campaign spans recorded")
	}
	if res.HistoryBytes == 0 || !res.HistoryRoundTrips {
		t.Fatalf("soak history artifact broken: %d bytes, round-trips=%v", res.HistoryBytes, res.HistoryRoundTrips)
	}
	if res.String() == "" {
		t.Error("empty report")
	}
}
