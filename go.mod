module github.com/dice-project/dice

go 1.24
