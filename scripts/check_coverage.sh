#!/usr/bin/env bash
# check_coverage.sh FLOOR LOGFILE
#
# Enforces a per-package coverage floor over the output of
# `go test -cover ./...` (captured in LOGFILE). Every package that ran tests
# must report coverage >= FLOOR percent; packages without test files (main
# packages, examples) are listed but not gated.
set -eu

floor="${1:?usage: check_coverage.sh FLOOR LOGFILE}"
log="${2:?usage: check_coverage.sh FLOOR LOGFILE}"

fail=0
checked=0
while read -r pkg pct; do
  checked=$((checked + 1))
  p="${pct%\%}"
  if awk -v a="$p" -v b="$floor" 'BEGIN{exit !(a+0 < b+0)}'; then
    echo "FAIL  $pkg  $pct < ${floor}%"
    fail=1
  else
    echo "ok    $pkg  $pct"
  fi
done < <(awk '$1 == "ok" { for (i = 1; i <= NF; i++) if ($i == "coverage:" && $(i+1) ~ /^[0-9.]+%$/) print $2, $(i+1) }' "$log")

if [ "$checked" -eq 0 ]; then
  echo "FAIL  no coverage lines found in $log"
  exit 1
fi

echo
grep -E '^\?' "$log" | sed 's/^/untested (not gated): /' || true

exit "$fail"
