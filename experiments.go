package dice

import (
	"bytes"
	"context"
	"fmt"
	mrand "math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/dice-project/dice/internal/agent"
	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/control"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/fuzz"
	"github.com/dice-project/dice/internal/live"
	"github.com/dice-project/dice/internal/node/procdriver"
	"github.com/dice-project/dice/internal/obs"
	"github.com/dice-project/dice/internal/serve"
	"github.com/dice-project/dice/internal/topology"
)

// ExperimentConfig controls the experiment harness. Quick mode shrinks
// budgets so the whole suite runs in seconds (used by unit tests and CI);
// the full mode is what cmd/dice-bench and EXPERIMENTS.md report.
type ExperimentConfig struct {
	Quick bool
	Seed  int64
}

func (c ExperimentConfig) inputs(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// ---------------------------------------------------------------------------
// E1 — the paper's demo (Figure 1): DiCE explores a 27-router deployment with
// the three fault classes planted and reports what it detects.
// ---------------------------------------------------------------------------

// E1Result summarizes the demo run.
type E1Result struct {
	Routers           int
	Links             int
	ConvergenceEvents int
	SnapshotBytes     int
	SnapshotDuration  time.Duration
	InputsExplored    int
	UniquePaths       int
	Detections        map[string]int
	DetectedClasses   map[string]bool
	Duration          time.Duration
}

// RunE1 runs the demo experiment.
func RunE1(cfg ExperimentConfig) (*E1Result, error) {
	topo := topology.Demo27()
	victim := topo.Nodes[26].Prefixes[0] // a tier-3 stub's prefix
	trigger := bgp.NewCommunity(65001, 666)

	cfgFaults := []faults.ConfigFault{
		faults.MisOrigination{Router: "R12", Prefix: victim},
		faults.MissingImportFilter{Router: "R1", Peer: "R4"},
		faults.DisputeWheel{Routers: []string{"R1", "R2", "R3"}, Prefix: topo.Nodes[12].Prefixes[0]},
	}
	bug := faults.CommunityCrash("R1", trigger)

	copts := cluster.Options{
		Seed:           cfg.Seed,
		ConfigOverride: faults.ApplyConfigFaults(cfgFaults...),
		MaxEvents:      300000,
	}
	live, err := cluster.Build(topo, copts)
	if err != nil {
		return nil, err
	}
	faults.InstallCodeFaults(live.Routers, bug)
	events := live.Converge()

	campaign := NewCampaign(live, topo,
		WithUnits(Unit{
			Explorer:  "R1",
			FromPeer:  "R4",
			MaxInputs: cfg.inputs(48, 10),
			FuzzSeeds: cfg.inputs(10, 4),
			Seed:      cfg.Seed,
		}),
		WithSeed(cfg.Seed),
		WithCodeFaults(bug),
		WithClusterOptions(copts),
		WithShadowMaxEvents(60000),
		WithWorkers(1))
	cres, err := campaign.Run(context.Background())
	if err != nil {
		return nil, err
	}
	res := cres.Units[0]
	res.Duration = cres.Duration

	out := &E1Result{
		Routers:           len(topo.Nodes),
		Links:             len(topo.Links),
		ConvergenceEvents: events,
		SnapshotBytes:     res.SnapshotBytes,
		SnapshotDuration:  res.SnapshotDuration,
		InputsExplored:    res.InputsExplored,
		UniquePaths:       res.ExplorerStats.UniquePaths,
		Detections:        map[string]int{},
		DetectedClasses:   map[string]bool{},
		Duration:          res.Duration,
	}
	for _, d := range res.Detections {
		out.Detections[d.Class.String()]++
		out.DetectedClasses[d.Class.String()] = true
	}
	return out, nil
}

// String renders the result as the demo's textual report.
func (r *E1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E1 (Figure 1 demo): %d routers, %d links\n", r.Routers, r.Links)
	fmt.Fprintf(&b, "  convergence events       %d\n", r.ConvergenceEvents)
	fmt.Fprintf(&b, "  snapshot                 %d bytes in %v\n", r.SnapshotBytes, r.SnapshotDuration)
	fmt.Fprintf(&b, "  inputs explored          %d (%d unique paths)\n", r.InputsExplored, r.UniquePaths)
	for class, n := range r.Detections {
		fmt.Fprintf(&b, "  detected %-22s %d violations\n", class+":", n)
	}
	fmt.Fprintf(&b, "  total wall-clock         %v\n", r.Duration)
	return b.String()
}

// ---------------------------------------------------------------------------
// E2 — the DiCE workflow of Figure 2: snapshot, clone, explore, check, and
// the isolation guarantee.
// ---------------------------------------------------------------------------

// E2Result verifies and quantifies each step of the workflow.
type E2Result struct {
	Nodes              int
	SnapshotDuration   time.Duration
	SnapshotBytes      int
	PerNodeBytes       int
	InFlightMessages   int
	ClonesCreated      int
	InputsExplored     int
	ChecksRun          int
	LiveStateUntouched bool
}

// RunE2 runs the workflow experiment on a 5-node topology.
func RunE2(cfg ExperimentConfig) (*E2Result, error) {
	topo := topology.Star(5)
	copts := cluster.Options{Seed: cfg.Seed}
	live, err := cluster.Build(topo, copts)
	if err != nil {
		return nil, err
	}
	live.Converge()
	beforeChanges := live.TotalBestChanges()

	start := time.Now()
	snap := live.Snapshot()
	snapDur := time.Since(start)
	sizes, err := checkpoint.Measure(snap)
	if err != nil {
		return nil, err
	}

	inputs := cfg.inputs(12, 4)
	eng := dice.New(live, topo, dice.Options{MaxInputs: inputs, FuzzSeeds: 4, UseConcolic: true, Seed: cfg.Seed, ClusterOptions: copts})
	res, err := eng.Run()
	if err != nil {
		return nil, err
	}

	perNode := 0
	for _, n := range sizes.PerNodeBytes {
		perNode += n
	}
	if len(sizes.PerNodeBytes) > 0 {
		perNode /= len(sizes.PerNodeBytes)
	}
	return &E2Result{
		Nodes:              len(topo.Nodes),
		SnapshotDuration:   snapDur,
		SnapshotBytes:      sizes.TotalBytes,
		PerNodeBytes:       perNode,
		InFlightMessages:   sizes.Messages,
		ClonesCreated:      res.InputsExplored,
		InputsExplored:     res.InputsExplored,
		ChecksRun:          res.InputsExplored * len(checker.DefaultProperties(topo)),
		LiveStateUntouched: live.TotalBestChanges() == beforeChanges,
	}, nil
}

// String renders the workflow report.
func (r *E2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2 (Figure 2 workflow): %d nodes\n", r.Nodes)
	fmt.Fprintf(&b, "  1. snapshot triggered     %v, %d bytes total (%d bytes/node), %d in-flight msgs\n",
		r.SnapshotDuration, r.SnapshotBytes, r.PerNodeBytes, r.InFlightMessages)
	fmt.Fprintf(&b, "  2. clones created         %d (one per explored input)\n", r.ClonesCreated)
	fmt.Fprintf(&b, "  3. inputs explored        %d\n", r.InputsExplored)
	fmt.Fprintf(&b, "  4. property checks run    %d\n", r.ChecksRun)
	fmt.Fprintf(&b, "  5. live state untouched   %v\n", r.LiveStateUntouched)
	return b.String()
}

// ---------------------------------------------------------------------------
// E3 — detection of the three fault classes across topology sizes (the "§3
// quickly detects faults" claim).
// ---------------------------------------------------------------------------

// E3Row is one (fault class, topology size) measurement.
type E3Row struct {
	Class          string
	Routers        int
	Detected       bool
	InputsToDetect int
	TimeToDetect   time.Duration
	InputsExplored int
}

// RunE3 measures detection latency per fault class and topology size.
func RunE3(cfg ExperimentConfig) ([]E3Row, error) {
	sizes := []int{9, 18, 27}
	if cfg.Quick {
		sizes = []int{9}
	}
	var rows []E3Row
	for _, n := range sizes {
		topo := threeTier(n)
		// Operator mistake: a latent missing import filter at the explorer.
		rows = append(rows, runE3Scenario(cfg, topo, n, "operator-mistake",
			[]faults.ConfigFault{faults.MissingImportFilter{Router: explorerOf(topo), Peer: firstNeighbor(topo)}}, nil))
		// Programming error: community-triggered crash at the explorer.
		bug := faults.CommunityCrash(explorerOf(topo), bgp.NewCommunity(65001, 666))
		rows = append(rows, runE3Scenario(cfg, topo, n, "programming-error", nil, []faults.CodeFault{bug}))
		// Policy conflict: dispute wheel on a ring sub-topology of the same
		// size class (the conflict needs a cycle of preferences).
		ringRow := runE3PolicyConflict(cfg, n)
		rows = append(rows, ringRow)
	}
	return rows, nil
}

func threeTier(n int) *topology.Topology {
	switch n {
	case 9:
		return topology.GaoRexford(2, 3, 4, 11)
	case 18:
		return topology.GaoRexford(3, 6, 9, 12)
	default:
		return topology.Demo27()
	}
}

func explorerOf(topo *topology.Topology) string {
	best, deg := topo.Nodes[0].Name, -1
	for _, n := range topo.Nodes {
		if d := len(topo.NeighborsOf(n.Name)); d > deg {
			best, deg = n.Name, d
		}
	}
	return best
}

func firstNeighbor(topo *topology.Topology) string {
	return topo.NeighborsOf(explorerOf(topo))[0]
}

func runE3Scenario(cfg ExperimentConfig, topo *topology.Topology, size int, class string, cfgFaults []faults.ConfigFault, codeFaults []faults.CodeFault) E3Row {
	copts := cluster.Options{Seed: cfg.Seed, MaxEvents: 300000}
	if len(cfgFaults) > 0 {
		copts.ConfigOverride = faults.ApplyConfigFaults(cfgFaults...)
	}
	live, err := cluster.Build(topo, copts)
	if err != nil {
		return E3Row{Class: class, Routers: size}
	}
	faults.InstallCodeFaults(live.Routers, codeFaults...)
	live.Converge()
	eng := dice.New(live, topo, dice.Options{
		Explorer:        explorerOf(topo),
		FromPeer:        firstNeighbor(topo),
		MaxInputs:       cfg.inputs(48, 12),
		FuzzSeeds:       8,
		UseConcolic:     true,
		Seed:            cfg.Seed,
		CodeFaults:      codeFaults,
		ClusterOptions:  copts,
		ShadowMaxEvents: 60000,
	})
	res, err := eng.Run()
	if err != nil {
		return E3Row{Class: class, Routers: size}
	}
	row := E3Row{Class: class, Routers: size, InputsExplored: res.InputsExplored}
	wantClass := checker.ClassOperatorMistake
	if class == "programming-error" {
		wantClass = checker.ClassProgrammingError
	}
	if d := res.FirstDetection(wantClass); d != nil {
		row.Detected = true
		row.InputsToDetect = d.InputIndex
		row.TimeToDetect = d.Elapsed
	}
	return row
}

// runE3PolicyConflict plants a dispute wheel on a ring and measures how long
// exploration takes to expose the oscillation.
func runE3PolicyConflict(cfg ExperimentConfig, size int) E3Row {
	ringSize := 3
	if size >= 18 {
		ringSize = 4
	}
	topo := topology.Ring(ringSize)
	contested := topo.Nodes[0].Prefixes[0]
	copts := cluster.Options{
		Seed:           cfg.Seed,
		ConfigOverride: faults.ApplyConfigFaults(faults.DisputeWheel{Routers: topo.NodeNames(), Prefix: contested}),
		MaxEvents:      100000,
	}
	live, err := cluster.Build(topo, copts)
	if err != nil {
		return E3Row{Class: "policy-conflict", Routers: size}
	}
	live.Converge()
	props := []checker.Property{checker.Convergence{MaxChangesPerPrefix: 6}, checker.NodeHealth{}}
	eng := dice.New(live, topo, dice.Options{
		Explorer:        topo.Nodes[1].Name,
		FromPeer:        topo.Nodes[0].Name,
		MaxInputs:       cfg.inputs(32, 10),
		FuzzSeeds:       8,
		UseConcolic:     true,
		Seed:            cfg.Seed,
		Properties:      props,
		ClusterOptions:  copts,
		ShadowMaxEvents: 30000,
	})
	res, err := eng.Run()
	if err != nil {
		return E3Row{Class: "policy-conflict", Routers: size}
	}
	row := E3Row{Class: "policy-conflict", Routers: size, InputsExplored: res.InputsExplored}
	if d := res.FirstDetection(checker.ClassPolicyConflict); d != nil {
		row.Detected = true
		row.InputsToDetect = d.InputIndex
		row.TimeToDetect = d.Elapsed
	}
	return row
}

// FormatE3 renders the detection-latency table.
func FormatE3(rows []E3Row) string {
	var b strings.Builder
	b.WriteString("E3 (detection latency per fault class):\n")
	b.WriteString("  class               routers  detected  inputs  time\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s  %7d  %8v  %6d  %v\n", r.Class, r.Routers, r.Detected, r.InputsToDetect, r.TimeToDetect.Round(time.Millisecond))
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E4 — overhead of running DiCE alongside the deployed system.
// ---------------------------------------------------------------------------

// E4Result reports per-UPDATE handling cost with and without instrumentation,
// and checkpoint cost per node.
type E4Result struct {
	Updates               int
	BaselinePerUpdate     time.Duration
	InstrumentedPerUpdate time.Duration
	OverheadPercent       float64
	CheckpointPerNode     time.Duration
	CheckpointBytesNode   int
	SnapshotTotalBytes    int
}

// RunE4 measures the overhead metrics: per-UPDATE handling cost on a small
// deployment with and without DiCE's symbolic instrumentation armed, and
// checkpoint cost on the 27-router demo.
func RunE4(cfg ExperimentConfig) (*E4Result, error) {
	updates := cfg.inputs(2000, 200)
	gen := fuzz.New(fuzz.Options{Seed: cfg.Seed})
	bodies := make([][]byte, updates)
	for i := range bodies {
		bodies[i] = gen.Body()
	}

	baseline, err := timeUpdates(cfg, bodies, false)
	if err != nil {
		return nil, err
	}
	instrumented, err := timeUpdates(cfg, bodies, true)
	if err != nil {
		return nil, err
	}

	// Checkpoint cost on the full demo topology.
	topo := topology.Demo27()
	live, err := cluster.Build(topo, cluster.Options{Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	live.Converge()
	start := time.Now()
	snap := live.Snapshot()
	snapDur := time.Since(start)
	sizes, err := checkpoint.Measure(snap)
	if err != nil {
		return nil, err
	}
	perNodeBytes := 0
	for _, n := range sizes.PerNodeBytes {
		perNodeBytes += n
	}
	perNodeBytes /= len(sizes.PerNodeBytes)

	overhead := 0.0
	if baseline > 0 {
		overhead = 100 * float64(instrumented-baseline) / float64(baseline)
	}
	return &E4Result{
		Updates:               updates,
		BaselinePerUpdate:     baseline,
		InstrumentedPerUpdate: instrumented,
		OverheadPercent:       overhead,
		CheckpointPerNode:     snapDur / time.Duration(len(topo.Nodes)),
		CheckpointBytesNode:   perNodeBytes,
		SnapshotTotalBytes:    sizes.TotalBytes,
	}, nil
}

// buildWire wraps an UPDATE body with the BGP message header.
func buildWire(body []byte) []byte { return bgp.FrameUpdate(body) }

// timeUpdates measures average per-UPDATE processing time on a converged
// two-router deployment, optionally arming DiCE's symbolic tracing for every
// message (the "instrumentation on" configuration).
func timeUpdates(cfg ExperimentConfig, bodies [][]byte, instrument bool) (time.Duration, error) {
	topo := topology.Line(2)
	live, err := cluster.Build(topo, cluster.Options{Seed: cfg.Seed})
	if err != nil {
		return 0, err
	}
	live.Converge()
	target := live.Router("R2")
	start := time.Now()
	for _, body := range bodies {
		if instrument {
			in := concolic.NewInput("update", body)
			m := concolic.NewMachine(in, concolic.MachineOptions{})
			target.ExploreNextUpdate(m, "R1")
		}
		live.InjectRaw("R1", "R2", buildWire(body))
		live.Converge()
	}
	return time.Since(start) / time.Duration(len(bodies)), nil
}

// FormatE4 renders the overhead report.
func (r *E4Result) String() string {
	var b strings.Builder
	b.WriteString("E4 (overhead alongside the deployed system):\n")
	fmt.Fprintf(&b, "  UPDATE handling, DiCE off        %v/update (n=%d)\n", r.BaselinePerUpdate, r.Updates)
	fmt.Fprintf(&b, "  UPDATE handling, instrumentation %v/update (%.1f%% overhead)\n", r.InstrumentedPerUpdate, r.OverheadPercent)
	fmt.Fprintf(&b, "  checkpoint                       %v and %d bytes per node (total %d bytes)\n",
		r.CheckpointPerNode, r.CheckpointBytesNode, r.SnapshotTotalBytes)
	return b.String()
}

// ---------------------------------------------------------------------------
// E5 — exploration effectiveness: concolic vs fuzzing vs combined.
// ---------------------------------------------------------------------------

// E5Row is one exploration mode's outcome.
type E5Row struct {
	Mode            string
	Inputs          int
	UniquePaths     int
	CoverageSites   int
	SolverQueries   int
	FoundBug        bool
	InputsToFindBug int
}

// RunE5 compares input-generation strategies on the programming-error
// scenario.
func RunE5(cfg ExperimentConfig) ([]E5Row, error) {
	topo := topology.Line(3)
	trigger := bgp.NewCommunity(65001, 666)
	bug := faults.CommunityCrash("R2", trigger)
	copts := cluster.Options{Seed: cfg.Seed}

	run := func(mode string, useConcolic bool, seeds int) (E5Row, error) {
		live, err := cluster.Build(topo, copts)
		if err != nil {
			return E5Row{}, err
		}
		faults.InstallCodeFaults(live.Routers, bug)
		live.Converge()
		eng := dice.New(live, topo, dice.Options{
			Explorer:       "R2",
			FromPeer:       "R1",
			MaxInputs:      cfg.inputs(96, 48),
			FuzzSeeds:      seeds,
			UseConcolic:    useConcolic,
			Seed:           cfg.Seed,
			CodeFaults:     []faults.CodeFault{bug},
			ClusterOptions: copts,
		})
		res, err := eng.Run()
		if err != nil {
			return E5Row{}, err
		}
		row := E5Row{
			Mode:          mode,
			Inputs:        res.InputsExplored,
			UniquePaths:   res.ExplorerStats.UniquePaths,
			CoverageSites: res.ExplorerStats.CoverageSites,
			SolverQueries: res.ExplorerStats.SolverQueries,
		}
		if d := res.FirstDetection(checker.ClassProgrammingError); d != nil {
			row.FoundBug = true
			row.InputsToFindBug = d.InputIndex
		}
		return row, nil
	}

	var rows []E5Row
	fuzzOnly, err := run("fuzzing-only", false, 8)
	if err != nil {
		return nil, err
	}
	rows = append(rows, fuzzOnly)
	concolicOnly, err := run("concolic (1 seed)", true, 1)
	if err != nil {
		return nil, err
	}
	rows = append(rows, concolicOnly)
	combined, err := run("concolic+fuzzing", true, 8)
	if err != nil {
		return nil, err
	}
	rows = append(rows, combined)
	return rows, nil
}

// FormatE5 renders the comparison table.
func FormatE5(rows []E5Row) string {
	var b strings.Builder
	b.WriteString("E5 (exploration effectiveness):\n")
	b.WriteString("  mode               inputs  paths  coverage  solver-queries  bug-found  inputs-to-bug\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-17s  %6d  %5d  %8d  %14d  %9v  %13d\n",
			r.Mode, r.Inputs, r.UniquePaths, r.CoverageSites, r.SolverQueries, r.FoundBug, r.InputsToFindBug)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E6 — grammar-based fuzzing quality (small inputs, valid by construction).
// ---------------------------------------------------------------------------

// E6Result reports fuzzer quality metrics.
type E6Result struct {
	Messages        int
	ValidRatio      float64
	MutatedRatio    float64
	MeanBodyBytes   float64
	MaxBodyBytes    int
	GenerationPerMs float64
}

// RunE6 measures the fuzzer.
func RunE6(cfg ExperimentConfig) (*E6Result, error) {
	n := cfg.inputs(5000, 500)
	topo := topology.Demo27()
	var opts fuzz.Options
	opts.Seed = cfg.Seed
	for _, node := range topo.Nodes {
		opts.Prefixes = append(opts.Prefixes, node.Prefixes...)
		opts.ASNs = append(opts.ASNs, node.AS)
	}
	g := fuzz.New(opts)
	valid := g.ValidRatio(n)

	mut := fuzz.New(fuzz.Options{Seed: cfg.Seed, MutationProbability: 0.3})
	mutValid := mut.ValidRatio(n)

	sizeGen := fuzz.New(opts)
	totalBytes, maxBytes := 0, 0
	start := time.Now()
	for i := 0; i < n; i++ {
		b := sizeGen.Body()
		totalBytes += len(b)
		if len(b) > maxBytes {
			maxBytes = len(b)
		}
	}
	elapsed := time.Since(start)

	return &E6Result{
		Messages:        n,
		ValidRatio:      valid,
		MutatedRatio:    mutValid,
		MeanBodyBytes:   float64(totalBytes) / float64(n),
		MaxBodyBytes:    maxBytes,
		GenerationPerMs: float64(n) / float64(elapsed.Milliseconds()+1),
	}, nil
}

// String renders the fuzzer report.
func (r *E6Result) String() string {
	var b strings.Builder
	b.WriteString("E6 (grammar-based fuzzing):\n")
	fmt.Fprintf(&b, "  messages generated        %d\n", r.Messages)
	fmt.Fprintf(&b, "  valid ratio (pure)        %.3f\n", r.ValidRatio)
	fmt.Fprintf(&b, "  valid ratio (30%% mutated) %.3f\n", r.MutatedRatio)
	fmt.Fprintf(&b, "  mean / max body size      %.1f / %d bytes\n", r.MeanBodyBytes, r.MaxBodyBytes)
	fmt.Fprintf(&b, "  generation rate           %.0f msgs/ms\n", r.GenerationPerMs)
	return b.String()
}

// ---------------------------------------------------------------------------
// E7 — narrow information-sharing interface vs full state sharing.
// ---------------------------------------------------------------------------

// E7Result compares disclosure at equal detection power.
type E7Result struct {
	Routers             int
	NarrowBytesPerCheck int
	FullStateBytes      int
	ReductionFactor     float64
	BothDetectHijack    bool
}

// RunE7 measures disclosure for the hijack scenario.
func RunE7(cfg ExperimentConfig) (*E7Result, error) {
	topo := topology.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	copts := cluster.Options{
		Seed:           cfg.Seed,
		ConfigOverride: faults.ApplyConfigFaults(faults.MisOrigination{Router: "R12", Prefix: victim}),
	}
	live, err := cluster.Build(topo, copts)
	if err != nil {
		return nil, err
	}
	live.Converge()

	props := checker.DefaultProperties(topo)
	report := checker.CheckAll(live, props)
	narrow := report.DisclosedBytes()
	full := checker.FullStateDisclosure(live)
	detected := false
	for _, v := range report.Violations() {
		if v.Class == checker.ClassOperatorMistake {
			detected = true
		}
	}
	factor := 0.0
	if narrow > 0 {
		factor = float64(full) / float64(narrow)
	}
	return &E7Result{
		Routers:             len(topo.Nodes),
		NarrowBytesPerCheck: narrow,
		FullStateBytes:      full,
		ReductionFactor:     factor,
		BothDetectHijack:    detected,
	}, nil
}

// String renders the disclosure comparison.
func (r *E7Result) String() string {
	var b strings.Builder
	b.WriteString("E7 (narrow information-sharing interface):\n")
	fmt.Fprintf(&b, "  routers                        %d\n", r.Routers)
	fmt.Fprintf(&b, "  narrow interface disclosure    %d bytes per full check round\n", r.NarrowBytesPerCheck)
	fmt.Fprintf(&b, "  full-state sharing             %d bytes\n", r.FullStateBytes)
	fmt.Fprintf(&b, "  reduction factor               %.1fx\n", r.ReductionFactor)
	fmt.Fprintf(&b, "  hijack detected either way     %v\n", r.BothDetectHijack)
	return b.String()
}

// ---------------------------------------------------------------------------
// E8 — campaign scaling: a multi-explorer campaign over the 27-router demo,
// serial vs parallel clone execution with the same input budget. The clone
// executions are embarrassingly parallel (each worker restores its own
// snapshot clone), so the campaign should scale with the worker pool while
// finding exactly the same detections.
// ---------------------------------------------------------------------------

// E8Result compares serial and parallel execution of the same campaign.
type E8Result struct {
	Routers            int
	Units              int
	TotalInputs        int
	Workers            int
	SerialDuration     time.Duration
	ParallelDuration   time.Duration
	Speedup            float64
	SameDetections     bool
	Detections         int
	DetectionsStreamed int
}

// RunE8 runs the same multi-explorer campaign twice — WithWorkers(1) and
// WithWorkers(runtime.NumCPU()) — and compares wall clock and detections.
func RunE8(cfg ExperimentConfig) (*E8Result, error) {
	topo := topology.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	copts := cluster.Options{
		Seed: cfg.Seed,
		ConfigOverride: faults.ApplyConfigFaults(
			faults.MisOrigination{Router: "R12", Prefix: victim},
			faults.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	live, err := cluster.Build(topo, copts)
	if err != nil {
		return nil, err
	}
	live.Converge()

	totalInputs := cfg.inputs(216, 54)
	out := &E8Result{
		Routers:     len(topo.Nodes),
		TotalInputs: totalInputs,
		Workers:     runtime.NumCPU(),
	}

	run := func(workers int) (time.Duration, *CampaignResult, int, error) {
		var streamed atomic.Int64
		campaign := NewCampaign(live, topo,
			WithStrategy(AllNodesStrategy{}),
			WithBudget(Budget{TotalInputs: totalInputs}),
			WithFuzzSeeds(cfg.inputs(8, 2)),
			WithSeed(cfg.Seed),
			WithClusterOptions(copts),
			WithWorkers(workers),
			WithOnEvent(func(ev Event) {
				if ev.Kind == EventDetection {
					streamed.Add(1)
				}
			}))
		start := time.Now()
		res, err := campaign.Run(context.Background())
		return time.Since(start), res, int(streamed.Load()), err
	}

	serialDur, serialRes, _, err := run(1)
	if err != nil {
		return nil, err
	}
	parallelDur, parallelRes, streamed, err := run(out.Workers)
	if err != nil {
		return nil, err
	}

	keys := func(r *CampaignResult) string {
		ks := make([]string, 0, len(r.Detections))
		for _, d := range r.Detections {
			ks = append(ks, d.Violation.Key())
		}
		sort.Strings(ks)
		return strings.Join(ks, ";")
	}
	out.Units = len(serialRes.Units)
	out.SerialDuration = serialDur
	out.ParallelDuration = parallelDur
	if parallelDur > 0 {
		out.Speedup = float64(serialDur) / float64(parallelDur)
	}
	out.SameDetections = keys(serialRes) == keys(parallelRes)
	out.Detections = len(parallelRes.Detections)
	out.DetectionsStreamed = streamed
	return out, nil
}

// String renders the scaling report.
func (r *E8Result) String() string {
	var b strings.Builder
	b.WriteString("E8 (campaign scaling, serial vs parallel):\n")
	fmt.Fprintf(&b, "  topology                  %d routers, %d exploration units\n", r.Routers, r.Units)
	fmt.Fprintf(&b, "  input budget              %d clone executions per run\n", r.TotalInputs)
	fmt.Fprintf(&b, "  serial   (1 worker)       %v\n", r.SerialDuration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  parallel (%d workers)      %v\n", r.Workers, r.ParallelDuration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  speedup                   %.2fx\n", r.Speedup)
	fmt.Fprintf(&b, "  detections                %d (streamed %d, identical across runs: %v)\n",
		r.Detections, r.DetectionsStreamed, r.SameDetections)
	return b.String()
}

// ---------------------------------------------------------------------------
// E9 — clone lifecycle: cold FromSnapshot rebuilds vs the pooled
// shadow-cluster runtime (immutable images + snapshot store + in-place
// resets). The paper's premise is that clones of the running system are
// cheap; this experiment quantifies how cheap, and that cheapness changes
// nothing observable: the same campaign finds the same detections either way.
// ---------------------------------------------------------------------------

// E9Result compares the clone lifecycles.
type E9Result struct {
	Routers int

	// Per-clone microbenchmark over CloneSamples clones of the demo
	// snapshot: a legacy cold rebuild (config re-validation + record
	// re-parsing per clone) vs an in-place pooled reset.
	CloneSamples   int
	ColdClonePer   time.Duration
	PooledResetPer time.Duration
	CloneSpeedup   float64

	// The same multi-explorer campaign run twice — cold clones vs pooled
	// clones — with an identical input budget.
	TotalInputs        int
	Workers            int
	ColdDuration       time.Duration
	PooledDuration     time.Duration
	ColdInputsPerSec   float64
	PooledInputsPerSec float64
	CampaignSpeedup    float64
	SameDetections     bool
	Detections         int
	PooledColdBuilds   int
	PooledResets       int

	// Snapshot-store delta accounting: mean encoded node checkpoint vs mean
	// binary delta against the campaign baseline after one explored input.
	MeanNodeBytes  int
	MeanDeltaBytes int

	// Serialization hot path: the campaign snapshot encoded and decoded
	// with the legacy gob codec vs the deterministic binary codec, over
	// CodecIters iterations each (schema v3 additions).
	CodecIters         int
	GobEncodePer       time.Duration
	CodecEncodePer     time.Duration
	CodecEncodeSpeedup float64
	GobDecodePer       time.Duration
	CodecDecodePer     time.Duration
	CodecDecodeSpeedup float64
	GobSnapshotBytes   int
	CodecSnapshotBytes int
	// CodecSizeRatio is gob bytes over codec bytes (>1 means smaller).
	CodecSizeRatio float64
}

// RunE9 measures the clone lifecycle on the 27-router demo.
func RunE9(cfg ExperimentConfig) (*E9Result, error) {
	topo := topology.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	copts := cluster.Options{
		Seed: cfg.Seed,
		ConfigOverride: faults.ApplyConfigFaults(
			faults.MisOrigination{Router: "R12", Prefix: victim},
			faults.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	live, err := cluster.Build(topo, copts)
	if err != nil {
		return nil, err
	}
	live.Converge()

	out := &E9Result{
		Routers:      len(topo.Nodes),
		CloneSamples: cfg.inputs(32, 8),
		TotalInputs:  cfg.inputs(216, 54),
		Workers:      runtime.NumCPU(),
	}

	// 1. Per-clone microbenchmark.
	snap := live.Snapshot()
	start := time.Now()
	for i := 0; i < out.CloneSamples; i++ {
		if _, err := cluster.FromSnapshot(topo, snap, copts); err != nil {
			return nil, err
		}
	}
	out.ColdClonePer = time.Since(start) / time.Duration(out.CloneSamples)

	store, err := checkpoint.NewStore(snap)
	if err != nil {
		return nil, err
	}
	pool := cluster.NewClonePool(topo, store, copts)
	warm, err := pool.Lease() // first lease is the pool's one cold build
	if err != nil {
		return nil, err
	}
	pool.Release(warm)
	for i := 0; i < out.CloneSamples; i++ {
		c, err := pool.Lease()
		if err != nil {
			return nil, err
		}
		pool.Release(c)
	}
	out.PooledResetPer = pool.Stats().ResetPer()
	if out.PooledResetPer > 0 {
		out.CloneSpeedup = float64(out.ColdClonePer) / float64(out.PooledResetPer)
	}

	// 2. Campaign comparison: identical plan and budget, cold vs pooled.
	runCampaign := func(pooled bool) (time.Duration, *CampaignResult, error) {
		campaign := NewCampaign(live, topo,
			WithStrategy(AllNodesStrategy{}),
			WithBudget(Budget{TotalInputs: out.TotalInputs}),
			WithFuzzSeeds(cfg.inputs(8, 2)),
			WithSeed(cfg.Seed),
			WithClusterOptions(copts),
			WithPooledClones(pooled),
			WithWorkers(out.Workers))
		start := time.Now()
		res, err := campaign.Run(context.Background())
		return time.Since(start), res, err
	}
	coldDur, coldRes, err := runCampaign(false)
	if err != nil {
		return nil, err
	}
	pooledDur, pooledRes, err := runCampaign(true)
	if err != nil {
		return nil, err
	}
	out.ColdDuration, out.PooledDuration = coldDur, pooledDur
	if coldDur > 0 {
		out.ColdInputsPerSec = float64(coldRes.InputsExplored) / coldDur.Seconds()
	}
	if pooledDur > 0 {
		out.PooledInputsPerSec = float64(pooledRes.InputsExplored) / pooledDur.Seconds()
		out.CampaignSpeedup = float64(coldDur) / float64(pooledDur)
	}
	out.SameDetections = detectionFingerprint(coldRes) == detectionFingerprint(pooledRes)
	out.Detections = len(pooledRes.Detections)
	out.PooledColdBuilds = pooledRes.CloneStats.ColdBuilds
	out.PooledResets = pooledRes.CloneStats.Resets

	// 3. Delta accounting: size one diverged clone against the baseline.
	clone, err := pool.Lease()
	if err != nil {
		return nil, err
	}
	defer pool.Release(clone)
	peer := topo.NeighborsOf("R1")[0]
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{topo.Node(peer).AS, 64999}, NextHop: 99}
	clone.InjectUpdate(peer, "R1", &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("88.1.0.0/16")}})
	clone.Net.RunQuiescent(0)
	totalFull, totalDelta := 0, 0
	for _, name := range clone.RouterNames() {
		d, err := store.Delta(name, clone.Router(name).TakeCheckpoint())
		if err != nil {
			return nil, err
		}
		totalFull += d.FullBytes
		totalDelta += d.DeltaBytes
	}
	out.MeanNodeBytes = totalFull / len(topo.Nodes)
	out.MeanDeltaBytes = totalDelta / len(topo.Nodes)

	// 4. Serialization hot path: the same snapshot through the legacy gob
	// encoder and the deterministic binary codec. Every per-clone restore,
	// baseline shipment and ring push sits on this path.
	out.CodecIters = cfg.inputs(64, 16)
	gobEnc, codecEnc, err := benchSnapshotCodec(snap, out.CodecIters,
		&out.GobEncodePer, &out.CodecEncodePer, &out.GobDecodePer, &out.CodecDecodePer)
	if err != nil {
		return nil, err
	}
	out.GobSnapshotBytes, out.CodecSnapshotBytes = len(gobEnc), len(codecEnc)
	if out.CodecEncodePer > 0 {
		out.CodecEncodeSpeedup = float64(out.GobEncodePer) / float64(out.CodecEncodePer)
	}
	if out.CodecDecodePer > 0 {
		out.CodecDecodeSpeedup = float64(out.GobDecodePer) / float64(out.CodecDecodePer)
	}
	if out.CodecSnapshotBytes > 0 {
		out.CodecSizeRatio = float64(out.GobSnapshotBytes) / float64(out.CodecSnapshotBytes)
	}
	return out, nil
}

// benchSnapshotCodec times iters gob and codec encodes and decodes of snap,
// storing per-op durations through the out pointers and returning one
// encoding of each form for size accounting.
func benchSnapshotCodec(snap *checkpoint.Snapshot, iters int,
	gobEncPer, codecEncPer, gobDecPer, codecDecPer *time.Duration) (gobEnc, codecEnc []byte, err error) {
	if iters <= 0 {
		iters = 1
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if gobEnc, err = checkpoint.EncodeGob(snap); err != nil {
			return nil, nil, err
		}
	}
	*gobEncPer = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if codecEnc, err = checkpoint.Encode(snap); err != nil {
			return nil, nil, err
		}
	}
	*codecEncPer = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err = checkpoint.Decode(gobEnc); err != nil {
			return nil, nil, err
		}
	}
	*gobDecPer = time.Since(start) / time.Duration(iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err = checkpoint.Decode(codecEnc); err != nil {
			return nil, nil, err
		}
	}
	*codecDecPer = time.Since(start) / time.Duration(iters)
	return gobEnc, codecEnc, nil
}

// ---------------------------------------------------------------------------
// E10 — federated vs centralized testing: the paper's headline scenario. The
// same hijack campaign runs once with an omniscient checker and once split
// into per-AS administrative domains that exchange only privacy-filtered
// checker.Summary digests over the federation bus. Detections must be
// identical; the experiment reports what federation cost (wall clock) and
// what it disclosed (summary bytes vs a full-state exchange).
// ---------------------------------------------------------------------------

// E10Result compares centralized and federated campaigns.
type E10Result struct {
	Routers int
	// Domains is the partition size (one domain per AS); CrossingLinks the
	// inter-domain sessions.
	Domains       int
	CrossingLinks int

	TotalInputs int
	Workers     int

	CentralizedDuration time.Duration
	FederatedDuration   time.Duration
	// OverheadPercent is the federated wall-clock overhead relative to the
	// centralized run (positive means federation is slower).
	OverheadPercent float64

	Detections     int
	SameDetections bool

	// Disclosure accounting for the federated run.
	Summaries            int
	SummaryBytes         int
	SummaryBytesPerInput int
	FullStateBytes       int
	// ReductionVsFullState is FullStateBytes divided by the per-input
	// summary traffic: how much cheaper one round of federated checking is
	// than shipping full node state once.
	ReductionVsFullState float64
	// DomainsReporting counts domains whose exploration contributed at
	// least one campaign-unique detection.
	DomainsReporting int
}

// RunE10 measures federated vs centralized detection on the 27-router
// hijack scenario.
func RunE10(cfg ExperimentConfig) (*E10Result, error) {
	topo := topology.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	copts := cluster.Options{
		Seed: cfg.Seed,
		ConfigOverride: faults.ApplyConfigFaults(
			faults.MisOrigination{Router: "R12", Prefix: victim},
			faults.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	live, err := cluster.Build(topo, copts)
	if err != nil {
		return nil, err
	}
	live.Converge()

	partition := PartitionByAS(topo)
	out := &E10Result{
		Routers:       len(topo.Nodes),
		Domains:       len(partition.Domains),
		CrossingLinks: partition.CrossingLinks(topo),
		TotalInputs:   cfg.inputs(216, 54),
		Workers:       runtime.NumCPU(),
	}

	run := func(extra ...CampaignOption) (time.Duration, *CampaignResult, error) {
		opts := []CampaignOption{
			WithBudget(Budget{TotalInputs: out.TotalInputs}),
			WithFuzzSeeds(cfg.inputs(8, 2)),
			WithSeed(cfg.Seed),
			WithClusterOptions(copts),
			WithWorkers(out.Workers),
		}
		campaign := NewCampaign(live, topo, append(opts, extra...)...)
		start := time.Now()
		res, err := campaign.Run(context.Background())
		return time.Since(start), res, err
	}

	// Centralized baseline: every router explored, one omniscient checker.
	centDur, centRes, err := run(WithStrategy(AllNodesStrategy{}))
	if err != nil {
		return nil, err
	}
	// Federated: the same exploration split into per-AS domains (the default
	// degree strategy explores from each domain's best-connected router —
	// with one router per AS, the identical plan).
	fedDur, fedRes, err := run(WithFederation(partition))
	if err != nil {
		return nil, err
	}

	out.CentralizedDuration, out.FederatedDuration = centDur, fedDur
	if centDur > 0 {
		out.OverheadPercent = 100 * float64(fedDur-centDur) / float64(centDur)
	}
	out.Detections = len(fedRes.Detections)
	out.SameDetections = detectionFingerprint(centRes) == detectionFingerprint(fedRes)
	out.Summaries = fedRes.Disclosed.Summaries
	out.SummaryBytes = fedRes.Disclosed.Bytes
	if fedRes.InputsExplored > 0 {
		out.SummaryBytesPerInput = fedRes.Disclosed.Bytes / fedRes.InputsExplored
	}
	out.FullStateBytes = fedRes.FullStateBytes
	if fedRes.Disclosed.Bytes > 0 && fedRes.InputsExplored > 0 {
		// Full precision: dividing by the truncated per-input int would
		// overstate the reduction.
		perInput := float64(fedRes.Disclosed.Bytes) / float64(fedRes.InputsExplored)
		out.ReductionVsFullState = float64(out.FullStateBytes) / perInput
	}
	for _, d := range fedRes.Domains {
		if d.Detections > 0 {
			out.DomainsReporting++
		}
	}
	return out, nil
}

// String renders the federation report.
func (r *E10Result) String() string {
	var b strings.Builder
	b.WriteString("E10 (federated vs centralized testing):\n")
	fmt.Fprintf(&b, "  topology                  %d routers in %d domains (%d inter-domain links)\n",
		r.Routers, r.Domains, r.CrossingLinks)
	fmt.Fprintf(&b, "  input budget              %d clone executions per run (%d workers)\n", r.TotalInputs, r.Workers)
	fmt.Fprintf(&b, "  centralized               %v\n", r.CentralizedDuration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  federated                 %v (%.1f%% overhead)\n", r.FederatedDuration.Round(time.Millisecond), r.OverheadPercent)
	fmt.Fprintf(&b, "  detections                %d (identical to centralized: %v, %d domains reporting)\n",
		r.Detections, r.SameDetections, r.DomainsReporting)
	fmt.Fprintf(&b, "  disclosure                %d summaries, %d bytes total (%d bytes/input)\n",
		r.Summaries, r.SummaryBytes, r.SummaryBytesPerInput)
	fmt.Fprintf(&b, "  vs full-state sharing     %d bytes once; federated checking is %.1fx cheaper per input\n",
		r.FullStateBytes, r.ReductionVsFullState)
	return b.String()
}

// ---------------------------------------------------------------------------
// E11 — heterogeneous deployments with differential conformance checking.
// The paper's title promises testing of *heterogeneous* systems: federations
// whose members run different implementations of the same protocol. The
// mixed Demo27 variant runs the transit tiers on the bird backend and every
// tier-3 stub on the frr backend (own config dialect, different-but-legal
// decision-process tie-breaking). The same hijack campaign as E10 runs once
// homogeneous and once mixed with checker.CrossImplDivergence added. Three
// claims are measured: the mixed run detects the same fault *classes*
// (heterogeneity masks nothing), the divergence checker deterministically
// flags the seeded disagreement (already in the converged steady state, no
// exploration needed), and — the differential-conformance point — the small
// set of per-node safety findings that legitimately differ between the runs
// (the two backends really do select different best paths) is fully
// explained by the divergence report: every moved detection sits at a
// flagged node.
// ---------------------------------------------------------------------------

// E11Result compares homogeneous and mixed-implementation campaigns.
type E11Result struct {
	Routers int
	// Implementations deployed in the mixed run and how many nodes each has.
	Implementations map[string]int

	TotalInputs int
	Workers     int

	HomogeneousDuration time.Duration
	MixedDuration       time.Duration

	// SafetyDetections are the merged non-divergence detections of the mixed
	// run. SameSafetyClasses reports that the mixed run detects exactly the
	// homogeneous run's fault classes — heterogeneity masks no class of
	// fault. SafetyDiffering counts the detections present in only one of
	// the two runs: the frr stubs legally select different best paths, so a
	// small tail of per-node findings genuinely moves.
	// DivergenceExplainsDiffs is the differential-conformance claim: every
	// differing safety detection sits at a node CrossImplDivergence flagged
	// as implementation-sensitive, so the divergence report accounts for
	// exactly the findings an operator would otherwise see "flap" between
	// vendors.
	SafetyDetections        int
	SameSafetyClasses       bool
	SafetyDiffering         int
	DivergenceExplainsDiffs bool
	// Divergences counts the implementation-divergence detections of the
	// mixed run; DivergentNodes lists the flagged routers, sorted.
	Divergences    int
	DivergentNodes []string
	// SteadyStateDivergence reports that the divergence is already present
	// in the converged deployment before any exploration — the seeded
	// disagreement is a property of the mixed topology, not of one explored
	// input.
	SteadyStateDivergence bool
}

// RunE11 measures heterogeneous detection on the mixed 27-router demo.
func RunE11(cfg ExperimentConfig) (*E11Result, error) {
	victimOf := func(topo *topology.Topology) bgp.Prefix { return topo.Nodes[26].Prefixes[0] }
	optsFor := func(topo *topology.Topology) cluster.Options {
		return cluster.Options{
			Seed: cfg.Seed,
			ConfigOverride: faults.ApplyConfigFaults(
				faults.MisOrigination{Router: "R12", Prefix: victimOf(topo)},
				faults.MissingImportFilter{Router: "R1", Peer: "R4"},
			),
			MaxEvents: 300000,
		}
	}

	out := &E11Result{
		TotalInputs:     cfg.inputs(216, 54),
		Workers:         runtime.NumCPU(),
		Implementations: make(map[string]int),
	}

	run := func(topo *topology.Topology, divergence bool) (time.Duration, *CampaignResult, *cluster.Cluster, error) {
		copts := optsFor(topo)
		live, err := cluster.Build(topo, copts)
		if err != nil {
			return 0, nil, nil, err
		}
		live.Converge()
		props := checker.DefaultProperties(topo)
		if divergence {
			props = append(props, checker.CrossImplDivergence{})
		}
		campaign := NewCampaign(live, topo,
			WithStrategy(AllNodesStrategy{}),
			WithBudget(Budget{TotalInputs: out.TotalInputs}),
			WithFuzzSeeds(cfg.inputs(8, 2)),
			WithSeed(cfg.Seed),
			WithProperties(props...),
			WithClusterOptions(copts),
			WithWorkers(out.Workers))
		start := time.Now()
		res, err := campaign.Run(context.Background())
		return time.Since(start), res, live, err
	}

	// Homogeneous baseline. CrossImplDivergence is configured here too —
	// the property is inert on a single-implementation deployment, which is
	// exactly what this experiment demonstrates.
	homoDur, homoRes, _, err := run(topology.Demo27(), true)
	if err != nil {
		return nil, err
	}
	mixedTopo := topology.Demo27Hetero()
	mixedDur, mixedRes, mixedLive, err := run(mixedTopo, true)
	if err != nil {
		return nil, err
	}

	out.Routers = len(mixedTopo.Nodes)
	out.Implementations = mixedTopo.ImplementationCounts()
	out.HomogeneousDuration, out.MixedDuration = homoDur, mixedDur

	safetyKeys := func(r *CampaignResult) (map[string]Detection, map[checker.FaultClass]bool, int) {
		keys := make(map[string]Detection)
		classes := make(map[checker.FaultClass]bool)
		n := 0
		for _, d := range r.Detections {
			if d.Class == checker.ClassImplDivergence {
				continue
			}
			keys[fmt.Sprintf("%s@%d", d.Violation.Key(), d.InputIndex)] = d
			classes[d.Class] = true
			n++
		}
		return keys, classes, n
	}
	homoKeys, homoClasses, _ := safetyKeys(homoRes)
	mixedKeys, mixedClasses, mixedSafety := safetyKeys(mixedRes)
	out.SafetyDetections = mixedSafety
	out.SameSafetyClasses = len(homoClasses) == len(mixedClasses)
	for cl := range homoClasses {
		if !mixedClasses[cl] {
			out.SameSafetyClasses = false
		}
	}

	divergent := make(map[string]bool)
	for _, d := range mixedRes.Detections {
		if d.Class == checker.ClassImplDivergence {
			out.Divergences++
			divergent[d.Violation.Node] = true
		}
	}
	for n := range divergent {
		out.DivergentNodes = append(out.DivergentNodes, n)
	}
	sort.Strings(out.DivergentNodes)

	// Every detection present in only one run must sit at a node the
	// divergence checker flagged.
	out.DivergenceExplainsDiffs = true
	diff := func(a, b map[string]Detection) {
		for k, d := range a {
			if _, ok := b[k]; ok {
				continue
			}
			out.SafetyDiffering++
			if !divergent[d.Violation.Node] {
				out.DivergenceExplainsDiffs = false
			}
		}
	}
	diff(homoKeys, mixedKeys)
	diff(mixedKeys, homoKeys)

	// The seeded divergence is a steady-state property of the mixed
	// deployment: checking the converged live cluster (no exploration)
	// already flags it.
	out.SteadyStateDivergence = !checker.CrossImplDivergence{}.Check(mixedLive).OK()
	return out, nil
}

// String renders the heterogeneity report.
func (r *E11Result) String() string {
	var b strings.Builder
	b.WriteString("E11 (heterogeneous backends, differential conformance):\n")
	impls := make([]string, 0, len(r.Implementations))
	for impl := range r.Implementations {
		impls = append(impls, impl)
	}
	sort.Strings(impls)
	fmt.Fprintf(&b, "  topology                  %d routers (", r.Routers)
	for i, impl := range impls {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d %s", r.Implementations[impl], impl)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  input budget              %d clone executions per run (%d workers)\n", r.TotalInputs, r.Workers)
	fmt.Fprintf(&b, "  homogeneous campaign      %v\n", r.HomogeneousDuration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  mixed campaign            %v\n", r.MixedDuration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  safety detections         %d (same fault classes as homogeneous: %v)\n", r.SafetyDetections, r.SameSafetyClasses)
	fmt.Fprintf(&b, "  detections that moved     %d, all at divergence-flagged nodes: %v\n", r.SafetyDiffering, r.DivergenceExplainsDiffs)
	fmt.Fprintf(&b, "  divergences               %d at %d nodes %v (steady-state: %v)\n", r.Divergences, len(r.DivergentNodes), r.DivergentNodes, r.SteadyStateDivergence)
	return b.String()
}

// detectionFingerprint canonicalizes a campaign's detections: violation keys
// with the input index each was first seen at.
func detectionFingerprint(r *CampaignResult) string {
	ks := make([]string, 0, len(r.Detections))
	for _, d := range r.Detections {
		ks = append(ks, fmt.Sprintf("%s@%d", d.Violation.Key(), d.InputIndex))
	}
	sort.Strings(ks)
	return strings.Join(ks, ";")
}

// ---------------------------------------------------------------------------
// E12 — live mode: the continuous checkpoint→explore→report loop. A soak on
// the 27-router demo with a planted mis-origination and missing import
// filter: live churn flows, the runtime takes low-pause epochs into the
// rolling ring, and scheduler-drawn scenario campaigns explore every fresh
// epoch. The second half of the soak goes idle so consecutive epochs capture
// identical state — the cross-epoch dedupe cache must then skip their
// campaigns outright. Measured: checkpoint pause, per-epoch snapshot and
// delta footprint, steady-state shadow overhead, detection latency in
// epochs, minimized trace sizes and the dedupe savings.
// ---------------------------------------------------------------------------

// E12Result summarizes a bounded live soak.
type E12Result struct {
	Routers int
	Epochs  int

	// Checkpoint pause (the consistent cut + fingerprint only) and the final
	// governor cadence.
	PauseMean, PauseMax time.Duration
	PauseBudgetExceeded int
	CheckpointStride    int

	// Mean per-epoch footprint: full encoding vs fingerprint-driven delta.
	SnapshotBytesPerEpoch int
	DeltaBytesPerEpoch    int

	// Exploration volume and the dedupe savings on unchanged epochs.
	Campaigns           int
	CampaignsDeduped    int
	InputsExplored      int
	InputsSaved         int
	PathsSaved          int
	DedupeSavedFraction float64

	// ShadowOverheadPercent is exploration wall clock relative to the live
	// side (traffic + checkpointing).
	ShadowOverheadPercent float64

	// Findings: how many, how fast (in epochs), and how small the minimized
	// traces are.
	Findings            int
	FirstDetectionEpoch int
	AllReverified       bool
	TraceStepsBefore    int
	TraceStepsAfter     int
	DetectedClasses     map[string]bool
}

// RunE12 runs the bounded live soak on the demo deployment.
func RunE12(cfg ExperimentConfig) (*E12Result, error) {
	topo := topology.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	copts := cluster.Options{
		Seed: cfg.Seed,
		ConfigOverride: faults.ApplyConfigFaults(
			faults.MisOrigination{Router: "R12", Prefix: victim},
			faults.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	deployed, err := cluster.Build(topo, copts)
	if err != nil {
		return nil, err
	}
	deployed.Converge()

	epochs := cfg.inputs(8, 4)
	churnEpochs := epochs / 2
	churn := live.DefaultTraffic(3)
	// Churn for the first half of the soak, then go idle: the idle epochs
	// capture identical state, which is exactly what the dedupe cache must
	// recognize and skip.
	traffic := func(c *cluster.Cluster, rng *mrand.Rand, epoch int) {
		if epoch <= churnEpochs {
			churn(c, rng, epoch)
		}
	}

	rt, err := live.NewRuntime(deployed, topo, live.Options{
		Seed:              cfg.Seed,
		ClusterOptions:    copts,
		Traffic:           traffic,
		MaxEpochs:         epochs,
		ScenariosPerEpoch: 0, // every registered scenario, every epoch
		InputsPerScenario: cfg.inputs(16, 6),
		FuzzSeeds:         cfg.inputs(4, 2),
		Explorers:         []string{"R1"},
		// The experiment pins the governor: with an effectively unlimited
		// pause budget the checkpoint cadence never stretches, so the soak
		// explores identical epoch states on any machine speed (including
		// under -race) and the results stay comparable across PRs. The
		// adaptive cadence itself is pinned by the governor tests in
		// internal/live.
		PauseBudget: time.Hour,
	})
	if err != nil {
		return nil, err
	}
	report, err := rt.Run(context.Background())
	if err != nil {
		return nil, err
	}
	stats := rt.Stats()

	out := &E12Result{
		Routers:               len(topo.Nodes),
		Epochs:                stats.Epochs,
		PauseMean:             stats.PauseMean(),
		PauseMax:              stats.CheckpointPauseMax,
		PauseBudgetExceeded:   stats.PauseBudgetExceeded,
		CheckpointStride:      stats.CheckpointStride,
		Campaigns:             stats.Campaigns,
		CampaignsDeduped:      stats.CampaignsDeduped,
		InputsExplored:        stats.InputsExplored,
		InputsSaved:           stats.InputsSaved,
		PathsSaved:            stats.PathsSaved,
		DedupeSavedFraction:   stats.DedupeSavedFraction(),
		ShadowOverheadPercent: stats.ShadowOverheadPercent(),
		Findings:              stats.Findings,
		FirstDetectionEpoch:   stats.FirstDetectionEpoch,
		AllReverified:         stats.FindingsReverified == stats.Findings,
		TraceStepsBefore:      stats.TraceStepsBefore,
		TraceStepsAfter:       stats.TraceStepsAfter,
		DetectedClasses:       map[string]bool{},
	}
	if stats.Epochs > 0 {
		out.SnapshotBytesPerEpoch = stats.SnapshotBytesTotal / stats.Epochs
		out.DeltaBytesPerEpoch = stats.DeltaBytesTotal / stats.Epochs
	}
	for _, f := range report.Findings() {
		out.DetectedClasses[f.Class.String()] = true
	}
	return out, nil
}

// String renders the live-mode report.
func (r *E12Result) String() string {
	var b strings.Builder
	b.WriteString("E12 (live mode: online checkpoint→explore→report soak):\n")
	fmt.Fprintf(&b, "  topology                  %d routers, %d epochs (final stride %d)\n", r.Routers, r.Epochs, r.CheckpointStride)
	fmt.Fprintf(&b, "  checkpoint pause          mean %v, max %v (%d over budget)\n",
		r.PauseMean.Round(time.Microsecond), r.PauseMax.Round(time.Microsecond), r.PauseBudgetExceeded)
	fmt.Fprintf(&b, "  epoch footprint           %d bytes full, %d bytes delta (mean/epoch)\n",
		r.SnapshotBytesPerEpoch, r.DeltaBytesPerEpoch)
	fmt.Fprintf(&b, "  exploration               %d campaigns, %d inputs (shadow overhead %.1f%%)\n",
		r.Campaigns, r.InputsExplored, r.ShadowOverheadPercent)
	fmt.Fprintf(&b, "  cross-epoch dedupe        %d campaigns skipped, %d inputs + %d paths saved (%.0f%% of would-be inputs)\n",
		r.CampaignsDeduped, r.InputsSaved, r.PathsSaved, 100*r.DedupeSavedFraction)
	fmt.Fprintf(&b, "  findings                  %d (first in epoch %d, all traces re-verified: %v)\n",
		r.Findings, r.FirstDetectionEpoch, r.AllReverified)
	fmt.Fprintf(&b, "  trace minimization        %d steps -> %d steps across findings\n", r.TraceStepsBefore, r.TraceStepsAfter)
	classes := make([]string, 0, len(r.DetectedClasses))
	for class := range r.DetectedClasses {
		classes = append(classes, class)
	}
	sort.Strings(classes)
	for _, class := range classes {
		fmt.Fprintf(&b, "  detected class            %s\n", class)
	}
	return b.String()
}

// String renders the clone-lifecycle report.
func (r *E9Result) String() string {
	var b strings.Builder
	b.WriteString("E9 (clone lifecycle: cold rebuild vs pooled reset):\n")
	fmt.Fprintf(&b, "  topology                  %d routers\n", r.Routers)
	fmt.Fprintf(&b, "  per-clone (n=%d)          cold %v, pooled reset %v (%.1fx faster)\n",
		r.CloneSamples, r.ColdClonePer.Round(time.Microsecond), r.PooledResetPer.Round(time.Microsecond), r.CloneSpeedup)
	fmt.Fprintf(&b, "  campaign, cold clones     %v (%.1f inputs/s)\n", r.ColdDuration.Round(time.Millisecond), r.ColdInputsPerSec)
	fmt.Fprintf(&b, "  campaign, pooled clones   %v (%.1f inputs/s, %d cold builds + %d resets)\n",
		r.PooledDuration.Round(time.Millisecond), r.PooledInputsPerSec, r.PooledColdBuilds, r.PooledResets)
	fmt.Fprintf(&b, "  campaign speedup          %.2fx\n", r.CampaignSpeedup)
	fmt.Fprintf(&b, "  detections                %d (identical cold vs pooled: %v)\n", r.Detections, r.SameDetections)
	fmt.Fprintf(&b, "  delta accounting          %d bytes/node full, %d bytes/node delta vs baseline\n",
		r.MeanNodeBytes, r.MeanDeltaBytes)
	fmt.Fprintf(&b, "  snapshot encode (n=%d)    gob %v, codec %v (%.1fx faster)\n",
		r.CodecIters, r.GobEncodePer.Round(time.Microsecond), r.CodecEncodePer.Round(time.Microsecond), r.CodecEncodeSpeedup)
	fmt.Fprintf(&b, "  snapshot decode           gob %v, codec %v (%.1fx faster)\n",
		r.GobDecodePer.Round(time.Microsecond), r.CodecDecodePer.Round(time.Microsecond), r.CodecDecodeSpeedup)
	fmt.Fprintf(&b, "  snapshot size             gob %d B, codec %d B (%.1fx smaller)\n",
		r.GobSnapshotBytes, r.CodecSnapshotBytes, r.CodecSizeRatio)
	return b.String()
}

// ---------------------------------------------------------------------------
// E13 — distributed campaign execution: the same demo hijack campaign run
// in-process, on one dice-agent, and sharded across three dice-agents through
// the control plane's lease protocol. Measured: wall-clock per mode, the wire
// footprint of the one-time baseline shipment and of shard leases and results
// (summaries and verdicts only — never node state), and the headline
// guarantee that every mode finds the identical detection set.
// ---------------------------------------------------------------------------

// E13Result compares in-process and distributed execution of one campaign.
type E13Result struct {
	Routers     int
	TotalInputs int
	Workers     int
	Shards      int

	InProcessDuration  time.Duration
	OneAgentDuration   time.Duration
	ThreeAgentDuration time.Duration

	// Detections of the 3-agent run; the Same* fields report fingerprint
	// equality against the in-process run.
	Detections                int
	SameDetectionsOneAgent    bool
	SameDetectionsThreeAgents bool

	// AgentsLeased counts agents that executed at least one shard in the
	// 3-agent run; Reassigned counts lease reassignments (0 in a calm run).
	AgentsLeased int
	Reassigned   int

	// Wire accounting of the 3-agent run. BaselineBytes is the one-time
	// snapshot shipment (paid once per agent); ShardBytes the lease traffic;
	// ResultBytes the streamed-back results.
	BaselineBytes int
	ShardBytes    int
	ResultBytes   int
	// ResultBytesPerInput compares against FullStatePerInput, the bytes a
	// full-state exchange per explored input would have cost; Reduction is
	// their ratio.
	ResultBytesPerInput  int
	FullStatePerInput    int
	ReductionVsFullState float64

	// Counterfactual wire accounting (schema v3): the baseline snapshot's
	// size under the legacy gob encoding vs the codec encoding that actually
	// ships, and their ratio. The baseline dominates an agent's one-time
	// cost, so this is the codec's direct effect on the wire.
	GobBaselineSnapshotBytes   int
	CodecBaselineSnapshotBytes int
	BaselineReductionVsGob     float64
}

// RunE13 measures distributed execution on the 27-router hijack scenario.
func RunE13(cfg ExperimentConfig) (*E13Result, error) {
	topo := topology.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	copts := cluster.Options{
		Seed: cfg.Seed,
		ConfigOverride: faults.ApplyConfigFaults(
			faults.MisOrigination{Router: "R12", Prefix: victim},
			faults.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	out := &E13Result{
		Routers:     len(topo.Nodes),
		TotalInputs: cfg.inputs(216, 54),
		Workers:     runtime.NumCPU(),
	}
	baseOpts := func() []CampaignOption {
		return []CampaignOption{
			WithStrategy(AllNodesStrategy{}),
			WithBudget(Budget{TotalInputs: out.TotalInputs}),
			WithFuzzSeeds(cfg.inputs(8, 2)),
			WithSeed(cfg.Seed),
			WithClusterOptions(copts),
			WithWorkers(out.Workers),
		}
	}
	deploy := func() (*cluster.Cluster, error) {
		live, err := cluster.Build(topo, copts)
		if err != nil {
			return nil, err
		}
		live.Converge()
		return live, nil
	}

	// In-process reference.
	live, err := deploy()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	localRes, err := NewCampaign(live, topo, baseOpts()...).Run(context.Background())
	if err != nil {
		return nil, err
	}
	out.InProcessDuration = time.Since(start)
	localPrint := detectionFingerprint(localRes)

	runDistributed := func(agents int) (time.Duration, *CampaignResult, *control.Controller, error) {
		live, err := deploy()
		if err != nil {
			return 0, nil, nil, err
		}
		ctrl := control.NewController(control.Config{
			Campaign:      "e13",
			MinAgents:     agents,
			UnitsPerShard: 2,
			LeaseTTL:      30 * time.Second,
		})
		client := control.InProcessClient(control.NewHandler(ctrl))
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var wg sync.WaitGroup
		for i := 0; i < agents; i++ {
			ag := agent.New(agent.Config{
				Name:         fmt.Sprintf("agent-%d", i),
				ControlURL:   "http://control.inproc",
				Client:       client,
				PollInterval: 2 * time.Millisecond,
			})
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = ag.Run(ctx)
			}()
		}
		opts := append(baseOpts(), dice.WithRemoteExecution(ctrl))
		start := time.Now()
		res, err := NewCampaign(live, topo, opts...).Run(context.Background())
		dur := time.Since(start)
		if err != nil {
			return 0, nil, nil, err
		}
		wg.Wait()
		return dur, res, ctrl, nil
	}

	oneDur, oneRes, _, err := runDistributed(1)
	if err != nil {
		return nil, err
	}
	threeDur, threeRes, ctrl, err := runDistributed(3)
	if err != nil {
		return nil, err
	}

	out.OneAgentDuration, out.ThreeAgentDuration = oneDur, threeDur
	out.Detections = len(threeRes.Detections)
	out.SameDetectionsOneAgent = detectionFingerprint(oneRes) == localPrint
	out.SameDetectionsThreeAgents = detectionFingerprint(threeRes) == localPrint
	for _, n := range ctrl.AgentShardCounts() {
		if n > 0 {
			out.AgentsLeased++
		}
	}
	stats := ctrl.RemoteStats()
	out.Shards = stats.Shards
	out.Reassigned = stats.Reassigned
	out.BaselineBytes = stats.BaselineBytes
	out.ShardBytes = stats.ShardBytes
	out.ResultBytes = stats.ResultBytes
	if threeRes.InputsExplored > 0 {
		out.ResultBytesPerInput = stats.ResultBytes / threeRes.InputsExplored
	}
	out.FullStatePerInput = threeRes.FullStateBytes
	if stats.ResultBytes > 0 && threeRes.InputsExplored > 0 {
		perInput := float64(stats.ResultBytes) / float64(threeRes.InputsExplored)
		out.ReductionVsFullState = float64(out.FullStatePerInput) / perInput
	}

	// Counterfactual: what the one-time baseline would have weighed under
	// the legacy gob encoding. The deploy is deterministic, so this snapshot
	// is byte-equivalent to the one the controller shipped.
	counterfactual, err := deploy()
	if err != nil {
		return nil, err
	}
	baseSnap := counterfactual.Snapshot()
	gobBaseline, err := checkpoint.EncodeGob(baseSnap)
	if err != nil {
		return nil, err
	}
	codecBaseline, err := checkpoint.Encode(baseSnap)
	if err != nil {
		return nil, err
	}
	out.GobBaselineSnapshotBytes = len(gobBaseline)
	out.CodecBaselineSnapshotBytes = len(codecBaseline)
	if len(codecBaseline) > 0 {
		out.BaselineReductionVsGob = float64(len(gobBaseline)) / float64(len(codecBaseline))
	}
	return out, nil
}

// String renders the distributed-execution report.
func (r *E13Result) String() string {
	var b strings.Builder
	b.WriteString("E13 (distributed execution: control plane + agents):\n")
	fmt.Fprintf(&b, "  topology                  %d routers, %d shards of the %d-input budget (%d workers)\n",
		r.Routers, r.Shards, r.TotalInputs, r.Workers)
	fmt.Fprintf(&b, "  in-process                %v\n", r.InProcessDuration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  1 agent                   %v (identical detections: %v)\n",
		r.OneAgentDuration.Round(time.Millisecond), r.SameDetectionsOneAgent)
	fmt.Fprintf(&b, "  3 agents                  %v (identical detections: %v, %d agents leased, %d reassignments)\n",
		r.ThreeAgentDuration.Round(time.Millisecond), r.SameDetectionsThreeAgents, r.AgentsLeased, r.Reassigned)
	fmt.Fprintf(&b, "  detections                %d\n", r.Detections)
	fmt.Fprintf(&b, "  wire footprint            baseline %d B, leases %d B, results %d B\n",
		r.BaselineBytes, r.ShardBytes, r.ResultBytes)
	fmt.Fprintf(&b, "  privacy boundary          %d result B/input vs %d full-state B/input (%.1fx smaller)\n",
		r.ResultBytesPerInput, r.FullStatePerInput, r.ReductionVsFullState)
	fmt.Fprintf(&b, "  baseline encoding         codec %d B vs gob counterfactual %d B (%.1fx smaller)\n",
		r.CodecBaselineSnapshotBytes, r.GobBaselineSnapshotBytes, r.BaselineReductionVsGob)
	return b.String()
}

// ---------------------------------------------------------------------------
// ECodec — checkpoint serialization: the legacy gob encoding vs the
// deterministic binary codec, on the paths that matter — whole-snapshot
// encode/decode, size accounting (Measure), per-clone restore from an encoded
// artifact, and the content-addressed ring's retention. This is the
// regression gate for the serialization hot path; CI publishes it as
// BENCH_codec.json.
// ---------------------------------------------------------------------------

// ECodecResult compares the two checkpoint encodings.
type ECodecResult struct {
	Routers    int
	Iterations int

	// Whole-snapshot encode/decode, per operation.
	GobEncodePer   time.Duration
	CodecEncodePer time.Duration
	EncodeSpeedup  float64
	GobDecodePer   time.Duration
	CodecDecodePer time.Duration
	DecodeSpeedup  float64

	// Encoded footprint of the same snapshot.
	GobBytes   int
	CodecBytes int
	// SizeRatio is gob over codec (>1 means the codec is smaller).
	SizeRatio float64

	// Size accounting: MeasureGob re-encodes every node into a counting
	// writer; the codec Measure encodes nodes once and computes the envelope
	// arithmetically.
	GobMeasurePer   time.Duration
	CodecMeasurePer time.Duration
	MeasureSpeedup  float64

	// Restore-from-artifact, per clone: decode the encoded snapshot, build
	// the store, restore every router — the cold path an agent pays per
	// fetched baseline and a debugger pays per loaded artifact.
	GobRestorePer   time.Duration
	CodecRestorePer time.Duration
	RestoreSpeedup  float64

	// Content-addressed ring retention over quiet epochs: epochs pushed,
	// bytes a per-epoch copy would retain, bytes actually retained, and the
	// per-epoch delta accounting of the final quiet epoch (envelope plus one
	// hash reference per unchanged node).
	RingEpochs        int
	RingCopiedBytes   int
	RingRetainedBytes int
	QuietEpochDeltaB  int
	QuietEpochChanged int
}

// RunECodec benchmarks the checkpoint codecs on the 27-router demo snapshot.
func RunECodec(cfg ExperimentConfig) (*ECodecResult, error) {
	topo := topology.Demo27()
	copts := cluster.Options{Seed: cfg.Seed, MaxEvents: 300000}
	live, err := cluster.Build(topo, copts)
	if err != nil {
		return nil, err
	}
	live.Converge()
	snap := live.Snapshot()

	out := &ECodecResult{
		Routers:    len(topo.Nodes),
		Iterations: cfg.inputs(64, 16),
	}

	gobEnc, codecEnc, err := benchSnapshotCodec(snap, out.Iterations,
		&out.GobEncodePer, &out.CodecEncodePer, &out.GobDecodePer, &out.CodecDecodePer)
	if err != nil {
		return nil, err
	}
	out.GobBytes, out.CodecBytes = len(gobEnc), len(codecEnc)
	if out.CodecEncodePer > 0 {
		out.EncodeSpeedup = float64(out.GobEncodePer) / float64(out.CodecEncodePer)
	}
	if out.CodecDecodePer > 0 {
		out.DecodeSpeedup = float64(out.GobDecodePer) / float64(out.CodecDecodePer)
	}
	if out.CodecBytes > 0 {
		out.SizeRatio = float64(out.GobBytes) / float64(out.CodecBytes)
	}

	// Size accounting.
	start := time.Now()
	for i := 0; i < out.Iterations; i++ {
		if _, err := checkpoint.MeasureGob(snap); err != nil {
			return nil, err
		}
	}
	out.GobMeasurePer = time.Since(start) / time.Duration(out.Iterations)
	start = time.Now()
	for i := 0; i < out.Iterations; i++ {
		if _, err := checkpoint.Measure(snap); err != nil {
			return nil, err
		}
	}
	out.CodecMeasurePer = time.Since(start) / time.Duration(out.Iterations)
	if out.CodecMeasurePer > 0 {
		out.MeasureSpeedup = float64(out.GobMeasurePer) / float64(out.CodecMeasurePer)
	}

	// Restore-from-artifact: decode, store, restore every router.
	restoreAll := func(artifact []byte) error {
		decoded, err := checkpoint.Decode(artifact)
		if err != nil {
			return err
		}
		store, err := checkpoint.NewStore(decoded)
		if err != nil {
			return err
		}
		for _, name := range store.NodeNames() {
			if _, err := store.Restore(name); err != nil {
				return err
			}
		}
		return nil
	}
	restoreIters := cfg.inputs(16, 4)
	start = time.Now()
	for i := 0; i < restoreIters; i++ {
		if err := restoreAll(gobEnc); err != nil {
			return nil, err
		}
	}
	out.GobRestorePer = time.Since(start) / time.Duration(restoreIters)
	start = time.Now()
	for i := 0; i < restoreIters; i++ {
		if err := restoreAll(codecEnc); err != nil {
			return nil, err
		}
	}
	out.CodecRestorePer = time.Since(start) / time.Duration(restoreIters)
	if out.CodecRestorePer > 0 {
		out.RestoreSpeedup = float64(out.GobRestorePer) / float64(out.CodecRestorePer)
	}

	// Content-addressed retention: push the same quiet snapshot repeatedly.
	out.RingEpochs = cfg.inputs(8, 4)
	ring := checkpoint.NewRing(out.RingEpochs)
	var lastDelta, lastChanged int
	for i := 0; i < out.RingEpochs; i++ {
		ep, err := ring.Push(snap.Clone())
		if err != nil {
			return nil, err
		}
		out.RingCopiedBytes += ep.Bytes
		lastDelta, lastChanged = ep.DeltaBytes, ep.NodesChanged
	}
	out.RingRetainedBytes = ring.RetainedBytes()
	out.QuietEpochDeltaB = lastDelta
	out.QuietEpochChanged = lastChanged
	return out, nil
}

// String renders the codec comparison report.
func (r *ECodecResult) String() string {
	var b strings.Builder
	b.WriteString("ECodec (checkpoint serialization: gob vs deterministic codec):\n")
	fmt.Fprintf(&b, "  topology                  %d routers, %d iterations\n", r.Routers, r.Iterations)
	fmt.Fprintf(&b, "  snapshot encode           gob %v, codec %v (%.1fx faster)\n",
		r.GobEncodePer.Round(time.Microsecond), r.CodecEncodePer.Round(time.Microsecond), r.EncodeSpeedup)
	fmt.Fprintf(&b, "  snapshot decode           gob %v, codec %v (%.1fx faster)\n",
		r.GobDecodePer.Round(time.Microsecond), r.CodecDecodePer.Round(time.Microsecond), r.DecodeSpeedup)
	fmt.Fprintf(&b, "  snapshot size             gob %d B, codec %d B (%.1fx smaller)\n",
		r.GobBytes, r.CodecBytes, r.SizeRatio)
	fmt.Fprintf(&b, "  size accounting (Measure) gob %v, codec %v (%.1fx faster)\n",
		r.GobMeasurePer.Round(time.Microsecond), r.CodecMeasurePer.Round(time.Microsecond), r.MeasureSpeedup)
	fmt.Fprintf(&b, "  restore from artifact     gob %v, codec %v (%.1fx faster)\n",
		r.GobRestorePer.Round(time.Microsecond), r.CodecRestorePer.Round(time.Microsecond), r.RestoreSpeedup)
	fmt.Fprintf(&b, "  quiet ring (%d epochs)     %d B if copied, %d B retained; last delta %d B, %d nodes changed\n",
		r.RingEpochs, r.RingCopiedBytes, r.RingRetainedBytes, r.QuietEpochDeltaB, r.QuietEpochChanged)
	return b.String()
}

// ---------------------------------------------------------------------------
// E14 — three-way differential conformance and process isolation. E11's
// oracle had two points of comparison; with the obgpd backend deployed the
// transit tier runs a third legal tie-break order and every divergence is a
// genuine vote: majority-outvoted (2-vs-1) or pairwise-legal (all three
// select differently). The same hijack campaign as E11 runs homogeneous and
// on the three-way Demo27Hetero3 mix — the mixed run twice, to demonstrate
// the divergence set is deterministic. A second leg re-runs a small seeded
// campaign with the obgpd backend behind the out-of-process driver
// (proc:obgpd subprocess per node) and asserts detection fingerprints are
// identical to in-process — process isolation is unobservable in results —
// while recording its wall-clock cost. The leg degrades to a recorded skip
// where the environment cannot fork/exec.
// ---------------------------------------------------------------------------

// E14Result compares homogeneous, three-way-mixed and subprocess-backed
// campaigns.
type E14Result struct {
	Routers int
	// Implementations deployed in the three-way run and their node counts.
	Implementations map[string]int

	TotalInputs int
	Workers     int

	HomogeneousDuration time.Duration
	MixedDuration       time.Duration

	// Safety equivalences, as in E11: the mix masks no fault class, and the
	// detections that legitimately move sit at divergence-flagged nodes.
	SafetyDetections        int
	SameSafetyClasses       bool
	SafetyDiffering         int
	DivergenceExplainsDiffs bool

	// The three-way vote. MajorityOutvoted counts 2-vs-1 divergences,
	// PairwiseLegal the three-way splits; together they partition
	// Divergences. DeterministicDivergence reports that a second run of the
	// same mixed campaign produced an identical divergence set.
	Divergences             int
	DivergentNodes          []string
	MajorityOutvoted        int
	PairwiseLegal           int
	DeterministicDivergence bool
	SteadyStateDivergence   bool

	// Process-isolation leg: the same seeded campaign over in-process obgpd
	// and over proc:obgpd subprocess nodes. ProcChecked is false (with the
	// reason recorded) where the sandbox forbids fork/exec.
	ProcChecked         bool
	ProcSkipReason      string
	ProcRouters         int
	InProcDuration      time.Duration
	ProcDuration        time.Duration
	ProcSameDetections  bool
	ProcOverheadPercent float64
}

// RunE14 measures the three-way differential oracle on the mixed 27-router
// demo and the out-of-process driver's result equivalence.
func RunE14(cfg ExperimentConfig) (*E14Result, error) {
	optsFor := func(topo *topology.Topology) cluster.Options {
		return cluster.Options{
			Seed: cfg.Seed,
			ConfigOverride: faults.ApplyConfigFaults(
				faults.MisOrigination{Router: "R12", Prefix: topo.Nodes[26].Prefixes[0]},
				faults.MissingImportFilter{Router: "R1", Peer: "R4"},
			),
			MaxEvents: 300000,
		}
	}

	out := &E14Result{
		TotalInputs:     cfg.inputs(216, 54),
		Workers:         runtime.NumCPU(),
		Implementations: make(map[string]int),
	}

	run := func(topo *topology.Topology) (time.Duration, *CampaignResult, *cluster.Cluster, error) {
		copts := optsFor(topo)
		live, err := cluster.Build(topo, copts)
		if err != nil {
			return 0, nil, nil, err
		}
		live.Converge()
		props := append(checker.DefaultProperties(topo), checker.CrossImplDivergence{})
		campaign := NewCampaign(live, topo,
			WithStrategy(AllNodesStrategy{}),
			WithBudget(Budget{TotalInputs: out.TotalInputs}),
			WithFuzzSeeds(cfg.inputs(8, 2)),
			WithSeed(cfg.Seed),
			WithProperties(props...),
			WithClusterOptions(copts),
			WithWorkers(out.Workers))
		start := time.Now()
		res, err := campaign.Run(context.Background())
		return time.Since(start), res, live, err
	}

	homoDur, homoRes, _, err := run(topology.Demo27())
	if err != nil {
		return nil, err
	}
	mixedDur, mixedRes, mixedLive, err := run(topology.Demo27Hetero3())
	if err != nil {
		return nil, err
	}
	// Determinism check: the identical mixed campaign again, divergences
	// compared below.
	_, mixedRes2, _, err := run(topology.Demo27Hetero3())
	if err != nil {
		return nil, err
	}

	mixedTopo := topology.Demo27Hetero3()
	out.Routers = len(mixedTopo.Nodes)
	out.Implementations = mixedTopo.ImplementationCounts()
	out.HomogeneousDuration, out.MixedDuration = homoDur, mixedDur

	safetyKeys := func(r *CampaignResult) (map[string]Detection, map[checker.FaultClass]bool, int) {
		keys := make(map[string]Detection)
		classes := make(map[checker.FaultClass]bool)
		n := 0
		for _, d := range r.Detections {
			if d.Class == checker.ClassImplDivergence {
				continue
			}
			keys[fmt.Sprintf("%s@%d", d.Violation.Key(), d.InputIndex)] = d
			classes[d.Class] = true
			n++
		}
		return keys, classes, n
	}
	homoKeys, homoClasses, _ := safetyKeys(homoRes)
	mixedKeys, mixedClasses, mixedSafety := safetyKeys(mixedRes)
	out.SafetyDetections = mixedSafety
	out.SameSafetyClasses = true
	for cl := range homoClasses {
		if !mixedClasses[cl] {
			out.SameSafetyClasses = false
		}
	}

	// The divergence set, canonicalized with the vote classification so the
	// determinism comparison covers the classifications too.
	divergenceSet := func(r *CampaignResult) []string {
		var ks []string
		for _, d := range r.Detections {
			if d.Class == checker.ClassImplDivergence {
				ks = append(ks, d.Violation.Key()+" "+d.Violation.Detail)
			}
		}
		sort.Strings(ks)
		return ks
	}
	set1, set2 := divergenceSet(mixedRes), divergenceSet(mixedRes2)
	out.DeterministicDivergence = strings.Join(set1, ";") == strings.Join(set2, ";")

	divergent := make(map[string]bool)
	for _, d := range mixedRes.Detections {
		if d.Class != checker.ClassImplDivergence {
			continue
		}
		out.Divergences++
		divergent[d.Violation.Node] = true
		switch {
		case strings.HasPrefix(d.Violation.Detail, checker.DivergenceMajorityOutvoted):
			out.MajorityOutvoted++
		case strings.HasPrefix(d.Violation.Detail, checker.DivergencePairwiseLegal):
			out.PairwiseLegal++
		}
	}
	for n := range divergent {
		out.DivergentNodes = append(out.DivergentNodes, n)
	}
	sort.Strings(out.DivergentNodes)

	out.DivergenceExplainsDiffs = true
	diff := func(a, b map[string]Detection) {
		for k, d := range a {
			if _, ok := b[k]; ok {
				continue
			}
			out.SafetyDiffering++
			if !divergent[d.Violation.Node] {
				out.DivergenceExplainsDiffs = false
			}
		}
	}
	diff(homoKeys, mixedKeys)
	diff(mixedKeys, homoKeys)

	out.SteadyStateDivergence = !checker.CrossImplDivergence{}.Check(mixedLive).OK()

	// Process-isolation leg. The harness binary must route procdriver child
	// re-executions (cmd/dice-bench and the test binaries call
	// procdriver.MaybeRunChild in main); environments that cannot fork/exec
	// degrade to a recorded skip.
	if err := procdriver.SpawnCheck(); err != nil {
		out.ProcSkipReason = err.Error()
		return out, nil
	}
	defer procdriver.KillAll()
	procRun := func(impl string) (time.Duration, *CampaignResult, error) {
		topo := topology.Line(4)
		topo.SetImpl(impl, topo.NodeNames()...)
		copts := cluster.Options{
			Seed:           cfg.Seed,
			ConfigOverride: faults.ApplyConfigFaults(faults.MisOrigination{Router: "R4", Prefix: topo.Nodes[0].Prefixes[0]}),
		}
		live, err := cluster.Build(topo, copts)
		if err != nil {
			return 0, nil, err
		}
		live.Converge()
		campaign := NewCampaign(live, topo,
			WithStrategy(AllNodesStrategy{}),
			WithBudget(Budget{TotalInputs: cfg.inputs(48, 12)}),
			WithFuzzSeeds(cfg.inputs(4, 2)),
			WithSeed(cfg.Seed),
			WithClusterOptions(copts),
			WithWorkers(out.Workers))
		start := time.Now()
		res, err := campaign.Run(context.Background())
		return time.Since(start), res, err
	}
	inprocDur, inprocRes, err := procRun("obgpd")
	if err != nil {
		return nil, err
	}
	procDur, procRes, err := procRun("proc:obgpd")
	if err != nil {
		return nil, err
	}
	out.ProcChecked = true
	out.ProcRouters = 4
	out.InProcDuration, out.ProcDuration = inprocDur, procDur
	out.ProcSameDetections = detectionFingerprint(procRes) == detectionFingerprint(inprocRes) && len(inprocRes.Detections) > 0
	if inprocDur > 0 {
		out.ProcOverheadPercent = 100 * (float64(procDur) - float64(inprocDur)) / float64(inprocDur)
	}
	return out, nil
}

// String renders the three-way conformance report.
func (r *E14Result) String() string {
	var b strings.Builder
	b.WriteString("E14 (three-way differential conformance, process isolation):\n")
	impls := make([]string, 0, len(r.Implementations))
	for impl := range r.Implementations {
		impls = append(impls, impl)
	}
	sort.Strings(impls)
	fmt.Fprintf(&b, "  topology                  %d routers (", r.Routers)
	for i, impl := range impls {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d %s", r.Implementations[impl], impl)
	}
	b.WriteString(")\n")
	fmt.Fprintf(&b, "  input budget              %d clone executions per run (%d workers)\n", r.TotalInputs, r.Workers)
	fmt.Fprintf(&b, "  homogeneous campaign      %v\n", r.HomogeneousDuration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  three-way campaign        %v\n", r.MixedDuration.Round(time.Millisecond))
	fmt.Fprintf(&b, "  safety detections         %d (same fault classes as homogeneous: %v)\n", r.SafetyDetections, r.SameSafetyClasses)
	fmt.Fprintf(&b, "  detections that moved     %d, all at divergence-flagged nodes: %v\n", r.SafetyDiffering, r.DivergenceExplainsDiffs)
	fmt.Fprintf(&b, "  divergences               %d at %d nodes %v (deterministic: %v, steady-state: %v)\n",
		r.Divergences, len(r.DivergentNodes), r.DivergentNodes, r.DeterministicDivergence, r.SteadyStateDivergence)
	fmt.Fprintf(&b, "  vote classification       %d majority-outvoted (2-vs-1), %d pairwise-legal (three-way)\n", r.MajorityOutvoted, r.PairwiseLegal)
	if !r.ProcChecked {
		fmt.Fprintf(&b, "  process isolation         skipped: %s\n", r.ProcSkipReason)
	} else {
		fmt.Fprintf(&b, "  process isolation         %d-router line, in-process %v vs proc:obgpd %v (%.0f%% overhead), identical detections: %v\n",
			r.ProcRouters, r.InProcDuration.Round(time.Millisecond), r.ProcDuration.Round(time.Millisecond),
			r.ProcOverheadPercent, r.ProcSameDetections)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// E15 — observability overhead: the dice-serve instrumentation layer
// (metrics registry over every subsystem, per-epoch exposition, span tracing
// and codec-persisted soak history) measured against the identical soak run
// bare. The instrumented soak must detect exactly the same violations, the
// exposition must be byte-deterministic, and the whole layer must stay
// within a small overhead (<2% is the budget BENCH tracks).
// ---------------------------------------------------------------------------

// E15Result summarizes the observability-overhead comparison.
type E15Result struct {
	Routers int
	Epochs  int

	// Soak wall clock with the observability layer off and on, and the
	// relative overhead ((on-off)/off).
	BareDuration         time.Duration
	InstrumentedDuration time.Duration
	OverheadPercent      float64

	// The instrumented run's exposition: registered series, body size, mean
	// render latency over 64 scrapes, and 32-scrape byte-determinism.
	SeriesCount             int
	ExpositionBytes         int
	ExpositionMean          time.Duration
	ExpositionDeterministic bool

	// Detection equivalence and the observability artifacts the run left.
	Findings          int
	SameFindings      bool
	SpansRecorded     int
	HistoryBytes      int
	HistoryRoundTrips bool
}

// e15soak is one bounded soak's outcome.
type e15soak struct {
	duration time.Duration
	epochs   int
	findings []string
	reg      *obs.Registry
	tracer   *obs.Tracer
	hist     *serve.History
}

// runE15Soak runs the standard demo soak once, optionally under the full
// observability layer (registry, per-epoch scrape, span feed, history rows).
func runE15Soak(cfg ExperimentConfig, instrument bool) (*e15soak, error) {
	topo := topology.Demo27()
	victim := topo.Nodes[26].Prefixes[0]
	copts := cluster.Options{
		Seed: cfg.Seed,
		ConfigOverride: faults.ApplyConfigFaults(
			faults.MisOrigination{Router: "R12", Prefix: victim},
			faults.MissingImportFilter{Router: "R1", Peer: "R4"},
		),
		MaxEvents: 300000,
	}
	deployed, err := cluster.Build(topo, copts)
	if err != nil {
		return nil, err
	}
	deployed.Converge()

	out := &e15soak{}
	opts := live.Options{
		Seed:              cfg.Seed,
		ClusterOptions:    copts,
		MaxEpochs:         cfg.inputs(8, 3),
		ScenariosPerEpoch: 0,
		InputsPerScenario: cfg.inputs(16, 5),
		FuzzSeeds:         cfg.inputs(4, 2),
		Explorers:         []string{"R1"},
		// Pin the governor (as in E12) so both halves of the comparison
		// checkpoint on the same cadence regardless of machine speed.
		PauseBudget: time.Hour,
	}

	var rt *live.Runtime
	var scrape bytes.Buffer
	if instrument {
		out.reg = obs.NewRegistry()
		out.tracer = obs.NewTracer(4096)
		out.hist = &serve.History{Soaks: 1}
		live.RegisterMetrics(out.reg, func() *live.Runtime { return rt })

		var mu sync.Mutex
		campaigns := make(map[string]uint64)
		opts.OnEpoch = func(sum live.EpochSummary) {
			out.hist.AddEpoch(1, sum)
			// A scrape per epoch is the cost a scraping Prometheus adds to
			// the loop; the body is rendered in full and discarded.
			scrape.Reset()
			_ = out.reg.WritePrometheus(&scrape)
		}
		opts.OnCampaignEvent = func(epoch int, scenario string, ev dice.Event) {
			key := fmt.Sprintf("%d/%s", epoch, scenario)
			mu.Lock()
			defer mu.Unlock()
			switch ev.Kind {
			case dice.EventCampaignStart:
				campaigns[key] = out.tracer.Begin(obs.SpanCampaign, key, 0)
			case dice.EventCampaignEnd:
				if id, ok := campaigns[key]; ok {
					out.tracer.End(id)
					delete(campaigns, key)
				}
			}
		}
	}

	rt, err = live.NewRuntime(deployed, topo, opts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	report, err := rt.Run(context.Background())
	if err != nil {
		return nil, err
	}
	out.duration = time.Since(start)
	out.epochs = rt.Stats().Epochs
	for _, f := range report.Findings() {
		out.findings = append(out.findings, fmt.Sprintf("%d/%s/%s<-%s/%d/%s",
			f.Epoch, f.Scenario, f.Explorer, f.FromPeer, f.InputIndex, f.Violation.Key()))
	}
	sort.Strings(out.findings)
	return out, nil
}

// RunE15 runs the soak bare and instrumented and compares.
func RunE15(cfg ExperimentConfig) (*E15Result, error) {
	bare, err := runE15Soak(cfg, false)
	if err != nil {
		return nil, err
	}
	inst, err := runE15Soak(cfg, true)
	if err != nil {
		return nil, err
	}

	out := &E15Result{
		Routers:              len(topology.Demo27().Nodes),
		Epochs:               inst.epochs,
		BareDuration:         bare.duration,
		InstrumentedDuration: inst.duration,
		Findings:             len(inst.findings),
		SameFindings:         len(bare.findings) == len(inst.findings),
	}
	if out.SameFindings {
		for i := range bare.findings {
			if bare.findings[i] != inst.findings[i] {
				out.SameFindings = false
				break
			}
		}
	}
	if bare.duration > 0 {
		out.OverheadPercent = 100 * float64(inst.duration-bare.duration) / float64(bare.duration)
	}

	// Exposition: size, determinism and render latency over the settled
	// post-soak state.
	first := inst.reg.Expose()
	out.SeriesCount = len(inst.reg.Names())
	out.ExpositionBytes = len(first)
	out.ExpositionDeterministic = true
	for i := 0; i < 32; i++ {
		if !bytes.Equal(inst.reg.Expose(), first) {
			out.ExpositionDeterministic = false
			break
		}
	}
	const renders = 64
	var buf bytes.Buffer
	start := time.Now()
	for i := 0; i < renders; i++ {
		buf.Reset()
		_ = inst.reg.WritePrometheus(&buf)
	}
	out.ExpositionMean = time.Since(start) / renders

	for _, n := range inst.tracer.Counts() {
		out.SpansRecorded += int(n)
	}
	encoded := inst.hist.Encode()
	out.HistoryBytes = len(encoded)
	if decoded, err := serve.DecodeHistory(encoded); err == nil {
		out.HistoryRoundTrips = bytes.Equal(decoded.Encode(), encoded)
	}
	return out, nil
}

// String renders the observability-overhead report.
func (r *E15Result) String() string {
	var b strings.Builder
	b.WriteString("E15 (dice-serve observability: instrumentation overhead and exposition):\n")
	fmt.Fprintf(&b, "  topology                  %d routers, %d epochs\n", r.Routers, r.Epochs)
	fmt.Fprintf(&b, "  soak wall clock           bare %v, instrumented %v (overhead %.2f%%)\n",
		r.BareDuration.Round(time.Millisecond), r.InstrumentedDuration.Round(time.Millisecond), r.OverheadPercent)
	fmt.Fprintf(&b, "  exposition                %d series, %d bytes, mean render %v, 32-scrape byte-identical: %v\n",
		r.SeriesCount, r.ExpositionBytes, r.ExpositionMean.Round(time.Microsecond), r.ExpositionDeterministic)
	fmt.Fprintf(&b, "  findings                  %d, identical to bare soak: %v\n", r.Findings, r.SameFindings)
	fmt.Fprintf(&b, "  artifacts                 %d spans, %d-byte history (codec round-trips: %v)\n",
		r.SpansRecorded, r.HistoryBytes, r.HistoryRoundTrips)
	return b.String()
}
