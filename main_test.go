package dice

import (
	"os"
	"testing"

	"github.com/dice-project/dice/internal/node/procdriver"
)

// TestMain lets this test binary double as the procdriver's backend
// subprocess: experiment legs over proc: topologies (E14) re-exec the binary,
// and MaybeRunChild diverts those re-executions before the suite runs.
func TestMain(m *testing.M) {
	procdriver.MaybeRunChild()
	os.Exit(m.Run())
}
