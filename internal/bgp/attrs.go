package bgp

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// AttrType identifies a BGP path attribute.
type AttrType uint8

// Path attribute type codes (RFC 4271 §5, RFC 1997).
const (
	AttrOrigin          AttrType = 1
	AttrASPath          AttrType = 2
	AttrNextHop         AttrType = 3
	AttrMED             AttrType = 4
	AttrLocalPref       AttrType = 5
	AttrAtomicAggregate AttrType = 6
	AttrAggregator      AttrType = 7
	AttrCommunities     AttrType = 8
)

// String returns the attribute name.
func (t AttrType) String() string {
	switch t {
	case AttrOrigin:
		return "ORIGIN"
	case AttrASPath:
		return "AS_PATH"
	case AttrNextHop:
		return "NEXT_HOP"
	case AttrMED:
		return "MULTI_EXIT_DISC"
	case AttrLocalPref:
		return "LOCAL_PREF"
	case AttrAtomicAggregate:
		return "ATOMIC_AGGREGATE"
	case AttrAggregator:
		return "AGGREGATOR"
	case AttrCommunities:
		return "COMMUNITIES"
	}
	return fmt.Sprintf("AttrType(%d)", uint8(t))
}

// Path attribute flag bits.
const (
	FlagOptional   = 0x80
	FlagTransitive = 0x40
	FlagPartial    = 0x20
	FlagExtended   = 0x10
)

// Origin attribute values.
const (
	OriginIGP        uint8 = 0
	OriginEGP        uint8 = 1
	OriginIncomplete uint8 = 2
)

// OriginString renders an origin code.
func OriginString(o uint8) string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "INCOMPLETE"
	}
	return fmt.Sprintf("Origin(%d)", o)
}

// AS_PATH segment types.
const (
	ASPathSegSet      uint8 = 1
	ASPathSegSequence uint8 = 2
)

// DefaultLocalPref is the LOCAL_PREF assumed when the attribute is absent.
const DefaultLocalPref uint32 = 100

// PathAttributes is the decoded set of path attributes carried by an UPDATE.
// Optional attributes use pointer or flag fields so that "absent" is
// distinguishable from a zero value.
type PathAttributes struct {
	Origin          uint8
	ASPath          []ASN // AS_SEQUENCE, most recent AS first
	ASSet           []ASN // optional trailing AS_SET (from aggregation)
	NextHop         uint32
	MED             *uint32
	LocalPref       *uint32
	AtomicAggregate bool
	HasAggregator   bool
	AggregatorAS    ASN
	AggregatorID    uint32
	Communities     []Community
}

// Clone returns a deep copy of the attributes.
func (a *PathAttributes) Clone() *PathAttributes {
	if a == nil {
		return nil
	}
	out := *a
	out.ASPath = append([]ASN(nil), a.ASPath...)
	out.ASSet = append([]ASN(nil), a.ASSet...)
	out.Communities = append([]Community(nil), a.Communities...)
	if a.MED != nil {
		v := *a.MED
		out.MED = &v
	}
	if a.LocalPref != nil {
		v := *a.LocalPref
		out.LocalPref = &v
	}
	return &out
}

// EffectiveLocalPref returns LOCAL_PREF, or the default when absent.
func (a *PathAttributes) EffectiveLocalPref() uint32 {
	if a.LocalPref != nil {
		return *a.LocalPref
	}
	return DefaultLocalPref
}

// EffectiveMED returns MED, or zero when absent.
func (a *PathAttributes) EffectiveMED() uint32 {
	if a.MED != nil {
		return *a.MED
	}
	return 0
}

// SetLocalPref sets LOCAL_PREF.
func (a *PathAttributes) SetLocalPref(v uint32) { a.LocalPref = &v }

// SetMED sets MULTI_EXIT_DISC.
func (a *PathAttributes) SetMED(v uint32) { a.MED = &v }

// PathLen returns the AS_PATH length used by the decision process: the
// number of ASes in the sequence plus one if an AS_SET is present (RFC 4271
// counts an AS_SET as a single hop).
func (a *PathAttributes) PathLen() int {
	n := len(a.ASPath)
	if len(a.ASSet) > 0 {
		n++
	}
	return n
}

// HasASLoop reports whether the AS_PATH already contains the given AS, which
// is the standard eBGP loop-prevention check.
func (a *PathAttributes) HasASLoop(asn ASN) bool {
	for _, p := range a.ASPath {
		if p == asn {
			return true
		}
	}
	for _, p := range a.ASSet {
		if p == asn {
			return true
		}
	}
	return false
}

// HasCommunity reports whether the community is attached.
func (a *PathAttributes) HasCommunity(c Community) bool {
	for _, x := range a.Communities {
		if x == c {
			return true
		}
	}
	return false
}

// AddCommunity attaches a community if not already present.
func (a *PathAttributes) AddCommunity(c Community) {
	if !a.HasCommunity(c) {
		a.Communities = append(a.Communities, c)
	}
}

// PrependAS prepends the AS to the AS_PATH count times (route export / AS
// path prepending policy action).
func (a *PathAttributes) PrependAS(asn ASN, count int) {
	for i := 0; i < count; i++ {
		a.ASPath = append([]ASN{asn}, a.ASPath...)
	}
}

// OriginAS returns the last AS in the AS_PATH (the originator), or 0 when
// the path is empty (a locally originated route).
func (a *PathAttributes) OriginAS() ASN {
	if len(a.ASPath) == 0 {
		return 0
	}
	return a.ASPath[len(a.ASPath)-1]
}

// String renders the attributes compactly for logs and the demo output.
func (a *PathAttributes) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "origin=%s as-path=%v next-hop=%s lp=%d", OriginString(a.Origin), a.ASPath, ipString(a.NextHop), a.EffectiveLocalPref())
	if a.MED != nil {
		fmt.Fprintf(&sb, " med=%d", *a.MED)
	}
	if len(a.Communities) > 0 {
		fmt.Fprintf(&sb, " communities=%v", a.Communities)
	}
	return sb.String()
}

// appendAttr appends one attribute TLV with standard (non-extended) length.
func appendAttr(dst []byte, flags uint8, typ AttrType, value []byte) []byte {
	if len(value) > 255 {
		flags |= FlagExtended
		dst = append(dst, flags, byte(typ))
		dst = appendU16(dst, uint16(len(value)))
	} else {
		dst = append(dst, flags, byte(typ), byte(len(value)))
	}
	return append(dst, value...)
}

// EncodeAttrs serializes the attributes in canonical (ascending type) order.
func EncodeAttrs(a *PathAttributes) []byte {
	var out []byte
	// ORIGIN
	out = appendAttr(out, FlagTransitive, AttrOrigin, []byte{a.Origin})
	// AS_PATH
	var pathVal []byte
	if len(a.ASPath) > 0 {
		pathVal = append(pathVal, ASPathSegSequence, byte(len(a.ASPath)))
		for _, asn := range a.ASPath {
			pathVal = appendU16(pathVal, uint16(asn))
		}
	}
	if len(a.ASSet) > 0 {
		pathVal = append(pathVal, ASPathSegSet, byte(len(a.ASSet)))
		for _, asn := range a.ASSet {
			pathVal = appendU16(pathVal, uint16(asn))
		}
	}
	out = appendAttr(out, FlagTransitive, AttrASPath, pathVal)
	// NEXT_HOP
	var nh [4]byte
	binary.BigEndian.PutUint32(nh[:], a.NextHop)
	out = appendAttr(out, FlagTransitive, AttrNextHop, nh[:])
	// MED
	if a.MED != nil {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], *a.MED)
		out = appendAttr(out, FlagOptional, AttrMED, v[:])
	}
	// LOCAL_PREF
	if a.LocalPref != nil {
		var v [4]byte
		binary.BigEndian.PutUint32(v[:], *a.LocalPref)
		out = appendAttr(out, FlagTransitive, AttrLocalPref, v[:])
	}
	// ATOMIC_AGGREGATE
	if a.AtomicAggregate {
		out = appendAttr(out, FlagTransitive, AttrAtomicAggregate, nil)
	}
	// AGGREGATOR
	if a.HasAggregator {
		var v [6]byte
		binary.BigEndian.PutUint16(v[0:2], uint16(a.AggregatorAS))
		binary.BigEndian.PutUint32(v[2:6], a.AggregatorID)
		out = appendAttr(out, FlagOptional|FlagTransitive, AttrAggregator, v[:])
	}
	// COMMUNITIES
	if len(a.Communities) > 0 {
		var v []byte
		for _, c := range a.Communities {
			v = appendU32(v, uint32(c))
		}
		out = appendAttr(out, FlagOptional|FlagTransitive, AttrCommunities, v)
	}
	return out
}
