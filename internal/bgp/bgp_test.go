package bgp

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/dice-project/dice/internal/concolic"
)

func TestParsePrefix(t *testing.T) {
	tests := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{"10.0.0.0/8", "10.0.0.0/8", false},
		{"192.168.1.0/24", "192.168.1.0/24", false},
		{"192.168.1.77/24", "192.168.1.0/24", false}, // host bits cleared
		{"0.0.0.0/0", "0.0.0.0/0", false},
		{"10.1.2.3/32", "10.1.2.3/32", false},
		{"10.0.0.0", "", true},
		{"10.0.0.0/33", "", true},
		{"10.0.0/8", "", true},
		{"300.0.0.0/8", "", true},
	}
	for _, tt := range tests {
		p, err := ParsePrefix(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("ParsePrefix(%q): expected error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParsePrefix(%q): %v", tt.in, err)
			continue
		}
		if p.String() != tt.want {
			t.Errorf("ParsePrefix(%q) = %s, want %s", tt.in, p, tt.want)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	p24 := MustParsePrefix("10.1.2.0/24")
	other := MustParsePrefix("11.0.0.0/8")
	if !p8.Contains(p16) || !p8.Contains(p24) || !p16.Contains(p24) {
		t.Errorf("Contains should hold for more-specific prefixes")
	}
	if p16.Contains(p8) {
		t.Errorf("less-specific prefix must not be contained")
	}
	if p8.Contains(other) {
		t.Errorf("disjoint prefix must not be contained")
	}
	if !p8.Contains(p8) {
		t.Errorf("a prefix contains itself")
	}
}

func TestPrefixWireRoundTrip(t *testing.T) {
	prefixes := []Prefix{
		MustParsePrefix("0.0.0.0/0"),
		MustParsePrefix("10.0.0.0/8"),
		MustParsePrefix("10.1.0.0/16"),
		MustParsePrefix("10.1.2.0/24"),
		MustParsePrefix("10.1.2.3/32"),
		MustParsePrefix("172.16.0.0/12"),
	}
	var wire []byte
	for _, p := range prefixes {
		wire = AppendPrefix(wire, p)
	}
	got, err := DecodePrefixes(wire)
	if err != nil {
		t.Fatalf("DecodePrefixes: %v", err)
	}
	if len(got) != len(prefixes) {
		t.Fatalf("decoded %d prefixes, want %d", len(got), len(prefixes))
	}
	for i := range got {
		if got[i] != prefixes[i] {
			t.Errorf("prefix %d = %s, want %s", i, got[i], prefixes[i])
		}
	}
}

func TestDecodePrefixErrors(t *testing.T) {
	if _, err := DecodePrefixes([]byte{33, 1, 2, 3, 4, 5}); err == nil {
		t.Errorf("mask length 33 should fail")
	}
	if _, err := DecodePrefixes([]byte{24, 10}); err == nil {
		t.Errorf("truncated address should fail")
	}
}

func TestCommunity(t *testing.T) {
	c := NewCommunity(65001, 300)
	if c.String() != "65001:300" {
		t.Errorf("Community string = %s", c)
	}
	if uint32(c) != 65001<<16|300 {
		t.Errorf("Community value = %x", uint32(c))
	}
}

func TestOpenRoundTrip(t *testing.T) {
	o := &Open{Version: 4, AS: 65001, HoldTime: 90, RouterID: RouterID(0x0a000001)}
	wire := Encode(o)
	msg, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got, ok := msg.(*Open)
	if !ok {
		t.Fatalf("decoded %T, want *Open", msg)
	}
	if *got != *o {
		t.Errorf("round trip = %+v, want %+v", got, o)
	}
}

func TestKeepaliveRoundTrip(t *testing.T) {
	wire := Encode(&Keepalive{})
	if len(wire) != HeaderLen {
		t.Errorf("KEEPALIVE length = %d, want %d", len(wire), HeaderLen)
	}
	msg, err := Decode(wire)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if msg.Type() != MsgKeepalive {
		t.Errorf("type = %v", msg.Type())
	}
}

func TestNotificationRoundTrip(t *testing.T) {
	n := &Notification{Code: ErrUpdateMessage, Subcode: ErrSubMalformedASPath, Data: []byte{1, 2}}
	msg, err := Decode(Encode(n))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got := msg.(*Notification)
	if got.Code != n.Code || got.Subcode != n.Subcode || len(got.Data) != 2 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	// Bad marker.
	wire := Encode(&Keepalive{})
	wire[0] = 0
	if _, err := Decode(wire); err == nil {
		t.Errorf("bad marker should fail")
	}
	// Bad length.
	wire = Encode(&Keepalive{})
	wire[17] = 200
	if _, err := Decode(wire); err == nil {
		t.Errorf("bad length should fail")
	}
	// Bad type.
	wire = Encode(&Keepalive{})
	wire[18] = 77
	if _, err := Decode(wire); err == nil {
		t.Errorf("bad type should fail")
	}
	// Short input.
	if _, err := Decode([]byte{0xff, 0xff}); err == nil {
		t.Errorf("short input should fail")
	}
	var merr *MessageError
	_, err := Decode([]byte{0xff})
	if !errors.As(err, &merr) {
		t.Errorf("errors should be *MessageError, got %T", err)
	}
}

func TestOpenValidation(t *testing.T) {
	bad := &Open{Version: 3, AS: 65001, HoldTime: 90, RouterID: 1}
	if _, err := Decode(Encode(bad)); err == nil {
		t.Errorf("version 3 should be rejected")
	}
	bad = &Open{Version: 4, AS: 65001, HoldTime: 90, RouterID: 0}
	if _, err := Decode(Encode(bad)); err == nil {
		t.Errorf("zero router id should be rejected")
	}
	bad = &Open{Version: 4, AS: 65001, HoldTime: 2, RouterID: 1}
	if _, err := Decode(Encode(bad)); err == nil {
		t.Errorf("hold time 2 should be rejected")
	}
}

func sampleAttrs() *PathAttributes {
	a := &PathAttributes{
		Origin:  OriginIGP,
		ASPath:  []ASN{65002, 65010},
		NextHop: 0x0a000002,
	}
	a.SetLocalPref(200)
	a.SetMED(50)
	a.AddCommunity(NewCommunity(65002, 100))
	a.AddCommunity(CommunityNoExport)
	return a
}

func TestUpdateRoundTrip(t *testing.T) {
	u := &Update{
		Withdrawn: []Prefix{MustParsePrefix("192.0.2.0/24")},
		Attrs:     sampleAttrs(),
		NLRI:      []Prefix{MustParsePrefix("10.1.0.0/16"), MustParsePrefix("10.2.0.0/16")},
	}
	msg, err := Decode(Encode(u))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got, ok := msg.(*Update)
	if !ok {
		t.Fatalf("decoded %T", msg)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0] != u.Withdrawn[0] {
		t.Errorf("withdrawn = %v", got.Withdrawn)
	}
	if len(got.NLRI) != 2 || got.NLRI[0] != u.NLRI[0] || got.NLRI[1] != u.NLRI[1] {
		t.Errorf("nlri = %v", got.NLRI)
	}
	ga := got.Attrs
	if ga.Origin != OriginIGP || len(ga.ASPath) != 2 || ga.ASPath[0] != 65002 || ga.ASPath[1] != 65010 {
		t.Errorf("attrs = %+v", ga)
	}
	if ga.NextHop != 0x0a000002 || ga.EffectiveLocalPref() != 200 || ga.EffectiveMED() != 50 {
		t.Errorf("attrs values = %+v", ga)
	}
	if len(ga.Communities) != 2 || !ga.HasCommunity(CommunityNoExport) {
		t.Errorf("communities = %v", ga.Communities)
	}
}

func TestUpdateWithdrawOnly(t *testing.T) {
	u := &Update{Withdrawn: []Prefix{MustParsePrefix("10.0.0.0/8")}}
	msg, err := Decode(Encode(u))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	got := msg.(*Update)
	if len(got.NLRI) != 0 || got.Attrs != nil || len(got.Withdrawn) != 1 {
		t.Errorf("withdraw-only round trip = %+v", got)
	}
}

func TestUpdateValidationErrors(t *testing.T) {
	// Announcement without mandatory attributes.
	u := &Update{NLRI: []Prefix{MustParsePrefix("10.0.0.0/8")}}
	if _, err := Decode(Encode(u)); err == nil {
		t.Errorf("announcement without attributes should fail")
	}
	// Missing NEXT_HOP.
	body := []byte{0, 0} // no withdrawn
	attrs := appendAttr(nil, FlagTransitive, AttrOrigin, []byte{0})
	body = appendU16(body, uint16(len(attrs)))
	body = append(body, attrs...)
	body = AppendPrefix(body, MustParsePrefix("10.0.0.0/8"))
	if _, err := DecodeUpdate(body); err == nil {
		t.Errorf("missing NEXT_HOP should fail")
	}
	// Invalid origin value.
	a := sampleAttrs()
	a.Origin = 9
	u = &Update{Attrs: a, NLRI: []Prefix{MustParsePrefix("10.0.0.0/8")}}
	if _, err := Decode(Encode(u)); err == nil {
		t.Errorf("origin 9 should fail")
	}
	// Truncated attribute block.
	body = []byte{0, 0, 0, 10, FlagTransitive, byte(AttrOrigin)}
	if _, err := DecodeUpdate(body); err == nil {
		t.Errorf("overrunning attribute length should fail")
	}
	// Malformed AS_PATH segment type.
	a = sampleAttrs()
	u = &Update{Attrs: a, NLRI: []Prefix{MustParsePrefix("10.0.0.0/8")}}
	wire := u.EncodeBody()
	// Find the AS_PATH segment type byte (first segment after the AS_PATH
	// attribute header) and corrupt it.
	corrupted := false
	for i := 0; i+3 < len(wire); i++ {
		if wire[i] == FlagTransitive && wire[i+1] == byte(AttrASPath) {
			wire[i+3] = 9 // segment type
			corrupted = true
			break
		}
	}
	if !corrupted {
		t.Fatal("could not locate AS_PATH header in encoding")
	}
	if _, err := DecodeUpdate(wire); err == nil {
		t.Errorf("bad AS_PATH segment type should fail")
	}
}

func TestPathAttributesHelpers(t *testing.T) {
	a := sampleAttrs()
	if a.PathLen() != 2 {
		t.Errorf("PathLen = %d", a.PathLen())
	}
	a.ASSet = []ASN{65099}
	if a.PathLen() != 3 {
		t.Errorf("PathLen with AS_SET = %d", a.PathLen())
	}
	if !a.HasASLoop(65010) || a.HasASLoop(65111) {
		t.Errorf("HasASLoop broken")
	}
	if a.OriginAS() != 65010 {
		t.Errorf("OriginAS = %v", a.OriginAS())
	}
	a.PrependAS(65001, 2)
	if len(a.ASPath) != 4 || a.ASPath[0] != 65001 || a.ASPath[1] != 65001 {
		t.Errorf("PrependAS = %v", a.ASPath)
	}
	clone := a.Clone()
	clone.SetLocalPref(7)
	clone.ASPath[0] = 1
	if a.EffectiveLocalPref() == 7 || a.ASPath[0] == 1 {
		t.Errorf("Clone is not deep")
	}
	var empty PathAttributes
	if empty.EffectiveLocalPref() != DefaultLocalPref {
		t.Errorf("default local pref = %d", empty.EffectiveLocalPref())
	}
	if empty.OriginAS() != 0 {
		t.Errorf("OriginAS of empty path = %v", empty.OriginAS())
	}
}

func TestSplitStream(t *testing.T) {
	a := Encode(&Keepalive{})
	b := Encode(&Open{Version: 4, AS: 1, HoldTime: 90, RouterID: 5})
	stream := append(append([]byte{}, a...), b...)
	stream = append(stream, 0xff, 0xff) // partial trailing data

	msgs, consumed, err := SplitStream(stream)
	if err != nil {
		t.Fatalf("SplitStream: %v", err)
	}
	if len(msgs) != 2 {
		t.Fatalf("got %d messages, want 2", len(msgs))
	}
	if consumed != len(a)+len(b) {
		t.Errorf("consumed = %d, want %d", consumed, len(a)+len(b))
	}
	if _, err := Decode(msgs[1]); err != nil {
		t.Errorf("second message does not decode: %v", err)
	}
}

func TestParseUpdateSymConsistency(t *testing.T) {
	u := &Update{Attrs: sampleAttrs(), NLRI: []Prefix{MustParsePrefix("10.1.0.0/16")}}
	body := u.EncodeBody()

	in := concolic.NewInput("update", body)
	m := concolic.NewMachine(in, concolic.MachineOptions{})
	got, err := ParseUpdateSym(m, "update", in.Region("update"))
	if err != nil {
		t.Fatalf("ParseUpdateSym: %v", err)
	}
	if len(got.NLRI) != 1 || got.NLRI[0] != u.NLRI[0] {
		t.Errorf("NLRI = %v", got.NLRI)
	}
	sym := got.Sym
	if !sym.HasLocalPref || sym.LocalPref.Uint() != 200 {
		t.Errorf("symbolic LOCAL_PREF = %v", sym.LocalPref)
	}
	if !sym.LocalPref.IsSymbolic() {
		t.Errorf("LOCAL_PREF should carry a symbolic expression under tracing")
	}
	if len(sym.NLRI) != 1 || sym.NLRI[0].Len.Uint() != 16 {
		t.Errorf("symbolic NLRI = %+v", sym.NLRI)
	}
	// The symbolic values must agree with the machine's concrete assignment.
	if sym.LocalPref.Sym.Eval(m.Assignment()) != 200 {
		t.Errorf("symbolic/concrete mismatch for LOCAL_PREF")
	}
	if len(m.Path()) == 0 {
		t.Errorf("symbolic parse should record branches")
	}
	// Parsing the same message without a machine must yield the same
	// concrete structure and record nothing.
	plain, err := DecodeUpdate(body)
	if err != nil {
		t.Fatalf("DecodeUpdate: %v", err)
	}
	if plain.Attrs.EffectiveLocalPref() != got.Attrs.EffectiveLocalPref() ||
		plain.Attrs.NextHop != got.Attrs.NextHop {
		t.Errorf("concrete and symbolic parses disagree")
	}
}

func TestUpdateStringer(t *testing.T) {
	u := &Update{Attrs: sampleAttrs(), NLRI: []Prefix{MustParsePrefix("10.1.0.0/16")}}
	if s := u.String(); s == "" {
		t.Error("empty String()")
	}
	if s := u.Attrs.String(); s == "" {
		t.Error("empty attrs String()")
	}
	if MsgUpdate.String() != "UPDATE" || MsgOpen.String() != "OPEN" {
		t.Error("message type names wrong")
	}
	if AttrLocalPref.String() != "LOCAL_PREF" {
		t.Error("attr type name wrong")
	}
	if OriginString(OriginEGP) != "EGP" {
		t.Error("origin name wrong")
	}
	if ErrUpdateMessage.String() == "" || (&MessageError{Code: ErrCease}).Error() == "" {
		t.Error("error strings empty")
	}
}

// Property: any programmatically built valid UPDATE survives an encode/decode
// round trip with its semantic fields intact.
func TestQuickUpdateRoundTrip(t *testing.T) {
	f := func(addr uint32, maskLen uint8, lp uint32, med uint32, as1, as2 uint16) bool {
		maskLen %= 33
		if as1 == 0 {
			as1 = 1
		}
		attrs := &PathAttributes{
			Origin:  OriginIGP,
			ASPath:  []ASN{ASN(as1), ASN(as2%60000 + 1)},
			NextHop: 0x0a000001,
		}
		attrs.SetLocalPref(lp)
		attrs.SetMED(med)
		p := Prefix{Addr: addr, Len: maskLen}.Canonical()
		u := &Update{Attrs: attrs, NLRI: []Prefix{p}}
		msg, err := Decode(Encode(u))
		if err != nil {
			return false
		}
		got := msg.(*Update)
		return len(got.NLRI) == 1 && got.NLRI[0] == p &&
			got.Attrs.EffectiveLocalPref() == lp &&
			got.Attrs.EffectiveMED() == med &&
			len(got.Attrs.ASPath) == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the symbolic parse never disagrees with the concrete parse on
// accept/reject, and on accepted messages the concolic invariant holds for
// the symbolic NLRI lengths.
func TestQuickSymParseAgreesWithConcrete(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) > 128 {
			raw = raw[:128]
		}
		concrete, errC := DecodeUpdate(append([]byte(nil), raw...))
		in := concolic.NewInput("update", raw)
		m := concolic.NewMachine(in, concolic.MachineOptions{})
		sym, errS := ParseUpdateSym(m, "update", in.Region("update"))
		if (errC == nil) != (errS == nil) {
			return false
		}
		if errC != nil {
			return true
		}
		if len(concrete.NLRI) != len(sym.NLRI) {
			return false
		}
		for i, sp := range sym.Sym.NLRI {
			if sp.Len.Sym != nil && sp.Len.Sym.Eval(m.Assignment()) != sp.Len.Uint() {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
