// Package policy implements the interpreted import/export routing policy
// language used by the emulated routers.
//
// Policies are ordered lists of statements, each with a conjunction of match
// conditions and a list of actions, terminated by an accept or reject —
// essentially BIRD filters / IOS route-maps. Policies are *interpreted*: the
// evaluator walks the policy data structures at run time, and every
// comparison it performs against route fields goes through the concolic
// Value/Branch API. As the paper notes for BIRD, instrumenting the
// configuration interpreter means the recorded path constraints describe both
// the router code and the configuration currently in effect, so exploration
// covers "code × config".
package policy

import (
	"fmt"
	"strings"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/concolic"
)

// Result is the disposition of a route after policy evaluation.
type Result int

// Policy results.
const (
	// ResultAccept lets the route through (possibly modified).
	ResultAccept Result = iota
	// ResultReject filters the route out.
	ResultReject
)

// String renders the result.
func (r Result) String() string {
	if r == ResultAccept {
		return "accept"
	}
	return "reject"
}

// Policy is a named, ordered list of statements with a default disposition.
type Policy struct {
	Name       string
	Statements []*Statement
	// Default applies when no statement terminates evaluation.
	Default Result
}

// Statement is one "if <conditions> then <actions>" clause. All conditions
// must match (logical AND); an empty condition list always matches.
type Statement struct {
	Conds   []Condition
	Actions []Action
}

// Condition matches (or not) a route under evaluation.
type Condition interface {
	// Match evaluates the condition, recording any symbolic comparison as a
	// branch constraint on the machine (which may be nil).
	Match(m *concolic.Machine, r *rib.Route) bool
	// String renders the condition in the policy language syntax.
	String() string
}

// Action either mutates the route's attributes or terminates evaluation.
type Action interface {
	// Apply performs the action. The returned result is non-nil for the
	// terminal accept/reject actions.
	Apply(m *concolic.Machine, r *rib.Route) *Result
	// String renders the action in the policy language syntax.
	String() string
}

// AcceptAll is the policy that accepts every route unmodified.
func AcceptAll(name string) *Policy { return &Policy{Name: name, Default: ResultAccept} }

// RejectAll is the policy that rejects every route.
func RejectAll(name string) *Policy { return &Policy{Name: name, Default: ResultReject} }

// Apply evaluates the policy against the route. The route's attributes may be
// modified by actions; callers that must not see modifications on reject
// should pass a clone. The machine may be nil (live, non-traced evaluation).
func (p *Policy) Apply(m *concolic.Machine, r *rib.Route) Result {
	if p == nil {
		return ResultAccept
	}
	for _, st := range p.Statements {
		matched := true
		for _, c := range st.Conds {
			if !c.Match(m, r) {
				matched = false
				break
			}
		}
		if !matched {
			continue
		}
		for _, a := range st.Actions {
			if res := a.Apply(m, r); res != nil {
				return *res
			}
		}
	}
	return p.Default
}

// String renders the policy in the policy language syntax.
func (p *Policy) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "policy %s {\n", p.Name)
	for _, st := range p.Statements {
		sb.WriteString("  ")
		if len(st.Conds) > 0 {
			conds := make([]string, len(st.Conds))
			for i, c := range st.Conds {
				conds[i] = c.String()
			}
			fmt.Fprintf(&sb, "if %s ", strings.Join(conds, " and "))
		}
		acts := make([]string, len(st.Actions))
		for i, a := range st.Actions {
			acts[i] = a.String()
		}
		fmt.Fprintf(&sb, "{ %s }\n", strings.Join(acts, "; "))
	}
	fmt.Fprintf(&sb, "  %s\n}", p.Default)
	return sb.String()
}

//
// Conditions
//

// MatchPrefix matches routes whose prefix falls within Prefix and whose mask
// length lies in [MinLen, MaxLen]. With Exact set, only the identical prefix
// matches.
type MatchPrefix struct {
	Prefix bgp.Prefix
	Exact  bool
	MinLen uint8
	MaxLen uint8
}

// Match implements Condition. The address and length comparisons consult the
// route's symbolic prefix view when present.
func (c MatchPrefix) Match(m *concolic.Machine, r *rib.Route) bool {
	addr := r.PrefixAddrValue()
	plen := r.PrefixLenValue()
	if c.Exact {
		sameAddr := m.Branch("policy/prefix.exact.addr", concolic.EqConst(addr, uint64(c.Prefix.Addr)))
		sameLen := m.Branch("policy/prefix.exact.len", concolic.EqConst(plen, uint64(c.Prefix.Len)))
		return sameAddr && sameLen
	}
	mask := uint64(c.Prefix.Mask())
	inRange := m.Branch("policy/prefix.contains",
		concolic.EqConst(concolic.BitAnd(addr, concolic.Const(mask, 32)), uint64(c.Prefix.Addr)))
	if !inRange {
		return false
	}
	minLen := c.MinLen
	if minLen < c.Prefix.Len {
		minLen = c.Prefix.Len
	}
	maxLen := c.MaxLen
	if maxLen == 0 {
		maxLen = 32
	}
	geMin := m.Branch("policy/prefix.minlen", concolic.Ge(plen, concolic.Const(uint64(minLen), 8)))
	leMax := m.Branch("policy/prefix.maxlen", concolic.Le(plen, concolic.Const(uint64(maxLen), 8)))
	return geMin && leMax
}

// String implements Condition.
func (c MatchPrefix) String() string {
	if c.Exact {
		return fmt.Sprintf("prefix = %s", c.Prefix)
	}
	maxLen := c.MaxLen
	if maxLen == 0 {
		maxLen = 32
	}
	return fmt.Sprintf("prefix in %s le %d", c.Prefix, maxLen)
}

// MatchPrefixList matches if any of the member MatchPrefix conditions match.
type MatchPrefixList struct {
	Name    string
	Entries []MatchPrefix
}

// Match implements Condition.
func (c MatchPrefixList) Match(m *concolic.Machine, r *rib.Route) bool {
	for _, e := range c.Entries {
		if e.Match(m, r) {
			return true
		}
	}
	return false
}

// String implements Condition.
func (c MatchPrefixList) String() string { return fmt.Sprintf("prefix-list %s", c.Name) }

// MatchASPathContains matches routes whose AS_PATH includes the AS.
type MatchASPathContains struct {
	AS bgp.ASN
}

// Match implements Condition.
func (c MatchASPathContains) Match(m *concolic.Machine, r *rib.Route) bool {
	return r.Attrs.HasASLoop(c.AS)
}

// String implements Condition.
func (c MatchASPathContains) String() string { return fmt.Sprintf("as-path contains %d", c.AS) }

// MatchOriginAS matches routes originated by the given AS (last AS in the
// path). A zero AS matches locally originated routes.
type MatchOriginAS struct {
	AS bgp.ASN
}

// Match implements Condition.
func (c MatchOriginAS) Match(m *concolic.Machine, r *rib.Route) bool {
	return r.Attrs.OriginAS() == c.AS
}

// String implements Condition.
func (c MatchOriginAS) String() string { return fmt.Sprintf("origin-as %d", c.AS) }

// MatchASPathLen matches routes whose AS_PATH length relates to N by Op
// ("<", "<=", ">", ">=", "=").
type MatchASPathLen struct {
	Op string
	N  uint8
}

// Match implements Condition. The length comparison is symbolic when the
// route carries a symbolic AS_PATH length.
func (c MatchASPathLen) Match(m *concolic.Machine, r *rib.Route) bool {
	l := r.PathLenValue()
	n := concolic.Const(uint64(c.N), 32)
	var cond concolic.Value
	switch c.Op {
	case "<":
		cond = concolic.Lt(l, n)
	case "<=":
		cond = concolic.Le(l, n)
	case ">":
		cond = concolic.Gt(l, n)
	case ">=":
		cond = concolic.Ge(l, n)
	default:
		cond = concolic.Eq(l, n)
	}
	return m.Branch("policy/aspathlen", cond)
}

// String implements Condition.
func (c MatchASPathLen) String() string { return fmt.Sprintf("as-path length %s %d", c.Op, c.N) }

// MatchCommunity matches routes carrying the community.
type MatchCommunity struct {
	Community bgp.Community
}

// Match implements Condition.
func (c MatchCommunity) Match(m *concolic.Machine, r *rib.Route) bool {
	return r.Attrs.HasCommunity(c.Community)
}

// String implements Condition.
func (c MatchCommunity) String() string { return fmt.Sprintf("community %s", c.Community) }

// MatchLocalPref matches routes whose LOCAL_PREF relates to N by Op.
type MatchLocalPref struct {
	Op string
	N  uint32
}

// Match implements Condition.
func (c MatchLocalPref) Match(m *concolic.Machine, r *rib.Route) bool {
	lp := r.LocalPrefValue()
	n := concolic.Const(uint64(c.N), 32)
	var cond concolic.Value
	switch c.Op {
	case "<":
		cond = concolic.Lt(lp, n)
	case "<=":
		cond = concolic.Le(lp, n)
	case ">":
		cond = concolic.Gt(lp, n)
	case ">=":
		cond = concolic.Ge(lp, n)
	default:
		cond = concolic.Eq(lp, n)
	}
	return m.Branch("policy/localpref.cmp", cond)
}

// String implements Condition.
func (c MatchLocalPref) String() string { return fmt.Sprintf("local-pref %s %d", c.Op, c.N) }

//
// Actions
//

// ActionAccept terminates evaluation accepting the route.
type ActionAccept struct{}

// Apply implements Action.
func (ActionAccept) Apply(*concolic.Machine, *rib.Route) *Result { r := ResultAccept; return &r }

// String implements Action.
func (ActionAccept) String() string { return "accept" }

// ActionReject terminates evaluation rejecting the route.
type ActionReject struct{}

// Apply implements Action.
func (ActionReject) Apply(*concolic.Machine, *rib.Route) *Result { r := ResultReject; return &r }

// String implements Action.
func (ActionReject) String() string { return "reject" }

// ActionSetLocalPref sets LOCAL_PREF.
type ActionSetLocalPref struct {
	Value uint32
}

// Apply implements Action. Setting a concrete LOCAL_PREF overrides any
// symbolic view the route carried.
func (a ActionSetLocalPref) Apply(m *concolic.Machine, r *rib.Route) *Result {
	r.Attrs.SetLocalPref(a.Value)
	if r.Sym != nil {
		r.Sym.HasLocalPref = false
	}
	return nil
}

// String implements Action.
func (a ActionSetLocalPref) String() string { return fmt.Sprintf("set local-pref %d", a.Value) }

// ActionSetMED sets MULTI_EXIT_DISC.
type ActionSetMED struct {
	Value uint32
}

// Apply implements Action.
func (a ActionSetMED) Apply(m *concolic.Machine, r *rib.Route) *Result {
	r.Attrs.SetMED(a.Value)
	if r.Sym != nil {
		r.Sym.HasMED = false
	}
	return nil
}

// String implements Action.
func (a ActionSetMED) String() string { return fmt.Sprintf("set med %d", a.Value) }

// ActionAddCommunity attaches a community.
type ActionAddCommunity struct {
	Community bgp.Community
}

// Apply implements Action.
func (a ActionAddCommunity) Apply(m *concolic.Machine, r *rib.Route) *Result {
	r.Attrs.AddCommunity(a.Community)
	return nil
}

// String implements Action.
func (a ActionAddCommunity) String() string {
	return fmt.Sprintf("add community %s", a.Community)
}

// ActionClearCommunities removes all communities.
type ActionClearCommunities struct{}

// Apply implements Action.
func (ActionClearCommunities) Apply(m *concolic.Machine, r *rib.Route) *Result {
	r.Attrs.Communities = nil
	return nil
}

// String implements Action.
func (ActionClearCommunities) String() string { return "clear communities" }

// ActionPrepend prepends the AS to the AS_PATH Count times.
type ActionPrepend struct {
	AS    bgp.ASN
	Count int
}

// Apply implements Action.
func (a ActionPrepend) Apply(m *concolic.Machine, r *rib.Route) *Result {
	n := a.Count
	if n <= 0 {
		n = 1
	}
	r.Attrs.PrependAS(a.AS, n)
	if r.Sym != nil {
		r.Sym.HasPathLen = false
	}
	return nil
}

// String implements Action.
func (a ActionPrepend) String() string { return fmt.Sprintf("prepend %d x%d", a.AS, a.Count) }
