package policy

import (
	"sort"
	"testing"
)

// FuzzPolicyParse fuzzes the policy-language parser that checkpoint restore
// trusts (bird checkpoints carry their policies as text). Properties: the
// parser never panics on arbitrary text, and accepted text round-trips —
// rendering the parsed policies and parsing again yields the same rendering,
// so a checkpoint written by one process is read back identically by
// another.
func FuzzPolicyParse(f *testing.F) {
	f.Add("policy ALL {\n  accept\n}")
	f.Add("policy GR-IMPORT-PEER {\n  if prefix in 0.0.0.0/0 le 32 { clear communities; set local-pref 100; add community 65535:2; accept }\n  accept\n}")
	f.Add("policy EXPORT {\n  if community 65535:1 { accept }\n  if as-path length = 0 { accept }\n  reject\n}")
	f.Add("policy X {\n  if prefix = 10.1.0.0/16 { set local-pref 500; accept }\n}")
	f.Add("policy broken {")
	f.Add("if prefix")
	f.Add("")

	f.Fuzz(func(t *testing.T, text string) {
		pols, err := ParsePolicies(text)
		if err != nil {
			return // rejecting malformed text is fine; not panicking is the property
		}
		first := renderPolicies(pols)
		again, err := ParsePolicies(first)
		if err != nil {
			t.Fatalf("rendered form of accepted input does not parse: %v\ninput    %q\nrendered %q", err, text, first)
		}
		if second := renderPolicies(again); second != first {
			t.Fatalf("render/parse is not a fixpoint:\nfirst  %q\nsecond %q", first, second)
		}
	})
}

// renderPolicies renders a parsed policy set deterministically (sorted by
// name), the same textual form checkpoints serialize.
func renderPolicies(pols map[string]*Policy) string {
	names := make([]string, 0, len(pols))
	for name := range pols {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for _, name := range names {
		out += pols[name].String() + "\n"
	}
	return out
}
