package policy

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/concolic"
)

func testRoute(prefix string, path ...bgp.ASN) *rib.Route {
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: path, NextHop: 0x0a000001}
	return &rib.Route{Prefix: bgp.MustParsePrefix(prefix), Attrs: attrs, Peer: "p1", PeerAS: 65001, EBGP: true}
}

func TestAcceptRejectAll(t *testing.T) {
	r := testRoute("10.0.0.0/8", 65001)
	if AcceptAll("a").Apply(nil, r) != ResultAccept {
		t.Errorf("AcceptAll should accept")
	}
	if RejectAll("r").Apply(nil, r) != ResultReject {
		t.Errorf("RejectAll should reject")
	}
	var nilPol *Policy
	if nilPol.Apply(nil, r) != ResultAccept {
		t.Errorf("nil policy should accept")
	}
}

func TestMatchPrefix(t *testing.T) {
	inRange := MatchPrefix{Prefix: bgp.MustParsePrefix("10.0.0.0/8"), MaxLen: 24}
	exact := MatchPrefix{Prefix: bgp.MustParsePrefix("10.1.0.0/16"), Exact: true}

	r16 := testRoute("10.1.0.0/16", 65001)
	r28 := testRoute("10.1.2.16/28", 65001)
	other := testRoute("192.168.0.0/16", 65001)

	if !inRange.Match(nil, r16) {
		t.Errorf("10.1.0.0/16 should match 10.0.0.0/8 le 24")
	}
	if inRange.Match(nil, r28) {
		t.Errorf("/28 should not match le 24")
	}
	if inRange.Match(nil, other) {
		t.Errorf("192.168.0.0/16 should not match 10.0.0.0/8")
	}
	if !exact.Match(nil, r16) || exact.Match(nil, r28) {
		t.Errorf("exact match broken")
	}
}

func TestMatchPrefixList(t *testing.T) {
	pl := MatchPrefixList{Name: "PL", Entries: []MatchPrefix{
		{Prefix: bgp.MustParsePrefix("10.0.0.0/8")},
		{Prefix: bgp.MustParsePrefix("172.16.0.0/12")},
	}}
	if !pl.Match(nil, testRoute("172.20.0.0/16", 65001)) {
		t.Errorf("prefix list should match second entry")
	}
	if pl.Match(nil, testRoute("192.0.2.0/24", 65001)) {
		t.Errorf("prefix list should not match unrelated prefix")
	}
}

func TestMatchASPathAndOrigin(t *testing.T) {
	r := testRoute("10.0.0.0/8", 65002, 65010, 65020)
	if !(MatchASPathContains{AS: 65010}).Match(nil, r) {
		t.Errorf("as-path contains 65010 should match")
	}
	if (MatchASPathContains{AS: 64999}).Match(nil, r) {
		t.Errorf("as-path contains 64999 should not match")
	}
	if !(MatchOriginAS{AS: 65020}).Match(nil, r) {
		t.Errorf("origin-as should be the last AS")
	}
	if !(MatchASPathLen{Op: ">", N: 2}).Match(nil, r) {
		t.Errorf("length 3 > 2 should match")
	}
	if (MatchASPathLen{Op: "<", N: 3}).Match(nil, r) {
		t.Errorf("length 3 < 3 should not match")
	}
	if !(MatchASPathLen{Op: "=", N: 3}).Match(nil, r) {
		t.Errorf("length = 3 should match")
	}
}

func TestMatchCommunityAndLocalPref(t *testing.T) {
	r := testRoute("10.0.0.0/8", 65002)
	r.Attrs.AddCommunity(bgp.NewCommunity(65001, 666))
	if !(MatchCommunity{Community: bgp.NewCommunity(65001, 666)}).Match(nil, r) {
		t.Errorf("community match broken")
	}
	r.Attrs.SetLocalPref(80)
	if !(MatchLocalPref{Op: "<", N: 100}).Match(nil, r) {
		t.Errorf("local-pref < 100 should match")
	}
	if !(MatchLocalPref{Op: "=", N: 80}).Match(nil, r) {
		t.Errorf("local-pref = 80 should match")
	}
}

func TestActionsModifyRoute(t *testing.T) {
	r := testRoute("10.0.0.0/8", 65002)
	pol := &Policy{
		Name:    "MOD",
		Default: ResultReject,
		Statements: []*Statement{
			{
				Conds: []Condition{MatchPrefix{Prefix: bgp.MustParsePrefix("10.0.0.0/8")}},
				Actions: []Action{
					ActionSetLocalPref{Value: 250},
					ActionSetMED{Value: 9},
					ActionAddCommunity{Community: bgp.NewCommunity(65001, 1)},
					ActionPrepend{AS: 65001, Count: 2},
					ActionAccept{},
				},
			},
		},
	}
	if pol.Apply(nil, r) != ResultAccept {
		t.Fatalf("policy should accept")
	}
	if r.Attrs.EffectiveLocalPref() != 250 || r.Attrs.EffectiveMED() != 9 {
		t.Errorf("set actions not applied: %+v", r.Attrs)
	}
	if !r.Attrs.HasCommunity(bgp.NewCommunity(65001, 1)) {
		t.Errorf("community not added")
	}
	if len(r.Attrs.ASPath) != 3 || r.Attrs.ASPath[0] != 65001 {
		t.Errorf("prepend not applied: %v", r.Attrs.ASPath)
	}
}

func TestStatementOrderAndFallThrough(t *testing.T) {
	// First statement sets local-pref but does not terminate; second rejects
	// routes from 65010; default accepts.
	pol := &Policy{
		Name:    "ORDER",
		Default: ResultAccept,
		Statements: []*Statement{
			{Conds: []Condition{MatchPrefix{Prefix: bgp.MustParsePrefix("10.0.0.0/8")}},
				Actions: []Action{ActionSetLocalPref{Value: 300}}},
			{Conds: []Condition{MatchASPathContains{AS: 65010}},
				Actions: []Action{ActionReject{}}},
		},
	}
	ok := testRoute("10.1.0.0/16", 65002)
	if pol.Apply(nil, ok) != ResultAccept || ok.Attrs.EffectiveLocalPref() != 300 {
		t.Errorf("fall-through modification broken")
	}
	bad := testRoute("10.1.0.0/16", 65010)
	if pol.Apply(nil, bad) != ResultReject {
		t.Errorf("second statement should reject")
	}
}

func TestClearCommunities(t *testing.T) {
	r := testRoute("10.0.0.0/8", 65002)
	r.Attrs.AddCommunity(bgp.CommunityNoExport)
	res := (ActionClearCommunities{}).Apply(nil, r)
	if res != nil || len(r.Attrs.Communities) != 0 {
		t.Errorf("clear communities broken")
	}
}

func TestPolicySymbolicPrefixMatchRecordsBranches(t *testing.T) {
	in := concolic.NewInput("update", nil)
	m := concolic.NewMachine(in, concolic.MachineOptions{})
	sb := m.Bytes("pfx", []byte{16, 10, 1, 0, 0})
	r := testRoute("10.1.0.0/16", 65002)
	r.Sym = &rib.SymAttrs{
		HasPrefix:  true,
		PrefixLen:  sb.Byte(0),
		PrefixAddr: sb.U32(1),
	}
	cond := MatchPrefix{Prefix: bgp.MustParsePrefix("10.0.0.0/8"), MaxLen: 24}
	if !cond.Match(m, r) {
		t.Fatalf("should match")
	}
	if len(m.Path()) == 0 {
		t.Errorf("symbolic prefix match should record branches")
	}
	for _, br := range m.Path() {
		if !br.Cond.EvalBool(m.Assignment()) {
			t.Errorf("recorded branch inconsistent with concrete execution")
		}
	}
}

const samplePolicyText = `
# Customer import policy
policy CUST-IN {
  if prefix in 10.0.0.0/8 le 24 and as-path contains 65010 { set local-pref 200; accept }
  if community 65001:666 { reject }
  if prefix = 192.0.2.0/24 { reject }
  if as-path length > 5 { set med 50 }
  if local-pref < 90 { reject }
  if origin-as 64999 { add community 65001:999; accept }
  default accept
}

policy PEER-OUT {
  if community 65001:100 { accept }
  default reject
}
`

func TestParsePolicies(t *testing.T) {
	pols, err := ParsePolicies(samplePolicyText)
	if err != nil {
		t.Fatalf("ParsePolicies: %v", err)
	}
	if len(pols) != 2 {
		t.Fatalf("parsed %d policies, want 2", len(pols))
	}
	custIn := pols["CUST-IN"]
	if custIn == nil || len(custIn.Statements) != 6 || custIn.Default != ResultAccept {
		t.Fatalf("CUST-IN parsed wrong: %+v", custIn)
	}
	peerOut := pols["PEER-OUT"]
	if peerOut == nil || peerOut.Default != ResultReject {
		t.Fatalf("PEER-OUT parsed wrong: %+v", peerOut)
	}

	// Semantics of the parsed policy.
	matching := testRoute("10.5.0.0/16", 65010)
	if custIn.Apply(nil, matching) != ResultAccept || matching.Attrs.EffectiveLocalPref() != 200 {
		t.Errorf("parsed policy semantics wrong for matching route")
	}
	tagged := testRoute("172.16.0.0/12", 65002)
	tagged.Attrs.AddCommunity(bgp.NewCommunity(65001, 666))
	if custIn.Apply(nil, tagged) != ResultReject {
		t.Errorf("community reject broken")
	}
	blocked := testRoute("192.0.2.0/24", 65002)
	if custIn.Apply(nil, blocked) != ResultReject {
		t.Errorf("exact prefix reject broken")
	}
}

func TestParsePolicyErrors(t *testing.T) {
	cases := []string{
		"policy {",
		"policy X { if prefix in banana { accept } }",
		"policy X { if prefix in 10.0.0.0/8 le 99999 { accept } }",
		"policy X { if frobnicate 3 { accept } }",
		"policy X { if prefix = 10.0.0.0/8 { explode } }",
		"policy X { if community 65001-666 { accept } }",
		"policy X { default maybe }",
		"policy X { if prefix = 10.0.0.0/8 { accept }",
		"notpolicy X { }",
		"policy X { } policy X { }",
	}
	for _, c := range cases {
		if _, err := ParsePolicies(c); err == nil {
			t.Errorf("expected parse error for %q", c)
		}
	}
}

func TestParsePolicySingle(t *testing.T) {
	p, err := ParsePolicy("policy ONLY { default accept }")
	if err != nil || p.Name != "ONLY" {
		t.Fatalf("ParsePolicy: %v %+v", err, p)
	}
	if _, err := ParsePolicy(samplePolicyText); err == nil {
		t.Errorf("ParsePolicy should reject multiple policies")
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	pols, err := ParsePolicies(samplePolicyText)
	if err != nil {
		t.Fatal(err)
	}
	for name, pol := range pols {
		text := pol.String()
		if !strings.Contains(text, "policy "+name) {
			t.Errorf("String() missing header: %s", text)
		}
		reparsed, err := ParsePolicy(text)
		if err != nil {
			t.Fatalf("re-parsing rendered policy %s: %v\n%s", name, err, text)
		}
		if len(reparsed.Statements) != len(pol.Statements) || reparsed.Default != pol.Default {
			t.Errorf("round trip changed policy %s", name)
		}
	}
}

// Property: policy evaluation is deterministic and never mutates a route it
// rejects via the default disposition without matching any statement.
func TestQuickRejectWithoutMatchLeavesRouteUntouched(t *testing.T) {
	pol := &Policy{
		Name:    "Q",
		Default: ResultReject,
		Statements: []*Statement{
			{Conds: []Condition{MatchPrefix{Prefix: bgp.MustParsePrefix("203.0.113.0/24"), Exact: true}},
				Actions: []Action{ActionSetLocalPref{Value: 999}, ActionAccept{}}},
		},
	}
	f := func(a, b, c byte, maskLen uint8) bool {
		maskLen = maskLen%24 + 8
		addr := uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8
		p := bgp.Prefix{Addr: addr, Len: maskLen}.Canonical()
		if (p == bgp.Prefix{Addr: 0xcb007100, Len: 24}) {
			return true // the matching prefix itself is allowed to change
		}
		r := testRoute(p.String(), 65002)
		before := r.Attrs.EffectiveLocalPref()
		res := pol.Apply(nil, r)
		return res == ResultReject && r.Attrs.EffectiveLocalPref() == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
