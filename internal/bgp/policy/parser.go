package policy

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/dice-project/dice/internal/bgp"
)

// ParsePolicies parses a configuration fragment containing zero or more
// policy definitions and returns them keyed by name. The syntax is the one
// produced by Policy.String:
//
//	policy CUST-IN {
//	  if prefix in 10.0.0.0/8 le 24 and as-path contains 65010 { set local-pref 200; accept }
//	  if community 65001:666 { reject }
//	  default accept
//	}
//
// Recognized conditions: "prefix = P", "prefix in P [le N] [ge N]",
// "as-path contains N", "as-path length OP N", "origin-as N",
// "community A:B", "local-pref OP N".
// Recognized actions: "accept", "reject", "set local-pref N", "set med N",
// "add community A:B", "clear communities", "prepend N xM".
func ParsePolicies(text string) (map[string]*Policy, error) {
	toks := tokenize(text)
	p := &parser{toks: toks}
	out := make(map[string]*Policy)
	for !p.done() {
		if !p.accept("policy") {
			return nil, p.errorf("expected 'policy', got %q", p.peek())
		}
		pol, err := p.parsePolicyBody()
		if err != nil {
			return nil, err
		}
		if _, dup := out[pol.Name]; dup {
			return nil, fmt.Errorf("policy: duplicate policy %q", pol.Name)
		}
		out[pol.Name] = pol
	}
	return out, nil
}

// ParsePolicy parses exactly one policy definition.
func ParsePolicy(text string) (*Policy, error) {
	m, err := ParsePolicies(text)
	if err != nil {
		return nil, err
	}
	if len(m) != 1 {
		return nil, fmt.Errorf("policy: expected exactly one policy, found %d", len(m))
	}
	for _, p := range m {
		return p, nil
	}
	return nil, nil
}

func tokenize(text string) []string {
	var toks []string
	// Strip comments.
	var clean strings.Builder
	for _, line := range strings.Split(text, "\n") {
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteString("\n")
	}
	repl := strings.NewReplacer("{", " { ", "}", " } ", ";", " ; ")
	for _, f := range strings.Fields(repl.Replace(clean.String())) {
		toks = append(toks, f)
	}
	return toks
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.done() {
		return "<eof>"
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) accept(tok string) bool {
	if !p.done() && p.toks[p.pos] == tok {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(tok string) error {
	if !p.accept(tok) {
		return p.errorf("expected %q, got %q", tok, p.peek())
	}
	return nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("policy: token %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) parsePolicyBody() (*Policy, error) {
	name := p.next()
	if name == "{" || name == "<eof>" {
		return nil, p.errorf("missing policy name")
	}
	pol := &Policy{Name: name, Default: ResultReject}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("}"):
			return pol, nil
		case p.accept("if"):
			st, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			pol.Statements = append(pol.Statements, st)
		case p.accept("default"):
			switch p.next() {
			case "accept":
				pol.Default = ResultAccept
			case "reject":
				pol.Default = ResultReject
			default:
				return nil, p.errorf("default must be accept or reject")
			}
		case p.accept("accept"):
			// Bare "accept" as the last clause is shorthand for default accept.
			pol.Default = ResultAccept
		case p.accept("reject"):
			pol.Default = ResultReject
		case p.done():
			return nil, p.errorf("unterminated policy %s", name)
		default:
			return nil, p.errorf("unexpected token %q in policy %s", p.peek(), name)
		}
	}
}

func (p *parser) parseStatement() (*Statement, error) {
	st := &Statement{}
	// Conditions separated by "and" until "{".
	for {
		cond, err := p.parseCondition()
		if err != nil {
			return nil, err
		}
		st.Conds = append(st.Conds, cond)
		if p.accept("and") {
			continue
		}
		break
	}
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	for {
		if p.accept("}") {
			break
		}
		if p.accept(";") {
			continue
		}
		act, err := p.parseAction()
		if err != nil {
			return nil, err
		}
		st.Actions = append(st.Actions, act)
	}
	return st, nil
}

func (p *parser) parseCondition() (Condition, error) {
	switch p.next() {
	case "prefix":
		op := p.next()
		pref, err := bgp.ParsePrefix(p.next())
		if err != nil {
			return nil, p.errorf("bad prefix: %v", err)
		}
		switch op {
		case "=":
			return MatchPrefix{Prefix: pref, Exact: true}, nil
		case "in":
			c := MatchPrefix{Prefix: pref}
			for {
				if p.accept("le") {
					n, err := p.parseUint(8)
					if err != nil {
						return nil, err
					}
					c.MaxLen = uint8(n)
					continue
				}
				if p.accept("ge") {
					n, err := p.parseUint(8)
					if err != nil {
						return nil, err
					}
					c.MinLen = uint8(n)
					continue
				}
				break
			}
			return c, nil
		default:
			return nil, p.errorf("prefix condition needs '=' or 'in', got %q", op)
		}
	case "as-path":
		switch p.next() {
		case "contains":
			n, err := p.parseUint(32)
			if err != nil {
				return nil, err
			}
			return MatchASPathContains{AS: bgp.ASN(n)}, nil
		case "length":
			op := p.next()
			n, err := p.parseUint(8)
			if err != nil {
				return nil, err
			}
			return MatchASPathLen{Op: op, N: uint8(n)}, nil
		default:
			return nil, p.errorf("as-path condition needs 'contains' or 'length'")
		}
	case "origin-as":
		n, err := p.parseUint(32)
		if err != nil {
			return nil, err
		}
		return MatchOriginAS{AS: bgp.ASN(n)}, nil
	case "community":
		c, err := parseCommunity(p.next())
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return MatchCommunity{Community: c}, nil
	case "local-pref":
		op := p.next()
		n, err := p.parseUint(32)
		if err != nil {
			return nil, err
		}
		return MatchLocalPref{Op: op, N: uint32(n)}, nil
	}
	p.pos--
	return nil, p.errorf("unknown condition %q", p.peek())
}

func (p *parser) parseAction() (Action, error) {
	switch p.next() {
	case "accept":
		return ActionAccept{}, nil
	case "reject":
		return ActionReject{}, nil
	case "set":
		switch p.next() {
		case "local-pref":
			n, err := p.parseUint(32)
			if err != nil {
				return nil, err
			}
			return ActionSetLocalPref{Value: uint32(n)}, nil
		case "med":
			n, err := p.parseUint(32)
			if err != nil {
				return nil, err
			}
			return ActionSetMED{Value: uint32(n)}, nil
		default:
			return nil, p.errorf("set needs 'local-pref' or 'med'")
		}
	case "add":
		if err := p.expect("community"); err != nil {
			return nil, err
		}
		c, err := parseCommunity(p.next())
		if err != nil {
			return nil, p.errorf("%v", err)
		}
		return ActionAddCommunity{Community: c}, nil
	case "clear":
		if err := p.expect("communities"); err != nil {
			return nil, err
		}
		return ActionClearCommunities{}, nil
	case "prepend":
		n, err := p.parseUint(32)
		if err != nil {
			return nil, err
		}
		count := 1
		if !p.done() && strings.HasPrefix(p.peek(), "x") {
			c, err := strconv.Atoi(strings.TrimPrefix(p.next(), "x"))
			if err != nil {
				return nil, p.errorf("bad prepend count")
			}
			count = c
		}
		return ActionPrepend{AS: bgp.ASN(n), Count: count}, nil
	}
	p.pos--
	return nil, p.errorf("unknown action %q", p.peek())
}

func (p *parser) parseUint(bits int) (uint64, error) {
	tok := p.next()
	n, err := strconv.ParseUint(tok, 10, bits)
	if err != nil {
		return 0, p.errorf("expected %d-bit number, got %q", bits, tok)
	}
	return n, nil
}

func parseCommunity(tok string) (bgp.Community, error) {
	parts := strings.Split(tok, ":")
	if len(parts) != 2 {
		return 0, fmt.Errorf("bad community %q (want asn:value)", tok)
	}
	asn, err1 := strconv.ParseUint(parts[0], 10, 16)
	val, err2 := strconv.ParseUint(parts[1], 10, 16)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("bad community %q", tok)
	}
	return bgp.NewCommunity(uint16(asn), uint16(val)), nil
}
