package bgp

import (
	"bytes"
	"testing"
)

// FuzzUpdateDecode fuzzes the UPDATE body parser — the exact byte region
// DiCE marks as symbolic during exploration, and the front line for
// malformed wire input. Properties:
//
//   - DecodeUpdate never panics (fault containment belongs to the router's
//     recover, not the parser);
//   - a body that decodes must re-encode and decode again ("the codec is a
//     fixpoint"): the second decode sees the canonical form of the first,
//     and a third encode reproduces it byte for byte.
func FuzzUpdateDecode(f *testing.F) {
	// Structured seeds: empty, a plain announcement, a withdrawal, and a
	// kitchen-sink message with every attribute.
	f.Add([]byte{})
	plain := &Update{
		Attrs: &PathAttributes{Origin: OriginIGP, ASPath: []ASN{65001, 65002}, NextHop: 0x0a000001},
		NLRI:  []Prefix{MustParsePrefix("10.1.0.0/16")},
	}
	f.Add(plain.EncodeBody())
	withdraw := &Update{Withdrawn: []Prefix{MustParsePrefix("10.2.0.0/16"), MustParsePrefix("192.168.4.0/24")}}
	f.Add(withdraw.EncodeBody())
	sink := &Update{
		Withdrawn: []Prefix{MustParsePrefix("10.9.0.0/16")},
		Attrs: &PathAttributes{
			Origin:      OriginEGP,
			ASPath:      []ASN{65001, 65002, 65003},
			NextHop:     0x0a000002,
			Communities: []Community{NewCommunity(65535, 666)},
		},
		NLRI: []Prefix{MustParsePrefix("10.3.0.0/16"), MustParsePrefix("10.4.4.0/24")},
	}
	sink.Attrs.SetLocalPref(200)
	sink.Attrs.SetMED(30)
	f.Add(sink.EncodeBody())
	// A few deliberately malformed seeds steer coverage into the error paths.
	f.Add([]byte{0x00})
	f.Add([]byte{0x00, 0x04, 0x20, 0x0a, 0x00, 0x00}) // truncated withdrawn block
	f.Add([]byte{0x00, 0x00, 0x00, 0x03, 0x40, 0x01, 0x05})

	f.Fuzz(func(t *testing.T, body []byte) {
		u, err := DecodeUpdate(body)
		if err != nil {
			return // malformed input is a valid outcome; not panicking is the property
		}
		first := u.EncodeBody()
		again, err := DecodeUpdate(first)
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v\nbody   %x\nencode %x", err, body, first)
		}
		second := again.EncodeBody()
		if !bytes.Equal(first, second) {
			t.Fatalf("encoding is not a fixpoint:\nfirst  %x\nsecond %x", first, second)
		}
	})
}

// FuzzMessageDecode fuzzes the full-message decoder (header validation plus
// per-type body parsing) with the same no-panic / re-encode properties.
func FuzzMessageDecode(f *testing.F) {
	f.Add(Encode(&Open{Version: Version, AS: 65001, HoldTime: 90, RouterID: 1}))
	f.Add(Encode(&Keepalive{}))
	f.Add(Encode(&Notification{Code: ErrCease}))
	f.Add(Encode(&Update{Attrs: &PathAttributes{Origin: OriginIGP, ASPath: []ASN{65001}, NextHop: 1}, NLRI: []Prefix{MustParsePrefix("10.1.0.0/16")}}))
	f.Add([]byte{0xff, 0xff})

	f.Fuzz(func(t *testing.T, wire []byte) {
		msg, err := Decode(wire)
		if err != nil {
			return
		}
		re := Encode(msg)
		if _, err := Decode(re); err != nil {
			t.Fatalf("re-encoded %T does not decode: %v", msg, err)
		}
	})
}
