package bgp

import (
	"encoding/binary"
	"fmt"
)

// Message framing constants (RFC 4271 §4.1).
const (
	// HeaderLen is the fixed BGP message header length in octets.
	HeaderLen = 19
	// MarkerLen is the length of the all-ones marker field.
	MarkerLen = 16
	// MaxMessageLen is the maximum BGP message length in octets.
	MaxMessageLen = 4096
	// Version is the BGP protocol version implemented.
	Version = 4
)

// MessageType identifies a BGP message.
type MessageType uint8

// BGP message types.
const (
	MsgOpen         MessageType = 1
	MsgUpdate       MessageType = 2
	MsgNotification MessageType = 3
	MsgKeepalive    MessageType = 4
)

// String returns the message type name.
func (t MessageType) String() string {
	switch t {
	case MsgOpen:
		return "OPEN"
	case MsgUpdate:
		return "UPDATE"
	case MsgNotification:
		return "NOTIFICATION"
	case MsgKeepalive:
		return "KEEPALIVE"
	}
	return fmt.Sprintf("MessageType(%d)", uint8(t))
}

// Message is a decoded BGP message body.
type Message interface {
	// Type returns the message type.
	Type() MessageType
	// body appends the message body (everything after the header).
	body(dst []byte) []byte
}

// Encode serializes a message with its header into wire format.
func Encode(m Message) []byte {
	body := m.body(nil)
	total := HeaderLen + len(body)
	out := make([]byte, 0, total)
	for i := 0; i < MarkerLen; i++ {
		out = append(out, 0xff)
	}
	out = appendU16(out, uint16(total))
	out = append(out, byte(m.Type()))
	out = append(out, body...)
	return out
}

// FrameUpdate wraps a raw (possibly malformed) UPDATE body with the BGP
// message header. Encode frames a decoded Message; FrameUpdate is for bodies
// that exist only as bytes — explored inputs the campaign injects into
// clones and the live runtime replays from traces. Both must produce
// identical framing or replayed traces stop being byte-compatible with
// campaign injections.
func FrameUpdate(body []byte) []byte {
	total := HeaderLen + len(body)
	out := make([]byte, 0, total)
	for i := 0; i < MarkerLen; i++ {
		out = append(out, 0xff)
	}
	out = appendU16(out, uint16(total))
	out = append(out, byte(MsgUpdate))
	return append(out, body...)
}

// Decode parses one complete BGP message from data. The slice must contain
// exactly one message (header plus body), as produced by Encode or by the
// stream splitter in the transport layer.
func Decode(data []byte) (Message, error) {
	if len(data) < HeaderLen {
		return nil, newMessageError(ErrMessageHeader, ErrSubBadMessageLength, nil, "short header")
	}
	for i := 0; i < MarkerLen; i++ {
		if data[i] != 0xff {
			return nil, newMessageError(ErrMessageHeader, ErrSubConnectionNotSynchronized, nil, "bad marker")
		}
	}
	length := binary.BigEndian.Uint16(data[16:18])
	if int(length) != len(data) || length < HeaderLen || length > MaxMessageLen {
		return nil, newMessageError(ErrMessageHeader, ErrSubBadMessageLength, data[16:18], fmt.Sprintf("length %d does not match %d bytes", length, len(data)))
	}
	typ := MessageType(data[18])
	body := data[HeaderLen:]
	switch typ {
	case MsgOpen:
		return decodeOpen(body)
	case MsgUpdate:
		return DecodeUpdate(body)
	case MsgNotification:
		return decodeNotification(body)
	case MsgKeepalive:
		if len(body) != 0 {
			return nil, newMessageError(ErrMessageHeader, ErrSubBadMessageLength, nil, "KEEPALIVE with body")
		}
		return &Keepalive{}, nil
	}
	return nil, newMessageError(ErrMessageHeader, ErrSubBadMessageType, []byte{byte(typ)}, "unknown message type")
}

// ValidateHeader checks the fixed header of a single wire message (marker,
// length, type) and returns the message type and the body bytes. It does not
// decode the body, which lets callers parse UPDATE bodies with a symbolic
// machine.
func ValidateHeader(data []byte) (MessageType, []byte, error) {
	if len(data) < HeaderLen {
		return 0, nil, newMessageError(ErrMessageHeader, ErrSubBadMessageLength, nil, "short header")
	}
	for i := 0; i < MarkerLen; i++ {
		if data[i] != 0xff {
			return 0, nil, newMessageError(ErrMessageHeader, ErrSubConnectionNotSynchronized, nil, "bad marker")
		}
	}
	length := binary.BigEndian.Uint16(data[16:18])
	if int(length) != len(data) || length < HeaderLen || length > MaxMessageLen {
		return 0, nil, newMessageError(ErrMessageHeader, ErrSubBadMessageLength, data[16:18], "length mismatch")
	}
	typ := MessageType(data[18])
	switch typ {
	case MsgOpen, MsgUpdate, MsgNotification, MsgKeepalive:
		return typ, data[HeaderLen:], nil
	}
	return 0, nil, newMessageError(ErrMessageHeader, ErrSubBadMessageType, []byte{byte(typ)}, "unknown message type")
}

// SplitStream splits a byte stream into complete BGP messages, returning the
// raw message slices and the number of bytes consumed. Incomplete trailing
// data is left for the next call.
func SplitStream(buf []byte) (msgs [][]byte, consumed int, err error) {
	for {
		if len(buf)-consumed < HeaderLen {
			return msgs, consumed, nil
		}
		length := int(binary.BigEndian.Uint16(buf[consumed+16 : consumed+18]))
		if length < HeaderLen || length > MaxMessageLen {
			return msgs, consumed, newMessageError(ErrMessageHeader, ErrSubBadMessageLength, nil, "bad length in stream")
		}
		if len(buf)-consumed < length {
			return msgs, consumed, nil
		}
		msgs = append(msgs, buf[consumed:consumed+length])
		consumed += length
	}
}

// Open is the BGP OPEN message.
type Open struct {
	Version  uint8
	AS       ASN // truncated to 16 bits on the wire, per the classic OPEN format
	HoldTime uint16
	RouterID RouterID
	// Capabilities would be carried in optional parameters; the emulated
	// routers do not negotiate any.
}

// Type implements Message.
func (*Open) Type() MessageType { return MsgOpen }

func (o *Open) body(dst []byte) []byte {
	dst = append(dst, o.Version)
	dst = appendU16(dst, uint16(o.AS))
	dst = appendU16(dst, o.HoldTime)
	dst = appendU32(dst, uint32(o.RouterID))
	dst = append(dst, 0) // no optional parameters
	return dst
}

func decodeOpen(body []byte) (*Open, error) {
	if len(body) < 10 {
		return nil, newMessageError(ErrMessageHeader, ErrSubBadMessageLength, nil, "short OPEN")
	}
	o := &Open{
		Version:  body[0],
		AS:       ASN(binary.BigEndian.Uint16(body[1:3])),
		HoldTime: binary.BigEndian.Uint16(body[3:5]),
		RouterID: RouterID(binary.BigEndian.Uint32(body[5:9])),
	}
	if o.Version != Version {
		return nil, newMessageError(ErrOpenMessage, ErrSubUnsupportedVersionNumber, []byte{o.Version}, "unsupported version")
	}
	if o.RouterID == 0 {
		return nil, newMessageError(ErrOpenMessage, ErrSubBadBGPIdentifier, nil, "zero router id")
	}
	if o.HoldTime == 1 || o.HoldTime == 2 {
		return nil, newMessageError(ErrOpenMessage, ErrSubUnacceptableHoldTime, nil, "hold time below 3 seconds")
	}
	optLen := int(body[9])
	if len(body) != 10+optLen {
		return nil, newMessageError(ErrMessageHeader, ErrSubBadMessageLength, nil, "OPEN optional parameter length mismatch")
	}
	return o, nil
}

// Keepalive is the BGP KEEPALIVE message (empty body).
type Keepalive struct{}

// Type implements Message.
func (*Keepalive) Type() MessageType { return MsgKeepalive }

func (*Keepalive) body(dst []byte) []byte { return dst }

// Notification is the BGP NOTIFICATION message, sent before closing a
// session in response to an error.
type Notification struct {
	Code    ErrorCode
	Subcode ErrorSubcode
	Data    []byte
}

// Type implements Message.
func (*Notification) Type() MessageType { return MsgNotification }

func (n *Notification) body(dst []byte) []byte {
	dst = append(dst, byte(n.Code), byte(n.Subcode))
	return append(dst, n.Data...)
}

func decodeNotification(body []byte) (*Notification, error) {
	if len(body) < 2 {
		return nil, newMessageError(ErrMessageHeader, ErrSubBadMessageLength, nil, "short NOTIFICATION")
	}
	return &Notification{
		Code:    ErrorCode(body[0]),
		Subcode: ErrorSubcode(body[1]),
		Data:    append([]byte(nil), body[2:]...),
	}, nil
}

// String renders the notification compactly.
func (n *Notification) String() string {
	return fmt.Sprintf("NOTIFICATION %s/%d", n.Code, n.Subcode)
}
