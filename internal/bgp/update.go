package bgp

import (
	"encoding/binary"
	"fmt"
	"strings"

	"github.com/dice-project/dice/internal/concolic"
)

// Update is the BGP UPDATE message: withdrawn routes, path attributes, and
// the announced NLRI that the attributes describe.
type Update struct {
	Withdrawn []Prefix
	Attrs     *PathAttributes
	NLRI      []Prefix

	// Sym carries the symbolic view of the fields that DiCE marks as
	// symbolic (paper §3: NLRI prefixes and netmask lengths, path attribute
	// type/length/value fields). It is populated by ParseUpdateSym; for
	// messages built programmatically it is nil and the router treats every
	// field as concrete.
	Sym *SymUpdate
}

// SymPrefix is the symbolic view of one NLRI entry.
type SymPrefix struct {
	Len  concolic.Value // 8-bit mask length
	Addr concolic.Value // 32-bit network address (host bits may be set)
}

// SymUpdate is the symbolic view of the semantically relevant UPDATE fields.
// Values are concrete (Sym == nil inside the Value) when the message was
// parsed without a tracing machine.
type SymUpdate struct {
	Origin       concolic.Value // 8-bit
	HasOrigin    bool
	LocalPref    concolic.Value // 32-bit
	HasLocalPref bool
	MED          concolic.Value // 32-bit
	HasMED       bool
	NextHop      concolic.Value // 32-bit
	HasNextHop   bool
	ASPathLen    concolic.Value // 8-bit number of ASes in the first segment
	NLRI         []SymPrefix
	Withdrawn    []SymPrefix
	Communities  []concolic.Value // 32-bit each
}

// Type implements Message.
func (*Update) Type() MessageType { return MsgUpdate }

// body appends the UPDATE body: withdrawn routes, path attributes, NLRI.
func (u *Update) body(dst []byte) []byte {
	var withdrawn []byte
	for _, p := range u.Withdrawn {
		withdrawn = AppendPrefix(withdrawn, p)
	}
	dst = appendU16(dst, uint16(len(withdrawn)))
	dst = append(dst, withdrawn...)

	var attrs []byte
	if u.Attrs != nil && len(u.NLRI) > 0 {
		attrs = EncodeAttrs(u.Attrs)
	}
	dst = appendU16(dst, uint16(len(attrs)))
	dst = append(dst, attrs...)

	for _, p := range u.NLRI {
		dst = AppendPrefix(dst, p)
	}
	return dst
}

// EncodeBody returns the UPDATE body without the message header. This is the
// byte region DiCE marks as symbolic when exploring.
func (u *Update) EncodeBody() []byte { return u.body(nil) }

// String renders the update compactly.
func (u *Update) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE")
	if len(u.Withdrawn) > 0 {
		fmt.Fprintf(&sb, " withdraw=%v", u.Withdrawn)
	}
	if len(u.NLRI) > 0 {
		fmt.Fprintf(&sb, " announce=%v", u.NLRI)
		if u.Attrs != nil {
			fmt.Fprintf(&sb, " [%s]", u.Attrs)
		}
	}
	return sb.String()
}

// DecodeUpdate parses an UPDATE body without symbolic tracing.
func DecodeUpdate(body []byte) (*Update, error) {
	return ParseUpdateSym(nil, "update", body)
}

// ParseUpdateSym parses an UPDATE body, attaching symbolic expressions to the
// fields the DiCE prototype marks as symbolic. The region names the symbolic
// input region holding body (conventionally "update"); with a nil machine the
// parse is purely concrete and no constraints are recorded.
//
// Validation mirrors RFC 4271 §6.3 closely enough that malformed inputs
// produced during exploration exercise the NOTIFICATION error paths, which is
// where the "programming error" fault class hides.
func ParseUpdateSym(m *concolic.Machine, region string, body []byte) (*Update, error) {
	sb := m.Bytes(region, body)
	data := sb.Concrete()

	u := &Update{Sym: &SymUpdate{}}

	if len(data) < 4 {
		return nil, newMessageError(ErrUpdateMessage, ErrSubMalformedAttributeList, nil, "UPDATE body shorter than 4 bytes")
	}
	withdrawnLen := int(binary.BigEndian.Uint16(data[0:2]))
	if 2+withdrawnLen+2 > len(data) {
		return nil, newMessageError(ErrUpdateMessage, ErrSubMalformedAttributeList, nil, "withdrawn routes length overruns message")
	}

	// Withdrawn routes.
	off := 2
	end := 2 + withdrawnLen
	for off < end {
		p, n, sp, err := parsePrefixSym(m, sb, off, end, "withdrawn")
		if err != nil {
			return nil, err
		}
		u.Withdrawn = append(u.Withdrawn, p)
		u.Sym.Withdrawn = append(u.Sym.Withdrawn, sp)
		off += n
	}

	attrLen := int(binary.BigEndian.Uint16(data[end : end+2]))
	attrStart := end + 2
	attrEnd := attrStart + attrLen
	if attrEnd > len(data) {
		return nil, newMessageError(ErrUpdateMessage, ErrSubMalformedAttributeList, nil, "path attribute length overruns message")
	}

	attrs, err := parseAttrsSym(m, sb, attrStart, attrEnd, u.Sym)
	if err != nil {
		return nil, err
	}

	// NLRI occupies the remainder of the message.
	off = attrEnd
	for off < len(data) {
		p, n, sp, err := parsePrefixSym(m, sb, off, len(data), "nlri")
		if err != nil {
			return nil, err
		}
		u.NLRI = append(u.NLRI, p)
		u.Sym.NLRI = append(u.Sym.NLRI, sp)
		off += n
	}

	if len(u.NLRI) > 0 {
		if attrs == nil {
			return nil, newMessageError(ErrUpdateMessage, ErrSubMissingWellKnownAttr, []byte{byte(AttrOrigin)}, "announcement without path attributes")
		}
		if !u.Sym.HasOrigin {
			return nil, newMessageError(ErrUpdateMessage, ErrSubMissingWellKnownAttr, []byte{byte(AttrOrigin)}, "missing ORIGIN")
		}
		if !u.Sym.HasNextHop {
			return nil, newMessageError(ErrUpdateMessage, ErrSubMissingWellKnownAttr, []byte{byte(AttrNextHop)}, "missing NEXT_HOP")
		}
	}
	u.Attrs = attrs
	return u, nil
}

// parsePrefixSym parses one NLRI-encoded prefix starting at off, bounded by
// end, recording the mask-length validity branch and building the symbolic
// view of the prefix.
func parsePrefixSym(m *concolic.Machine, sb *concolic.SymBytes, off, end int, kind string) (Prefix, int, SymPrefix, error) {
	if off >= end {
		return Prefix{}, 0, SymPrefix{}, newMessageError(ErrUpdateMessage, ErrSubInvalidNetworkField, nil, "truncated "+kind)
	}
	lenVal := sb.Byte(off)
	maskLen := uint8(lenVal.Uint())
	// The mask-length check is one of the branches DiCE negates to produce
	// invalid prefixes that exercise the error path.
	if !m.Branch("bgp/update."+kind+".masklen", concolic.Le(lenVal, concolic.Const(32, 8))) {
		return Prefix{}, 0, SymPrefix{}, newMessageError(ErrUpdateMessage, ErrSubInvalidNetworkField, []byte{maskLen}, fmt.Sprintf("%s prefix length %d > 32", kind, maskLen))
	}
	n := encodedPrefixLen(maskLen)
	if off+1+n > end {
		return Prefix{}, 0, SymPrefix{}, newMessageError(ErrUpdateMessage, ErrSubInvalidNetworkField, nil, "truncated "+kind+" address")
	}
	var addr uint32
	addrVal := concolic.Const(0, 32)
	for i := 0; i < n; i++ {
		b := sb.Byte(off + 1 + i)
		addr |= uint32(b.Uint()) << (24 - 8*i)
		shifted := concolic.ZExt(b, 32)
		for s := 0; s < 24-8*i; s += 8 {
			shifted = concolic.Mul(shifted, concolic.Const(256, 32))
		}
		addrVal = concolic.BitOr(addrVal, shifted)
	}
	p := Prefix{Addr: addr, Len: maskLen}.Canonical()
	return p, 1 + n, SymPrefix{Len: lenVal, Addr: addrVal}, nil
}

// parseAttrsSym parses the path attribute block [start, end), recording the
// attribute type dispatch and per-attribute validation branches.
func parseAttrsSym(m *concolic.Machine, sb *concolic.SymBytes, start, end int, sym *SymUpdate) (*PathAttributes, error) {
	if start == end {
		return nil, nil
	}
	attrs := &PathAttributes{}
	off := start
	for off < end {
		if off+2 > end {
			return nil, newMessageError(ErrUpdateMessage, ErrSubMalformedAttributeList, nil, "truncated attribute header")
		}
		flagsVal := sb.Byte(off)
		typeVal := sb.Byte(off + 1)
		flags := uint8(flagsVal.Uint())
		typ := AttrType(typeVal.Uint())
		off += 2

		var length int
		if m.Branch("bgp/update.attr.extlen", concolic.Ne(concolic.BitAnd(flagsVal, concolic.Const(FlagExtended, 8)), concolic.Const(0, 8))) {
			if off+2 > end {
				return nil, newMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "truncated extended length")
			}
			length = int(concolic.Concat(sb.Byte(off), sb.Byte(off+1)).Uint())
			off += 2
		} else {
			if off+1 > end {
				return nil, newMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "truncated length")
			}
			length = int(sb.Byte(off).Uint())
			off++
		}
		if off+length > end {
			return nil, newMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, fmt.Sprintf("attribute %s length %d overruns block", typ, length))
		}
		valStart := off
		off += length

		switch {
		case m.Branch("bgp/update.attr.is_origin", concolic.EqConst(typeVal, uint64(AttrOrigin))):
			if length != 1 {
				return nil, newMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "ORIGIN length != 1")
			}
			ov := sb.Byte(valStart)
			if !m.Branch("bgp/update.origin.valid", concolic.Le(ov, concolic.Const(uint64(OriginIncomplete), 8))) {
				return nil, newMessageError(ErrUpdateMessage, ErrSubInvalidOriginAttribute, []byte{byte(ov.Uint())}, "invalid ORIGIN value")
			}
			attrs.Origin = uint8(ov.Uint())
			sym.Origin = ov
			sym.HasOrigin = true

		case m.Branch("bgp/update.attr.is_aspath", concolic.EqConst(typeVal, uint64(AttrASPath))):
			if err := parseASPathSym(m, sb, valStart, valStart+length, attrs, sym); err != nil {
				return nil, err
			}

		case m.Branch("bgp/update.attr.is_nexthop", concolic.EqConst(typeVal, uint64(AttrNextHop))):
			if length != 4 {
				return nil, newMessageError(ErrUpdateMessage, ErrSubInvalidNextHopAttribute, nil, "NEXT_HOP length != 4")
			}
			nh := sb.U32(valStart)
			if !m.Branch("bgp/update.nexthop.nonzero", concolic.Ne(nh, concolic.Const(0, 32))) {
				return nil, newMessageError(ErrUpdateMessage, ErrSubInvalidNextHopAttribute, nil, "NEXT_HOP is 0.0.0.0")
			}
			attrs.NextHop = uint32(nh.Uint())
			sym.NextHop = nh
			sym.HasNextHop = true

		case m.Branch("bgp/update.attr.is_med", concolic.EqConst(typeVal, uint64(AttrMED))):
			if length != 4 {
				return nil, newMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "MED length != 4")
			}
			v := sb.U32(valStart)
			attrs.SetMED(uint32(v.Uint()))
			sym.MED = v
			sym.HasMED = true

		case m.Branch("bgp/update.attr.is_localpref", concolic.EqConst(typeVal, uint64(AttrLocalPref))):
			if length != 4 {
				return nil, newMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "LOCAL_PREF length != 4")
			}
			v := sb.U32(valStart)
			attrs.SetLocalPref(uint32(v.Uint()))
			sym.LocalPref = v
			sym.HasLocalPref = true

		case m.Branch("bgp/update.attr.is_atomicagg", concolic.EqConst(typeVal, uint64(AttrAtomicAggregate))):
			attrs.AtomicAggregate = true

		case m.Branch("bgp/update.attr.is_aggregator", concolic.EqConst(typeVal, uint64(AttrAggregator))):
			if length != 6 {
				return nil, newMessageError(ErrUpdateMessage, ErrSubAttributeLengthError, nil, "AGGREGATOR length != 6")
			}
			attrs.HasAggregator = true
			attrs.AggregatorAS = ASN(concolic.Concat(sb.Byte(valStart), sb.Byte(valStart+1)).Uint())
			attrs.AggregatorID = uint32(sb.U32(valStart + 2).Uint())

		case m.Branch("bgp/update.attr.is_communities", concolic.EqConst(typeVal, uint64(AttrCommunities))):
			if length%4 != 0 {
				return nil, newMessageError(ErrUpdateMessage, ErrSubOptionalAttributeError, nil, "COMMUNITIES length not a multiple of 4")
			}
			for i := 0; i < length; i += 4 {
				cv := sb.U32(valStart + i)
				attrs.Communities = append(attrs.Communities, Community(cv.Uint()))
				sym.Communities = append(sym.Communities, cv)
			}

		default:
			// Unknown attribute: well-known (non-optional) unknown attributes
			// are a protocol error; optional ones are ignored (and would be
			// propagated if transitive).
			if !m.Branch("bgp/update.attr.unknown_optional", concolic.Ne(concolic.BitAnd(flagsVal, concolic.Const(FlagOptional, 8)), concolic.Const(0, 8))) {
				return nil, newMessageError(ErrUpdateMessage, ErrSubUnrecognizedWellKnownAttr, []byte{flags, byte(typ)}, fmt.Sprintf("unrecognized well-known attribute %d", typ))
			}
		}
	}
	return attrs, nil
}

// parseASPathSym parses the AS_PATH attribute value [start, end).
func parseASPathSym(m *concolic.Machine, sb *concolic.SymBytes, start, end int, attrs *PathAttributes, sym *SymUpdate) error {
	off := start
	first := true
	for off < end {
		if off+2 > end {
			return newMessageError(ErrUpdateMessage, ErrSubMalformedASPath, nil, "truncated AS_PATH segment header")
		}
		segTypeVal := sb.Byte(off)
		segLenVal := sb.Byte(off + 1)
		segType := uint8(segTypeVal.Uint())
		segLen := int(segLenVal.Uint())
		off += 2
		if !m.Branch("bgp/update.aspath.segtype", concolic.Or(
			concolic.EqConst(segTypeVal, uint64(ASPathSegSequence)),
			concolic.EqConst(segTypeVal, uint64(ASPathSegSet)))) {
			return newMessageError(ErrUpdateMessage, ErrSubMalformedASPath, []byte{segType}, "unknown AS_PATH segment type")
		}
		if off+segLen*2 > end {
			return newMessageError(ErrUpdateMessage, ErrSubMalformedASPath, nil, "AS_PATH segment overruns attribute")
		}
		if first {
			sym.ASPathLen = segLenVal
			first = false
		}
		for i := 0; i < segLen; i++ {
			asn := ASN(concolic.Concat(sb.Byte(off), sb.Byte(off+1)).Uint())
			off += 2
			if segType == ASPathSegSequence {
				attrs.ASPath = append(attrs.ASPath, asn)
			} else {
				attrs.ASSet = append(attrs.ASSet, asn)
			}
		}
	}
	return nil
}
