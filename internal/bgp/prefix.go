// Package bgp implements the BGP-4 (RFC 4271) wire format and message model
// used by the emulated routers: message header framing, OPEN / UPDATE /
// KEEPALIVE / NOTIFICATION encoding and decoding, path attributes, and the
// IPv4 prefix representation used for NLRI.
//
// The package deliberately mirrors the subset of BGP that the BIRD
// integration in the DiCE paper exercises: UPDATE handling (NLRI and path
// attribute TLVs are what DiCE marks as symbolic), the standard path
// attributes consulted by the decision process, and the NOTIFICATION error
// taxonomy used to classify malformed input.
package bgp

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ASN is an autonomous system number.
type ASN uint32

// String renders the ASN in the conventional decimal form.
func (a ASN) String() string { return strconv.FormatUint(uint64(a), 10) }

// RouterID is a 32-bit BGP identifier, conventionally written as an IPv4
// dotted quad.
type RouterID uint32

// String renders the router ID as a dotted quad.
func (r RouterID) String() string { return ipString(uint32(r)) }

func ipString(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

// ParseIPv4 parses a dotted-quad IPv4 address into its 32-bit value.
func ParseIPv4(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("bgp: invalid IPv4 address %q", s)
	}
	var v uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("bgp: invalid IPv4 address %q", s)
		}
		v = v<<8 | uint32(n)
	}
	return v, nil
}

// Prefix is an IPv4 network prefix (address plus mask length), the unit of
// NLRI in BGP UPDATE messages.
type Prefix struct {
	Addr uint32
	Len  uint8
}

// MustParsePrefix parses a prefix in "a.b.c.d/len" form and panics on error.
// Intended for tests and static topology definitions.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// ParsePrefix parses a prefix in "a.b.c.d/len" form.
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("bgp: prefix %q missing mask length", s)
	}
	addr, err := ParseIPv4(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	l, err := strconv.Atoi(s[slash+1:])
	if err != nil || l < 0 || l > 32 {
		return Prefix{}, fmt.Errorf("bgp: invalid prefix length in %q", s)
	}
	return Prefix{Addr: addr, Len: uint8(l)}.Canonical(), nil
}

// Mask returns the network mask of the prefix as a 32-bit value.
func (p Prefix) Mask() uint32 {
	if p.Len == 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Len)
}

// Canonical returns the prefix with host bits cleared.
func (p Prefix) Canonical() Prefix {
	return Prefix{Addr: p.Addr & p.Mask(), Len: p.Len}
}

// Contains reports whether the prefix covers the other prefix (equal or more
// specific).
func (p Prefix) Contains(other Prefix) bool {
	if other.Len < p.Len {
		return false
	}
	return other.Addr&p.Mask() == p.Addr&p.Mask()
}

// Valid reports whether the prefix is well-formed (length at most 32 and no
// host bits set).
func (p Prefix) Valid() bool {
	return p.Len <= 32 && p.Addr == p.Addr&p.Mask()
}

// String renders the prefix in "a.b.c.d/len" form.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", ipString(p.Addr), p.Len)
}

// Less orders prefixes by address then by length, giving a deterministic
// ordering for RIB iteration and wire encoding.
func (p Prefix) Less(other Prefix) bool {
	if p.Addr != other.Addr {
		return p.Addr < other.Addr
	}
	return p.Len < other.Len
}

// SortPrefixes sorts a slice of prefixes in place into canonical order.
func SortPrefixes(ps []Prefix) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
}

// encodedPrefixLen returns the number of NLRI octets used by a prefix of the
// given mask length (RFC 4271 §4.3: minimum octets to hold Len bits).
func encodedPrefixLen(maskLen uint8) int {
	return int(maskLen+7) / 8
}

// AppendPrefix appends the NLRI wire encoding of the prefix (length octet
// followed by the minimal number of address octets).
func AppendPrefix(dst []byte, p Prefix) []byte {
	dst = append(dst, p.Len)
	n := encodedPrefixLen(p.Len)
	for i := 0; i < n; i++ {
		dst = append(dst, byte(p.Addr>>(24-8*i)))
	}
	return dst
}

// decodePrefix decodes one NLRI prefix from data, returning the prefix and
// the number of bytes consumed.
func decodePrefix(data []byte) (Prefix, int, error) {
	if len(data) < 1 {
		return Prefix{}, 0, newMessageError(ErrUpdateMessage, ErrSubInvalidNetworkField, nil, "truncated NLRI")
	}
	maskLen := data[0]
	if maskLen > 32 {
		return Prefix{}, 0, newMessageError(ErrUpdateMessage, ErrSubInvalidNetworkField, nil, fmt.Sprintf("prefix length %d > 32", maskLen))
	}
	n := encodedPrefixLen(maskLen)
	if len(data) < 1+n {
		return Prefix{}, 0, newMessageError(ErrUpdateMessage, ErrSubInvalidNetworkField, nil, "truncated NLRI address")
	}
	var addr uint32
	for i := 0; i < n; i++ {
		addr |= uint32(data[1+i]) << (24 - 8*i)
	}
	p := Prefix{Addr: addr, Len: maskLen}
	if !p.Valid() {
		// RFC 4271 permits host bits; we canonicalize rather than reject so
		// fuzzed inputs still parse, mirroring BIRD's lenient handling.
		p = p.Canonical()
	}
	return p, 1 + n, nil
}

// DecodePrefixes decodes a run of NLRI-encoded prefixes covering exactly the
// given byte slice.
func DecodePrefixes(data []byte) ([]Prefix, error) {
	var out []Prefix
	for len(data) > 0 {
		p, n, err := decodePrefix(data)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		data = data[n:]
	}
	return out, nil
}

// Community is a BGP community value (RFC 1997), a 32-bit tag conventionally
// written as "asn:value".
type Community uint32

// NewCommunity builds a community from its AS and value halves.
func NewCommunity(asn uint16, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// String renders the community in "asn:value" form.
func (c Community) String() string {
	return fmt.Sprintf("%d:%d", uint32(c)>>16, uint32(c)&0xffff)
}

// Well-known communities (RFC 1997).
const (
	CommunityNoExport          Community = 0xFFFFFF01
	CommunityNoAdvertise       Community = 0xFFFFFF02
	CommunityNoExportSubconfed Community = 0xFFFFFF03
)

func appendU16(dst []byte, v uint16) []byte {
	var b [2]byte
	binary.BigEndian.PutUint16(b[:], v)
	return append(dst, b[:]...)
}

func appendU32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}
