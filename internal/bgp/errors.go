package bgp

import "fmt"

// ErrorCode is a BGP NOTIFICATION error code (RFC 4271 §4.5).
type ErrorCode uint8

// NOTIFICATION error codes.
const (
	ErrMessageHeader      ErrorCode = 1
	ErrOpenMessage        ErrorCode = 2
	ErrUpdateMessage      ErrorCode = 3
	ErrHoldTimerExpired   ErrorCode = 4
	ErrFiniteStateMachine ErrorCode = 5
	ErrCease              ErrorCode = 6
)

// String returns the RFC name of the error code.
func (c ErrorCode) String() string {
	switch c {
	case ErrMessageHeader:
		return "Message Header Error"
	case ErrOpenMessage:
		return "OPEN Message Error"
	case ErrUpdateMessage:
		return "UPDATE Message Error"
	case ErrHoldTimerExpired:
		return "Hold Timer Expired"
	case ErrFiniteStateMachine:
		return "Finite State Machine Error"
	case ErrCease:
		return "Cease"
	}
	return fmt.Sprintf("ErrorCode(%d)", uint8(c))
}

// ErrorSubcode refines an ErrorCode.
type ErrorSubcode uint8

// Message header error subcodes.
const (
	ErrSubConnectionNotSynchronized ErrorSubcode = 1
	ErrSubBadMessageLength          ErrorSubcode = 2
	ErrSubBadMessageType            ErrorSubcode = 3
)

// OPEN message error subcodes.
const (
	ErrSubUnsupportedVersionNumber ErrorSubcode = 1
	ErrSubBadPeerAS                ErrorSubcode = 2
	ErrSubBadBGPIdentifier         ErrorSubcode = 3
	ErrSubUnacceptableHoldTime     ErrorSubcode = 6
)

// UPDATE message error subcodes.
const (
	ErrSubMalformedAttributeList    ErrorSubcode = 1
	ErrSubUnrecognizedWellKnownAttr ErrorSubcode = 2
	ErrSubMissingWellKnownAttr      ErrorSubcode = 3
	ErrSubAttributeFlagsError       ErrorSubcode = 4
	ErrSubAttributeLengthError      ErrorSubcode = 5
	ErrSubInvalidOriginAttribute    ErrorSubcode = 6
	ErrSubInvalidNextHopAttribute   ErrorSubcode = 8
	ErrSubOptionalAttributeError    ErrorSubcode = 9
	ErrSubInvalidNetworkField       ErrorSubcode = 10
	ErrSubMalformedASPath           ErrorSubcode = 11
)

// MessageError is a protocol error that maps onto a NOTIFICATION message.
type MessageError struct {
	Code    ErrorCode
	Subcode ErrorSubcode
	Data    []byte
	Reason  string
}

// Error implements error.
func (e *MessageError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("bgp: %s/%d: %s", e.Code, e.Subcode, e.Reason)
	}
	return fmt.Sprintf("bgp: %s/%d", e.Code, e.Subcode)
}

// Notification converts the error into the NOTIFICATION message that a BGP
// speaker would send before closing the session.
func (e *MessageError) Notification() *Notification {
	return &Notification{Code: e.Code, Subcode: e.Subcode, Data: append([]byte(nil), e.Data...)}
}

func newMessageError(code ErrorCode, sub ErrorSubcode, data []byte, reason string) *MessageError {
	return &MessageError{Code: code, Subcode: sub, Data: data, Reason: reason}
}
