package rib

import (
	"github.com/dice-project/dice/internal/concolic"
)

// Better reports whether route a is preferred over route b by the BGP
// decision process (RFC 4271 §9.1.2), recording the decision-relevant
// comparisons as branch constraints when a tracing machine is supplied:
//
//  1. higher LOCAL_PREF
//  2. locally originated routes over learned routes
//  3. shorter AS_PATH
//  4. lower ORIGIN
//  5. lower MED
//  6. eBGP over iBGP
//  7. lower peer router ID
//  8. lower peer name (final deterministic tie break)
func Better(m *concolic.Machine, a, b *Route) bool {
	if b == nil {
		return true
	}
	if a == nil {
		return false
	}
	// 1. LOCAL_PREF (higher wins).
	alp, blp := a.LocalPrefValue(), b.LocalPrefValue()
	if m.Branch("rib/decision.localpref.gt", concolic.Gt(alp, blp)) {
		return true
	}
	if m.Branch("rib/decision.localpref.lt", concolic.Lt(alp, blp)) {
		return false
	}
	// 2. Locally originated routes win.
	if a.Local != b.Local {
		return a.Local
	}
	// 3. AS_PATH length (shorter wins).
	apl, bpl := a.PathLenValue(), b.PathLenValue()
	if m.Branch("rib/decision.aspath.lt", concolic.Lt(apl, bpl)) {
		return true
	}
	if m.Branch("rib/decision.aspath.gt", concolic.Gt(apl, bpl)) {
		return false
	}
	// 4. ORIGIN (lower wins).
	if a.Attrs.Origin != b.Attrs.Origin {
		return a.Attrs.Origin < b.Attrs.Origin
	}
	// 5. MED (lower wins). RFC compares MED only between routes from the
	// same neighboring AS; we follow that rule.
	if a.PeerAS == b.PeerAS {
		amed, bmed := a.MEDValue(), b.MEDValue()
		if m.Branch("rib/decision.med.lt", concolic.Lt(amed, bmed)) {
			return true
		}
		if m.Branch("rib/decision.med.gt", concolic.Gt(amed, bmed)) {
			return false
		}
	}
	// 6. eBGP over iBGP.
	if a.EBGP != b.EBGP {
		return a.EBGP
	}
	// 7. Lowest peer router ID.
	if a.PeerRouterID != b.PeerRouterID {
		return a.PeerRouterID < b.PeerRouterID
	}
	// 8. Lowest peer name.
	return a.Peer < b.Peer
}

// SelectBest returns the best route among the candidates, or nil when the
// slice is empty. Candidates are compared pairwise with Better so that the
// relevant constraints are recorded under exploration.
func SelectBest(m *concolic.Machine, candidates []*Route) *Route {
	var best *Route
	for _, r := range candidates {
		if best == nil || Better(m, r, best) {
			best = r
		}
	}
	return best
}
