package rib

import (
	"github.com/dice-project/dice/internal/concolic"
)

// DecisionPolicy selects the final tie-breaking order of the BGP decision
// process. RFC 4271 §9.1.2.2 pins the early steps (LOCAL_PREF, AS_PATH
// length, ORIGIN, MED, eBGP over iBGP) but real implementations legally
// diverge at the end of the ladder: BIRD compares originator router IDs
// before falling back to the neighbor address, FRR-lineage daemons resolve
// the tie on the neighbor address first, and OpenBGPD-lineage daemons prefer
// the longest-established path ("oldest route wins", restorable here through
// the Route.Age arrival stamp) before falling back to the router ID. All
// three orders are deterministic and RFC-conformant — which is exactly what
// makes a mixed deployment select different best paths for the same inputs,
// the divergence the CrossImplDivergence checker hunts.
type DecisionPolicy int

// Decision policies.
const (
	// DecisionRouterIDFirst breaks final ties on the lowest peer router ID,
	// then the lowest peer name (BIRD's order; the package default).
	DecisionRouterIDFirst DecisionPolicy = iota
	// DecisionPeerAddressFirst breaks final ties on the lowest peer name
	// (the neighbor address in a real deployment), then the lowest peer
	// router ID (FRR's deterministic stand-in for its route-age preference).
	DecisionPeerAddressFirst
	// DecisionOldestFirst breaks final ties on the oldest route (the lowest
	// nonzero Age arrival stamp — OpenBGPD's route-age stability rule), then
	// the lowest peer router ID, then the lowest peer name. Routes without a
	// stamp (Age zero, e.g. hand-built candidates) skip the age step, so the
	// policy degrades to the router-ID order rather than picking arbitrarily.
	DecisionOldestFirst
)

// AllDecisionPolicies is the canonical policy universe, in constant order.
// The three-way differential oracle replays every candidate set through all
// of them to classify disagreements by majority vote.
var AllDecisionPolicies = []DecisionPolicy{
	DecisionRouterIDFirst, DecisionPeerAddressFirst, DecisionOldestFirst,
}

// String renders the policy.
func (p DecisionPolicy) String() string {
	switch p {
	case DecisionPeerAddressFirst:
		return "peer-address-first"
	case DecisionOldestFirst:
		return "oldest-first"
	}
	return "router-id-first"
}

// Better reports whether route a is preferred over route b under the default
// (BIRD-order) decision policy. See BetterWith.
func Better(m *concolic.Machine, a, b *Route) bool {
	return BetterWith(m, a, b, DecisionRouterIDFirst)
}

// BetterWith reports whether route a is preferred over route b by the BGP
// decision process (RFC 4271 §9.1.2), recording the decision-relevant
// comparisons as branch constraints when a tracing machine is supplied:
//
//  1. higher LOCAL_PREF
//  2. locally originated routes over learned routes
//  3. shorter AS_PATH
//  4. lower ORIGIN
//  5. lower MED
//  6. eBGP over iBGP
//  7. + 8. the policy's tie-break order over route age, peer router ID and
//     peer name
//
// Steps 1–6 are common to every implementation; only the final tie-break
// order varies with the DecisionPolicy, and it involves no symbolic state,
// so the recorded path constraints are identical across policies.
func BetterWith(m *concolic.Machine, a, b *Route, pol DecisionPolicy) bool {
	if b == nil {
		return true
	}
	if a == nil {
		return false
	}
	// 1. LOCAL_PREF (higher wins).
	alp, blp := a.LocalPrefValue(), b.LocalPrefValue()
	if m.Branch("rib/decision.localpref.gt", concolic.Gt(alp, blp)) {
		return true
	}
	if m.Branch("rib/decision.localpref.lt", concolic.Lt(alp, blp)) {
		return false
	}
	// 2. Locally originated routes win.
	if a.Local != b.Local {
		return a.Local
	}
	// 3. AS_PATH length (shorter wins).
	apl, bpl := a.PathLenValue(), b.PathLenValue()
	if m.Branch("rib/decision.aspath.lt", concolic.Lt(apl, bpl)) {
		return true
	}
	if m.Branch("rib/decision.aspath.gt", concolic.Gt(apl, bpl)) {
		return false
	}
	// 4. ORIGIN (lower wins).
	if a.Attrs.Origin != b.Attrs.Origin {
		return a.Attrs.Origin < b.Attrs.Origin
	}
	// 5. MED (lower wins). RFC compares MED only between routes from the
	// same neighboring AS; we follow that rule.
	if a.PeerAS == b.PeerAS {
		amed, bmed := a.MEDValue(), b.MEDValue()
		if m.Branch("rib/decision.med.lt", concolic.Lt(amed, bmed)) {
			return true
		}
		if m.Branch("rib/decision.med.gt", concolic.Gt(amed, bmed)) {
			return false
		}
	}
	// 6. eBGP over iBGP.
	if a.EBGP != b.EBGP {
		return a.EBGP
	}
	// 7. + 8. Implementation-specific tie-break order. None of the tail
	// steps involve symbolic state, so the recorded path constraints stay
	// identical across policies.
	switch pol {
	case DecisionPeerAddressFirst:
		if a.Peer != b.Peer {
			return a.Peer < b.Peer
		}
		return a.PeerRouterID < b.PeerRouterID
	case DecisionOldestFirst:
		if a.Age != b.Age && a.Age != 0 && b.Age != 0 {
			return a.Age < b.Age
		}
	}
	if a.PeerRouterID != b.PeerRouterID {
		return a.PeerRouterID < b.PeerRouterID
	}
	return a.Peer < b.Peer
}

// SelectBest returns the best route among the candidates under the default
// policy, or nil when the slice is empty.
func SelectBest(m *concolic.Machine, candidates []*Route) *Route {
	return SelectBestWith(m, candidates, DecisionRouterIDFirst)
}

// SelectBestWith returns the best route among the candidates under the given
// decision policy, or nil when the slice is empty. Candidates are compared
// pairwise with BetterWith so that the relevant constraints are recorded
// under exploration; every policy induces a total order, so the selection is
// independent of candidate order.
func SelectBestWith(m *concolic.Machine, candidates []*Route, pol DecisionPolicy) *Route {
	var best *Route
	for _, r := range candidates {
		if best == nil || BetterWith(m, r, best, pol) {
			best = r
		}
	}
	return best
}
