// Package rib implements the three BGP routing information bases
// (Adj-RIB-In, Loc-RIB, Adj-RIB-Out) and the BGP decision process used by
// the emulated router.
//
// The decision process can run in two modes. On the live node it compares
// concrete path attributes exactly as RFC 4271 §9.1 prescribes. Under DiCE
// exploration the comparison consults the symbolic view of the attributes
// carried by routes learned from explored UPDATE messages, recording the
// comparison outcomes as branch constraints so that the concolic engine can
// synthesize inputs that change the outcome of route selection — this is the
// paper's "treat the locally-most-preferred condition as symbolic" idea.
package rib

import (
	"fmt"
	"sort"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/concolic"
)

// SymAttrs is the symbolic view of the attributes the decision process
// consults. The concrete values inside each Value mirror the corresponding
// field of the route's PathAttributes.
type SymAttrs struct {
	LocalPref    concolic.Value // 32-bit
	HasLocalPref bool
	MED          concolic.Value // 32-bit
	HasMED       bool
	PathLen      concolic.Value // 8-bit
	HasPathLen   bool
	// PrefixLen and PrefixAddr are the symbolic view of the route's own
	// prefix (from the NLRI field of the UPDATE it was learned from); the
	// policy interpreter consults them so prefix-filter decisions become
	// negatable constraints.
	PrefixLen  concolic.Value // 8-bit
	PrefixAddr concolic.Value // 32-bit
	HasPrefix  bool
}

// SymFromUpdate derives the symbolic attribute view for routes learned from
// a parsed UPDATE.
func SymFromUpdate(su *bgp.SymUpdate) *SymAttrs {
	if su == nil {
		return nil
	}
	out := &SymAttrs{}
	if su.HasLocalPref {
		out.LocalPref = su.LocalPref
		out.HasLocalPref = true
	}
	if su.HasMED {
		out.MED = su.MED
		out.HasMED = true
	}
	if su.ASPathLen.Width != 0 {
		out.PathLen = su.ASPathLen
		out.HasPathLen = true
	}
	return out
}

// Route is one path to a prefix as stored in the RIBs.
type Route struct {
	Prefix bgp.Prefix
	Attrs  *bgp.PathAttributes

	// Peer is the name of the neighbor the route was learned from; empty for
	// locally originated routes.
	Peer string
	// PeerAS is the neighbor's AS (0 for local routes).
	PeerAS bgp.ASN
	// PeerRouterID breaks ties in the decision process.
	PeerRouterID bgp.RouterID
	// EBGP records whether the route was learned over an external session.
	EBGP bool
	// Local marks locally originated (network statement) routes.
	Local bool

	// Age is the Loc-RIB arrival stamp: a monotone per-RIB counter assigned
	// when the candidate is first installed and retained across refreshes of
	// the same (prefix, peer) candidate. A lower nonzero stamp means an older
	// — longer-established — path; zero means "never stamped". The stamp is
	// part of the checkpoint-representable route state, which is what lets
	// OpenBGPD's "oldest route wins" tie-break replay deterministically from
	// restored state (the DecisionOldestFirst policy).
	Age uint64

	// Sym is the symbolic view of the decision-relevant attributes; nil for
	// routes that were not learned from an explored input.
	Sym *SymAttrs
}

// Clone returns a deep copy of the route. Symbolic views are shared (they
// are immutable).
func (r *Route) Clone() *Route {
	if r == nil {
		return nil
	}
	out := *r
	out.Attrs = r.Attrs.Clone()
	return &out
}

// LocalPrefValue returns the route's effective LOCAL_PREF as a (possibly
// symbolic) 32-bit value.
func (r *Route) LocalPrefValue() concolic.Value {
	if r.Sym != nil && r.Sym.HasLocalPref {
		return r.Sym.LocalPref
	}
	return concolic.Const(uint64(r.Attrs.EffectiveLocalPref()), 32)
}

// MEDValue returns the route's effective MED as a (possibly symbolic) value.
func (r *Route) MEDValue() concolic.Value {
	if r.Sym != nil && r.Sym.HasMED {
		return r.Sym.MED
	}
	return concolic.Const(uint64(r.Attrs.EffectiveMED()), 32)
}

// PathLenValue returns the AS_PATH length as a (possibly symbolic) value.
func (r *Route) PathLenValue() concolic.Value {
	if r.Sym != nil && r.Sym.HasPathLen {
		return concolic.ZExt(r.Sym.PathLen, 32)
	}
	return concolic.Const(uint64(r.Attrs.PathLen()), 32)
}

// PrefixLenValue returns the route's prefix mask length as a (possibly
// symbolic) 8-bit value.
func (r *Route) PrefixLenValue() concolic.Value {
	if r.Sym != nil && r.Sym.HasPrefix {
		return r.Sym.PrefixLen
	}
	return concolic.Const(uint64(r.Prefix.Len), 8)
}

// PrefixAddrValue returns the route's prefix network address as a (possibly
// symbolic) 32-bit value.
func (r *Route) PrefixAddrValue() concolic.Value {
	if r.Sym != nil && r.Sym.HasPrefix {
		return r.Sym.PrefixAddr
	}
	return concolic.Const(uint64(r.Prefix.Addr), 32)
}

// String renders the route compactly.
func (r *Route) String() string {
	src := r.Peer
	if r.Local {
		src = "local"
	}
	return fmt.Sprintf("%s via %s (%s)", r.Prefix, src, r.Attrs)
}

// SortRoutes orders routes deterministically (by prefix, then peer), for
// stable iteration in checkpoints and reports.
func SortRoutes(rs []*Route) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Prefix != rs[j].Prefix {
			return rs[i].Prefix.Less(rs[j].Prefix)
		}
		return rs[i].Peer < rs[j].Peer
	})
}
