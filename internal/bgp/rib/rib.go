package rib

import (
	"sort"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/concolic"
)

// AdjRIBIn stores the routes received from one peer, before import policy.
type AdjRIBIn struct {
	routes map[bgp.Prefix]*Route
}

// NewAdjRIBIn returns an empty Adj-RIB-In.
func NewAdjRIBIn() *AdjRIBIn {
	return &AdjRIBIn{routes: make(map[bgp.Prefix]*Route)}
}

// Set stores (or replaces) the route for its prefix.
func (a *AdjRIBIn) Set(r *Route) { a.routes[r.Prefix] = r }

// Remove deletes the route for the prefix and reports whether one existed.
func (a *AdjRIBIn) Remove(p bgp.Prefix) bool {
	if _, ok := a.routes[p]; !ok {
		return false
	}
	delete(a.routes, p)
	return true
}

// Get returns the route for the prefix, or nil.
func (a *AdjRIBIn) Get(p bgp.Prefix) *Route { return a.routes[p] }

// Len returns the number of stored routes.
func (a *AdjRIBIn) Len() int { return len(a.routes) }

// Routes returns the stored routes in canonical prefix order.
func (a *AdjRIBIn) Routes() []*Route {
	out := make([]*Route, 0, len(a.routes))
	for _, r := range a.routes {
		out = append(out, r)
	}
	SortRoutes(out)
	return out
}

// Clear removes every stored route, retaining the allocated map (the
// clone-reset path clears and refills RIBs instead of reallocating them).
func (a *AdjRIBIn) Clear() { clear(a.routes) }

// Clone deep-copies the Adj-RIB-In.
func (a *AdjRIBIn) Clone() *AdjRIBIn {
	out := NewAdjRIBIn()
	for p, r := range a.routes {
		out.routes[p] = r.Clone()
	}
	return out
}

// AdjRIBOut stores the routes advertised to one peer, after export policy.
type AdjRIBOut struct {
	routes map[bgp.Prefix]*Route
}

// NewAdjRIBOut returns an empty Adj-RIB-Out.
func NewAdjRIBOut() *AdjRIBOut {
	return &AdjRIBOut{routes: make(map[bgp.Prefix]*Route)}
}

// Set stores (or replaces) the advertised route for its prefix.
func (a *AdjRIBOut) Set(r *Route) { a.routes[r.Prefix] = r }

// Remove deletes the advertisement for the prefix and reports whether one
// existed.
func (a *AdjRIBOut) Remove(p bgp.Prefix) bool {
	if _, ok := a.routes[p]; !ok {
		return false
	}
	delete(a.routes, p)
	return true
}

// Get returns the advertised route for the prefix, or nil.
func (a *AdjRIBOut) Get(p bgp.Prefix) *Route { return a.routes[p] }

// Len returns the number of advertised prefixes.
func (a *AdjRIBOut) Len() int { return len(a.routes) }

// Routes returns the advertised routes in canonical prefix order.
func (a *AdjRIBOut) Routes() []*Route {
	out := make([]*Route, 0, len(a.routes))
	for _, r := range a.routes {
		out = append(out, r)
	}
	SortRoutes(out)
	return out
}

// Clear removes every advertised route, retaining the allocated map.
func (a *AdjRIBOut) Clear() { clear(a.routes) }

// Clone deep-copies the Adj-RIB-Out.
func (a *AdjRIBOut) Clone() *AdjRIBOut {
	out := NewAdjRIBOut()
	for p, r := range a.routes {
		out.routes[p] = r.Clone()
	}
	return out
}

// prefixEntry holds all candidate routes for one prefix plus the current
// selection.
type prefixEntry struct {
	// candidates is keyed by the source: peer name, or "" for the locally
	// originated route.
	candidates map[string]*Route
	best       *Route
}

// LocRIB is the local RIB: for every prefix, the candidate routes that passed
// import policy and the best route chosen by the decision process.
type LocRIB struct {
	entries  map[bgp.Prefix]*prefixEntry
	decision DecisionPolicy
	// age is the arrival-stamp counter behind Route.Age: it advances once per
	// newly installed candidate, in event order, so "older" is a deterministic,
	// restorable property of the candidate set (see DecisionOldestFirst).
	age uint64
}

// NewLocRIB returns an empty Loc-RIB using the default (BIRD-order) decision
// policy.
func NewLocRIB() *LocRIB {
	return NewLocRIBFor(DecisionRouterIDFirst)
}

// NewLocRIBFor returns an empty Loc-RIB whose decision process breaks final
// ties according to the given policy. Heterogeneous router backends differ
// exactly here.
func NewLocRIBFor(pol DecisionPolicy) *LocRIB {
	return &LocRIB{entries: make(map[bgp.Prefix]*prefixEntry), decision: pol}
}

// Decision returns the Loc-RIB's decision policy.
func (l *LocRIB) Decision() DecisionPolicy { return l.decision }

// BestChange describes the effect of an update or withdrawal on the best
// route of a prefix.
type BestChange struct {
	Prefix  bgp.Prefix
	Old     *Route
	New     *Route
	Changed bool
}

// Update installs (or replaces) a candidate route and re-runs the decision
// process for its prefix. It returns the resulting best-route change.
//
// Unstamped routes (Age zero) receive an arrival stamp: a fresh counter value
// for a new (prefix, peer) candidate, or the replaced candidate's stamp when
// the peer refreshes an existing one — a refresh does not make a path young
// again, matching the stability intent of the route-age tie-break.
func (l *LocRIB) Update(m *concolic.Machine, r *Route) BestChange {
	e := l.entries[r.Prefix]
	if e == nil {
		e = &prefixEntry{candidates: make(map[string]*Route)}
		l.entries[r.Prefix] = e
	}
	if r.Age == 0 {
		if prev := e.candidates[r.Peer]; prev != nil && prev.Age != 0 {
			r.Age = prev.Age
		} else {
			l.age++
			r.Age = l.age
		}
	} else if r.Age > l.age {
		l.age = r.Age
	}
	e.candidates[r.Peer] = r
	return l.reselect(m, r.Prefix, e)
}

// Withdraw removes the candidate learned from the given source (peer name or
// "" for local) and re-runs the decision process.
func (l *LocRIB) Withdraw(m *concolic.Machine, p bgp.Prefix, source string) BestChange {
	e := l.entries[p]
	if e == nil {
		return BestChange{Prefix: p}
	}
	if _, ok := e.candidates[source]; !ok {
		return BestChange{Prefix: p, Old: e.best, New: e.best}
	}
	delete(e.candidates, source)
	change := l.reselect(m, p, e)
	if len(e.candidates) == 0 {
		delete(l.entries, p)
	}
	return change
}

func (l *LocRIB) reselect(m *concolic.Machine, p bgp.Prefix, e *prefixEntry) BestChange {
	old := e.best
	// Deterministic candidate order keeps exploration reproducible.
	sources := make([]string, 0, len(e.candidates))
	for s := range e.candidates {
		sources = append(sources, s)
	}
	sort.Strings(sources)
	candidates := make([]*Route, 0, len(sources))
	for _, s := range sources {
		candidates = append(candidates, e.candidates[s])
	}
	e.best = SelectBestWith(m, candidates, l.decision)
	changed := !sameRoute(old, e.best)
	return BestChange{Prefix: p, Old: old, New: e.best, Changed: changed}
}

func sameRoute(a, b *Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Prefix != b.Prefix || a.Peer != b.Peer || a.Local != b.Local {
		return false
	}
	// Attribute changes on the same source are still a change.
	if a.Attrs.EffectiveLocalPref() != b.Attrs.EffectiveLocalPref() ||
		a.Attrs.EffectiveMED() != b.Attrs.EffectiveMED() ||
		a.Attrs.PathLen() != b.Attrs.PathLen() ||
		a.Attrs.NextHop != b.Attrs.NextHop {
		return false
	}
	return true
}

// InsertCandidate stores a candidate route without re-running the decision
// process. It is the bulk-load path used when restoring a RIB from a
// checkpoint: insert every candidate, then call ReselectAll once. Using it
// without a subsequent ReselectAll leaves the best-route selections stale.
// Restored arrival stamps advance the counter, so stamps handed out after a
// restore continue the checkpointed sequence instead of colliding with it.
func (l *LocRIB) InsertCandidate(r *Route) {
	e := l.entries[r.Prefix]
	if e == nil {
		e = &prefixEntry{candidates: make(map[string]*Route)}
		l.entries[r.Prefix] = e
	}
	if r.Age > l.age {
		l.age = r.Age
	}
	e.candidates[r.Peer] = r
}

// ReselectAll re-runs the decision process for every prefix. The selection is
// a deterministic function of the candidate set, so the result is identical
// to having run Update once per candidate, at a fraction of the cost.
func (l *LocRIB) ReselectAll() {
	for p, e := range l.entries {
		l.reselect(nil, p, e)
	}
}

// Best returns the selected route for the prefix, or nil.
func (l *LocRIB) Best(p bgp.Prefix) *Route {
	if e := l.entries[p]; e != nil {
		return e.best
	}
	return nil
}

// Candidates returns all candidate routes for the prefix in deterministic
// order.
func (l *LocRIB) Candidates(p bgp.Prefix) []*Route {
	e := l.entries[p]
	if e == nil {
		return nil
	}
	out := make([]*Route, 0, len(e.candidates))
	for _, r := range e.candidates {
		out = append(out, r)
	}
	SortRoutes(out)
	return out
}

// Prefixes returns all prefixes with at least one candidate, in canonical
// order.
func (l *LocRIB) Prefixes() []bgp.Prefix {
	out := make([]bgp.Prefix, 0, len(l.entries))
	for p := range l.entries {
		out = append(out, p)
	}
	bgp.SortPrefixes(out)
	return out
}

// BestRoutes returns the selected route for every prefix, in canonical order.
func (l *LocRIB) BestRoutes() []*Route {
	var out []*Route
	for _, p := range l.Prefixes() {
		if b := l.Best(p); b != nil {
			out = append(out, b)
		}
	}
	return out
}

// Clear removes every entry, retaining the allocated top-level map. The
// arrival-stamp counter rewinds with the content, so a cleared-and-refilled
// RIB is indistinguishable from a cold-built one.
func (l *LocRIB) Clear() {
	clear(l.entries)
	l.age = 0
}

// Len returns the number of prefixes in the Loc-RIB.
func (l *LocRIB) Len() int { return len(l.entries) }

// Clone deep-copies the Loc-RIB, including candidate sets, selections and the
// decision policy.
func (l *LocRIB) Clone() *LocRIB {
	out := NewLocRIBFor(l.decision)
	out.age = l.age
	for p, e := range l.entries {
		ne := &prefixEntry{candidates: make(map[string]*Route, len(e.candidates))}
		for s, r := range e.candidates {
			c := r.Clone()
			ne.candidates[s] = c
			if e.best != nil && e.best.Peer == s && e.best.Local == r.Local {
				ne.best = c
			}
		}
		out.entries[p] = ne
	}
	return out
}
