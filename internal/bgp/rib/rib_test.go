package rib

import (
	"testing"
	"testing/quick"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/concolic"
)

func route(prefix string, peer string, peerAS bgp.ASN, lp uint32, pathLen int, opts ...func(*Route)) *Route {
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, NextHop: 0x0a000001}
	attrs.SetLocalPref(lp)
	for i := 0; i < pathLen; i++ {
		attrs.ASPath = append(attrs.ASPath, bgp.ASN(64500+i))
	}
	r := &Route{
		Prefix: bgp.MustParsePrefix(prefix),
		Attrs:  attrs,
		Peer:   peer,
		PeerAS: peerAS,
		EBGP:   true,
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

func TestBetterLocalPref(t *testing.T) {
	a := route("10.0.0.0/8", "p1", 65001, 200, 3)
	b := route("10.0.0.0/8", "p2", 65002, 100, 1)
	if !Better(nil, a, b) {
		t.Errorf("higher LOCAL_PREF must win despite longer path")
	}
	if Better(nil, b, a) {
		t.Errorf("asymmetry violated")
	}
}

func TestBetterASPathLength(t *testing.T) {
	a := route("10.0.0.0/8", "p1", 65001, 100, 1)
	b := route("10.0.0.0/8", "p2", 65002, 100, 3)
	if !Better(nil, a, b) {
		t.Errorf("shorter AS path must win at equal LOCAL_PREF")
	}
}

func TestBetterOrigin(t *testing.T) {
	a := route("10.0.0.0/8", "p1", 65001, 100, 2)
	b := route("10.0.0.0/8", "p2", 65002, 100, 2)
	b.Attrs.Origin = bgp.OriginIncomplete
	if !Better(nil, a, b) {
		t.Errorf("lower origin must win")
	}
}

func TestBetterMEDOnlySameAS(t *testing.T) {
	a := route("10.0.0.0/8", "p1", 65001, 100, 2)
	a.Attrs.SetMED(10)
	b := route("10.0.0.0/8", "p2", 65001, 100, 2)
	b.Attrs.SetMED(5)
	if Better(nil, a, b) {
		t.Errorf("lower MED must win within the same neighbor AS")
	}
	// Different neighbor AS: MED skipped, falls through to router ID / name.
	c := route("10.0.0.0/8", "p0", 65009, 100, 2)
	c.Attrs.SetMED(500)
	if !Better(nil, c, a) {
		t.Errorf("MED must be ignored across ASes (tie falls to peer name)")
	}
}

func TestBetterEBGPOverIBGP(t *testing.T) {
	a := route("10.0.0.0/8", "p1", 65001, 100, 2)
	b := route("10.0.0.0/8", "p2", 65002, 100, 2)
	b.EBGP = false
	if !Better(nil, a, b) {
		t.Errorf("eBGP must beat iBGP")
	}
}

func TestBetterLocalWins(t *testing.T) {
	local := route("10.0.0.0/8", "", 0, 100, 0)
	local.Local = true
	local.EBGP = false
	learned := route("10.0.0.0/8", "p1", 65001, 100, 0)
	if !Better(nil, local, learned) {
		t.Errorf("locally originated route must beat a learned route at equal pref")
	}
}

func TestBetterRouterIDTieBreak(t *testing.T) {
	a := route("10.0.0.0/8", "p1", 65001, 100, 2)
	a.PeerRouterID = 5
	b := route("10.0.0.0/8", "p2", 65002, 100, 2)
	b.PeerRouterID = 9
	if !Better(nil, a, b) {
		t.Errorf("lower router ID must win the tie break")
	}
}

func TestBetterNilHandling(t *testing.T) {
	r := route("10.0.0.0/8", "p1", 65001, 100, 1)
	if !Better(nil, r, nil) {
		t.Errorf("any route beats nil")
	}
	if Better(nil, nil, r) {
		t.Errorf("nil never beats a route")
	}
}

func TestSelectBestDeterministic(t *testing.T) {
	rs := []*Route{
		route("10.0.0.0/8", "p3", 65003, 100, 2),
		route("10.0.0.0/8", "p1", 65001, 300, 4),
		route("10.0.0.0/8", "p2", 65002, 300, 2),
	}
	best := SelectBest(nil, rs)
	if best.Peer != "p2" {
		t.Errorf("best = %s, want p2 (highest pref, then shortest path)", best.Peer)
	}
	if SelectBest(nil, nil) != nil {
		t.Errorf("SelectBest of empty set must be nil")
	}
}

func TestBetterSymbolicRecordsBranches(t *testing.T) {
	in := concolic.NewInput("update", nil)
	m := concolic.NewMachine(in, concolic.MachineOptions{})
	sb := m.Bytes("lp", []byte{0, 0, 0, 150})
	a := route("10.0.0.0/8", "p1", 65001, 150, 2)
	a.Sym = &SymAttrs{LocalPref: sb.U32(0), HasLocalPref: true}
	b := route("10.0.0.0/8", "p2", 65002, 100, 2)
	if !Better(m, a, b) {
		t.Fatalf("route with pref 150 should beat pref 100")
	}
	if len(m.Path()) == 0 {
		t.Errorf("symbolic comparison should record a branch")
	}
	// The recorded constraint must hold under the machine's assignment.
	for _, br := range m.Path() {
		if !br.Cond.EvalBool(m.Assignment()) {
			t.Errorf("recorded branch does not hold concretely")
		}
	}
}

func TestAdjRIBInBasics(t *testing.T) {
	a := NewAdjRIBIn()
	r1 := route("10.0.0.0/8", "p1", 65001, 100, 1)
	r2 := route("20.0.0.0/8", "p1", 65001, 100, 1)
	a.Set(r1)
	a.Set(r2)
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	if a.Get(r1.Prefix) != r1 {
		t.Errorf("Get returned wrong route")
	}
	if !a.Remove(r1.Prefix) || a.Remove(r1.Prefix) {
		t.Errorf("Remove semantics broken")
	}
	routes := a.Routes()
	if len(routes) != 1 || routes[0].Prefix != r2.Prefix {
		t.Errorf("Routes = %v", routes)
	}
	clone := a.Clone()
	clone.Get(r2.Prefix).Attrs.SetLocalPref(999)
	if a.Get(r2.Prefix).Attrs.EffectiveLocalPref() == 999 {
		t.Errorf("Clone is not deep")
	}
}

func TestAdjRIBOutBasics(t *testing.T) {
	a := NewAdjRIBOut()
	r := route("10.0.0.0/8", "p1", 65001, 100, 1)
	a.Set(r)
	if a.Len() != 1 || a.Get(r.Prefix) == nil {
		t.Errorf("Set/Get broken")
	}
	if len(a.Routes()) != 1 {
		t.Errorf("Routes broken")
	}
	if !a.Remove(r.Prefix) {
		t.Errorf("Remove broken")
	}
	if a.Clone().Len() != 0 {
		t.Errorf("Clone broken")
	}
}

func TestLocRIBUpdateWithdraw(t *testing.T) {
	l := NewLocRIB()
	p := bgp.MustParsePrefix("10.0.0.0/8")

	c1 := l.Update(nil, route("10.0.0.0/8", "p1", 65001, 100, 2))
	if !c1.Changed || c1.New == nil || c1.New.Peer != "p1" {
		t.Fatalf("first update change = %+v", c1)
	}
	// Better route from another peer takes over.
	c2 := l.Update(nil, route("10.0.0.0/8", "p2", 65002, 200, 2))
	if !c2.Changed || c2.New.Peer != "p2" || c2.Old.Peer != "p1" {
		t.Fatalf("second update change = %+v", c2)
	}
	// Worse route does not change the best.
	c3 := l.Update(nil, route("10.0.0.0/8", "p3", 65003, 50, 2))
	if c3.Changed {
		t.Fatalf("worse route must not change the selection: %+v", c3)
	}
	if len(l.Candidates(p)) != 3 {
		t.Errorf("candidates = %d, want 3", len(l.Candidates(p)))
	}
	// Withdraw the best: selection falls back to p1.
	c4 := l.Withdraw(nil, p, "p2")
	if !c4.Changed || c4.New.Peer != "p1" {
		t.Fatalf("withdraw change = %+v", c4)
	}
	// Withdraw remaining candidates: prefix disappears.
	l.Withdraw(nil, p, "p1")
	c5 := l.Withdraw(nil, p, "p3")
	if c5.New != nil {
		t.Fatalf("final withdraw should leave no best: %+v", c5)
	}
	if l.Len() != 0 {
		t.Errorf("Loc-RIB should be empty, len=%d", l.Len())
	}
	// Withdrawing an unknown source is a no-op.
	c6 := l.Withdraw(nil, p, "p9")
	if c6.Changed {
		t.Errorf("withdraw of unknown source must not report change")
	}
}

func TestLocRIBAttributeChangeIsChange(t *testing.T) {
	l := NewLocRIB()
	l.Update(nil, route("10.0.0.0/8", "p1", 65001, 100, 2))
	c := l.Update(nil, route("10.0.0.0/8", "p1", 65001, 300, 2))
	if !c.Changed {
		t.Errorf("attribute change on the selected route must be reported")
	}
}

func TestLocRIBPrefixesAndBestRoutes(t *testing.T) {
	l := NewLocRIB()
	l.Update(nil, route("20.0.0.0/8", "p1", 65001, 100, 1))
	l.Update(nil, route("10.0.0.0/8", "p1", 65001, 100, 1))
	ps := l.Prefixes()
	if len(ps) != 2 || !ps[0].Less(ps[1]) {
		t.Errorf("Prefixes not in canonical order: %v", ps)
	}
	if len(l.BestRoutes()) != 2 {
		t.Errorf("BestRoutes length wrong")
	}
}

func TestLocRIBClone(t *testing.T) {
	l := NewLocRIB()
	l.Update(nil, route("10.0.0.0/8", "p1", 65001, 100, 2))
	l.Update(nil, route("10.0.0.0/8", "p2", 65002, 200, 2))
	clone := l.Clone()
	p := bgp.MustParsePrefix("10.0.0.0/8")
	// Mutate the clone: original selection must be unaffected.
	clone.Withdraw(nil, p, "p2")
	if l.Best(p).Peer != "p2" {
		t.Errorf("clone mutation leaked into the original Loc-RIB")
	}
	if clone.Best(p).Peer != "p1" {
		t.Errorf("clone did not reselect after withdraw")
	}
}

func TestRouteClone(t *testing.T) {
	r := route("10.0.0.0/8", "p1", 65001, 100, 2)
	c := r.Clone()
	c.Attrs.SetLocalPref(999)
	if r.Attrs.EffectiveLocalPref() == 999 {
		t.Errorf("Route.Clone is not deep")
	}
	var nilRoute *Route
	if nilRoute.Clone() != nil {
		t.Errorf("nil route clone should be nil")
	}
	if r.String() == "" {
		t.Errorf("empty route string")
	}
}

func TestSymFromUpdate(t *testing.T) {
	if SymFromUpdate(nil) != nil {
		t.Errorf("nil update view should map to nil")
	}
	su := &bgp.SymUpdate{HasLocalPref: true, LocalPref: concolic.Const(55, 32)}
	sa := SymFromUpdate(su)
	if !sa.HasLocalPref || sa.LocalPref.Uint() != 55 {
		t.Errorf("SymFromUpdate = %+v", sa)
	}
}

// Property: Better is a strict weak ordering's asymmetry — a route cannot be
// both better and worse than another.
func TestQuickBetterAsymmetric(t *testing.T) {
	f := func(lp1, lp2 uint16, len1, len2 uint8, id1, id2 uint8) bool {
		a := route("10.0.0.0/8", "pa", 65001, uint32(lp1), int(len1%5)+1)
		a.PeerRouterID = bgp.RouterID(id1)
		b := route("10.0.0.0/8", "pb", 65002, uint32(lp2), int(len2%5)+1)
		b.PeerRouterID = bgp.RouterID(id2)
		ab := Better(nil, a, b)
		ba := Better(nil, b, a)
		return ab != ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SelectBest returns a route that is not beaten by any candidate.
func TestQuickSelectBestIsMaximal(t *testing.T) {
	f := func(prefs [5]uint16, lens [5]uint8) bool {
		var rs []*Route
		for i := 0; i < 5; i++ {
			r := route("10.0.0.0/8", string(rune('a'+i)), bgp.ASN(65000+i), uint32(prefs[i]), int(lens[i]%6)+1)
			rs = append(rs, r)
		}
		best := SelectBest(nil, rs)
		for _, r := range rs {
			if r != best && Better(nil, r, best) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
