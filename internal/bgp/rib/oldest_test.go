package rib

import (
	"testing"

	"github.com/dice-project/dice/internal/bgp"
)

// tiedRoute builds a candidate that ties through decision steps 1–6, so the
// outcome is decided entirely by the policy tail.
func tiedRoute(peer string, id bgp.RouterID, age uint64) *Route {
	r := route("10.0.0.0/8", peer, 65000+bgp.ASN(id), 100, 2)
	r.PeerRouterID = id
	r.Age = age
	return r
}

func TestOldestFirstPrefersLowerStamp(t *testing.T) {
	older := tiedRoute("R9", 9, 1)
	younger := tiedRoute("R2", 2, 2)
	if !BetterWith(nil, older, younger, DecisionOldestFirst) {
		t.Errorf("the older stamp must win under oldest-first")
	}
	if BetterWith(nil, younger, older, DecisionOldestFirst) {
		t.Errorf("asymmetry violated")
	}
	// The same pair resolves the other way under both other policies: R2 has
	// the lower router ID and the lower peer name.
	if BetterWith(nil, older, younger, DecisionRouterIDFirst) {
		t.Errorf("router-id-first must prefer the lower ID")
	}
	if BetterWith(nil, older, younger, DecisionPeerAddressFirst) {
		t.Errorf("peer-address-first must prefer the lower peer name")
	}
}

func TestOldestFirstZeroAgeFallsBackToRouterID(t *testing.T) {
	a := tiedRoute("R9", 9, 0)
	b := tiedRoute("R2", 2, 0)
	if BetterWith(nil, a, b, DecisionOldestFirst) || !BetterWith(nil, b, a, DecisionOldestFirst) {
		t.Errorf("unstamped candidates must fall back to the router-ID order")
	}
	// One stamped, one not: the age step is skipped, not half-applied.
	a.Age = 1
	if BetterWith(nil, a, b, DecisionOldestFirst) {
		t.Errorf("a single stamp must not beat the router-ID fallback")
	}
}

// TestThreeWayTieBreakSplits pins the fixtures the differential oracle relies
// on: candidate sets where the three legal policies split 2-vs-1 in either
// direction, and one where all three pick a different path.
func TestThreeWayTieBreakSplits(t *testing.T) {
	sel := func(pol DecisionPolicy, rs ...*Route) string {
		return SelectBestWith(nil, rs, pol).Peer
	}

	// Oldest-first outvoted 2-vs-1: the oldest path has both the highest
	// router ID and the highest peer name.
	x, y := tiedRoute("R9", 9, 1), tiedRoute("R2", 2, 2)
	if got := sel(DecisionRouterIDFirst, x, y); got != "R2" {
		t.Errorf("router-id-first picked %s, want R2", got)
	}
	if got := sel(DecisionPeerAddressFirst, x, y); got != "R2" {
		t.Errorf("peer-address-first picked %s, want R2", got)
	}
	if got := sel(DecisionOldestFirst, x, y); got != "R9" {
		t.Errorf("oldest-first picked %s, want R9", got)
	}

	// Router-id-first outvoted: the lowest ID belongs to the youngest path
	// with the highest peer name.
	x, y = tiedRoute("Ra", 9, 1), tiedRoute("Rb", 2, 2)
	if got := sel(DecisionRouterIDFirst, x, y); got != "Rb" {
		t.Errorf("router-id-first picked %s, want Rb", got)
	}
	if got := sel(DecisionPeerAddressFirst, x, y); got != "Ra" {
		t.Errorf("peer-address-first picked %s, want Ra", got)
	}
	if got := sel(DecisionOldestFirst, x, y); got != "Ra" {
		t.Errorf("oldest-first picked %s, want Ra", got)
	}

	// All three distinct (pairwise-legal): a has the lowest ID, b the lowest
	// peer name, c the oldest stamp.
	a := tiedRoute("Rc", 1, 3)
	b := tiedRoute("Ra", 2, 2)
	c := tiedRoute("Rb", 3, 1)
	if got := sel(DecisionRouterIDFirst, a, b, c); got != "Rc" {
		t.Errorf("router-id-first picked %s, want Rc", got)
	}
	if got := sel(DecisionPeerAddressFirst, a, b, c); got != "Ra" {
		t.Errorf("peer-address-first picked %s, want Ra", got)
	}
	if got := sel(DecisionOldestFirst, a, b, c); got != "Rb" {
		t.Errorf("oldest-first picked %s, want Rb", got)
	}
}

func TestLocRIBArrivalStamps(t *testing.T) {
	l := NewLocRIBFor(DecisionOldestFirst)
	p := bgp.MustParsePrefix("10.0.0.0/8")

	first := tiedRoute("R9", 9, 0)
	l.Update(nil, first)
	if first.Age != 1 {
		t.Fatalf("first candidate stamped %d, want 1", first.Age)
	}
	second := tiedRoute("R2", 2, 0)
	l.Update(nil, second)
	if second.Age != 2 {
		t.Fatalf("second candidate stamped %d, want 2", second.Age)
	}
	// Oldest-first keeps the first-installed candidate despite R2's lower ID
	// and name.
	if best := l.Best(p); best == nil || best.Peer != "R9" {
		t.Fatalf("best = %v, want the older R9 path", best)
	}

	// A refresh of the same (prefix, peer) inherits the original stamp.
	refresh := tiedRoute("R9", 9, 0)
	l.Update(nil, refresh)
	if refresh.Age != 1 {
		t.Fatalf("refresh stamped %d, want the inherited 1", refresh.Age)
	}

	// Withdraw + re-announce is a new path: it gets a fresh (younger) stamp
	// and loses the tie to the surviving older candidate.
	l.Withdraw(nil, p, "R9")
	if best := l.Best(p); best == nil || best.Peer != "R2" {
		t.Fatalf("best after withdraw = %v, want R2", best)
	}
	again := tiedRoute("R9", 9, 0)
	l.Update(nil, again)
	if again.Age != 3 {
		t.Fatalf("re-announced candidate stamped %d, want 3", again.Age)
	}
	if best := l.Best(p); best == nil || best.Peer != "R2" {
		t.Fatalf("best after re-announce = %v, want the now-older R2", best)
	}

	// Restore path: InsertCandidate preserves stamps and advances the
	// counter, Clear rewinds it with the content.
	l2 := NewLocRIBFor(DecisionOldestFirst)
	for _, r := range l.Candidates(p) {
		l2.InsertCandidate(r.Clone())
	}
	l2.ReselectAll()
	if best := l2.Best(p); best == nil || best.Peer != "R2" {
		t.Fatalf("restored best = %v, want R2", best)
	}
	next := tiedRoute("R7", 7, 0)
	l2.Update(nil, next)
	if next.Age != 4 {
		t.Fatalf("post-restore stamp %d, want 4 (counter must resume past restored stamps)", next.Age)
	}
	l2.Clear()
	reseed := tiedRoute("R1", 1, 0)
	l2.Update(nil, reseed)
	if reseed.Age != 1 {
		t.Fatalf("post-Clear stamp %d, want 1 (counter rewinds with the content)", reseed.Age)
	}
}

func TestRouteAgeSurvivesCloneAndRecord(t *testing.T) {
	r := tiedRoute("R9", 9, 42)
	if got := r.Clone().Age; got != 42 {
		t.Fatalf("Clone dropped the arrival stamp: %d", got)
	}
}
