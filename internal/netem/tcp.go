package netem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// TCPRunner runs the same Node implementations used by the virtual-time
// emulator over real TCP connections on the loopback interface. It exists for
// integration realism (the paper's prototype drives a real BIRD daemon over
// real sockets): the DiCE orchestrator itself always explores over the
// deterministic virtual-time emulator.
//
// Each node gets one listener; every adjacency is realized as a single TCP
// connection established by the lexicographically smaller node ID. Messages
// are framed as: 2-byte sender-name length, sender name, 4-byte payload
// length, payload. All callbacks for one node are serialized on a dedicated
// goroutine, matching the single-threaded semantics of the emulator.
type TCPRunner struct {
	mu        sync.Mutex
	nodes     map[NodeID]Node
	adjacency map[NodeID]map[NodeID]bool
	listeners map[NodeID]net.Listener
	conns     map[NodeID]map[NodeID]net.Conn
	inboxes   map[NodeID]chan tcpEvent
	timers    map[NodeID]map[string]*time.Timer
	started   bool
	start     time.Time
	wg        sync.WaitGroup
	closed    chan struct{}
}

type tcpEvent struct {
	kind    int // evDeliver, evTimer or evCall
	from    NodeID
	payload []byte
	timer   string
	call    func()
	done    chan struct{}
}

// NewTCPRunner returns an empty runner.
func NewTCPRunner() *TCPRunner {
	return &TCPRunner{
		nodes:     make(map[NodeID]Node),
		adjacency: make(map[NodeID]map[NodeID]bool),
		listeners: make(map[NodeID]net.Listener),
		conns:     make(map[NodeID]map[NodeID]net.Conn),
		inboxes:   make(map[NodeID]chan tcpEvent),
		timers:    make(map[NodeID]map[string]*time.Timer),
		closed:    make(chan struct{}),
	}
}

// AddNode registers a node. It must be called before Start.
func (r *TCPRunner) AddNode(node Node) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := node.ID()
	if _, dup := r.nodes[id]; dup {
		panic(fmt.Sprintf("netem: duplicate node %q", id))
	}
	r.nodes[id] = node
	r.adjacency[id] = make(map[NodeID]bool)
	r.conns[id] = make(map[NodeID]net.Conn)
	r.inboxes[id] = make(chan tcpEvent, 1024)
	r.timers[id] = make(map[string]*time.Timer)
}

// Connect records a bidirectional adjacency. It must be called before Start.
func (r *TCPRunner) Connect(a, b NodeID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[a]; !ok {
		panic(fmt.Sprintf("netem: unknown node %q", a))
	}
	if _, ok := r.nodes[b]; !ok {
		panic(fmt.Sprintf("netem: unknown node %q", b))
	}
	r.adjacency[a][b] = true
	r.adjacency[b][a] = true
}

// Start opens listeners, dials adjacencies, starts per-node worker
// goroutines, and invokes Start on every node.
func (r *TCPRunner) Start() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started {
		return errors.New("netem: TCPRunner already started")
	}
	r.started = true
	//dice:allow detsource TCPRunner is the real-network integration backend; wall-clock start anchors its virtual time
	r.start = time.Now()

	// Listeners first so that dialers have an address to reach.
	for id := range r.nodes {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("netem: listen for %s: %w", id, err)
		}
		r.listeners[id] = ln
	}

	// Accept loops: the handshake line carries the dialer's node ID.
	for id, ln := range r.listeners {
		id, ln := id, ln
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				peer, err := readHandshake(conn)
				if err != nil {
					conn.Close()
					continue
				}
				r.mu.Lock()
				r.conns[id][peer] = conn
				r.mu.Unlock()
				r.wg.Add(1)
				go func() {
					defer r.wg.Done()
					r.readLoop(id, peer, conn)
				}()
			}
		}()
	}

	// Dial each adjacency once, from the smaller ID.
	ids := make([]NodeID, 0, len(r.nodes))
	for id := range r.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, a := range ids {
		for b := range r.adjacency[a] {
			if a >= b {
				continue
			}
			addr := r.listeners[b].Addr().String()
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				return fmt.Errorf("netem: dial %s->%s: %w", a, b, err)
			}
			if err := writeHandshake(conn, a); err != nil {
				return fmt.Errorf("netem: handshake %s->%s: %w", a, b, err)
			}
			r.conns[a][b] = conn
			a, b, conn := a, b, conn
			r.wg.Add(1)
			go func() {
				defer r.wg.Done()
				r.readLoop(a, b, conn)
			}()
		}
	}

	// Per-node workers serialize callbacks.
	for id := range r.nodes {
		id := id
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.worker(id)
		}()
	}

	// Give accept loops a moment to register inbound connections before
	// Start handlers begin sending.
	//dice:allow detsource real-TCP startup polls actual socket readiness; nothing downstream replays this wait
	deadline := time.Now().Add(2 * time.Second)
	for {
		ready := true
		for _, a := range ids {
			for b := range r.adjacency[a] {
				if r.conns[a][b] == nil {
					ready = false
				}
			}
		}
		//dice:allow detsource real-TCP startup polls actual socket readiness; nothing downstream replays this wait
		if ready || time.Now().After(deadline) {
			break
		}
		r.mu.Unlock()
		//dice:allow detsource real-TCP startup polls actual socket readiness; nothing downstream replays this wait
		time.Sleep(5 * time.Millisecond)
		r.mu.Lock()
	}

	// Release the lock before running node Start handlers: they call back
	// into Send/SetTimer, which acquire it.
	r.mu.Unlock()
	for _, id := range ids {
		node := r.nodes[id]
		env := &tcpEnv{runner: r, id: id}
		node.Start(env)
	}
	r.mu.Lock()
	return nil
}

// Stop closes listeners and connections and waits for workers to exit.
func (r *TCPRunner) Stop() {
	r.mu.Lock()
	if !r.started {
		r.mu.Unlock()
		return
	}
	select {
	case <-r.closed:
	default:
		close(r.closed)
	}
	for _, ln := range r.listeners {
		ln.Close()
	}
	for _, peers := range r.conns {
		for _, c := range peers {
			c.Close()
		}
	}
	for _, ts := range r.timers {
		for _, t := range ts {
			t.Stop()
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
}

func (r *TCPRunner) worker(id NodeID) {
	node := r.nodes[id]
	env := &tcpEnv{runner: r, id: id}
	for {
		select {
		case ev := <-r.inboxes[id]:
			switch ev.kind {
			case evDeliver:
				node.HandleMessage(env, ev.from, ev.payload)
			case evTimer:
				node.HandleTimer(env, ev.timer)
			case evCall:
				ev.call()
				close(ev.done)
			}
		case <-r.closed:
			return
		}
	}
}

// Inspect runs fn on the node's worker goroutine, serialized with its
// message and timer callbacks, and waits for it to return. Nodes are not
// internally synchronized (they assume the emulator's single-threaded
// semantics), so any read of node state while the runner is live must go
// through Inspect. It reports false if the runner is stopped before fn runs.
func (r *TCPRunner) Inspect(id NodeID, fn func()) bool {
	r.mu.Lock()
	inbox, ok := r.inboxes[id]
	r.mu.Unlock()
	if !ok {
		return false
	}
	done := make(chan struct{})
	select {
	case inbox <- tcpEvent{kind: evCall, call: fn, done: done}:
	case <-r.closed:
		return false
	}
	select {
	case <-done:
		return true
	case <-r.closed:
		// Stop raced completion: if fn did run, report that truthfully.
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
}

func (r *TCPRunner) readLoop(self, peer NodeID, conn net.Conn) {
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		select {
		case r.inboxes[self] <- tcpEvent{kind: evDeliver, from: peer, payload: payload}:
		case <-r.closed:
			return
		}
	}
}

func writeHandshake(conn net.Conn, id NodeID) error {
	var hdr [2]byte
	binary.BigEndian.PutUint16(hdr[:], uint16(len(id)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write([]byte(id))
	return err
}

func readHandshake(conn net.Conn) (NodeID, error) {
	var hdr [2]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return "", err
	}
	name := make([]byte, binary.BigEndian.Uint16(hdr[:]))
	if _, err := io.ReadFull(conn, name); err != nil {
		return "", err
	}
	return NodeID(name), nil
}

func writeFrame(conn net.Conn, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err := conn.Write(payload)
	return err
}

func readFrame(conn net.Conn) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > 1<<20 {
		return nil, fmt.Errorf("netem: oversized frame %d", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// tcpEnv implements Env over the TCP runner.
type tcpEnv struct {
	runner *TCPRunner
	id     NodeID
	rng    *rand.Rand
}

//dice:allow detsource the TCP env's virtual time IS elapsed wall time; that is the point of the integration backend
func (e *tcpEnv) Now() time.Duration { return time.Since(e.runner.start) }
func (e *tcpEnv) Self() NodeID       { return e.id }

func (e *tcpEnv) Neighbors() []NodeID {
	e.runner.mu.Lock()
	defer e.runner.mu.Unlock()
	out := make([]NodeID, 0, len(e.runner.adjacency[e.id]))
	for peer := range e.runner.adjacency[e.id] {
		out = append(out, peer)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (e *tcpEnv) Send(to NodeID, payload []byte) {
	e.runner.mu.Lock()
	conn := e.runner.conns[e.id][to]
	adjacent := e.runner.adjacency[e.id][to]
	e.runner.mu.Unlock()
	if !adjacent {
		panic(fmt.Sprintf("netem: %s attempted to send to non-neighbor %s", e.id, to))
	}
	if conn == nil {
		return // connection not (yet) established; BGP retries via timers
	}
	_ = writeFrame(conn, payload)
}

func (e *tcpEnv) SetTimer(name string, d time.Duration) {
	e.runner.mu.Lock()
	defer e.runner.mu.Unlock()
	if old := e.runner.timers[e.id][name]; old != nil {
		old.Stop()
	}
	id := e.id
	//dice:allow detsource TCP-backend timers fire on the real clock by design; the simulated backend owns determinism
	e.runner.timers[e.id][name] = time.AfterFunc(d, func() {
		select {
		case e.runner.inboxes[id] <- tcpEvent{kind: evTimer, timer: name}:
		case <-e.runner.closed:
		}
	})
}

func (e *tcpEnv) CancelTimer(name string) {
	e.runner.mu.Lock()
	defer e.runner.mu.Unlock()
	if t := e.runner.timers[e.id][name]; t != nil {
		t.Stop()
		delete(e.runner.timers[e.id], name)
	}
}

func (e *tcpEnv) Rand() *rand.Rand {
	if e.rng == nil {
		e.rng = rand.New(rand.NewSource(int64(fnvHash(string(e.id)))))
	}
	return e.rng
}

func (e *tcpEnv) Logf(format string, args ...interface{}) {}
