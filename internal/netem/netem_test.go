package netem

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoNode counts messages and echoes pings back as pongs.
type echoNode struct {
	id       NodeID
	mu       sync.Mutex
	received []string
	timers   []string
	startup  func(env Env)
}

func (n *echoNode) ID() NodeID { return n.id }

func (n *echoNode) Start(env Env) {
	if n.startup != nil {
		n.startup(env)
	}
}

func (n *echoNode) HandleMessage(env Env, from NodeID, payload []byte) {
	n.mu.Lock()
	n.received = append(n.received, string(payload))
	n.mu.Unlock()
	if string(payload) == "ping" {
		env.Send(from, []byte("pong"))
	}
}

func (n *echoNode) HandleTimer(env Env, name string) {
	n.mu.Lock()
	n.timers = append(n.timers, name)
	n.mu.Unlock()
}

func (n *echoNode) msgs() []string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]string(nil), n.received...)
}

func TestNetworkPingPong(t *testing.T) {
	net := New(Options{Seed: 1})
	a := &echoNode{id: "a", startup: func(env Env) { env.Send("b", []byte("ping")) }}
	b := &echoNode{id: "b"}
	net.AddNode(a)
	net.AddNode(b)
	net.Connect("a", "b", LinkConfig{Delay: 5 * time.Millisecond})

	net.RunQuiescent(0)

	if got := b.msgs(); len(got) != 1 || got[0] != "ping" {
		t.Errorf("b received %v", got)
	}
	if got := a.msgs(); len(got) != 1 || got[0] != "pong" {
		t.Errorf("a received %v", got)
	}
	if net.Now() != 10*time.Millisecond {
		t.Errorf("virtual time = %v, want 10ms (two 5ms hops)", net.Now())
	}
	st := net.Stats()
	if st.MessagesSent != 2 || st.MessagesDelivered != 2 || st.MessagesDropped != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNetworkDeterminism(t *testing.T) {
	run := func() Stats {
		net := New(Options{Seed: 42})
		nodes := make([]*echoNode, 5)
		for i := range nodes {
			id := NodeID(fmt.Sprintf("n%d", i))
			nodes[i] = &echoNode{id: id}
			if i > 0 {
				final := i
				nodes[i].startup = func(env Env) {
					env.Send(NodeID(fmt.Sprintf("n%d", final-1)), []byte("ping"))
				}
			}
			net.AddNode(nodes[i])
		}
		for i := 1; i < len(nodes); i++ {
			net.Connect(NodeID(fmt.Sprintf("n%d", i-1)), NodeID(fmt.Sprintf("n%d", i)),
				LinkConfig{Delay: time.Millisecond, Jitter: 3 * time.Millisecond, Loss: 0.1})
		}
		net.RunQuiescent(0)
		return net.Stats()
	}
	if run() != run() {
		t.Errorf("same seed must give identical executions")
	}
}

func TestNetworkLossDropsMessages(t *testing.T) {
	net := New(Options{Seed: 7})
	recv := &echoNode{id: "b"}
	send := &echoNode{id: "a", startup: func(env Env) {
		for i := 0; i < 200; i++ {
			env.Send("b", []byte("x"))
		}
	}}
	net.AddNode(send)
	net.AddNode(recv)
	net.Connect("a", "b", LinkConfig{Delay: time.Millisecond, Loss: 0.5})
	net.RunQuiescent(0)
	st := net.Stats()
	if st.MessagesDropped == 0 {
		t.Errorf("expected drops with 50%% loss, stats=%+v", st)
	}
	if st.MessagesDropped+st.MessagesDelivered != 200 {
		t.Errorf("drops+deliveries != sent: %+v", st)
	}
	if len(recv.msgs()) != st.MessagesDelivered {
		t.Errorf("delivered count mismatch")
	}
}

func TestTimersFireAndCancel(t *testing.T) {
	net := New(Options{Seed: 1})
	n := &echoNode{id: "a", startup: func(env Env) {
		env.SetTimer("keepalive", 10*time.Millisecond)
		env.SetTimer("hold", 30*time.Millisecond)
		env.SetTimer("cancelme", 20*time.Millisecond)
		env.CancelTimer("cancelme")
	}}
	other := &echoNode{id: "b"}
	net.AddNode(n)
	net.AddNode(other)
	net.Connect("a", "b", DefaultLink())
	net.RunQuiescent(0)
	n.mu.Lock()
	timers := append([]string(nil), n.timers...)
	n.mu.Unlock()
	if len(timers) != 2 || timers[0] != "keepalive" || timers[1] != "hold" {
		t.Errorf("timers fired = %v, want [keepalive hold]", timers)
	}
	if net.Stats().TimersCancelled != 1 {
		t.Errorf("cancelled = %d", net.Stats().TimersCancelled)
	}
}

func TestTimerRearmReplacesPending(t *testing.T) {
	net := New(Options{Seed: 1})
	fired := 0
	n := &timerNode{id: "a", onTimer: func(env Env, name string) { fired++ }}
	net.AddNode(n)
	net.AddNode(&echoNode{id: "b"})
	net.Connect("a", "b", DefaultLink())
	n.onStart = func(env Env) {
		env.SetTimer("t", 10*time.Millisecond)
		env.SetTimer("t", 50*time.Millisecond) // re-arm: only the second fires
	}
	net.RunQuiescent(0)
	if fired != 1 {
		t.Errorf("timer fired %d times, want 1", fired)
	}
	if net.Now() != 50*time.Millisecond {
		t.Errorf("fired at %v, want 50ms", net.Now())
	}
}

type timerNode struct {
	id      NodeID
	onStart func(env Env)
	onTimer func(env Env, name string)
}

func (n *timerNode) ID() NodeID { return n.id }
func (n *timerNode) Start(env Env) {
	if n.onStart != nil {
		n.onStart(env)
	}
}
func (n *timerNode) HandleMessage(env Env, from NodeID, payload []byte) {}
func (n *timerNode) HandleTimer(env Env, name string) {
	if n.onTimer != nil {
		n.onTimer(env, name)
	}
}

func TestRunUntilTimeBound(t *testing.T) {
	net := New(Options{Seed: 1})
	n := &timerNode{id: "a"}
	n.onStart = func(env Env) {
		env.SetTimer("late", time.Second)
		env.SetTimer("early", time.Millisecond)
	}
	net.AddNode(n)
	net.AddNode(&echoNode{id: "b"})
	net.Connect("a", "b", DefaultLink())
	net.Run(100 * time.Millisecond)
	if net.Now() > 100*time.Millisecond {
		t.Errorf("Run exceeded the time bound: now=%v", net.Now())
	}
	if net.PendingEvents() == 0 {
		t.Errorf("late timer should still be pending")
	}
}

func TestInFlightAndInject(t *testing.T) {
	net := New(Options{Seed: 1})
	a := &echoNode{id: "a", startup: func(env Env) { env.Send("b", []byte("hello")) }}
	b := &echoNode{id: "b"}
	net.AddNode(a)
	net.AddNode(b)
	net.Connect("a", "b", LinkConfig{Delay: 50 * time.Millisecond})
	net.Start()

	inflight := net.InFlight()
	if len(inflight) != 1 || inflight[0].From != "a" || inflight[0].To != "b" || string(inflight[0].Payload) != "hello" {
		t.Fatalf("InFlight = %+v", inflight)
	}

	net.InjectMessage("ghost", "b", []byte("injected"), 0)
	net.RunQuiescent(0)
	msgs := b.msgs()
	if len(msgs) != 2 {
		t.Fatalf("b received %v", msgs)
	}
	if msgs[0] != "injected" || msgs[1] != "hello" {
		t.Errorf("delivery order = %v, want injected before hello", msgs)
	}
}

func TestNeighborsAndValidation(t *testing.T) {
	net := New(Options{Seed: 1})
	net.AddNode(&echoNode{id: "a"})
	net.AddNode(&echoNode{id: "b"})
	net.AddNode(&echoNode{id: "c"})
	net.Connect("a", "b", DefaultLink())
	net.Connect("a", "c", DefaultLink())
	nb := net.Neighbors("a")
	if len(nb) != 2 || nb[0] != "b" || nb[1] != "c" {
		t.Errorf("Neighbors = %v", nb)
	}
	if len(net.Nodes()) != 3 {
		t.Errorf("Nodes = %v", net.Nodes())
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("duplicate node", func() { net.AddNode(&echoNode{id: "a"}) })
	mustPanic("unknown node link", func() { net.Connect("a", "zzz", DefaultLink()) })
	mustPanic("self link", func() { net.Connect("a", "a", DefaultLink()) })
	mustPanic("send to non-neighbor", func() {
		e := &env{net: net, id: "b"}
		e.Send("c", []byte("x"))
	})
}

func TestSendToNonNeighborPanicsViaNode(t *testing.T) {
	net := New(Options{Seed: 1})
	bad := &echoNode{id: "a", startup: func(env Env) { env.Send("c", []byte("x")) }}
	net.AddNode(bad)
	net.AddNode(&echoNode{id: "b"})
	net.Connect("a", "b", DefaultLink())
	defer func() {
		if recover() == nil {
			t.Errorf("expected panic for send to unconnected node")
		}
	}()
	net.Start()
}

func TestTCPRunnerPingPong(t *testing.T) {
	r := NewTCPRunner()
	a := &echoNode{id: "a", startup: func(env Env) { env.Send("b", []byte("ping")) }}
	b := &echoNode{id: "b"}
	r.AddNode(a)
	r.AddNode(b)
	r.Connect("a", "b")
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Stop()

	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.msgs()) >= 1 && len(b.msgs()) >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := b.msgs(); len(got) != 1 || got[0] != "ping" {
		t.Errorf("b received %v over TCP", got)
	}
	if got := a.msgs(); len(got) != 1 || got[0] != "pong" {
		t.Errorf("a received %v over TCP", got)
	}
}

func TestTCPRunnerTimers(t *testing.T) {
	r := NewTCPRunner()
	fired := make(chan string, 4)
	n := &timerNode{id: "a",
		onStart: func(env Env) {
			env.SetTimer("x", 20*time.Millisecond)
			env.SetTimer("gone", 20*time.Millisecond)
			env.CancelTimer("gone")
		},
		onTimer: func(env Env, name string) { fired <- name },
	}
	r.AddNode(n)
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer r.Stop()
	select {
	case name := <-fired:
		if name != "x" {
			t.Errorf("fired %q, want x", name)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timer did not fire over TCP runner")
	}
	select {
	case name := <-fired:
		t.Errorf("cancelled timer %q fired", name)
	case <-time.After(100 * time.Millisecond):
	}
}

// TestResetRestoresInitialState verifies that Reset rewinds a network to the
// state an identically configured fresh network would be in: same clock,
// empty queue, zero stats, and — critically for clone-reset determinism —
// the same randomness, so a lossy/jittery run after Reset reproduces the
// original delivery schedule exactly.
func TestResetRestoresInitialState(t *testing.T) {
	build := func() (*Network, *echoNode, *echoNode) {
		net := New(Options{Seed: 7})
		a := &echoNode{id: "a", startup: func(env Env) {
			for i := 0; i < 20; i++ {
				env.Send("b", []byte(fmt.Sprintf("ping-%d", i)))
			}
		}}
		b := &echoNode{id: "b"}
		net.AddNode(a)
		net.AddNode(b)
		// Jitter and loss make the run depend on the network's rng.
		net.Connect("a", "b", LinkConfig{Delay: 5 * time.Millisecond, Jitter: 3 * time.Millisecond, Loss: 0.2})
		return net, a, b
	}

	net, _, b := build()
	net.RunQuiescent(0)
	firstRun := b.msgs()
	firstStats := net.Stats()
	firstNow := net.Now()

	net.Reset()
	if net.Now() != 0 || net.PendingEvents() != 0 {
		t.Fatalf("Reset left clock %v / %d pending events", net.Now(), net.PendingEvents())
	}
	if s := net.Stats(); s != (Stats{}) {
		t.Fatalf("Reset left stats %+v", s)
	}

	// Re-running after Reset must reproduce the original execution bit for
	// bit (the nodes here are fresh-equivalent because echoNode keeps its
	// log; compare only the new suffix).
	b.mu.Lock()
	b.received = nil
	b.mu.Unlock()
	net.RunQuiescent(0)
	secondRun := b.msgs()
	if fmt.Sprint(firstRun) != fmt.Sprint(secondRun) {
		t.Errorf("post-reset run delivered %v, first run delivered %v", secondRun, firstRun)
	}
	if net.Stats() != firstStats {
		t.Errorf("post-reset stats %+v, first run %+v", net.Stats(), firstStats)
	}
	if net.Now() != firstNow {
		t.Errorf("post-reset clock %v, first run %v", net.Now(), firstNow)
	}
}

// TestResetDropsPendingEventsAndTimers verifies that in-flight deliveries and
// armed timers do not survive a Reset.
func TestResetDropsPendingEventsAndTimers(t *testing.T) {
	net := New(Options{Seed: 1})
	a := &echoNode{id: "a", startup: func(env Env) {
		env.Send("b", []byte("ping"))
		env.SetTimer("tick", time.Second)
	}}
	b := &echoNode{id: "b"}
	net.AddNode(a)
	net.AddNode(b)
	net.Connect("a", "b", LinkConfig{Delay: 5 * time.Millisecond})
	net.Start()
	if net.PendingEvents() == 0 {
		t.Fatal("expected pending events after Start")
	}
	net.Reset()
	if net.PendingEvents() != 0 {
		t.Fatalf("%d events survived Reset", net.PendingEvents())
	}
	if got := net.InFlight(); len(got) != 0 {
		t.Fatalf("in-flight messages survived Reset: %v", got)
	}
}
