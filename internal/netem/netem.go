// Package netem is a deterministic, virtual-time network emulator used to run
// the emulated BGP routers under "Internet-like conditions" (per-link
// propagation delay, jitter and loss) without real sockets or wall-clock
// time.
//
// The emulator is a discrete-event simulator: node callbacks (message
// delivery, timer expiry) are scheduled on a virtual clock and processed in
// timestamp order. Everything is seeded, so a given topology, workload and
// seed always produce the same execution — which the DiCE orchestrator relies
// on to make exploration reproducible and to compare "live" runs against
// explored clones.
//
// A companion TCP transport (see tcp.go) can run the same Node implementations
// over real localhost sockets for integration realism.
package netem

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// NodeID names a node in the emulated network.
type NodeID string

// Env is the interface the emulator exposes to node callbacks. All
// interactions with the outside world (time, messaging, timers, randomness)
// go through it so that node logic stays deterministic and transport
// agnostic.
type Env interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Self returns the identity of the node being called.
	Self() NodeID
	// Neighbors returns the IDs of directly connected nodes, sorted.
	Neighbors() []NodeID
	// Send queues a payload for delivery to a directly connected node.
	// Sending to a non-neighbor is a programming error and panics.
	Send(to NodeID, payload []byte)
	// SetTimer (re)arms a named timer to fire after d.
	SetTimer(name string, d time.Duration)
	// CancelTimer disarms a named timer; pending expirations are discarded.
	CancelTimer(name string)
	// Rand returns the node's deterministic random source.
	Rand() *rand.Rand
	// Logf records a debug message with the node and virtual timestamp.
	Logf(format string, args ...interface{})
}

// Node is an emulated process.
type Node interface {
	// ID returns the node's name.
	ID() NodeID
	// Start is invoked once, at virtual time zero, before any delivery.
	Start(env Env)
	// HandleMessage delivers one payload from a neighbor.
	HandleMessage(env Env, from NodeID, payload []byte)
	// HandleTimer is invoked when a named timer armed via Env expires.
	HandleTimer(env Env, name string)
}

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// Delay is the base propagation delay.
	Delay time.Duration
	// Jitter adds a uniformly distributed extra delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0, 1) that a message is dropped.
	Loss float64
}

// DefaultLink returns a link with a small fixed delay and no loss.
func DefaultLink() LinkConfig { return LinkConfig{Delay: 10 * time.Millisecond} }

// Stats counts emulator activity.
type Stats struct {
	MessagesSent      int
	MessagesDelivered int
	MessagesDropped   int
	TimersFired       int
	TimersCancelled   int
	EventsProcessed   int
}

// QueuedMessage is a message that has been sent but not yet delivered. The
// snapshot coordinator records these as part of a consistent cut.
type QueuedMessage struct {
	From    NodeID
	To      NodeID
	Payload []byte
	// Deliver is the virtual time at which the message would arrive.
	Deliver time.Duration
}

// Options configure a Network.
type Options struct {
	// Seed drives loss and jitter decisions.
	Seed int64
	// Trace, when non-nil, receives node log lines.
	Trace func(string)
	// MaxEvents bounds Run to protect against livelock; zero means 10 million.
	MaxEvents int
}

// Network is the emulated network: nodes, links, and the event queue.
type Network struct {
	opts  Options
	nodes map[NodeID]Node
	links map[NodeID]map[NodeID]LinkConfig
	rng   *rand.Rand

	now     time.Duration
	events  eventQueue
	seq     int
	started bool
	stats   Stats

	// timerGen invalidates cancelled/rearmed timers: an event fires only if
	// its generation matches the current one.
	timerGen map[NodeID]map[string]int

	nodeRngs map[NodeID]*rand.Rand

	// rngDirty / dirtyNodeRngs track which random sources have been drawn
	// from since they were last seeded. Seeding math/rand sources is
	// expensive; Reset reseeds only the dirty ones.
	rngDirty      bool
	dirtyNodeRngs map[NodeID]bool
}

// New returns an empty network.
func New(opts Options) *Network {
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 10_000_000
	}
	return &Network{
		opts:          opts,
		nodes:         make(map[NodeID]Node),
		links:         make(map[NodeID]map[NodeID]LinkConfig),
		rng:           rand.New(rand.NewSource(opts.Seed)),
		timerGen:      make(map[NodeID]map[string]int),
		nodeRngs:      make(map[NodeID]*rand.Rand),
		dirtyNodeRngs: make(map[NodeID]bool),
	}
}

// AddNode registers a node. Adding two nodes with the same ID panics.
func (n *Network) AddNode(node Node) {
	id := node.ID()
	if _, dup := n.nodes[id]; dup {
		panic(fmt.Sprintf("netem: duplicate node %q", id))
	}
	n.nodes[id] = node
	n.links[id] = make(map[NodeID]LinkConfig)
	n.timerGen[id] = make(map[string]int)
	n.nodeRngs[id] = rand.New(rand.NewSource(n.opts.Seed ^ int64(fnvHash(string(id)))))
}

// Node returns the registered node with the given ID, or nil.
func (n *Network) Node(id NodeID) Node { return n.nodes[id] }

// Nodes returns all node IDs, sorted.
func (n *Network) Nodes() []NodeID {
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connect creates a bidirectional link between two registered nodes with the
// same configuration in both directions.
func (n *Network) Connect(a, b NodeID, cfg LinkConfig) {
	n.ConnectDirected(a, b, cfg)
	n.ConnectDirected(b, a, cfg)
}

// ConnectDirected creates (or replaces) the a->b direction of a link.
func (n *Network) ConnectDirected(a, b NodeID, cfg LinkConfig) {
	if _, ok := n.nodes[a]; !ok {
		panic(fmt.Sprintf("netem: unknown node %q", a))
	}
	if _, ok := n.nodes[b]; !ok {
		panic(fmt.Sprintf("netem: unknown node %q", b))
	}
	if a == b {
		panic("netem: self link")
	}
	n.links[a][b] = cfg
}

// Neighbors returns the nodes directly reachable from id, sorted.
func (n *Network) Neighbors(id NodeID) []NodeID {
	out := make([]NodeID, 0, len(n.links[id]))
	for peer := range n.links[id] {
		out = append(out, peer)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Now returns the current virtual time.
func (n *Network) Now() time.Duration { return n.now }

// Stats returns a snapshot of the emulator counters.
func (n *Network) Stats() Stats { return n.stats }

// event kinds.
const (
	evDeliver = iota
	evTimer
	// evCall runs a closure on a node's worker goroutine (TCPRunner.Inspect);
	// the virtual-time emulator never schedules it.
	evCall
)

type event struct {
	at      time.Duration
	seq     int
	kind    int
	to      NodeID
	from    NodeID
	payload []byte
	timer   string
	gen     int
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) {
	*q = append(*q, x.(*event))
}
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

func (n *Network) push(e *event) {
	e.seq = n.seq
	n.seq++
	heap.Push(&n.events, e)
}

// env adapts the network to the Env interface for one node.
type env struct {
	net *Network
	id  NodeID
}

func (e *env) Now() time.Duration  { return e.net.now }
func (e *env) Self() NodeID        { return e.id }
func (e *env) Neighbors() []NodeID { return e.net.Neighbors(e.id) }
func (e *env) Rand() *rand.Rand {
	e.net.dirtyNodeRngs[e.id] = true
	return e.net.nodeRngs[e.id]
}

func (e *env) Send(to NodeID, payload []byte) {
	cfg, ok := e.net.links[e.id][to]
	if !ok {
		panic(fmt.Sprintf("netem: %s attempted to send to non-neighbor %s", e.id, to))
	}
	e.net.stats.MessagesSent++
	if cfg.Loss > 0 {
		e.net.rngDirty = true
		if e.net.rng.Float64() < cfg.Loss {
			e.net.stats.MessagesDropped++
			return
		}
	}
	delay := cfg.Delay
	if cfg.Jitter > 0 {
		e.net.rngDirty = true
		delay += time.Duration(e.net.rng.Int63n(int64(cfg.Jitter)))
	}
	e.net.push(&event{
		at:      e.net.now + delay,
		kind:    evDeliver,
		to:      to,
		from:    e.id,
		payload: append([]byte(nil), payload...),
	})
}

func (e *env) SetTimer(name string, d time.Duration) {
	gens := e.net.timerGen[e.id]
	gens[name]++
	e.net.push(&event{
		at:    e.net.now + d,
		kind:  evTimer,
		to:    e.id,
		timer: name,
		gen:   gens[name],
	})
}

func (e *env) CancelTimer(name string) {
	gens := e.net.timerGen[e.id]
	if _, ok := gens[name]; ok {
		gens[name]++
		e.net.stats.TimersCancelled++
	}
}

func (e *env) Logf(format string, args ...interface{}) {
	if e.net.opts.Trace != nil {
		e.net.opts.Trace(fmt.Sprintf("[%8.3fs %s] %s", e.net.now.Seconds(), e.id, fmt.Sprintf(format, args...)))
	}
}

// Start invokes Start on every node (in sorted order) at virtual time zero.
// It is idempotent.
func (n *Network) Start() {
	if n.started {
		return
	}
	n.started = true
	for _, id := range n.Nodes() {
		n.nodes[id].Start(&env{net: n, id: id})
	}
}

// Step processes the single next event. It reports whether an event was
// processed (false when the queue is empty).
func (n *Network) Step() bool {
	n.Start()
	for n.events.Len() > 0 {
		e := heap.Pop(&n.events).(*event)
		if e.kind == evTimer && n.timerGen[e.to][e.timer] != e.gen {
			// Stale timer: cancelled or re-armed since it was scheduled.
			continue
		}
		n.now = e.at
		n.stats.EventsProcessed++
		node := n.nodes[e.to]
		ev := &env{net: n, id: e.to}
		switch e.kind {
		case evDeliver:
			n.stats.MessagesDelivered++
			node.HandleMessage(ev, e.from, e.payload)
		case evTimer:
			n.stats.TimersFired++
			node.HandleTimer(ev, e.timer)
		}
		return true
	}
	return false
}

// Run processes events until the virtual clock would exceed until, or the
// queue empties, or MaxEvents is reached. It returns the number of events
// processed.
func (n *Network) Run(until time.Duration) int {
	n.Start()
	processed := 0
	for n.events.Len() > 0 && processed < n.opts.MaxEvents {
		next := n.peekTime()
		if next > until {
			break
		}
		if !n.Step() {
			break
		}
		processed++
	}
	return processed
}

// RunQuiescent processes events until there are none left (full convergence)
// or maxEvents is hit; it returns the number of events processed. Periodic
// timers would prevent quiescence, so nodes used with RunQuiescent should arm
// timers only while work is outstanding; the emulated router follows that
// rule once sessions are established.
func (n *Network) RunQuiescent(maxEvents int) int {
	n.Start()
	if maxEvents <= 0 {
		maxEvents = n.opts.MaxEvents
	}
	processed := 0
	for processed < maxEvents && n.Step() {
		processed++
	}
	return processed
}

func (n *Network) peekTime() time.Duration {
	if n.events.Len() == 0 {
		return n.now
	}
	return n.events[0].at
}

// PendingEvents returns the number of scheduled (not yet processed) events,
// including stale timers.
func (n *Network) PendingEvents() int { return n.events.Len() }

// Reset returns the network to its initial state: virtual time zero, an empty
// event queue, zeroed stats, cleared timers and freshly seeded randomness —
// exactly the state a brand-new Network with the same options, nodes and
// links would be in. Nodes and links are kept; resetting the nodes' own state
// is the caller's concern. The clone pool uses Reset to rewind a shadow
// cluster's transport between explored inputs instead of rebuilding it.
func (n *Network) Reset() {
	n.now = 0
	for i := range n.events {
		n.events[i] = nil
	}
	n.events = n.events[:0]
	n.seq = 0
	n.started = false
	n.stats = Stats{}
	for _, gens := range n.timerGen {
		for name := range gens {
			delete(gens, name)
		}
	}
	if n.rngDirty {
		n.rng = rand.New(rand.NewSource(n.opts.Seed))
		n.rngDirty = false
	}
	for id := range n.dirtyNodeRngs {
		n.nodeRngs[id] = rand.New(rand.NewSource(n.opts.Seed ^ int64(fnvHash(string(id)))))
		delete(n.dirtyNodeRngs, id)
	}
}

// InFlight returns the messages that have been sent but not yet delivered, in
// deterministic order. The snapshot coordinator uses this to capture channel
// state for a consistent cut.
func (n *Network) InFlight() []QueuedMessage {
	var out []QueuedMessage
	for _, e := range n.events {
		if e.kind != evDeliver {
			continue
		}
		out = append(out, QueuedMessage{
			From:    e.from,
			To:      e.to,
			Payload: append([]byte(nil), e.payload...),
			Deliver: e.at,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Deliver != out[j].Deliver {
			return out[i].Deliver < out[j].Deliver
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// InjectMessage schedules a payload for delivery to a node as if it had been
// sent by from, after the given delay. It does not require a link and is used
// by the DiCE orchestrator to replay in-flight messages from a snapshot and
// to inject explored inputs.
func (n *Network) InjectMessage(from, to NodeID, payload []byte, delay time.Duration) {
	if _, ok := n.nodes[to]; !ok {
		panic(fmt.Sprintf("netem: inject to unknown node %q", to))
	}
	n.push(&event{
		at:      n.now + delay,
		kind:    evDeliver,
		to:      to,
		from:    from,
		payload: append([]byte(nil), payload...),
	})
}

func fnvHash(s string) uint64 {
	const offset = 14695981039346656037
	const prime = 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
