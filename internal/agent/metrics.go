package agent

import (
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/obs"
)

// RegisterMetrics registers the agent's worker and lease series, reading
// the agent's existing counters at exposition time (a nil-returning
// callback exposes zeros).
func RegisterMetrics(reg *obs.Registry, ag func() *Agent) {
	reg.CounterFunc("dice_agent_shards_run_total", "Shard leases this agent executed.",
		func() float64 {
			if a := ag(); a != nil {
				return float64(a.ShardsRun())
			}
			return 0
		})
	reg.GaugeFunc("dice_agent_workers", "Configured worker parallelism.",
		func() float64 {
			if a := ag(); a != nil {
				return float64(a.Workers())
			}
			return 0
		})
	cluster.RegisterPoolMetrics(reg, "dice_agent_pool",
		func() cluster.PoolStats {
			if a := ag(); a != nil {
				return a.PoolStats()
			}
			return cluster.PoolStats{}
		}, nil)
}
