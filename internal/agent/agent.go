// Package agent is the execution side of distributed DiCE campaigns: an
// agent dials the control plane outbound, registers its capabilities
// (supported router backends, worker parallelism), fetches the campaign
// baseline once, then leases shards, runs each through the ordinary
// dice.Campaign/ClonePool machinery against the shipped snapshot, and posts
// back per-unit results plus the checker.Summary envelopes its local
// federation bus published — never node state.
package agent

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/control"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/topology"
)

// Config parameterizes an Agent.
type Config struct {
	// Name is the agent's self-chosen display name.
	Name string
	// ControlURL is the control plane's base URL (e.g. http://127.0.0.1:7777).
	ControlURL string
	// Client carries the HTTP transport; nil selects http.DefaultClient. The
	// in-process transport mode passes control.InProcessClient here.
	Client *http.Client
	// Workers bounds local clone parallelism (0 keeps the shipped spec's
	// hint, which itself defaults to NumCPU agent-side).
	Workers int
	// PollInterval is the idle wait between lease polls (default 50ms).
	PollInterval time.Duration
	// ShardDelay, when positive, sleeps before executing each shard — the
	// chaos test uses it to widen the window in which an agent can be killed
	// mid-lease.
	ShardDelay time.Duration
	// Logf, when set, receives agent progress lines.
	Logf func(format string, args ...any)

	// TestShardFault, when set by fault-injecting tests, runs before each
	// leased shard executes; a returned error abandons the shard mid-lease
	// exactly as a crash would (no result is posted).
	TestShardFault func(shard int) error
}

// Agent runs the lease-execute-report loop against one control plane.
type Agent struct {
	cfg    Config
	client *http.Client

	id      string
	welcome control.Welcome

	mu        sync.Mutex
	pool      *cluster.ClonePool
	poolStats cluster.PoolStats
	shardsRun int
}

// New returns an agent ready to Run.
func New(cfg Config) *Agent {
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 50 * time.Millisecond
	}
	client := cfg.Client
	if client == nil {
		client = http.DefaultClient
	}
	return &Agent{cfg: cfg, client: client}
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf(format, args...)
	}
}

// Workers reports the agent's configured clone parallelism (0: the shipped
// spec's hint decides).
func (a *Agent) Workers() int { return a.cfg.Workers }

// ShardsRun reports how many shards this agent completed.
func (a *Agent) ShardsRun() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.shardsRun
}

// PoolStats reports the cumulative clone-pool activity across the agent's
// shards — the shard-boundary fault tests assert Leases == Releases here.
func (a *Agent) PoolStats() cluster.PoolStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	stats := a.poolStats
	if a.pool != nil {
		stats = stats.Add(a.pool.Stats())
	}
	return stats
}

// errUnavailable marks a 503 from the control plane (campaign not started
// yet); the agent retries.
var errUnavailable = errors.New("agent: control plane not ready")

// post sends one frame and decodes the single-frame response.
func (a *Agent) post(ctx context.Context, path string, msg any) (any, error) {
	var body bytes.Buffer
	if _, err := control.EncodeFrame(&body, msg); err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, a.cfg.ControlURL+path, &body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-dice-frame")
	resp, err := a.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable {
		io.Copy(io.Discard, resp.Body)
		return nil, errUnavailable
	}
	if resp.StatusCode != http.StatusOK {
		text, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("agent: %s: %s: %s", path, resp.Status, bytes.TrimSpace(text))
	}
	return control.DecodeFrame(resp.Body)
}

// Run registers, fetches the baseline, and leases shards until the control
// plane reports the campaign done or ctx ends.
func (a *Agent) Run(ctx context.Context) error {
	welcome, err := a.register(ctx)
	if err != nil {
		return err
	}
	a.id, a.welcome = welcome.AgentID, *welcome
	a.logf("agent %s: registered as %s for campaign %q", a.cfg.Name, a.id, welcome.Campaign)

	topo, baseStore, spec, err := a.fetchBaseline(ctx)
	if err != nil {
		return err
	}
	a.logf("agent %s: baseline fetched (%d nodes)", a.id, len(topo.Nodes))

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		msg, err := a.post(ctx, "/v1/lease", &control.LeaseRequest{AgentID: a.id})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return err
		}
		switch m := msg.(type) {
		case *control.NoWork:
			if m.Done {
				a.logf("agent %s: campaign done, exiting", a.id)
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(a.cfg.PollInterval):
			}
		case *control.Lease:
			if err := a.runShard(ctx, topo, baseStore, spec, m); err != nil {
				return err
			}
		default:
			return fmt.Errorf("agent: unexpected lease response %T", msg)
		}
	}
}

func (a *Agent) register(ctx context.Context) (*control.Welcome, error) {
	hello := &control.Hello{
		Agent:    a.cfg.Name,
		Backends: node.Implementations(),
		Workers:  a.cfg.Workers,
	}
	msg, err := a.post(ctx, "/v1/register", hello)
	if err != nil {
		return nil, err
	}
	w, ok := msg.(*control.Welcome)
	if !ok {
		return nil, fmt.Errorf("agent: unexpected register response %T", msg)
	}
	return w, nil
}

// fetchBaseline polls until the control plane has a campaign, then decodes
// the one-time baseline shipment into a restore-ready store.
func (a *Agent) fetchBaseline(ctx context.Context) (*topology.Topology, *checkpoint.Store, dice.RemoteSpec, error) {
	for {
		msg, err := a.post(ctx, "/v1/baseline", &control.BaselineRequest{AgentID: a.id})
		if errors.Is(err, errUnavailable) {
			select {
			case <-ctx.Done():
				return nil, nil, dice.RemoteSpec{}, ctx.Err()
			case <-time.After(a.cfg.PollInterval):
				continue
			}
		}
		if err != nil {
			return nil, nil, dice.RemoteSpec{}, err
		}
		b, ok := msg.(*control.Baseline)
		if !ok {
			return nil, nil, dice.RemoteSpec{}, fmt.Errorf("agent: unexpected baseline response %T", msg)
		}
		// Verify the content hash before decoding: every later shard delta is
		// applied against these bytes, so a corrupt fetch must die here.
		if got := checkpoint.HashBytes(b.Snapshot); got != checkpoint.Hash(b.SnapshotSHA256) {
			return nil, nil, dice.RemoteSpec{}, fmt.Errorf("agent: baseline snapshot hash %s does not match announced %s",
				got, checkpoint.Hash(b.SnapshotSHA256))
		}
		snap, err := checkpoint.Decode(b.Snapshot)
		if err != nil {
			return nil, nil, dice.RemoteSpec{}, fmt.Errorf("agent: decode baseline snapshot: %w", err)
		}
		store, err := checkpoint.NewStore(snap)
		if err != nil {
			return nil, nil, dice.RemoteSpec{}, fmt.Errorf("agent: baseline store: %w", err)
		}
		topo := b.Topo
		return &topo, store, b.Spec, nil
	}
}

// envelopeCapture records the shard campaign's federation bus publishes for
// shipment in the shard result.
type envelopeCapture struct {
	mu   sync.Mutex
	envs []federation.Envelope
}

func (c *envelopeCapture) Deliver(e federation.Envelope) {
	c.mu.Lock()
	c.envs = append(c.envs, e)
	c.mu.Unlock()
}

// runShard executes one leased shard through a local campaign and posts the
// result. Heartbeats renew the lease while the campaign runs.
func (a *Agent) runShard(ctx context.Context, topo *topology.Topology, baseStore *checkpoint.Store, spec dice.RemoteSpec, lease *control.Lease) error {
	shardCtx, cancelShard := context.WithCancel(ctx)
	defer cancelShard()

	// Heartbeat until the shard is done; a Cancel ack aborts the shard.
	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		every := a.welcome.HeartbeatEvery
		if every <= 0 {
			every = time.Second
		}
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-shardCtx.Done():
				return
			case <-ticker.C:
				msg, err := a.post(shardCtx, "/v1/heartbeat", &control.Heartbeat{AgentID: a.id})
				if err != nil {
					continue // transient; the lease survives until TTL
				}
				if ack, ok := msg.(*control.HeartbeatAck); ok && ack.Cancel {
					cancelShard()
					return
				}
			}
		}
	}()
	defer hbWG.Wait()
	defer close(hbDone)

	if a.cfg.ShardDelay > 0 {
		select {
		case <-shardCtx.Done():
			return shardCtx.Err()
		case <-time.After(a.cfg.ShardDelay):
		}
	}
	if a.cfg.TestShardFault != nil {
		if err := a.cfg.TestShardFault(lease.Shard); err != nil {
			return fmt.Errorf("agent: shard %d: %w", lease.Shard, err)
		}
	}

	// An empty delta means the shard explores the baseline cut itself, so
	// sequential shards share one clone pool over the baseline store — the
	// same amortization the live runtime gets from WithClonePool. A non-empty
	// delta is a different cut: the shard campaign gets its own store (and
	// builds its own pool over it).
	store := baseStore
	var pool *cluster.ClonePool
	if lease.Delta.Empty() {
		a.mu.Lock()
		if a.pool == nil {
			a.pool = cluster.NewClonePool(topo, baseStore, cluster.Options{
				Seed:              spec.ClusterSeed,
				MaxEvents:         spec.ClusterMaxEvents,
				GaoRexford:        spec.ClusterGaoRexford,
				KeepaliveInterval: spec.ClusterKeepalive,
			})
		}
		pool = a.pool
		a.mu.Unlock()
	} else {
		target, err := baseStore.ApplyDelta(&lease.Delta)
		if err != nil {
			return fmt.Errorf("agent: shard %d: apply delta: %w", lease.Shard, err)
		}
		store, err = checkpoint.NewStore(target)
		if err != nil {
			return fmt.Errorf("agent: shard %d: delta store: %w", lease.Shard, err)
		}
	}

	opts, err := spec.CampaignOptions(topo, store, pool)
	if err != nil {
		return fmt.Errorf("agent: shard %d: %w", lease.Shard, err)
	}
	opts = append(opts, dice.WithUnits(lease.Units...))
	if a.cfg.Workers > 0 {
		opts = append(opts, dice.WithWorkers(a.cfg.Workers))
	}
	var capture *envelopeCapture
	if len(spec.Domains) > 0 {
		capture = &envelopeCapture{}
		opts = append(opts, dice.WithFederationTransport(capture))
	}

	a.logf("agent %s: running shard %d (%d units)", a.id, lease.Shard, len(lease.Units))
	res, runErr := dice.NewCampaign(nil, topo, opts...).Run(shardCtx)
	if ctx.Err() != nil {
		// Dying mid-lease: no result is posted; the lease expires and the
		// control plane reassigns the shard.
		return ctx.Err()
	}
	if shardCtx.Err() != nil {
		// The control plane cancelled the campaign via heartbeat ack; a
		// partial result would be rejected as stale work anyway.
		return nil
	}
	if res == nil {
		return fmt.Errorf("agent: shard %d: %w", lease.Shard, runErr)
	}

	sr := &control.ShardResult{
		AgentID: a.id,
		Shard:   lease.Shard,
		Attempt: lease.Attempt,
	}
	for j, idx := range lease.UnitIndexes {
		ur := control.UnitResult{Index: idx}
		if j < len(res.Units) {
			// Results ship in their wire projection: detections reduced to
			// violation digests, so no local evidence leaves the domain.
			ur.Result = control.RemoteResultOf(res.Units[j])
			if e := res.UnitErrors[j]; e != nil {
				ur.Result = nil
				ur.Err = e.Error()
			}
		} else if runErr != nil {
			ur.Err = runErr.Error()
		}
		sr.Units = append(sr.Units, ur)
	}
	if capture != nil {
		capture.mu.Lock()
		sr.Envelopes = append(sr.Envelopes, capture.envs...)
		capture.mu.Unlock()
	}
	msg, err := a.post(ctx, "/v1/result", sr)
	if err != nil {
		return err
	}
	ack, ok := msg.(*control.ResultAck)
	if !ok {
		return fmt.Errorf("agent: unexpected result response %T", msg)
	}
	if !ack.Accepted {
		a.logf("agent %s: shard %d result rejected (lease superseded)", a.id, lease.Shard)
		return nil
	}
	a.mu.Lock()
	a.shardsRun++
	// Fold a per-shard pool's stats into the cumulative account before it is
	// dropped with its store.
	if pool == nil && store != baseStore {
		// The shard campaign built its own pool internally; its stats are in
		// the campaign result instead.
		a.poolStats = a.poolStats.Add(res.CloneStats)
	}
	a.mu.Unlock()
	a.logf("agent %s: shard %d done (%d inputs)", a.id, lease.Shard, res.InputsExplored)
	return nil
}
