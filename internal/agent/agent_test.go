package agent_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/agent"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/control"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/topology"
)

func hijackedFixture(t *testing.T, n int) (*topology.Topology, *cluster.Cluster, cluster.Options) {
	t.Helper()
	topo := topology.Line(n)
	victim := topo.Nodes[0].Prefixes[0]
	last := topo.Nodes[n-1].Name
	opts := cluster.Options{Seed: 1, ConfigOverride: faults.ApplyConfigFaults(faults.MisOrigination{Router: last, Prefix: victim})}
	c := cluster.MustBuild(topo, opts)
	c.Converge()
	return topo, c, opts
}

func campaignOptions(copts cluster.Options) []dice.CampaignOption {
	return []dice.CampaignOption{
		dice.WithStrategy(dice.AllNodesStrategy{}),
		dice.WithBudget(dice.Budget{TotalInputs: 12}),
		dice.WithFuzzSeeds(4),
		dice.WithSeed(3),
		dice.WithClusterOptions(copts),
		dice.WithWorkers(2),
	}
}

func detectionKeys(ds []dice.Detection) string {
	keys := make([]string, 0, len(ds))
	for _, d := range ds {
		keys = append(keys, fmt.Sprintf("%s@%d", d.Violation.Key(), d.InputIndex))
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// TestAgentCancelledMidShardBalancesClonePool is the shard-boundary fault
// audit: an agent killed by context cancellation while executing a leased
// shard must hand every clone back (Leases == Releases) and leak no
// goroutines — the discard/fall-through accounting holds at the lease
// boundary, not just inside one campaign.
func TestAgentCancelledMidShardBalancesClonePool(t *testing.T) {
	topo, live, copts := hijackedFixture(t, 4)
	ctrl := control.NewController(control.Config{
		Campaign:      "fault",
		UnitsPerShard: 2,
		LeaseTTL:      5 * time.Second,
	})
	client := control.InProcessClient(control.NewHandler(ctrl))

	before := runtime.NumGoroutine()

	agentCtx, cancelAgent := context.WithCancel(context.Background())
	defer cancelAgent()
	ag := agent.New(agent.Config{
		Name:         "doomed",
		ControlURL:   "http://control.inproc",
		Client:       client,
		PollInterval: 2 * time.Millisecond,
	})
	agentDone := make(chan error, 1)
	go func() { agentDone <- ag.Run(agentCtx) }()

	campCtx, cancelCampaign := context.WithCancel(context.Background())
	defer cancelCampaign()
	campDone := make(chan error, 1)
	go func() {
		opts := append(campaignOptions(copts), dice.WithRemoteExecution(ctrl))
		_, err := dice.NewCampaign(live, topo, opts...).Run(campCtx)
		campDone <- err
	}()

	// Kill the agent once its clone pool shows activity — mid-shard, the
	// window an agent crash actually hits.
	deadline := time.After(10 * time.Second)
	for ag.PoolStats().Leases == 0 {
		select {
		case err := <-agentDone:
			t.Fatalf("agent exited before leasing a clone: %v", err)
		case <-deadline:
			t.Fatal("agent never leased a clone")
		case <-time.After(time.Millisecond):
		}
	}
	cancelAgent()

	if err := <-agentDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("agent exit = %v, want context.Canceled", err)
	}
	stats := ag.PoolStats()
	if stats.Leases == 0 {
		t.Fatal("fault window missed the clone pool entirely")
	}
	if stats.Leases != stats.Releases {
		t.Errorf("clone accounting unbalanced after mid-shard cancel: %d leases, %d releases", stats.Leases, stats.Releases)
	}

	// The campaign is now agent-less; cancel it and let the controller drain.
	cancelCampaign()
	if err := <-campDone; err == nil {
		t.Error("campaign without agents should fail once cancelled")
	}

	// No goroutine may survive the dead agent (heartbeater, pool workers).
	for i := 0; ; i++ {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if i > 200 {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestAgentFaultMidLeaseReassigned: an agent that dies holding a lease (the
// injected shard fault makes it abandon the shard without reporting) must not
// lose work — the lease expires, the shard is reassigned, and a healthy agent
// finishes the campaign with results identical to the in-process run.
func TestAgentFaultMidLeaseReassigned(t *testing.T) {
	topo, live, copts := hijackedFixture(t, 4)
	local, err := dice.NewCampaign(live, topo, campaignOptions(copts)...).Run(context.Background())
	if err != nil {
		t.Fatalf("in-process Run: %v", err)
	}

	topo, live, copts = hijackedFixture(t, 4)
	ctrl := control.NewController(control.Config{
		Campaign:      "fault",
		UnitsPerShard: 1,
		LeaseTTL:      250 * time.Millisecond,
	})
	client := control.InProcessClient(control.NewHandler(ctrl))

	campDone := make(chan *dice.CampaignResult, 1)
	go func() {
		opts := append(campaignOptions(copts), dice.WithRemoteExecution(ctrl))
		res, err := dice.NewCampaign(live, topo, opts...).Run(context.Background())
		if err != nil {
			t.Errorf("distributed Run: %v", err)
		}
		campDone <- res
	}()

	// The faulty agent grabs the first shard and crashes at the boundary.
	faulty := agent.New(agent.Config{
		Name:         "faulty",
		ControlURL:   "http://control.inproc",
		Client:       client,
		PollInterval: 2 * time.Millisecond,
		TestShardFault: func(shard int) error {
			return fmt.Errorf("injected crash on shard %d", shard)
		},
	})
	if err := faulty.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "injected crash") {
		t.Fatalf("faulty agent exit = %v, want the injected crash", err)
	}
	if faulty.ShardsRun() != 0 {
		t.Errorf("faulty agent reported %d completed shards", faulty.ShardsRun())
	}

	var wg sync.WaitGroup
	healthy := agent.New(agent.Config{
		Name:         "healthy",
		ControlURL:   "http://control.inproc",
		Client:       client,
		PollInterval: 2 * time.Millisecond,
	})
	wg.Add(1)
	var healthyErr error
	go func() { defer wg.Done(); healthyErr = healthy.Run(context.Background()) }()

	res := <-campDone
	wg.Wait()
	if healthyErr != nil {
		t.Fatalf("healthy agent: %v", healthyErr)
	}
	if res == nil {
		t.Fatal("no campaign result")
	}
	if got, want := detectionKeys(res.Detections), detectionKeys(local.Detections); got != want {
		t.Errorf("detections after reassignment differ:\n  distributed %s\n  in-process  %s", got, want)
	}
	if ctrl.RemoteStats().Reassigned == 0 {
		t.Error("no lease was reassigned despite the crashed agent")
	}
	hstats := healthy.PoolStats()
	if hstats.Leases != hstats.Releases {
		t.Errorf("healthy agent clone accounting unbalanced: %+v", hstats)
	}
}
