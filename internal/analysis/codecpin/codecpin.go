// Package codecpin verifies that every struct with a registered canonical
// encoder keeps its field-count pin in sync with its definition, so adding
// a field without teaching the codec about it fails vet instead of
// producing silently-lossy checkpoints in production. The
// statsFieldCount=17 pin in internal/checkpoint/codec is the pattern: the
// encoder writes the count into every artifact and the decoder rejects a
// mismatch, but until this analyzer the only thing keeping the CONSTANT
// honest was a reflect-based test.
//
// Two rules:
//
//  1. A `//dice:fieldpin T` directive on a constant declaration asserts
//     that the constant's value equals the number of fields of struct T
//     (T may be package-qualified, e.g. `//dice:fieldpin node.RouterStats`).
//     A mismatch, an unresolvable T, or a directive on something that is
//     not an integer constant is a finding.
//
//  2. In a package whose doc carries `//dice:codec` (the canonical-encoder
//     package), every externally-defined struct whose fields the package
//     reads or writes must either be fully covered — all of its fields
//     referenced somewhere in the package — or carry a fieldpin. A struct
//     the codec touches only partially, with no pin, is exactly the
//     "added a field, forgot the codec" hole.
//
// Suppression: `//dice:allow codecpin <reason>`.
package codecpin

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"github.com/dice-project/dice/internal/analysis"
)

// Analyzer is the codecpin pass.
var Analyzer = &analysis.Analyzer{
	Name: "codecpin",
	Doc:  "verifies field-count pins match struct definitions in canonical-encoder packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	pinned := checkFieldPins(pass)
	if isCodecPackage(pass) {
		checkFieldCoverage(pass, pinned)
	}
	return nil
}

// isCodecPackage reports whether any file carries the //dice:codec package
// directive.
func isCodecPackage(pass *analysis.Pass) bool {
	for _, f := range pass.Files {
		for _, d := range analysis.ParseDirectives(pass.Fset, f) {
			if d.Name == "codec" {
				return true
			}
		}
	}
	return false
}

// checkFieldPins enforces rule 1 and returns the set of struct types
// (by types.Type identity string) that have pins.
func checkFieldPins(pass *analysis.Pass) map[string]bool {
	pinned := make(map[string]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				target := pinDirectiveTarget(gd, vs)
				if target == "" {
					continue
				}
				checkOnePin(pass, vs, target, pinned)
			}
		}
	}
	return pinned
}

// pinDirectiveTarget extracts the //dice:fieldpin argument from the spec's
// or declaration's doc comment.
func pinDirectiveTarget(gd *ast.GenDecl, vs *ast.ValueSpec) string {
	for _, doc := range []*ast.CommentGroup{vs.Doc, gd.Doc, vs.Comment} {
		if doc == nil {
			continue
		}
		for _, c := range doc.List {
			if rest, ok := strings.CutPrefix(c.Text, "//dice:fieldpin"); ok {
				return strings.TrimSpace(rest)
			}
		}
	}
	return ""
}

// checkOnePin validates one pinned constant against its struct.
func checkOnePin(pass *analysis.Pass, vs *ast.ValueSpec, target string, pinned map[string]bool) {
	if len(vs.Names) != 1 {
		pass.Reportf(vs.Pos(), "//dice:fieldpin must annotate exactly one constant")
		return
	}
	name := vs.Names[0]
	obj, ok := pass.TypesInfo.Defs[name].(*types.Const)
	if !ok {
		pass.Reportf(vs.Pos(), "//dice:fieldpin %s: %s is not a constant", target, name.Name)
		return
	}
	if obj.Val().Kind() != constant.Int {
		pass.Reportf(vs.Pos(), "//dice:fieldpin %s: %s is not an integer constant", target, name.Name)
		return
	}
	val, exact := constant.Int64Val(obj.Val())
	if !exact {
		pass.Reportf(vs.Pos(), "//dice:fieldpin %s: %s is not an integer constant", target, name.Name)
		return
	}
	st, typeName := resolveStruct(pass, target)
	if st == nil {
		pass.Reportf(vs.Pos(), "//dice:fieldpin %s: cannot resolve to a struct type (is the package imported?)", target)
		return
	}
	pinned[typeName] = true
	if int64(st.NumFields()) != val {
		pass.Reportf(name.Pos(),
			"field-count pin %s=%d does not match %s, which has %d fields — a field was added or removed without updating the codec (update the encoder/decoder and the pin together, and bump the format version)",
			name.Name, val, target, st.NumFields())
	}
}

// resolveStruct resolves "T" (package scope) or "pkg.T" (an import, matched
// by package name) to its struct type. The returned key is the types
// package path + name, matching referencedFields' keys.
func resolveStruct(pass *analysis.Pass, target string) (*types.Struct, string) {
	var obj types.Object
	if pkgName, typeName, ok := strings.Cut(target, "."); ok {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Name() == pkgName {
				obj = imp.Scope().Lookup(typeName)
				break
			}
		}
	} else {
		obj = pass.Pkg.Scope().Lookup(target)
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, ""
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, ""
	}
	return st, typeKey(tn)
}

func typeKey(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

// checkFieldCoverage enforces rule 2: external structs partially referenced
// in a //dice:codec package must be pinned or fully covered.
func checkFieldCoverage(pass *analysis.Pass, pinned map[string]bool) {
	type structRef struct {
		tn     *types.TypeName
		st     *types.Struct
		fields map[string]bool
		pos    ast.Node
	}
	refs := make(map[string]*structRef)

	record := func(field *types.Var, at ast.Node) {
		if field == nil || !field.IsField() {
			return
		}
		owner := ownerStruct(pass, field)
		if owner == nil {
			return
		}
		tn := owner.Obj()
		if tn.Pkg() == nil || tn.Pkg() == pass.Pkg || !analysis.IsModulePkg(tn.Pkg().Path()) {
			return // only module-external-to-this-package structs matter
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			return
		}
		key := typeKey(tn)
		r := refs[key]
		if r == nil {
			r = &structRef{tn: tn, st: st, fields: make(map[string]bool), pos: at}
			refs[key] = r
		}
		r.fields[field.Name()] = true
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if v, ok := sel.Obj().(*types.Var); ok {
						record(v, n)
					}
				}
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok {
					if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
						record(v, n)
					}
				}
			}
			return true
		})
	}

	keys := make([]string, 0, len(refs))
	for k := range refs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		r := refs[k]
		if pinned[k] {
			continue
		}
		var missing []string
		for i := 0; i < r.st.NumFields(); i++ {
			if name := r.st.Field(i).Name(); !r.fields[name] {
				missing = append(missing, name)
			}
		}
		if len(missing) == 0 {
			continue
		}
		pass.Reportf(r.pos.Pos(),
			"codec package references only %d of %d fields of %s (missing: %s) with no //dice:fieldpin — encode the missing fields or pin the count to make the omission explicit",
			len(r.fields), r.st.NumFields(), k, strings.Join(missing, ", "))
	}
}

// ownerStruct finds the named struct type that declares the field, by
// scanning the field's package scope (go/types does not link fields back to
// their owner).
func ownerStruct(pass *analysis.Pass, field *types.Var) *types.Named {
	pkg := field.Pkg()
	if pkg == nil {
		return nil
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == field {
				return named
			}
		}
	}
	return nil
}
