// Package a exercises codecpin rule 1: //dice:fieldpin constants must match
// their struct's field count. staleFields is the statsFieldCount bug shape —
// a field added without updating the codec.
package a

// Rec is the pinned struct.
type Rec struct {
	A int
	B string
	C bool
}

// Pinned is partially encoded downstream; the pin there makes it explicit.
type Pinned struct {
	X int
	Y int
}

// Full is fully covered downstream.
type Full struct {
	M int
	N int
}

// recFields pins Rec's field count correctly.
//
//dice:fieldpin Rec
const recFields = 3

// staleFields is the forgotten-update case.
//
//dice:fieldpin Rec
const staleFields = 2 // want `does not match`

// missingTarget names a type that does not exist.
//
//dice:fieldpin Gone
const missingTarget = 1 // want `cannot resolve`

// notInt pins with a non-integer constant.
//
//dice:fieldpin Rec
const notInt = "three" // want `not an integer constant`

var _ = recFields + staleFields + missingTarget

var _ = notInt
