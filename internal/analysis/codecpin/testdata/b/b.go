// Package b is a canonical-encoder package (rule 2): every external struct
// it reads partially must be pinned or fully covered.
//
//dice:codec
package b

import (
	a "github.com/dice-project/dice/fixture/a"
)

// pinnedCount makes the partial coverage of Pinned explicit.
//
//dice:fieldpin a.Pinned
const pinnedCount = 2

// EncodePartial touches only part of Rec with no pin — the "added a field,
// forgot the codec" hole.
func EncodePartial(r a.Rec) []int {
	return []int{r.A, len(r.B)} // want `references only 2 of 3 fields`
}

// EncodePinned touches only X; the pin suppresses the coverage finding.
func EncodePinned(p a.Pinned) int {
	return p.X + pinnedCount
}

// EncodeFull reads M; DecodeFull's composite literal covers N too, so Full
// is fully covered between them.
func EncodeFull(f a.Full) int {
	return f.M
}

// DecodeFull rebuilds Full with a keyed composite literal.
func DecodeFull(m, n int) a.Full {
	return a.Full{M: m, N: n}
}
