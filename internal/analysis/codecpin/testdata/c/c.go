// Package c mirrors the obgpd checkpoint pin: the dialect-only EngineStats
// counter block travels in its own pinned field run, so growing the struct
// without touching putEngineStats/engineStats must fail vet — the decoder
// would otherwise misalign the three-way mixed snapshot.
package c

// EngineStats is the obgpd-only counter block (SE<->RDE imsg counts and
// decision-process runs), as serialized by the codec.
type EngineStats struct {
	ImsgsSEToRDE int
	ImsgsRDEToSE int
	RDEDecisions int
}

// engineStatsFieldCount is the correct pin, matching internal/obgpd.
//
//dice:fieldpin EngineStats
const engineStatsFieldCount = 3

// staleEngineStatsFieldCount is the forgotten-update shape: a counter was
// added to EngineStats but the codec kept the old count.
//
//dice:fieldpin EngineStats
const staleEngineStatsFieldCount = 2 // want `does not match`

var _ = engineStatsFieldCount + staleEngineStatsFieldCount
