package codecpin_test

import (
	"testing"

	"github.com/dice-project/dice/internal/analysis"
	"github.com/dice-project/dice/internal/analysis/codecpin"
	"github.com/dice-project/dice/internal/analysis/vettest"
)

func TestCodecpin(t *testing.T) {
	vettest.Run(t, []*analysis.Analyzer{codecpin.Analyzer}, "testdata/a", "testdata/b", "testdata/c")
}
