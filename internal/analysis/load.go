package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Unit is one loaded, type-checked package ready for analysis.
type Unit struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	Export     string
	GoFiles    []string
	Imports    []string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// Loader turns package patterns into type-checked Units. It resolves every
// import through the toolchain's compiled export data (`go list -deps
// -export`), so loading is fast and exactly matches what the compiler saw,
// while the analyzed packages themselves are parsed and type-checked from
// source (analyzers need the ASTs).
type Loader struct {
	// Dir is the working directory for go commands (module root or below).
	Dir string

	fset    *token.FileSet
	exports map[string]string         // import path -> export data file
	srcPkgs map[string]*types.Package // import path -> source-checked package
	imp     types.Importer
}

// NewLoader returns a loader rooted at dir.
func NewLoader(dir string) *Loader {
	return &Loader{
		Dir:     dir,
		fset:    token.NewFileSet(),
		exports: make(map[string]string),
		srcPkgs: make(map[string]*types.Package),
	}
}

// Fset returns the loader's file set (shared across all loaded units).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// goList runs `go list` with the given arguments and decodes the JSON stream.
func (l *Loader) goList(args ...string) ([]*listPackage, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, args...)...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decode go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Load resolves the patterns to module packages, type-checks each from
// source, and returns them in dependency order (imports before importers),
// which is what the driver's fact propagation relies on.
func (l *Loader) Load(patterns ...string) ([]*Unit, error) {
	// One -deps -export walk gives every transitive dependency's compiled
	// export data (building anything stale as a side effect) plus the set
	// of target packages themselves.
	all, err := l.goList(append([]string{"-deps", "-export"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	byPath := make(map[string]*listPackage, len(all))
	for _, p := range all {
		if p.Error != nil && p.Standard {
			continue
		}
		byPath[p.ImportPath] = p
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}

	inTarget := make(map[string]bool, len(targets))
	order := make([]string, 0, len(targets))
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", t.ImportPath, t.Error.Err)
		}
		if t.Name == "" {
			continue // pattern matched nothing concrete
		}
		inTarget[t.ImportPath] = true
		order = append(order, t.ImportPath)
	}
	// Dependency order: `go list -deps` already emits dependencies first;
	// filter that stream down to the targets.
	ordered := make([]string, 0, len(order))
	seen := make(map[string]bool, len(order))
	for _, p := range all {
		if inTarget[p.ImportPath] && !seen[p.ImportPath] {
			seen[p.ImportPath] = true
			ordered = append(ordered, p.ImportPath)
		}
	}
	for _, p := range order { // targets that -deps somehow missed
		if !seen[p] {
			seen[p] = true
			ordered = append(ordered, p)
		}
	}

	units := make([]*Unit, 0, len(ordered))
	for _, path := range ordered {
		lp := byPath[path]
		if lp == nil {
			for _, t := range targets {
				if t.ImportPath == path {
					lp = t
				}
			}
		}
		u, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// LoadDir type-checks a single directory of Go files as one synthetic
// package — the fixture-test entry point, where packages live under
// testdata and are invisible to go list. Imports still resolve through the
// export map, so fixtures may import real module packages; the caller must
// have Loaded (or Warmed) those first.
func (l *Loader) LoadDir(dir, importPath string) (*Unit, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	lp := &listPackage{ImportPath: importPath, Dir: dir, GoFiles: files}
	return l.check(lp)
}

// Warm ensures export data exists for the patterns' transitive dependencies
// without type-checking anything — used before LoadDir so fixture imports
// resolve.
func (l *Loader) Warm(patterns ...string) error {
	all, err := l.goList(append([]string{"-deps", "-export"}, patterns...)...)
	if err != nil {
		return err
	}
	for _, p := range all {
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	return nil
}

// check parses and type-checks one package from source.
func (l *Loader) check(lp *listPackage) (*Unit, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l.exportImporter(),
		Error:    func(error) {}, // collect the first hard error below
	}
	pkg, err := conf.Check(lp.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %v", lp.ImportPath, err)
	}
	l.srcPkgs[lp.ImportPath] = pkg
	return &Unit{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       l.fset,
		Files:      files,
		Pkg:        pkg,
		Info:       info,
	}, nil
}

// exportImporter resolves imports: packages already type-checked from source
// in this run (module units, earlier fixture dirs) are reused by identity;
// everything else comes from the compiled export data recorded by Load/Warm.
// One importer instance serves the whole run, so every unit sees the same
// *types.Package for a given import path.
func (l *Loader) exportImporter() types.Importer {
	if l.imp == nil {
		lookup := func(path string) (io.ReadCloser, error) {
			exp, ok := l.exports[path]
			if !ok {
				return nil, fmt.Errorf("analysis: no export data for %q (not a dependency of the loaded patterns)", path)
			}
			return os.Open(exp)
		}
		l.imp = &loaderImporter{src: l.srcPkgs, gc: importer.ForCompiler(l.fset, "gc", lookup)}
	}
	return l.imp
}

// loaderImporter prefers source-checked packages over export data.
type loaderImporter struct {
	src map[string]*types.Package
	gc  types.Importer
}

func (i *loaderImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.src[path]; ok {
		return p, nil
	}
	return i.gc.Import(path)
}
