package analysis_test

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"github.com/dice-project/dice/internal/analysis"
)

const helperFixture = `// Package q exercises the shared type-query helpers.
package q

type T struct{ N int }

func (t *T) Ptr()    {}
func (t T) Val()     {}
func (t T) GobEncode() ([]byte, error) { return nil, nil }

func Plain() {}

type M map[string]int

func Use() {
	var t T
	t.Ptr()
	t.Val()
	Plain()
	f := Plain
	f()
	_ = len("x")
}
`

// loadHelperFixture type-checks the fixture and returns its unit plus the
// driver that ran over it.
func loadHelperFixture(t *testing.T) (*analysis.Unit, *analysis.Loader) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "q.go"), []byte(helperFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader(dir)
	u, err := l.LoadDir(dir, analysis.ModulePath+"/fixture/q")
	if err != nil {
		t.Fatal(err)
	}
	return u, l
}

// TestTypeHelpers covers the type-query surface every analyzer builds on:
// callee resolution, receiver and named-type paths, map unwrapping and
// method-set lookup.
func TestTypeHelpers(t *testing.T) {
	u, l := loadHelperFixture(t)
	if l.Fset() == nil {
		t.Fatal("loader has no file set")
	}
	if !analysis.IsModulePkg(u.Pkg.Path()) || analysis.IsModulePkg("example.com/other") {
		t.Errorf("IsModulePkg misclassified %q", u.Pkg.Path())
	}

	scope := u.Pkg.Scope()
	tObj := scope.Lookup("T").Type()
	named := tObj.(*types.Named)

	var keys []string
	var callees []*types.Func
	for _, f := range u.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn := analysis.CalleeFunc(u.Info, call); fn != nil {
					callees = append(callees, fn)
					keys = append(keys, analysis.FuncKey(fn))
				}
			}
			return true
		})
	}
	// t.Ptr(), t.Val(), Plain() resolve; f() (function value) and len (builtin)
	// must not.
	if len(callees) != 3 {
		t.Fatalf("resolved %d callees %v, want 3", len(callees), keys)
	}
	pkg := u.Pkg.Path()
	wantKeys := []string{pkg + ".(T).Ptr", pkg + ".(T).Val", pkg + ".Plain"}
	for i, want := range wantKeys {
		if keys[i] != want {
			t.Errorf("FuncKey[%d] = %q, want %q", i, keys[i], want)
		}
	}

	ptrMethod, valMethod, plain := callees[0], callees[1], callees[2]
	if analysis.RecvNamed(ptrMethod) != named || analysis.RecvNamed(valMethod) != named {
		t.Error("RecvNamed did not erase receiver pointerness to T")
	}
	if analysis.RecvNamed(plain) != nil {
		t.Error("RecvNamed(Plain) != nil")
	}
	if !analysis.IsMethodOn(ptrMethod, pkg, "T") || analysis.IsMethodOn(plain, pkg, "T") {
		t.Error("IsMethodOn misclassified")
	}
	if !analysis.IsPkgFunc(plain, pkg, "Plain") || analysis.IsPkgFunc(ptrMethod, pkg, "Ptr") {
		t.Error("IsPkgFunc misclassified")
	}

	if p, n := analysis.NamedPath(types.NewPointer(tObj)); p != pkg || n != "T" {
		t.Errorf("NamedPath(*T) = %q.%q", p, n)
	}
	if p, n := analysis.NamedPath(types.Typ[types.Int]); p != "" || n != "" {
		t.Errorf("NamedPath(int) = %q.%q, want empty", p, n)
	}

	mType := scope.Lookup("M").Type()
	if analysis.MapType(mType) == nil {
		t.Error("MapType did not resolve named map M")
	}
	if analysis.MapType(tObj) != nil || analysis.MapType(nil) != nil {
		t.Error("MapType resolved a non-map")
	}

	if !analysis.HasMethod(tObj, "GobEncode") || !analysis.HasMethod(tObj, "Ptr") {
		t.Error("HasMethod missed a method in *T's method set")
	}
	if analysis.HasMethod(tObj, "Nope") || analysis.HasMethod(nil, "Ptr") {
		t.Error("HasMethod invented a method")
	}
}

// TestFactPropagation covers the fact store end to end: an analyzer exports
// facts keyed by FuncKey while running and reads them back, and the driver
// exposes the store for assertions.
func TestFactPropagation(t *testing.T) {
	u, _ := loadHelperFixture(t)
	factAnalyzer := &analysis.Analyzer{
		Name: "facts",
		Doc:  "exports a fact per function declaration",
		Run: func(pass *analysis.Pass) error {
			for _, f := range pass.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					fn := pass.TypesInfo.Defs[fd.Name].(*types.Func)
					pass.ExportFact(analysis.FuncKey(fn), fd.Name.Name)
				}
			}
			if _, ok := pass.Fact(pass.Pkg.Path() + ".Plain"); !ok {
				pass.Reportf(pass.Files[0].Pos(), "own fact not readable")
			}
			if _, ok := pass.Fact("no.such/pkg.Missing"); ok {
				pass.Reportf(pass.Files[0].Pos(), "phantom fact")
			}
			return nil
		},
	}
	d := analysis.NewDriver(factAnalyzer)
	findings, err := d.Run([]*analysis.Unit{u})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("unexpected findings: %v", findings)
	}
	keys := d.Facts().Keys("facts")
	// Five func decls: Ptr, Val, GobEncode, Plain, Use.
	if len(keys) != 5 {
		t.Errorf("exported %d facts %v, want 5", len(keys), keys)
	}
	if v, ok := d.Facts().Keys("other"), d.Facts(); len(v) != 0 || ok == nil {
		t.Errorf("foreign analyzer namespace not empty: %v", v)
	}
}

// TestHasDirective covers doc-comment directive detection, including the
// prefix-match trap (//dice:lease must not match //dice:leasebalance).
func TestHasDirective(t *testing.T) {
	doc := &ast.CommentGroup{List: []*ast.Comment{
		{Text: "// Lease acquires a clone."},
		{Text: "//dice:lease"},
	}}
	if !analysis.HasDirective(doc, "lease") {
		t.Error("exact directive not found")
	}
	if analysis.HasDirective(doc, "leas") {
		t.Error("prefix matched a longer directive name")
	}
	argDoc := &ast.CommentGroup{List: []*ast.Comment{{Text: "//dice:fieldpin node.RouterStats"}}}
	if !analysis.HasDirective(argDoc, "fieldpin") {
		t.Error("directive with args not found")
	}
	if analysis.HasDirective(argDoc, "fieldpinned") {
		t.Error("longer name matched shorter directive")
	}
	if analysis.HasDirective(nil, "lease") {
		t.Error("nil doc group matched")
	}
}
