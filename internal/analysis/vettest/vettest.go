// Package vettest runs analyzers over fixture directories and checks their
// findings against `// want "regexp"` comments, in the style of
// golang.org/x/tools/go/analysis/analysistest — reimplemented on the
// stdlib-only framework because the module carries no external
// dependencies.
//
// A fixture is a directory of Go files forming one package. Every line that
// must produce a finding carries a trailing comment of the form
//
//	// want `regexp`
//	// want "regexp" "second regexp"
//
// with one pattern per expected finding on that line. Findings on lines
// with no matching want, and wants no finding matched, both fail the test.
// Fixtures are loaded under the synthetic import path
// <module>/fixture/<basename>, so later fixture dirs can import earlier
// ones (cross-package fact tests) and analyzers that gate on module
// membership see them as in-module.
package vettest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/dice-project/dice/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run analyzes the fixture dirs (in order — put imported fixtures first)
// with the given analyzers and asserts findings match the want comments.
func Run(t *testing.T, analyzers []*analysis.Analyzer, dirs ...string) {
	t.Helper()
	root := moduleRoot(t)
	l := analysis.NewLoader(root)
	if err := l.Warm("./..."); err != nil {
		t.Fatalf("warming export data: %v", err)
	}
	var units []*analysis.Unit
	wants := make(map[string][]*want) // file:line -> expectations
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			t.Fatal(err)
		}
		u, err := l.LoadDir(abs, analysis.ModulePath+"/fixture/"+filepath.Base(abs))
		if err != nil {
			t.Fatalf("loading fixture %s: %v", dir, err)
		}
		units = append(units, u)
		collectWants(t, abs, wants)
	}
	d := analysis.NewDriver(analyzers...)
	findings, err := d.Run(units)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		if !claim(wants[key], f.Message) {
			t.Errorf("unexpected finding at %s:%d [%s]: %s",
				f.Position.Filename, f.Position.Line, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing finding at %s: no diagnostic matched %q", key, w.re.String())
			}
		}
	}
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// claim marks the first unmatched want whose pattern matches msg.
func claim(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// collectWants scans the fixture dir's Go files for want comments.
func collectWants(t *testing.T, dir string, wants map[string][]*want) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, i+1)
			for _, pat := range splitPatterns(t, path, i+1, m[1]) {
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, pat, err)
				}
				wants[key] = append(wants[key], &want{re: re})
			}
		}
	}
}

// splitPatterns parses the quoted (or backquoted) patterns after "want".
func splitPatterns(t *testing.T, file string, line int, s string) []string {
	t.Helper()
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"', '`':
			end := strings.IndexByte(s[1:], s[0])
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern: %s", file, line, s)
			}
			raw := s[:end+2]
			pat, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %s: %v", file, line, raw, err)
			}
			pats = append(pats, pat)
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s:%d: want patterns must be quoted: %s", file, line, s)
		}
	}
	return pats
}

// moduleRoot walks up from the working directory to go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod found above working directory")
		}
		dir = parent
	}
}
