// Package detrange flags `range` over a map whose loop body reaches a
// deterministic encoder, hasher or wire writer — the exact bug class behind
// the gob map-order nondeterminism that corrupted cross-process deltas
// (PR 6) and forced the live-mode ring onto fingerprint-driven delta
// accounting (PR 5/7). Go map iteration order is deliberately randomized,
// so any bytes produced inside such a loop differ run to run: content
// hashes stop matching, binary deltas explode, and "identical" snapshots
// stop comparing equal.
//
// Sinks are:
//
//   - any method on internal/checkpoint/codec.Writer (the deterministic
//     checkpoint encoder);
//   - Write/Sum-shaped methods on hash.Hash implementations (hash/*,
//     crypto/* packages) — fingerprints must be byte-stable;
//   - (*encoding/gob.Encoder).Encode and EncodeValue — the legacy wire
//     format;
//   - fmt.Fprint* whose first argument is one of the above;
//   - any module function that itself (transitively) writes to one of the
//     above — propagated as a cross-package fact, so a helper that wraps
//     the encoder taints its callers.
//
// A second rule flags gob-encoding a plain map value directly: gob writes
// map entries in iteration order, so a map without a canonical GobEncode
// (node.PeerRouteMap-style sorted encoding) produces unstable bytes even
// without an explicit range.
//
// The fix is the standard one: collect the keys, sort them, and iterate the
// sorted slice — or give the map type a canonical encoder. Intentional
// exceptions take `//dice:allow detrange <reason>`.
package detrange

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/dice-project/dice/internal/analysis"
)

// Analyzer is the detrange pass.
var Analyzer = &analysis.Analyzer{
	Name: "detrange",
	Doc:  "flags map iteration that feeds encoders, hashers or wire writers (nondeterministic byte output)",
	Run:  run,
}

const codecPkg = analysis.ModulePath + "/internal/checkpoint/codec"

// hashMethodNames are the byte-absorbing methods of hash.Hash and friends.
var hashMethodNames = map[string]bool{
	"Write": true, "Sum": true, "Sum32": true, "Sum64": true, "WriteString": true,
}

func run(pass *analysis.Pass) error {
	// Pass 1: compute which functions in this package write to a sink,
	// directly or through calls, and export the result as facts for
	// downstream packages. Iterate to a fixpoint so intra-package call
	// chains resolve independent of declaration order.
	funcs := map[string]*ast.FuncDecl{} // FuncKey -> decl
	sinks := map[string]bool{}          // FuncKey -> writes to encoder
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			funcs[analysis.FuncKey(obj)] = fd
		}
	}
	for changed := true; changed; {
		changed = false
		for key, fd := range funcs {
			if sinks[key] {
				continue
			}
			if bodyReachesSink(pass, fd.Body, sinks) {
				sinks[key] = true
				changed = true
			}
		}
	}
	for key := range sinks {
		pass.ExportFact(key, true)
	}

	// Pass 2: flag map ranges whose body reaches a sink, and plain maps
	// fed to gob whole.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				checkRange(pass, n, sinks)
			case *ast.CallExpr:
				checkGobMapArg(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkRange reports a range statement iterating a map whose body reaches a
// sink.
func checkRange(pass *analysis.Pass, rng *ast.RangeStmt, local map[string]bool) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if analysis.MapType(t) == nil {
		return
	}
	sink := firstSinkCall(pass, rng.Body, local)
	if sink == nil {
		return
	}
	what := describeCallee(pass, sink)
	pass.Reportf(rng.Pos(),
		"range over map %s feeds %s inside the loop body; map iteration order is randomized — iterate sorted keys instead (or //dice:allow detrange <reason>)",
		types.TypeString(t, nil), what)
}

// checkGobMapArg reports gob.Encoder.Encode(m) where m is a plain map
// without a canonical GobEncode.
func checkGobMapArg(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || !analysis.IsMethodOn(fn, "encoding/gob", "Encoder") {
		return
	}
	if fn.Name() != "Encode" && fn.Name() != "EncodeValue" {
		return
	}
	for _, arg := range call.Args {
		t := pass.TypesInfo.TypeOf(arg)
		if t == nil || analysis.MapType(t) == nil {
			continue
		}
		if analysis.HasMethod(t, "GobEncode") {
			continue // PeerRouteMap-style canonical encoding
		}
		pass.Reportf(arg.Pos(),
			"gob-encoding plain map %s: entry order is randomized, so encodings of equal maps differ — use a type with a sorted GobEncode (see node.PeerRouteMap)",
			types.TypeString(t, nil))
	}
}

// bodyReachesSink reports whether any call in the body is a sink.
func bodyReachesSink(pass *analysis.Pass, body ast.Node, local map[string]bool) bool {
	return firstSinkCall(pass, body, local) != nil
}

// firstSinkCall returns the first sink call expression found under n.
func firstSinkCall(pass *analysis.Pass, n ast.Node, local map[string]bool) *ast.CallExpr {
	var found *ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSinkCall(pass, call, local) {
			found = call
			return false
		}
		return true
	})
	return found
}

// isSinkCall classifies one call as encoder-reaching.
func isSinkCall(pass *analysis.Pass, call *ast.CallExpr, local map[string]bool) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	// Direct: codec.Writer methods.
	if analysis.IsMethodOn(fn, codecPkg, "Writer") {
		return true
	}
	// Direct: hash.Hash Write/Sum on hash/crypto implementations, whether
	// called via the interface (receiver in package "hash") or concretely.
	if named := analysis.RecvNamed(fn); named != nil && named.Obj().Pkg() != nil {
		p := named.Obj().Pkg().Path()
		if (p == "hash" || strings.HasPrefix(p, "hash/") || strings.HasPrefix(p, "crypto/")) &&
			hashMethodNames[fn.Name()] {
			return true
		}
	}
	if iface := recvInterfaceHash(pass, call); iface && hashMethodNames[fn.Name()] {
		return true
	}
	// Direct: the legacy gob encoder.
	if analysis.IsMethodOn(fn, "encoding/gob", "Encoder") &&
		(fn.Name() == "Encode" || fn.Name() == "EncodeValue") {
		return true
	}
	// fmt.Fprint* into a hasher or codec writer.
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 {
		if t := pass.TypesInfo.TypeOf(call.Args[0]); t != nil {
			if p, name := analysis.NamedPath(t); p == codecPkg && name == "Writer" {
				return true
			}
			if implementsHash(t) {
				return true
			}
		}
	}
	// Transitive: a module function already known to write to a sink.
	if fn.Pkg() != nil && analysis.IsModulePkg(fn.Pkg().Path()) {
		key := analysis.FuncKey(fn)
		if local[key] {
			return true
		}
		if _, ok := pass.Fact(key); ok {
			return true
		}
	}
	return false
}

// recvInterfaceHash reports whether the call's receiver expression has an
// interface type that embeds hash.Hash semantics (io.Writer from package
// hash).
func recvInterfaceHash(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return implementsHash(t)
}

// implementsHash reports whether t is (or points to) a named type declared
// in hash/* or crypto/*, or an interface from package hash.
func implementsHash(t types.Type) bool {
	p, _ := analysis.NamedPath(t)
	return p == "hash" || strings.HasPrefix(p, "hash/") || strings.HasPrefix(p, "crypto/")
}

// describeCallee renders the sink for the diagnostic.
func describeCallee(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "an encoder"
	}
	if named := analysis.RecvNamed(fn); named != nil {
		return named.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
