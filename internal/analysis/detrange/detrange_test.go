package detrange_test

import (
	"testing"

	"github.com/dice-project/dice/internal/analysis"
	"github.com/dice-project/dice/internal/analysis/detrange"
	"github.com/dice-project/dice/internal/analysis/vettest"
)

func TestDetrange(t *testing.T) {
	vettest.Run(t, []*analysis.Analyzer{detrange.Analyzer}, "testdata/a", "testdata/b", "testdata/c")
}
