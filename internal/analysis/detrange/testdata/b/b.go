// Package b exercises detrange's cross-package taint: the encoder-reaching
// helper lives in fixture a and taints this package's map range through an
// exported fact.
package b

import (
	"hash"

	a "github.com/dice-project/dice/fixture/a"
)

// BadCrossPackage reaches a hasher only through a helper in another package.
func BadCrossPackage(h hash.Hash, m map[string]bool) {
	for k := range m { // want `range over map`
		a.Absorb(h, k)
	}
}

// GoodCrossPackage iterates a slice, not a map.
func GoodCrossPackage(h hash.Hash, keys []string) {
	for _, k := range keys {
		a.Absorb(h, k)
	}
}

// GoodNoSink ranges a map without any byte-producing call.
func GoodNoSink(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
