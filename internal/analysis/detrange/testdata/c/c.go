// Package c mirrors the obgpd renderer and checkpoint shapes: neighbor
// stanzas and per-peer counter slabs are keyed by map, and both the config
// fingerprint and the canonical codec writer are order-sensitive sinks. The
// real dialect sorts before it writes; re-introducing a raw map range into
// either path must fail vet.
package c

import (
	"crypto/sha256"
	"fmt"
	"sort"

	"github.com/dice-project/dice/internal/checkpoint/codec"
)

// Neighbor is the per-peer stanza input.
type Neighbor struct {
	AS   int
	Desc string
}

// BadRender fingerprints the rendered config in map iteration order — the
// Render/ParseConfig round-trip would flake between runs.
func BadRender(neighbors map[string]Neighbor) []byte {
	h := sha256.New()
	for addr, n := range neighbors { // want `range over map`
		fmt.Fprintf(h, "neighbor %s { remote-as %d }\n", addr, n.AS)
	}
	return h.Sum(nil)
}

// GoodRender renders neighbors sorted by address, as the dialect does.
func GoodRender(neighbors map[string]Neighbor) []byte {
	addrs := make([]string, 0, len(neighbors))
	for a := range neighbors {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	h := sha256.New()
	for _, a := range addrs {
		fmt.Fprintf(h, "neighbor %s { remote-as %d }\n", a, neighbors[a].AS)
	}
	return h.Sum(nil)
}

// BadStats streams the per-neighbor counter slab into the checkpoint
// writer unsorted.
func BadStats(w *codec.Writer, counters map[string]uint64) {
	for addr, n := range counters { // want `range over map`
		w.String(addr)
		w.Uvarint(n)
	}
}

// GoodStats writes the slab over sorted keys.
func GoodStats(w *codec.Writer, counters map[string]uint64) {
	addrs := make([]string, 0, len(counters))
	for a := range counters {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, a := range addrs {
		w.String(a)
		w.Uvarint(counters[a])
	}
}
