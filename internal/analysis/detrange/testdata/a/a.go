// Package a exercises the detrange analyzer: map ranges feeding hashers,
// gob encoders and the deterministic checkpoint codec. BadHash is the
// PR 6 bug shape (fingerprint fed in map iteration order) verbatim.
package a

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"hash"
	"sort"

	"github.com/dice-project/dice/internal/checkpoint/codec"
)

// BadHash folds map entries into a fingerprint in iteration order.
func BadHash(m map[string]int) []byte {
	h := sha256.New()
	for k, v := range m { // want `range over map`
		fmt.Fprintf(h, "%s=%d", k, v)
	}
	return h.Sum(nil)
}

// GoodHash sorts the keys first; the collecting loop touches no sink.
func GoodHash(m map[string]int) []byte {
	h := sha256.New()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d", k, m[k])
	}
	return h.Sum(nil)
}

// BadWrite hits the hasher's Write method directly.
func BadWrite(m map[string]bool) []byte {
	h := sha256.New()
	for k := range m { // want `range over map`
		h.Write([]byte(k))
	}
	return h.Sum(nil)
}

// BadCodec streams map entries into the deterministic checkpoint writer —
// re-introducing an unsorted map range into the codec fails vet.
func BadCodec(w *codec.Writer, m map[uint64]string) {
	for k, v := range m { // want `range over map`
		w.Uvarint(k)
		w.String(v)
	}
}

// GoodCodec iterates the sorted keys.
func GoodCodec(w *codec.Writer, m map[uint64]string) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		w.Uvarint(k)
		w.String(m[k])
	}
}

// BadGob hands gob a plain map; gob serializes entries in iteration order.
func BadGob(m map[string]string) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil { // want `gob-encoding plain map`
		return nil, err
	}
	return buf.Bytes(), nil
}

// canonical has a sorted GobEncode, so gob-encoding it is deterministic.
type canonical map[string]string

// GobEncode renders entries in sorted key order.
func (c canonical) GobEncode() ([]byte, error) {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&buf, "%s=%s;", k, c[k])
	}
	return buf.Bytes(), nil
}

// GobDecode exists to keep the type symmetric.
func (c canonical) GobDecode([]byte) error { return nil }

// GoodGob encodes a map type with a canonical encoder.
func GoodGob(m canonical) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Absorb wraps a hasher write; callers inherit the taint as a fact.
func Absorb(h hash.Hash, s string) {
	h.Write([]byte(s))
}

// BadViaHelper reaches the hasher only through Absorb (same package).
func BadViaHelper(h hash.Hash, m map[string]bool) {
	for k := range m { // want `range over map`
		Absorb(h, k)
	}
}

// Allowed demonstrates suppression with a mandatory reason.
func Allowed(m map[string]int) int {
	n := 0
	//dice:allow detrange commutative sum of per-entry hashes, order cannot change the result
	for _, v := range m {
		h := sha256.New()
		fmt.Fprintf(h, "%d", v)
		n += int(h.Sum(nil)[0])
	}
	return n
}
