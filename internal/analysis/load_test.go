package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func TestLoaderLoadsModulePackageInDependencyOrder(t *testing.T) {
	l := NewLoader(moduleRoot(t))
	units, err := l.Load("github.com/dice-project/dice/internal/cluster", "github.com/dice-project/dice/internal/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 2 {
		t.Fatalf("got %d units, want 2", len(units))
	}
	// checkpoint is a dependency of cluster, so it must come first.
	if units[0].ImportPath != "github.com/dice-project/dice/internal/checkpoint" {
		t.Fatalf("dependency order violated: first unit is %s", units[0].ImportPath)
	}
	for _, u := range units {
		if u.Pkg == nil || !u.Pkg.Complete() {
			t.Fatalf("%s: incomplete type-check", u.ImportPath)
		}
		if len(u.Files) == 0 {
			t.Fatalf("%s: no files", u.ImportPath)
		}
	}
	// The cluster package must see ClonePool with its Lease method.
	pool := units[1].Pkg.Scope().Lookup("ClonePool")
	if pool == nil {
		t.Fatal("cluster.ClonePool not found")
	}
}

func TestLoadDirResolvesModuleImports(t *testing.T) {
	root := moduleRoot(t)
	l := NewLoader(root)
	if err := l.Warm("github.com/dice-project/dice/internal/checker"); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	src := `package fixture

import "github.com/dice-project/dice/internal/checker"

func S() checker.Summary { return checker.Summary{Domain: "d"} }
`
	if err := os.WriteFile(filepath.Join(dir, "f.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	u, err := l.LoadDir(dir, "example.test/fixture")
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Pkg.Name(); got != "fixture" {
		t.Fatalf("package name %q", got)
	}
}
