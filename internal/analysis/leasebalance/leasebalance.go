// Package leasebalance checks that every clone lease is matched by exactly
// one release on every path out of the acquiring function — the invariant
// the clone-lifecycle audits of PRs 3 and 6 kept re-proving by hand. A
// leaked lease never fails a test directly; it drifts ClonePool.Outstanding
// until a soak or a cancelled campaign strands clones, which is why the
// check belongs in vet rather than in test assertions that must remember
// to run.
//
// Obligations:
//
//   - (*cluster.ClonePool).Lease: the returned *Cluster must be released
//     (pool.Release(c)), returned to the caller (ownership transfers), or
//     stored into a longer-lived structure (field, slice, map, channel —
//     the pool's own free list is the canonical example).
//   - A function annotated `//dice:lease` returns a release closure (the
//     first func() result); callers must invoke it, defer it, or pass it
//     on. Campaign.leaseClone is the canonical carrier.
//
// The walker is path-sensitive over the statement structure: branches of
// if/switch/select are explored separately and an obligation is reported
// (at its acquire site) if any path reaches a return with the lease
// neither released nor transferred. The error path of the acquire itself
// is understood — after `c, err := pool.Lease(); if err != nil { return }`
// there is nothing to release on the error branch.
//
// Known, deliberate incompletenesses (the analyzer is a tripwire, not a
// verifier): functions containing goto are skipped; break/continue paths
// are not followed; a release inside any function literal in the body is
// trusted to run. These choices trade missed exotic leaks for zero noise
// on idiomatic code.
//
// Suppression: `//dice:allow leasebalance <reason>`.
package leasebalance

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/dice-project/dice/internal/analysis"
)

// Analyzer is the leasebalance pass.
var Analyzer = &analysis.Analyzer{
	Name: "leasebalance",
	Doc:  "checks every ClonePool lease is released, transferred or stored on all paths",
	Run:  run,
}

const clusterPkg = analysis.ModulePath + "/internal/cluster"

func run(pass *analysis.Pass) error {
	// Export //dice:lease facts: FuncKey -> index of the release-func result.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !analysis.HasDirective(fd.Doc, "lease") {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			idx := releaseResultIndex(obj)
			if idx < 0 {
				pass.Reportf(fd.Pos(), "//dice:lease function %s has no func() result to treat as the release obligation", fd.Name.Name)
				continue
			}
			pass.ExportFact("lease:"+analysis.FuncKey(obj), idx)
		}
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return true // nested func lits are checked separately below
			case *ast.FuncLit:
				checkBody(pass, n.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// releaseResultIndex finds the first func()-typed result of fn.
func releaseResultIndex(fn *types.Func) int {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Results().Len(); i++ {
		if s, ok := sig.Results().At(i).Type().Underlying().(*types.Signature); ok &&
			s.Params().Len() == 0 {
			return i
		}
	}
	return -1
}

// obligation kinds.
const (
	obCluster = iota // a leased *cluster.Cluster
	obFunc           // a release closure from a //dice:lease function
)

// obligation is one tracked lease within one function body.
type obligation struct {
	v      *types.Var // the variable holding the lease or release closure
	errVar *types.Var // the acquire's error result, if assigned
	pos    token.Pos  // acquire site, where leaks are reported
	kind   int
	what   string // human name for the diagnostic
	leaked bool
}

// state maps tracked variables to whether their obligation is still
// outstanding on the current path.
type state map[*obligation]bool

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// checker walks one function body.
type checker struct {
	pass    *analysis.Pass
	obs     []*obligation
	escaped map[*types.Var]bool
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	// Functions with goto are beyond the structural walker.
	hasGoto := false
	ast.Inspect(body, func(n ast.Node) bool {
		if b, ok := n.(*ast.BranchStmt); ok && b.Tok == token.GOTO {
			hasGoto = true
		}
		_, isLit := n.(*ast.FuncLit)
		return !hasGoto && (n == body || !isLit)
	})
	if hasGoto {
		return
	}
	c := &checker{pass: pass, escaped: make(map[*types.Var]bool)}
	c.findEscapes(body)
	st := make(state)
	c.walk(body.List, st)
	// Paths that fall off the end of the function.
	for ob, outstanding := range st {
		if outstanding {
			ob.leaked = true
		}
	}
	for _, ob := range c.obs {
		if ob.leaked && !c.escaped[ob.v] {
			c.pass.Reportf(ob.pos,
				"%s is not released on every path: match the lease with exactly one Release/Discard (defer it right after the error check), return it to transfer ownership, or //dice:allow leasebalance <reason>",
				ob.what)
		}
	}
}

// findEscapes pre-scans for uses that move a lease beyond this function's
// responsibility: stores into fields/indexes/globals, channel sends,
// composite literals — and, for release closures, being passed as a call
// argument (t.Cleanup(release), wrapper helpers).
func (c *checker) findEscapes(body *ast.BlockStmt) {
	mark := func(e ast.Expr) {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
				c.escaped[v] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if _, ok := ast.Unparen(lhs).(*ast.Ident); ok {
					continue // plain local assignment, handled by the walker
				}
				// x.f = v / m[k] = v / *p = v: the value outlives the walk.
				if i < len(n.Rhs) {
					mark(n.Rhs[i])
				} else if len(n.Rhs) == 1 {
					mark(n.Rhs[0])
				}
			}
		case *ast.SendStmt:
			mark(n.Value)
		case *ast.CallExpr:
			// A release closure passed as an argument (t.Cleanup(release),
			// wrapper helpers) transfers the obligation to the callee.
			for _, a := range n.Args {
				id, ok := ast.Unparen(a).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
				if !ok {
					continue
				}
				if sig, ok := v.Type().Underlying().(*types.Signature); ok && sig.Params().Len() == 0 {
					c.escaped[v] = true
				}
			}
		case *ast.CompositeLit:
			for _, e := range n.Elts {
				if kv, ok := e.(*ast.KeyValueExpr); ok {
					mark(kv.Value)
				} else {
					mark(e)
				}
			}
		}
		return true
	})
}

// walk processes a statement list on the given state, returning whether
// every path through it terminated (returned).
func (c *checker) walk(stmts []ast.Stmt, st state) bool {
	for _, s := range stmts {
		if c.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (c *checker) walkStmt(s ast.Stmt, st state) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.handleAssign(s, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					c.handleBinding(identsOf(vs.Names), vs.Values, st)
				}
			}
		}
	case *ast.ExprStmt:
		c.scanReleases(s.X, st)
		c.checkDroppedAcquire(s.X)
	case *ast.DeferStmt:
		c.scanReleases(s.Call, st)
	case *ast.GoStmt:
		c.scanReleases(s.Call, st)
	case *ast.ReturnStmt:
		for ob, outstanding := range st {
			if !outstanding {
				continue
			}
			if returnsVar(c.pass, s, ob.v) {
				st[ob] = false // ownership transfers to the caller
				continue
			}
			ob.leaked = true
		}
		return true
	case *ast.BlockStmt:
		return c.walk(s.List, st)
	case *ast.IfStmt:
		return c.walkIf(s, st)
	case *ast.ForStmt:
		c.walkLoop(s.Body, s.Init, st)
	case *ast.RangeStmt:
		c.walkLoop(s.Body, nil, st)
	case *ast.SwitchStmt:
		return c.walkCases(s.Body, s.Init, st, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		return c.walkCases(s.Body, s.Init, st, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		return c.walkCases(s.Body, nil, st, true)
	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, st)
	case *ast.BranchStmt:
		// break/continue: path leaves this construct; treat as terminated
		// without an obligation check (documented incompleteness).
		return true
	}
	return false
}

// handleAssign processes x, y := rhs bindings.
func (c *checker) handleAssign(s *ast.AssignStmt, st state) {
	c.handleBinding(s.Lhs, s.Rhs, st)
}

// handleBinding recognizes acquire calls on the right-hand side and binds
// their obligations to the left-hand variables; it also scans the RHS for
// releases (rare but legal).
func (c *checker) handleBinding(lhs []ast.Expr, rhs []ast.Expr, st state) {
	for _, r := range rhs {
		c.scanReleases(r, st)
	}
	if len(rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	kind, obIdx, what := c.acquireShape(call)
	if obIdx < 0 {
		return
	}
	if obIdx >= len(lhs) {
		return
	}
	obVar := varOf(c.pass, lhs[obIdx])
	if obVar == nil {
		c.pass.Reportf(call.Pos(), "%s is discarded: the lease can never be released", what)
		return
	}
	// Reassigning a variable that still holds an outstanding lease loses
	// the only handle to it.
	for ob, outstanding := range st {
		if outstanding && ob.v == obVar {
			ob.leaked = true
		}
	}
	ob := &obligation{v: obVar, pos: call.Pos(), kind: kind, what: what}
	// The trailing error result, if bound to a variable, gates the
	// obligation: on the error path nothing was leased.
	if n := len(lhs); n > obIdx+1 {
		if errV := varOf(c.pass, lhs[n-1]); errV != nil && isErrorVar(errV) {
			ob.errVar = errV
		}
	}
	c.obs = append(c.obs, ob)
	st[ob] = true
}

// acquireShape classifies a call: (-1) not an acquire, or the obligation's
// result index plus a description.
func (c *checker) acquireShape(call *ast.CallExpr) (kind, obIdx int, what string) {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return 0, -1, ""
	}
	if analysis.IsMethodOn(fn, clusterPkg, "ClonePool") && fn.Name() == "Lease" {
		return obCluster, 0, "clone leased from ClonePool.Lease"
	}
	if fn.Pkg() != nil && analysis.IsModulePkg(fn.Pkg().Path()) {
		if v, ok := c.pass.Fact("lease:" + analysis.FuncKey(fn)); ok {
			return obFunc, v.(int), "release func returned by " + fn.Name()
		}
	}
	return 0, -1, ""
}

// checkDroppedAcquire reports an acquire whose results are not bound at all.
func (c *checker) checkDroppedAcquire(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if _, obIdx, what := c.acquireShape(call); obIdx >= 0 {
		c.pass.Reportf(call.Pos(), "%s is discarded: the lease can never be released", what)
	}
}

// scanReleases inspects an expression (including nested function literals,
// which are trusted to run) for releases of tracked obligations.
func (c *checker) scanReleases(e ast.Node, st state) {
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// release() — calling a tracked closure.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
				c.releaseVar(v, st, obFunc)
			}
		}
		// pool.Release(v) / pool.Discard(v).
		if fn := analysis.CalleeFunc(c.pass.TypesInfo, call); fn != nil &&
			(fn.Name() == "Release" || fn.Name() == "Discard") && analysis.RecvNamed(fn) != nil {
			for _, arg := range call.Args {
				if v := varOf(c.pass, arg); v != nil {
					c.releaseVar(v, st, obCluster)
				}
			}
		}
		return true
	})
}

func (c *checker) releaseVar(v *types.Var, st state, kind int) {
	for ob := range st {
		if ob.v == v && ob.kind == kind {
			st[ob] = false
		}
	}
}

// walkIf explores both branches, understanding the acquire's own error
// check.
func (c *checker) walkIf(s *ast.IfStmt, st state) bool {
	if s.Init != nil {
		c.walkStmt(s.Init, st)
	}
	thenSt := st.clone()
	elseSt := st.clone()
	if errV, nonNil := errCheck(c.pass, s.Cond); errV != nil {
		clearFor := thenSt
		if !nonNil {
			clearFor = elseSt
		}
		for ob := range clearFor {
			if ob.errVar == errV {
				clearFor[ob] = false
			}
		}
	}
	tTerm := c.walk(s.Body.List, thenSt)
	eTerm := false
	hasElse := s.Else != nil
	if hasElse {
		eTerm = c.walkStmt(s.Else, elseSt)
	}
	// Merge surviving branches back into st: an obligation is outstanding
	// if any non-terminated path leaves it outstanding.
	for ob := range st {
		out := false
		if !tTerm && thenSt[ob] {
			out = true
		}
		if hasElse {
			if !eTerm && elseSt[ob] {
				out = true
			}
		} else if st[ob] {
			// No else: the cond-false path falls through with the original
			// state — except the error-cleared case handled above.
			if elseSt[ob] {
				out = true
			}
		}
		st[ob] = out
	}
	// Newly acquired obligations inside branches.
	c.adoptNew(st, thenSt, tTerm)
	if hasElse {
		c.adoptNew(st, elseSt, eTerm)
	}
	return tTerm && hasElse && eTerm
}

// adoptNew merges obligations first seen inside a branch into the parent
// state.
func (c *checker) adoptNew(parent, branch state, terminated bool) {
	for ob, outstanding := range branch {
		if _, known := parent[ob]; !known {
			parent[ob] = outstanding && !terminated
		}
	}
}

// walkLoop approximates a loop by walking the body once; obligations
// acquired inside the body must resolve within it.
func (c *checker) walkLoop(body *ast.BlockStmt, init ast.Stmt, st state) {
	if init != nil {
		c.walkStmt(init, st)
	}
	bodySt := st.clone()
	term := c.walk(body.List, bodySt)
	for ob, outstanding := range bodySt {
		if _, known := st[ob]; !known {
			// Acquired this iteration: outstanding at the end of the body
			// means every iteration leaks one clone.
			if outstanding && !term {
				ob.leaked = true
			}
			parentOut := false
			st[ob] = parentOut
			continue
		}
		if !term && outstanding {
			st[ob] = true
		}
	}
}

// walkCases explores switch/select clauses.
func (c *checker) walkCases(body *ast.BlockStmt, init ast.Stmt, st state, exhaustive bool) bool {
	if init != nil {
		c.walkStmt(init, st)
	}
	allTerm := true
	branchStates := make([]state, 0, len(body.List))
	branchTerms := make([]bool, 0, len(body.List))
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch cl := clause.(type) {
		case *ast.CaseClause:
			stmts = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				stmts = append([]ast.Stmt{cl.Comm}, cl.Body...)
			} else {
				stmts = cl.Body
			}
		}
		bs := st.clone()
		term := c.walk(stmts, bs)
		branchStates = append(branchStates, bs)
		branchTerms = append(branchTerms, term)
		if !term {
			allTerm = false
		}
	}
	for ob := range st {
		out := false
		for i, bs := range branchStates {
			if !branchTerms[i] && bs[ob] {
				out = true
			}
		}
		if !exhaustive && st[ob] {
			out = true // no matching case: falls through unchanged
		}
		st[ob] = out
	}
	for i, bs := range branchStates {
		c.adoptNew(st, bs, branchTerms[i])
	}
	return exhaustive && allTerm && len(body.List) > 0
}

// Helpers.

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func identsOf(names []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(names))
	for i, n := range names {
		out[i] = n
	}
	return out
}

// varOf resolves an expression to the local variable it names, nil for
// blank or non-ident targets.
func varOf(pass *analysis.Pass, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func isErrorVar(v *types.Var) bool {
	return v.Type() != nil && v.Type().String() == "error"
}

// errCheck matches `x != nil` / `x == nil` conditions over an error
// variable, returning the variable and whether the true-branch means
// non-nil.
func errCheck(pass *analysis.Pass, cond ast.Expr) (*types.Var, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNil(pass, x) {
		x, y = y, x
	}
	if !isNil(pass, y) {
		return nil, false
	}
	v := varOf(pass, x)
	if v == nil || !isErrorVar(v) {
		return nil, false
	}
	return v, be.Op == token.NEQ
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilObj := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNilObj
}

// returnsVar reports whether the return statement's results mention v.
func returnsVar(pass *analysis.Pass, ret *ast.ReturnStmt, v *types.Var) bool {
	for _, r := range ret.Results {
		found := false
		ast.Inspect(r, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if pass.TypesInfo.Uses[id] == v {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
