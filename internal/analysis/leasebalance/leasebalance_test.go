package leasebalance_test

import (
	"testing"

	"github.com/dice-project/dice/internal/analysis"
	"github.com/dice-project/dice/internal/analysis/leasebalance"
	"github.com/dice-project/dice/internal/analysis/vettest"
)

func TestLeasebalance(t *testing.T) {
	vettest.Run(t, []*analysis.Analyzer{leasebalance.Analyzer}, "testdata/a", "testdata/b")
}
