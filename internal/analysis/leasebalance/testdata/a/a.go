// Package a exercises the leasebalance analyzer against the real
// cluster.ClonePool API and the //dice:lease release-closure protocol.
// BadBranch is the PR 3 clone-lifecycle audit shape: released on the happy
// path, stranded on the other.
package a

import (
	"github.com/dice-project/dice/internal/cluster"
)

func use(*cluster.Cluster) {}

// Good releases on the straight path with the canonical defer shape.
func Good(p *cluster.ClonePool) error {
	c, err := p.Lease()
	if err != nil {
		return err
	}
	defer p.Release(c)
	use(c)
	return nil
}

// Bad never releases.
func Bad(p *cluster.ClonePool) error {
	c, err := p.Lease() // want `not released on every path`
	if err != nil {
		return err
	}
	use(c)
	return nil
}

// BadBranch releases on one branch only.
func BadBranch(p *cluster.ClonePool, cond bool) error {
	c, err := p.Lease() // want `not released on every path`
	if err != nil {
		return err
	}
	if cond {
		p.Release(c)
		return nil
	}
	return nil
}

// GoodBranches releases on every branch.
func GoodBranches(p *cluster.ClonePool, cond bool) error {
	c, err := p.Lease()
	if err != nil {
		return err
	}
	if cond {
		p.Release(c)
		return nil
	}
	p.Release(c)
	return nil
}

// BadDiscard drops the lease on the floor.
func BadDiscard(p *cluster.ClonePool) {
	p.Lease() // want `discarded`
}

// BadBlank binds the clone to blank.
func BadBlank(p *cluster.ClonePool) error {
	_, err := p.Lease() // want `discarded`
	return err
}

// GoodTransfer returns the clone; ownership moves to the caller.
func GoodTransfer(p *cluster.ClonePool) (*cluster.Cluster, error) {
	c, err := p.Lease()
	if err != nil {
		return nil, err
	}
	return c, nil
}

type holder struct {
	c *cluster.Cluster
}

// GoodStore parks the clone in a longer-lived structure.
func GoodStore(p *cluster.ClonePool, h *holder) error {
	c, err := p.Lease()
	if err != nil {
		return err
	}
	h.c = c
	return nil
}

// BadLoop leaks one clone per iteration.
func BadLoop(p *cluster.ClonePool, n int) {
	for i := 0; i < n; i++ {
		c, err := p.Lease() // want `not released on every path`
		if err != nil {
			return
		}
		use(c)
	}
}

// GoodLoop balances within the iteration.
func GoodLoop(p *cluster.ClonePool, n int) {
	for i := 0; i < n; i++ {
		c, err := p.Lease()
		if err != nil {
			return
		}
		use(c)
		p.Release(c)
	}
}

// BadSwitch releases in one case with no default.
func BadSwitch(p *cluster.ClonePool, mode int) {
	c, err := p.Lease() // want `not released on every path`
	if err != nil {
		return
	}
	switch mode {
	case 0:
		p.Release(c)
	}
}

// GoodSwitch covers every case including default.
func GoodSwitch(p *cluster.ClonePool, mode int) {
	c, err := p.Lease()
	if err != nil {
		return
	}
	switch mode {
	case 0:
		use(c)
		p.Release(c)
	default:
		p.Release(c)
	}
}

// acquire is the Campaign.leaseClone shape: the returned closure is the
// release obligation for callers, declared by the directive.
//
//dice:lease
func acquire(p *cluster.ClonePool) (*cluster.Cluster, func(), error) {
	c, err := p.Lease()
	if err != nil {
		return nil, nil, err
	}
	return c, func() { p.Release(c) }, nil
}

// GoodCaller defers the release closure.
func GoodCaller(p *cluster.ClonePool) error {
	c, release, err := acquire(p)
	if err != nil {
		return err
	}
	defer release()
	use(c)
	return nil
}

// BadCaller binds the closure and forgets it.
func BadCaller(p *cluster.ClonePool) error {
	c, release, err := acquire(p) // want `release func returned by acquire is not released`
	if err != nil {
		return err
	}
	_ = release
	use(c)
	return nil
}

// GoodHandoff passes the closure to a registrar (the t.Cleanup shape);
// the obligation transfers with it.
func GoodHandoff(p *cluster.ClonePool, register func(func())) error {
	c, release, err := acquire(p)
	if err != nil {
		return err
	}
	register(release)
	use(c)
	return nil
}

// Allowed suppresses with a mandatory reason.
func Allowed(p *cluster.ClonePool) {
	//dice:allow leasebalance fixture scheduler owns the lease for the campaign lifetime
	c, _ := p.Lease()
	use(c)
}
