// Package b mirrors the procdriver child lifecycle on the //dice:lease
// protocol: spawning a backend subprocess returns a stop closure that kills
// and reaps it, and a caller that drops the closure strands a live child —
// the LiveChildren()!=0 audit shape from the proc-backend tests.
package b

// Proc stands in for a spawned backend child process.
type Proc struct {
	PID int
}

func drive(*Proc) {}

// spawn launches a child speaker; the returned closure kills and reaps it.
//
//dice:lease
func spawn(impl string) (*Proc, func(), error) {
	_ = impl
	p := &Proc{PID: 1}
	return p, func() { p.PID = 0 }, nil
}

// GoodUnit reaps the child when the unit ends.
func GoodUnit() error {
	p, stop, err := spawn("obgpd")
	if err != nil {
		return err
	}
	defer stop()
	drive(p)
	return nil
}

// BadUnit leaves the child running after the unit returns.
func BadUnit() error {
	p, stop, err := spawn("obgpd") // want `release func returned by spawn is not released`
	if err != nil {
		return err
	}
	_ = stop
	drive(p)
	return nil
}

// BadRetryLoop strands one child per retry.
func BadRetryLoop(attempts int) {
	for i := 0; i < attempts; i++ {
		p, stop, err := spawn("frr") // want `release func returned by spawn is not released`
		if err != nil {
			continue
		}
		_ = stop
		drive(p)
	}
}

// GoodRetryLoop reaps within the iteration.
func GoodRetryLoop(attempts int) {
	for i := 0; i < attempts; i++ {
		p, stop, err := spawn("frr")
		if err != nil {
			continue
		}
		drive(p)
		stop()
	}
}

// GoodHandoff registers the reaper with the test cleanup hook; the
// obligation transfers with the closure.
func GoodHandoff(cleanup func(func())) error {
	p, stop, err := spawn("bird")
	if err != nil {
		return err
	}
	cleanup(stop)
	drive(p)
	return nil
}
