package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The repository's analyzer directives all share the //dice: prefix:
//
//	//dice:allow <analyzer> <reason>   suppress a finding on this or the
//	                                   next line; the reason is mandatory
//	//dice:deterministic               (package doc) opt a package into
//	                                   detsource's deterministic set
//	//dice:fieldpin <Type>             (const decl) pin a codec field count
//	                                   to a struct definition (codecpin)
//	//dice:lease                       (func decl) the returned func() is a
//	                                   release obligation (leasebalance)
//	//dice:boundary                    (type decl) the type crosses the
//	                                   federation/control privacy boundary
//	                                   (privleak)
//
// Directive comments are load-bearing configuration, not prose: they are
// parsed by position (same line or the line immediately above the code they
// govern), exactly like //go: directives.

// Directive is one parsed //dice: comment.
type Directive struct {
	Pos  token.Pos
	Line int // 1-based line in its file
	// Name is the directive verb: "allow", "deterministic", "fieldpin", ...
	Name string
	// Args is the remainder after the verb, space-trimmed.
	Args string
}

// Verb and first argument accessors for the common two-field shapes.

// Arg1 returns the first whitespace-separated argument and the rest.
func (d Directive) Arg1() (string, string) {
	s := strings.TrimSpace(d.Args)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}

const directivePrefix = "//dice:"

// ParseDirectives extracts every //dice: directive from a file's comments.
func ParseDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			body := c.Text[len(directivePrefix):]
			name, args := body, ""
			if i := strings.IndexAny(body, " \t"); i >= 0 {
				name, args = body[:i], strings.TrimSpace(body[i+1:])
			}
			out = append(out, Directive{
				Pos:  c.Pos(),
				Line: fset.Position(c.Pos()).Line,
				Name: name,
				Args: args,
			})
		}
	}
	return out
}

// HasDirective reports whether a declaration's doc comment group carries the
// named directive.
func HasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, directivePrefix+name) {
			rest := c.Text[len(directivePrefix+name):]
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// allowDirective is one parsed //dice:allow suppression.
type allowDirective struct {
	d        Directive
	analyzer string
	reason   string
	used     bool
}

// suppressions indexes a unit's //dice:allow directives by file and line.
type suppressions struct {
	fset *token.FileSet
	// byFileLine maps filename -> line -> directives on that line.
	byFileLine map[string]map[int][]*allowDirective
	all        []*allowDirective
}

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{fset: fset, byFileLine: make(map[string]map[int][]*allowDirective)}
	for _, f := range files {
		for _, d := range ParseDirectives(fset, f) {
			if d.Name != "allow" {
				continue
			}
			analyzer, reason := d.Arg1()
			ad := &allowDirective{d: d, analyzer: analyzer, reason: reason}
			pos := fset.Position(d.Pos)
			lines := s.byFileLine[pos.Filename]
			if lines == nil {
				lines = make(map[int][]*allowDirective)
				s.byFileLine[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], ad)
			s.all = append(s.all, ad)
		}
	}
	return s
}

// suppressed reports whether a diagnostic at pos from the named analyzer is
// covered by an //dice:allow on the same line or the line above, marking the
// directive used.
func (s *suppressions) suppressed(analyzer string, pos token.Pos) bool {
	p := s.fset.Position(pos)
	lines := s.byFileLine[p.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, ad := range lines[line] {
			if ad.analyzer == analyzer {
				ad.used = true
				hit = true
			}
		}
	}
	return hit
}
