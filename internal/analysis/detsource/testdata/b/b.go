// Package b is neither in the built-in deterministic set nor opted in;
// wall-clock reads here are none of detsource's business.
package b

import "time"

// Stamp reads real time in a wall-clock package.
func Stamp() time.Time {
	return time.Now()
}
