// Package a exercises the detsource analyzer inside an opted-in
// deterministic package. BadNow is the PR 5 unscrubbed-shadow bug class:
// one wall-clock read makes replays diverge.
//
//dice:deterministic
package a

import (
	"math/rand"
	"time"
)

// Clock is the injected-time seam.
type Clock struct {
	// Now yields the campaign's logical time.
	Now func() time.Time
}

// NewClock wires the default by value assignment — legal: only calls are
// nondeterminism.
func NewClock() Clock {
	return Clock{Now: time.Now}
}

// BadNow reads the wall clock.
func BadNow() time.Time {
	return time.Now() // want `time\.Now in deterministic package`
}

// BadSleep stalls on real time.
func BadSleep() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in deterministic package`
}

// BadGlobalRand draws from the process-global, process-seeded generator.
func BadGlobalRand(n int) int {
	return rand.Intn(n) // want `global rand\.Intn`
}

// GoodSeededRand draws from an injected, seeded instance; the constructors
// themselves are the approved pattern.
func GoodSeededRand(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

// BadPick selects whichever map element iteration happens to visit first.
func BadPick(m map[string]int) string {
	var pick string
	for k := range m {
		pick = k
		break // want `break out of range over map`
	}
	return pick
}

// GoodPick reduces over every entry; no order dependence.
func GoodPick(m map[string]int) string {
	best := ""
	for k := range m {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// GoodNestedBreak breaks an inner slice loop, not the map range.
func GoodNestedBreak(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		for _, v := range vs {
			if v < 0 {
				break
			}
			total += v
		}
	}
	return total
}

// AllowedWallClock is the escape hatch for genuinely wall-clock code.
func AllowedWallClock() time.Time {
	//dice:allow detsource fixture models the real-TCP integration runner
	return time.Now()
}
