// Package c mirrors the obgpd decision process: oldest-first preference
// ranks routes by an injected logical age stamp, so a wall-clock read, a
// global-rand tie-break or an order-dependent map pick would make a clone
// and its replay disagree on the best path.
//
//dice:deterministic
package c

import (
	"math/rand"
	"time"
)

// Route is a candidate path with its logical age stamp.
type Route struct {
	Peer string
	Age  uint64 // logical install counter, injected by the engine
}

// Engine carries the injected seams.
type Engine struct {
	// Now yields the campaign's logical time.
	Now func() time.Time
	// Tie is the seeded tie-breaker.
	Tie *rand.Rand
}

// NewEngine wires defaults by assignment, never by call — legal.
func NewEngine(seed int64) *Engine {
	return &Engine{Now: time.Now, Tie: rand.New(rand.NewSource(seed))}
}

// BadStamp ages a new route off the wall clock instead of the counter.
func BadStamp(r *Route) {
	r.Age = uint64(time.Now().UnixNano()) // want `time\.Now in deterministic package`
}

// BadTieBreak resolves an age tie from the process-global generator.
func BadTieBreak(a, b Route) Route {
	if a.Age == b.Age && rand.Intn(2) == 0 { // want `global rand\.Intn`
		return b
	}
	return a
}

// GoodTieBreak draws from the injected seeded instance.
func (e *Engine) GoodTieBreak(a, b Route) Route {
	if a.Age == b.Age && e.Tie.Intn(2) == 0 {
		return b
	}
	return a
}

// BadOldest keeps whichever candidate map iteration yields first.
func BadOldest(byPeer map[string]Route) Route {
	var pick Route
	for _, r := range byPeer {
		pick = r
		break // want `break out of range over map`
	}
	return pick
}

// GoodOldest scans every candidate; ties fall back to the peer name, so
// the pick is a pure function of the map's contents.
func GoodOldest(byPeer map[string]Route) Route {
	var pick Route
	first := true
	for _, r := range byPeer {
		if first || r.Age < pick.Age || (r.Age == pick.Age && r.Peer < pick.Peer) {
			pick = r
			first = false
		}
	}
	return pick
}
