package detsource_test

import (
	"testing"

	"github.com/dice-project/dice/internal/analysis"
	"github.com/dice-project/dice/internal/analysis/detsource"
	"github.com/dice-project/dice/internal/analysis/vettest"
)

func TestDetsource(t *testing.T) {
	vettest.Run(t, []*analysis.Analyzer{detsource.Analyzer}, "testdata/a", "testdata/b", "testdata/c")
}
