// Package detsource forbids nondeterminism sources inside the packages
// whose behavior must replay byte-identically: wall-clock reads
// (time.Now and friends), the process-global math/rand generators, and
// map-order-dependent selection. DiCE's guarantees — reset ≡ cold golden
// tests, content-addressed checkpoints, cross-process delta comparison,
// provably-identical path-cache re-runs — all assume that executing the
// same campaign twice touches the same bytes; one stray time.Now in a
// checkpoint path (the unscrubbed symbolic shadow of PR 5 was this bug
// class in another guise) makes detections irreproducible.
//
// A package is deterministic if its import path is in the built-in set
// (checkpoint, codec, concolic, netem, node, bird, frr, bgp, rib, policy,
// topology, faults, fuzz) or any of its files carries a
// `//dice:deterministic` package directive.
//
// Allowed patterns:
//
//   - injected clocks: referencing time.Now as a VALUE (cfg.Clock =
//     time.Now) is fine — only calls are flagged, so the seam where a
//     caller injects the default is untouched;
//   - seeded rngs: methods on a *rand.Rand instance are fine; only the
//     package-level convenience functions (global, process-seeded state)
//     are flagged;
//   - genuinely wall-clock code (the real-TCP integration runner) takes
//     `//dice:allow detsource <reason>`.
//
// Map-order-dependent selection is the subtler leak: `for k := range m {
// pick = k; break }` chooses a random element. Any break out of a map
// range is flagged — if the predicate matches exactly one entry, say so
// with an allow directive; if it can match several, the break is a bug.
package detsource

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/dice-project/dice/internal/analysis"
)

// Analyzer is the detsource pass.
var Analyzer = &analysis.Analyzer{
	Name: "detsource",
	Doc:  "forbids wall-clock, global-rand and map-order-dependent selection in deterministic packages",
	Run:  run,
}

// deterministicPkgs is the built-in deterministic set, by import path
// suffix under the module.
var deterministicPkgs = map[string]bool{
	"internal/checkpoint":       true,
	"internal/checkpoint/codec": true,
	"internal/obs":              true,
	"internal/concolic":         true,
	"internal/concolic/expr":    true,
	"internal/concolic/solver":  true,
	"internal/netem":            true,
	"internal/node":             true,
	"internal/bird":             true,
	"internal/frr":              true,
	"internal/bgp":              true,
	"internal/bgp/policy":       true,
	"internal/bgp/rib":          true,
	"internal/topology":         true,
	"internal/faults":           true,
	"internal/fuzz":             true,
}

// randConstructors build seeded generator instances — the replacement the
// analyzer asks for, so they must stay legal.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// bannedTimeFuncs are the wall-clock entry points in package time.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTicker": true, "NewTimer": true,
	"Sleep": true,
}

func run(pass *analysis.Pass) error {
	if !deterministic(pass) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkMapSelection(pass, n)
			}
			return true
		})
	}
	return nil
}

// deterministic decides whether this package is in the deterministic set.
func deterministic(pass *analysis.Pass) bool {
	path := pass.Pkg.Path()
	if analysis.IsModulePkg(path) {
		rel := ""
		if len(path) > len(analysis.ModulePath) {
			rel = path[len(analysis.ModulePath)+1:]
		}
		if deterministicPkgs[rel] {
			return true
		}
	}
	for _, f := range pass.Files {
		for _, d := range analysis.ParseDirectives(pass.Fset, f) {
			if d.Name == "deterministic" {
				return true
			}
		}
	}
	return false
}

// checkCall flags wall-clock and global-rand calls.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if analysis.RecvNamed(fn) != nil {
		return // methods (e.g. on a seeded *rand.Rand) are injected state
	}
	switch fn.Pkg().Path() {
	case "time":
		if bannedTimeFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"time.%s in deterministic package %s: inject a clock (cfg.Clock func() time.Time seam, default assigned — not called — at construction) or //dice:allow detsource <reason>",
				fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		if randConstructors[fn.Name()] {
			return // building a seeded instance is the approved pattern
		}
		pass.Reportf(call.Pos(),
			"global %s.%s in deterministic package %s: use a seeded *rand.Rand instance so replays draw the same sequence",
			fn.Pkg().Name(), fn.Name(), pass.Pkg.Name())
	case "crypto/rand":
		pass.Reportf(call.Pos(),
			"crypto/rand.%s in deterministic package %s: deterministic paths cannot read entropy",
			fn.Name(), pass.Pkg.Name())
	}
}

// checkMapSelection flags `break` out of a map range — selecting an element
// that depends on iteration order.
func checkMapSelection(pass *analysis.Pass, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if analysis.MapType(t) == nil {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			return false // a break in there doesn't break our range
		case *ast.FuncLit:
			return false
		case *ast.BranchStmt:
			if n.Tok == token.BREAK && n.Label == nil {
				pass.Reportf(n.Pos(),
					"break out of range over map %s selects an order-dependent element in deterministic package %s: iterate sorted keys or collect all matches",
					types.TypeString(t, nil), pass.Pkg.Name())
			}
		}
		return true
	})
}
