// Package analysis is a self-contained static-analysis framework for the
// dice repository: a deliberately small mirror of the
// golang.org/x/tools/go/analysis API, built entirely on the standard
// library's go/ast and go/types so the module keeps its zero-dependency
// policy. The dice-vet multichecker (cmd/dice-vet) drives the five
// domain-specific analyzers in internal/analysis/{detrange,detsource,
// leasebalance,privleak,codecpin} over every package in the module.
//
// The framework differs from x/tools in three deliberate ways:
//
//   - Packages are loaded with `go list -deps -export -json` and
//     type-checked from source against the toolchain's compiled export
//     data, so a run needs nothing beyond the go command and a warm build
//     cache (the driver warms it itself).
//   - Facts are plain string-keyed values in a store shared across the
//     whole run. Packages are analyzed in dependency order, so an analyzer
//     always sees the facts its imports exported. Keys embed the package
//     path, which keeps them stable across separately type-checked units.
//   - Suppressions are `//dice:allow <analyzer> <reason>` comments (see
//     directives.go); a suppression without a reason is itself a finding.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Run reports findings through
// Pass.Report; a non-nil error aborts the whole vet run (reserved for
// internal failures, never for findings).
type Analyzer struct {
	// Name is the analyzer identifier used on the command line, in
	// diagnostics, and in //dice:allow suppressions.
	Name string
	// Doc is the one-paragraph description shown by dice-vet -help.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the parsed source files of the package under analysis.
	Files []*ast.File
	// Pkg and TypesInfo are the go/types results for those files.
	Pkg       *types.Package
	TypesInfo *types.Info

	facts *FactStore
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ExportFact publishes a fact for downstream packages. Facts are namespaced
// per analyzer, so two analyzers can use the same key without collision.
func (p *Pass) ExportFact(key string, value any) {
	p.facts.set(p.Analyzer.Name, key, value)
}

// Fact retrieves a fact exported by this analyzer while processing this or
// any previously analyzed package (the driver runs packages in dependency
// order, so imports are always processed first).
func (p *Pass) Fact(key string) (any, bool) {
	return p.facts.get(p.Analyzer.Name, key)
}

// FuncKey returns the stable fact key for a function or method object:
// "pkgpath.Name" for package functions, "pkgpath.(Recv).Name" for methods
// (pointerness of the receiver is erased — a fact about (*T).M and T.M is
// the same fact). Objects outside any package (builtins) key as their name.
func FuncKey(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path() + "."
	}
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + "(" + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// FactStore is the run-wide fact table shared by every pass.
type FactStore struct {
	m map[string]any
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore { return &FactStore{m: make(map[string]any)} }

func (s *FactStore) set(analyzer, key string, v any) { s.m[analyzer+"\x00"+key] = v }

func (s *FactStore) get(analyzer, key string) (any, bool) {
	v, ok := s.m[analyzer+"\x00"+key]
	return v, ok
}

// Keys returns every key exported by the named analyzer, sorted — used by
// tests to assert fact propagation.
func (s *FactStore) Keys(analyzer string) []string {
	prefix := analyzer + "\x00"
	var out []string
	for k := range s.m {
		if len(k) > len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k[len(prefix):])
		}
	}
	sort.Strings(out)
	return out
}
