package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared type-query helpers the analyzers build on.

// ModulePath is the import-path prefix identifying this module's packages.
const ModulePath = "github.com/dice-project/dice"

// IsModulePkg reports whether path belongs to this module.
func IsModulePkg(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// CalleeFunc resolves the static callee of a call expression: a package
// function, a method (value or pointer receiver), or nil for calls through
// function values, builtins and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// RecvNamed returns the named type of fn's receiver (pointerness erased),
// or nil for package-level functions.
func RecvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// NamedPath returns (package path, type name) for a named type, following
// one level of pointer; empty strings otherwise.
func NamedPath(t types.Type) (string, string) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	return named.Obj().Pkg().Path(), named.Obj().Name()
}

// IsMethodOn reports whether fn is a method (any name) on the named type
// pkgPath.typeName.
func IsMethodOn(fn *types.Func, pkgPath, typeName string) bool {
	named := RecvNamed(fn)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == typeName
}

// IsPkgFunc reports whether fn is the package-level function pkgPath.name.
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn.Pkg() == nil || RecvNamed(fn) != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// MapType returns the underlying map type of t, or nil. Named map types
// (node.PeerRouteMap) resolve through to their map structure.
func MapType(t types.Type) *types.Map {
	if t == nil {
		return nil
	}
	m, _ := t.Underlying().(*types.Map)
	return m
}

// HasMethod reports whether the named type (or its pointer) has a method
// with the given name in its method set.
func HasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	ms := types.NewMethodSet(types.NewPointer(t))
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == name {
			return true
		}
	}
	return false
}
