package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// SARIF 2.1.0 output, the interchange format CI systems ingest for code
// scanning. Only the fields consumers actually read are emitted.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifToolDriver `json:"driver"`
}

type sarifToolDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders the findings as a single-run SARIF 2.1.0 log. Paths
// are made relative to root when possible, so the artifact is stable across
// checkouts.
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Position.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) && rel != "" && rel[0] != '.' {
				uri = filepath.ToSlash(rel)
			}
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: uri},
				Region:           sarifRegion{StartLine: f.Position.Line, StartColumn: f.Position.Column},
			}}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifToolDriver{Name: "dice-vet", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
