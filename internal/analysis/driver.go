package analysis

import (
	"fmt"
	"go/token"
	"io"
	"sort"
	"strings"
)

// Finding is a resolved diagnostic with its source position filled in.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// Driver runs a set of analyzers over loaded units, applies //dice:allow
// suppressions, and collects the surviving findings.
type Driver struct {
	Analyzers []*Analyzer
	// Known lists every analyzer name that exists, whether or not it is
	// running — suppressions for a known-but-unselected analyzer are left
	// alone, while a typo'd name is a finding. Defaults to Analyzers.
	Known []string
	facts *FactStore
}

// NewDriver returns a driver over the given analyzers sharing one fact
// store for the whole run.
func NewDriver(analyzers ...*Analyzer) *Driver {
	return &Driver{Analyzers: analyzers, facts: NewFactStore()}
}

// Facts exposes the run's fact store (tests assert propagation through it).
func (d *Driver) Facts() *FactStore { return d.facts }

// Run analyzes the units in order and returns all unsuppressed findings,
// sorted by position. Units must arrive in dependency order (Loader.Load
// guarantees it) for cross-package facts to resolve.
func (d *Driver) Run(units []*Unit) ([]Finding, error) {
	var findings []Finding
	for _, u := range units {
		fs, err := d.runUnit(u)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// runUnit applies every analyzer to one unit.
func (d *Driver) runUnit(u *Unit) ([]Finding, error) {
	sup := collectSuppressions(u.Fset, u.Files)
	ran := make(map[string]bool, len(d.Analyzers))
	var diags []Diagnostic
	for _, a := range d.Analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
			facts:     d.facts,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, u.ImportPath, err)
		}
	}

	var findings []Finding
	for _, diag := range diags {
		if sup.suppressed(diag.Analyzer, diag.Pos) {
			continue
		}
		findings = append(findings, Finding{
			Position: u.Fset.Position(diag.Pos),
			Analyzer: diag.Analyzer,
			Message:  diag.Message,
		})
	}
	// Suppression hygiene: an //dice:allow must name a real analyzer,
	// carry a reason, and actually suppress something — otherwise it is
	// stale armor that would silently swallow a future real finding.
	known := d.Known
	if known == nil {
		for _, a := range d.Analyzers {
			known = append(known, a.Name)
		}
	}
	isKnown := func(name string) bool {
		for _, k := range known {
			if k == name {
				return true
			}
		}
		return false
	}
	report := func(ad *allowDirective, format string, args ...any) {
		findings = append(findings, Finding{
			Position: u.Fset.Position(ad.d.Pos),
			Analyzer: "allowdirective",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, ad := range sup.all {
		switch {
		case ad.analyzer == "":
			report(ad, "//dice:allow requires an analyzer name and a reason")
		case !isKnown(ad.analyzer):
			report(ad, "//dice:allow names unknown analyzer %q", ad.analyzer)
		case strings.TrimSpace(ad.reason) == "":
			report(ad, "//dice:allow %s requires a reason", ad.analyzer)
		case !ad.used && ran[ad.analyzer]:
			report(ad, "unused //dice:allow %s (nothing was suppressed here)", ad.analyzer)
		}
	}
	return findings, nil
}

// WriteText renders findings in the canonical file:line:col form.
func WriteText(w io.Writer, findings []Finding) {
	for _, f := range findings {
		fmt.Fprintln(w, f)
	}
}
