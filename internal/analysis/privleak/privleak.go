// Package privleak enforces the paper's disclosure guarantee as a lint:
// nothing but checker.Summary content (and the neutral metadata around it)
// may be reachable from the types that cross a federation domain boundary
// or ride in control-plane result frames. The federation Bus's API already
// makes the direct payload a Summary structurally; this analyzer closes
// the indirect holes — a struct field added to an envelope or result frame
// that transitively drags router configuration, raw RIB records, node
// checkpoints or free-form violation Detail across the boundary.
//
// Boundary roots are declared with a `//dice:boundary` directive on the
// type declaration (federation.Envelope and the control-plane result
// frames carry it). For every root, the analyzer walks the full reachable
// type graph — fields, embedded fields, slices, arrays, maps, pointers,
// named types across packages — and reports the first edge that reaches a
// poison type:
//
//   - checker.Violation: its Detail string quotes node-local evidence; only
//     the ViolationDigest projection may cross (PR 3's privacy test, now
//     static);
//   - any named type from internal/bird, internal/frr, internal/checkpoint,
//     internal/bgp/rib or internal/netem: router state, configuration and
//     checkpoint payloads never leave their domain;
//   - node.RouteRecord, node.PeerRouteMap, node.Config, node.SessionRecord,
//     node.EventRecord, node.RouterStats: the implementation-neutral state
//     records are exactly what the paper promises stays home;
//   - the empty interface (any): a boundary type with an any field defeats
//     static checking entirely, so it is rejected outright.
//
// The analyzer also flags exported methods on federation.Bus that accept
// an interface-typed payload — the Summary-only API surface is itself an
// invariant.
//
// Suppression: `//dice:allow privleak <reason>` (there is no legitimate
// case today; the directive exists so an emergency hole is at least
// greppable).
package privleak

import (
	"fmt"
	"go/ast"
	"go/types"

	"github.com/dice-project/dice/internal/analysis"
)

// Analyzer is the privleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "privleak",
	Doc:  "verifies only checker.Summary content is reachable from federation/control boundary types",
	Run:  run,
}

const (
	checkerPkg    = analysis.ModulePath + "/internal/checker"
	federationPkg = analysis.ModulePath + "/internal/federation"
)

// poisonPkgs are packages whose every named type is domain-local state.
var poisonPkgs = map[string]bool{
	analysis.ModulePath + "/internal/bird":       true,
	analysis.ModulePath + "/internal/frr":        true,
	analysis.ModulePath + "/internal/obgpd":      true,
	analysis.ModulePath + "/internal/checkpoint": true,
	analysis.ModulePath + "/internal/bgp/rib":    true,
	analysis.ModulePath + "/internal/netem":      true,
}

// poisonNodeTypes are the state-record types in internal/node.
var poisonNodeTypes = map[string]bool{
	"RouteRecord": true, "PeerRouteMap": true, "Config": true,
	"SessionRecord": true, "EventRecord": true, "RouterStats": true,
}

func run(pass *analysis.Pass) error {
	checkBoundaryTypes(pass)
	checkBusSurface(pass)
	return nil
}

// checkBoundaryTypes walks every //dice:boundary type's reachable graph.
func checkBoundaryTypes(pass *analysis.Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !analysis.HasDirective(gd.Doc, "boundary") && !analysis.HasDirective(ts.Doc, "boundary") {
					continue
				}
				obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				walkBoundary(pass, obj)
			}
		}
	}
}

// walkBoundary explores the reachable type graph from one boundary root.
func walkBoundary(pass *analysis.Pass, root *types.TypeName) {
	seen := make(map[types.Type]bool)
	var visit func(t types.Type, path string)

	report := func(path, why string) {
		pass.Reportf(root.Pos(),
			"boundary type %s leaks domain-local state: %s %s — only checker.Summary content may cross the federation/control boundary (ship a digest projection instead)",
			root.Name(), path, why)
	}

	visit = func(t types.Type, path string) {
		if t == nil {
			return
		}
		t = types.Unalias(t) // `any` and friends resolve to their targets
		if seen[t] {
			return
		}
		seen[t] = true
		switch tt := t.(type) {
		case *types.Named:
			tn := tt.Obj()
			if tn.Pkg() != nil {
				p := tn.Pkg().Path()
				if poisonPkgs[p] {
					report(path, fmt.Sprintf("reaches %s.%s (package %s is domain-local)", tn.Pkg().Name(), tn.Name(), p))
					return
				}
				if p == analysis.ModulePath+"/internal/node" && poisonNodeTypes[tn.Name()] {
					report(path, fmt.Sprintf("reaches node.%s (implementation-neutral state record)", tn.Name()))
					return
				}
				if p == checkerPkg && tn.Name() == "Violation" {
					report(path, "reaches checker.Violation, whose Detail quotes node-local evidence (use checker.ViolationDigest)")
					return
				}
			}
			visit(tt.Underlying(), path)
		case *types.Struct:
			for i := 0; i < tt.NumFields(); i++ {
				f := tt.Field(i)
				visit(f.Type(), path+"."+f.Name())
			}
		case *types.Pointer:
			visit(tt.Elem(), path)
		case *types.Slice:
			visit(tt.Elem(), path+"[]")
		case *types.Array:
			visit(tt.Elem(), path+"[]")
		case *types.Map:
			visit(tt.Key(), path+"(key)")
			visit(tt.Elem(), path+"(value)")
		case *types.Interface:
			if tt.Empty() {
				report(path, "is declared any/interface{}, which defeats static privacy checking")
			}
			// Non-empty interfaces carry no state across gob without a
			// concrete type registration; the empty-interface rule catches
			// the generic escape hatch.
		case *types.Chan, *types.Signature:
			report(path, "is a channel or func, which cannot cross a process boundary")
		}
	}
	visit(root.Type(), root.Name())
}

// checkBusSurface flags federation.Bus methods that accept interface-typed
// payloads — the API must stay Summary-only.
func checkBusSurface(pass *analysis.Pass) {
	if pass.Pkg.Path() != federationPkg {
		return
	}
	obj, ok := pass.Pkg.Scope().Lookup("Bus").(*types.TypeName)
	if !ok {
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		return
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if !m.Exported() {
			continue
		}
		sig := m.Type().(*types.Signature)
		for j := 0; j < sig.Params().Len(); j++ {
			p := sig.Params().At(j)
			if iface, ok := p.Type().Underlying().(*types.Interface); ok && iface.Empty() {
				pass.Reportf(m.Pos(),
					"federation.Bus.%s accepts an any-typed payload %q: the bus API must be checker.Summary-only to keep the disclosure guarantee structural",
					m.Name(), p.Name())
			}
		}
	}
}
