package privleak_test

import (
	"testing"

	"github.com/dice-project/dice/internal/analysis"
	"github.com/dice-project/dice/internal/analysis/privleak"
	"github.com/dice-project/dice/internal/analysis/vettest"
)

func TestPrivleak(t *testing.T) {
	vettest.Run(t, []*analysis.Analyzer{privleak.Analyzer}, "testdata/a", "testdata/b")
}
