// Package a exercises the privleak boundary walker: only checker.Summary
// content may be reachable from a //dice:boundary type. BadViolation is the
// pre-PR 8 control-wire shape (full violations, Detail included, crossing
// the result frame).
package a

import (
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/node"
)

// GoodFrame carries only digest-level content and the summary itself.
//
//dice:boundary
type GoodFrame struct {
	Seq     int
	Domain  string
	Digests []checker.ViolationDigest
	Summary checker.Summary
}

// BadViolation ships full violations; Detail quotes node-local evidence.
//
//dice:boundary
type BadViolation struct { // want `reaches checker\.Violation`
	V []checker.Violation
}

// BadRecord drags a raw route record across the boundary.
//
//dice:boundary
type BadRecord struct { // want `reaches node\.RouteRecord`
	R node.RouteRecord
}

// payload hides the poison one indirection down.
type payload struct {
	Records map[string]node.PeerRouteMap
}

// BadNested reaches node state only transitively.
//
//dice:boundary
type BadNested struct { // want `reaches node\.PeerRouteMap`
	P *payload
}

// BadAny defeats static checking with an empty interface.
//
//dice:boundary
type BadAny struct { // want `defeats static privacy checking`
	Payload any
}

// BadChan cannot cross a process boundary at all.
//
//dice:boundary
type BadChan struct { // want `channel or func`
	C chan int
}

// Internal is not a boundary root; poison inside the domain is fine.
type Internal struct {
	V checker.Violation
	R node.RouteRecord
}

// AllowedFrame documents the emergency escape hatch.
//
//dice:boundary
//dice:allow privleak fixture demonstrates the emergency escape hatch
type AllowedFrame struct {
	V checker.Violation
}
