// Package b mirrors the procdriver frame protocol: every frame crosses the
// parent/child process boundary, so payloads must be canonical and
// self-contained — dialect text, codec-encoded snapshot bytes and counters.
// Raw speaker state (including the new obgpd package), checker evidence and
// live handles must stay on their own side of the pipe.
package b

import (
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/obgpd"
)

// GoodFrame is the canonical request/response shape: an op code, the
// dialect blob and the codec-encoded checkpoint payload.
//
//dice:boundary
type GoodFrame struct {
	Op       uint8
	Impl     string
	Config   string
	Snapshot []byte
}

// BadState ships the child's raw route table back in the reply.
//
//dice:boundary
type BadState struct { // want `reaches node\.PeerRouteMap`
	Routes node.PeerRouteMap
}

// BadEngine leaks obgpd engine internals instead of the codec form.
//
//dice:boundary
type BadEngine struct { // want `reaches obgpd\.EngineStats`
	Stats obgpd.EngineStats
}

// BadViolationFrame returns checker evidence wholesale instead of digests.
//
//dice:boundary
type BadViolationFrame struct { // want `reaches checker\.Violation`
	Found []checker.Violation
}

// BadHandle embeds a live callback, which cannot cross exec.
//
//dice:boundary
type BadHandle struct { // want `channel or func`
	OnFrame func([]byte)
}
