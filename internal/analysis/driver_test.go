package analysis_test

import (
	"bytes"
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/dice-project/dice/internal/analysis"
)

// boomAnalyzer flags every call to a function literally named boom — a toy
// check that exercises the driver's suppression and hygiene machinery
// without dragging in real analyzer logic.
var boomAnalyzer = &analysis.Analyzer{
	Name: "boom",
	Doc:  "flags calls to boom",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "boom" {
					pass.Reportf(call.Pos(), "call to boom")
				}
				return true
			})
		}
		return nil
	},
}

const hygieneFixture = `// Package p is a driver fixture.
package p

func boom() {}

// Flagged is a plain finding.
func Flagged() { boom() }

// Suppressed carries a valid allow with a reason.
func Suppressed() {
	//dice:allow boom reason documented here
	boom()
}

//dice:allow boom covers nothing on this or the next line
var unused = 1

//dice:allow nosuchcheck some reason
var unknown = 2

//dice:allow boom
var noReason = 3

//dice:allow
var noName = 4
`

func TestDriverSuppressionAndHygiene(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(hygieneFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader(dir)
	u, err := l.LoadDir(dir, analysis.ModulePath+"/fixture/p")
	if err != nil {
		t.Fatal(err)
	}
	d := analysis.NewDriver(boomAnalyzer)
	findings, err := d.Run([]*analysis.Unit{u})
	if err != nil {
		t.Fatal(err)
	}

	var msgs []string
	for _, f := range findings {
		msgs = append(msgs, f.Analyzer+": "+f.Message)
	}
	joined := strings.Join(msgs, "\n")

	expect := []string{
		"boom: call to boom", // Flagged, unsuppressed
		"allowdirective: unused //dice:allow boom",
		`allowdirective: //dice:allow names unknown analyzer "nosuchcheck"`,
		"allowdirective: //dice:allow boom requires a reason",
		"allowdirective: //dice:allow requires an analyzer name and a reason",
	}
	for _, want := range expect {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding %q in:\n%s", want, joined)
		}
	}
	if got := len(findings); got != len(expect) {
		t.Errorf("got %d findings, want %d:\n%s", got, len(expect), joined)
	}
	// The valid suppression must have swallowed the second boom call.
	if strings.Count(joined, "call to boom") != 1 {
		t.Errorf("suppression failed, findings:\n%s", joined)
	}

	var text bytes.Buffer
	analysis.WriteText(&text, findings)
	if !strings.Contains(text.String(), "p.go:7") {
		t.Errorf("WriteText output missing position: %s", text.String())
	}
}

func TestSARIFOutput(t *testing.T) {
	dir := t.TempDir()
	src := "package p\n\nfunc boom() {}\n\nfunc f() { boom() }\n"
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := analysis.NewLoader(dir)
	u, err := l.LoadDir(dir, analysis.ModulePath+"/fixture/p")
	if err != nil {
		t.Fatal(err)
	}
	d := analysis.NewDriver(boomAnalyzer)
	findings, err := d.Run([]*analysis.Unit{u})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("want 1 finding, got %v", findings)
	}
	var buf bytes.Buffer
	if err := analysis.WriteSARIF(&buf, dir, []*analysis.Analyzer{boomAnalyzer}, findings); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"version": "2.1.0"`,
		`"name": "dice-vet"`,
		`"ruleId": "boom"`,
		`"uri": "p.go"`, // root-relativized
		`"startLine": 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SARIF output missing %s:\n%s", want, out)
		}
	}
}
