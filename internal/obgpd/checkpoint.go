package obgpd

import (
	"fmt"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/node"
)

// Checkpoint is a lightweight checkpoint of one obgpd router. Like frr it
// carries the whole configuration as one ConfigText blob in its own
// dialect (dialect.go); RIB contents, sessions and the shared counters use
// the record forms from package node, and the obgpd-only process-split
// counters travel alongside them.
type Checkpoint struct {
	Name       string
	ConfigText string

	Sessions []node.SessionRecord
	AdjIn    node.PeerRouteMap
	LocRIB   []node.RouteRecord
	AdjOut   node.PeerRouteMap

	Stats     node.RouterStats
	Engine    EngineStats
	Events    []node.EventRecord
	Panicked  bool
	LastPanic string
	Started   bool

	// cfg keeps the in-process configuration so a same-process restore does
	// not re-parse ConfigText. Unexported: a checkpoint that crossed a
	// process boundary restores from the dialect text.
	cfg *node.Config
}

// NodeName implements node.Checkpoint.
func (cp *Checkpoint) NodeName() string { return cp.Name }

// Implementation implements node.Checkpoint.
func (cp *Checkpoint) Implementation() string { return Implementation }

// TakeCheckpoint implements node.Router.
func (r *Router) TakeCheckpoint() node.Checkpoint { return r.Checkpoint() }

// Checkpoint captures the router's current state.
func (r *Router) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Name:       r.cfg.Name,
		ConfigText: Render(r.cfg),
		AdjIn:      make(map[string][]node.RouteRecord),
		AdjOut:     make(map[string][]node.RouteRecord),
		Stats:      r.stats,
		Engine:     r.engine,
		Panicked:   r.panicked,
		LastPanic:  r.lastPanic,
		Started:    r.started,
		cfg:        r.cfg,
	}
	for _, name := range r.se.order {
		s := r.se.sessions[name]
		cp.Sessions = append(cp.Sessions, node.SessionRecord{
			Peer:                  s.neighbor,
			PeerAS:                uint32(s.remoteAS),
			State:                 int(s.state),
			PeerRouterID:          uint32(s.routerID),
			DownCount:             s.downs,
			NotificationsSent:     s.notifTx,
			NotificationsReceived: s.notifRx,
		})
		for _, route := range r.rde.adjIn[name].Routes() {
			cp.AdjIn[name] = append(cp.AdjIn[name], node.RecordFromRoute(route))
		}
		for _, route := range r.rde.adjOut[name].Routes() {
			cp.AdjOut[name] = append(cp.AdjOut[name], node.RecordFromRoute(route))
		}
	}
	for _, pfx := range r.rde.locRIB.Prefixes() {
		for _, cand := range r.rde.locRIB.Candidates(pfx) {
			cp.LocRIB = append(cp.LocRIB, node.RecordFromRoute(cand))
		}
	}
	for _, ev := range r.events {
		cp.Events = append(cp.Events, node.EventRecord{
			AtNanos: int64(ev.At),
			Prefix:  ev.Prefix.String(),
			OldVia:  ev.OldVia,
			NewVia:  ev.NewVia,
		})
	}
	return cp
}

// Image is the immutable, shareable part of a restored obgpd router: its
// validated configuration. Built once per snapshot and shared by clones.
type Image struct {
	cfg *node.Config
}

// NewImage validates the configuration once and freezes it into an image.
func NewImage(cfg *node.Config) (*Image, error) {
	cfg = cfg.Clone()
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Image{cfg: cfg}, nil
}

// ImageOf builds the image for a checkpoint: the in-process configuration
// when the checkpoint never left the process, otherwise the configuration
// is re-parsed from the dialect text — once, instead of once per restore.
func ImageOf(cp *Checkpoint) (*Image, error) {
	cfg := cp.cfg
	if cfg == nil {
		parsed, err := ParseConfig(cp.ConfigText)
		if err != nil {
			return nil, fmt.Errorf("obgpd: restore %s: %w", cp.Name, err)
		}
		cfg = parsed
	}
	return NewImage(cfg)
}

// Name implements node.Image.
func (im *Image) Name() string { return im.cfg.Name }

// Implementation implements node.Image.
func (im *Image) Implementation() string { return Implementation }

// Config returns the image's frozen configuration. Callers must not
// mutate it.
func (im *Image) Config() *node.Config { return im.cfg }

// prefixGroup holds the decoded Loc-RIB candidates of one prefix — the
// unit obgpd's restore path clones at. Grouping by prefix mirrors how the
// RDE thinks about its table (per-prefix candidate sets), where frr spans
// a flat route array and bird instantiates a slab template.
type prefixGroup struct {
	prefix bgp.Prefix
	routes []*rib.Route
}

// neighborGroup holds one neighbor's decoded Adj-RIB halves.
type neighborGroup struct {
	neighbor string
	in, out  []*rib.Route
}

// State is the decoded, restore-ready mutable state of one obgpd
// checkpoint: Loc-RIB candidates grouped per prefix, Adj-RIBs grouped per
// neighbor, each route cloned on instantiation. A State is immutable
// after DecodeState and safe to share across clones.
type State struct {
	sessions  []node.SessionRecord
	locRIB    []prefixGroup
	neighbors []neighborGroup
	stats     node.RouterStats
	engine    EngineStats
	events    []node.RouteEvent
	panicked  bool
	lastPanic string
	started   bool
}

// DecodeState converts a checkpoint's serializable records into
// restore-ready form.
func DecodeState(cp *Checkpoint) (*State, error) {
	st := &State{
		sessions:  append([]node.SessionRecord(nil), cp.Sessions...),
		stats:     cp.Stats,
		engine:    cp.Engine,
		panicked:  cp.Panicked,
		lastPanic: cp.LastPanic,
		started:   cp.Started,
	}
	decode := func(recs []node.RouteRecord) ([]*rib.Route, error) {
		var out []*rib.Route
		for _, rec := range recs {
			route, err := rec.Route()
			if err != nil {
				return nil, fmt.Errorf("obgpd: restore %s: %w", cp.Name, err)
			}
			out = append(out, route)
		}
		return out, nil
	}
	// Checkpoint LocRIB records are written prefix by prefix in canonical
	// order; rebuild those per-prefix groups.
	locRIB, err := decode(cp.LocRIB)
	if err != nil {
		return nil, err
	}
	for _, route := range locRIB {
		if n := len(st.locRIB); n > 0 && st.locRIB[n-1].prefix == route.Prefix {
			st.locRIB[n-1].routes = append(st.locRIB[n-1].routes, route)
			continue
		}
		st.locRIB = append(st.locRIB, prefixGroup{prefix: route.Prefix, routes: []*rib.Route{route}})
	}
	// Session order is the configuration order, which is also how the maps
	// were filled; iterate the session records to keep decoding stable.
	for _, sr := range cp.Sessions {
		in, err := decode(cp.AdjIn[sr.Peer])
		if err != nil {
			return nil, err
		}
		out, err := decode(cp.AdjOut[sr.Peer])
		if err != nil {
			return nil, err
		}
		st.neighbors = append(st.neighbors, neighborGroup{neighbor: sr.Peer, in: in, out: out})
	}
	for _, ev := range cp.Events {
		pfx, err := bgp.ParsePrefix(ev.Prefix)
		if err != nil {
			return nil, fmt.Errorf("obgpd: restore %s: %w", cp.Name, err)
		}
		st.events = append(st.events, node.RouteEvent{
			At:     time.Duration(ev.AtNanos),
			Prefix: pfx,
			OldVia: ev.OldVia,
			NewVia: ev.NewVia,
		})
	}
	return st, nil
}

// Restore builds a fresh router on the image and applies the state to it.
func (im *Image) Restore(st *State) (*Router, error) {
	r := newOn(im.cfg)
	if err := r.applyState(im, st); err != nil {
		return nil, err
	}
	return r, nil
}

// Restore builds a fresh Router from a checkpoint (the cold path; see
// ImageOf/DecodeState for the shared-decode path).
func Restore(cp *Checkpoint) (*Router, error) {
	im, err := ImageOf(cp)
	if err != nil {
		return nil, err
	}
	st, err := DecodeState(cp)
	if err != nil {
		return nil, err
	}
	return im.Restore(st)
}

// ResetTo implements node.Router: it returns the router to the snapshot
// described by (image, state) in place — the pooled-clone hot path.
func (r *Router) ResetTo(nim node.Image, nst node.State) error {
	im, ok := nim.(*Image)
	if !ok {
		return fmt.Errorf("obgpd: reset %s: image is %T, not an obgpd image", r.cfg.Name, nim)
	}
	st, ok := nst.(*State)
	if !ok {
		return fmt.Errorf("obgpd: reset %s: state is %T, not an obgpd state", r.cfg.Name, nst)
	}
	r.exploreMachine, r.explorePeer, r.explorePending = nil, "", false
	r.activeMachine = nil
	r.hook = nil
	return r.applyState(im, st)
}

// applyState overwrites the router's mutable state with a fresh
// instantiation of the decoded state. Every route is deep-copied per
// group, so concurrent clones sharing one State never alias mutable
// attributes.
func (r *Router) applyState(im *Image, st *State) error {
	r.cfg = im.cfg
	r.se = sessionEngine{sessions: make(map[string]*session, len(im.cfg.Neighbors))}
	r.rde = rde{
		adjIn:  make(map[string]*rib.AdjRIBIn, len(im.cfg.Neighbors)),
		adjOut: make(map[string]*rib.AdjRIBOut, len(im.cfg.Neighbors)),
		locRIB: rib.NewLocRIBFor(Decision),
	}
	for _, n := range im.cfg.Neighbors {
		r.addNeighbor(n)
	}
	for _, sr := range st.sessions {
		s := r.se.sessions[sr.Peer]
		if s == nil {
			return fmt.Errorf("obgpd: restore %s: unknown session %s", im.cfg.Name, sr.Peer)
		}
		s.state = sessionState(sr.State)
		s.routerID = bgp.RouterID(sr.PeerRouterID)
		s.downs = sr.DownCount
		s.notifTx = sr.NotificationsSent
		s.notifRx = sr.NotificationsReceived
	}
	for _, g := range st.locRIB {
		for _, route := range g.routes {
			r.rde.locRIB.InsertCandidate(route.Clone())
		}
	}
	r.rde.locRIB.ReselectAll()
	for _, g := range st.neighbors {
		if r.se.sessions[g.neighbor] == nil {
			return fmt.Errorf("obgpd: restore %s: unknown session %s", im.cfg.Name, g.neighbor)
		}
		for _, route := range g.in {
			r.rde.adjIn[g.neighbor].Set(route.Clone())
		}
		for _, route := range g.out {
			r.rde.adjOut[g.neighbor].Set(route.Clone())
		}
	}
	r.stats = st.stats
	r.engine = st.engine
	r.panicked = st.panicked
	r.lastPanic = st.lastPanic
	r.started = st.started
	if len(st.events) > 0 {
		r.events = append(r.events[:0:0], st.events...)
	} else {
		r.events = nil
	}
	return nil
}
