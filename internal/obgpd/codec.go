package obgpd

import (
	"fmt"

	"github.com/dice-project/dice/internal/checkpoint/codec"
)

// This file is obgpd's canonical checkpoint payload, the third alongside
// bird's and frr's: the whole configuration travels as one dialect blob
// (ConfigText), the RIB, session, counter and event slabs are the shared
// codec forms, and the obgpd-only EngineStats counters ride in their own
// pinned field run — so a three-way mixed snapshot is canonical end to end.

// engineStatsFieldCount pins the EngineStats field set the codec
// serializes. Changing EngineStats requires bumping this constant together
// with putEngineStats/engineStats — the decoder rejects any other count
// instead of misaligning. dice-vet's codecpin analyzer verifies the pin
// against the struct.
//
//dice:fieldpin EngineStats
const engineStatsFieldCount = 3

func putEngineStats(w *codec.Writer, s EngineStats) {
	w.Uvarint(engineStatsFieldCount)
	w.Varint(int64(s.ImsgsSEToRDE))
	w.Varint(int64(s.ImsgsRDEToSE))
	w.Varint(int64(s.RDEDecisions))
}

func engineStats(r *codec.Reader) EngineStats {
	var s EngineStats
	if n := r.Uvarint(); r.Err() == nil && n != engineStatsFieldCount {
		r.Fail("engine stats field count %d, want %d", n, engineStatsFieldCount)
		return s
	}
	s.ImsgsSEToRDE = int(r.Varint())
	s.ImsgsRDEToSE = int(r.Varint())
	s.RDEDecisions = int(r.Varint())
	return s
}

// encodeCanonical serializes a checkpoint into the codec payload.
func encodeCanonical(cp *Checkpoint) []byte {
	w := codec.NewWriter()
	w.String(cp.Name)
	w.String(cp.ConfigText)
	codec.PutSessionRecords(w, cp.Sessions)
	codec.PutPeerRouteMap(w, cp.AdjIn)
	codec.PutRouteRecords(w, cp.LocRIB)
	codec.PutPeerRouteMap(w, cp.AdjOut)
	codec.PutStats(w, cp.Stats)
	putEngineStats(w, cp.Engine)
	codec.PutEventRecords(w, cp.Events)
	w.Bool(cp.Panicked)
	w.String(cp.LastPanic)
	w.Bool(cp.Started)
	return w.Bytes()
}

// decodeCanonical parses a canonical payload back into a checkpoint. The
// result has no in-process config; restoring re-parses the dialect text.
func decodeCanonical(payload []byte) (*Checkpoint, error) {
	r := codec.NewReader(payload)
	cp := &Checkpoint{
		Name:       r.String(),
		ConfigText: r.String(),
	}
	cp.Sessions = codec.SessionRecords(r)
	cp.AdjIn = codec.PeerRouteMap(r)
	cp.LocRIB = codec.RouteRecords(r)
	cp.AdjOut = codec.PeerRouteMap(r)
	cp.Stats = codec.Stats(r)
	cp.Engine = engineStats(r)
	cp.Events = codec.EventRecords(r)
	cp.Panicked = r.Bool()
	cp.LastPanic = r.String()
	cp.Started = r.Bool()
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("obgpd: decode canonical checkpoint: %w", err)
	}
	return cp, nil
}
