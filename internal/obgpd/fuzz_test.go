package obgpd

import "testing"

// FuzzOBGPDConfigParse fuzzes the dialect parser that checkpoint restore
// trusts (an obgpd checkpoint carries its whole configuration as dialect
// text). Properties: the parser never panics on arbitrary text, and
// accepted text round-trips — rendering the parsed configuration and
// parsing again yields the same rendering (Render∘ParseConfig is a fixed
// point), so a checkpoint written by one process is read back identically
// by another.
func FuzzOBGPDConfigParse(f *testing.F) {
	f.Add(Render(fullFeatureConfig()))
	f.Add("AS 65001\nrouter-id 10.0.0.1\nsocket \"R1\"\nnetwork 10.1.0.0/16\n")
	f.Add("neighbor \"R2\" {\n\tremote-as 65002\n\tfilter in \"ALL\"\n}\n")
	f.Add("filter \"F\" {\n\tdefault deny\n\trule allow {\n\t\tmatch prefix 10.0.0.0/8 prefixlen >= 9 prefixlen <= 24\n\t\tset localpref 150\n\t}\n}\n")
	f.Add("filter \"F\" {\n\trule continue {\n\t\tmatch prefix-set \"PL\" { 172.16.0.0/12 exact, 10.9.0.0/16 }\n\t\tset prepend 65002 3\n\t}\n}\n")
	f.Add("holdtime 1m30s\nconnect-retry 7s\nkeepalive 5s\n")
	f.Add("filter \"F\" {")
	f.Add("}")
	f.Add("")

	f.Fuzz(func(t *testing.T, text string) {
		cfg, err := ParseConfig(text)
		if err != nil {
			return // rejecting malformed text is fine; not panicking is the property
		}
		first := Render(cfg)
		again, err := ParseConfig(first)
		if err != nil {
			t.Fatalf("rendered form of accepted input does not parse: %v\ninput    %q\nrendered %q", err, text, first)
		}
		if second := Render(again); second != first {
			t.Fatalf("Render∘ParseConfig is not a fixed point:\nfirst  %q\nsecond %q", first, second)
		}
	})
}
