package obgpd_test

import (
	"encoding/json"
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/obgpd"
	"github.com/dice-project/dice/internal/topology"
)

// obgpdLine builds a Line(n) topology running the obgpd backend everywhere.
func obgpdLine(n int) *topology.Topology {
	return topology.Line(n).SetImpl("obgpd")
}

func TestOBGPDClusterConverges(t *testing.T) {
	topo := obgpdLine(4)
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	if events := c.Converge(); events == 0 {
		t.Fatal("no events processed")
	}
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		if r.Implementation() != "obgpd" {
			t.Fatalf("router %s runs %q, want obgpd", name, r.Implementation())
		}
		for _, tn := range topo.Nodes {
			if r.LocRIB().Best(tn.Prefixes[0]) == nil {
				t.Errorf("%s is missing a route to %s", name, tn.Prefixes[0])
			}
		}
		if v := r.CheckInvariants(); len(v) != 0 {
			t.Errorf("%s invariant violations: %v", name, v)
		}
		// The process split saw traffic: session-up dumps and updates in,
		// advertisements out, decisions run.
		or := r.(*obgpd.Router)
		if e := or.Engine(); e.ImsgsSEToRDE == 0 || e.ImsgsRDEToSE == 0 || e.RDEDecisions == 0 {
			t.Errorf("%s engine counters empty: %+v", name, e)
		}
	}
}

// TestThreeBackendsInteroperate proves the wire compatibility the
// differential oracle rests on: a line mixing all three backends still
// converges to full reachability with clean invariants.
func TestThreeBackendsInteroperate(t *testing.T) {
	topo := topology.Line(4)
	topo.SetImpl("frr", "R2").SetImpl("obgpd", "R3")
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1, GaoRexford: true})
	c.Converge()
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		for _, tn := range topo.Nodes {
			if r.LocRIB().Best(tn.Prefixes[0]) == nil {
				t.Errorf("%s (%s) is missing a route to %s", name, r.Implementation(), tn.Prefixes[0])
			}
		}
		if v := r.CheckInvariants(); len(v) != 0 {
			t.Errorf("%s invariant violations: %v", name, v)
		}
	}
}

// TestOBGPDDecisionPrefersOldest pins the backend's deliberate divergence:
// with candidates tied through step 6, obgpd keeps the first-installed
// (oldest) path where bird would take the lower router ID and frr the
// lower peer name.
func TestOBGPDDecisionPrefersOldest(t *testing.T) {
	mk := func(peerName string, id bgp.RouterID) *rib.Route {
		return &rib.Route{
			Prefix:       bgp.MustParsePrefix("10.99.0.0/16"),
			Attrs:        &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65100, 65101}, NextHop: 1},
			Peer:         peerName,
			PeerAS:       bgp.ASN(65000 + uint32(id)),
			PeerRouterID: id,
			EBGP:         true,
		}
	}
	r, err := obgpd.New(&node.Config{Name: "X", AS: 65042, RouterID: 42,
		Neighbors: []node.NeighborConfig{{Name: "R5", AS: 65005}, {Name: "R10", AS: 65002}}})
	if err != nil {
		t.Fatal(err)
	}
	// "R10" sorts before "R5" AND has the lower router ID: both other
	// policies would switch to it. obgpd keeps the incumbent — it arrived
	// first.
	viaR5, viaR10 := mk("R5", 5), mk("R10", 2)
	r.LocRIB().Update(nil, viaR5)
	change := r.LocRIB().Update(nil, viaR10)
	if change.Changed {
		t.Fatalf("obgpd replaced the older path with %s", change.New.Peer)
	}
	if best := r.LocRIB().Best(viaR5.Prefix); best == nil || best.Peer != "R5" {
		t.Fatalf("obgpd best = %v, want the oldest path via R5", best)
	}
	// Same candidates under the other two policies select R10.
	cands := r.LocRIB().Candidates(viaR5.Prefix)
	for _, pol := range []rib.DecisionPolicy{rib.DecisionRouterIDFirst, rib.DecisionPeerAddressFirst} {
		if got := rib.SelectBestWith(nil, cands, pol); got.Peer != "R10" {
			t.Fatalf("%v selection = %s, want R10", pol, got.Peer)
		}
	}
}

// canonical returns a deterministic byte form of a cluster's full state.
func canonical(t *testing.T, c *cluster.Cluster) string {
	t.Helper()
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatalf("marshal snapshot: %v", err)
	}
	return string(data)
}

// TestOBGPDCheckpointCrossProcessRestore proves the dialect is a working
// serialization: a converged obgpd cluster's snapshot survives encoding
// (dropping the in-process configs), and the decoded checkpoints restore
// through ParseConfig into a byte-identical cluster.
func TestOBGPDCheckpointCrossProcessRestore(t *testing.T) {
	topo := obgpdLine(3)
	opts := cluster.Options{Seed: 1, GaoRexford: true}
	live := cluster.MustBuild(topo, opts)
	live.Converge()
	snap := live.Snapshot()

	data, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	decoded, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if impl := decoded.Nodes["R1"].Implementation(); impl != "obgpd" {
		t.Fatalf("decoded checkpoint implementation = %q", impl)
	}
	fromDialect, err := cluster.FromSnapshot(topo, decoded, opts)
	if err != nil {
		t.Fatalf("FromSnapshot(decoded): %v", err)
	}
	fromMemory, err := cluster.FromSnapshot(topo, snap, opts)
	if err != nil {
		t.Fatalf("FromSnapshot(original): %v", err)
	}
	if got, want := canonical(t, fromDialect), canonical(t, fromMemory); got != want {
		t.Fatalf("restore through the dialect text differs from in-process restore")
	}
	fromDialect.Converge()
	for _, name := range fromDialect.RouterNames() {
		for _, tn := range topo.Nodes {
			if fromDialect.Router(name).LocRIB().Best(tn.Prefixes[0]) == nil {
				t.Errorf("%s lost route to %s after dialect restore", name, tn.Prefixes[0])
			}
		}
	}
}

// TestOBGPDCanonicalCodecRoundTrip holds the backend to the canonical-codec
// contract: EncodeCanonical is deterministic and DecodeCanonical restores a
// checkpoint that re-encodes byte-identically and restores a working router
// with the engine counters intact.
func TestOBGPDCanonicalCodecRoundTrip(t *testing.T) {
	topo := obgpdLine(3)
	c := cluster.MustBuild(topo, cluster.Options{Seed: 5, GaoRexford: true})
	c.Converge()
	be, err := node.BackendFor("obgpd")
	if err != nil {
		t.Fatal(err)
	}
	cp := c.Router("R2").TakeCheckpoint()
	payload, err := be.EncodeCanonical(cp)
	if err != nil {
		t.Fatalf("EncodeCanonical: %v", err)
	}
	again, err := be.EncodeCanonical(cp)
	if err != nil || string(payload) != string(again) {
		t.Fatalf("EncodeCanonical not deterministic (err %v)", err)
	}
	decoded, err := be.DecodeCanonical(payload)
	if err != nil {
		t.Fatalf("DecodeCanonical: %v", err)
	}
	re, err := be.EncodeCanonical(decoded)
	if err != nil || string(re) != string(payload) {
		t.Fatalf("decoded checkpoint re-encodes differently (err %v)", err)
	}
	restored, err := node.RestoreRouter(decoded)
	if err != nil {
		t.Fatalf("RestoreRouter: %v", err)
	}
	or, lr := restored.(*obgpd.Router), c.Router("R2").(*obgpd.Router)
	if or.Engine() != lr.Engine() {
		t.Fatalf("engine counters lost: %+v vs %+v", or.Engine(), lr.Engine())
	}
	if or.Stats() != lr.Stats() {
		t.Fatalf("stats lost: %+v vs %+v", or.Stats(), lr.Stats())
	}
	// Malformed payloads error, never panic.
	for _, bad := range [][]byte{nil, {0x01}, payload[:len(payload)/2], append(append([]byte(nil), payload...), 0xFF)} {
		if _, err := be.DecodeCanonical(bad); err == nil {
			t.Errorf("DecodeCanonical accepted malformed payload of %d bytes", len(bad))
		}
	}
}

// TestOBGPDResetEquivalentToColdRebuild is the obgpd instance of the golden
// clone-lifecycle property: an in-place ResetTo of a dirtied clone must be
// byte-identical to a cold rebuild, including under further execution —
// which also pins that Loc-RIB age stamps rewind and replay identically.
func TestOBGPDResetEquivalentToColdRebuild(t *testing.T) {
	topo := obgpdLine(3)
	opts := cluster.Options{Seed: 3}
	live := cluster.MustBuild(topo, opts)
	live.Converge()
	snap := live.Snapshot()
	store, err := checkpoint.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	pool := cluster.NewClonePool(topo, store, opts)

	clone, err := pool.Lease()
	if err != nil {
		t.Fatal(err)
	}
	// Dirty the clone thoroughly.
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65002, 64999}, NextHop: 9}
	clone.InjectUpdate("R2", "R1", &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("88.1.0.0/16")}})
	clone.Net.RunQuiescent(0)
	pool.Release(clone)

	pooled, err := pool.Lease() // reset of the dirtied clone
	if err != nil {
		t.Fatal(err)
	}
	cold, err := cluster.FromSnapshot(topo, snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := canonical(t, pooled), canonical(t, cold); got != want {
		t.Fatalf("obgpd pooled reset differs from cold rebuild")
	}
	in := &bgp.Update{Attrs: attrs.Clone(), NLRI: []bgp.Prefix{bgp.MustParsePrefix("99.1.0.0/16")}}
	pooled.InjectUpdate("R2", "R1", in)
	cold.InjectUpdate("R2", "R1", in)
	pooled.Net.RunQuiescent(0)
	cold.Net.RunQuiescent(0)
	if got, want := canonical(t, pooled), canonical(t, cold); got != want {
		t.Fatalf("obgpd pooled reset diverged from cold rebuild under execution")
	}
}

// TestOBGPDRejectsForeignImageAndState pins the backend boundary: obgpd
// routers refuse to reset onto bird-decoded snapshot halves, and the obgpd
// backend hooks refuse foreign checkpoints.
func TestOBGPDRejectsForeignImageAndState(t *testing.T) {
	obgpdTopo := obgpdLine(2)
	birdTopo := topology.Line(2)
	opts := cluster.Options{Seed: 1}
	oc := cluster.MustBuild(obgpdTopo, opts)
	bc := cluster.MustBuild(birdTopo, opts)
	oc.Converge()
	bc.Converge()
	birdStore, err := checkpoint.NewStore(bc.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if err := oc.Router("R1").ResetTo(birdStore.Image("R1"), birdStore.State("R1")); err == nil {
		t.Fatal("obgpd router accepted a bird image")
	}
	be, _ := node.BackendFor("obgpd")
	if _, err := be.ImageOf(bc.Router("R1").TakeCheckpoint()); err == nil {
		t.Fatal("obgpd backend accepted a bird checkpoint")
	}
	if _, err := be.DecodeState(bc.Router("R1").TakeCheckpoint()); err == nil {
		t.Fatal("obgpd backend decoded a bird checkpoint")
	}
}
