// Package obgpd implements the third BGP speaker backend of the DiCE
// reproduction: an OpenBGPD-flavored router that registers as node.Router
// implementation "obgpd". It interoperates with the bird and frr backends
// on the wire — same BGP-4 messages, same interpreted policies — but it is
// deliberately its own implementation along every axis the differential
// oracle exercises:
//
//   - its RIB decision process breaks final ties on the oldest route
//     (rib.DecisionOldestFirst, the lowest Loc-RIB arrival stamp), the
//     deterministic stand-in for OpenBGPD's route-age stability preference
//     and a third legal reading of the RFC 4271 §9.1.2.2 tail alongside
//     bird's router-ID order and frr's neighbor-address order;
//   - its configuration dialect is bgpd.conf-style text with brace-nested
//     neighbor and filter blocks (dialect.go), which is also what its
//     checkpoints carry across process boundaries;
//   - its internal structure mirrors OpenBGPD's process split: a session
//     engine owns the per-neighbor FSM, a route decision engine (RDE) owns
//     every RIB, and the two halves talk only through counted handoffs —
//     where frr keeps one peer struct holding both halves;
//   - its checkpoint state model clones routes per prefix group rather
//     than frr's flat spans or bird's slab template.
//
// With three backends deployed, checker.CrossImplDivergence upgrades from
// a pairwise alarm to a voting oracle: a selection two backends agree on
// and one contradicts is majority-outvoted, a three-way split is pairwise
// legal. This package provides the third vote.
package obgpd

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

// Implementation is this backend's registry tag.
const Implementation = "obgpd"

// Decision is the backend's RIB tie-breaking policy.
const Decision = rib.DecisionOldestFirst

func init() {
	gob.Register(&Checkpoint{})
	node.Register(node.Backend{
		Name:     Implementation,
		Decision: Decision,
		Build: func(cfg *node.Config) (node.Router, error) {
			return New(cfg)
		},
		ImageOf: func(cp node.Checkpoint) (node.Image, error) {
			ocp, ok := cp.(*Checkpoint)
			if !ok {
				return nil, fmt.Errorf("obgpd: checkpoint for %s is %T, not an obgpd checkpoint", cp.NodeName(), cp)
			}
			return ImageOf(ocp)
		},
		DecodeState: func(cp node.Checkpoint) (node.State, error) {
			ocp, ok := cp.(*Checkpoint)
			if !ok {
				return nil, fmt.Errorf("obgpd: checkpoint for %s is %T, not an obgpd checkpoint", cp.NodeName(), cp)
			}
			return DecodeState(ocp)
		},
		Restore: func(im node.Image, st node.State) (node.Router, error) {
			oim, ok := im.(*Image)
			if !ok {
				return nil, fmt.Errorf("obgpd: image for %s is %T, not an obgpd image", im.Name(), im)
			}
			ost, ok := st.(*State)
			if !ok {
				return nil, fmt.Errorf("obgpd: restore %s: state is %T, not an obgpd state", im.Name(), st)
			}
			return oim.Restore(ost)
		},
		DecodeCheckpoint: func(data []byte) (node.Checkpoint, error) {
			var cp Checkpoint
			if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&cp); err != nil {
				return nil, fmt.Errorf("obgpd: decode checkpoint: %w", err)
			}
			return &cp, nil
		},
		EncodeCanonical: func(cp node.Checkpoint) ([]byte, error) {
			ocp, ok := cp.(*Checkpoint)
			if !ok {
				return nil, fmt.Errorf("obgpd: checkpoint for %s is %T, not an obgpd checkpoint", cp.NodeName(), cp)
			}
			return encodeCanonical(ocp), nil
		},
		DecodeCanonical: func(payload []byte) (node.Checkpoint, error) {
			return decodeCanonical(payload)
		},
	})
}

// sessionState is the session engine's FSM state, following OpenBGPD's
// state names (Connect and Active collapse into one in an emulator whose
// transport never fails to dial).
type sessionState int

const (
	sessionIdle sessionState = iota
	sessionConnect
	sessionOpenSent
	sessionOpenConfirm
	sessionEstablished
)

// session is one neighbor's FSM record. Unlike frr's peer struct it holds
// no RIBs: those live in the RDE, on the other side of the process split.
type session struct {
	neighbor  string
	remoteAS  bgp.ASN
	routerID  bgp.RouterID
	state     sessionState
	filterIn  string
	filterOut string
	downs     int
	notifTx   int
	notifRx   int
}

func (s *session) up() bool { return s.state == sessionEstablished }

// sessionEngine is the FSM half of the router: it owns every session and
// nothing else, mirroring OpenBGPD's unprivileged session process.
type sessionEngine struct {
	sessions map[string]*session
	// order keeps sessions in configuration order for deterministic sweeps.
	order []string
}

// rde is the route decision engine: it owns the Adj-RIBs and the Loc-RIB,
// and it alone runs the decision process.
type rde struct {
	adjIn  map[string]*rib.AdjRIBIn
	adjOut map[string]*rib.AdjRIBOut
	locRIB *rib.LocRIB
}

// EngineStats counts traffic across the session-engine/RDE split — the
// imsg channel a real OpenBGPD pushes every route and session event
// through. They are obgpd-only counters, checkpointed next to the shared
// node.RouterStats and restored with them, so they are a deterministic
// function of execution history like everything else in a checkpoint.
type EngineStats struct {
	// ImsgsSEToRDE counts session-engine→RDE handoffs: parsed updates,
	// withdrawals and session-down sweeps entering the decision engine.
	ImsgsSEToRDE int
	// ImsgsRDEToSE counts RDE→session-engine handoffs: advertisements and
	// withdrawals leaving the decision engine for the wire.
	ImsgsRDEToSE int
	// RDEDecisions counts decision-process runs inside the RDE.
	RDEDecisions int
}

// Router is the OpenBGPD-flavored emulated BGP speaker. It implements
// node.Router and netem.Node.
type Router struct {
	cfg *node.Config
	se  sessionEngine
	rde rde

	exploreMachine *concolic.Machine
	explorePeer    string
	explorePending bool
	activeMachine  *concolic.Machine
	hook           node.UpdateHook

	stats     node.RouterStats
	engine    EngineStats
	events    []node.RouteEvent
	panicked  bool
	lastPanic string
	started   bool
}

// Interface check: obgpd.Router is a full node.Router backend.
var _ node.Router = (*Router)(nil)

// New builds a router from the semantic configuration and installs the
// locally originated routes into the Loc-RIB.
func New(cfg *node.Config) (*Router, error) {
	cfg = cfg.Clone()
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := newOn(cfg)
	r.networkStatements()
	return r, nil
}

// newOn wires the empty engines for a validated configuration.
func newOn(cfg *node.Config) *Router {
	r := &Router{
		cfg: cfg,
		se:  sessionEngine{sessions: make(map[string]*session, len(cfg.Neighbors))},
		rde: rde{
			adjIn:  make(map[string]*rib.AdjRIBIn, len(cfg.Neighbors)),
			adjOut: make(map[string]*rib.AdjRIBOut, len(cfg.Neighbors)),
			locRIB: rib.NewLocRIBFor(Decision),
		},
	}
	for _, n := range cfg.Neighbors {
		r.addNeighbor(n)
	}
	return r
}

func (r *Router) addNeighbor(n node.NeighborConfig) *session {
	s := &session{
		neighbor:  n.Name,
		remoteAS:  n.AS,
		filterIn:  n.Import,
		filterOut: n.Export,
	}
	r.se.sessions[n.Name] = s
	r.se.order = append(r.se.order, n.Name)
	r.rde.adjIn[n.Name] = rib.NewAdjRIBIn()
	r.rde.adjOut[n.Name] = rib.NewAdjRIBOut()
	return s
}

// networkStatements installs the locally originated prefixes, the RDE's
// reading of the config's network statements.
func (r *Router) networkStatements() {
	for _, pfx := range r.cfg.Networks {
		r.engine.RDEDecisions++
		r.rde.locRIB.Update(nil, &rib.Route{
			Prefix: pfx,
			Attrs:  &bgp.PathAttributes{Origin: bgp.OriginIGP, NextHop: uint32(r.cfg.RouterID)},
			Local:  true,
		})
		r.stats.RoutesOriginated++
	}
}

// ID implements netem.Node.
func (r *Router) ID() netem.NodeID { return netem.NodeID(r.cfg.Name) }

// Implementation implements node.Router.
func (r *Router) Implementation() string { return Implementation }

// Config implements node.Router.
func (r *Router) Config() *node.Config { return r.cfg }

// LocRIB implements node.Router.
func (r *Router) LocRIB() *rib.LocRIB { return r.rde.locRIB }

// AdjIn returns the RDE's Adj-RIB-In for a neighbor, or nil.
func (r *Router) AdjIn(name string) *rib.AdjRIBIn { return r.rde.adjIn[name] }

// AdjOut returns the RDE's Adj-RIB-Out for a neighbor, or nil.
func (r *Router) AdjOut(name string) *rib.AdjRIBOut { return r.rde.adjOut[name] }

// Stats implements node.Router.
func (r *Router) Stats() node.RouterStats { return r.stats }

// Engine returns the obgpd-only process-split counters.
func (r *Router) Engine() EngineStats { return r.engine }

// Events implements node.Router.
func (r *Router) Events() []node.RouteEvent { return r.events }

// Panicked implements node.Router.
func (r *Router) Panicked() (bool, string) { return r.panicked, r.lastPanic }

// SetUpdateHook implements node.Router.
func (r *Router) SetUpdateHook(h node.UpdateHook) { r.hook = h }

// ActiveMachine implements node.Router (and node.HookContext).
func (r *Router) ActiveMachine() *concolic.Machine { return r.activeMachine }

// ExploreNextUpdate implements node.Router: the next UPDATE received from
// the named peer is parsed under the machine.
func (r *Router) ExploreNextUpdate(m *concolic.Machine, fromPeer string) {
	r.exploreMachine, r.explorePeer, r.explorePending = m, fromPeer, true
}

//
// netem.Node implementation — the session engine's half.
//

// Start implements netem.Node: every configured session leaves Idle
// through Connect (the emulated transport always dials) and sends OPEN.
func (r *Router) Start(env netem.Env) {
	if r.started {
		return
	}
	r.started = true
	for _, name := range r.se.order {
		r.sessionConnectTo(env, r.se.sessions[name])
	}
}

func (r *Router) sessionConnectTo(env netem.Env, s *session) {
	s.state = sessionConnect
	r.send(env, s.neighbor, &bgp.Open{
		Version:  bgp.Version,
		AS:       r.cfg.AS,
		HoldTime: uint16(r.cfg.HoldTime / time.Second),
		RouterID: r.cfg.RouterID,
	})
	r.stats.OpensSent++
	s.state = sessionOpenSent
	env.SetTimer("connretry/"+s.neighbor, r.cfg.ConnectRetry)
}

// HandleTimer implements netem.Node.
func (r *Router) HandleTimer(env netem.Env, name string) {
	if neighbor, ok := strings.CutPrefix(name, "connretry/"); ok {
		if s := r.se.sessions[neighbor]; s != nil && !s.up() {
			r.sessionConnectTo(env, s)
		}
		return
	}
	if neighbor, ok := strings.CutPrefix(name, "keepalive/"); ok {
		s := r.se.sessions[neighbor]
		if s != nil && s.up() && r.cfg.KeepaliveInterval > 0 {
			r.send(env, neighbor, &bgp.Keepalive{})
			r.stats.KeepalivesSent++
			env.SetTimer(name, r.cfg.KeepaliveInterval)
		}
	}
}

// HandleMessage implements netem.Node. Handler crashes (including those
// from injected programming errors) are contained and recorded, mirroring
// a daemon whose crash is flagged by its supervisor.
func (r *Router) HandleMessage(env netem.Env, from netem.NodeID, payload []byte) {
	defer func() {
		if rec := recover(); rec != nil {
			r.panicked = true
			r.lastPanic = fmt.Sprint(rec)
			r.stats.HandlerCrashes++
		}
	}()
	s := r.se.sessions[string(from)]
	if s == nil {
		return // message from an unconfigured neighbor: ignore
	}
	typ, body, err := bgp.ValidateHeader(payload)
	if err != nil {
		r.sessionError(env, s, err)
		return
	}
	switch typ {
	case bgp.MsgOpen:
		r.recvOpen(env, s, body)
	case bgp.MsgKeepalive:
		r.recvKeepalive(env, s)
	case bgp.MsgNotification:
		s.notifRx++
		r.sessionDown(env, s)
	case bgp.MsgUpdate:
		if !s.up() {
			r.sessionError(env, s, &bgp.MessageError{Code: bgp.ErrFiniteStateMachine, Reason: "UPDATE outside Established"})
			return
		}
		r.recvUpdate(env, s, body)
	}
}

// openWire rebuilds the wire header for an OPEN body so the shared decoder
// can be reused for validation.
func openWire(body []byte) []byte {
	hdr := make([]byte, bgp.HeaderLen, bgp.HeaderLen+len(body))
	for i := 0; i < bgp.MarkerLen; i++ {
		hdr[i] = 0xff
	}
	total := bgp.HeaderLen + len(body)
	hdr[16], hdr[17], hdr[18] = byte(total>>8), byte(total), byte(bgp.MsgOpen)
	return append(hdr, body...)
}

func (r *Router) recvOpen(env netem.Env, s *session, body []byte) {
	msg, err := bgp.Decode(openWire(body))
	if err != nil {
		r.sessionError(env, s, err)
		return
	}
	open := msg.(*bgp.Open)
	if open.AS != s.remoteAS&0xffff && open.AS != s.remoteAS {
		r.sessionError(env, s, &bgp.MessageError{Code: bgp.ErrOpenMessage, Subcode: bgp.ErrSubBadPeerAS,
			Reason: fmt.Sprintf("expected AS %d, got %d", s.remoteAS, open.AS)})
		return
	}
	s.routerID = open.RouterID
	switch s.state {
	case sessionIdle, sessionConnect, sessionOpenSent:
		// Collision handling is collapsed: reply with our OPEN if we had
		// not sent one, then confirm.
		if s.state == sessionIdle {
			r.send(env, s.neighbor, &bgp.Open{
				Version:  bgp.Version,
				AS:       r.cfg.AS,
				HoldTime: uint16(r.cfg.HoldTime / time.Second),
				RouterID: r.cfg.RouterID,
			})
			r.stats.OpensSent++
		}
		r.send(env, s.neighbor, &bgp.Keepalive{})
		r.stats.KeepalivesSent++
		s.state = sessionOpenConfirm
	case sessionOpenConfirm, sessionEstablished:
		// Duplicate OPEN: ignore.
	}
}

func (r *Router) recvKeepalive(env netem.Env, s *session) {
	if s.state != sessionOpenConfirm {
		return // refreshes the (disabled) hold timer; nothing to do
	}
	s.state = sessionEstablished
	env.CancelTimer("connretry/" + s.neighbor)
	if r.cfg.KeepaliveInterval > 0 {
		env.SetTimer("keepalive/"+s.neighbor, r.cfg.KeepaliveInterval)
	}
	// Session-up handoff: the RDE dumps the current best of every prefix
	// to the fresh session.
	r.engine.ImsgsSEToRDE++
	for _, pfx := range r.rde.locRIB.Prefixes() {
		r.advertise(env, s, pfx, r.rde.locRIB.Best(pfx))
	}
}

// sessionError sends a NOTIFICATION for the error and tears the session
// down.
func (r *Router) sessionError(env netem.Env, s *session, err error) {
	r.stats.ParseErrors++
	if merr, ok := err.(*bgp.MessageError); ok {
		r.send(env, s.neighbor, merr.Notification())
	} else {
		r.send(env, s.neighbor, &bgp.Notification{Code: bgp.ErrCease})
	}
	s.notifTx++
	r.stats.NotificationsSent++
	r.sessionDown(env, s)
}

// sessionDown tears the session down: the session engine hands the RDE a
// peer-down sweep withdrawing every route learned from it (the "local
// session reset" whose system-wide consequences the paper calls out), and
// the session restarts after the connect-retry timer.
func (r *Router) sessionDown(env netem.Env, s *session) {
	if s.up() {
		r.stats.SessionResets++
	}
	s.state = sessionIdle
	s.downs++
	r.engine.ImsgsSEToRDE++
	in, out := r.rde.adjIn[s.neighbor], r.rde.adjOut[s.neighbor]
	for _, route := range in.Routes() {
		in.Remove(route.Prefix)
		r.bestChanged(env, r.rdeWithdraw(nil, route.Prefix, s.neighbor), s.neighbor)
	}
	for _, route := range out.Routes() {
		out.Remove(route.Prefix)
	}
	env.SetTimer("connretry/"+s.neighbor, r.cfg.ConnectRetry)
}

//
// UPDATE processing — the session engine parses, the RDE decides.
//

// rdeUpdate and rdeWithdraw are the RDE's decision-process entry points;
// every Loc-RIB mutation counts as one decision run.
func (r *Router) rdeUpdate(m *concolic.Machine, route *rib.Route) rib.BestChange {
	r.engine.RDEDecisions++
	return r.rde.locRIB.Update(m, route)
}

func (r *Router) rdeWithdraw(m *concolic.Machine, pfx bgp.Prefix, from string) rib.BestChange {
	r.engine.RDEDecisions++
	return r.rde.locRIB.Withdraw(m, pfx, from)
}

func (r *Router) recvUpdate(env netem.Env, s *session, body []byte) {
	r.stats.UpdatesReceived++

	var m *concolic.Machine
	if r.explorePending && r.explorePeer == s.neighbor {
		m = r.exploreMachine
		r.explorePending = false
		r.stats.ExploredSymbolic++
	}
	r.activeMachine = m
	defer func() { r.activeMachine = nil }()

	u, err := bgp.ParseUpdateSym(m, "update", body)
	if err != nil {
		r.sessionError(env, s, err)
		return
	}

	if r.hook != nil {
		if herr := r.hook(r, s.neighbor, u); herr != nil {
			// The injected programming error "crashed" the handler.
			r.panicked = true
			r.lastPanic = herr.Error()
			r.stats.HandlerCrashes++
			r.stats.UpdatesHookDropped++
			return
		}
	}

	// The parsed update crosses the process split once, withdrawals and
	// announcements together.
	r.engine.ImsgsSEToRDE++
	in := r.rde.adjIn[s.neighbor]
	for _, pfx := range u.Withdrawn {
		if in.Remove(pfx) {
			r.bestChanged(env, r.rdeWithdraw(m, pfx, s.neighbor), s.neighbor)
		}
	}
	r.applyAnnouncements(env, s, m, u)
}

func (r *Router) applyAnnouncements(env netem.Env, s *session, m *concolic.Machine, u *bgp.Update) {
	if len(u.NLRI) == 0 || u.Attrs == nil {
		return
	}
	in := r.rde.adjIn[s.neighbor]
	for i, pfx := range u.NLRI {
		attrs := u.Attrs.Clone()

		// eBGP loop prevention: a path that already contains our AS is
		// ignored.
		if attrs.HasASLoop(r.cfg.AS) {
			r.stats.ASLoopsIgnored++
			continue
		}

		route := &rib.Route{
			Prefix:       pfx,
			Attrs:        attrs,
			Peer:         s.neighbor,
			PeerAS:       s.remoteAS,
			PeerRouterID: s.routerID,
			EBGP:         s.remoteAS != r.cfg.AS,
		}
		if m != nil && u.Sym != nil {
			sym := rib.SymFromUpdate(u.Sym)
			if i < len(u.Sym.NLRI) {
				sym.PrefixLen = u.Sym.NLRI[i].Len
				sym.PrefixAddr = u.Sym.NLRI[i].Addr
				sym.HasPrefix = true
			}
			route.Sym = sym
		}

		// LOCAL_PREF is an iBGP attribute: on eBGP sessions the received
		// value is discarded and import policy assigns a fresh one. The
		// symbolic shadow is scrubbed with it so exploration cannot reason
		// about a LOCAL_PREF the router concretely ignores (kept in
		// lockstep with the bird and frr backends).
		if route.EBGP {
			route.Attrs.LocalPref = nil
			if route.Sym != nil {
				route.Sym.HasLocalPref = false
			}
		}

		// Import filter (interpreted; constraints recorded when tracing).
		if res := r.cfg.Policies[s.filterIn].Apply(m, route); res == policy.ResultReject {
			r.stats.ImportRejected++
			// Treat-as-withdraw for any previously accepted route.
			if in.Remove(pfx) {
				r.bestChanged(env, r.rdeWithdraw(m, pfx, s.neighbor), s.neighbor)
			}
			continue
		}

		// The paper treats "is this route the locally most preferred one"
		// as a symbolic condition; under exploration the choice byte lets
		// the explorer force the route to lose the selection.
		if m != nil {
			preferred := m.Choice("preferred/"+pfx.String(), true)
			if !m.Branch("obgpd/route.preferred", preferred) {
				route.Attrs.SetLocalPref(0)
				if route.Sym != nil {
					route.Sym.HasLocalPref = false
				}
			}
		}

		in.Set(route.Clone())
		r.bestChanged(env, r.rdeUpdate(m, route), s.neighbor)
	}
}

// bestChanged reacts to a best-route change: it records the event and
// re-advertises (or withdraws) the prefix to every established session
// according to export filters.
func (r *Router) bestChanged(env netem.Env, change rib.BestChange, learnedFrom string) {
	if !change.Changed {
		return
	}
	r.stats.BestChanges++
	r.events = append(r.events, node.RouteEvent{
		At:     env.Now(),
		Prefix: change.Prefix,
		OldVia: viaOf(change.Old),
		NewVia: viaOf(change.New),
	})
	for _, name := range r.se.order {
		s := r.se.sessions[name]
		if !s.up() || name == learnedFrom {
			continue // never echo back to the session the change came from
		}
		r.advertise(env, s, change.Prefix, change.New)
	}
}

// advertise hands the export-filter view of the best route for one prefix
// back to the session engine for one neighbor, or a withdrawal when the
// route is gone or filtered.
func (r *Router) advertise(env netem.Env, s *session, pfx bgp.Prefix, best *rib.Route) {
	r.engine.ImsgsRDEToSE++
	out := r.rde.adjOut[s.neighbor]
	withdraw := func() {
		if out.Remove(pfx) {
			r.send(env, s.neighbor, &bgp.Update{Withdrawn: []bgp.Prefix{pfx}})
			r.stats.WithdrawalsSent++
			r.stats.UpdatesSent++
		}
	}
	// No route, or a route that must not be advertised back to its source.
	if best == nil || best.Peer == s.neighbor {
		withdraw()
		return
	}
	export := best.Clone()
	if r.cfg.Policies[s.filterOut].Apply(nil, export) == policy.ResultReject {
		r.stats.ExportRejected++
		withdraw()
		return
	}
	attrs := export.Attrs
	attrs.PrependAS(r.cfg.AS, 1)
	attrs.NextHop = uint32(r.cfg.RouterID)
	// LOCAL_PREF is not carried on eBGP sessions.
	if s.remoteAS != r.cfg.AS {
		attrs.LocalPref = nil
	}
	out.Set(&rib.Route{Prefix: pfx, Attrs: attrs, Peer: s.neighbor})
	r.send(env, s.neighbor, &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{pfx}})
	r.stats.UpdatesSent++
}

func (r *Router) send(env netem.Env, to string, msg bgp.Message) {
	env.Send(netem.NodeID(to), bgp.Encode(msg))
}

func viaOf(route *rib.Route) string {
	switch {
	case route == nil:
		return ""
	case route.Local:
		return "local"
	default:
		return route.Peer
	}
}

// CheckInvariants implements node.Router: the same local state checks as
// the bird and frr backends, so cross-implementation verdicts are
// comparable.
func (r *Router) CheckInvariants() []string {
	var violations []string
	if r.panicked {
		violations = append(violations, fmt.Sprintf("handler crashed: %s", r.lastPanic))
	}
	for _, best := range r.rde.locRIB.BestRoutes() {
		if best.Attrs == nil {
			violations = append(violations, fmt.Sprintf("best route for %s has nil attributes", best.Prefix))
			continue
		}
		if !best.Local && best.Attrs.HasASLoop(r.cfg.AS) {
			violations = append(violations, fmt.Sprintf("best route for %s contains own AS %d in path", best.Prefix, r.cfg.AS))
		}
		if !best.Prefix.Valid() {
			violations = append(violations, fmt.Sprintf("best route for invalid prefix %s", best.Prefix))
		}
		if !best.Local {
			in := r.rde.adjIn[best.Peer]
			if in == nil || in.Get(best.Prefix) == nil {
				violations = append(violations, fmt.Sprintf("best route for %s via %s missing from Adj-RIB-In", best.Prefix, best.Peer))
			}
		}
	}
	for _, name := range r.se.order {
		if r.se.sessions[name].up() {
			continue
		}
		if r.rde.adjOut[name].Len() > 0 {
			violations = append(violations, fmt.Sprintf("Adj-RIB-Out for down session %s is not empty", name))
		}
	}
	r.stats.InvariantFailures = len(violations)
	return violations
}
