package obgpd

import (
	"strings"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/node"
)

// fullFeatureConfig exercises every condition and action of the policy
// language plus all config fields, so the round-trip test covers the whole
// dialect grammar.
func fullFeatureConfig() *node.Config {
	pfx := bgp.MustParsePrefix("10.0.0.0/8")
	kitchen := &policy.Policy{
		Name:    "KITCHEN-SINK",
		Default: policy.ResultReject,
		Statements: []*policy.Statement{
			{
				Conds: []policy.Condition{
					policy.MatchPrefix{Prefix: pfx, MinLen: 9, MaxLen: 24},
					policy.MatchCommunity{Community: bgp.NewCommunity(65535, 1)},
					policy.MatchASPathLen{Op: "<=", N: 5},
				},
				Actions: []policy.Action{
					policy.ActionClearCommunities{},
					policy.ActionSetLocalPref{Value: 150},
					policy.ActionAddCommunity{Community: bgp.NewCommunity(65000, 7)},
					policy.ActionAccept{},
				},
			},
			{
				Conds: []policy.Condition{
					policy.MatchPrefix{Prefix: bgp.MustParsePrefix("192.168.0.0/16"), Exact: true},
					policy.MatchOriginAS{AS: 65001},
				},
				Actions: []policy.Action{policy.ActionReject{}},
			},
			{
				// Non-terminal rule: mutations fall through.
				Conds: []policy.Condition{
					policy.MatchPrefixList{Name: "PL", Entries: []policy.MatchPrefix{
						{Prefix: bgp.MustParsePrefix("172.16.0.0/12"), MinLen: 13},
						{Prefix: bgp.MustParsePrefix("10.9.0.0/16"), Exact: true},
					}},
					policy.MatchASPathContains{AS: 666},
					policy.MatchLocalPref{Op: ">", N: 10},
				},
				Actions: []policy.Action{
					policy.ActionSetMED{Value: 30},
					policy.ActionPrepend{AS: 65002, Count: 3},
				},
			},
		},
	}
	return &node.Config{
		Name:              "R7",
		AS:                65007,
		RouterID:          0x01020304,
		Networks:          []bgp.Prefix{bgp.MustParsePrefix("10.7.0.0/16"), bgp.MustParsePrefix("10.77.0.0/16")},
		HoldTime:          90 * time.Second,
		KeepaliveInterval: 5 * time.Second,
		ConnectRetry:      7 * time.Second,
		Policies: map[string]*policy.Policy{
			"KITCHEN-SINK": kitchen,
			"ALL":          policy.AcceptAll("ALL"),
			"NONE":         policy.RejectAll("NONE"),
		},
		Neighbors: []node.NeighborConfig{
			{Name: "R1", AS: 65001, Import: "KITCHEN-SINK", Export: "ALL"},
			{Name: "R2", AS: 65002, Import: "ALL", Export: "NONE"},
			{Name: "R3", AS: 65003},
		},
	}
}

func TestDialectRoundTrip(t *testing.T) {
	cfg := fullFeatureConfig()
	text := Render(cfg)
	parsed, err := ParseConfig(text)
	if err != nil {
		t.Fatalf("ParseConfig of rendered dialect: %v\n%s", err, text)
	}
	// Render is deterministic, so a lossless parse re-renders byte-identically.
	if again := Render(parsed); again != text {
		t.Fatalf("dialect round trip not stable:\n--- first ---\n%s\n--- second ---\n%s", text, again)
	}
	// Structural spot checks: fields survived, not just text.
	if parsed.Name != "R7" || parsed.AS != 65007 || parsed.RouterID != 0x01020304 {
		t.Errorf("identity lost: %+v", parsed)
	}
	if parsed.ConnectRetry != 7*time.Second || parsed.KeepaliveInterval != 5*time.Second {
		t.Errorf("timers lost: %+v", parsed)
	}
	if len(parsed.Networks) != 2 || len(parsed.Neighbors) != 3 {
		t.Errorf("networks/neighbors lost: %+v", parsed)
	}
	if nc := parsed.Neighbor("R1"); nc == nil || nc.Import != "KITCHEN-SINK" || nc.Export != "ALL" {
		t.Errorf("filter bindings lost: %+v", nc)
	}
	// Policy semantics survived: the parsed policy renders the same policy
	// language text as the original.
	for name, pol := range cfg.Policies {
		got, ok := parsed.Policies[name]
		if !ok {
			t.Fatalf("filter %s lost in round trip", name)
		}
		if got.String() != pol.String() {
			t.Errorf("filter %s changed:\n--- original ---\n%s\n--- parsed ---\n%s", name, pol, got)
		}
	}
	// The dialect is recognizably bgpd.conf-flavored: global statements at
	// the top, brace-nested neighbor and filter blocks, not vtysh commands
	// or bird policy syntax.
	for _, want := range []string{"AS 65007", "router-id 1.2.3.4", `neighbor "R1" {`, `filter in "KITCHEN-SINK"`, `filter "KITCHEN-SINK" {`, "rule allow {", "set localpref 150", "default deny"} {
		if !strings.Contains(text, want) {
			t.Errorf("dialect missing %q:\n%s", want, text)
		}
	}
	for _, reject := range []string{"router bgp", "route-map"} {
		if strings.Contains(text, reject) {
			t.Errorf("dialect leaked frr syntax %q:\n%s", reject, text)
		}
	}
}

func TestParseConfigRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"AS notanumber",
		"router-id 1.2.3",
		"socket unquoted",
		`neighbor "R1" {`,
		`neighbor "R1" {` + "\n\twat\n}",
		`filter "X" {` + "\n\trule wat {\n\t}\n}",
		`filter "X" {` + "\n\trule allow {\n\t\tmatch community not-a-community\n\t}\n}",
		`filter "X" {` + "\n\tdefault maybe\n}",
		"}",
	} {
		if _, err := ParseConfig(bad); err == nil {
			t.Errorf("ParseConfig(%q) accepted garbage", bad)
		}
	}
}

func TestRouterIDDottedQuad(t *testing.T) {
	if got := renderRouterID(bgp.RouterID(0x0a000001)); got != "10.0.0.1" {
		t.Errorf("renderRouterID = %s", got)
	}
	id, err := parseRouterID("10.0.0.1")
	if err != nil || id != bgp.RouterID(0x0a000001) {
		t.Errorf("parseRouterID = %v, %v", id, err)
	}
	if _, err := parseRouterID("1.2.3"); err == nil {
		t.Errorf("short dotted quad accepted")
	}
}
