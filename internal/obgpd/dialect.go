package obgpd

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/node"
)

// This file is the obgpd backend's configuration dialect: a bgpd.conf-style
// text rendering of the semantic node.Config, with global statements at the
// top level and brace-nested neighbor and filter blocks — where frr renders
// flat vtysh commands and bird carries discrete fields plus policy text. It
// is what an obgpd checkpoint carries across process boundaries. Render and
// ParseConfig are inverses: Render(ParseConfig(Render(cfg))) == Render(cfg),
// covered by the dialect round-trip test and the native fuzz targets.

// Render serializes the semantic configuration in the obgpd dialect. The
// output is deterministic: neighbors keep configuration order, filters are
// sorted by name.
func Render(cfg *node.Config) string {
	var b strings.Builder
	b.WriteString("# bgpd.conf — dice obgpd dialect\n")
	fmt.Fprintf(&b, "AS %d\n", cfg.AS)
	fmt.Fprintf(&b, "router-id %s\n", renderRouterID(cfg.RouterID))
	fmt.Fprintf(&b, "socket %q\n", cfg.Name)
	fmt.Fprintf(&b, "holdtime %s\n", cfg.HoldTime)
	fmt.Fprintf(&b, "connect-retry %s\n", cfg.ConnectRetry)
	fmt.Fprintf(&b, "keepalive %s\n", cfg.KeepaliveInterval)
	for _, p := range cfg.Networks {
		fmt.Fprintf(&b, "network %s\n", p)
	}
	for _, n := range cfg.Neighbors {
		fmt.Fprintf(&b, "\nneighbor %q {\n", n.Name)
		fmt.Fprintf(&b, "\tremote-as %d\n", n.AS)
		if n.Import != "" {
			fmt.Fprintf(&b, "\tfilter in %q\n", n.Import)
		}
		if n.Export != "" {
			fmt.Fprintf(&b, "\tfilter out %q\n", n.Export)
		}
		b.WriteString("}\n")
	}
	names := make([]string, 0, len(cfg.Policies))
	for name := range cfg.Policies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b.WriteString("\n")
		renderFilter(&b, cfg.Policies[name])
	}
	return b.String()
}

func renderRouterID(id bgp.RouterID) string {
	v := uint32(id)
	return fmt.Sprintf("%d.%d.%d.%d", v>>24, v>>16&0xff, v>>8&0xff, v&0xff)
}

func parseRouterID(s string) (bgp.RouterID, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("obgpd: router-id %q is not dotted quad", s)
	}
	var v uint32
	for _, p := range parts {
		o, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("obgpd: router-id %q: %v", s, err)
		}
		v = v<<8 | uint32(o)
	}
	return bgp.RouterID(v), nil
}

func renderFilter(b *strings.Builder, pol *policy.Policy) {
	fmt.Fprintf(b, "filter %q {\n", pol.Name)
	if pol.Default == policy.ResultReject {
		b.WriteString("\tdefault deny\n")
	} else {
		b.WriteString("\tdefault allow\n")
	}
	for _, st := range pol.Statements {
		kind, sets := ruleDisposition(st)
		fmt.Fprintf(b, "\trule %s {\n", kind)
		for _, c := range st.Conds {
			fmt.Fprintf(b, "\t\t%s\n", renderCond(c))
		}
		for _, a := range sets {
			fmt.Fprintf(b, "\t\t%s\n", renderAction(a))
		}
		b.WriteString("\t}\n")
	}
	b.WriteString("}\n")
}

// ruleDisposition splits a statement's action list into its non-terminal
// set actions and the rule kind: "allow" / "deny" when it ends in a
// terminal accept/reject, "continue" when the statement falls through to
// the next one. The inverse lives in finishRule.
func ruleDisposition(st *policy.Statement) (kind string, sets []policy.Action) {
	for _, a := range st.Actions {
		switch a.(type) {
		case policy.ActionAccept:
			return "allow", sets
		case policy.ActionReject:
			return "deny", sets
		default:
			sets = append(sets, a)
		}
	}
	return "continue", sets
}

// renderPrefixSpec renders a prefix match in a fixed token order so the
// round trip is lossless: prefix, then "exact", then the length bounds.
func renderPrefixSpec(c policy.MatchPrefix) string {
	var b strings.Builder
	b.WriteString(c.Prefix.String())
	if c.Exact {
		b.WriteString(" exact")
	}
	if c.MinLen != 0 {
		fmt.Fprintf(&b, " prefixlen >= %d", c.MinLen)
	}
	if c.MaxLen != 0 {
		fmt.Fprintf(&b, " prefixlen <= %d", c.MaxLen)
	}
	return b.String()
}

func renderCond(c policy.Condition) string {
	switch c := c.(type) {
	case policy.MatchPrefix:
		return "match prefix " + renderPrefixSpec(c)
	case policy.MatchPrefixList:
		entries := make([]string, len(c.Entries))
		for i, e := range c.Entries {
			entries[i] = renderPrefixSpec(e)
		}
		return fmt.Sprintf("match prefix-set %q { %s }", c.Name, strings.Join(entries, ", "))
	case policy.MatchASPathContains:
		return fmt.Sprintf("match transit-as %d", c.AS)
	case policy.MatchOriginAS:
		return fmt.Sprintf("match source-as %d", c.AS)
	case policy.MatchASPathLen:
		return fmt.Sprintf("match as-len %s %d", opOrEq(c.Op), c.N)
	case policy.MatchCommunity:
		return fmt.Sprintf("match community %s", c.Community)
	case policy.MatchLocalPref:
		return fmt.Sprintf("match localpref %s %d", opOrEq(c.Op), c.N)
	}
	return fmt.Sprintf("match unknown %T", c)
}

// opOrEq canonicalizes the empty comparison operator to "=": the policy
// engine treats both spellings as equality, and the dialect needs one
// token per field. The canonicalization is one-way by design — parsing
// returns "=" — so the round-trip property holds on the rendered form,
// not on the never-rendered empty spelling.
func opOrEq(op string) string {
	if op == "" {
		return "="
	}
	return op
}

func renderAction(a policy.Action) string {
	switch a := a.(type) {
	case policy.ActionSetLocalPref:
		return fmt.Sprintf("set localpref %d", a.Value)
	case policy.ActionSetMED:
		return fmt.Sprintf("set med %d", a.Value)
	case policy.ActionAddCommunity:
		return fmt.Sprintf("set community %s", a.Community)
	case policy.ActionClearCommunities:
		return "set community delete all"
	case policy.ActionPrepend:
		return fmt.Sprintf("set prepend %d %d", a.AS, a.Count)
	}
	return fmt.Sprintf("set unknown %T", a)
}

// parser state: which block the current line is inside.
type parseScope int

const (
	scopeTop parseScope = iota
	scopeNeighbor
	scopeFilter
	scopeRule
)

// ParseConfig parses the obgpd dialect back into the semantic
// configuration. Malformed input errors with the line number; it never
// panics (the fuzz targets hold it to that).
func ParseConfig(text string) (*node.Config, error) {
	cfg := &node.Config{Policies: make(map[string]*policy.Policy)}
	scope := scopeTop
	var curNeighbor *node.NeighborConfig
	var curFilter *policy.Policy
	var curRule *policy.Statement
	var curKind string

	finishRule := func() {
		// The inverse of ruleDisposition: an allow/deny rule terminates in
		// the matching action, a continue rule falls through bare.
		switch curKind {
		case "allow":
			curRule.Actions = append(curRule.Actions, policy.ActionAccept{})
		case "deny":
			curRule.Actions = append(curRule.Actions, policy.ActionReject{})
		}
		curFilter.Statements = append(curFilter.Statements, curRule)
		curRule = nil
	}

	for lineNo, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...interface{}) (*node.Config, error) {
			return nil, fmt.Errorf("obgpd: config line %d (%q): %s", lineNo+1, line, fmt.Sprintf(format, args...))
		}
		switch scope {
		case scopeTop:
			switch {
			case f[0] == "AS" && len(f) == 2:
				as, err := strconv.ParseUint(f[1], 10, 32)
				if err != nil {
					return fail("bad AS: %v", err)
				}
				cfg.AS = bgp.ASN(as)
			case f[0] == "router-id" && len(f) == 2:
				id, err := parseRouterID(f[1])
				if err != nil {
					return fail("%v", err)
				}
				cfg.RouterID = id
			case f[0] == "socket" && len(f) == 2:
				name, err := strconv.Unquote(f[1])
				if err != nil {
					return fail("bad socket name: %v", err)
				}
				cfg.Name = name
			case (f[0] == "holdtime" || f[0] == "connect-retry" || f[0] == "keepalive") && len(f) == 2:
				d, err := time.ParseDuration(f[1])
				if err != nil {
					return fail("bad duration: %v", err)
				}
				switch f[0] {
				case "holdtime":
					cfg.HoldTime = d
				case "connect-retry":
					cfg.ConnectRetry = d
				default:
					cfg.KeepaliveInterval = d
				}
			case f[0] == "network" && len(f) == 2:
				p, err := bgp.ParsePrefix(f[1])
				if err != nil {
					return fail("%v", err)
				}
				cfg.Networks = append(cfg.Networks, p)
			case f[0] == "neighbor" && len(f) == 3 && f[2] == "{":
				name, err := strconv.Unquote(f[1])
				if err != nil {
					return fail("bad neighbor name: %v", err)
				}
				cfg.Neighbors = append(cfg.Neighbors, node.NeighborConfig{Name: name})
				curNeighbor = &cfg.Neighbors[len(cfg.Neighbors)-1]
				scope = scopeNeighbor
			case f[0] == "filter" && len(f) == 3 && f[2] == "{":
				name, err := strconv.Unquote(f[1])
				if err != nil {
					return fail("bad filter name: %v", err)
				}
				if cfg.Policies[name] != nil {
					return fail("filter %q defined twice", name)
				}
				curFilter = &policy.Policy{Name: name}
				cfg.Policies[name] = curFilter
				scope = scopeFilter
			default:
				return fail("unrecognized statement")
			}
		case scopeNeighbor:
			switch {
			case f[0] == "}" && len(f) == 1:
				curNeighbor = nil
				scope = scopeTop
			case f[0] == "remote-as" && len(f) == 2:
				as, err := strconv.ParseUint(f[1], 10, 32)
				if err != nil {
					return fail("bad remote-as: %v", err)
				}
				curNeighbor.AS = bgp.ASN(as)
			case f[0] == "filter" && len(f) == 3:
				name, err := strconv.Unquote(f[2])
				if err != nil {
					return fail("bad filter reference: %v", err)
				}
				switch f[1] {
				case "in":
					curNeighbor.Import = name
				case "out":
					curNeighbor.Export = name
				default:
					return fail("filter direction %q", f[1])
				}
			default:
				return fail("unrecognized neighbor statement")
			}
		case scopeFilter:
			switch {
			case f[0] == "}" && len(f) == 1:
				curFilter = nil
				scope = scopeTop
			case f[0] == "default" && len(f) == 2 && (f[1] == "allow" || f[1] == "deny"):
				if f[1] == "deny" {
					curFilter.Default = policy.ResultReject
				} else {
					curFilter.Default = policy.ResultAccept
				}
			case f[0] == "rule" && len(f) == 3 && f[2] == "{":
				if f[1] != "allow" && f[1] != "deny" && f[1] != "continue" {
					return fail("rule kind %q", f[1])
				}
				curRule, curKind = &policy.Statement{}, f[1]
				scope = scopeRule
			default:
				return fail("unrecognized filter statement")
			}
		case scopeRule:
			switch {
			case f[0] == "}" && len(f) == 1:
				finishRule()
				scope = scopeFilter
			case f[0] == "match":
				c, err := parseCond(line)
				if err != nil {
					return fail("%v", err)
				}
				curRule.Conds = append(curRule.Conds, c)
			case f[0] == "set":
				a, err := parseAction(line)
				if err != nil {
					return fail("%v", err)
				}
				curRule.Actions = append(curRule.Actions, a)
			default:
				return fail("unrecognized rule statement")
			}
		}
	}
	if scope != scopeTop {
		return nil, fmt.Errorf("obgpd: config ends inside an unclosed block")
	}
	return cfg, nil
}

// parsePrefixSpec parses the fixed-order prefix spec renderPrefixSpec
// emits: prefix [exact] [prefixlen >= N] [prefixlen <= N].
func parsePrefixSpec(fields []string) (policy.MatchPrefix, error) {
	var out policy.MatchPrefix
	if len(fields) == 0 {
		return out, fmt.Errorf("empty prefix spec")
	}
	p, err := bgp.ParsePrefix(fields[0])
	if err != nil {
		return out, err
	}
	out.Prefix = p
	i := 1
	for i < len(fields) {
		switch fields[i] {
		case "exact":
			out.Exact = true
			i++
		case "prefixlen":
			if i+2 >= len(fields) || (fields[i+1] != ">=" && fields[i+1] != "<=") {
				return out, fmt.Errorf("malformed prefixlen bound")
			}
			v, err := strconv.ParseUint(fields[i+2], 10, 8)
			if err != nil {
				return out, err
			}
			if fields[i+1] == ">=" {
				out.MinLen = uint8(v)
			} else {
				out.MaxLen = uint8(v)
			}
			i += 3
		default:
			return out, fmt.Errorf("prefix spec token %q", fields[i])
		}
	}
	return out, nil
}

func parseCond(line string) (policy.Condition, error) {
	f := strings.Fields(line)
	switch {
	case strings.HasPrefix(line, "match prefix-set "):
		rest := strings.TrimPrefix(line, "match prefix-set ")
		open := strings.IndexByte(rest, '{')
		if open < 0 || !strings.HasSuffix(rest, "}") {
			return nil, fmt.Errorf("malformed prefix-set")
		}
		name, err := strconv.Unquote(strings.TrimSpace(rest[:open]))
		if err != nil {
			return nil, fmt.Errorf("bad prefix-set name: %v", err)
		}
		out := policy.MatchPrefixList{Name: name}
		body := rest[open+1 : len(rest)-1]
		if strings.TrimSpace(body) != "" {
			for _, spec := range strings.Split(body, ",") {
				e, err := parsePrefixSpec(strings.Fields(spec))
				if err != nil {
					return nil, err
				}
				out.Entries = append(out.Entries, e)
			}
		}
		return out, nil
	case strings.HasPrefix(line, "match prefix "):
		return parsePrefixSpec(f[2:])
	case strings.HasPrefix(line, "match transit-as ") && len(f) == 3:
		as, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return nil, err
		}
		return policy.MatchASPathContains{AS: bgp.ASN(as)}, nil
	case strings.HasPrefix(line, "match source-as ") && len(f) == 3:
		as, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return nil, err
		}
		return policy.MatchOriginAS{AS: bgp.ASN(as)}, nil
	case strings.HasPrefix(line, "match as-len ") && len(f) == 4:
		n, err := strconv.ParseUint(f[3], 10, 8)
		if err != nil {
			return nil, err
		}
		return policy.MatchASPathLen{Op: f[2], N: uint8(n)}, nil
	case strings.HasPrefix(line, "match community ") && len(f) == 3:
		c, err := parseCommunity(f[2])
		if err != nil {
			return nil, err
		}
		return policy.MatchCommunity{Community: c}, nil
	case strings.HasPrefix(line, "match localpref ") && len(f) == 4:
		n, err := strconv.ParseUint(f[3], 10, 32)
		if err != nil {
			return nil, err
		}
		return policy.MatchLocalPref{Op: f[2], N: uint32(n)}, nil
	}
	return nil, fmt.Errorf("unknown match %q", line)
}

func parseCommunity(s string) (bgp.Community, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return 0, fmt.Errorf("community %q", s)
	}
	a, err1 := strconv.ParseUint(parts[0], 10, 16)
	b, err2 := strconv.ParseUint(parts[1], 10, 16)
	if err1 != nil || err2 != nil {
		return 0, fmt.Errorf("community %q", s)
	}
	return bgp.NewCommunity(uint16(a), uint16(b)), nil
}

func parseAction(line string) (policy.Action, error) {
	f := strings.Fields(line)
	switch {
	case strings.HasPrefix(line, "set localpref ") && len(f) == 3:
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return nil, err
		}
		return policy.ActionSetLocalPref{Value: uint32(v)}, nil
	case strings.HasPrefix(line, "set med ") && len(f) == 3:
		v, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return nil, err
		}
		return policy.ActionSetMED{Value: uint32(v)}, nil
	case line == "set community delete all":
		return policy.ActionClearCommunities{}, nil
	case strings.HasPrefix(line, "set community ") && len(f) == 3:
		c, err := parseCommunity(f[2])
		if err != nil {
			return nil, err
		}
		return policy.ActionAddCommunity{Community: c}, nil
	case strings.HasPrefix(line, "set prepend ") && len(f) == 4:
		as, err := strconv.ParseUint(f[2], 10, 32)
		if err != nil {
			return nil, err
		}
		count, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, err
		}
		return policy.ActionPrepend{AS: bgp.ASN(as), Count: count}, nil
	}
	return nil, fmt.Errorf("unknown set %q", line)
}
