package cluster

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/topology"
)

// clusterCanonical returns a deterministic byte form of the cluster's full
// state: every router's checkpoint plus the transport's in-flight messages.
// encoding/json sorts map keys and checkpoint route lists are already in
// canonical order, so byte equality here means state equality.
func clusterCanonical(t testing.TB, c *Cluster) string {
	t.Helper()
	data, err := json.Marshal(c.Snapshot())
	if err != nil {
		t.Fatalf("marshal cluster snapshot: %v", err)
	}
	return string(data)
}

// exploredInput builds the i-th synthetic UPDATE a worker would subject a
// clone to.
func exploredInput(i int, peerAS bgp.ASN) *bgp.Update {
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{peerAS, bgp.ASN(64900 + i)}, NextHop: uint32(100 + i)}
	return &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix(fmt.Sprintf("88.%d.0.0/16", i+1))}}
}

// TestPooledResetEquivalentToColdRebuild is the golden clone-lifecycle test:
// after N explored inputs have been driven through pooled clones, a freshly
// leased (reset) clone must be byte-identical — checkpoints, RIBs and netem
// in-flight state — to a cold FromSnapshot rebuild, and must keep evolving
// identically when driven further. Both the consistent snapshot and the
// DropChannelState ablation are covered.
func TestPooledResetEquivalentToColdRebuild(t *testing.T) {
	for _, drop := range []bool{false, true} {
		name := "consistent"
		if drop {
			name = "drop-channel-state"
		}
		t.Run(name, func(t *testing.T) {
			topo := topology.Demo27()
			opts := Options{Seed: 3, GaoRexford: true}
			live := MustBuild(topo, opts)
			// Stop mid-convergence so the consistent cut has channel state.
			live.Net.Start()
			live.Run(60 * time.Millisecond)
			snap := live.Snapshot()
			if !drop && len(snap.InFlight) == 0 {
				t.Log("no in-flight messages at the cut; channel-state replay not exercised")
			}
			if drop {
				snap = snap.DropChannelState()
			}

			store, err := checkpoint.NewStore(snap)
			if err != nil {
				t.Fatalf("NewStore: %v", err)
			}
			pool := NewClonePool(topo, store, opts)

			explorer := "R1"
			peer := topo.NeighborsOf(explorer)[0]
			peerAS := topo.Node(peer).AS

			// Drive N explored inputs through pooled clones, dirtying and
			// recycling them as campaign workers do.
			const n = 6
			for i := 0; i < n; i++ {
				clone, err := pool.Lease()
				if err != nil {
					t.Fatalf("Lease %d: %v", i, err)
				}
				clone.InjectUpdate(peer, explorer, exploredInput(i, peerAS))
				clone.Net.RunQuiescent(0)
				pool.Release(clone)
			}
			stats := pool.Stats()
			if stats.ColdBuilds != 1 || stats.Resets != n-1 || stats.Leases != n {
				t.Errorf("pool stats = %+v, want 1 cold build and %d resets over %d leases", stats, n-1, n)
			}

			// The (n+1)-th lease is a reset of a thoroughly dirtied clone; a
			// cold rebuild is the reference.
			pooled, err := pool.Lease()
			if err != nil {
				t.Fatalf("final lease: %v", err)
			}
			cold, err := FromSnapshot(topo, snap, opts)
			if err != nil {
				t.Fatalf("FromSnapshot: %v", err)
			}
			if got, want := clusterCanonical(t, pooled), clusterCanonical(t, cold); got != want {
				t.Fatalf("pooled-reset clone differs from cold rebuild before execution")
			}
			if !reflect.DeepEqual(pooled.Net.InFlight(), cold.Net.InFlight()) {
				t.Fatalf("pooled-reset in-flight state differs from cold rebuild")
			}

			// And the equivalence must hold under execution: driving both with
			// the same input must land them in the same state (this exercises
			// the reseeded jitter/loss randomness).
			in := exploredInput(99, peerAS)
			pooled.InjectUpdate(peer, explorer, in)
			cold.InjectUpdate(peer, explorer, in)
			pooled.Net.RunQuiescent(0)
			cold.Net.RunQuiescent(0)
			if got, want := clusterCanonical(t, pooled), clusterCanonical(t, cold); got != want {
				t.Fatalf("pooled-reset clone diverged from cold rebuild after execution")
			}
			if pooled.Net.Stats() != cold.Net.Stats() {
				t.Errorf("transport stats diverged: pooled %+v, cold %+v", pooled.Net.Stats(), cold.Net.Stats())
			}
		})
	}
}

// TestFromStoreEquivalentToFromSnapshot verifies the fast store-backed build
// path against the legacy record-parsing path.
func TestFromStoreEquivalentToFromSnapshot(t *testing.T) {
	topo := topology.Line(4)
	opts := Options{Seed: 1}
	live := MustBuild(topo, opts)
	live.Converge()
	snap := live.Snapshot()
	store, err := checkpoint.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := FromStore(topo, store, opts)
	if err != nil {
		t.Fatalf("FromStore: %v", err)
	}
	cold, err := FromSnapshot(topo, snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := clusterCanonical(t, fast), clusterCanonical(t, cold); got != want {
		t.Errorf("FromStore clone differs from FromSnapshot clone")
	}
}

// TestClonePoolGrowsToDemand verifies that concurrent leases build extra
// clones instead of blocking, and that released clones are recycled.
func TestClonePoolGrowsToDemand(t *testing.T) {
	topo := topology.Line(3)
	opts := Options{Seed: 1}
	live := MustBuild(topo, opts)
	live.Converge()
	store, err := checkpoint.NewStore(live.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	pool := NewClonePool(topo, store, opts)
	a, err := pool.Lease()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Lease() // a still outstanding: must cold-build a second clone
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool leased the same clone twice")
	}
	pool.Release(a)
	pool.Release(b)
	if pool.Size() != 2 {
		t.Errorf("pool size = %d, want 2", pool.Size())
	}
	if s := pool.Stats(); s.ColdBuilds != 2 || s.Resets != 0 {
		t.Errorf("stats = %+v, want 2 cold builds", s)
	}
	c, err := pool.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if c != a && c != b {
		t.Errorf("lease after release did not recycle a pooled clone")
	}
	if s := pool.Stats(); s.Resets != 1 {
		t.Errorf("stats = %+v, want 1 reset", s)
	}
	if pool.Outstanding() != 1 {
		t.Errorf("outstanding = %d with one clone leased", pool.Outstanding())
	}
	pool.Release(c)
	if pool.Outstanding() != 0 {
		t.Errorf("outstanding = %d after full release", pool.Outstanding())
	}
}

// TestClonePoolDiscardsOnResetFailure fault-injects a broken pooled clone —
// one holding a router the snapshot store has never heard of, so its
// in-place reset must fail — and asserts the pool discards it and serves the
// lease from a fresh cold build instead of failing the caller, with the
// books kept straight.
func TestClonePoolDiscardsOnResetFailure(t *testing.T) {
	topo := topology.Line(3)
	opts := Options{Seed: 1}
	live := MustBuild(topo, opts)
	live.Converge()
	store, err := checkpoint.NewStore(live.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	pool := NewClonePool(topo, store, opts)

	a, err := pool.Lease()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the clone: ResetToStore iterates the clone's routers and the
	// store has no image for this name.
	rogue := MustBuild(topology.Line(2), Options{Seed: 1})
	a.Routers["bogus"] = rogue.Router("R1")
	pool.Release(a)

	b, err := pool.Lease()
	if err != nil {
		t.Fatalf("lease after corrupt release must fall through to a cold build: %v", err)
	}
	if b == a {
		t.Fatalf("pool re-leased the corrupted clone")
	}
	s := pool.Stats()
	if s.Discards != 1 {
		t.Errorf("discards = %d, want 1 (stats %+v)", s.Discards, s)
	}
	if s.ColdBuilds != 2 || s.Resets != 0 {
		t.Errorf("fallback lease accounting wrong: %+v", s)
	}
	pool.Release(b)
	if pool.Outstanding() != 0 {
		t.Errorf("outstanding = %d, want 0 (stats %+v)", pool.Outstanding(), pool.Stats())
	}
}
