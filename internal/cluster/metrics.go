package cluster

import "github.com/dice-project/dice/internal/obs"

// RegisterPoolMetrics registers clone-pool lifecycle series under the given
// prefix (e.g. "dice_pool"), reading PoolStats snapshots at exposition time
// — the pool's own hot path is untouched. The stats callback supplies the
// cumulative counters; outstanding supplies the live leased-not-released
// gauge (nil exposes zero).
func RegisterPoolMetrics(reg *obs.Registry, prefix string, stats func() PoolStats, outstanding func() int) {
	reg.CounterFunc(prefix+"_leases_total", "Clone leases granted.",
		func() float64 { return float64(stats().Leases) })
	reg.CounterFunc(prefix+"_releases_total", "Clones handed back to the pool.",
		func() float64 { return float64(stats().Releases) })
	reg.CounterFunc(prefix+"_discards_total", "Pooled clones discarded (failed reset or dead driver).",
		func() float64 { return float64(stats().Discards) })
	reg.CounterFunc(prefix+"_cold_builds_total", "Full shadow-cluster constructions.",
		func() float64 { return float64(stats().ColdBuilds) })
	reg.CounterFunc(prefix+"_cold_build_seconds_total", "Wall clock spent cold-building clones.",
		func() float64 { return stats().ColdBuildTime.Seconds() })
	reg.CounterFunc(prefix+"_resets_total", "In-place clone rewinds to the snapshot.",
		func() float64 { return float64(stats().Resets) })
	reg.CounterFunc(prefix+"_reset_seconds_total", "Wall clock spent rewinding clones.",
		func() float64 { return stats().ResetTime.Seconds() })
	reg.GaugeFunc(prefix+"_outstanding", "Leased clones not yet released.",
		func() float64 {
			if outstanding == nil {
				return 0
			}
			return float64(outstanding())
		})
}
