package cluster

import (
	"fmt"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/topology"
)

// FromStore builds a shadow cluster from a snapshot store: router states are
// restored from the store's decoded images and baseline states, and the
// captured in-flight messages are re-injected. It is behaviorally identical
// to FromSnapshot over the store's snapshot, but skips all per-clone config
// validation and record parsing — the store did that work once.
func FromStore(topo *topology.Topology, store *checkpoint.Store, opts Options) (*Cluster, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Topo:    topo,
		Net:     netem.New(netem.Options{Seed: opts.Seed, Trace: opts.Trace, MaxEvents: opts.MaxEvents}),
		Routers: make(map[string]node.Router, len(topo.Nodes)),
		opts:    opts,
	}
	for _, tn := range topo.Nodes {
		r, err := store.Restore(tn.Name)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.Routers[tn.Name] = r
		c.Net.AddNode(r)
	}
	for _, l := range topo.Links {
		c.Net.Connect(netem.NodeID(l.A), netem.NodeID(l.B), netem.LinkConfig{
			Delay:  l.Delay,
			Jitter: l.Jitter,
			Loss:   l.Loss,
		})
	}
	injectInFlight(c, store.Snapshot())
	return c, nil
}

// ResetToStore rewinds the shadow cluster to the snapshot held by the store:
// every router's mutable state is reset onto its image in place, the network
// is rewound to virtual time zero with an empty event queue and reseeded
// randomness, and the snapshot's in-flight messages are re-injected. The
// result is indistinguishable from a cold FromSnapshot/FromStore rebuild
// (the pool's golden equivalence test asserts byte identity), at a fraction
// of the cost.
func (c *Cluster) ResetToStore(store *checkpoint.Store) error {
	for name, r := range c.Routers {
		im, st := store.Image(name), store.State(name)
		if im == nil || st == nil {
			return fmt.Errorf("cluster: store has no node %q", name)
		}
		if err := r.ResetTo(im, st); err != nil {
			return err
		}
	}
	c.Net.Reset()
	injectInFlight(c, store.Snapshot())
	return nil
}

// injectInFlight replays the snapshot's channel state so the cut stays
// consistent.
func injectInFlight(c *Cluster, snap *checkpoint.Snapshot) {
	for _, msg := range snap.InFlight {
		c.Net.InjectMessage(msg.From, msg.To, msg.Payload, 0)
	}
}

// PoolStats counts clone-lifecycle activity and cost. ColdBuilds are full
// cluster constructions (first lease of each pooled clone, or every clone
// when pooling is disabled); Resets are in-place rewinds of a returned clone.
type PoolStats struct {
	// Leases counts successful Lease calls; Releases counts clones handed
	// back. A quiesced pool must have Leases == Releases — anything else is
	// a leaked clone (see Outstanding).
	Leases   int
	Releases int
	// ColdBuilds / ColdBuildTime count and time full shadow-cluster builds.
	ColdBuilds    int
	ColdBuildTime time.Duration
	// Resets / ResetTime count and time in-place rewinds to the snapshot.
	Resets    int
	ResetTime time.Duration
	// Discards counts pooled clones thrown away because their in-place reset
	// failed; the lease that hit the failure fell through to the next free
	// clone (or a cold build) instead of failing the caller.
	Discards int
}

// ColdBuildPer returns the mean cold-build cost, or zero.
func (s PoolStats) ColdBuildPer() time.Duration {
	if s.ColdBuilds == 0 {
		return 0
	}
	return s.ColdBuildTime / time.Duration(s.ColdBuilds)
}

// ResetPer returns the mean reset cost, or zero.
func (s PoolStats) ResetPer() time.Duration {
	if s.Resets == 0 {
		return 0
	}
	return s.ResetTime / time.Duration(s.Resets)
}

// Add merges two stat sets.
func (s PoolStats) Add(o PoolStats) PoolStats {
	s.Leases += o.Leases
	s.Releases += o.Releases
	s.ColdBuilds += o.ColdBuilds
	s.ColdBuildTime += o.ColdBuildTime
	s.Resets += o.Resets
	s.ResetTime += o.ResetTime
	s.Discards += o.Discards
	return s
}

// Sub removes a baseline from a stat set: callers sharing a pool across
// sequential campaigns snapshot Stats before starting and subtract it after,
// attributing only their own activity.
func (s PoolStats) Sub(o PoolStats) PoolStats {
	s.Leases -= o.Leases
	s.Releases -= o.Releases
	s.ColdBuilds -= o.ColdBuilds
	s.ColdBuildTime -= o.ColdBuildTime
	s.Resets -= o.Resets
	s.ResetTime -= o.ResetTime
	s.Discards -= o.Discards
	return s
}

// ClonePool is a pool of reusable shadow clusters over one snapshot store.
// Workers lease a clone, drive one explored input on it, and release it;
// released clones are rewound to the snapshot on their next lease rather
// than rebuilt. The pool grows on demand (a lease with no free clone builds
// one cold), so its size converges to the worker-pool parallelism.
//
// ClonePool is safe for concurrent use.
type ClonePool struct {
	topo  *topology.Topology
	store *checkpoint.Store
	opts  Options

	mu    sync.Mutex
	free  []*Cluster
	stats PoolStats
}

// NewClonePool returns an empty pool over the snapshot store. Options should
// match the deployed cluster's options, as with FromSnapshot.
func NewClonePool(topo *topology.Topology, store *checkpoint.Store, opts Options) *ClonePool {
	return &ClonePool{topo: topo, store: store, opts: opts}
}

// Store returns the snapshot store the pool restores from.
func (p *ClonePool) Store() *checkpoint.Store { return p.store }

// Lease returns a shadow cluster in snapshot state: a pooled clone rewound to
// the snapshot, or a cold-built one when the pool is empty. A pooled clone
// whose in-place reset fails is discarded (counted in PoolStats.Discards) and
// the lease falls through to the next free clone or a cold build, so a
// corrupted clone degrades the pool instead of failing the campaign. The
// caller owns the clone until Release.
func (p *ClonePool) Lease() (*Cluster, error) {
	for {
		p.mu.Lock()
		var c *Cluster
		if n := len(p.free); n > 0 {
			c = p.free[n-1]
			p.free[n-1] = nil
			p.free = p.free[:n-1]
		}
		p.mu.Unlock()

		if c == nil {
			start := time.Now()
			built, err := FromStore(p.topo, p.store, p.opts)
			elapsed := time.Since(start)
			if err != nil {
				return nil, err
			}
			p.mu.Lock()
			p.stats.Leases++
			p.stats.ColdBuilds++
			p.stats.ColdBuildTime += elapsed
			p.mu.Unlock()
			return built, nil
		}

		start := time.Now()
		err := c.ResetToStore(p.store)
		elapsed := time.Since(start)
		if err != nil {
			p.mu.Lock()
			p.stats.Discards++
			p.mu.Unlock()
			continue
		}
		p.mu.Lock()
		p.stats.Leases++
		p.stats.Resets++
		p.stats.ResetTime += elapsed
		p.mu.Unlock()
		return c, nil
	}
}

// Release returns a leased clone to the pool. The clone may be in any state;
// it is rewound to the snapshot on its next lease. A clone with an unhealthy
// driver (dead subprocess) is discarded instead of pooled — the release is
// still counted, so Leases==Releases holds and the leak tests stay sound.
func (p *ClonePool) Release(c *Cluster) {
	if c == nil {
		return
	}
	dead := c.Unhealthy() != nil
	p.mu.Lock()
	if dead {
		p.stats.Discards++
	} else {
		p.free = append(p.free, c)
	}
	p.stats.Releases++
	p.mu.Unlock()
}

// Outstanding returns the number of leased clones not yet released. A pool
// whose campaign has finished must report zero — the clone-leak tests assert
// exactly that.
func (p *ClonePool) Outstanding() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats.Leases - p.stats.Releases
}

// Size returns the number of idle clones currently pooled.
func (p *ClonePool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Stats returns a snapshot of the pool's lifecycle counters.
func (p *ClonePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}
