// Package cluster assembles a runnable emulated deployment from a topology:
// it generates per-router configurations (including Gao–Rexford import/export
// policies derived from the business relationships on the links), wires the
// routers into a virtual-time network, and provides the snapshot / restore
// operations the DiCE orchestrator uses to obtain isolated shadow copies of
// the running system.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/topology"

	// Router backends register themselves with the node registry; importing
	// them here makes every deployment built through this package able to
	// resolve the implementations a topology names.
	_ "github.com/dice-project/dice/internal/bird"
	_ "github.com/dice-project/dice/internal/frr"
	_ "github.com/dice-project/dice/internal/node/procdriver"
	_ "github.com/dice-project/dice/internal/obgpd"
)

// Relationship tag communities attached by the generated import policies, in
// the style operators use to encode Gao–Rexford relationships.
var (
	// TagCustomer marks routes learned from a customer.
	TagCustomer = bgp.NewCommunity(65535, 1)
	// TagPeer marks routes learned from a settlement-free peer.
	TagPeer = bgp.NewCommunity(65535, 2)
	// TagProvider marks routes learned from a provider.
	TagProvider = bgp.NewCommunity(65535, 3)
)

// Local preference values assigned by relationship (prefer customer routes,
// then peer routes, then provider routes).
const (
	LocalPrefCustomer = 200
	LocalPrefPeer     = 100
	LocalPrefProvider = 50
)

// Options configure cluster construction.
type Options struct {
	// Seed drives link jitter/loss and keeps runs reproducible.
	Seed int64
	// GaoRexford generates relationship-based import/export policies from
	// the topology's link relations. When false every session accepts and
	// exports everything.
	GaoRexford bool
	// KeepaliveInterval enables periodic keepalives on every router.
	KeepaliveInterval time.Duration
	// Trace receives emulator log lines.
	Trace func(string)
	// MaxEvents bounds each emulator run.
	MaxEvents int
	// ConfigOverride, when non-nil, is applied to each generated router
	// configuration before the router is built. Fault injection uses it to
	// plant operator mistakes and policy conflicts. The semantic
	// configuration is implementation-neutral, so one override applies to
	// every backend.
	ConfigOverride func(cfg *node.Config)
}

// Cluster is a running emulated deployment.
type Cluster struct {
	Topo    *topology.Topology
	Net     *netem.Network
	Routers map[string]node.Router
	opts    Options
}

// relationOf classifies the neighbor relationship from the point of view of
// node name: "customer" (the neighbor is our customer), "peer", or
// "provider" (the neighbor is our provider).
func relationOf(l topology.Link, name string) string {
	if l.Rel == topology.RelPeer {
		return "peer"
	}
	// RelCustomer: A is the customer of B.
	if l.A == name {
		return "provider" // the other endpoint is our provider
	}
	return "customer"
}

// gaoRexfordPolicies returns the five canonical relationship policies.
func gaoRexfordPolicies() map[string]*policy.Policy {
	anyPrefix := policy.MatchPrefix{Prefix: bgp.Prefix{Addr: 0, Len: 0}, MaxLen: 32}
	importFor := func(name string, pref uint32, tag bgp.Community) *policy.Policy {
		return &policy.Policy{
			Name:    name,
			Default: policy.ResultAccept,
			Statements: []*policy.Statement{{
				Conds: []policy.Condition{anyPrefix},
				Actions: []policy.Action{
					// Relationship tags are locally significant: strip
					// whatever the neighbor attached before tagging the
					// route with the relationship of this session, exactly
					// as operators scrub informational communities at the
					// edge. Without this, stale tags leak valley routes.
					policy.ActionClearCommunities{},
					policy.ActionSetLocalPref{Value: pref},
					policy.ActionAddCommunity{Community: tag},
					policy.ActionAccept{},
				},
			}},
		}
	}
	exportRestricted := &policy.Policy{
		Name:    "GR-EXPORT-RESTRICTED",
		Default: policy.ResultReject,
		Statements: []*policy.Statement{
			{
				Conds:   []policy.Condition{policy.MatchCommunity{Community: TagCustomer}},
				Actions: []policy.Action{policy.ActionAccept{}},
			},
			{
				Conds:   []policy.Condition{policy.MatchASPathLen{Op: "=", N: 0}},
				Actions: []policy.Action{policy.ActionAccept{}},
			},
		},
	}
	return map[string]*policy.Policy{
		"GR-IMPORT-CUSTOMER":   importFor("GR-IMPORT-CUSTOMER", LocalPrefCustomer, TagCustomer),
		"GR-IMPORT-PEER":       importFor("GR-IMPORT-PEER", LocalPrefPeer, TagPeer),
		"GR-IMPORT-PROVIDER":   importFor("GR-IMPORT-PROVIDER", LocalPrefProvider, TagProvider),
		"GR-EXPORT-CUSTOMER":   policy.AcceptAll("GR-EXPORT-CUSTOMER"),
		"GR-EXPORT-RESTRICTED": exportRestricted,
	}
}

// ConfigFor builds the router configuration for one topology node under the
// given options (without building the router). Exported so fault injectors
// and tests can inspect or modify configurations.
func ConfigFor(topo *topology.Topology, name string, opts Options) (*node.Config, error) {
	tn := topo.Node(name)
	if tn == nil {
		return nil, fmt.Errorf("cluster: unknown node %q", name)
	}
	cfg := &node.Config{
		Name:              tn.Name,
		AS:                tn.AS,
		RouterID:          tn.RouterID,
		Networks:          append([]bgp.Prefix(nil), tn.Prefixes...),
		KeepaliveInterval: opts.KeepaliveInterval,
		Policies:          map[string]*policy.Policy{"ALL": policy.AcceptAll("ALL")},
	}
	if opts.GaoRexford {
		for k, v := range gaoRexfordPolicies() {
			cfg.Policies[k] = v
		}
	}
	for _, l := range topo.LinksOf(name) {
		peerName := l.B
		if l.B == name {
			peerName = l.A
		}
		peer := topo.Node(peerName)
		nc := node.NeighborConfig{Name: peer.Name, AS: peer.AS, Import: "ALL", Export: "ALL"}
		if opts.GaoRexford {
			switch relationOf(l, name) {
			case "customer":
				nc.Import = "GR-IMPORT-CUSTOMER"
				nc.Export = "GR-EXPORT-CUSTOMER"
			case "peer":
				nc.Import = "GR-IMPORT-PEER"
				nc.Export = "GR-EXPORT-RESTRICTED"
			case "provider":
				nc.Import = "GR-IMPORT-PROVIDER"
				nc.Export = "GR-EXPORT-RESTRICTED"
			}
		}
		cfg.Neighbors = append(cfg.Neighbors, nc)
	}
	if opts.ConfigOverride != nil {
		opts.ConfigOverride(cfg)
	}
	return cfg, nil
}

// Build constructs routers for every topology node and wires them into a
// virtual-time network. The network is not started; call Converge or Run.
func Build(topo *topology.Topology, opts Options) (*Cluster, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Topo:    topo,
		Net:     netem.New(netem.Options{Seed: opts.Seed, Trace: opts.Trace, MaxEvents: opts.MaxEvents}),
		Routers: make(map[string]node.Router),
		opts:    opts,
	}
	for _, tn := range topo.Nodes {
		cfg, err := ConfigFor(topo, tn.Name, opts)
		if err != nil {
			return nil, err
		}
		r, err := node.BuildRouter(tn.Impl, cfg)
		if err != nil {
			return nil, err
		}
		c.Routers[tn.Name] = r
		c.Net.AddNode(r)
	}
	for _, l := range topo.Links {
		c.Net.Connect(netem.NodeID(l.A), netem.NodeID(l.B), netem.LinkConfig{
			Delay:  l.Delay,
			Jitter: l.Jitter,
			Loss:   l.Loss,
		})
	}
	return c, nil
}

// MustBuild is Build for tests and examples with static topologies.
func MustBuild(topo *topology.Topology, opts Options) *Cluster {
	c, err := Build(topo, opts)
	if err != nil {
		panic(err)
	}
	return c
}

// Router returns the named router, or nil.
func (c *Cluster) Router(name string) node.Router { return c.Routers[name] }

// Implementations returns the distinct router implementations deployed in
// the cluster, sorted. A heterogeneous deployment reports more than one.
func (c *Cluster) Implementations() []string {
	seen := make(map[string]bool)
	for _, r := range c.Routers {
		seen[r.Implementation()] = true
	}
	out := make([]string, 0, len(seen))
	for impl := range seen {
		out = append(out, impl)
	}
	sort.Strings(out)
	return out
}

// Unhealthy reports the first router whose driver can no longer faithfully
// run it — an out-of-process node whose subprocess crashed, stalled, or broke
// protocol. In-process routers are always healthy; drivers opt in by
// implementing `Unhealthy() error`. The campaign layer checks this after
// every execution so a dead driver becomes a unit error instead of a silently
// frozen node, and the clone pool discards unhealthy clones at release.
func (c *Cluster) Unhealthy() error {
	for _, name := range c.RouterNames() {
		if probe, ok := c.Routers[name].(interface{ Unhealthy() error }); ok {
			if err := probe.Unhealthy(); err != nil {
				return fmt.Errorf("cluster: node %s: %w", name, err)
			}
		}
	}
	return nil
}

// Converge runs the emulation until quiescence (routing converged) and
// returns the number of events processed.
func (c *Cluster) Converge() int {
	return c.Net.RunQuiescent(c.opts.MaxEvents)
}

// Run advances the emulation up to the given virtual time.
func (c *Cluster) Run(until time.Duration) int {
	return c.Net.Run(until)
}

// Snapshot takes a consistent cut of the cluster: every router's lightweight
// checkpoint plus the in-flight messages.
func (c *Cluster) Snapshot() *checkpoint.Snapshot {
	s := &checkpoint.Snapshot{
		At:         c.Net.Now(),
		Nodes:      make(map[string]node.Checkpoint, len(c.Routers)),
		InFlight:   c.Net.InFlight(),
		Consistent: true,
	}
	for name, r := range c.Routers {
		s.Nodes[name] = r.TakeCheckpoint()
	}
	return s
}

// FromSnapshot builds a shadow cluster — an isolated copy of the system as of
// the snapshot — over the same topology. Router states are restored from
// their checkpoints and the captured in-flight messages are re-injected so
// the shadow copy evolves exactly as the deployed system would have.
//
// FromSnapshot is the cold rebuild path: every call re-validates configs and
// re-decodes every route record of every node. Code that clones the same
// snapshot repeatedly should build a checkpoint.Store once and use FromStore
// (or a ClonePool) instead.
func FromSnapshot(topo *topology.Topology, snap *checkpoint.Snapshot, opts Options) (*Cluster, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	c := &Cluster{
		Topo:    topo,
		Net:     netem.New(netem.Options{Seed: opts.Seed, Trace: opts.Trace, MaxEvents: opts.MaxEvents}),
		Routers: make(map[string]node.Router),
		opts:    opts,
	}
	for _, tn := range topo.Nodes {
		cp, ok := snap.Nodes[tn.Name]
		if !ok {
			return nil, fmt.Errorf("cluster: snapshot missing node %s", tn.Name)
		}
		r, err := node.RestoreRouter(cp)
		if err != nil {
			return nil, err
		}
		c.Routers[tn.Name] = r
		c.Net.AddNode(r)
	}
	for _, l := range topo.Links {
		c.Net.Connect(netem.NodeID(l.A), netem.NodeID(l.B), netem.LinkConfig{
			Delay:  l.Delay,
			Jitter: l.Jitter,
			Loss:   l.Loss,
		})
	}
	// Replay channel state so the cut stays consistent.
	injectInFlight(c, snap)
	return c, nil
}

// InjectUpdate delivers a raw BGP UPDATE to a router as if it had been sent
// by the named peer. The DiCE orchestrator uses it to subject a node in a
// shadow cluster to an explored input.
func (c *Cluster) InjectUpdate(fromPeer, to string, update *bgp.Update) {
	c.Net.InjectMessage(netem.NodeID(fromPeer), netem.NodeID(to), bgp.Encode(update), 0)
}

// InjectRaw delivers a raw wire message (possibly malformed) to a router.
func (c *Cluster) InjectRaw(fromPeer, to string, wire []byte) {
	c.Net.InjectMessage(netem.NodeID(fromPeer), netem.NodeID(to), wire, 0)
}

// RouterNames returns the router names in topology order.
func (c *Cluster) RouterNames() []string { return c.Topo.NodeNames() }

// Subview returns a read-only, domain-scoped view of the cluster restricted
// to the given sub-topology (usually built with Topology.Induced): Router,
// RouterNames and property checks see only that subset of nodes. The view
// shares router instances and the transport with the parent cluster — it is
// a visibility boundary, not a copy — so it must not be run or mutated.
// Federated coordinators evaluate properties over their domain's subview.
func (c *Cluster) Subview(sub *topology.Topology) *Cluster {
	routers := make(map[string]node.Router, len(sub.Nodes))
	for _, n := range sub.Nodes {
		if r, ok := c.Routers[n.Name]; ok {
			routers[n.Name] = r
		}
	}
	return &Cluster{Topo: sub, Net: c.Net, Routers: routers, opts: c.opts}
}

// TotalBestChanges sums the best-route changes across all routers, a proxy
// for control-plane churn used by the overhead experiment.
func (c *Cluster) TotalBestChanges() int {
	total := 0
	for _, r := range c.Routers {
		total += r.Stats().BestChanges
	}
	return total
}
