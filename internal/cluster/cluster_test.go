package cluster

import (
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bird"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/topology"
)

func TestBuildAndConvergeLine(t *testing.T) {
	topo := topology.Line(4)
	c := MustBuild(topo, Options{Seed: 1})
	events := c.Converge()
	if events == 0 {
		t.Fatalf("no events processed")
	}
	// Full reachability with accept-all policies.
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		for _, node := range topo.Nodes {
			if r.LocRIB().Best(node.Prefixes[0]) == nil {
				t.Errorf("%s is missing a route to %s", name, node.Prefixes[0])
			}
		}
		if v := r.CheckInvariants(); len(v) != 0 {
			t.Errorf("%s invariant violations: %v", name, v)
		}
	}
}

func TestConvergeDemo27GaoRexford(t *testing.T) {
	topo := topology.Demo27()
	c := MustBuild(topo, Options{Seed: 1, GaoRexford: true})
	c.Converge()

	// Every router must reach every originated prefix (valley-free policies
	// still provide full reachability in a correctly configured hierarchy).
	missing := 0
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		for _, node := range topo.Nodes {
			if node.Name == name {
				continue
			}
			if r.LocRIB().Best(node.Prefixes[0]) == nil {
				missing++
			}
		}
	}
	if missing != 0 {
		t.Fatalf("%d (router, prefix) pairs unreachable after convergence", missing)
	}
}

func TestGaoRexfordExportRestriction(t *testing.T) {
	// R2 is the customer of R1 and peers with R3. A provider-learned route
	// must not be exported to the peer (valley-free export).
	topo := &topology.Topology{
		Name: "gr-3",
		Nodes: []topology.Node{
			{Name: "R1", AS: 65001, RouterID: 1, Prefixes: []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16")}},
			{Name: "R2", AS: 65002, RouterID: 2, Prefixes: []bgp.Prefix{bgp.MustParsePrefix("10.2.0.0/16")}},
			{Name: "R3", AS: 65003, RouterID: 3, Prefixes: []bgp.Prefix{bgp.MustParsePrefix("10.3.0.0/16")}},
		},
		Links: []topology.Link{
			{A: "R2", B: "R1", Rel: topology.RelCustomer, Delay: time.Millisecond},
			{A: "R2", B: "R3", Rel: topology.RelPeer, Delay: time.Millisecond},
		},
	}
	c := MustBuild(topo, Options{Seed: 1, GaoRexford: true})
	c.Converge()

	r3 := c.Router("R3")
	// R3 must see R2's own prefix (customer/local export allowed)...
	if r3.LocRIB().Best(bgp.MustParsePrefix("10.2.0.0/16")) == nil {
		t.Errorf("peer should receive locally originated prefix")
	}
	// ...but not R1's prefix, which R2 learned from its provider.
	if r3.LocRIB().Best(bgp.MustParsePrefix("10.1.0.0/16")) != nil {
		t.Errorf("provider-learned prefix leaked to a peer (valley violation)")
	}
	// Relationship local-prefs applied on import.
	best := c.Router("R2").LocRIB().Best(bgp.MustParsePrefix("10.1.0.0/16"))
	if best == nil || best.Attrs.EffectiveLocalPref() != LocalPrefProvider {
		t.Errorf("provider-learned route should carry LOCAL_PREF %d: %+v", LocalPrefProvider, best)
	}
	if !best.Attrs.HasCommunity(TagProvider) {
		t.Errorf("provider-learned route should be tagged")
	}
}

func TestConfigOverride(t *testing.T) {
	topo := topology.Line(2)
	hijacked := bgp.MustParsePrefix("10.2.0.0/16")
	c := MustBuild(topo, Options{Seed: 1, ConfigOverride: func(cfg *bird.Config) {
		if cfg.Name == "R1" {
			cfg.Networks = append(cfg.Networks, hijacked) // operator mistake
		}
	}})
	c.Converge()
	// R1 now originates R2's prefix as well.
	best := c.Router("R1").LocRIB().Best(hijacked)
	if best == nil || !best.Local {
		t.Errorf("config override not applied: %+v", best)
	}
}

func TestSnapshotRestoreProducesIdenticalShadow(t *testing.T) {
	topo := topology.Demo27()
	c := MustBuild(topo, Options{Seed: 3, GaoRexford: true})
	c.Converge()

	snap := c.Snapshot()
	if !snap.Consistent || len(snap.Nodes) != 27 {
		t.Fatalf("snapshot incomplete: %d nodes", len(snap.Nodes))
	}
	shadow, err := FromSnapshot(topo, snap, Options{Seed: 3, GaoRexford: true})
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	for _, name := range c.RouterNames() {
		orig, copyR := c.Router(name), shadow.Router(name)
		op, cp := orig.LocRIB().Prefixes(), copyR.LocRIB().Prefixes()
		if len(op) != len(cp) {
			t.Fatalf("%s: shadow has %d prefixes, original %d", name, len(cp), len(op))
		}
		for i := range op {
			ob, cb := orig.LocRIB().Best(op[i]), copyR.LocRIB().Best(cp[i])
			if ob.Peer != cb.Peer || ob.Attrs.EffectiveLocalPref() != cb.Attrs.EffectiveLocalPref() {
				t.Errorf("%s: best for %s differs between original and shadow", name, op[i])
			}
		}
	}

	// Exploring on the shadow must not perturb the original (isolation).
	victim := topo.Nodes[0].Prefixes[0]
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65099}, NextHop: 42}
	shadow.InjectUpdate("R2", "R1", &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("99.9.0.0/16")}})
	shadow.Converge()
	if shadow.Router("R1").LocRIB().Best(bgp.MustParsePrefix("99.9.0.0/16")) == nil {
		t.Errorf("shadow did not process the injected update")
	}
	if c.Router("R1").LocRIB().Best(bgp.MustParsePrefix("99.9.0.0/16")) != nil {
		t.Errorf("exploration on the shadow leaked into the deployed cluster")
	}
	_ = victim
}

func TestSnapshotCapturesInFlightMessages(t *testing.T) {
	topo := topology.Line(3)
	c := MustBuild(topo, Options{Seed: 1})
	// Run only a little so messages are still in flight.
	c.Net.Start()
	c.Run(5 * time.Millisecond)
	snap := c.Snapshot()
	if len(snap.InFlight) == 0 {
		t.Fatalf("expected in-flight messages right after start")
	}
	// A shadow built from the snapshot converges to full reachability because
	// the channel state was preserved.
	shadow, err := FromSnapshot(topo, snap, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shadow.Converge()
	for _, name := range shadow.RouterNames() {
		for _, node := range topo.Nodes {
			if shadow.Router(name).LocRIB().Best(node.Prefixes[0]) == nil {
				t.Errorf("shadow %s missing %s after replaying channel state", name, node.Prefixes[0])
			}
		}
	}
}

func TestInconsistentSnapshotLosesMessages(t *testing.T) {
	topo := topology.Line(3)
	c := MustBuild(topo, Options{Seed: 1})
	c.Net.Start()
	c.Run(5 * time.Millisecond)
	snap := c.Snapshot().DropChannelState()
	shadow, err := FromSnapshot(topo, snap, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	shadow.Converge()
	// With the channel state dropped, at least one router misses a route it
	// would have had — the false-positive source the consistent cut avoids.
	missing := 0
	for _, name := range shadow.RouterNames() {
		for _, node := range topo.Nodes {
			if shadow.Router(name).LocRIB().Best(node.Prefixes[0]) == nil {
				missing++
			}
		}
	}
	if missing == 0 {
		t.Skip("all OPENs had already been delivered at the cut; nothing to lose")
	}
}

func TestSnapshotEncodeDecodeIntegration(t *testing.T) {
	topo := topology.Line(3)
	c := MustBuild(topo, Options{Seed: 1})
	c.Converge()
	snap := c.Snapshot()
	data, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	shadow, err := FromSnapshot(topo, decoded, Options{Seed: 1})
	if err != nil {
		t.Fatalf("FromSnapshot(decoded): %v", err)
	}
	if shadow.Router("R3").LocRIB().Best(topo.Nodes[0].Prefixes[0]) == nil {
		t.Errorf("shadow from decoded snapshot lost routes")
	}
}

func TestBuildErrors(t *testing.T) {
	bad := topology.Line(2)
	bad.Nodes[1].AS = bad.Nodes[0].AS
	if _, err := Build(bad, Options{}); err == nil {
		t.Errorf("invalid topology must not build")
	}
	if _, err := ConfigFor(topology.Line(2), "nope", Options{}); err == nil {
		t.Errorf("unknown node must not produce a config")
	}
	snap := &checkpoint.Snapshot{Nodes: map[string]node.Checkpoint{}}
	if _, err := FromSnapshot(topology.Line(2), snap, Options{}); err == nil {
		t.Errorf("snapshot missing nodes must not restore")
	}
}

func TestTotalBestChanges(t *testing.T) {
	c := MustBuild(topology.Line(3), Options{Seed: 1})
	c.Converge()
	if c.TotalBestChanges() == 0 {
		t.Errorf("convergence should produce best-route changes")
	}
}
