package cluster

import (
	"testing"
	"time"

	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/topology"
)

// TestBuildMixedImplementations verifies construction dispatches each node
// to its tagged backend.
func TestBuildMixedImplementations(t *testing.T) {
	topo := topology.Line(3).SetImpl("frr", "R2")
	c := MustBuild(topo, Options{Seed: 1})
	if got := c.Router("R1").Implementation(); got != "bird" {
		t.Errorf("R1 runs %q, want bird (default)", got)
	}
	if got := c.Router("R2").Implementation(); got != "frr" {
		t.Errorf("R2 runs %q, want frr", got)
	}
	if impls := c.Implementations(); len(impls) != 2 || impls[0] != "bird" || impls[1] != "frr" {
		t.Errorf("Implementations() = %v", impls)
	}
	if !topo.Heterogeneous() {
		t.Errorf("tagged topology not reported heterogeneous")
	}

	// A mixed deployment interoperates: full reachability across backends.
	c.Converge()
	for _, name := range c.RouterNames() {
		for _, tn := range topo.Nodes {
			if c.Router(name).LocRIB().Best(tn.Prefixes[0]) == nil {
				t.Errorf("%s missing route to %s across implementations", name, tn.Prefixes[0])
			}
		}
	}
}

func TestBuildUnknownImplementationFails(t *testing.T) {
	topo := topology.Line(2).SetImpl("cisco-ios", "R1")
	if _, err := Build(topo, Options{}); err == nil {
		t.Fatal("unknown implementation tag must not build")
	}
}

// TestMixedPooledResetEquivalentToColdRebuild extends the golden
// clone-lifecycle property to heterogeneous deployments: on the mixed
// Demo27 variant, a pooled clone reset must be byte-identical to a cold
// rebuild — bird nodes through the slab path, frr nodes through the
// clone-per-route path — and stay identical under further execution.
func TestMixedPooledResetEquivalentToColdRebuild(t *testing.T) {
	topo := topology.Demo27Hetero()
	opts := Options{Seed: 3, GaoRexford: true}
	live := MustBuild(topo, opts)
	live.Net.Start()
	live.Run(60 * time.Millisecond) // mid-convergence: channel state in the cut
	snap := live.Snapshot()

	store, err := checkpoint.NewStore(snap)
	if err != nil {
		t.Fatalf("NewStore over mixed snapshot: %v", err)
	}
	pool := NewClonePool(topo, store, opts)

	explorer := "R13" // an frr stub
	peer := topo.NeighborsOf(explorer)[0]
	peerAS := topo.Node(peer).AS
	const n = 5
	for i := 0; i < n; i++ {
		clone, err := pool.Lease()
		if err != nil {
			t.Fatalf("Lease %d: %v", i, err)
		}
		clone.InjectUpdate(peer, explorer, exploredInput(i, peerAS))
		clone.Net.RunQuiescent(0)
		pool.Release(clone)
	}

	pooled, err := pool.Lease()
	if err != nil {
		t.Fatal(err)
	}
	cold, err := FromSnapshot(topo, snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := clusterCanonical(t, pooled), clusterCanonical(t, cold); got != want {
		t.Fatalf("mixed pooled-reset clone differs from cold rebuild")
	}
	in := exploredInput(99, peerAS)
	pooled.InjectUpdate(peer, explorer, in)
	cold.InjectUpdate(peer, explorer, in)
	pooled.Net.RunQuiescent(0)
	cold.Net.RunQuiescent(0)
	if got, want := clusterCanonical(t, pooled), clusterCanonical(t, cold); got != want {
		t.Fatalf("mixed pooled-reset clone diverged from cold rebuild after execution")
	}
}
