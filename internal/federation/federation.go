// Package federation implements the administrative-domain layer of DiCE —
// the paper's defining scenario. A deployed system like the Internet is not
// one testable artifact but a federation of domains (autonomous systems)
// whose operators will not share configurations, policies or full state with
// each other. Federated testing therefore splits a campaign along domain
// boundaries:
//
//   - a Partition assigns every topology node to exactly one administrative
//     Domain (per-AS by default, matching the paper's setting of one domain
//     per autonomous system);
//   - one Coordinator per domain owns a domain-scoped view of each explored
//     shadow cluster and evaluates properties over that view only;
//   - coordinators exchange nothing but checker.Summary messages — digests
//     of local check outcomes — over an in-process Bus that records every
//     envelope and charges its serialized size, so disclosure is both
//     enforced (the Bus API admits no other payload type) and accounted.
//
// The dice package wires this into Campaign via WithFederation; the E10
// experiment compares federated against centralized detection on the
// hijack scenario and reports the disclosure cost.
package federation

import (
	"fmt"

	"github.com/dice-project/dice/internal/topology"
)

// Domain is one administrative domain of a federated deployment: a named
// subset of the topology's routers under a single operator's control.
type Domain struct {
	// Name identifies the domain in summaries, events and results.
	Name string
	// Nodes are the router names the domain administers.
	Nodes []string
}

// Partition splits a topology into disjoint administrative domains covering
// every node. Build one with PartitionByAS, PartitionByTier or NewPartition,
// then hand it to dice.WithFederation.
type Partition struct {
	// Domains in deterministic order; campaign planning and aggregation
	// iterate them in this order.
	Domains []Domain

	byNode map[string]string
}

// NewPartition builds a partition from explicit domains. It fails unless the
// domains are non-empty, disjoint and cover every node of the topology —
// federation is only meaningful when every router answers to exactly one
// administration.
func NewPartition(topo *topology.Topology, domains []Domain) (*Partition, error) {
	if len(domains) == 0 {
		return nil, fmt.Errorf("federation: partition with no domains")
	}
	p := &Partition{Domains: domains, byNode: make(map[string]string)}
	seenDomain := make(map[string]bool, len(domains))
	for _, d := range domains {
		if d.Name == "" {
			return nil, fmt.Errorf("federation: domain with empty name")
		}
		if seenDomain[d.Name] {
			return nil, fmt.Errorf("federation: duplicate domain %q", d.Name)
		}
		seenDomain[d.Name] = true
		if len(d.Nodes) == 0 {
			return nil, fmt.Errorf("federation: domain %q has no nodes", d.Name)
		}
		for _, n := range d.Nodes {
			if topo.Node(n) == nil {
				return nil, fmt.Errorf("federation: domain %q references unknown node %q", d.Name, n)
			}
			if owner, dup := p.byNode[n]; dup {
				return nil, fmt.Errorf("federation: node %q in domains %q and %q", n, owner, d.Name)
			}
			p.byNode[n] = d.Name
		}
	}
	for _, n := range topo.Nodes {
		if _, ok := p.byNode[n.Name]; !ok {
			return nil, fmt.Errorf("federation: node %q belongs to no domain", n.Name)
		}
	}
	return p, nil
}

// PartitionByAS partitions at autonomous-system granularity — the paper's
// federation model, where every AS is its own administrative domain. With
// this repository's one-router-per-AS topologies that is one domain per
// router, named after the AS.
func PartitionByAS(topo *topology.Topology) *Partition {
	domains := make([]Domain, 0, len(topo.Nodes))
	for _, n := range topo.Nodes {
		domains = append(domains, Domain{
			Name:  fmt.Sprintf("as%d", n.AS),
			Nodes: []string{n.Name},
		})
	}
	p, err := NewPartition(topo, domains)
	if err != nil {
		// Topology.Validate guarantees unique ASes and names; reaching here
		// means the topology was never validated, which Deploy would reject.
		panic(err)
	}
	return p
}

// PartitionByTier groups routers by their topology tier — a coarse partition
// (core operators vs regional vs stubs) useful for demos where 27 per-AS
// domains would be noise. Nodes keep topology order within each domain.
func PartitionByTier(topo *topology.Topology) *Partition {
	byTier := make(map[int][]string)
	var order []int
	for _, n := range topo.Nodes {
		if _, seen := byTier[n.Tier]; !seen {
			order = append(order, n.Tier)
		}
		byTier[n.Tier] = append(byTier[n.Tier], n.Name)
	}
	domains := make([]Domain, 0, len(order))
	for _, tier := range order {
		domains = append(domains, Domain{Name: fmt.Sprintf("tier%d", tier), Nodes: byTier[tier]})
	}
	p, err := NewPartition(topo, domains)
	if err != nil {
		panic(err)
	}
	return p
}

// DomainOf returns the name of the domain administering the node, or "".
func (p *Partition) DomainOf(node string) string { return p.byNode[node] }

// Domain returns the named domain, or nil.
func (p *Partition) Domain(name string) *Domain {
	for i := range p.Domains {
		if p.Domains[i].Name == name {
			return &p.Domains[i]
		}
	}
	return nil
}

// CrossingLinks counts topology links whose endpoints are administered by
// different domains — the inter-domain sessions whose inputs federated
// exploration is most interested in.
func (p *Partition) CrossingLinks(topo *topology.Topology) int {
	n := 0
	for _, l := range topo.Links {
		if p.byNode[l.A] != p.byNode[l.B] {
			n++
		}
	}
	return n
}
