package federation

import (
	"sort"
	"sync"

	"github.com/dice-project/dice/internal/checker"
)

// Envelope is one summary delivery recorded by the bus: who sent what to
// whom, and how many bytes the exchange was charged. It crosses the
// federation privacy boundary, so dice-vet's privleak analyzer proves that
// nothing beyond checker.Summary content is reachable from it.
//
//dice:boundary
type Envelope struct {
	Seq      int
	From, To string
	Summary  checker.Summary
	// Bytes is the serialized size charged for the exchange
	// (Summary.Size()).
	Bytes int
}

// Traffic aggregates one domain's bus activity.
type Traffic struct {
	SummariesSent, SummariesReceived int
	BytesSent, BytesReceived         int
}

// BusStats aggregates the whole bus.
type BusStats struct {
	// Summaries is the number of envelopes published; Bytes their total
	// serialized size. These are the campaign's Disclosed numbers.
	Summaries int
	Bytes     int
}

// Transport carries published envelopes beyond the in-process bus — the
// seam where the federation privacy boundary becomes a wire protocol. The
// bus's own counters and retention are unaffected by a transport: Deliver is
// invoked after the publish has been accounted, with the final envelope
// (sequence number and charged bytes filled in). The distributed agent
// installs a transport that accumulates envelopes for shipment to the
// control plane, which replays them into its own bus via Record; an
// in-process federated campaign simply has no transport. Deliver is called
// synchronously from Publish (outside the bus lock) and must be safe for
// concurrent use.
type Transport interface {
	Deliver(Envelope)
}

// Bus is the in-process message bus federated coordinators exchange
// summaries over. Its API is deliberately narrow: the only publishable
// payload is a checker.Summary, which structurally prevents raw
// configurations, policies or route state from crossing a domain boundary.
// Every publish is charged its serialized size; aggregate and per-domain
// counters are always kept, while full envelope retention (for audits and
// the privacy test, which re-serializes exactly what was exchanged) is
// opt-in via SetRetain — an unbounded campaign would otherwise accumulate
// one envelope per summary for its whole lifetime.
//
// Bus is safe for concurrent use.
type Bus struct {
	mu        sync.Mutex
	retain    bool
	seq       int
	log       []Envelope
	stats     BusStats
	traffic   map[string]*Traffic
	transport Transport
}

// NewBus returns an empty bus that keeps counters only.
func NewBus() *Bus {
	return &Bus{traffic: make(map[string]*Traffic)}
}

// SetRetain toggles full envelope retention. Enable it before traffic
// flows; envelopes published while retention was off are counted but gone.
func (b *Bus) SetRetain(retain bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.retain = retain
}

// SetTransport installs a transport that receives every subsequently
// published envelope after local accounting. Install it before traffic
// flows; a nil transport restores purely in-process operation.
func (b *Bus) SetTransport(t Transport) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.transport = t
}

// Publish delivers a summary from one domain to another and returns the
// bytes charged for the exchange. Publishing within a single domain is a
// programming error the bus does not account (it returns zero): only
// boundary crossings disclose anything.
func (b *Bus) Publish(from, to string, s checker.Summary) int {
	if from == to {
		return 0
	}
	env := Envelope{From: from, To: to, Summary: s, Bytes: s.Size()}
	b.mu.Lock()
	env.Seq = b.seq
	b.account(env)
	t := b.transport
	b.mu.Unlock()
	if t != nil {
		t.Deliver(env)
	}
	return env.Bytes
}

// Record accounts an envelope that was published on a bus in another process
// — the receiving half of a Transport. The control plane replays every
// envelope an agent shipped with its shard results, so a distributed
// federated campaign's Stats, Traffic and retained Log match the in-process
// run envelope for envelope. The charge is recomputed from the summary
// (never trusted from the wire) and the sequence number is reassigned in
// arrival order; the recomputed bytes are returned. Same-domain envelopes
// are ignored, exactly as Publish ignores them.
func (b *Bus) Record(e Envelope) int {
	if e.From == e.To {
		return 0
	}
	e.Bytes = e.Summary.Size()
	b.mu.Lock()
	defer b.mu.Unlock()
	e.Seq = b.seq
	b.account(e)
	return e.Bytes
}

// account applies one envelope to the counters and the retained log. The
// caller holds b.mu and has already assigned the sequence number.
func (b *Bus) account(e Envelope) {
	if b.retain {
		b.log = append(b.log, e)
	}
	b.seq++
	b.stats.Summaries++
	b.stats.Bytes += e.Bytes
	b.domainTraffic(e.From).SummariesSent++
	b.domainTraffic(e.From).BytesSent += e.Bytes
	b.domainTraffic(e.To).SummariesReceived++
	b.domainTraffic(e.To).BytesReceived += e.Bytes
}

func (b *Bus) domainTraffic(domain string) *Traffic {
	t := b.traffic[domain]
	if t == nil {
		t = &Traffic{}
		b.traffic[domain] = t
	}
	return t
}

// Stats returns the aggregate bus counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Domains returns every domain the bus has accounted traffic for, sorted —
// the enumeration the metrics layer labels per-domain series with.
func (b *Bus) Domains() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, 0, len(b.traffic))
	for d := range b.traffic {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Traffic returns the named domain's send/receive counters.
func (b *Bus) Traffic(domain string) Traffic {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t := b.traffic[domain]; t != nil {
		return *t
	}
	return Traffic{}
}

// Log returns a copy of every envelope retained so far, in publish order —
// nil unless SetRetain(true) was called first. The privacy test walks it to
// prove that nothing beyond Summary content was exchanged and that the
// charged bytes match the summaries' sizes.
func (b *Bus) Log() []Envelope {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Envelope(nil), b.log...)
}
