package federation

import (
	"sync"

	"github.com/dice-project/dice/internal/checker"
)

// Envelope is one summary delivery recorded by the bus: who sent what to
// whom, and how many bytes the exchange was charged.
type Envelope struct {
	Seq      int
	From, To string
	Summary  checker.Summary
	// Bytes is the serialized size charged for the exchange
	// (Summary.Size()).
	Bytes int
}

// Traffic aggregates one domain's bus activity.
type Traffic struct {
	SummariesSent, SummariesReceived int
	BytesSent, BytesReceived         int
}

// BusStats aggregates the whole bus.
type BusStats struct {
	// Summaries is the number of envelopes published; Bytes their total
	// serialized size. These are the campaign's Disclosed numbers.
	Summaries int
	Bytes     int
}

// Bus is the in-process message bus federated coordinators exchange
// summaries over. Its API is deliberately narrow: the only publishable
// payload is a checker.Summary, which structurally prevents raw
// configurations, policies or route state from crossing a domain boundary.
// Every publish is charged its serialized size; aggregate and per-domain
// counters are always kept, while full envelope retention (for audits and
// the privacy test, which re-serializes exactly what was exchanged) is
// opt-in via SetRetain — an unbounded campaign would otherwise accumulate
// one envelope per summary for its whole lifetime.
//
// Bus is safe for concurrent use.
type Bus struct {
	mu      sync.Mutex
	retain  bool
	seq     int
	log     []Envelope
	stats   BusStats
	traffic map[string]*Traffic
}

// NewBus returns an empty bus that keeps counters only.
func NewBus() *Bus {
	return &Bus{traffic: make(map[string]*Traffic)}
}

// SetRetain toggles full envelope retention. Enable it before traffic
// flows; envelopes published while retention was off are counted but gone.
func (b *Bus) SetRetain(retain bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.retain = retain
}

// Publish delivers a summary from one domain to another and returns the
// bytes charged for the exchange. Publishing within a single domain is a
// programming error the bus does not account (it returns zero): only
// boundary crossings disclose anything.
func (b *Bus) Publish(from, to string, s checker.Summary) int {
	if from == to {
		return 0
	}
	n := s.Size()
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.retain {
		b.log = append(b.log, Envelope{Seq: b.seq, From: from, To: to, Summary: s, Bytes: n})
	}
	b.seq++
	b.stats.Summaries++
	b.stats.Bytes += n
	b.domainTraffic(from).SummariesSent++
	b.domainTraffic(from).BytesSent += n
	b.domainTraffic(to).SummariesReceived++
	b.domainTraffic(to).BytesReceived += n
	return n
}

func (b *Bus) domainTraffic(domain string) *Traffic {
	t := b.traffic[domain]
	if t == nil {
		t = &Traffic{}
		b.traffic[domain] = t
	}
	return t
}

// Stats returns the aggregate bus counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}

// Traffic returns the named domain's send/receive counters.
func (b *Bus) Traffic(domain string) Traffic {
	b.mu.Lock()
	defer b.mu.Unlock()
	if t := b.traffic[domain]; t != nil {
		return *t
	}
	return Traffic{}
}

// Log returns a copy of every envelope retained so far, in publish order —
// nil unless SetRetain(true) was called first. The privacy test walks it to
// prove that nothing beyond Summary content was exchanged and that the
// charged bytes match the summaries' sizes.
func (b *Bus) Log() []Envelope {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Envelope(nil), b.log...)
}
