package federation

import (
	"reflect"
	"sync"
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
)

type captureTransport struct {
	mu   sync.Mutex
	envs []Envelope
}

func (t *captureTransport) Deliver(e Envelope) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.envs = append(t.envs, e)
}

func transportSummary(domain string) checker.Summary {
	return checker.Summary{
		Domain:  domain,
		Checked: 4,
		OK:      false,
		Digests: []checker.ViolationDigest{{
			Property: "origin-validity",
			Class:    checker.ClassOperatorMistake,
			Node:     "R2",
			Prefix:   bgp.MustParsePrefix("10.0.9.0/24"),
			HasPfx:   true,
		}},
	}
}

// TestBusTransportDelivery: an installed transport sees every cross-domain
// publish with the accounted envelope, and local accounting is unchanged by
// its presence.
func TestBusTransportDelivery(t *testing.T) {
	bus := NewBus()
	cap := &captureTransport{}
	bus.SetTransport(cap)

	s := transportSummary("as1")
	n := bus.Publish("as1", "as2", s)
	if n != s.Size() {
		t.Fatalf("charged %d bytes, want %d", n, s.Size())
	}
	if bus.Publish("as1", "as1", s) != 0 {
		t.Fatalf("same-domain publish was charged")
	}
	if len(cap.envs) != 1 {
		t.Fatalf("transport saw %d envelopes, want 1 (same-domain publish must not be delivered)", len(cap.envs))
	}
	env := cap.envs[0]
	if env.From != "as1" || env.To != "as2" || env.Bytes != s.Size() || env.Seq != 0 {
		t.Fatalf("unexpected envelope: %+v", env)
	}
	if got := bus.Stats(); got.Summaries != 1 || got.Bytes != s.Size() {
		t.Fatalf("stats %+v, want 1 summary / %d bytes", got, s.Size())
	}
}

// TestBusRecordMatchesPublish: replaying a remote bus's envelopes through
// Record reproduces the in-process bus exactly — stats, per-domain traffic
// and retained log. This is the equivalence the distributed control plane
// relies on when it replays agent envelopes.
func TestBusRecordMatchesPublish(t *testing.T) {
	local := NewBus()
	local.SetRetain(true)
	remote := NewBus()
	remote.SetRetain(true)
	cap := &captureTransport{}
	remote.SetTransport(cap)

	pubs := []struct{ from, to string }{
		{"as1", "as2"}, {"as2", "as1"}, {"as3", "as1"},
	}
	for _, p := range pubs {
		s := transportSummary(p.from)
		local.Publish(p.from, p.to, s)
	}
	for _, p := range pubs {
		s := transportSummary(p.from)
		remote.Publish(p.from, p.to, s)
	}

	replay := NewBus()
	replay.SetRetain(true)
	for _, e := range cap.envs {
		// Wire bytes are never trusted: Record recomputes the charge.
		e.Bytes = -1
		if got := replay.Record(e); got != e.Summary.Size() {
			t.Fatalf("recorded %d bytes, want %d", got, e.Summary.Size())
		}
	}
	if replay.Record(Envelope{From: "as1", To: "as1"}) != 0 {
		t.Fatalf("same-domain record was charged")
	}

	if !reflect.DeepEqual(replay.Stats(), local.Stats()) {
		t.Fatalf("stats diverge: replay %+v local %+v", replay.Stats(), local.Stats())
	}
	for _, d := range []string{"as1", "as2", "as3"} {
		if !reflect.DeepEqual(replay.Traffic(d), local.Traffic(d)) {
			t.Fatalf("traffic for %s diverges: replay %+v local %+v", d, replay.Traffic(d), local.Traffic(d))
		}
	}
	if !reflect.DeepEqual(replay.Log(), local.Log()) {
		t.Fatalf("retained logs diverge:\n replay %+v\n local  %+v", replay.Log(), local.Log())
	}
}
