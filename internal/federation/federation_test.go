package federation

import (
	"strings"
	"testing"

	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/topology"
)

func TestNewPartitionValidation(t *testing.T) {
	topo := topology.Line(3)
	cases := []struct {
		name    string
		domains []Domain
		wantErr string
	}{
		{"no domains", nil, "no domains"},
		{"empty name", []Domain{{Name: "", Nodes: []string{"R1", "R2", "R3"}}}, "empty name"},
		{"duplicate domain", []Domain{{Name: "a", Nodes: []string{"R1"}}, {Name: "a", Nodes: []string{"R2", "R3"}}}, "duplicate domain"},
		{"empty domain", []Domain{{Name: "a", Nodes: nil}, {Name: "b", Nodes: []string{"R1", "R2", "R3"}}}, "no nodes"},
		{"unknown node", []Domain{{Name: "a", Nodes: []string{"R1", "R9"}}, {Name: "b", Nodes: []string{"R2", "R3"}}}, "unknown node"},
		{"overlap", []Domain{{Name: "a", Nodes: []string{"R1", "R2"}}, {Name: "b", Nodes: []string{"R2", "R3"}}}, "in domains"},
		{"self overlap", []Domain{{Name: "a", Nodes: []string{"R1", "R1", "R2", "R3"}}}, "in domains"},
		{"uncovered", []Domain{{Name: "a", Nodes: []string{"R1"}}, {Name: "b", Nodes: []string{"R2"}}}, "belongs to no domain"},
		{"all uncovered", []Domain{{Name: "a", Nodes: []string{"R1"}}}, "belongs to no domain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewPartition(topo, tc.domains)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("NewPartition = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}

	p, err := NewPartition(topo, []Domain{
		{Name: "edge", Nodes: []string{"R1", "R2"}},
		{Name: "core", Nodes: []string{"R3"}},
	})
	if err != nil {
		t.Fatalf("valid partition rejected: %v", err)
	}
	if p.DomainOf("R2") != "edge" || p.DomainOf("R3") != "core" || p.DomainOf("R9") != "" {
		t.Errorf("DomainOf wrong: %q %q %q", p.DomainOf("R2"), p.DomainOf("R3"), p.DomainOf("R9"))
	}
	if p.Domain("core") == nil || p.Domain("nope") != nil {
		t.Errorf("Domain lookup wrong")
	}
	if got := p.CrossingLinks(topo); got != 1 {
		t.Errorf("CrossingLinks = %d, want 1 (R2-R3)", got)
	}
}

// TestNewPartitionSingleDomainDegenerate pins the degenerate but legal case:
// one domain administering every node. The partition validates, nothing
// crosses a boundary, and every node answers to the one administration —
// the configuration under which a federated campaign collapses to a
// centralized one.
func TestNewPartitionSingleDomainDegenerate(t *testing.T) {
	topo := topology.Line(3)
	p, err := NewPartition(topo, []Domain{{Name: "world", Nodes: []string{"R1", "R2", "R3"}}})
	if err != nil {
		t.Fatalf("single-domain partition rejected: %v", err)
	}
	if len(p.Domains) != 1 {
		t.Fatalf("domains = %d, want 1", len(p.Domains))
	}
	for _, n := range topo.NodeNames() {
		if p.DomainOf(n) != "world" {
			t.Errorf("DomainOf(%s) = %q, want world", n, p.DomainOf(n))
		}
	}
	if got := p.CrossingLinks(topo); got != 0 {
		t.Errorf("single-domain partition has %d crossing links, want 0", got)
	}
}

func TestPartitionByASAndTier(t *testing.T) {
	topo := topology.Demo27()
	byAS := PartitionByAS(topo)
	if len(byAS.Domains) != 27 {
		t.Fatalf("per-AS partition has %d domains, want 27", len(byAS.Domains))
	}
	if byAS.Domains[0].Name != "as65001" || byAS.DomainOf("R1") != "as65001" {
		t.Errorf("AS domain naming wrong: %+v", byAS.Domains[0])
	}
	// Every link of a per-AS partition crosses a boundary.
	if got := byAS.CrossingLinks(topo); got != len(topo.Links) {
		t.Errorf("per-AS crossing links = %d, want all %d", got, len(topo.Links))
	}

	byTier := PartitionByTier(topo)
	if len(byTier.Domains) != 3 {
		t.Fatalf("tier partition has %d domains, want 3", len(byTier.Domains))
	}
	total := 0
	for _, d := range byTier.Domains {
		total += len(d.Nodes)
	}
	if total != 27 {
		t.Errorf("tier partition covers %d nodes, want 27", total)
	}
	if byTier.DomainOf("R1") != "tier1" {
		t.Errorf("R1 in %q, want tier1", byTier.DomainOf("R1"))
	}
}

func TestBusAccounting(t *testing.T) {
	bus := NewBus()
	bus.SetRetain(true)
	sum := checker.Summary{
		Domain:  "a",
		Checked: 4,
		Digests: []checker.ViolationDigest{{Property: "origin-validity", Node: "R1"}},
	}
	n := bus.Publish("a", "b", sum)
	if n != sum.Size() || n == 0 {
		t.Errorf("Publish charged %d bytes, want Size() = %d", n, sum.Size())
	}
	// Intra-domain publishes are not an exchange.
	if got := bus.Publish("a", "a", sum); got != 0 {
		t.Errorf("self-publish charged %d bytes", got)
	}
	bus.Publish("b", "a", checker.Summary{Domain: "b", OK: true})

	if s := bus.Stats(); s.Summaries != 2 || s.Bytes == 0 {
		t.Errorf("bus stats %+v", s)
	}
	ta, tb := bus.Traffic("a"), bus.Traffic("b")
	if ta.SummariesSent != 1 || ta.SummariesReceived != 1 || tb.SummariesSent != 1 || tb.SummariesReceived != 1 {
		t.Errorf("traffic wrong: a=%+v b=%+v", ta, tb)
	}
	if ta.BytesSent != tb.BytesReceived || ta.BytesReceived != tb.BytesSent {
		t.Errorf("byte accounting asymmetric: a=%+v b=%+v", ta, tb)
	}
	log := bus.Log()
	if len(log) != 2 || log[0].From != "a" || log[0].To != "b" || log[0].Bytes != n {
		t.Errorf("bus log wrong: %+v", log)
	}

	// Without retention the bus keeps counters, not envelopes — the default,
	// so unbounded campaigns don't accumulate the log forever.
	lean := NewBus()
	lean.Publish("a", "b", sum)
	if lean.Log() != nil {
		t.Errorf("unretained bus kept a log")
	}
	if s := lean.Stats(); s.Summaries != 1 || s.Bytes != sum.Size() {
		t.Errorf("unretained bus lost its counters: %+v", s)
	}
}

// TestCoordinatorScopedCheck proves the visibility boundary: a coordinator
// checking a cluster sees verdicts for its own domain's nodes only, and the
// summary it would disclose carries digests plus the forwarding projection,
// never more.
func TestCoordinatorScopedCheck(t *testing.T) {
	topo := topology.Line(3)
	live := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	live.Converge()

	p, err := NewPartition(topo, []Domain{
		{Name: "left", Nodes: []string{"R1", "R2"}},
		{Name: "right", Nodes: []string{"R3"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	bus := NewBus()
	co := NewCoordinator(topo, *p.Domain("left"), bus)
	props := checker.DefaultProperties(topo)
	rep, sum := co.CheckLocal(live, props)

	for _, res := range rep.Results {
		for _, v := range res.Verdicts {
			if v.Node != "R1" && v.Node != "R2" {
				t.Errorf("coordinator saw verdict for foreign node %s (%s)", v.Node, res.Property)
			}
		}
	}
	if sum.Domain != "left" || !sum.OK || len(sum.Digests) != 0 {
		t.Errorf("healthy domain summary wrong: %+v", sum)
	}
	for _, e := range sum.Edges {
		if e.Node != "R1" && e.Node != "R2" {
			t.Errorf("projection leaks foreign node %s", e.Node)
		}
	}
	if len(sum.Edges) == 0 {
		t.Errorf("converged domain projected no forwarding edges")
	}
	if st := co.Stats(); st.Checks != 1 || st.LocalViolations != 0 {
		t.Errorf("coordinator stats %+v", st)
	}
}
