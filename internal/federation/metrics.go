package federation

import "github.com/dice-project/dice/internal/obs"

// RegisterBusMetrics registers the federation bus's disclosure accounting,
// reading the bus returned by the callback at exposition time (nil exposes
// zeros). Per-domain series appear as domains first exchange traffic.
func RegisterBusMetrics(reg *obs.Registry, bus func() *Bus) {
	reg.CounterFunc("dice_federation_summaries_total", "Summary envelopes published across domain boundaries.",
		func() float64 {
			if b := bus(); b != nil {
				return float64(b.Stats().Summaries)
			}
			return 0
		})
	reg.CounterFunc("dice_federation_disclosed_bytes_total", "Serialized bytes charged for cross-domain disclosures.",
		func() float64 {
			if b := bus(); b != nil {
				return float64(b.Stats().Bytes)
			}
			return 0
		})
	perDomain := func(f func(Traffic) int) func() map[string]float64 {
		return func() map[string]float64 {
			b := bus()
			if b == nil {
				return nil
			}
			out := make(map[string]float64)
			for _, d := range b.Domains() {
				out[d] = float64(f(b.Traffic(d)))
			}
			return out
		}
	}
	reg.CounterVecFunc("dice_federation_domain_summaries_sent_total", "Summaries published by the domain.", "domain",
		perDomain(func(t Traffic) int { return t.SummariesSent }))
	reg.CounterVecFunc("dice_federation_domain_bytes_sent_total", "Disclosure bytes charged to the domain as sender.", "domain",
		perDomain(func(t Traffic) int { return t.BytesSent }))
	reg.CounterVecFunc("dice_federation_domain_bytes_received_total", "Disclosure bytes received by the domain.", "domain",
		perDomain(func(t Traffic) int { return t.BytesReceived }))
}
