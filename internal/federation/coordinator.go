package federation

import (
	"sync"

	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/topology"
)

// CoordinatorStats counts one coordinator's federated activity.
type CoordinatorStats struct {
	// Checks counts domain-scoped check rounds (one per explored clone the
	// domain evaluated).
	Checks int
	// LocalViolations counts violations the domain's own checks produced
	// (before campaign-level deduplication).
	LocalViolations int
}

// Coordinator is one domain's testing authority. It owns the domain-scoped
// view of every explored shadow cluster — built from the domain's induced
// sub-topology, so checks can only see the domain's routers — and produces
// the privacy-filtered summaries that may leave the domain. The full check
// report never does: CheckLocal hands it back only to the coordinator's own
// domain logic, while everything bound for another domain goes through
// Publish.
type Coordinator struct {
	domain Domain
	sub    *topology.Topology
	bus    *Bus

	mu    sync.Mutex
	stats CoordinatorStats
}

// NewCoordinator returns the coordinator for one domain of the partition.
func NewCoordinator(topo *topology.Topology, d Domain, bus *Bus) *Coordinator {
	return &Coordinator{
		domain: d,
		sub:    topo.Induced(d.Name, d.Nodes),
		bus:    bus,
	}
}

// Domain returns the coordinator's domain.
func (co *Coordinator) Domain() Domain { return co.domain }

// CheckLocal evaluates the properties over the domain-scoped view of the
// shadow cluster. Per-node properties are checked directly; a
// ProjectionProperty (loop freedom) cannot be decided from one domain's
// subgraph, so the coordinator instead extracts the domain's minimized
// forwarding projection and ships it in the summary for the exploring
// domain to assemble. The summary carries one projection, so props may
// contain at most one distinct ProjectionProperty (the campaign validates
// this before checking starts). The returned report is domain-private
// (full violations with local detail); the returned summary is the
// shareable projection of both.
func (co *Coordinator) CheckLocal(shadow *cluster.Cluster, props []checker.Property) (*checker.Report, checker.Summary) {
	view := shadow.Subview(co.sub)
	var local []checker.Property
	var edges []checker.ForwardingEdge
	projected := false
	for _, p := range props {
		if pp, ok := p.(checker.ProjectionProperty); ok {
			if !projected {
				edges = pp.Projection(view)
				projected = true
			}
			continue
		}
		local = append(local, p)
	}
	rep := checker.CheckAll(view, local)
	sum := checker.Summarize(co.domain.Name, rep, edges)
	co.mu.Lock()
	co.stats.Checks++
	co.stats.LocalViolations += len(sum.Digests)
	co.mu.Unlock()
	return rep, sum
}

// Publish sends a summary to another domain over the bus and returns the
// bytes disclosed.
func (co *Coordinator) Publish(to string, s checker.Summary) int {
	return co.bus.Publish(co.domain.Name, to, s)
}

// Stats returns a snapshot of the coordinator's counters.
func (co *Coordinator) Stats() CoordinatorStats {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.stats
}
