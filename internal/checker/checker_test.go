package checker

import (
	"strings"
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/bird"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/node"
	"github.com/dice-project/dice/internal/topology"
)

func convergedLine(t *testing.T, n int, override func(cfg *bird.Config)) (*topology.Topology, *cluster.Cluster) {
	t.Helper()
	topo := topology.Line(n)
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1, ConfigOverride: override})
	c.Converge()
	return topo, c
}

func TestOwnershipFromTopology(t *testing.T) {
	topo := topology.Line(3)
	own := OwnershipFromTopology(topo)
	if len(own) != 3 {
		t.Fatalf("ownership entries = %d, want 3", len(own))
	}
	if own[topo.Nodes[0].Prefixes[0]] != topo.Nodes[0].AS {
		t.Errorf("ownership mapping wrong")
	}
}

func TestAllPropertiesHoldOnHealthySystem(t *testing.T) {
	topo, c := convergedLine(t, 4, nil)
	report := CheckAll(c, DefaultProperties(topo))
	if !report.OK() {
		t.Fatalf("healthy system reported violations: %v", report.Violations())
	}
	if report.DisclosedBytes() <= 0 {
		t.Errorf("disclosure accounting missing")
	}
	// The narrow interface shares far less than full node state.
	full := FullStateDisclosure(c)
	if report.DisclosedBytes() >= full {
		t.Errorf("narrow interface (%d bytes) should be smaller than full state (%d bytes)",
			report.DisclosedBytes(), full)
	}
}

func TestOriginValidityDetectsHijack(t *testing.T) {
	// R3 originates R1's prefix as well (mis-origination).
	topo := topology.Line(3)
	victim := topo.Nodes[0].Prefixes[0]
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1, ConfigOverride: func(cfg *bird.Config) {
		if cfg.Name == "R3" {
			cfg.Networks = append(cfg.Networks, victim)
		}
	}})
	c.Converge()

	res := OriginValidity{Ownership: OwnershipFromTopology(topo)}.Check(c)
	if res.OK() {
		t.Fatalf("hijack not detected")
	}
	found := false
	for _, v := range res.Violations {
		if v.Class != ClassOperatorMistake {
			t.Errorf("hijack should be classified as operator mistake, got %v", v.Class)
		}
		if v.HasPfx && v.Prefix == victim {
			found = true
		}
	}
	if !found {
		t.Errorf("violations do not name the hijacked prefix: %v", res.Violations)
	}
	// Verdicts never contain RIB contents, only pass/fail and a short note.
	for _, v := range res.Verdicts {
		if strings.Contains(v.Detail, "as-path") || strings.Contains(v.Detail, "next-hop") {
			t.Errorf("verdict leaks route details: %q", v.Detail)
		}
	}
}

func TestReachabilityDetectsBlackhole(t *testing.T) {
	// R2 refuses every announcement from R1, so prefixes behind R1 are
	// unreachable from R2 and R3.
	topo := topology.Line(3)
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1, ConfigOverride: func(cfg *bird.Config) {
		if cfg.Name == "R2" {
			for i := range cfg.Neighbors {
				if cfg.Neighbors[i].Name == "R1" {
					pol := rejectPrefixPolicy("BLOCK", topo.Nodes[0].Prefixes[0])
					cfg.Policies["BLOCK"] = pol
					cfg.Neighbors[i].Import = "BLOCK"
				}
			}
		}
	}})
	c.Converge()
	res := Reachability{Ownership: OwnershipFromTopology(topo)}.Check(c)
	if res.OK() {
		t.Fatalf("blackhole not detected")
	}
}

func rejectPrefixPolicy(name string, p bgp.Prefix) *policy.Policy {
	pol, err := policy.ParsePolicy("policy " + name + " { if prefix = " + p.String() + " { reject } default accept }")
	if err != nil {
		panic(err)
	}
	return pol
}

func TestConvergenceDetectsOscillation(t *testing.T) {
	// Synthesize an oscillating event log by running a healthy system and
	// then checking with an artificially low threshold.
	topo, c := convergedLine(t, 4, nil)
	_ = topo
	res := Convergence{MaxChangesPerPrefix: 0}.Check(c)
	_ = res // threshold 0 falls back to the default; use explicit threshold below
	strict := Convergence{MaxChangesPerPrefix: 1}
	if strict.Check(c).OK() {
		// With threshold 1 some prefix almost certainly changed best twice
		// during convergence; if not, the system is suspiciously quiet.
		t.Skip("no prefix changed best more than once during convergence")
	}
	for _, v := range strict.Check(c).Violations {
		if v.Class != ClassPolicyConflict {
			t.Errorf("oscillation should be classified as policy conflict")
		}
	}
}

func TestNodeHealthDetectsCrash(t *testing.T) {
	topo, c := convergedLine(t, 2, nil)
	_ = topo
	// Simulate a crashed handler.
	c.Router("R2").SetUpdateHook(func(r node.HookContext, from string, u *bgp.Update) error {
		return errInjected
	})
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{65001}, NextHop: 1}
	c.InjectUpdate("R1", "R2", &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{bgp.MustParsePrefix("99.0.0.0/8")}})
	c.Converge()

	res := NodeHealth{}.Check(c)
	if res.OK() {
		t.Fatalf("crash not detected")
	}
	if res.Violations[0].Class != ClassProgrammingError {
		t.Errorf("crash should be classified as programming error")
	}
}

var errInjected = errorString("injected crash")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestLoopFreedomCleanAndDisclosureMinimal(t *testing.T) {
	topo, c := convergedLine(t, 4, nil)
	res := LoopFreedom{}.Check(c)
	if !res.OK() {
		t.Fatalf("unexpected loops: %v", res.Violations)
	}
	if res.DisclosedBytes <= 0 {
		t.Errorf("loop checking must account for its (minimal) disclosure")
	}
	if res.DisclosedBytes >= FullStateDisclosure(c) {
		t.Errorf("projection disclosure should be far below full state")
	}
	_ = topo
}

func TestReportAggregation(t *testing.T) {
	topo, c := convergedLine(t, 3, nil)
	rep := CheckAll(c, DefaultProperties(topo))
	if len(rep.Results) != 5 {
		t.Errorf("results = %d, want 5 properties", len(rep.Results))
	}
	if !rep.OK() || len(rep.Violations()) != 0 {
		t.Errorf("aggregation broken: %v", rep.Violations())
	}
}

func TestFaultClassAndViolationStrings(t *testing.T) {
	for _, c := range []FaultClass{ClassUnknown, ClassOperatorMistake, ClassPolicyConflict, ClassProgrammingError} {
		if c.String() == "" {
			t.Errorf("empty class name")
		}
	}
	v := Violation{Property: "p", Class: ClassOperatorMistake, Node: "R1", Detail: "d",
		Prefix: bgp.MustParsePrefix("10.0.0.0/8"), HasPfx: true}
	if v.String() == "" || v.Key() == "" {
		t.Errorf("violation rendering broken")
	}
	v2 := Violation{Property: "p", Class: ClassProgrammingError, Node: "R1", Detail: "d"}
	if v2.String() == "" || v2.Key() == v.Key() {
		t.Errorf("violation keys should differ")
	}
}
