package checker

import (
	"fmt"
	"sort"
	"strings"

	"github.com/dice-project/dice/internal/bgp"
)

// Summary is the ONLY message type that crosses administrative domain
// boundaries in a federated campaign. It carries the outcome of a domain's
// local property checks reduced to registry-public facts: which properties
// were evaluated, whether they held, and a digest per violation. It never
// references router configurations, policies, RIB contents or raw route
// attributes — the federation privacy test serializes every summary that
// crossed the bus and proves none of that content leaked.
type Summary struct {
	// Domain is the administrative domain that produced the summary.
	Domain string
	// Checked counts the (property, node) evaluations the summary covers.
	Checked int
	// OK reports whether every local check passed; a summary with OK true
	// carries no digests.
	OK bool
	// Digests are the violating findings, one per violation, reduced to the
	// fields of Violation.Key plus the fault class.
	Digests []ViolationDigest
	// Edges is the domain's minimized forwarding projection — the
	// (node, prefix, next-hop) pairs ProjectionProperty checks (loop
	// freedom) need a cross-domain view of. It is the same projection the
	// centralized checker already treats as shareable; nothing about route
	// attributes, preferences or alternatives rides along.
	Edges []ForwardingEdge
}

// ViolationDigest is the privacy-filtered projection of a Violation: exactly
// the fields that identify the finding across domains (the Key fields and
// the fault class). The free-form Detail string — which may quote node-local
// state — deliberately does not cross the boundary.
type ViolationDigest struct {
	Property string
	Class    FaultClass
	Node     string
	Prefix   bgp.Prefix
	HasPfx   bool
}

// Key identifies the digested violation; it matches Violation.Key for the
// violation the digest was derived from, so detections deduplicate the same
// way whether they were found locally or reported through a summary.
func (d ViolationDigest) Key() string {
	return Violation{Property: d.Property, Node: d.Node, Prefix: d.Prefix, HasPfx: d.HasPfx}.Key()
}

// Violation reconstructs a checkable violation from the digest. The detail
// marks the finding as federated: the receiving domain knows that the
// property failed and where, but not the reporting domain's local evidence.
func (d ViolationDigest) Violation() Violation {
	return d.ViolationVia("federation summary")
}

// ViolationVia reconstructs a checkable violation from the digest with an
// explicit source in the detail — "federation summary" for bus traffic,
// "remote agent summary" for detections that crossed the distributed-execution
// wire. The detail never affects Violation.Key, so deduplication is identical
// however the finding arrived.
func (d ViolationDigest) ViolationVia(source string) Violation {
	return Violation{
		Property: d.Property,
		Class:    d.Class,
		Node:     d.Node,
		Prefix:   d.Prefix,
		HasPfx:   d.HasPfx,
		Detail:   "reported via " + source,
	}
}

// DigestOf reduces a violation to its privacy-filtered digest — exactly the
// projection Summarize applies, exposed for code (the distributed agent) that
// ships individual detections rather than whole reports.
func DigestOf(v Violation) ViolationDigest {
	return ViolationDigest{
		Property: v.Property,
		Class:    v.Class,
		Node:     v.Node,
		Prefix:   v.Prefix,
		HasPfx:   v.HasPfx,
	}
}

// size approximates the serialized digest size in bytes: the two strings, a
// 5-byte prefix (4 address bytes + length), the class byte and the HasPfx
// flag. The same convention as Verdict.size keeps disclosure accounting
// comparable between the verdict interface and the federation bus.
func (d ViolationDigest) size() int {
	return len(d.Property) + len(d.Node) + 5 + 2
}

// Size is the serialized size of the summary in bytes under the disclosure
// accounting convention: domain name, the Checked counter (4 bytes), the OK
// flag, every digest, and every forwarding edge (usually the dominant term —
// edges ride on every summary, digests only on failing ones). The federation
// bus charges exactly this many bytes per published summary, and
// CampaignResult.Disclosed sums the charges, so "bytes disclosed" always
// equals bytes actually exchanged.
func (s Summary) Size() int {
	n := len(s.Domain) + 4 + 1
	for _, d := range s.Digests {
		n += d.size()
	}
	for _, e := range s.Edges {
		n += e.size()
	}
	return n
}

// Key identifies the summary by content alone, for cross-process
// deduplication on the distributed-execution wire. It is deliberately free of
// anything process-local — no pointers, no map iteration order, no sequence
// numbers: digests and edges are each rendered to canonical strings and
// sorted, so two summaries with the same content produce the same key no
// matter which process built them or in what order their slices were
// appended. Encoding a summary, shipping it, and decoding it never changes
// its key (covered by the cross-process parity test).
func (s Summary) Key() string {
	digests := make([]string, len(s.Digests))
	for i, d := range s.Digests {
		digests[i] = fmt.Sprintf("%s|%d", d.Key(), d.Class)
	}
	sort.Strings(digests)
	edges := make([]string, len(s.Edges))
	for i, e := range s.Edges {
		edges[i] = fmt.Sprintf("%s|%s|%s", e.Node, e.Prefix, e.NextHop)
	}
	sort.Strings(edges)
	return fmt.Sprintf("%s|%d|%t|%s|%s",
		s.Domain, s.Checked, s.OK, strings.Join(digests, ";"), strings.Join(edges, ";"))
}

// Summarize reduces a domain-local check report (plus the domain's
// forwarding projection, when cross-domain properties are checked) to the
// summary that may leave the domain.
func Summarize(domain string, rep *Report, edges []ForwardingEdge) Summary {
	s := Summary{Domain: domain, OK: true, Edges: edges}
	for _, res := range rep.Results {
		s.Checked += len(res.Verdicts)
		for _, v := range res.Violations {
			s.OK = false
			s.Digests = append(s.Digests, DigestOf(v))
		}
	}
	return s
}
