package checker

import (
	"strings"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/topology"
)

// divergenceTopo builds the minimal diamond on which the two backends'
// decision processes legally disagree: RX is dual-homed to R5 and R10, both
// of which reach the origin R1. RX's two candidates for R1's prefix tie
// through the RFC-mandated comparison steps (equal path length, no
// LOCAL_PREF policy, both eBGP), so the selection comes down to the final
// tie-break — lowest router ID picks R5, lowest neighbor name picks R10.
func divergenceTopo() *topology.Topology {
	mk := func(name string, id uint32) topology.Node {
		return topology.Node{
			Name: name, AS: bgp.ASN(65000 + id), RouterID: bgp.RouterID(id),
			Prefixes: []bgp.Prefix{{Addr: 10<<24 | id<<16, Len: 16}},
		}
	}
	return &topology.Topology{
		Name:  "divergence-diamond",
		Nodes: []topology.Node{mk("R1", 1), mk("R5", 5), mk("R10", 10), mk("RX", 42)},
		Links: []topology.Link{
			{A: "R5", B: "R1", Rel: topology.RelPeer, Delay: time.Millisecond},
			{A: "R10", B: "R1", Rel: topology.RelPeer, Delay: time.Millisecond},
			{A: "RX", B: "R5", Rel: topology.RelPeer, Delay: time.Millisecond},
			{A: "RX", B: "R10", Rel: topology.RelPeer, Delay: time.Millisecond},
		},
	}
}

func TestCrossImplDivergenceFlagsMixedDeployment(t *testing.T) {
	topo := divergenceTopo().SetImpl("frr", "RX")
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	c.Converge()

	res := CrossImplDivergence{}.Check(c)
	if res.OK() {
		t.Fatalf("mixed deployment with a tied dual-homed node reported no divergence")
	}
	found := false
	for _, v := range res.Violations {
		if v.Class != ClassImplDivergence {
			t.Errorf("violation class = %v, want %v", v.Class, ClassImplDivergence)
		}
		if v.Node == "RX" && v.Prefix == bgp.MustParsePrefix("10.1.0.0/16") {
			found = true
			if !strings.Contains(v.Detail, "bird selects via R5") || !strings.Contains(v.Detail, "frr selects via R10") {
				t.Errorf("divergence detail does not name both selections: %s", v.Detail)
			}
		}
	}
	if !found {
		t.Fatalf("RX's divergence on R1's prefix not flagged: %v", res.Violations)
	}
	// Verdicts cover every node and charge disclosure like other properties.
	if len(res.Verdicts) != len(topo.Nodes) || res.DisclosedBytes == 0 {
		t.Errorf("verdict accounting: %d verdicts, %d bytes", len(res.Verdicts), res.DisclosedBytes)
	}
	// The class renders for reports.
	if ClassImplDivergence.String() != "implementation-divergence" {
		t.Errorf("class renders as %q", ClassImplDivergence)
	}
}

// TestCrossImplDivergenceInertWhenHomogeneous pins the compatibility
// guarantee: on a single-implementation deployment the property produces no
// violations and all-OK verdicts, so configuring it changes nothing about a
// homogeneous campaign's detections.
func TestCrossImplDivergenceInertWhenHomogeneous(t *testing.T) {
	c := cluster.MustBuild(divergenceTopo(), cluster.Options{Seed: 1})
	c.Converge()
	res := CrossImplDivergence{}.Check(c)
	if !res.OK() {
		t.Fatalf("homogeneous deployment flagged: %v", res.Violations)
	}
	for _, v := range res.Verdicts {
		if !v.OK {
			t.Errorf("verdict for %s not OK", v.Node)
		}
	}

	// CompareAll asks the counterfactual question instead: would this
	// deployment diverge if its nodes were diversified across the registered
	// backends? The same tied candidate set must then be flagged even though
	// every node runs bird today.
	all := CrossImplDivergence{CompareAll: true}.Check(c)
	if all.OK() {
		t.Fatalf("CompareAll missed the latent divergence")
	}
}
