package checker

import (
	"strings"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/topology"
)

// divergenceTopo builds the minimal diamond on which the backends' decision
// processes legally disagree: RX is dual-homed to R5 and R10, both of which
// reach the origin R1. RX's two candidates for R1's prefix tie through the
// RFC-mandated comparison steps (equal path length, no LOCAL_PREF policy,
// both eBGP), so the selection comes down to the final tie-break — lowest
// router ID picks R5, lowest neighbor name picks R10, and the oldest-route
// rule picks whichever announcement arrived first.
func divergenceTopo() *topology.Topology {
	mk := func(name string, id uint32) topology.Node {
		return topology.Node{
			Name: name, AS: bgp.ASN(65000 + id), RouterID: bgp.RouterID(id),
			Prefixes: []bgp.Prefix{{Addr: 10<<24 | id<<16, Len: 16}},
		}
	}
	return &topology.Topology{
		Name:  "divergence-diamond",
		Nodes: []topology.Node{mk("R1", 1), mk("R5", 5), mk("R10", 10), mk("RX", 42)},
		Links: []topology.Link{
			{A: "R5", B: "R1", Rel: topology.RelPeer, Delay: time.Millisecond},
			{A: "R10", B: "R1", Rel: topology.RelPeer, Delay: time.Millisecond},
			{A: "RX", B: "R5", Rel: topology.RelPeer, Delay: time.Millisecond},
			{A: "RX", B: "R10", Rel: topology.RelPeer, Delay: time.Millisecond},
		},
	}
}

func TestCrossImplDivergenceFlagsMixedDeployment(t *testing.T) {
	topo := divergenceTopo().SetImpl("frr", "RX")
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	c.Converge()

	res := CrossImplDivergence{}.Check(c)
	if res.OK() {
		t.Fatalf("mixed deployment with a tied dual-homed node reported no divergence")
	}
	found := false
	for _, v := range res.Violations {
		if v.Class != ClassImplDivergence {
			t.Errorf("violation class = %v, want %v", v.Class, ClassImplDivergence)
		}
		if !strings.HasPrefix(v.Detail, DivergenceMajorityOutvoted) && !strings.HasPrefix(v.Detail, DivergencePairwiseLegal) {
			t.Errorf("detail not classified: %s", v.Detail)
		}
		if v.Node == "RX" && v.Prefix == bgp.MustParsePrefix("10.1.0.0/16") {
			found = true
			// The vote names the policies that disagree, not the backends:
			// bird's router-id order and frr's peer-address order must both
			// appear, with their picks.
			for _, want := range []string{"router-id-first", "peer-address-first", "selects via"} {
				if !strings.Contains(v.Detail, want) {
					t.Errorf("divergence detail missing %q: %s", want, v.Detail)
				}
			}
		}
	}
	if !found {
		t.Fatalf("RX's divergence on R1's prefix not flagged: %v", res.Violations)
	}
	// Verdicts cover every node and charge disclosure like other properties.
	if len(res.Verdicts) != len(topo.Nodes) || res.DisclosedBytes == 0 {
		t.Errorf("verdict accounting: %d verdicts, %d bytes", len(res.Verdicts), res.DisclosedBytes)
	}
	// The class renders for reports.
	if ClassImplDivergence.String() != "implementation-divergence" {
		t.Errorf("class renders as %q", ClassImplDivergence)
	}
}

// TestCrossImplDivergenceThreeWayMix deploys all three backends at once and
// pins determinism: two runs from the same seed produce identical violation
// sets, and every finding carries a vote classification.
func TestCrossImplDivergenceThreeWayMix(t *testing.T) {
	run := func() Result {
		topo := divergenceTopo().SetImpl("frr", "RX").SetImpl("obgpd", "R5")
		c := cluster.MustBuild(topo, cluster.Options{Seed: 7})
		c.Converge()
		return CrossImplDivergence{}.Check(c)
	}
	res := run()
	if res.OK() {
		t.Fatalf("three-way mixed deployment reported no divergence")
	}
	for _, v := range res.Violations {
		if !strings.HasPrefix(v.Detail, DivergenceMajorityOutvoted) && !strings.HasPrefix(v.Detail, DivergencePairwiseLegal) {
			t.Errorf("unclassified finding: %s", v.Detail)
		}
	}
	again := run()
	if len(again.Violations) != len(res.Violations) {
		t.Fatalf("divergence set not deterministic: %d vs %d", len(res.Violations), len(again.Violations))
	}
	for i := range res.Violations {
		if res.Violations[i] != again.Violations[i] {
			t.Errorf("violation %d differs across identical runs:\n%v\n%v", i, res.Violations[i], again.Violations[i])
		}
	}
}

// TestCrossImplDivergenceInertWhenHomogeneous pins the compatibility
// guarantee: on a single-implementation deployment the property produces no
// violations and all-OK verdicts, so configuring it changes nothing about a
// homogeneous campaign's detections — for every backend, including the
// non-default ones.
func TestCrossImplDivergenceInertWhenHomogeneous(t *testing.T) {
	for _, impl := range []string{"", "frr", "obgpd"} {
		topo := divergenceTopo()
		if impl != "" {
			topo = topo.SetImpl(impl)
		}
		c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
		c.Converge()
		res := CrossImplDivergence{}.Check(c)
		if !res.OK() {
			t.Fatalf("homogeneous %q deployment flagged: %v", impl, res.Violations)
		}
		for _, v := range res.Verdicts {
			if !v.OK {
				t.Errorf("homogeneous %q: verdict for %s not OK", impl, v.Node)
			}
		}
	}

	// CompareAll asks the counterfactual question instead: would this
	// deployment diverge if its nodes were diversified across the policy
	// universe? The same tied candidate set must then be flagged even though
	// every node runs bird today.
	c := cluster.MustBuild(divergenceTopo(), cluster.Options{Seed: 1})
	c.Converge()
	all := CrossImplDivergence{CompareAll: true}.Check(c)
	if all.OK() {
		t.Fatalf("CompareAll missed the latent divergence")
	}
}

// mkCand builds a hand-crafted candidate that ties through the shared
// decision steps, so only the policy tails distinguish it.
func mkCand(peer string, id bgp.RouterID, age uint64) *rib.Route {
	attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, NextHop: 0x0a000001, ASPath: []bgp.ASN{64500}}
	attrs.SetLocalPref(100)
	return &rib.Route{
		Prefix:       bgp.MustParsePrefix("10.1.0.0/16"),
		Attrs:        attrs,
		Peer:         peer,
		PeerAS:       65000 + bgp.ASN(id),
		PeerRouterID: id,
		EBGP:         true,
		Age:          age,
	}
}

// TestClassifyDivergenceVotes pins the vote classifier against candidate
// sets constructed to split each possible way.
func TestClassifyDivergenceVotes(t *testing.T) {
	cases := []struct {
		name  string
		cands []*rib.Route
		want  []string
	}{
		{
			// router-id-first → R9 (ID 1); peer-address-first → R1 (lowest
			// name); oldest-first → R5 (age 1). Three distinct selections.
			name:  "pairwise-legal three-way split",
			cands: []*rib.Route{mkCand("R9", 1, 5), mkCand("R1", 2, 6), mkCand("R5", 3, 1)},
			want:  []string{DivergencePairwiseLegal, "router-id-first selects via R9", "peer-address-first selects via R1", "oldest-first selects via R5"},
		},
		{
			// Ages tie the oldest rule back to router-ID order, so
			// router-id-first and oldest-first both pick R9 and the
			// peer-address order is the lone dissenter.
			name:  "peer-address outvoted",
			cands: []*rib.Route{mkCand("R9", 1, 0), mkCand("R1", 2, 0)},
			want:  []string{DivergenceMajorityOutvoted, "peer-address-first alone selects via R1", "router-id-first and oldest-first select via R9"},
		},
		{
			// The younger route wins both name and ID order; only the age
			// rule prefers the incumbent.
			name:  "oldest outvoted",
			cands: []*rib.Route{mkCand("R2", 2, 1), mkCand("R1", 1, 5)},
			want:  []string{DivergenceMajorityOutvoted, "oldest-first alone selects via R2", "router-id-first and peer-address-first select via R1"},
		},
		{
			// Lowest name and oldest age agree on R1; only the router-ID
			// order prefers R9.
			name:  "router-id outvoted",
			cands: []*rib.Route{mkCand("R9", 1, 5), mkCand("R1", 2, 1)},
			want:  []string{DivergenceMajorityOutvoted, "router-id-first alone selects via R9", "peer-address-first and oldest-first select via R1"},
		},
	}
	for _, tc := range cases {
		got := classifyDivergence(tc.cands)
		for _, want := range tc.want {
			if !strings.Contains(got, want) {
				t.Errorf("%s: classification %q missing %q", tc.name, got, want)
			}
		}
	}
}
