// Package checker implements DiCE's property checking: the definitions of
// desired system behaviour, the local per-node checks, and the narrow
// information-sharing interface through which federated nodes exchange check
// results without exposing their private state and configuration.
//
// Each Property inspects a cluster (usually a shadow clone produced from a
// snapshot and subjected to an explored input) and produces a Result holding:
//
//   - Verdicts: the per-node pass/fail outcomes that cross administrative
//     boundaries. Their serialized size is the property's "disclosure" —
//     the experiments compare it against shipping full node state.
//   - Violations: concrete findings, each attributed to one of the paper's
//     three fault classes (operator mistake, policy conflict, programming
//     error).
package checker

import (
	"fmt"
	"sort"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/topology"
)

// FaultClass is one of the paper's three fault classes, extended with the
// cross-implementation divergence class heterogeneous deployments add.
type FaultClass int

// Fault classes.
const (
	ClassUnknown FaultClass = iota
	ClassOperatorMistake
	ClassPolicyConflict
	ClassProgrammingError
	// ClassImplDivergence marks findings where two conformant router
	// implementations legally disagree — not a bug in either node, but an
	// emergent hazard of a heterogeneous federation (route selection that
	// depends on which vendor a node runs).
	ClassImplDivergence
)

// String renders the fault class.
func (c FaultClass) String() string {
	switch c {
	case ClassOperatorMistake:
		return "operator-mistake"
	case ClassPolicyConflict:
		return "policy-conflict"
	case ClassProgrammingError:
		return "programming-error"
	case ClassImplDivergence:
		return "implementation-divergence"
	}
	return "unknown"
}

// Ownership maps a prefix to the AS authorized to originate it — the public
// registry (in the spirit of an IRR/RPKI database) that origin validation
// checks against. It is public data, not private node state.
type Ownership map[bgp.Prefix]bgp.ASN

// OwnershipFromTopology derives the registry from the prefixes each topology
// node declares.
func OwnershipFromTopology(topo *topology.Topology) Ownership {
	out := make(Ownership)
	for _, n := range topo.Nodes {
		for _, p := range n.Prefixes {
			out[p] = n.AS
		}
	}
	return out
}

// Verdict is the unit of information a node shares with the checking plane:
// which property it checked, whether it holds locally, and a short detail
// string. No RIB contents or configuration leave the node.
type Verdict struct {
	Node     string
	Property string
	OK       bool
	Detail   string
}

// size approximates the serialized size of the verdict in bytes, used for
// disclosure accounting.
func (v Verdict) size() int {
	return len(v.Node) + len(v.Property) + len(v.Detail) + 1
}

// Violation is a concrete property violation.
type Violation struct {
	Property string
	Class    FaultClass
	Node     string
	Prefix   bgp.Prefix
	HasPfx   bool
	Detail   string
}

// String renders the violation compactly.
func (v Violation) String() string {
	if v.HasPfx {
		return fmt.Sprintf("[%s/%s] %s: %s (%s)", v.Class, v.Property, v.Node, v.Detail, v.Prefix)
	}
	return fmt.Sprintf("[%s/%s] %s: %s", v.Class, v.Property, v.Node, v.Detail)
}

// Key identifies the violation for deduplication across explored inputs.
func (v Violation) Key() string {
	return fmt.Sprintf("%s|%s|%s|%v", v.Property, v.Node, v.Prefix, v.HasPfx)
}

// Result is the outcome of checking one property over one system state.
type Result struct {
	Property   string
	Violations []Violation
	Verdicts   []Verdict
	// DisclosedBytes is the number of bytes of node-local information that
	// crossed administrative boundaries to evaluate the property.
	DisclosedBytes int
}

// OK reports whether the property held.
func (r Result) OK() bool { return len(r.Violations) == 0 }

// Property is a checkable system property.
type Property interface {
	// Name identifies the property in reports.
	Name() string
	// Check evaluates the property over the cluster.
	Check(c *cluster.Cluster) Result
}

// Report aggregates the results of checking several properties.
type Report struct {
	Results []Result
}

// CheckAll evaluates every property.
func CheckAll(c *cluster.Cluster, props []Property) *Report {
	rep := &Report{}
	for _, p := range props {
		rep.Results = append(rep.Results, p.Check(c))
	}
	return rep
}

// Violations returns all violations across properties.
func (r *Report) Violations() []Violation {
	var out []Violation
	for _, res := range r.Results {
		out = append(out, res.Violations...)
	}
	return out
}

// DisclosedBytes sums the disclosure across properties.
func (r *Report) DisclosedBytes() int {
	total := 0
	for _, res := range r.Results {
		total += res.DisclosedBytes
	}
	return total
}

// OK reports whether every property held.
func (r *Report) OK() bool { return len(r.Violations()) == 0 }

// DefaultProperties returns the standard property set used by the DiCE
// experiments for a given topology: origin validity, reachability, forwarding
// loop freedom, convergence, and node health.
func DefaultProperties(topo *topology.Topology) []Property {
	own := OwnershipFromTopology(topo)
	return []Property{
		OriginValidity{Ownership: own},
		Reachability{Ownership: own},
		LoopFreedom{},
		Convergence{MaxChangesPerPrefix: 8},
		NodeHealth{},
	}
}

// PropertiesByName constructs standard properties from their registry names
// ("origin-validity", "reachability", "loop-freedom", "convergence",
// "node-health"), configured exactly as DefaultProperties configures them.
// Distributed execution uses it to rebuild a campaign's property set on the
// agent side of the wire: property values carry funcs and derived maps that
// cannot be serialized, but the standard set is reconstructible from names
// plus the topology alone.
func PropertiesByName(topo *topology.Topology, names ...string) ([]Property, error) {
	own := OwnershipFromTopology(topo)
	out := make([]Property, 0, len(names))
	for _, name := range names {
		switch name {
		case "origin-validity":
			out = append(out, OriginValidity{Ownership: own})
		case "reachability":
			out = append(out, Reachability{Ownership: own})
		case "loop-freedom":
			out = append(out, LoopFreedom{})
		case "convergence":
			out = append(out, Convergence{MaxChangesPerPrefix: 8})
		case "node-health":
			out = append(out, NodeHealth{})
		default:
			return nil, fmt.Errorf("checker: unknown property %q", name)
		}
	}
	return out, nil
}

// FullStateDisclosure computes the number of bytes that would cross domain
// boundaries if nodes shared their entire checkpoints with the checking plane
// instead of verdicts — the baseline the narrow interface is compared against
// in experiment E7.
func FullStateDisclosure(c *cluster.Cluster) int {
	total := 0
	for _, name := range c.RouterNames() {
		data, err := checkpoint.EncodeNode(c.Router(name).TakeCheckpoint())
		if err != nil {
			continue
		}
		total += len(data)
	}
	return total
}

//
// OriginValidity: no AS announces a prefix it does not own (prefix hijacking,
// typically the result of an operator mistake such as a missing import
// filter or a mis-origination).
//

// OriginValidity checks that the originating AS of every selected route is
// the registered owner of the prefix.
type OriginValidity struct {
	Ownership Ownership
}

// Name implements Property.
func (OriginValidity) Name() string { return "origin-validity" }

// Check implements Property. Each node checks its own Loc-RIB against the
// public registry and shares only verdicts.
func (p OriginValidity) Check(c *cluster.Cluster) Result {
	res := Result{Property: p.Name()}
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		ok := true
		for _, best := range r.LocRIB().BestRoutes() {
			owner, registered := p.Ownership[best.Prefix]
			if !registered {
				continue // unregistered prefix: out of scope for this property
			}
			originAS := best.Attrs.OriginAS()
			if best.Local {
				originAS = r.Config().AS
			}
			if originAS != owner {
				ok = false
				res.Violations = append(res.Violations, Violation{
					Property: p.Name(),
					Class:    ClassOperatorMistake,
					Node:     name,
					Prefix:   best.Prefix,
					HasPfx:   true,
					Detail:   fmt.Sprintf("prefix owned by AS %d is originated by AS %d", owner, originAS),
				})
			}
		}
		v := Verdict{Node: name, Property: p.Name(), OK: ok}
		if !ok {
			v.Detail = "hijacked prefix selected"
		}
		res.Verdicts = append(res.Verdicts, v)
		res.DisclosedBytes += v.size()
	}
	return res
}

//
// Reachability: every registered prefix has a selected route at every node
// (no blackholes after convergence).
//

// Reachability checks that every node has a route to every registered prefix.
type Reachability struct {
	Ownership Ownership
}

// Name implements Property.
func (Reachability) Name() string { return "reachability" }

// Check implements Property.
func (p Reachability) Check(c *cluster.Cluster) Result {
	res := Result{Property: p.Name()}
	prefixes := make([]bgp.Prefix, 0, len(p.Ownership))
	for pfx := range p.Ownership {
		prefixes = append(prefixes, pfx)
	}
	bgp.SortPrefixes(prefixes)
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		ok := true
		for _, pfx := range prefixes {
			if r.LocRIB().Best(pfx) == nil {
				ok = false
				res.Violations = append(res.Violations, Violation{
					Property: p.Name(),
					Class:    ClassOperatorMistake,
					Node:     name,
					Prefix:   pfx,
					HasPfx:   true,
					Detail:   "no route to registered prefix (blackhole)",
				})
			}
		}
		v := Verdict{Node: name, Property: p.Name(), OK: ok}
		res.Verdicts = append(res.Verdicts, v)
		res.DisclosedBytes += v.size()
	}
	return res
}

//
// LoopFreedom: following best-route next hops never cycles.
//

// LoopFreedom checks that the forwarding graph induced by selected routes is
// acyclic for every prefix. Nodes disclose only a minimized projection of
// their state — (prefix, next-hop node) pairs — not attributes, policies or
// alternative routes. It is the one default property that needs a cross-node
// view, so it implements ProjectionProperty: federated campaigns assemble
// the projection from the per-domain summaries and evaluate it at the
// exploring domain instead of checking each domain's subgraph in isolation
// (which would miss loops that span domains).
type LoopFreedom struct{}

// Name implements Property.
func (LoopFreedom) Name() string { return "loop-freedom" }

// ForwardingEdge is one entry of the minimized forwarding projection a node
// discloses for loop checking: for a prefix, the neighbor its selected route
// forwards to ("" when the node originates the prefix). No attributes,
// preferences or alternative routes are included.
type ForwardingEdge struct {
	Node    string
	Prefix  bgp.Prefix
	NextHop string
}

// size is the edge's disclosure charge: node name, 5 prefix bytes, neighbor
// name (the same 5+len convention the centralized accounting uses).
func (e ForwardingEdge) size() int { return len(e.Node) + 5 + len(e.NextHop) }

// ProjectionProperty is a Property that cannot be evaluated per-node or
// per-domain: it needs a cross-node view assembled from minimized per-node
// projections. Federated campaigns route such properties through the
// summary exchange — every domain ships Projection of its own view, and the
// exploring domain evaluates CheckProjection over the union. Summaries
// carry a single projection, so a federated campaign checks at most one
// distinct projection-based property and rejects property sets with more.
type ProjectionProperty interface {
	Property
	// Projection extracts the minimized projection of the (possibly
	// domain-scoped) cluster view.
	Projection(c *cluster.Cluster) []ForwardingEdge
	// CheckProjection evaluates the property over an assembled projection
	// covering the given node set.
	CheckProjection(edges []ForwardingEdge, nodes []string) Result
}

// Projection implements ProjectionProperty.
func (LoopFreedom) Projection(c *cluster.Cluster) []ForwardingEdge {
	var edges []ForwardingEdge
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		for _, best := range r.LocRIB().BestRoutes() {
			e := ForwardingEdge{Node: name, Prefix: best.Prefix}
			if !best.Local {
				e.NextHop = best.Peer
			}
			edges = append(edges, e)
		}
	}
	return edges
}

// Check implements Property: project the whole cluster, then evaluate. The
// per-edge disclosure charge stays on this path (prefix + neighbor name per
// edge, as before); CheckProjection charges only its verdicts, since in a
// federated run the edges are charged by the summary bus instead.
func (p LoopFreedom) Check(c *cluster.Cluster) Result {
	edges := p.Projection(c)
	res := p.CheckProjection(edges, c.RouterNames())
	for _, e := range edges {
		res.DisclosedBytes += 5 + len(e.NextHop)
	}
	return res
}

// CheckProjection implements ProjectionProperty.
func (p LoopFreedom) CheckProjection(edges []ForwardingEdge, nodes []string) Result {
	res := Result{Property: p.Name()}
	// nextHop[node][prefix] = neighbor the node forwards to ("" = local).
	nextHop := make(map[string]map[bgp.Prefix]string)
	prefixSet := make(map[bgp.Prefix]bool)
	for _, e := range edges {
		proj := nextHop[e.Node]
		if proj == nil {
			proj = make(map[bgp.Prefix]string)
			nextHop[e.Node] = proj
		}
		proj[e.Prefix] = e.NextHop
		prefixSet[e.Prefix] = true
	}
	prefixes := make([]bgp.Prefix, 0, len(prefixSet))
	for pfx := range prefixSet {
		prefixes = append(prefixes, pfx)
	}
	bgp.SortPrefixes(prefixes)

	loopSeen := make(map[string]bool) // start+prefix keys already reported
	loopByNode := make(map[string]bool)
	for _, pfx := range prefixes {
		for _, start := range nodes {
			seen := map[string]bool{}
			cur := start
			for {
				if seen[cur] {
					// Cycle reached from start for this prefix.
					key := start + "|" + pfx.String()
					if !loopSeen[key] {
						loopSeen[key] = true
						loopByNode[start] = true
						res.Violations = append(res.Violations, Violation{
							Property: p.Name(),
							Class:    ClassPolicyConflict,
							Node:     start,
							Prefix:   pfx,
							HasPfx:   true,
							Detail:   "forwarding loop",
						})
					}
					break
				}
				seen[cur] = true
				next, ok := nextHop[cur][pfx]
				if !ok || next == "" {
					break // reached the origin or a node with no route
				}
				cur = next
			}
		}
	}
	for _, name := range nodes {
		v := Verdict{Node: name, Property: p.Name(), OK: !loopByNode[name]}
		res.Verdicts = append(res.Verdicts, v)
		res.DisclosedBytes += v.size()
	}
	return res
}

//
// Convergence: the system settles instead of oscillating (persistent route
// flapping is the signature of a policy conflict such as a dispute wheel).
//

// Convergence checks that no node changed its best route for any single
// prefix more than MaxChangesPerPrefix times.
type Convergence struct {
	MaxChangesPerPrefix int
}

// Name implements Property.
func (Convergence) Name() string { return "convergence" }

// Check implements Property. Each node inspects only its own event log and
// shares a verdict.
func (p Convergence) Check(c *cluster.Cluster) Result {
	limit := p.MaxChangesPerPrefix
	if limit <= 0 {
		limit = 8
	}
	res := Result{Property: p.Name()}
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		counts := make(map[bgp.Prefix]int)
		for _, ev := range r.Events() {
			counts[ev.Prefix]++
		}
		ok := true
		prefixes := make([]bgp.Prefix, 0, len(counts))
		for pfx := range counts {
			prefixes = append(prefixes, pfx)
		}
		bgp.SortPrefixes(prefixes)
		for _, pfx := range prefixes {
			if counts[pfx] > limit {
				ok = false
				res.Violations = append(res.Violations, Violation{
					Property: p.Name(),
					Class:    ClassPolicyConflict,
					Node:     name,
					Prefix:   pfx,
					HasPfx:   true,
					Detail:   fmt.Sprintf("best route changed %d times (limit %d): oscillation", counts[pfx], limit),
				})
			}
		}
		v := Verdict{Node: name, Property: p.Name(), OK: ok}
		res.Verdicts = append(res.Verdicts, v)
		res.DisclosedBytes += v.size()
	}
	return res
}

//
// NodeHealth: no node crashed or violates its local invariants (programming
// errors).
//

// NodeHealth checks per-node invariants and crash status.
type NodeHealth struct{}

// Name implements Property.
func (NodeHealth) Name() string { return "node-health" }

// Check implements Property.
func (p NodeHealth) Check(c *cluster.Cluster) Result {
	res := Result{Property: p.Name()}
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		violations := r.CheckInvariants()
		sort.Strings(violations)
		for _, v := range violations {
			res.Violations = append(res.Violations, Violation{
				Property: p.Name(),
				Class:    ClassProgrammingError,
				Node:     name,
				Detail:   v,
			})
		}
		verdict := Verdict{Node: name, Property: p.Name(), OK: len(violations) == 0}
		if !verdict.OK {
			verdict.Detail = fmt.Sprintf("%d invariant violations", len(violations))
		}
		res.Verdicts = append(res.Verdicts, verdict)
		res.DisclosedBytes += verdict.size()
	}
	return res
}
