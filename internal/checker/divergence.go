package checker

import (
	"fmt"
	"strings"

	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/node"
)

// Divergence classifications. Every flagged disagreement is replayed through
// the full decision-policy universe and classified by vote; the class leads
// the violation detail so reports and experiments can bucket findings
// without re-running the replay.
const (
	// DivergenceMajorityOutvoted marks a 2-vs-1 split: two of the three
	// conformant tie-break orders agree and one selects differently. The
	// outvoted implementation is not wrong — but a deployment mixing it with
	// either of the others forwards differently than the majority would.
	DivergenceMajorityOutvoted = "majority-outvoted"
	// DivergencePairwiseLegal marks a three-way split: every policy selects
	// a different best path, so any heterogeneous pairing of backends
	// diverges on this state and no majority exists to arbitrate.
	DivergencePairwiseLegal = "pairwise-legal"
)

// CrossImplDivergence is the differential conformance check for
// heterogeneous deployments: it flags nodes whose best-path selection for a
// prefix depends on which router implementation the node runs. For every
// node and prefix with more than one candidate route, the node's candidate
// set — state the node already owns, so nothing extra crosses a domain
// boundary — is replayed through the decision policy of each implementation
// deployed in the cluster. A selection that differs between deployed
// policies is a divergence: two conformant vendors would forward the same
// traffic differently from the same state, the cross-implementation hazard
// the paper's heterogeneity scenario is about.
//
// The oracle is three-way: whenever deployed policies disagree, the
// candidate set is additionally replayed through the full policy universe
// (rib.AllDecisionPolicies) and the finding is classified by vote —
// majority-outvoted when exactly one policy dissents (2-vs-1), or
// pairwise-legal when all three select differently. Out-of-process backends
// ("proc:bird", "proc:obgpd", ...) resolve to the decision policy of the
// implementation they wrap, and implementations sharing a policy are
// deduplicated, so a cluster mixing bird with proc:bird is — correctly —
// not heterogeneous at the decision level.
//
// In a deployment with a single decision policy there is nothing to
// compare, so the property is inert: every verdict passes and no violations
// are produced, keeping homogeneous campaign results byte-identical whether
// or not the property is configured. Set CompareAll to instead compare the
// full policy universe — useful for asking "would this deployment be safe
// to diversify?" before any second implementation is rolled out.
type CrossImplDivergence struct {
	// CompareAll compares the full decision-policy universe rather than
	// only the policies deployed in the checked cluster.
	CompareAll bool
}

// Name implements Property.
func (CrossImplDivergence) Name() string { return "cross-impl-divergence" }

// comparedPolicies resolves the set of decision policies to compare, in the
// canonical rib.AllDecisionPolicies order. Deployed implementations that
// share a tie-break order collapse to one entry.
func (p CrossImplDivergence) comparedPolicies(c *cluster.Cluster) []rib.DecisionPolicy {
	if p.CompareAll {
		return rib.AllDecisionPolicies
	}
	deployed := make(map[rib.DecisionPolicy]bool)
	for _, impl := range c.Implementations() {
		be, err := node.BackendFor(impl)
		if err != nil {
			continue
		}
		deployed[be.Decision] = true
	}
	out := make([]rib.DecisionPolicy, 0, len(deployed))
	for _, pol := range rib.AllDecisionPolicies {
		if deployed[pol] {
			out = append(out, pol)
		}
	}
	return out
}

// Check implements Property. Disclosure accounting matches the other
// per-node properties: each node shares one verdict; the candidate replay
// happens node-locally. Nodes, prefixes and policies are all iterated in
// sorted order, so the violation set is deterministic.
func (p CrossImplDivergence) Check(c *cluster.Cluster) Result {
	res := Result{Property: p.Name()}
	policies := p.comparedPolicies(c)
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		ok := true
		if len(policies) > 1 {
			lr := r.LocRIB()
			for _, pfx := range lr.Prefixes() {
				cands := lr.Candidates(pfx)
				if len(cands) < 2 {
					continue
				}
				first := rib.SelectBestWith(nil, cands, policies[0])
				diverged := false
				for _, pol := range policies[1:] {
					if !sameSelection(first, rib.SelectBestWith(nil, cands, pol)) {
						diverged = true
						break
					}
				}
				if !diverged {
					continue
				}
				ok = false
				res.Violations = append(res.Violations, Violation{
					Property: p.Name(),
					Class:    ClassImplDivergence,
					Node:     name,
					Prefix:   pfx,
					HasPfx:   true,
					Detail:   classifyDivergence(cands),
				})
			}
		}
		v := Verdict{Node: name, Property: p.Name(), OK: ok}
		if !ok {
			v.Detail = "implementation-dependent best path"
		}
		res.Verdicts = append(res.Verdicts, v)
		res.DisclosedBytes += v.size()
	}
	return res
}

// classifyDivergence replays a divergent candidate set through the full
// policy universe and renders the vote: the classification, then each
// policy's selection. Policies agreeing on a selection are grouped.
func classifyDivergence(cands []*rib.Route) string {
	type ballot struct {
		sel  *rib.Route
		pols []rib.DecisionPolicy
	}
	var ballots []ballot
	for _, pol := range rib.AllDecisionPolicies {
		sel := rib.SelectBestWith(nil, cands, pol)
		placed := false
		for i := range ballots {
			if sameSelection(ballots[i].sel, sel) {
				ballots[i].pols = append(ballots[i].pols, pol)
				placed = true
				break
			}
		}
		if !placed {
			ballots = append(ballots, ballot{sel: sel, pols: []rib.DecisionPolicy{pol}})
		}
	}
	switch len(ballots) {
	case 1:
		// The full universe agrees even though a subset of deployed policies
		// did not — impossible while deployed ⊆ universe, but render it
		// rather than misclassify if the universe ever narrows.
		return fmt.Sprintf("universe-agrees: all policies select via %s", selectionVia(ballots[0].sel))
	case len(rib.AllDecisionPolicies):
		parts := make([]string, len(ballots))
		for i, b := range ballots {
			parts[i] = fmt.Sprintf("%s selects via %s", b.pols[0], selectionVia(b.sel))
		}
		return DivergencePairwiseLegal + ": " + strings.Join(parts, ", ")
	default:
		// 2-vs-1: name the dissenter first, then the majority.
		loser, winner := ballots[0], ballots[1]
		if len(loser.pols) > len(winner.pols) {
			loser, winner = winner, loser
		}
		names := make([]string, len(winner.pols))
		for i, pol := range winner.pols {
			names[i] = pol.String()
		}
		return fmt.Sprintf("%s: %s alone selects via %s; %s select via %s",
			DivergenceMajorityOutvoted, loser.pols[0], selectionVia(loser.sel),
			strings.Join(names, " and "), selectionVia(winner.sel))
	}
}

// sameSelection compares two selections by source: the decision process
// picks among candidates keyed by (peer, local), so equal sources mean the
// same route object.
func sameSelection(a, b *rib.Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Peer == b.Peer && a.Local == b.Local
}

func selectionVia(r *rib.Route) string {
	switch {
	case r == nil:
		return "none"
	case r.Local:
		return "local"
	default:
		return r.Peer
	}
}
