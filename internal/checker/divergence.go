package checker

import (
	"fmt"
	"sort"

	"github.com/dice-project/dice/internal/bgp/rib"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/node"
)

// CrossImplDivergence is the differential conformance check for
// heterogeneous deployments: it flags nodes whose best-path selection for a
// prefix depends on which router implementation the node runs. For every
// node and prefix with more than one candidate route, the node's candidate
// set — state the node already owns, so nothing extra crosses a domain
// boundary — is replayed through the decision process of each
// implementation deployed in the cluster. A selection that differs between
// implementations is a divergence: two conformant vendors would forward the
// same traffic differently from the same state, the cross-implementation
// hazard the paper's heterogeneity scenario is about.
//
// In a homogeneous cluster there is nothing to compare, so the property is
// inert: every verdict passes and no violations are produced, keeping
// homogeneous campaign results byte-identical whether or not the property is
// configured. Set CompareAll to instead compare every registered backend —
// useful for asking "would this deployment be safe to diversify?" before
// any frr node is rolled out.
type CrossImplDivergence struct {
	// CompareAll compares the decision processes of every registered
	// backend rather than only those deployed in the checked cluster.
	CompareAll bool
}

// Name implements Property.
func (CrossImplDivergence) Name() string { return "cross-impl-divergence" }

// implPolicies resolves the (implementation, decision policy) pairs to
// compare, sorted by implementation name.
func (p CrossImplDivergence) implPolicies(c *cluster.Cluster) ([]string, []rib.DecisionPolicy) {
	var impls []string
	if p.CompareAll {
		impls = node.Implementations()
	} else {
		impls = c.Implementations()
	}
	sort.Strings(impls)
	names := make([]string, 0, len(impls))
	policies := make([]rib.DecisionPolicy, 0, len(impls))
	for _, impl := range impls {
		be, err := node.BackendFor(impl)
		if err != nil {
			continue
		}
		names = append(names, be.Name)
		policies = append(policies, be.Decision)
	}
	return names, policies
}

// Check implements Property. Disclosure accounting matches the other
// per-node properties: each node shares one verdict; the candidate replay
// happens node-locally.
func (p CrossImplDivergence) Check(c *cluster.Cluster) Result {
	res := Result{Property: p.Name()}
	impls, policies := p.implPolicies(c)
	for _, name := range c.RouterNames() {
		r := c.Router(name)
		ok := true
		if len(impls) > 1 {
			lr := r.LocRIB()
			for _, pfx := range lr.Prefixes() {
				cands := lr.Candidates(pfx)
				if len(cands) < 2 {
					continue
				}
				first := rib.SelectBestWith(nil, cands, policies[0])
				for i := 1; i < len(impls); i++ {
					other := rib.SelectBestWith(nil, cands, policies[i])
					if sameSelection(first, other) {
						continue
					}
					ok = false
					res.Violations = append(res.Violations, Violation{
						Property: p.Name(),
						Class:    ClassImplDivergence,
						Node:     name,
						Prefix:   pfx,
						HasPfx:   true,
						Detail: fmt.Sprintf("best path depends on implementation: %s selects via %s, %s selects via %s",
							impls[0], selectionVia(first), impls[i], selectionVia(other)),
					})
					break // one divergence per (node, prefix) is the finding
				}
			}
		}
		v := Verdict{Node: name, Property: p.Name(), OK: ok}
		if !ok {
			v.Detail = "implementation-dependent best path"
		}
		res.Verdicts = append(res.Verdicts, v)
		res.DisclosedBytes += v.size()
	}
	return res
}

// sameSelection compares two selections by source: the decision process
// picks among candidates keyed by (peer, local), so equal sources mean the
// same route object.
func sameSelection(a, b *rib.Route) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Peer == b.Peer && a.Local == b.Local
}

func selectionVia(r *rib.Route) string {
	switch {
	case r == nil:
		return "none"
	case r.Local:
		return "local"
	default:
		return r.Peer
	}
}
