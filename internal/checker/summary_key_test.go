package checker

import (
	"bytes"
	"encoding/gob"
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/topology"
)

func testSummary() Summary {
	p1 := bgp.MustParsePrefix("10.0.1.0/24")
	p2 := bgp.MustParsePrefix("10.0.2.0/24")
	return Summary{
		Domain:  "as7",
		Checked: 12,
		OK:      false,
		Digests: []ViolationDigest{
			{Property: "origin-validity", Class: ClassOperatorMistake, Node: "R3", Prefix: p1, HasPfx: true},
			{Property: "reachability", Class: ClassPolicyConflict, Node: "R1", Prefix: p2, HasPfx: true},
		},
		Edges: []ForwardingEdge{
			{Node: "R3", Prefix: p1, NextHop: "R1"},
			{Node: "R1", Prefix: p2, NextHop: ""},
		},
	}
}

// TestSummaryKeyCrossProcessParity is the satellite's headline assertion:
// encoding a summary, shipping it across a process boundary, and decoding it
// must not change its key, or campaign-wide dedupe would double-count
// detections that arrived over the distributed-execution wire.
func TestSummaryKeyCrossProcessParity(t *testing.T) {
	s := testSummary()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got Summary
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Key() != s.Key() {
		t.Fatalf("key changed across encode/decode:\n before %q\n after  %q", s.Key(), got.Key())
	}
}

// TestSummaryKeyOrderIndependent proves the key has no slice-order (and hence
// no map-iteration-order) dependence: the same content appended in a
// different order keys identically, while different content does not.
func TestSummaryKeyOrderIndependent(t *testing.T) {
	a := testSummary()
	b := testSummary()
	b.Digests[0], b.Digests[1] = b.Digests[1], b.Digests[0]
	b.Edges[0], b.Edges[1] = b.Edges[1], b.Edges[0]
	if a.Key() != b.Key() {
		t.Fatalf("reordered content changed the key:\n a %q\n b %q", a.Key(), b.Key())
	}
	c := testSummary()
	c.Digests[0].Node = "R9"
	if a.Key() == c.Key() {
		t.Fatalf("different content produced the same key %q", a.Key())
	}
	d := testSummary()
	d.Domain = "as8"
	if a.Key() == d.Key() {
		t.Fatalf("different domain produced the same key %q", a.Key())
	}
}

func TestDigestOfMatchesSummarize(t *testing.T) {
	v := Violation{
		Property: "origin-validity",
		Class:    ClassOperatorMistake,
		Node:     "R3",
		Prefix:   bgp.MustParsePrefix("10.0.1.0/24"),
		HasPfx:   true,
		Detail:   "local evidence that must not cross",
	}
	d := DigestOf(v)
	if d.Key() != v.Key() {
		t.Fatalf("digest key %q != violation key %q", d.Key(), v.Key())
	}
	if got := d.ViolationVia("remote agent summary"); got.Key() != v.Key() {
		t.Fatalf("reconstructed key %q != original %q", got.Key(), v.Key())
	} else if got.Detail == v.Detail {
		t.Fatalf("local detail leaked through the digest")
	}
}

func TestPropertiesByName(t *testing.T) {
	topo := topology.Line(3)
	defaults := DefaultProperties(topo)
	names := make([]string, len(defaults))
	for i, p := range defaults {
		names[i] = p.Name()
	}
	rebuilt, err := PropertiesByName(topo, names...)
	if err != nil {
		t.Fatalf("PropertiesByName: %v", err)
	}
	if len(rebuilt) != len(defaults) {
		t.Fatalf("got %d properties, want %d", len(rebuilt), len(defaults))
	}
	for i := range rebuilt {
		if rebuilt[i].Name() != defaults[i].Name() {
			t.Fatalf("property %d: got %s want %s", i, rebuilt[i].Name(), defaults[i].Name())
		}
	}
	if _, err := PropertiesByName(topo, "no-such-property"); err == nil {
		t.Fatalf("unknown property name accepted")
	}
}
