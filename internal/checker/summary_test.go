package checker

import (
	"testing"

	"github.com/dice-project/dice/internal/bgp"
)

func TestSummarizeAndDigestKeys(t *testing.T) {
	v := Violation{
		Property: "origin-validity",
		Class:    ClassOperatorMistake,
		Node:     "R1",
		Prefix:   bgp.MustParsePrefix("10.1.0.0/16"),
		HasPfx:   true,
		Detail:   "prefix owned by AS 65001 is originated by AS 65003",
	}
	rep := &Report{Results: []Result{{
		Property:   v.Property,
		Violations: []Violation{v},
		Verdicts:   []Verdict{{Node: "R1", Property: v.Property}, {Node: "R2", Property: v.Property, OK: true}},
	}}}
	edges := []ForwardingEdge{{Node: "R1", Prefix: v.Prefix, NextHop: "R2"}}
	s := Summarize("as65001", rep, edges)

	if s.OK || s.Checked != 2 || len(s.Digests) != 1 || len(s.Edges) != 1 {
		t.Fatalf("summary wrong: %+v", s)
	}
	d := s.Digests[0]
	// Key parity is what makes detections deduplicate across the local and
	// federated paths.
	if d.Key() != v.Key() {
		t.Errorf("digest key %q != violation key %q", d.Key(), v.Key())
	}
	back := d.Violation()
	if back.Key() != v.Key() || back.Class != v.Class {
		t.Errorf("reconstructed violation drifted: %+v", back)
	}
	// The free-form local detail must not survive the boundary.
	if back.Detail == v.Detail {
		t.Errorf("local detail crossed the boundary: %q", back.Detail)
	}

	// Size is the sum of its parts and grows with content.
	empty := Summary{Domain: "as65001"}
	if s.Size() <= empty.Size() {
		t.Errorf("size accounting flat: %d vs %d", s.Size(), empty.Size())
	}
	want := len("as65001") + 4 + 1 + (len(d.Property) + len(d.Node) + 5 + 2) + (len("R1") + 5 + len("R2"))
	if s.Size() != want {
		t.Errorf("Size = %d, want %d", s.Size(), want)
	}
}

func TestSummarizeHealthyReport(t *testing.T) {
	rep := &Report{Results: []Result{{Property: "node-health", Verdicts: []Verdict{{Node: "R1", OK: true}}}}}
	s := Summarize("d", rep, nil)
	if !s.OK || len(s.Digests) != 0 || s.Checked != 1 {
		t.Errorf("healthy summary wrong: %+v", s)
	}
}
