// Package dice implements the DiCE orchestrator — the paper's core
// contribution. An Engine runs the workflow of Figure 2 against a deployed
// (emulated) cluster:
//
//  1. choose an explorer node and trigger creation of a consistent shadow
//     snapshot made of lightweight per-node checkpoints plus channel state;
//  2. orchestrate exploration: subject the explorer node, in isolated clones
//     of the snapshot, to many possible inputs — grammar-fuzzed BGP UPDATEs
//     refined by concolic execution over the node's message handler, policy
//     interpreter and route-selection condition;
//  3. check properties of the explored system state through the narrow
//     information-sharing interface and report the faults found, classified
//     as operator mistakes, policy conflicts or programming errors.
//
// Exploration runs alongside the deployed cluster but never mutates it: every
// input is evaluated on a fresh clone restored from the snapshot.
package dice

import (
	"errors"
	"fmt"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/fuzz"
	"github.com/dice-project/dice/internal/topology"
)

// Options configure one exploration round.
type Options struct {
	// Explorer is the node whose behaviour is explored. Empty selects the
	// router with the highest degree (most sessions), which maximizes the
	// observable consequences of its actions.
	Explorer string
	// FromPeer is the neighbor whose inputs are explored at the explorer
	// node. Empty selects the explorer's first neighbor.
	FromPeer string
	// MaxInputs bounds the number of explored inputs (clone executions).
	// Zero selects 64.
	MaxInputs int
	// FuzzSeeds is the number of grammar-fuzzed seed messages. Zero selects 8.
	FuzzSeeds int
	// UseConcolic enables deriving new inputs by negating the branch
	// constraints recorded on each clone execution. Disabling it leaves pure
	// grammar-based fuzzing (the ablation in experiment E5).
	UseConcolic bool
	// Seed drives fuzzing and exploration determinism.
	Seed int64
	// Properties are the checked properties; nil selects
	// checker.DefaultProperties for the topology.
	Properties []checker.Property
	// ShadowMaxEvents bounds each clone run. Zero selects 20000.
	ShadowMaxEvents int
	// CodeFaults are installed on every shadow clone (mirroring the faulty
	// binary running on the deployed node).
	CodeFaults []faults.CodeFault
	// ClusterOptions are used when instantiating shadow clusters from the
	// snapshot; they should match the options the deployed cluster was built
	// with.
	ClusterOptions cluster.Options
}

func (o Options) withDefaults() Options {
	if o.MaxInputs <= 0 {
		o.MaxInputs = 64
	}
	if o.FuzzSeeds <= 0 {
		o.FuzzSeeds = 8
	}
	if o.ShadowMaxEvents <= 0 {
		o.ShadowMaxEvents = 20000
	}
	return o
}

// Detection records one property violation found during exploration.
type Detection struct {
	Violation checker.Violation
	Class     checker.FaultClass
	// InputIndex is the number of inputs that had been explored when the
	// violation was first observed (1-based).
	InputIndex int
	// Input is the input whose exploration surfaced the violation.
	Input *concolic.Input
	// Elapsed is the wall-clock time from the start of exploration to the
	// detection.
	Elapsed time.Duration
}

// Result summarizes one exploration round.
type Result struct {
	Explorer string
	FromPeer string

	SnapshotDuration time.Duration
	SnapshotBytes    int
	SnapshotNodes    int
	InFlightMessages int

	InputsExplored int
	Detections     []Detection

	// DisclosedBytes is the total number of bytes that crossed domain
	// boundaries through the narrow checking interface, across all explored
	// inputs; FullStateBytes is what a single full-state exchange would have
	// cost, for comparison.
	DisclosedBytes int
	FullStateBytes int

	Duration      time.Duration
	ExplorerStats concolic.Stats
}

// DetectionsByClass groups detections by fault class.
func (r *Result) DetectionsByClass() map[checker.FaultClass][]Detection {
	out := make(map[checker.FaultClass][]Detection)
	for _, d := range r.Detections {
		out[d.Class] = append(out[d.Class], d)
	}
	return out
}

// FirstDetection returns the earliest detection of the given class, or nil.
func (r *Result) FirstDetection(class checker.FaultClass) *Detection {
	for i := range r.Detections {
		if r.Detections[i].Class == class {
			return &r.Detections[i]
		}
	}
	return nil
}

// Detected reports whether any fault of the given class was found.
func (r *Result) Detected(class checker.FaultClass) bool {
	return r.FirstDetection(class) != nil
}

// Engine drives DiCE exploration against one deployed cluster.
type Engine struct {
	live *cluster.Cluster
	topo *topology.Topology
	opts Options
}

// New returns an Engine for the deployed cluster.
func New(live *cluster.Cluster, topo *topology.Topology, opts Options) *Engine {
	return &Engine{live: live, topo: topo, opts: opts.withDefaults()}
}

// chooseExplorer picks the router with the most neighbors (ties broken by
// name) when none was configured.
func (e *Engine) chooseExplorer() string {
	if e.opts.Explorer != "" {
		return e.opts.Explorer
	}
	best, bestDeg := "", -1
	for _, name := range e.topo.NodeNames() {
		deg := len(e.topo.NeighborsOf(name))
		if deg > bestDeg || (deg == bestDeg && name < best) {
			best, bestDeg = name, deg
		}
	}
	return best
}

func (e *Engine) choosePeer(explorer string) (string, error) {
	if e.opts.FromPeer != "" {
		return e.opts.FromPeer, nil
	}
	neighbors := e.topo.NeighborsOf(explorer)
	if len(neighbors) == 0 {
		return "", fmt.Errorf("dice: explorer %s has no neighbors", explorer)
	}
	return neighbors[0], nil
}

// wireUpdate wraps an UPDATE body with the BGP message header.
func wireUpdate(body []byte) []byte {
	total := bgp.HeaderLen + len(body)
	out := make([]byte, 0, total)
	for i := 0; i < bgp.MarkerLen; i++ {
		out = append(out, 0xff)
	}
	out = append(out, byte(total>>8), byte(total), byte(bgp.MsgUpdate))
	return append(out, body...)
}

// ErrNoTopology is returned when the engine is constructed without a topology.
var ErrNoTopology = errors.New("dice: engine requires a topology")

// Run performs one full exploration round (snapshot, explore, check) and
// returns its result. The deployed cluster is left untouched.
func (e *Engine) Run() (*Result, error) {
	if e.topo == nil {
		return nil, ErrNoTopology
	}
	start := time.Now()
	explorerNode := e.chooseExplorer()
	fromPeer, err := e.choosePeer(explorerNode)
	if err != nil {
		return nil, err
	}

	res := &Result{Explorer: explorerNode, FromPeer: fromPeer}

	// Step 1-2 of Figure 2: trigger creation of the consistent snapshot.
	snapStart := time.Now()
	snap := e.live.Snapshot()
	res.SnapshotDuration = time.Since(snapStart)
	res.SnapshotNodes = len(snap.Nodes)
	res.InFlightMessages = len(snap.InFlight)
	if data, err := checkpoint.Encode(snap); err == nil {
		res.SnapshotBytes = len(data)
	}

	props := e.opts.Properties
	if props == nil {
		props = checker.DefaultProperties(e.topo)
	}
	res.FullStateBytes = checker.FullStateDisclosure(e.live)

	// Seed inputs: grammar-fuzzed UPDATEs drawn from the topology's prefix
	// and AS pools, plus one "observed" message re-announcing a prefix the
	// peer legitimately originates.
	var pools fuzz.Options
	pools.Seed = e.opts.Seed
	for _, n := range e.topo.Nodes {
		pools.Prefixes = append(pools.Prefixes, n.Prefixes...)
		pools.ASNs = append(pools.ASNs, n.AS)
		pools.NextHops = append(pools.NextHops, uint32(n.RouterID))
	}
	gen := fuzz.New(pools)
	seeds := gen.Corpus(e.opts.FuzzSeeds)
	if peerNode := e.topo.Node(fromPeer); peerNode != nil && len(peerNode.Prefixes) > 0 {
		attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{peerNode.AS}, NextHop: uint32(peerNode.RouterID)}
		observed := &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{peerNode.Prefixes[0]}}
		seeds = append(seeds, concolic.NewInput("update", observed.EncodeBody()))
	}

	seenViolations := make(map[string]bool)
	inputIndex := 0

	// execute runs one input over a fresh clone of the snapshot and checks
	// the properties of the resulting system state.
	execute := func(in *concolic.Input, m *concolic.Machine) error {
		inputIndex++
		shadow, err := cluster.FromSnapshot(e.topo, snap, e.opts.ClusterOptions)
		if err != nil {
			return fmt.Errorf("dice: clone snapshot: %w", err)
		}
		faults.InstallCodeFaults(shadow.Routers, e.opts.CodeFaults...)
		shadow.Router(explorerNode).ExploreNextUpdate(m, fromPeer)
		shadow.InjectRaw(fromPeer, explorerNode, wireUpdate(in.Region("update")))
		shadow.Net.RunQuiescent(e.opts.ShadowMaxEvents)

		report := checker.CheckAll(shadow, props)
		res.DisclosedBytes += report.DisclosedBytes()

		violations := report.Violations()
		newFinding := false
		for _, v := range violations {
			if seenViolations[v.Key()] {
				continue
			}
			seenViolations[v.Key()] = true
			newFinding = true
			res.Detections = append(res.Detections, Detection{
				Violation:  v,
				Class:      v.Class,
				InputIndex: inputIndex,
				Input:      in.Clone(),
				Elapsed:    time.Since(start),
			})
		}
		if newFinding {
			return fmt.Errorf("dice: %d property violations", len(violations))
		}
		return nil
	}

	if e.opts.UseConcolic {
		explorer := concolic.NewExplorer(execute, concolic.ExplorerOptions{
			MaxExecutions: e.opts.MaxInputs,
			Seed:          e.opts.Seed,
		})
		for _, s := range seeds {
			explorer.AddSeed(s)
		}
		if _, err := explorer.Run(); err != nil {
			return nil, err
		}
		res.ExplorerStats = explorer.Stats()
		res.InputsExplored = explorer.Stats().Executions
	} else {
		// Fuzzing-only ablation: run each seed once, without constraint
		// negation.
		for len(seeds) < e.opts.MaxInputs {
			seeds = append(seeds, gen.Corpus(1)...)
		}
		for i, s := range seeds {
			if i >= e.opts.MaxInputs {
				break
			}
			m := concolic.NewMachine(s.Clone(), concolic.MachineOptions{})
			_ = execute(m.Input(), m)
			res.InputsExplored++
		}
	}

	res.Duration = time.Since(start)
	return res, nil
}
