// Package dice implements the DiCE orchestrator — the paper's core
// contribution. A Campaign runs the workflow of Figure 2 against a deployed
// (emulated) cluster, continuously and in parallel:
//
//  1. a Strategy plans exploration units — (explorer, peer) pairs whose
//     behaviour is explored — and the campaign triggers creation of one
//     consistent shadow snapshot made of lightweight per-node checkpoints
//     plus channel state;
//  2. a worker pool orchestrates exploration: each unit subjects its
//     explorer node, in isolated clones of the snapshot, to many possible
//     inputs — grammar-fuzzed BGP UPDATEs refined by concolic execution over
//     the node's message handler, policy interpreter and route-selection
//     condition. Clone executions are embarrassingly parallel: every worker
//     restores its own clone;
//  3. properties of the explored system state are checked through the narrow
//     information-sharing interface, and detections stream out on the
//     campaign's event channel as they are found, classified as operator
//     mistakes, policy conflicts or programming errors.
//
// Exploration runs alongside the deployed cluster but never mutates it: every
// input is evaluated on a fresh clone restored from the snapshot.
//
// The Engine type is the legacy single-round API, kept as a thin shim over a
// single-unit campaign.
package dice

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/topology"
)

// Options configure one exploration round of the legacy Engine API. New code
// should construct a Campaign with functional options instead.
type Options struct {
	// Explorer is the node whose behaviour is explored. Empty selects the
	// router with the highest degree (most sessions), which maximizes the
	// observable consequences of its actions.
	Explorer string
	// FromPeer is the neighbor whose inputs are explored at the explorer
	// node. Empty selects the explorer's first neighbor.
	FromPeer string
	// MaxInputs bounds the number of explored inputs (clone executions).
	// Zero selects 64.
	MaxInputs int
	// FuzzSeeds is the number of grammar-fuzzed seed messages. Zero selects 8.
	FuzzSeeds int
	// UseConcolic enables deriving new inputs by negating the branch
	// constraints recorded on each clone execution. Disabling it leaves pure
	// grammar-based fuzzing (the ablation in experiment E5).
	UseConcolic bool
	// Seed drives fuzzing and exploration determinism.
	Seed int64
	// Properties are the checked properties; nil selects
	// checker.DefaultProperties for the topology.
	Properties []checker.Property
	// ShadowMaxEvents bounds each clone run. Zero selects 20000.
	ShadowMaxEvents int
	// CodeFaults are installed on every shadow clone (mirroring the faulty
	// binary running on the deployed node).
	CodeFaults []faults.CodeFault
	// ClusterOptions are used when instantiating shadow clusters from the
	// snapshot; they should match the options the deployed cluster was built
	// with.
	ClusterOptions cluster.Options
}

func (o Options) withDefaults() Options {
	if o.MaxInputs <= 0 {
		o.MaxInputs = 64
	}
	if o.FuzzSeeds <= 0 {
		o.FuzzSeeds = 8
	}
	if o.ShadowMaxEvents <= 0 {
		o.ShadowMaxEvents = 20000
	}
	return o
}

// Detection records one property violation found during exploration.
type Detection struct {
	Violation checker.Violation
	Class     checker.FaultClass
	// InputIndex is the number of inputs that had been explored within the
	// unit when the violation was first observed (1-based).
	InputIndex int
	// Input is the input whose exploration surfaced the violation.
	Input *concolic.Input
	// Elapsed is the wall-clock time from the start of the campaign to the
	// detection.
	Elapsed time.Duration
}

// Result summarizes one exploration unit (one explorer/peer pair). The
// legacy Engine API returns a single Result; a Campaign returns one per unit
// inside its CampaignResult.
type Result struct {
	Explorer string
	FromPeer string
	// Domain is the administrative domain that ran the unit (federated
	// campaigns only; empty otherwise).
	Domain string

	SnapshotDuration time.Duration
	SnapshotBytes    int
	SnapshotNodes    int
	InFlightMessages int

	InputsExplored int
	Detections     []Detection

	// DisclosedBytes is the total number of bytes that crossed domain
	// boundaries through the narrow checking interface, across all explored
	// inputs; FullStateBytes is what a single full-state exchange would have
	// cost, for comparison. In a federated campaign this counts the
	// checker.Summary traffic published on the federation bus instead of
	// per-verdict accounting.
	DisclosedBytes int
	FullStateBytes int

	Duration      time.Duration
	ExplorerStats concolic.Stats
}

// DetectionsByClass groups detections by fault class.
func (r *Result) DetectionsByClass() map[checker.FaultClass][]Detection {
	out := make(map[checker.FaultClass][]Detection)
	for _, d := range r.Detections {
		out[d.Class] = append(out[d.Class], d)
	}
	return out
}

// FirstDetection returns the earliest detection of the given class, or nil.
func (r *Result) FirstDetection(class checker.FaultClass) *Detection {
	for i := range r.Detections {
		if r.Detections[i].Class == class {
			return &r.Detections[i]
		}
	}
	return nil
}

// Detected reports whether any fault of the given class was found.
func (r *Result) Detected(class checker.FaultClass) bool {
	return r.FirstDetection(class) != nil
}

// Engine drives one DiCE exploration round against a deployed cluster. It is
// the legacy API, implemented as a shim over a single-unit Campaign; new code
// should use NewCampaign directly.
type Engine struct {
	live *cluster.Cluster
	topo *topology.Topology
	opts Options
}

// New returns an Engine for the deployed cluster.
func New(live *cluster.Cluster, topo *topology.Topology, opts Options) *Engine {
	return &Engine{live: live, topo: topo, opts: opts.withDefaults()}
}

// chooseExplorer picks the router with the most neighbors (equal-degree ties
// broken by lexicographically smallest name) when none was configured.
func (e *Engine) chooseExplorer() string {
	if e.opts.Explorer != "" {
		return e.opts.Explorer
	}
	return highestDegreeNode(e.topo)
}

// choosePeer keeps the legacy peer default: the explorer's first neighbor in
// topology link order (strategies sort peers lexicographically instead).
func (e *Engine) choosePeer(explorer string) (string, error) {
	if e.opts.FromPeer != "" {
		return e.opts.FromPeer, nil
	}
	neighbors := e.topo.NeighborsOf(explorer)
	if len(neighbors) == 0 {
		return "", fmt.Errorf("dice: explorer %s has no neighbors", explorer)
	}
	return neighbors[0], nil
}

// wireUpdate wraps an UPDATE body with the BGP message header.
func wireUpdate(body []byte) []byte { return bgp.FrameUpdate(body) }

// ErrNoTopology is returned when the engine is constructed without a topology.
var ErrNoTopology = errors.New("dice: engine requires a topology")

// Run performs one full exploration round (snapshot, explore, check) and
// returns its result. The deployed cluster is left untouched.
func (e *Engine) Run() (*Result, error) {
	if e.topo == nil {
		return nil, ErrNoTopology
	}
	explorer := e.chooseExplorer()
	fromPeer, err := e.choosePeer(explorer)
	if err != nil {
		return nil, err
	}
	copts := []CampaignOption{
		WithUnits(Unit{
			Explorer:  explorer,
			FromPeer:  fromPeer,
			MaxInputs: e.opts.MaxInputs,
			FuzzSeeds: e.opts.FuzzSeeds,
			Seed:      e.opts.Seed,
		}),
		WithWorkers(1),
		WithSeed(e.opts.Seed),
		WithConcolic(e.opts.UseConcolic),
		WithCodeFaults(e.opts.CodeFaults...),
		WithClusterOptions(e.opts.ClusterOptions),
		WithShadowMaxEvents(e.opts.ShadowMaxEvents),
	}
	// Preserve the legacy nil-vs-empty distinction: nil selects the default
	// property set, an explicitly empty slice disables checking.
	if e.opts.Properties != nil {
		copts = append(copts, WithProperties(e.opts.Properties...))
	}
	campaign := NewCampaign(e.live, e.topo, copts...)
	cres, err := campaign.Run(context.Background())
	if err != nil {
		return nil, err
	}
	res := cres.Units[0]
	// The legacy Result reports the whole round's wall clock, snapshot
	// included.
	res.Duration = cres.Duration
	return res, nil
}
