package dice

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/topology"
)

// detectionFingerprint canonicalizes detections as key@inputIndex pairs.
func detectionFingerprint(ds []Detection) string {
	keys := make([]string, 0, len(ds))
	for _, d := range ds {
		keys = append(keys, fmt.Sprintf("%s@%d", d.Violation.Key(), d.InputIndex))
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// TestFederatedMatchesCentralizedHijack is the headline equivalence: on the
// hijack scenario with identical seeds, a federated campaign (per-AS
// domains, summaries over the bus) must detect exactly the violations the
// omniscient centralized campaign detects, at the same input indices —
// federation changes who may see what, not what is found.
func TestFederatedMatchesCentralizedHijack(t *testing.T) {
	run := func(opts ...CampaignOption) *CampaignResult {
		topo, live, copts := hijackedLine(t, 4)
		base := []CampaignOption{
			WithBudget(Budget{TotalInputs: 24}),
			WithFuzzSeeds(4),
			WithSeed(3),
			WithClusterOptions(copts),
			WithWorkers(2),
		}
		res, err := NewCampaign(live, topo, append(base, opts...)...).Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	centralized := run(WithStrategy(AllNodesStrategy{}))
	federated := run(WithFederation(federation.PartitionByAS(topology.Line(4))))

	if len(centralized.Detections) == 0 {
		t.Fatal("centralized campaign found nothing; equivalence is vacuous")
	}
	if !federated.Federated || centralized.Federated {
		t.Fatalf("Federated flags wrong: centralized=%v federated=%v", centralized.Federated, federated.Federated)
	}
	if federated.InputsExplored != centralized.InputsExplored {
		t.Errorf("inputs explored differ: federated=%d centralized=%d", federated.InputsExplored, centralized.InputsExplored)
	}
	if got, want := detectionFingerprint(federated.Detections), detectionFingerprint(centralized.Detections); got != want {
		t.Errorf("federated detections differ from centralized:\n  federated   %s\n  centralized %s", got, want)
	}
	if len(federated.Domains) != 4 {
		t.Fatalf("per-domain breakdown has %d entries, want 4: %+v", len(federated.Domains), federated.Domains)
	}
	if federated.Disclosed.Summaries == 0 || federated.Disclosed.Bytes == 0 {
		t.Errorf("federated campaign disclosed nothing: %+v", federated.Disclosed)
	}
	// The breakdown must tie out against the campaign totals.
	units, inputs, found := 0, 0, 0
	for _, d := range federated.Domains {
		units += d.Units
		inputs += d.InputsExplored
		found += d.Detections
	}
	if units != len(federated.Units) || inputs != federated.InputsExplored || found != len(federated.Detections) {
		t.Errorf("domain breakdown inconsistent: units %d/%d inputs %d/%d detections %d/%d",
			units, len(federated.Units), inputs, federated.InputsExplored, found, len(federated.Detections))
	}
	// Per explored input, the summary traffic must undercut what one
	// full-state exchange would cost — the paper's disclosure claim.
	if federated.InputsExplored == 0 {
		t.Fatal("federated campaign explored nothing")
	}
	if perInput := federated.Disclosed.Bytes / federated.InputsExplored; perInput >= federated.FullStateBytes {
		t.Errorf("summaries per input (%d bytes) should cost less than a full-state exchange (%d bytes)",
			perInput, federated.FullStateBytes)
	}
}

// TestFederatedDeterministicInWorkers mirrors the centralized determinism
// guarantee for federated campaigns.
func TestFederatedDeterministicInWorkers(t *testing.T) {
	run := func(workers int) *CampaignResult {
		topo, live, copts := hijackedLine(t, 4)
		res, err := NewCampaign(live, topo,
			WithFederation(federation.PartitionByAS(topo)),
			WithBudget(Budget{TotalInputs: 16}),
			WithFuzzSeeds(4),
			WithSeed(3),
			WithClusterOptions(copts),
			WithWorkers(workers)).Run(context.Background())
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return res
	}
	serial, parallel := run(1), run(4)
	if len(serial.Detections) == 0 {
		t.Fatal("federated campaign found nothing")
	}
	if detectionFingerprint(serial.Detections) != detectionFingerprint(parallel.Detections) {
		t.Errorf("federated detections differ across worker counts")
	}
	if serial.Disclosed != parallel.Disclosed {
		t.Errorf("disclosure accounting differs across worker counts: %+v vs %+v", serial.Disclosed, parallel.Disclosed)
	}
}

// allowedSummaryPkgs are the packages whose types may appear anywhere inside
// checker.Summary. Anything from bird, policy, rib or netem inside the
// summary type graph would mean node-local state can cross the bus.
var allowedSummaryPkgs = map[string]bool{
	"": true, // builtins
	"github.com/dice-project/dice/internal/checker": true,
	"github.com/dice-project/dice/internal/bgp":     true,
}

// walkTypes recursively collects every named type reachable from t.
func walkTypes(t reflect.Type, seen map[reflect.Type]bool) {
	if seen[t] {
		return
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Pointer, reflect.Slice, reflect.Array, reflect.Map, reflect.Chan:
		walkTypes(t.Elem(), seen)
		if t.Kind() == reflect.Map {
			walkTypes(t.Key(), seen)
		}
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			walkTypes(t.Field(i).Type, seen)
		}
	}
}

// TestFederationPrivacy proves the two halves of the privacy claim on a real
// federated run over a policied deployment: (1) nothing that crosses the bus
// references router configurations, policies or raw route attributes —
// structurally (type graph) and on the wire (serialized envelopes contain no
// private config content); (2) the campaign's Disclosed accounting equals
// the bytes actually exchanged on the bus.
func TestFederationPrivacy(t *testing.T) {
	// Structural half: the summary type graph stays within checker/bgp.
	seen := map[reflect.Type]bool{}
	walkTypes(reflect.TypeOf(checker.Summary{}), seen)
	for typ := range seen {
		if !allowedSummaryPkgs[typ.PkgPath()] {
			t.Errorf("checker.Summary reaches type %v from package %q — private state could cross the bus", typ, typ.PkgPath())
		}
	}

	// Behavioral half: run a federated campaign over a Gao–Rexford-policied
	// deployment (so the configs hold genuinely private policy content) with
	// a hijack planted, and audit the bus.
	topo := topology.Line(3)
	victim := topo.Nodes[0].Prefixes[0]
	copts := cluster.Options{
		Seed:           1,
		GaoRexford:     true,
		ConfigOverride: faults.ApplyConfigFaults(faults.MisOrigination{Router: "R3", Prefix: victim}),
	}
	live := cluster.MustBuild(topo, copts)
	live.Converge()

	campaign := NewCampaign(live, topo,
		WithFederation(federation.PartitionByAS(topo)),
		WithStrategy(AllNodesStrategy{}),
		WithBudget(Budget{TotalInputs: 12}),
		WithSeed(1),
		WithClusterOptions(copts),
		WithWorkers(2))
	campaign.testRetainBusLog = true
	res, err := campaign.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Detections) == 0 {
		t.Fatal("campaign found nothing; privacy audit is vacuous")
	}

	// Private content that must never appear on the wire: every policy name
	// and import/export binding of every router config.
	var forbidden []string
	for _, name := range live.RouterNames() {
		cfg := live.Router(name).Config()
		for pname := range cfg.Policies {
			forbidden = append(forbidden, pname)
		}
		for _, n := range cfg.Neighbors {
			if n.Import != "" {
				forbidden = append(forbidden, n.Import)
			}
			if n.Export != "" {
				forbidden = append(forbidden, n.Export)
			}
		}
	}

	log := campaign.fed.bus.Log()
	if len(log) == 0 {
		t.Fatal("federated campaign exchanged no summaries")
	}
	totalBytes, totalSize := 0, 0
	for _, env := range log {
		totalBytes += env.Bytes
		totalSize += env.Summary.Size()
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(env.Summary); err != nil {
			t.Fatalf("serializing bus envelope %d: %v", env.Seq, err)
		}
		wire := buf.Bytes()
		for _, secret := range forbidden {
			if bytes.Contains(wire, []byte(secret)) {
				t.Fatalf("envelope %d (%s -> %s) leaks private config content %q", env.Seq, env.From, env.To, secret)
			}
		}
	}

	// Disclosure accounting: charged bytes == serialized sizes == campaign
	// totals, and the per-unit aggregation agrees with the bus.
	if totalBytes != totalSize {
		t.Errorf("bus charged %d bytes but summaries serialize to %d", totalBytes, totalSize)
	}
	if res.Disclosed.Bytes != totalBytes || res.Disclosed.Summaries != len(log) {
		t.Errorf("Disclosed %+v does not match bus traffic (%d summaries, %d bytes)",
			res.Disclosed, len(log), totalBytes)
	}
	if res.DisclosedBytes != totalBytes {
		t.Errorf("per-unit DisclosedBytes sum %d != bus bytes %d", res.DisclosedBytes, totalBytes)
	}
}

// TestFederationLiteralPartitionAndPinnedUnits covers the WithUnits path
// with a partition built as a plain struct literal (never through
// NewPartition): the campaign must adopt a validated partition rather than
// trusting the caller's unindexed value.
func TestFederationLiteralPartitionAndPinnedUnits(t *testing.T) {
	topo, live, copts := hijackedLine(t, 3)
	literal := &federation.Partition{Domains: []federation.Domain{
		{Name: "edge", Nodes: []string{"R1", "R2"}},
		{Name: "core", Nodes: []string{"R3"}},
	}}
	res, err := NewCampaign(live, topo,
		WithFederation(literal),
		WithUnits(Unit{Explorer: "R2", FromPeer: "R3", MaxInputs: 8, FuzzSeeds: 4}),
		WithSeed(1),
		WithClusterOptions(copts)).Run(context.Background())
	if err != nil {
		t.Fatalf("Run with literal partition: %v", err)
	}
	if len(res.Units) != 1 || res.Units[0].Domain != "edge" {
		t.Fatalf("pinned unit not assigned to its domain: %+v", res.Units[0])
	}
	if !res.Detected(checker.ClassOperatorMistake) {
		t.Errorf("federated pinned-unit campaign missed the hijack")
	}

	// A partition that does not fit the topology still fails cleanly.
	bad := &federation.Partition{Domains: []federation.Domain{{Name: "a", Nodes: []string{"R1"}}}}
	topo2, live2, copts2 := hijackedLine(t, 3)
	if _, err := NewCampaign(live2, topo2,
		WithFederation(bad),
		WithClusterOptions(copts2)).Run(context.Background()); err == nil {
		t.Errorf("partition not covering the topology must fail Run")
	}
}

// secondProjection is a second distinct ProjectionProperty: federated
// campaigns carry one projection per summary, so configuring it next to
// LoopFreedom must be rejected instead of silently mis-evaluated.
type secondProjection struct{ checker.LoopFreedom }

func (secondProjection) Name() string { return "second-projection" }

func TestFederatedRejectsMultipleProjectionProperties(t *testing.T) {
	topo, live, copts := hijackedLine(t, 3)
	_, err := NewCampaign(live, topo,
		WithFederation(federation.PartitionByAS(topo)),
		WithProperties(checker.LoopFreedom{}, secondProjection{}),
		WithClusterOptions(copts)).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "projection-based") {
		t.Errorf("two distinct projection properties accepted: %v", err)
	}
	// Duplicate instances of the same property share the projection and are
	// fine.
	topo2, live2, copts2 := hijackedLine(t, 3)
	if _, err := NewCampaign(live2, topo2,
		WithFederation(federation.PartitionByAS(topo2)),
		WithProperties(checker.LoopFreedom{}, checker.LoopFreedom{}),
		WithUnits(Unit{Explorer: "R2", MaxInputs: 2}),
		WithClusterOptions(copts2)).Run(context.Background()); err != nil {
		t.Errorf("duplicate projection property instances rejected: %v", err)
	}
}

// TestCampaignCloneLeaseNeverLeaks fault-injects failures into the clone
// path and cancels campaigns mid-flight, then asserts the pool's books
// balance: every leased clone was released, nothing outstanding.
func TestCampaignCloneLeaseNeverLeaks(t *testing.T) {
	t.Run("injected-clone-faults", func(t *testing.T) {
		topo, live, copts := hijackedLine(t, 3)
		campaign := NewCampaign(live, topo,
			WithStrategy(AllNodesStrategy{}),
			WithBudget(Budget{TotalInputs: 18}),
			WithSeed(1),
			WithClusterOptions(copts),
			WithWorkers(2))
		boom := errors.New("injected clone fault")
		var calls atomic.Int64
		campaign.testCloneFault = func() error {
			// Workers call this concurrently; the counter must not race.
			if calls.Add(1)%3 == 0 {
				return boom
			}
			return nil
		}
		res, err := campaign.Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.InputsExplored == 0 {
			t.Fatal("campaign explored nothing around the injected faults")
		}
		if out := campaign.clones.Outstanding(); out != 0 {
			t.Errorf("%d pooled clones leaked after injected mid-clone failures", out)
		}
		if s := campaign.clones.Stats(); s.Leases != s.Releases {
			t.Errorf("pool stats unbalanced: %+v", s)
		}
	})

	t.Run("cancel-mid-campaign", func(t *testing.T) {
		for _, pooled := range []bool{true, false} {
			t.Run(fmt.Sprintf("pooled=%v", pooled), func(t *testing.T) {
				topo, live, copts := hijackedLine(t, 3)
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				campaign := NewCampaign(live, topo,
					WithStrategy(AllNodesStrategy{}),
					WithBudget(Budget{TotalInputs: 100000}),
					WithSeed(1),
					WithClusterOptions(copts),
					WithPooledClones(pooled),
					WithWorkers(2),
					WithOnEvent(func(ev Event) {
						if ev.Kind == EventDetection {
							cancel()
						}
					}))
				if _, err := campaign.Run(ctx); !errors.Is(err, context.Canceled) {
					t.Fatalf("Run = %v, want context.Canceled", err)
				}
				var stats cluster.PoolStats
				if pooled {
					if out := campaign.clones.Outstanding(); out != 0 {
						t.Errorf("%d pooled clones leaked after cancellation", out)
					}
					stats = campaign.clones.Stats()
				} else {
					campaign.coldMu.Lock()
					stats = campaign.coldStats
					campaign.coldMu.Unlock()
				}
				if stats.Leases != stats.Releases {
					t.Errorf("clone stats unbalanced after cancellation: %+v", stats)
				}
			})
		}
	})
}
