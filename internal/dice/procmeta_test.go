package dice

import (
	"context"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/node/procdriver"
	"github.com/dice-project/dice/internal/topology"
)

// TestMain lets this test binary double as the procdriver's child process:
// campaigns over proc: topologies re-exec the binary, and MaybeRunChild
// diverts those re-executions into the backend server before the test
// framework spins up.
func TestMain(m *testing.M) {
	procdriver.MaybeRunChild()
	os.Exit(m.Run())
}

// requireProcSpawn skips when the sandbox cannot fork/exec and guarantees the
// subprocess fleet is torn down (and fully reaped) when the test ends.
func requireProcSpawn(t *testing.T) {
	t.Helper()
	if err := procdriver.SpawnCheck(); err != nil {
		t.Skipf("environment cannot spawn backend subprocesses: %v", err)
	}
	t.Cleanup(func() {
		procdriver.KillAll()
		if n := procdriver.LiveChildren(); n != 0 {
			t.Errorf("%d backend subprocesses leaked", n)
		}
	})
}

// procHijackedLine is hijackedLine with every router re-tagged onto impl.
func procHijackedLine(t *testing.T, n int, impl string) (*topology.Topology, *cluster.Cluster, cluster.Options) {
	t.Helper()
	topo := topology.Line(n)
	topo.SetImpl(impl, topo.NodeNames()...)
	victim := topo.Nodes[0].Prefixes[0]
	last := topo.Nodes[n-1].Name
	opts := cluster.Options{Seed: 1, ConfigOverride: faults.ApplyConfigFaults(faults.MisOrigination{Router: last, Prefix: victim})}
	c := cluster.MustBuild(topo, opts)
	c.Converge()
	return topo, c, opts
}

// procCampaign runs the standard seeded unit over the deployment.
func procCampaign(t *testing.T, impl string, workers int) *CampaignResult {
	t.Helper()
	topo, live, copts := procHijackedLine(t, 3, impl)
	res, err := NewCampaign(live, topo,
		WithUnits(Unit{Explorer: "R2", FromPeer: "R1"}),
		WithBudget(Budget{TotalInputs: 6}),
		WithFuzzSeeds(2),
		WithSeed(7),
		WithWorkers(workers),
		WithClusterOptions(copts),
	).Run(context.Background())
	if err != nil {
		t.Fatalf("%s campaign: %v", impl, err)
	}
	return res
}

// TestMetamorphicProcEqualsInProcess is the process-isolation leg of the
// metamorphic suite: for every wrapped speaker, the same seeded campaign run
// over proc: subprocess nodes must produce detection fingerprints
// byte-identical to the in-process run — serially and with a parallel worker
// pool, whose scheduling must not be observable in the results.
func TestMetamorphicProcEqualsInProcess(t *testing.T) {
	requireProcSpawn(t)
	for _, impl := range procdriver.Wrapped() {
		t.Run(impl, func(t *testing.T) {
			inproc := procCampaign(t, impl, 1)
			if len(inproc.Detections) == 0 {
				t.Fatalf("in-process %s campaign found nothing; equivalence is vacuous", impl)
			}
			want := detectionFingerprint(inproc.Detections)

			serial := procCampaign(t, "proc:"+impl, 1)
			if got := detectionFingerprint(serial.Detections); got != want {
				t.Errorf("proc:%s serial detections differ from in-process:\n  proc      %s\n  in-process %s", impl, got, want)
			}
			parallel := procCampaign(t, "proc:"+impl, 4)
			if got := detectionFingerprint(parallel.Detections); got != want {
				t.Errorf("proc:%s parallel detections differ from in-process:\n  proc      %s\n  in-process %s", impl, got, want)
			}
			if serial.InputsExplored != inproc.InputsExplored {
				t.Errorf("proc:%s explored %d inputs, in-process %d", impl, serial.InputsExplored, inproc.InputsExplored)
			}
		})
	}
}

// TestMetamorphicProcCrashMidUnit SIGKILLs the explorer's subprocess at the
// start of every clone execution: the campaign must surface a unit error
// (never hang), the clone pool must balance its lease ledger and discard the
// dead clone, and no subprocess or goroutine may outlive the run.
func TestMetamorphicProcCrashMidUnit(t *testing.T) {
	requireProcSpawn(t)
	goroutinesBefore := runtime.NumGoroutine()

	topo, live, copts := procHijackedLine(t, 3, "proc:obgpd")
	campaign := NewCampaign(live, topo,
		WithUnits(Unit{Explorer: "R2", FromPeer: "R1", MaxInputs: 4, FuzzSeeds: 2, Seed: 1}),
		WithSeed(1),
		WithWorkers(1),
		WithClusterOptions(copts),
		WithClonePrelude(func(shadow *cluster.Cluster) {
			if !procdriver.Kill(shadow.Router("R2")) {
				t.Errorf("shadow explorer is not a procdriver router")
			}
		}),
	)
	done := make(chan error, 1)
	go func() {
		_, err := campaign.Run(context.Background())
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("campaign hung after subprocess crash")
	}
	if err == nil || !strings.Contains(err.Error(), "clone execute") {
		t.Fatalf("Run = %v, want a clone-execute unit error", err)
	}

	if campaign.clones == nil {
		t.Fatal("pooled campaign has no clone pool")
	}
	s := campaign.clones.Stats()
	if s.Leases != s.Releases {
		t.Errorf("lease ledger unbalanced after crash: %+v", s)
	}
	if s.Discards == 0 {
		t.Errorf("dead clone was re-pooled instead of discarded: %+v", s)
	}
	if out := campaign.clones.Outstanding(); out != 0 {
		t.Errorf("crash leaked %d outstanding clones", out)
	}

	// The live deployment is untouched; only shadow clones were killed.
	if err := live.Unhealthy(); err != nil {
		t.Errorf("live deployment unhealthy after shadow crash: %v", err)
	}

	procdriver.KillAll()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+3 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > goroutinesBefore+3 {
		t.Errorf("goroutines leaked across crash campaign: %d before, %d after", goroutinesBefore, now)
	}
}
