package dice

import (
	"context"
	"sync/atomic"
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/topology"
)

// TestCampaignFromSnapshotStore pins the campaign-from-epoch entry point:
// a campaign over a pre-taken store (and a nil live cluster) explores the
// same state and finds the same detections as one that snapshots the live
// cluster itself, in both pooled and cold clone modes.
func TestCampaignFromSnapshotStore(t *testing.T) {
	topo := topology.Line(3)
	victim := topo.Nodes[0].Prefixes[0]
	opts := cluster.Options{Seed: 1, ConfigOverride: faults.ApplyConfigFaults(
		faults.MisOrigination{Router: "R3", Prefix: victim})}
	live := cluster.MustBuild(topo, opts)
	live.Converge()

	unit := Unit{Explorer: "R2", FromPeer: "R1", MaxInputs: 6, FuzzSeeds: 2, Seed: 1}
	run := func(liveArg *cluster.Cluster, copts ...CampaignOption) *CampaignResult {
		t.Helper()
		all := append([]CampaignOption{WithUnits(unit), WithSeed(1), WithWorkers(1), WithClusterOptions(opts)}, copts...)
		res, err := NewCampaign(liveArg, topo, all...).Run(context.Background())
		if err != nil {
			t.Fatalf("campaign: %v", err)
		}
		return res
	}

	baseline := run(live)

	store, err := checkpoint.NewStore(live.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	fromStore := run(nil, WithSnapshotStore(store))
	fromStoreCold := run(nil, WithSnapshotStore(store), WithPooledClones(false))

	fp := func(r *CampaignResult) string {
		out := ""
		for _, d := range r.Detections {
			out += d.Violation.Key() + ";"
		}
		return out
	}
	if fp(baseline) == "" {
		t.Fatalf("baseline campaign found nothing")
	}
	if fp(fromStore) != fp(baseline) {
		t.Fatalf("store campaign detections differ:\nlive:  %s\nstore: %s", fp(baseline), fp(fromStore))
	}
	if fp(fromStoreCold) != fp(baseline) {
		t.Fatalf("cold store campaign detections differ:\nlive: %s\ncold: %s", fp(baseline), fp(fromStoreCold))
	}
	if fromStore.SnapshotBytes <= 0 || fromStore.FullStateBytes <= 0 {
		t.Errorf("store campaign lost snapshot accounting: %+v", fromStore)
	}
}

// TestCampaignsShareClonePool pins the shared-pool path the live runtime
// uses for back-to-back scenario campaigns over one epoch: the second
// campaign leases the first one's released clones (no further cold builds),
// finds the same detections, and its CloneStats reports only its own share
// of the pool's activity.
func TestCampaignsShareClonePool(t *testing.T) {
	topo := topology.Line(3)
	victim := topo.Nodes[0].Prefixes[0]
	opts := cluster.Options{Seed: 1, ConfigOverride: faults.ApplyConfigFaults(
		faults.MisOrigination{Router: "R3", Prefix: victim})}
	live := cluster.MustBuild(topo, opts)
	live.Converge()
	store, err := checkpoint.NewStore(live.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	pool := cluster.NewClonePool(topo, store, opts)

	run := func() *CampaignResult {
		t.Helper()
		res, err := NewCampaign(nil, topo,
			WithUnits(Unit{Explorer: "R2", FromPeer: "R1", MaxInputs: 4, FuzzSeeds: 2, Seed: 1}),
			WithSeed(1), WithWorkers(1), WithClusterOptions(opts),
			WithSnapshotStore(store), WithClonePool(pool)).Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	first, second := run(), run()
	if len(first.Detections) == 0 {
		t.Fatalf("first campaign found nothing")
	}
	if detectionFingerprintTest(first) != detectionFingerprintTest(second) {
		t.Fatalf("shared-pool campaigns diverged")
	}
	if second.CloneStats.ColdBuilds != 0 {
		t.Errorf("second campaign cold-built %d clones; pool sharing not amortizing", second.CloneStats.ColdBuilds)
	}
	if second.CloneStats.Leases != second.InputsExplored {
		t.Errorf("second campaign's delta stats report %d leases for %d inputs (shared-pool totals leaked in)",
			second.CloneStats.Leases, second.InputsExplored)
	}
	if pool.Outstanding() != 0 {
		t.Errorf("shared pool leaked %d clones", pool.Outstanding())
	}
}

func detectionFingerprintTest(r *CampaignResult) string {
	out := ""
	for _, d := range r.Detections {
		out += d.Violation.Key() + ";"
	}
	return out
}

func TestCampaignWithoutDeploymentOrStoreFails(t *testing.T) {
	topo := topology.Line(2)
	_, err := NewCampaign(nil, topo, WithUnits(Unit{Explorer: "R1", MaxInputs: 1})).Run(context.Background())
	if err != ErrNoDeployment {
		t.Fatalf("err = %v, want ErrNoDeployment", err)
	}
}

// TestCampaignClonePrelude verifies the prelude hook runs once per explored
// input, before the input, and that its injections shape what the campaign
// detects: a prelude-injected hijack is found at the very first input even
// though the deployment is healthy.
func TestCampaignClonePrelude(t *testing.T) {
	topo := topology.Line(3)
	opts := cluster.Options{Seed: 1}
	live := cluster.MustBuild(topo, opts)
	live.Converge()
	if v := checker.CheckAll(live, checker.DefaultProperties(topo)).Violations(); len(v) != 0 {
		t.Fatalf("deployment should be healthy: %v", v)
	}

	victim := topo.Nodes[2].Prefixes[0] // R3's prefix, hijacked by R1 below
	var preludes atomic.Int64
	campaign := NewCampaign(live, topo,
		WithUnits(Unit{Explorer: "R2", FromPeer: "R1", MaxInputs: 4, FuzzSeeds: 2, Seed: 1}),
		WithSeed(1),
		WithWorkers(1),
		WithClusterOptions(opts),
		WithClonePrelude(func(shadow *cluster.Cluster) {
			preludes.Add(1)
			attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{topo.Nodes[0].AS}, NextHop: 1}
			shadow.InjectUpdate("R1", "R2", &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{victim}})
		}))
	res, err := campaign.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := preludes.Load(); got != int64(res.InputsExplored) {
		t.Fatalf("prelude ran %d times for %d inputs", got, res.InputsExplored)
	}
	d := res.FirstDetection(checker.ClassOperatorMistake)
	if d == nil {
		t.Fatalf("prelude hijack not detected; detections: %v", res.Detections)
	}
	if d.InputIndex != 1 {
		t.Errorf("prelude violation first seen at input %d, want 1", d.InputIndex)
	}
}
