package dice

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/topology"
)

// This file is the metamorphic campaign suite: properties of the form
// "campaign variant A and campaign variant B must produce identical
// detection sets" checked over seeded *random* Gao–Rexford topologies, not
// just the hand-built demo. The fixed demo topologies can hide coincidental
// equivalences (symmetric tiers, one router per AS in every partition);
// random multi-homed graphs with planted faults exercise the equivalence
// claims where the structure varies. Everything is seeded, so failures
// reproduce exactly; `go test -race` covers the parallel variants.

// metamorphicCase is one seeded deployment the equivalences are checked on.
type metamorphicCase struct {
	name string
	topo *topology.Topology
	opts cluster.Options
}

// metamorphicCases builds converged-ready deployments over seeded random
// topologies with a mis-origination planted at the last (stub) router and a
// missing import filter at the best-connected one.
func metamorphicCases(t *testing.T) []metamorphicCase {
	t.Helper()
	var cases []metamorphicCase
	for _, seed := range []int64{7, 19} {
		topo := topology.GaoRexford(2, 3, 5, seed)
		if err := topo.Validate(); err != nil {
			t.Fatalf("seed %d topology invalid: %v", seed, err)
		}
		if !topo.Connected() {
			t.Fatalf("seed %d topology disconnected", seed)
		}
		victimNode := topo.Nodes[0]
		hijacker := topo.Nodes[len(topo.Nodes)-1].Name
		filterless := topo.Nodes[2].Name
		peer := topo.NeighborsOf(filterless)[0]
		opts := cluster.Options{
			Seed:       seed,
			GaoRexford: true,
			ConfigOverride: faults.ApplyConfigFaults(
				faults.MisOrigination{Router: hijacker, Prefix: victimNode.Prefixes[0]},
				faults.MissingImportFilter{Router: filterless, Peer: peer},
			),
			MaxEvents: 300000,
		}
		cases = append(cases, metamorphicCase{
			name: fmt.Sprintf("gao-rexford-seed-%d", seed),
			topo: topo,
			opts: opts,
		})
	}
	return cases
}

// deploy builds and converges a fresh live cluster for the case. Each
// campaign variant gets its own deployment so one variant's snapshot timing
// cannot influence another's.
func (mc metamorphicCase) deploy(t *testing.T) *cluster.Cluster {
	t.Helper()
	live, err := cluster.Build(mc.topo, mc.opts)
	if err != nil {
		t.Fatalf("%s: Build: %v", mc.name, err)
	}
	live.Converge()
	return live
}

// detectionSet canonicalizes a campaign's merged detections (violation key
// plus first-seen input index).
func detectionSet(r *CampaignResult) string {
	ks := make([]string, 0, len(r.Detections))
	for _, d := range r.Detections {
		ks = append(ks, fmt.Sprintf("%s@%d", d.Violation.Key(), d.InputIndex))
	}
	sort.Strings(ks)
	return strings.Join(ks, ";")
}

func (mc metamorphicCase) campaign(t *testing.T, live *cluster.Cluster, extra ...CampaignOption) *CampaignResult {
	t.Helper()
	opts := []CampaignOption{
		WithStrategy(AllNodesStrategy{}),
		WithBudget(Budget{TotalInputs: 30}),
		WithFuzzSeeds(2),
		WithSeed(11),
		WithClusterOptions(mc.opts),
	}
	res, err := NewCampaign(live, mc.topo, append(opts, extra...)...).Run(context.Background())
	if err != nil {
		t.Fatalf("%s: Run: %v", mc.name, err)
	}
	return res
}

// TestMetamorphicFederatedEqualsCentralized asserts the federation
// equivalence on random topologies: splitting the same campaign into per-AS
// administrative domains (summary-only disclosure, domain-scoped checking)
// must change nothing about what is detected.
func TestMetamorphicFederatedEqualsCentralized(t *testing.T) {
	for _, mc := range metamorphicCases(t) {
		t.Run(mc.name, func(t *testing.T) {
			central := mc.campaign(t, mc.deploy(t))
			federated := mc.campaign(t, mc.deploy(t), WithFederation(federation.PartitionByAS(mc.topo)))
			if len(central.Detections) == 0 {
				t.Fatalf("campaign found nothing; equivalence is vacuous")
			}
			if got, want := detectionSet(federated), detectionSet(central); got != want {
				t.Errorf("federated detections differ from centralized:\n  federated   %s\n  centralized %s", got, want)
			}
			if !federated.Federated || federated.Disclosed.Summaries == 0 {
				t.Errorf("federated run did not exercise the summary bus: %+v", federated.Disclosed)
			}
		})
	}
}

// TestMetamorphicPooledEqualsCold asserts the clone-lifecycle equivalence on
// random topologies: leasing rewound clones from the pool and cold-building
// a fresh clone per input must explore the same states and find the same
// detections, serially and with a parallel worker pool.
func TestMetamorphicPooledEqualsCold(t *testing.T) {
	for _, mc := range metamorphicCases(t) {
		t.Run(mc.name, func(t *testing.T) {
			cold := mc.campaign(t, mc.deploy(t), WithPooledClones(false), WithWorkers(1))
			pooled := mc.campaign(t, mc.deploy(t), WithPooledClones(true), WithWorkers(1))
			pooledParallel := mc.campaign(t, mc.deploy(t), WithPooledClones(true), WithWorkers(4))
			if len(cold.Detections) == 0 {
				t.Fatalf("campaign found nothing; equivalence is vacuous")
			}
			if got, want := detectionSet(pooled), detectionSet(cold); got != want {
				t.Errorf("pooled detections differ from cold:\n  pooled %s\n  cold   %s", got, want)
			}
			if got, want := detectionSet(pooledParallel), detectionSet(cold); got != want {
				t.Errorf("parallel pooled detections differ from cold:\n  pooled %s\n  cold   %s", got, want)
			}
			if cold.CloneStats.Resets != 0 || pooled.CloneStats.Resets == 0 {
				t.Errorf("lifecycle accounting wrong: cold %+v, pooled %+v", cold.CloneStats, pooled.CloneStats)
			}
		})
	}
}

// TestMetamorphicHeterogeneousFindsSameClasses asserts the heterogeneity
// variant of the metamorphic property on a random topology: re-tagging the
// transit tier onto obgpd and the stub tier onto frr — a genuine three-way
// bird/obgpd/frr deployment — must not lose any detected fault class
// relative to the homogeneous run.
func TestMetamorphicHeterogeneousFindsSameClasses(t *testing.T) {
	for _, mc := range metamorphicCases(t) {
		t.Run(mc.name, func(t *testing.T) {
			homo := mc.campaign(t, mc.deploy(t))

			mixedTopo := mc.topo // mutate a copy of the node list, not the shared case
			cp := *mixedTopo
			cp.Nodes = append([]topology.Node(nil), mixedTopo.Nodes...)
			var transits, stubs []string
			for _, n := range cp.Nodes {
				switch n.Tier {
				case 2:
					transits = append(transits, n.Name)
				case 3:
					stubs = append(stubs, n.Name)
				}
			}
			cp.SetImpl("obgpd", transits...)
			cp.SetImpl("frr", stubs...)
			mcMixed := metamorphicCase{name: mc.name + "-mixed", topo: &cp, opts: mc.opts}
			mixed := mcMixed.campaign(t, mcMixed.deploy(t))

			impls := map[string]bool{}
			for _, n := range cp.Nodes {
				impl := n.Impl
				if impl == "" {
					impl = "bird"
				}
				impls[impl] = true
			}
			if len(impls) != 3 {
				t.Fatalf("mixed topology runs %d implementations, want a three-way mix: %v", len(impls), impls)
			}

			classes := func(r *CampaignResult) map[string]bool {
				out := map[string]bool{}
				for _, d := range r.Detections {
					out[d.Class.String()] = true
				}
				return out
			}
			for cl := range classes(homo) {
				if !classes(mixed)[cl] {
					t.Errorf("three-way mixed deployment lost fault class %s", cl)
				}
			}
		})
	}
}
