package dice

import (
	"fmt"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/checker"
)

// EventKind discriminates streamed campaign events.
type EventKind int

// Event kinds, in the order a campaign emits them.
const (
	// EventCampaignStart is emitted once, after the strategy planned its
	// units and before the snapshot is taken.
	EventCampaignStart EventKind = iota
	// EventSnapshot is emitted when the consistent snapshot has been taken.
	EventSnapshot
	// EventUnitStart is emitted when a unit is launched. Units launch
	// concurrently; the worker pool gates their clone executions, so a
	// started unit may still be waiting for its first worker slot.
	EventUnitStart
	// EventDetection is emitted for every campaign-wide new detection, as it
	// is found — before Run returns and usually long before the campaign
	// finishes. A violation already streamed by another unit is deduplicated
	// (it still appears in that unit's Result).
	EventDetection
	// EventSummary is emitted in federated campaigns when a checker.Summary
	// carrying violation digests crosses a domain boundary (clean summaries
	// are exchanged and accounted too, but not streamed). Domain names the
	// origin; Summary is attached.
	EventSummary
	// EventUnitEnd is emitted when a unit finishes (its Result is attached).
	EventUnitEnd
	// EventCampaignEnd is emitted once, just before Run returns.
	EventCampaignEnd
)

// String renders the event kind.
func (k EventKind) String() string {
	switch k {
	case EventCampaignStart:
		return "campaign-start"
	case EventSnapshot:
		return "snapshot"
	case EventUnitStart:
		return "unit-start"
	case EventDetection:
		return "detection"
	case EventSummary:
		return "summary"
	case EventUnitEnd:
		return "unit-end"
	case EventCampaignEnd:
		return "campaign-end"
	}
	return "unknown"
}

// Event is one streamed campaign occurrence. Fields beyond Kind, Elapsed and
// Unit are populated per kind: Detection for EventDetection, Result for
// EventUnitEnd, Units/Workers for EventCampaignStart, Err for a failed unit.
type Event struct {
	Kind EventKind
	// Elapsed is the wall-clock time since Run started.
	Elapsed time.Duration
	// Unit identifies the unit for unit-scoped events (zero Unit otherwise).
	Unit Unit
	// UnitIndex is the unit's position in the campaign plan.
	UnitIndex int
	// Detection is the finding (EventDetection only).
	Detection *Detection
	// Result is the finished unit's result (EventUnitEnd only).
	Result *Result
	// Units and Workers describe the campaign plan (EventCampaignStart only).
	Units   int
	Workers int
	// Domains is the federation domain count (EventCampaignStart of a
	// federated campaign; zero otherwise).
	Domains int
	// Domain is the origin administrative domain (EventSummary only).
	Domain string
	// Summary is the privacy-filtered digest that crossed a domain boundary
	// (EventSummary only).
	Summary *checker.Summary
	// Err reports a unit that failed to execute (EventUnitEnd only).
	Err error
}

// String renders the event compactly, for log-style consumers.
func (e Event) String() string {
	switch e.Kind {
	case EventCampaignStart:
		if e.Domains > 0 {
			return fmt.Sprintf("[%v] campaign start: %d units across %d domains on %d workers", e.Elapsed, e.Units, e.Domains, e.Workers)
		}
		return fmt.Sprintf("[%v] campaign start: %d units on %d workers", e.Elapsed, e.Units, e.Workers)
	case EventDetection:
		return fmt.Sprintf("[%v] unit %s: %s", e.Elapsed, e.Unit, e.Detection.Violation)
	case EventSummary:
		return fmt.Sprintf("[%v] summary from %s: %d findings, %d bytes disclosed", e.Elapsed, e.Domain, len(e.Summary.Digests), e.Summary.Size())
	case EventUnitStart:
		return fmt.Sprintf("[%v] unit %s started", e.Elapsed, e.Unit)
	case EventUnitEnd:
		if e.Err != nil {
			return fmt.Sprintf("[%v] unit %s failed: %v", e.Elapsed, e.Unit, e.Err)
		}
		return fmt.Sprintf("[%v] unit %s done (%d inputs, %d detections)", e.Elapsed, e.Unit, e.Result.InputsExplored, len(e.Result.Detections))
	default:
		return fmt.Sprintf("[%v] %s", e.Elapsed, e.Kind)
	}
}

// emitter fans events out to the subscriber channel (if Events was called)
// and the OnEvent callback. Sends preserve emission order; concurrent units
// serialize on the mutex.
type emitter struct {
	mu       sync.Mutex
	start    time.Time
	ch       chan Event
	callback func(Event)
	closed   bool
}

func (em *emitter) emit(ev Event) {
	em.mu.Lock()
	defer em.mu.Unlock()
	if em.closed {
		return
	}
	ev.Elapsed = time.Since(em.start)
	if em.callback != nil {
		em.callback(ev)
	}
	if em.ch != nil {
		em.ch <- ev
	}
}

// close closes the subscriber channel; emissions afterwards are dropped.
func (em *emitter) close() {
	em.mu.Lock()
	defer em.mu.Unlock()
	if em.closed {
		return
	}
	em.closed = true
	if em.ch != nil {
		close(em.ch)
	}
}
