package dice

import (
	"fmt"
	"sort"

	"github.com/dice-project/dice/internal/topology"
)

// Unit is one schedulable piece of exploration work: a (explorer, peer) pair
// plus its share of the campaign's input budget. Strategies plan units; the
// campaign's worker pool executes them, each unit over isolated clones of the
// shared snapshot.
type Unit struct {
	// Explorer is the node whose behaviour is explored.
	Explorer string
	// FromPeer is the neighbor whose inputs are explored at the explorer.
	FromPeer string
	// MaxInputs bounds the clone executions of this unit. Zero lets the
	// campaign split its budget across units.
	MaxInputs int
	// FuzzSeeds is the number of grammar-fuzzed seed messages for this unit.
	// Zero inherits the campaign default.
	FuzzSeeds int
	// Seed drives this unit's fuzzing and exploration. Zero lets the campaign
	// derive a per-unit seed from the campaign seed and the unit's index, so
	// different units explore different corners of the input space.
	Seed int64
	// Domain is the administrative domain that owns the unit's explorer.
	// Federated planning fills it in; it is empty in centralized campaigns.
	Domain string
}

func (u Unit) String() string { return fmt.Sprintf("%s<-%s", u.Explorer, u.FromPeer) }

// Strategy plans which (explorer, peer) units a campaign runs. Planning is
// pure: it sees only the topology and the configured explorer set, so a plan
// is deterministic and independent of the worker count.
type Strategy interface {
	// Name identifies the strategy in results and events.
	Name() string
	// Plan returns the units to explore. explorers is the user-configured
	// explorer set (possibly empty, meaning "strategy default").
	Plan(topo *topology.Topology, explorers []string) ([]Unit, error)
}

// highestDegreeNode returns the router with the most neighbors, ties broken
// by lexicographically smallest name regardless of the topology's node order
// (covered by TestHighestDegreeTieBreak).
func highestDegreeNode(topo *topology.Topology) string {
	return topo.BestConnected()
}

// highestDegreeNodeOf restricts the highest-degree selection to a candidate
// set (a federation domain's nodes), with the same tie-break. Degree still
// counts every neighbor, including ones outside the set: a domain's
// best-connected router is the one with the most sessions, wherever they
// lead.
func highestDegreeNodeOf(topo *topology.Topology, names []string) string {
	return topo.BestConnected(names...)
}

// peersOf returns up to max neighbors of the explorer (all when max <= 0),
// in deterministic order.
func peersOf(topo *topology.Topology, explorer string, max int) ([]string, error) {
	neighbors := append([]string(nil), topo.NeighborsOf(explorer)...)
	if len(neighbors) == 0 {
		return nil, fmt.Errorf("dice: explorer %s has no neighbors", explorer)
	}
	sort.Strings(neighbors)
	if max > 0 && len(neighbors) > max {
		neighbors = neighbors[:max]
	}
	return neighbors, nil
}

// resolveExplorers validates the configured explorer set, or falls back to
// the single highest-degree node.
func resolveExplorers(topo *topology.Topology, explorers []string) ([]string, error) {
	if len(explorers) == 0 {
		return []string{highestDegreeNode(topo)}, nil
	}
	for _, name := range explorers {
		if topo.Node(name) == nil {
			return nil, fmt.Errorf("dice: unknown explorer %q", name)
		}
	}
	return explorers, nil
}

// DegreeStrategy explores from the highest-degree router (or each configured
// explorer), pairing it with up to PeersPerExplorer of its neighbors. It is
// the campaign default and, with one explorer and one peer, reproduces the
// classic single-round Engine behaviour.
type DegreeStrategy struct {
	// PeersPerExplorer bounds how many neighbors are explored per explorer.
	// Zero selects 1 (the classic behaviour); negative selects all neighbors.
	PeersPerExplorer int
}

// Name implements Strategy.
func (s DegreeStrategy) Name() string { return "degree" }

// Plan implements Strategy.
func (s DegreeStrategy) Plan(topo *topology.Topology, explorers []string) ([]Unit, error) {
	explorers, err := resolveExplorers(topo, explorers)
	if err != nil {
		return nil, err
	}
	max := s.PeersPerExplorer
	if max == 0 {
		max = 1
	}
	var units []Unit
	for _, ex := range explorers {
		peers, err := peersOf(topo, ex, max)
		if err != nil {
			return nil, err
		}
		for _, p := range peers {
			units = append(units, Unit{Explorer: ex, FromPeer: p})
		}
	}
	return units, nil
}

// RoundRobinStrategy cycles through the explorer set, pairing each visit with
// the explorer's next neighbor in turn, for a fixed number of units. It
// spreads a budget evenly over many (explorer, peer) combinations.
type RoundRobinStrategy struct {
	// Units is the total number of units to plan. Zero selects one unit per
	// explorer.
	Units int
}

// Name implements Strategy.
func (s RoundRobinStrategy) Name() string { return "round-robin" }

// Plan implements Strategy.
func (s RoundRobinStrategy) Plan(topo *topology.Topology, explorers []string) ([]Unit, error) {
	explorers, err := resolveExplorers(topo, explorers)
	if err != nil {
		return nil, err
	}
	n := s.Units
	if n <= 0 {
		n = len(explorers)
	}
	peerIdx := make(map[string]int, len(explorers))
	units := make([]Unit, 0, n)
	for i := 0; i < n; i++ {
		ex := explorers[i%len(explorers)]
		peers, err := peersOf(topo, ex, -1)
		if err != nil {
			return nil, err
		}
		units = append(units, Unit{Explorer: ex, FromPeer: peers[peerIdx[ex]%len(peers)]})
		peerIdx[ex]++
	}
	return units, nil
}

// AllNodesStrategy explores every router of the topology (or every configured
// explorer) from its first neighbor — the widest sweep, covering scenarios a
// single hand-picked explorer would miss.
type AllNodesStrategy struct{}

// Name implements Strategy.
func (AllNodesStrategy) Name() string { return "all-nodes" }

// Plan implements Strategy.
func (AllNodesStrategy) Plan(topo *topology.Topology, explorers []string) ([]Unit, error) {
	if len(explorers) == 0 {
		explorers = topo.NodeNames()
	} else if _, err := resolveExplorers(topo, explorers); err != nil {
		return nil, err
	}
	var units []Unit
	for _, ex := range explorers {
		peers, err := peersOf(topo, ex, 1)
		if err != nil {
			return nil, err
		}
		units = append(units, Unit{Explorer: ex, FromPeer: peers[0]})
	}
	return units, nil
}

// fixedStrategy returns a literal unit list; WithUnits and the Engine
// compatibility shim use it.
type fixedStrategy struct{ units []Unit }

// Name implements Strategy.
func (fixedStrategy) Name() string { return "fixed" }

// Plan implements Strategy.
func (s fixedStrategy) Plan(topo *topology.Topology, _ []string) ([]Unit, error) {
	if len(s.units) == 0 {
		return nil, fmt.Errorf("dice: fixed strategy with no units")
	}
	units := append([]Unit(nil), s.units...)
	for i := range units {
		if topo.Node(units[i].Explorer) == nil {
			return nil, fmt.Errorf("dice: unknown explorer %q", units[i].Explorer)
		}
		if units[i].FromPeer == "" {
			peers, err := peersOf(topo, units[i].Explorer, 1)
			if err != nil {
				return nil, err
			}
			units[i].FromPeer = peers[0]
		}
	}
	return units, nil
}
