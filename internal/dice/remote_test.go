package dice

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/topology"
)

func TestPlanShards(t *testing.T) {
	units := []Unit{{Explorer: "R1"}, {Explorer: "R2"}, {Explorer: "R3"}, {Explorer: "R4"}, {Explorer: "R5"}}
	shards := PlanShards(units, 2)
	if len(shards) != 3 {
		t.Fatalf("PlanShards(5, 2) = %d shards, want 3", len(shards))
	}
	next := 0
	for si, sh := range shards {
		if sh.ID != si {
			t.Errorf("shard %d has ID %d", si, sh.ID)
		}
		if len(sh.UnitIndexes) != len(sh.Units) {
			t.Fatalf("shard %d: %d indexes vs %d units", si, len(sh.UnitIndexes), len(sh.Units))
		}
		for j, idx := range sh.UnitIndexes {
			if idx != next {
				t.Errorf("shard %d unit %d: index %d, want plan order %d", si, j, idx, next)
			}
			if sh.Units[j].Explorer != units[idx].Explorer {
				t.Errorf("shard %d unit %d does not match plan index %d", si, j, idx)
			}
			next++
		}
	}
	if next != len(units) {
		t.Errorf("shards cover %d units, want %d", next, len(units))
	}
	// Degenerate perShard pins one unit per shard.
	if got := len(PlanShards(units, 0)); got != len(units) {
		t.Errorf("PlanShards(5, 0) = %d shards, want 5", got)
	}
	if got := len(PlanShards(nil, 3)); got != 0 {
		t.Errorf("PlanShards(0, 3) = %d shards, want 0", got)
	}
}

// envelopeCapture implements federation.Transport by recording every
// envelope the bus publishes — the test-local twin of the agent's capture.
type envelopeCapture struct {
	mu   sync.Mutex
	envs []federation.Envelope
}

func (c *envelopeCapture) Deliver(e federation.Envelope) {
	c.mu.Lock()
	c.envs = append(c.envs, e)
	c.mu.Unlock()
}

// loopbackExecutor is a RemoteExecutor that executes each shard through a
// nested in-process campaign over its own store decoded from the snapshot —
// the agent's execution model without the wire. It exists to prove the
// remote seam itself preserves results; the control/agent packages prove the
// wire on top of it.
type loopbackExecutor struct {
	perShard int
	failAt   int // plan index whose unit reports an error instead of a result (-1 off)
	stats    RemoteStats
}

func (x *loopbackExecutor) RemoteStats() RemoteStats { return x.stats }

func (x *loopbackExecutor) ExecuteUnits(ctx context.Context, topo *topology.Topology, snap *checkpoint.Snapshot, spec RemoteSpec, units []Unit, sink RemoteSink) error {
	shards := PlanShards(units, x.perShard)
	x.stats = RemoteStats{Agents: 1, Shards: len(shards)}
	for _, sh := range shards {
		store, err := checkpoint.NewStore(snap)
		if err != nil {
			return err
		}
		opts, err := spec.CampaignOptions(topo, store, nil)
		if err != nil {
			return err
		}
		opts = append(opts, WithUnits(sh.Units...))
		var cap *envelopeCapture
		if len(spec.Domains) > 0 && sink.Envelope != nil {
			cap = &envelopeCapture{}
			opts = append(opts, WithFederationTransport(cap))
		}
		res, err := NewCampaign(nil, topo, opts...).Run(ctx)
		if err != nil {
			return err
		}
		for j, idx := range sh.UnitIndexes {
			if idx == x.failAt {
				sink.UnitDone(idx, nil, errors.New("injected shard failure"))
				continue
			}
			sink.UnitDone(idx, res.Units[j], res.UnitErrors[j])
		}
		if cap != nil {
			for _, env := range cap.envs {
				sink.Envelope(env)
			}
		}
	}
	return nil
}

// TestRemoteExecutionMatchesInProcess: the same seeded campaign run in
// process and run through a remote executor (nested campaigns over shipped
// shards) must find identical detections with identical exploration
// accounting — the provable-equality contract the distributed runtime
// inherits.
func TestRemoteExecutionMatchesInProcess(t *testing.T) {
	run := func(opts ...CampaignOption) *CampaignResult {
		topo, live, copts := hijackedLine(t, 4)
		base := []CampaignOption{
			WithStrategy(AllNodesStrategy{}),
			WithBudget(Budget{TotalInputs: 12}),
			WithFuzzSeeds(4),
			WithSeed(3),
			WithClusterOptions(copts),
			WithWorkers(2),
		}
		res, err := NewCampaign(live, topo, append(base, opts...)...).Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	local := run()
	remote := run(WithRemoteExecution(&loopbackExecutor{perShard: 2, failAt: -1}))

	if len(local.Detections) == 0 {
		t.Fatal("in-process campaign found nothing; equivalence is vacuous")
	}
	if got, want := detectionFingerprint(remote.Detections), detectionFingerprint(local.Detections); got != want {
		t.Errorf("remote detections differ from in-process:\n  remote %s\n  local  %s", got, want)
	}
	if remote.InputsExplored != local.InputsExplored {
		t.Errorf("inputs explored differ: remote=%d local=%d", remote.InputsExplored, local.InputsExplored)
	}
	if remote.Remote == nil || remote.Remote.Shards != 2 || remote.Remote.Agents != 1 {
		t.Errorf("Remote stats = %+v, want 2 shards on 1 agent", remote.Remote)
	}
	if local.Remote != nil {
		t.Errorf("in-process campaign reports Remote stats: %+v", local.Remote)
	}
	if remote.PooledClones {
		t.Errorf("remote campaign must not report a local clone pool")
	}
	if remote.CloneStats.Leases != 0 || remote.CloneStats.ColdBuilds != 0 {
		t.Errorf("remote campaign built local clones: %+v", remote.CloneStats)
	}
}

// TestRemoteFederatedMatchesInProcess extends the equality to federated
// campaigns: agents publish summaries on their local buses, envelopes are
// replayed into the control-side bus, and the disclosure accounting must
// come out identical to the in-process federated run.
func TestRemoteFederatedMatchesInProcess(t *testing.T) {
	run := func(opts ...CampaignOption) *CampaignResult {
		topo, live, copts := hijackedLine(t, 4)
		base := []CampaignOption{
			WithFederation(federation.PartitionByAS(topo)),
			WithBudget(Budget{TotalInputs: 16}),
			WithFuzzSeeds(4),
			WithSeed(3),
			WithClusterOptions(copts),
			WithWorkers(2),
		}
		res, err := NewCampaign(live, topo, append(base, opts...)...).Run(context.Background())
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	local := run()
	remote := run(WithRemoteExecution(&loopbackExecutor{perShard: 1, failAt: -1}))

	if len(local.Detections) == 0 {
		t.Fatal("federated in-process campaign found nothing; equivalence is vacuous")
	}
	if got, want := detectionFingerprint(remote.Detections), detectionFingerprint(local.Detections); got != want {
		t.Errorf("remote federated detections differ:\n  remote %s\n  local  %s", got, want)
	}
	if !remote.Federated {
		t.Fatal("remote campaign lost the Federated flag")
	}
	if remote.Disclosed != local.Disclosed {
		t.Errorf("disclosure accounting differs: remote=%+v local=%+v", remote.Disclosed, local.Disclosed)
	}
	if remote.DisclosedBytes != local.DisclosedBytes {
		t.Errorf("per-unit disclosed bytes differ: remote=%d local=%d", remote.DisclosedBytes, local.DisclosedBytes)
	}
	for i := range local.Domains {
		if remote.Domains[i] != local.Domains[i] {
			t.Errorf("domain %s breakdown differs:\n  remote %+v\n  local  %+v",
				local.Domains[i].Domain, remote.Domains[i], local.Domains[i])
		}
	}
}

// TestRemoteUnitFailureSurfaces: an agent-side unit error must fail the
// campaign (like a local unit error) while the other units' results survive.
func TestRemoteUnitFailureSurfaces(t *testing.T) {
	topo, live, copts := hijackedLine(t, 4)
	res, err := NewCampaign(live, topo,
		WithStrategy(AllNodesStrategy{}),
		WithBudget(Budget{TotalInputs: 8}),
		WithFuzzSeeds(2),
		WithSeed(3),
		WithClusterOptions(copts),
		WithRemoteExecution(&loopbackExecutor{perShard: 2, failAt: 1}),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "injected shard failure") {
		t.Fatalf("Run error = %v, want the injected shard failure", err)
	}
	if res == nil {
		t.Fatal("failed campaign must still return the partial result")
	}
	if res.Units[1] != nil || res.UnitErrors[1] == nil {
		t.Errorf("failed unit should have nil result and an error: %v / %v", res.Units[1], res.UnitErrors[1])
	}
	done := 0
	for i, r := range res.Units {
		if i != 1 && r != nil {
			done++
		}
	}
	if done == 0 {
		t.Errorf("no other unit completed despite a single-unit failure")
	}
}

// TestRemoteSpecRejectsUnshippable: configurations carrying funcs cannot
// cross the wire and must fail fast, before any unit runs.
func TestRemoteSpecRejectsUnshippable(t *testing.T) {
	cases := map[string]CampaignOption{
		"code faults": WithCodeFaults(faults.HandlerBug{Router: "R1", BugName: "b"}),
		"prelude":     WithClonePrelude(func(*cluster.Cluster) {}),
	}
	for name, opt := range cases {
		t.Run(name, func(t *testing.T) {
			topo, live, copts := hijackedLine(t, 3)
			_, err := NewCampaign(live, topo,
				WithUnits(Unit{Explorer: "R2", FromPeer: "R1"}),
				WithBudget(Budget{TotalInputs: 1}),
				WithSeed(1),
				WithClusterOptions(copts),
				WithRemoteExecution(silentExecutor{}),
				opt,
			).Run(context.Background())
			if err == nil || !strings.Contains(err.Error(), "remote execution cannot ship") {
				t.Fatalf("Run = %v, want the unshippable-config rejection", err)
			}
		})
	}
}

// TestRemoteAbortedExecutorReported: an executor that returns success while
// leaving units unreported is a contract violation the campaign must surface
// rather than silently under-reporting.
func TestRemoteAbortedExecutorReported(t *testing.T) {
	topo, live, copts := hijackedLine(t, 3)
	res, err := NewCampaign(live, topo,
		WithStrategy(AllNodesStrategy{}),
		WithBudget(Budget{TotalInputs: 3}),
		WithFuzzSeeds(2),
		WithSeed(1),
		WithClusterOptions(copts),
		WithRemoteExecution(silentExecutor{}),
	).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "without completing") {
		t.Fatalf("Run error = %v, want the incomplete-executor report", err)
	}
	for i, e := range res.UnitErrors {
		if !errors.Is(e, errRemoteAborted) {
			t.Errorf("unit %d error = %v, want errRemoteAborted", i, e)
		}
	}
}

// silentExecutor violates the executor contract by reporting nothing.
type silentExecutor struct{}

func (silentExecutor) ExecuteUnits(context.Context, *topology.Topology, *checkpoint.Snapshot, RemoteSpec, []Unit, RemoteSink) error {
	return nil
}
func (silentExecutor) RemoteStats() RemoteStats { return RemoteStats{} }
