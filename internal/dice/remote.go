package dice

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"time"

	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/topology"
)

// RemoteSpec is the wire-shippable projection of a campaign's configuration:
// everything an agent needs to execute a shard of units exactly as the
// in-process campaign would, and nothing that cannot cross a process
// boundary. Funcs (event callbacks, preludes, cluster trace hooks) never
// ship; properties ship as registry names the agent rebuilds against the
// topology; code faults are rejected outright — a remote campaign that needs
// them must install them agent-side.
type RemoteSpec struct {
	// Seed, FuzzSeeds, UseConcolic, ShadowMaxEvents and Workers mirror the
	// campaign options of the same names. Workers is a hint: agents may
	// override it with their local capacity.
	Seed            int64
	FuzzSeeds       int
	UseConcolic     bool
	ShadowMaxEvents int
	Workers         int
	// HasProperties distinguishes "default property set" (false) from an
	// explicit set — possibly empty, which disables checking — rebuilt from
	// Properties registry names.
	HasProperties bool
	Properties    []string
	// Domains, when non-empty, run each agent-side shard federated under the
	// same partition the control-side campaign validated.
	Domains []federation.Domain
	// The encodable subset of cluster.Options shadow clones restore with.
	ClusterSeed       int64
	ClusterMaxEvents  int
	ClusterGaoRexford bool
	ClusterKeepalive  time.Duration
}

// CampaignOptions reconstructs the agent-side campaign options for one shard:
// the receiving half of remoteSpec. The caller supplies the decoded snapshot
// store (and optionally a shared clone pool over it) plus the topology the
// spec's property names resolve against.
func (s RemoteSpec) CampaignOptions(topo *topology.Topology, store *checkpoint.Store, pool *cluster.ClonePool) ([]CampaignOption, error) {
	opts := []CampaignOption{
		WithSnapshotStore(store),
		WithSeed(s.Seed),
		WithConcolic(s.UseConcolic),
		WithShadowMaxEvents(s.ShadowMaxEvents),
		WithClusterOptions(cluster.Options{
			Seed:              s.ClusterSeed,
			MaxEvents:         s.ClusterMaxEvents,
			GaoRexford:        s.ClusterGaoRexford,
			KeepaliveInterval: s.ClusterKeepalive,
		}),
	}
	if s.FuzzSeeds > 0 {
		opts = append(opts, WithFuzzSeeds(s.FuzzSeeds))
	}
	if s.Workers > 0 {
		opts = append(opts, WithWorkers(s.Workers))
	}
	if pool != nil {
		opts = append(opts, WithClonePool(pool))
	}
	if s.HasProperties {
		props, err := checker.PropertiesByName(topo, s.Properties...)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithProperties(props...))
	}
	if len(s.Domains) > 0 {
		opts = append(opts, WithFederation(&federation.Partition{Domains: s.Domains}))
	}
	return opts, nil
}

// RemoteStats summarizes a remote executor's run for the campaign result:
// fleet shape, shard lifecycle, and the wire-byte breakdown (what shipped to
// agents — baseline plus per-shard deltas — and what came back, which is
// checker.Summary content only).
type RemoteStats struct {
	// Agents that registered; Shards the campaign was partitioned into;
	// Reassigned counts shard leases re-issued after an agent was lost;
	// Abandoned counts shards failed after exhausting their lease attempts.
	Agents     int
	Shards     int
	Reassigned int
	Abandoned  int
	// BaselineBytes is the encoded baseline snapshot each agent fetched once
	// (total across agents). ShardBytes is the shard leases' wire size
	// (units plus snapshot deltas against the baseline). ResultBytes is the
	// shard results' wire size — summaries and digests, never node state.
	BaselineBytes int
	ShardBytes    int
	ResultBytes   int
}

// RemoteSink receives a remote executor's streamed outcomes. UnitDone must be
// called exactly once per completed plan index (a nil Result with a non-nil
// error for units that failed); Envelope (non-nil only in federated
// campaigns) replays each federation envelope an agent's bus published, in
// arrival order. Both are safe for concurrent use.
type RemoteSink struct {
	UnitDone func(index int, r *Result, err error)
	Envelope func(env federation.Envelope)
}

// RemoteExecutor executes a campaign's planned units somewhere else — the
// control plane of the distributed runtime implements it by sharding units
// across registered agents. ExecuteUnits must honor ctx and must not return
// until every UnitDone/Envelope callback it will ever make has returned.
type RemoteExecutor interface {
	ExecuteUnits(ctx context.Context, topo *topology.Topology, snap *checkpoint.Snapshot, spec RemoteSpec, units []Unit, sink RemoteSink) error
	// RemoteStats reports the execution's distribution statistics; called
	// once, after ExecuteUnits returns.
	RemoteStats() RemoteStats
}

// WithRemoteExecution delegates the campaign's unit execution to a remote
// executor instead of the local worker pool. Planning, snapshotting,
// deduplication and aggregation stay local and unchanged — which is what
// makes the distributed result provably equal to the in-process run — while
// clone fan-out happens wherever the executor's agents live. The local clone
// pool is not built (agents pool their own clones), so CloneStats is zero;
// CampaignResult.Remote carries the executor's statistics instead.
func WithRemoteExecution(x RemoteExecutor) CampaignOption {
	return func(c *campaignConfig) { c.remote = x }
}

// WithFederationTransport installs a transport on the campaign's federation
// bus (meaningful only together with WithFederation). The agent side of the
// distributed runtime uses it to capture every envelope its local bus
// publishes for shipment to the control plane.
func WithFederationTransport(t federation.Transport) CampaignOption {
	return func(c *campaignConfig) { c.fedTransport = t }
}

// Shard is one schedulable slice of a campaign plan: a contiguous run of
// units, carried with their plan indices so results map back to the plan
// positions the in-process merge order is defined over.
type Shard struct {
	ID          int
	UnitIndexes []int
	Units       []Unit
}

// PlanShards slices the plan into shards of at most perShard units each
// (perShard <= 0 selects 1), preserving plan order. Smaller shards reassign
// more cheaply when an agent dies; larger ones amortize lease round-trips.
func PlanShards(units []Unit, perShard int) []Shard {
	if perShard <= 0 {
		perShard = 1
	}
	var shards []Shard
	for start := 0; start < len(units); start += perShard {
		end := min(start+perShard, len(units))
		sh := Shard{ID: len(shards)}
		for i := start; i < end; i++ {
			sh.UnitIndexes = append(sh.UnitIndexes, i)
			sh.Units = append(sh.Units, units[i])
		}
		shards = append(shards, sh)
	}
	return shards
}

// errRemoteAborted marks units that never produced a result because remote
// execution stopped first; the campaign reports the underlying executor
// error once instead of once per unfinished unit.
var errRemoteAborted = errors.New("dice: remote execution aborted")

// remoteSpec projects the campaign configuration onto the wire-shippable
// spec, rejecting configurations whose semantics cannot survive the trip.
func (c *Campaign) remoteSpec() (RemoteSpec, error) {
	if len(c.cfg.codeFaults) > 0 {
		return RemoteSpec{}, errors.New("dice: remote execution cannot ship code faults (funcs); install them agent-side")
	}
	if c.cfg.prelude != nil {
		return RemoteSpec{}, errors.New("dice: remote execution cannot ship a clone prelude (func)")
	}
	spec := RemoteSpec{
		Seed:              c.cfg.seed,
		FuzzSeeds:         c.cfg.fuzzSeeds,
		UseConcolic:       c.cfg.useConcolic,
		ShadowMaxEvents:   c.cfg.shadowMaxEvents,
		Workers:           c.cfg.workers,
		ClusterSeed:       c.cfg.clusterOptions.Seed,
		ClusterMaxEvents:  c.cfg.clusterOptions.MaxEvents,
		ClusterGaoRexford: c.cfg.clusterOptions.GaoRexford,
		ClusterKeepalive:  c.cfg.clusterOptions.KeepaliveInterval,
	}
	if c.cfg.properties != nil {
		names := make([]string, len(c.cfg.properties))
		for i, p := range c.cfg.properties {
			names[i] = p.Name()
		}
		rebuilt, err := checker.PropertiesByName(c.topo, names...)
		if err != nil || !reflect.DeepEqual(rebuilt, c.cfg.properties) {
			return RemoteSpec{}, errors.New("dice: remote execution supports only the standard checker properties (agents rebuild them by name)")
		}
		spec.HasProperties = true
		spec.Properties = names
	}
	if c.fed != nil {
		spec.Domains = append([]federation.Domain(nil), c.fed.partition.Domains...)
	}
	return spec, nil
}

// runRemote replaces the local worker fan-out: the executor runs the units
// on its agents and streams results back through the sink, which feeds the
// exact event/dedupe/aggregation machinery the in-process path uses. Any
// units left unreported when the executor returns get the context's error
// (cancellation, budget expiry) or the errRemoteAborted marker.
func (c *Campaign) runRemote(ctx context.Context, spec RemoteSpec, units []Unit, results []*Result, unitErrs []error) error {
	sink := RemoteSink{
		UnitDone: func(i int, r *Result, err error) {
			if i < 0 || i >= len(units) {
				return
			}
			u := units[i]
			c.em.emit(Event{Kind: EventUnitStart, Unit: u, UnitIndex: i})
			if r != nil {
				r.SnapshotDuration = c.snapStats.SnapshotDuration
				r.SnapshotBytes = c.snapStats.SnapshotBytes
				r.SnapshotNodes = c.snapStats.SnapshotNodes
				r.InFlightMessages = c.snapStats.InFlightMessages
				r.FullStateBytes = c.snapStats.FullStateBytes
				for j := range r.Detections {
					c.emitDetection(u, i, &r.Detections[j])
				}
			}
			results[i], unitErrs[i] = r, err
			c.em.emit(Event{Kind: EventUnitEnd, Unit: u, UnitIndex: i, Result: r, Err: err})
		},
	}
	if c.fed != nil {
		sink.Envelope = func(env federation.Envelope) {
			c.fed.bus.Record(env)
			if len(env.Summary.Digests) > 0 {
				s := env.Summary
				c.em.emit(Event{Kind: EventSummary, Domain: env.From, Summary: &s})
			}
		}
	}
	execErr := c.cfg.remote.ExecuteUnits(ctx, c.topo, c.snap, spec, units, sink)
	fill := ctx.Err()
	if fill == nil {
		fill = errRemoteAborted
	}
	missing := 0
	for i := range unitErrs {
		if results[i] == nil && unitErrs[i] == nil {
			unitErrs[i] = fill
			missing++
		}
	}
	if ctx.Err() != nil {
		return nil // the normal cancellation/budget paths report this
	}
	if execErr != nil {
		return execErr
	}
	if missing > 0 {
		return fmt.Errorf("dice: remote executor returned without completing %d of %d units", missing, len(units))
	}
	return nil
}
