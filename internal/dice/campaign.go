package dice

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/topology"
)

// Budget bounds a campaign.
type Budget struct {
	// TotalInputs bounds clone executions across the whole campaign. Units
	// that pin their own MaxInputs keep it; the rest of the budget (total
	// minus the pinned inputs) is split evenly across the remaining units
	// (remainder to the first ones, minimum one input per unit). Zero gives
	// every unpinned unit the classic per-round default of 64 inputs.
	TotalInputs int
	// MaxDuration bounds the campaign wall clock; Run derives a deadline
	// context from it. Expiry is a normal completion — Run returns the
	// partial result with CampaignResult.BudgetExhausted set and a nil
	// error, distinct from caller cancellation (Cancelled). Zero means no
	// time limit.
	MaxDuration time.Duration
}

// campaignConfig is the resolved option set of a campaign.
type campaignConfig struct {
	explorers       []string
	strategy        Strategy
	workers         int
	budget          Budget
	seed            int64
	fuzzSeeds       int
	useConcolic     bool
	pooledClones    bool
	properties      []checker.Property
	codeFaults      []faults.CodeFault
	clusterOptions  cluster.Options
	shadowMaxEvents int
	eventBuffer     int
	onEvent         func(Event)
	partition       *federation.Partition
	store           *checkpoint.Store
	clonePool       *cluster.ClonePool
	prelude         func(shadow *cluster.Cluster)
	remote          RemoteExecutor
	fedTransport    federation.Transport
	// budgetTimer provides the channel that fires when Budget.MaxDuration
	// elapses; nil selects time.After. Tests inject a hand-driven channel so
	// budget-expiry behavior is exercised without racing the wall clock.
	budgetTimer func(time.Duration) <-chan time.Time
}

func defaultCampaignConfig() campaignConfig {
	return campaignConfig{
		strategy:        DegreeStrategy{},
		workers:         runtime.NumCPU(),
		fuzzSeeds:       8,
		useConcolic:     true,
		pooledClones:    true,
		shadowMaxEvents: 20000,
		eventBuffer:     256,
	}
}

// CampaignOption configures a Campaign at construction.
type CampaignOption func(*campaignConfig)

// WithExplorers sets the explorer node set the strategy plans over. Without
// it, the strategy picks its own default (usually the highest-degree router).
func WithExplorers(names ...string) CampaignOption {
	return func(c *campaignConfig) { c.explorers = append([]string(nil), names...) }
}

// WithStrategy sets the planning strategy (DegreeStrategy is the default).
func WithStrategy(s Strategy) CampaignOption {
	return func(c *campaignConfig) {
		if s != nil {
			c.strategy = s
		}
	}
}

// WithUnits pins the exact (explorer, peer) units to run, bypassing strategy
// planning. A unit with an empty FromPeer gets the explorer's first neighbor.
func WithUnits(units ...Unit) CampaignOption {
	return func(c *campaignConfig) { c.strategy = fixedStrategy{units: units} }
}

// WithWorkers bounds how many clone executions run in parallel. Zero or
// negative selects runtime.NumCPU(). Campaign results are deterministic in
// the worker count: WithWorkers(1) and WithWorkers(n) find the same
// detections.
func WithWorkers(n int) CampaignOption {
	return func(c *campaignConfig) {
		if n <= 0 {
			n = runtime.NumCPU()
		}
		c.workers = n
	}
}

// WithBudget bounds the campaign's total inputs and wall-clock duration.
func WithBudget(b Budget) CampaignOption {
	return func(c *campaignConfig) { c.budget = b }
}

// WithSeed sets the campaign seed. Units that do not pin their own seed get
// a per-unit seed derived from it and their plan index, so distinct units
// explore distinct corners of the input space while staying reproducible.
func WithSeed(seed int64) CampaignOption {
	return func(c *campaignConfig) { c.seed = seed }
}

// WithFuzzSeeds sets the default number of grammar-fuzzed seed messages per
// unit (8 when unset).
func WithFuzzSeeds(n int) CampaignOption {
	return func(c *campaignConfig) {
		if n > 0 {
			c.fuzzSeeds = n
		}
	}
}

// WithConcolic toggles concolic input derivation. It is on by default;
// disabling leaves pure grammar-based fuzzing (the ablation in experiment
// E5), whose fixed corpus additionally fans out in parallel within a unit.
func WithConcolic(enabled bool) CampaignOption {
	return func(c *campaignConfig) { c.useConcolic = enabled }
}

// WithProperties sets the checked properties; unset selects
// checker.DefaultProperties for the topology. Calling it with no arguments
// explicitly disables property checking.
func WithProperties(props ...checker.Property) CampaignOption {
	return func(c *campaignConfig) { c.properties = append([]checker.Property{}, props...) }
}

// WithCodeFaults installs the given code faults on every shadow clone
// (mirroring the faulty binary running on the deployed nodes).
func WithCodeFaults(fs ...faults.CodeFault) CampaignOption {
	return func(c *campaignConfig) { c.codeFaults = append([]faults.CodeFault(nil), fs...) }
}

// WithClusterOptions sets the options used when restoring shadow clusters
// from the snapshot; they should match the deployed cluster's options.
func WithClusterOptions(opts cluster.Options) CampaignOption {
	return func(c *campaignConfig) { c.clusterOptions = opts }
}

// WithPooledClones toggles the pooled shadow-cluster runtime (on by default).
// When enabled, workers lease shadow clusters from a ClonePool that rewinds
// returned clones to the snapshot in place; when disabled, every explored
// input pays for a cold cluster.FromSnapshot rebuild (the pre-pool behavior,
// kept as the baseline the E9 experiment measures against). Both modes
// explore identical states and find identical detections.
func WithPooledClones(enabled bool) CampaignOption {
	return func(c *campaignConfig) { c.pooledClones = enabled }
}

// WithSnapshotStore runs the campaign against a pre-taken consistent cut
// instead of snapshotting the deployed cluster inside Run. The store's
// snapshot is the explored state; the campaign never touches the live
// cluster (which may be nil), so exploration can proceed while the
// deployment keeps running. The live runtime uses this to drive back-to-back
// shadow campaigns against each checkpoint epoch. The reported
// SnapshotDuration is (near) zero — the checkpoint pause was paid, and is
// reported, by whoever took the cut — and FullStateBytes is derived from the
// store's per-node encodings.
func WithSnapshotStore(store *checkpoint.Store) CampaignOption {
	return func(c *campaignConfig) { c.store = store }
}

// WithClonePool shares a caller-owned clone pool instead of building one per
// campaign. Only meaningful together with WithSnapshotStore, and the pool
// must be over that same store: the live runtime runs several back-to-back
// scenario campaigns against one epoch, and sharing the pool amortizes the
// cold clone builds to one per worker per epoch instead of one per worker
// per campaign. CampaignResult.CloneStats reports only this campaign's
// share of the pool's activity. Campaigns sharing a pool must run
// sequentially (each campaign's workers already serialize on their own
// leases; two concurrent campaigns would interleave stats attribution).
func WithClonePool(pool *cluster.ClonePool) CampaignOption {
	return func(c *campaignConfig) { c.clonePool = pool }
}

// WithClonePrelude registers fn to run on every leased shadow clone after
// code faults are installed and before the explored input is injected. The
// live runtime uses it to prime clones with a scenario's churn; fn must be
// deterministic (it runs once per explored input, on pooled and cold clones
// alike) and must only touch the given clone.
func WithClonePrelude(fn func(shadow *cluster.Cluster)) CampaignOption {
	return func(c *campaignConfig) { c.prelude = fn }
}

// WithShadowMaxEvents bounds each clone run (20000 when unset).
func WithShadowMaxEvents(n int) CampaignOption {
	return func(c *campaignConfig) {
		if n > 0 {
			c.shadowMaxEvents = n
		}
	}
}

// WithEventBuffer sets the Events channel buffer (256 when unset). A slow
// consumer eventually backpressures the campaign once the buffer fills.
func WithEventBuffer(n int) CampaignOption {
	return func(c *campaignConfig) {
		if n > 0 {
			c.eventBuffer = n
		}
	}
}

// WithOnEvent registers a synchronous event callback, an alternative to the
// Events channel. The callback runs on worker goroutines and must be fast.
func WithOnEvent(fn func(Event)) CampaignOption {
	return func(c *campaignConfig) { c.onEvent = fn }
}

// snapshotStats records the campaign-level snapshot measurements copied into
// every per-unit Result.
type snapshotStats struct {
	SnapshotDuration time.Duration
	SnapshotBytes    int
	SnapshotNodes    int
	InFlightMessages int
	FullStateBytes   int
}

// Campaign orchestrates DiCE exploration of one deployed cluster: a strategy
// plans (explorer, peer) units, a worker pool executes their clone runs in
// parallel over one shared consistent snapshot, and detections stream out as
// they are found. Construct with NewCampaign, subscribe with Events, then
// call Run once.
type Campaign struct {
	live *cluster.Cluster
	topo *topology.Topology
	cfg  campaignConfig

	em   emitter
	pool *pool

	// populated by Run
	snap      *checkpoint.Snapshot
	snapStats snapshotStats
	props     []checker.Property
	// clones is the pooled shadow-cluster runtime workers lease from (nil
	// when pooling is disabled, in which case every clone is a cold
	// FromSnapshot rebuild accounted in coldStats).
	clones *cluster.ClonePool
	// cloneBase is the shared pool's stats at campaign start (zero when the
	// campaign owns its pool): CloneStats reports the delta, so a shared
	// pool's earlier campaigns are not re-counted.
	cloneBase cluster.PoolStats
	coldMu    sync.Mutex
	coldStats cluster.PoolStats
	// fed is the federation runtime (nil in centralized campaigns).
	fed *fedState

	// testCloneFault, when set by fault-injecting tests, runs after every
	// successful clone lease; a returned error simulates an execution or
	// checking failure mid-clone.
	testCloneFault func() error
	// testRetainBusLog makes the federation bus retain every envelope so
	// the privacy test can re-serialize the exchanged traffic; off by
	// default, since an unbounded campaign would accumulate the log forever.
	testRetainBusLog bool

	// detSeen dedupes streamed detection events campaign-wide: a violation
	// already reported by another unit is a per-unit result, not news.
	detMu   sync.Mutex
	detSeen map[string]bool

	mu      sync.Mutex
	started bool
}

// emitDetection streams a detection event unless an equivalent violation was
// already streamed by any unit of this campaign.
func (c *Campaign) emitDetection(u Unit, idx int, d *Detection) {
	c.detMu.Lock()
	dup := c.detSeen[d.Violation.Key()]
	if !dup {
		c.detSeen[d.Violation.Key()] = true
	}
	c.detMu.Unlock()
	if !dup {
		c.em.emit(Event{Kind: EventDetection, Unit: u, UnitIndex: idx, Detection: d})
	}
}

// NewCampaign returns a campaign over the deployed cluster.
func NewCampaign(live *cluster.Cluster, topo *topology.Topology, opts ...CampaignOption) *Campaign {
	cfg := defaultCampaignConfig()
	for _, o := range opts {
		o(&cfg)
	}
	c := &Campaign{live: live, topo: topo, cfg: cfg, pool: newPool(cfg.workers), detSeen: make(map[string]bool)}
	c.em.callback = cfg.onEvent
	return c
}

// Events returns the campaign's event stream. Call it before Run and consume
// until the channel closes (Run closes it on return). Detections arrive as
// they are found, before Run returns.
func (c *Campaign) Events() <-chan Event {
	c.em.mu.Lock()
	defer c.em.mu.Unlock()
	if c.em.ch == nil {
		c.em.ch = make(chan Event, c.cfg.eventBuffer)
		if c.em.closed {
			// Run already finished: hand back a closed channel so a ranging
			// consumer terminates instead of blocking forever.
			close(c.em.ch)
		}
	}
	return c.em.ch
}

// ErrCampaignReused is returned when Run is called more than once.
var ErrCampaignReused = errors.New("dice: campaign already run; construct a new one")

// ErrNoDeployment is returned when a campaign has neither a live cluster to
// snapshot nor a pre-taken snapshot store (WithSnapshotStore) to explore.
var ErrNoDeployment = errors.New("dice: campaign requires a deployed cluster or a snapshot store")

// CampaignResult aggregates a finished (or cancelled) campaign.
type CampaignResult struct {
	// Strategy is the planning strategy's name.
	Strategy string
	// Workers is the worker-pool size the campaign ran with.
	Workers int

	// Snapshot measurements of the shared consistent cut.
	SnapshotDuration time.Duration
	SnapshotBytes    int
	SnapshotNodes    int
	InFlightMessages int
	// FullStateBytes is what a single full-state exchange would have cost,
	// for comparison with DisclosedBytes.
	FullStateBytes int

	// Units holds the per-unit results in plan order (nil entries for units
	// that failed or never ran). UnitErrors is parallel to Units.
	Units      []*Result
	UnitErrors []error

	// Detections is the merged detection list: per-unit detections
	// deduplicated by violation key, in plan order.
	Detections []Detection

	InputsExplored int
	DisclosedBytes int
	Duration       time.Duration
	// Cancelled reports that the caller's context ended the campaign early
	// (cancellation or a caller-imposed deadline); the result aggregates
	// whatever completed before that. Exhausting Budget.MaxDuration is NOT
	// cancellation — it sets BudgetExhausted instead.
	Cancelled bool
	// BudgetExhausted reports that the campaign stopped because its own
	// Budget.MaxDuration elapsed. That is a normal way for a budgeted
	// campaign to finish, so Run returns a nil error for it.
	BudgetExhausted bool

	// Federated reports whether the campaign ran under WithFederation.
	// Disclosed aggregates the checker.Summary traffic that crossed domain
	// boundaries, and Domains is the per-domain breakdown in partition
	// order. All three are zero in centralized campaigns.
	Federated bool
	Disclosed DisclosureStats
	Domains   []DomainResult

	// PooledClones reports whether the campaign ran on the pooled
	// shadow-cluster runtime; CloneStats breaks the clone lifecycle down
	// into cold rebuilds vs in-place resets with their cumulative cost.
	// With pooling enabled, ColdBuilds converges to the worker-pool size and
	// every further input is a reset.
	PooledClones bool
	CloneStats   cluster.PoolStats

	// Remote carries the distribution statistics of a campaign run under
	// WithRemoteExecution (nil otherwise). Detections, Disclosed and the
	// other aggregates above are computed by the same local machinery either
	// way — only where the clones ran differs.
	Remote *RemoteStats
}

// DetectionsByClass groups the merged detections by fault class.
func (r *CampaignResult) DetectionsByClass() map[checker.FaultClass][]Detection {
	out := make(map[checker.FaultClass][]Detection)
	for _, d := range r.Detections {
		out[d.Class] = append(out[d.Class], d)
	}
	return out
}

// FirstDetection returns the first merged detection of the class, or nil.
func (r *CampaignResult) FirstDetection(class checker.FaultClass) *Detection {
	for i := range r.Detections {
		if r.Detections[i].Class == class {
			return &r.Detections[i]
		}
	}
	return nil
}

// Detected reports whether any fault of the given class was found.
func (r *CampaignResult) Detected(class checker.FaultClass) bool {
	return r.FirstDetection(class) != nil
}

// planUnits asks the strategy for units (per domain, in a federated
// campaign) and fills in budget, fuzz seeds and per-unit seeds.
func (c *Campaign) planUnits() ([]Unit, error) {
	var units []Unit
	var err error
	if c.cfg.partition != nil {
		units, err = c.planFederatedUnits()
	} else {
		units, err = c.cfg.strategy.Plan(c.topo, c.cfg.explorers)
	}
	if err != nil {
		return nil, err
	}
	if len(units) == 0 {
		return nil, errors.New("dice: strategy planned no units")
	}
	// The budget funds the units that do not pin MaxInputs themselves.
	unpinned, pinnedInputs := 0, 0
	for i := range units {
		if units[i].MaxInputs <= 0 {
			unpinned++
		} else {
			pinnedInputs += units[i].MaxInputs
		}
	}
	per, rem := 0, 0
	if c.cfg.budget.TotalInputs > 0 && unpinned > 0 {
		remaining := c.cfg.budget.TotalInputs - pinnedInputs
		if remaining < unpinned {
			remaining = unpinned // minimum one input per unit
		}
		per = remaining / unpinned
		rem = remaining % unpinned
	}
	nextShare := 0
	for i := range units {
		if units[i].MaxInputs <= 0 {
			n := 64
			if c.cfg.budget.TotalInputs > 0 {
				n = per
				if nextShare < rem {
					n++
				}
				nextShare++
			}
			units[i].MaxInputs = n
		}
		if units[i].FuzzSeeds <= 0 {
			units[i].FuzzSeeds = c.cfg.fuzzSeeds
		}
		if units[i].Seed == 0 {
			units[i].Seed = c.cfg.seed + int64(i)*1000003
		}
	}
	return units, nil
}

// Run executes the campaign: plan units, take one consistent snapshot, fan
// the units out over the worker pool, stream events, and aggregate. It
// honors ctx cancellation and deadlines: on caller-driven early termination
// it returns the partial result together with the context's error, with
// CampaignResult.Cancelled set. Exhausting Budget.MaxDuration is different —
// the budget belongs to the campaign, so running out of it is a normal
// completion: the partial result comes back with BudgetExhausted set and a
// nil error. Run may be called once per campaign.
func (c *Campaign) Run(ctx context.Context) (*CampaignResult, error) {
	if c.topo == nil {
		return nil, ErrNoTopology
	}
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return nil, ErrCampaignReused
	}
	c.started = true
	c.mu.Unlock()

	// The budget deadline is layered on top of the caller's context so the
	// two terminations stay distinguishable: parent.Err() reports the
	// caller's cancellation, ctx.Err() without a parent error reports budget
	// expiry. The expiry signal comes from a timer channel rather than
	// context.WithTimeout so tests can drive it deterministically.
	parent := ctx
	if c.cfg.budget.MaxDuration > 0 {
		budgetCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		if fire := c.cfg.budgetTimer; fire != nil {
			go func(ch <-chan time.Time) {
				select {
				case <-ch:
					cancel()
				case <-budgetCtx.Done():
				}
			}(fire(c.cfg.budget.MaxDuration))
		} else {
			// A real timer, stopped when the campaign finishes first so a
			// short campaign with a long budget leaves nothing pending.
			timer := time.NewTimer(c.cfg.budget.MaxDuration)
			go func() {
				defer timer.Stop()
				select {
				case <-timer.C:
					cancel()
				case <-budgetCtx.Done():
				}
			}()
		}
		ctx = budgetCtx
	}

	start := time.Now()
	c.em.start = start
	defer c.em.close()

	if c.cfg.partition != nil {
		fed, err := newFedState(c)
		if err != nil {
			return nil, err
		}
		c.fed = fed
	}
	units, err := c.planUnits()
	if err != nil {
		return nil, err
	}
	startEv := Event{Kind: EventCampaignStart, Units: len(units), Workers: c.cfg.workers}
	if c.fed != nil {
		startEv.Domains = len(c.fed.partition.Domains)
	}
	c.em.emit(startEv)

	// One consistent cut, shared by every unit: checkpoints are immutable
	// once taken, so concurrent clone restores need no copies. The cut is
	// decoded into a restore-ready store exactly once; workers then lease
	// pooled shadow clusters (or cold-rebuild, when pooling is off) from it.
	// A campaign constructed WithSnapshotStore explores a cut somebody else
	// already took and decoded — it never touches the live cluster.
	snapStart := time.Now()
	if c.cfg.store != nil {
		c.snap = c.cfg.store.Snapshot()
		if c.cfg.pooledClones && c.cfg.remote == nil {
			if c.cfg.clonePool != nil {
				c.clones = c.cfg.clonePool
				c.cloneBase = c.clones.Stats()
			} else {
				c.clones = cluster.NewClonePool(c.topo, c.cfg.store, c.cfg.clusterOptions)
			}
		}
		c.snapStats = snapshotStats{
			SnapshotNodes:    len(c.snap.Nodes),
			InFlightMessages: len(c.snap.InFlight),
		}
		if sizes, err := c.cfg.store.Sizes(); err == nil {
			c.snapStats.SnapshotBytes = sizes.TotalBytes
			// The store's baseline encodings are what a full-state exchange
			// would ship; the live cluster (possibly nil) stays untouched.
			for _, n := range sizes.PerNodeBytes {
				c.snapStats.FullStateBytes += n
			}
		}
	} else {
		if c.live == nil {
			return nil, ErrNoDeployment
		}
		c.snap = c.live.Snapshot()
		if c.cfg.pooledClones && c.cfg.remote == nil {
			store, err := checkpoint.NewStore(c.snap)
			if err != nil {
				return nil, err
			}
			c.clones = cluster.NewClonePool(c.topo, store, c.cfg.clusterOptions)
		}
		c.snapStats = snapshotStats{
			SnapshotDuration: time.Since(snapStart),
			SnapshotNodes:    len(c.snap.Nodes),
			InFlightMessages: len(c.snap.InFlight),
			FullStateBytes:   checker.FullStateDisclosure(c.live),
		}
		if sizes, err := checkpoint.Measure(c.snap); err == nil {
			c.snapStats.SnapshotBytes = sizes.TotalBytes
		}
	}
	c.props = c.cfg.properties
	if c.props == nil {
		c.props = checker.DefaultProperties(c.topo)
	}
	if c.fed != nil {
		if err := validateFederatedProps(c.props); err != nil {
			return nil, err
		}
	}
	c.em.emit(Event{Kind: EventSnapshot})

	results := make([]*Result, len(units))
	unitErrs := make([]error, len(units))
	var remoteErr error
	if c.cfg.remote != nil {
		// Validate and project the configuration onto the wire-shippable
		// spec, then hand the whole plan to the executor. Everything after —
		// merge, dedupe, federation aggregation — is the in-process path.
		spec, err := c.remoteSpec()
		if err != nil {
			return nil, err
		}
		remoteErr = c.runRemote(ctx, spec, units, results, unitErrs)
	} else {
		var wg sync.WaitGroup
		for i := range units {
			wg.Add(1)
			go func(i int, u Unit) {
				defer wg.Done()
				if ctx.Err() != nil {
					unitErrs[i] = ctx.Err()
					return
				}
				c.em.emit(Event{Kind: EventUnitStart, Unit: u, UnitIndex: i})
				r, err := c.runUnit(ctx, i, u)
				results[i], unitErrs[i] = r, err
				c.em.emit(Event{Kind: EventUnitEnd, Unit: u, UnitIndex: i, Result: r, Err: err})
			}(i, units[i])
		}
		wg.Wait()
	}

	res := &CampaignResult{
		Strategy:         c.cfg.strategy.Name(),
		Workers:          c.cfg.workers,
		SnapshotDuration: c.snapStats.SnapshotDuration,
		SnapshotBytes:    c.snapStats.SnapshotBytes,
		SnapshotNodes:    c.snapStats.SnapshotNodes,
		InFlightMessages: c.snapStats.InFlightMessages,
		FullStateBytes:   c.snapStats.FullStateBytes,
		Units:            results,
		UnitErrors:       unitErrs,
		Cancelled:        parent.Err() != nil,
		BudgetExhausted:  parent.Err() == nil && ctx.Err() != nil,
		PooledClones:     c.cfg.pooledClones && c.cfg.remote == nil,
	}
	c.coldMu.Lock()
	res.CloneStats = c.coldStats
	c.coldMu.Unlock()
	if c.clones != nil {
		res.CloneStats = res.CloneStats.Add(c.clones.Stats().Sub(c.cloneBase))
	}
	seen := make(map[string]bool)
	// detsByUnit counts the campaign-unique detections each unit contributed
	// first (plan order), feeding the federated per-domain attribution.
	detsByUnit := make([]int, len(results))
	for i, r := range results {
		if r == nil {
			continue
		}
		res.InputsExplored += r.InputsExplored
		res.DisclosedBytes += r.DisclosedBytes
		for _, d := range r.Detections {
			if seen[d.Violation.Key()] {
				continue
			}
			seen[d.Violation.Key()] = true
			res.Detections = append(res.Detections, d)
			detsByUnit[i]++
		}
	}
	if c.fed != nil {
		c.aggregateFederation(res, units, detsByUnit)
	}
	if c.cfg.remote != nil {
		stats := c.cfg.remote.RemoteStats()
		res.Remote = &stats
	}
	res.Duration = time.Since(start)
	c.em.emit(Event{Kind: EventCampaignEnd})

	var hard []error
	if remoteErr != nil {
		hard = append(hard, remoteErr)
	}
	for _, e := range unitErrs {
		if e != nil && !errors.Is(e, context.Canceled) && !errors.Is(e, context.DeadlineExceeded) && !errors.Is(e, errRemoteAborted) {
			hard = append(hard, e)
		}
	}
	if err := errors.Join(hard...); err != nil {
		return res, err
	}
	// Caller cancellation is an error; budget expiry is a normal completion
	// (reported via res.BudgetExhausted).
	if err := parent.Err(); err != nil {
		return res, err
	}
	return res, nil
}
