package dice

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/concolic"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/fuzz"
)

// pool bounds the number of clone executions in flight across the whole
// campaign. Units run concurrently, but every clone-execute-check acquires a
// slot first, so WithWorkers(n) means at most n shadow clusters are being
// restored and driven at any moment.
type pool struct {
	sem chan struct{}
}

func newPool(workers int) *pool {
	if workers < 1 {
		workers = 1
	}
	return &pool{sem: make(chan struct{}, workers)}
}

// acquire blocks until a worker slot is free or the context is cancelled.
func (p *pool) acquire(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (p *pool) release() { <-p.sem }

// cloneOutcome is what one clone execution produced.
type cloneOutcome struct {
	violations []checker.Violation
	disclosed  int
	elapsed    time.Duration
	executed   bool
}

// leaseClone obtains a shadow cluster in snapshot state: from the clone pool
// (which rewinds a returned clone in place, or cold-builds from the decoded
// store when the pool is empty), or — with pooling disabled — via a cold
// FromSnapshot rebuild, timed into the campaign's clone stats. The returned
// release func must be called when the caller is done with the clone.
//
//dice:lease
func (c *Campaign) leaseClone() (*cluster.Cluster, func(), error) {
	if c.clones != nil {
		shadow, err := c.clones.Lease()
		if err != nil {
			return nil, nil, err
		}
		return shadow, func() { c.clones.Release(shadow) }, nil
	}
	start := time.Now()
	shadow, err := cluster.FromSnapshot(c.topo, c.snap, c.cfg.clusterOptions)
	elapsed := time.Since(start)
	if err != nil {
		return nil, nil, err
	}
	c.coldMu.Lock()
	c.coldStats.Leases++
	c.coldStats.ColdBuilds++
	c.coldStats.ColdBuildTime += elapsed
	c.coldMu.Unlock()
	// Cold clones are not pooled, but their release is still accounted so
	// Leases == Releases holds for both lifecycles.
	return shadow, func() {
		c.coldMu.Lock()
		c.coldStats.Releases++
		c.coldMu.Unlock()
	}, nil
}

// runClone leases a shadow cluster in snapshot state, subjects the unit's
// explorer to one input, runs the clone to quiescence and checks the
// properties. It is the hot path the worker pool parallelizes: every call is
// fully isolated (own clone, own machine), so clone executions are
// embarrassingly parallel.
func (c *Campaign) runClone(ctx context.Context, u Unit, in *concolic.Input, m *concolic.Machine) (cloneOutcome, error) {
	if err := c.pool.acquire(ctx); err != nil {
		return cloneOutcome{}, err
	}
	defer c.pool.release()
	// The wait for a worker slot can outlive the campaign; don't pay for a
	// lease (or charge the pool's stats) for an input that will never run.
	if err := ctx.Err(); err != nil {
		return cloneOutcome{}, err
	}
	shadow, release, err := c.leaseClone()
	if err != nil {
		return cloneOutcome{}, fmt.Errorf("dice: clone snapshot: %w", err)
	}
	// Every path out of this function — execution failure, check failure,
	// panic unwinding — must hand the clone back, or pooled clones leak and
	// the pool's Outstanding count drifts. The deferred call is the single
	// release point; the fault-injecting tests exercise it.
	defer release()
	if c.testCloneFault != nil {
		if err := c.testCloneFault(); err != nil {
			return cloneOutcome{}, fmt.Errorf("dice: clone execute: %w", err)
		}
	}
	faults.InstallCodeFaults(shadow.Routers, c.cfg.codeFaults...)
	if c.cfg.prelude != nil {
		// Scenario priming: deterministic churn injected before the explored
		// input, so every clone of this campaign starts from the same primed
		// state (the live runtime records the same injections as the
		// detection's replayable trace). The churn must fully settle before
		// the machine is armed — an armed router substitutes the machine's
		// input region for the next UPDATE from the explored peer, which
		// would swallow a still-undelivered prelude message.
		c.cfg.prelude(shadow)
		shadow.Net.RunQuiescent(c.cfg.shadowMaxEvents)
	}
	shadow.Router(u.Explorer).ExploreNextUpdate(m, u.FromPeer)
	shadow.InjectRaw(u.FromPeer, u.Explorer, wireUpdate(in.Region("update")))
	shadow.Net.RunQuiescent(c.cfg.shadowMaxEvents)

	// An out-of-process node whose subprocess died during the execution has
	// been silently dropping traffic since the crash; its state is not the
	// state this input produces. Surface a unit error (and let the deferred
	// release discard the dead clone) instead of checking fabricated results.
	if err := shadow.Unhealthy(); err != nil {
		return cloneOutcome{}, fmt.Errorf("dice: clone execute: %w", err)
	}

	var violations []checker.Violation
	disclosed := 0
	if c.fed != nil {
		violations, disclosed = c.checkCloneFederated(shadow, u)
	} else {
		report := checker.CheckAll(shadow, c.props)
		violations, disclosed = report.Violations(), report.DisclosedBytes()
	}
	return cloneOutcome{
		violations: violations,
		disclosed:  disclosed,
		elapsed:    time.Since(c.em.start),
		executed:   true,
	}, nil
}

// seedInputs builds the unit's seed corpus: grammar-fuzzed UPDATEs drawn from
// the topology's prefix and AS pools, plus one "observed" message
// re-announcing a prefix the peer legitimately originates.
func (c *Campaign) seedInputs(u Unit) (*fuzz.Generator, []*concolic.Input) {
	var pools fuzz.Options
	pools.Seed = u.Seed
	for _, n := range c.topo.Nodes {
		pools.Prefixes = append(pools.Prefixes, n.Prefixes...)
		pools.ASNs = append(pools.ASNs, n.AS)
		pools.NextHops = append(pools.NextHops, uint32(n.RouterID))
	}
	gen := fuzz.New(pools)
	seeds := gen.Corpus(u.FuzzSeeds)
	if peerNode := c.topo.Node(u.FromPeer); peerNode != nil && len(peerNode.Prefixes) > 0 {
		attrs := &bgp.PathAttributes{Origin: bgp.OriginIGP, ASPath: []bgp.ASN{peerNode.AS}, NextHop: uint32(peerNode.RouterID)}
		observed := &bgp.Update{Attrs: attrs, NLRI: []bgp.Prefix{peerNode.Prefixes[0]}}
		seeds = append(seeds, concolic.NewInput("update", observed.EncodeBody()))
	}
	return gen, seeds
}

// runUnit executes one unit of the campaign plan over the shared snapshot and
// returns its per-unit result. Concolic units run their generational search
// sequentially (each input's constraints seed the next), with the clone
// executions gated by the worker pool; fuzz-only units fan all inputs out in
// parallel, since their corpus is fixed up front.
func (c *Campaign) runUnit(ctx context.Context, idx int, u Unit) (*Result, error) {
	unitStart := time.Now()
	res := &Result{
		Explorer:         u.Explorer,
		FromPeer:         u.FromPeer,
		Domain:           u.Domain,
		SnapshotDuration: c.snapStats.SnapshotDuration,
		SnapshotBytes:    c.snapStats.SnapshotBytes,
		SnapshotNodes:    c.snapStats.SnapshotNodes,
		InFlightMessages: c.snapStats.InFlightMessages,
		FullStateBytes:   c.snapStats.FullStateBytes,
	}
	gen, seeds := c.seedInputs(u)

	var err error
	if c.cfg.useConcolic {
		err = c.runUnitConcolic(ctx, idx, u, seeds, res)
	} else {
		err = c.runUnitFuzz(ctx, idx, u, gen, seeds, res)
	}
	res.Duration = time.Since(unitStart)
	return res, err
}

// runUnitConcolic drives the sequential generational search: execute an
// input, negate its branch constraints, enqueue the solved children.
func (c *Campaign) runUnitConcolic(ctx context.Context, idx int, u Unit, seeds []*concolic.Input, res *Result) error {
	seen := make(map[string]bool)
	executed := 0

	execute := func(in *concolic.Input, m *concolic.Machine) error {
		out, err := c.runClone(ctx, u, in, m)
		if err != nil {
			if ctx.Err() != nil {
				return nil // cancelled while waiting for a worker slot
			}
			return err
		}
		executed++
		inputIndex := executed
		res.DisclosedBytes += out.disclosed
		newFinding := false
		for _, v := range out.violations {
			if seen[v.Key()] {
				continue
			}
			seen[v.Key()] = true
			newFinding = true
			d := Detection{
				Violation:  v,
				Class:      v.Class,
				InputIndex: inputIndex,
				Input:      in.Clone(),
				Elapsed:    out.elapsed,
			}
			res.Detections = append(res.Detections, d)
			c.emitDetection(u, idx, &d)
		}
		if newFinding {
			return fmt.Errorf("dice: %d property violations", len(out.violations))
		}
		return nil
	}

	explorer := concolic.NewExplorer(execute, concolic.ExplorerOptions{
		MaxExecutions: u.MaxInputs,
		Seed:          u.Seed,
	})
	for _, s := range seeds {
		explorer.AddSeed(s)
	}
	report, err := explorer.RunWhile(func() bool { return ctx.Err() == nil })
	if err != nil {
		return err
	}
	res.ExplorerStats = explorer.Stats()
	// Count the clones actually driven, not explorer steps: a step aborted by
	// cancellation while waiting for a worker slot explored nothing.
	res.InputsExplored = executed
	// Transient clone failures are tolerated — the explorer routes around
	// them and the pool discards the dead clone. But a unit where *every*
	// execution failed (a crashing subprocess backend, a broken store) found
	// nothing and proved nothing; surface its first failure as the unit error
	// instead of reporting a silently vacuous result.
	if executed == 0 && len(report.Errors) > 0 {
		return fmt.Errorf("dice: unit %s from %s explored no inputs: %w", u.Explorer, u.FromPeer, report.Errors[0].Err)
	}
	return nil
}

// runUnitFuzz runs the fuzzing-only ablation: the corpus is fixed up front,
// so every input executes independently on the worker pool. Detections are
// streamed as soon as any worker finds them; the aggregated result is rebuilt
// in input order afterwards, so it is deterministic regardless of the worker
// count (streamed events may attribute a duplicated violation to a different
// input than the aggregate does).
func (c *Campaign) runUnitFuzz(ctx context.Context, idx int, u Unit, gen *fuzz.Generator, seeds []*concolic.Input, res *Result) error {
	for len(seeds) < u.MaxInputs {
		seeds = append(seeds, gen.Corpus(1)...)
	}
	if len(seeds) > u.MaxInputs {
		seeds = seeds[:u.MaxInputs]
	}

	outcomes := make([]cloneOutcome, len(seeds))
	var (
		wg        sync.WaitGroup
		streamMu  sync.Mutex
		streamed  = make(map[string]bool)
		firstErr  error
		firstErrM sync.Once
	)
	for i, s := range seeds {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int, s *concolic.Input) {
			defer wg.Done()
			m := concolic.NewMachine(s.Clone(), concolic.MachineOptions{})
			out, err := c.runClone(ctx, u, m.Input(), m)
			if err != nil {
				if ctx.Err() == nil {
					firstErrM.Do(func() { firstErr = err })
				}
				return
			}
			outcomes[i] = out
			streamMu.Lock()
			for _, v := range out.violations {
				if streamed[v.Key()] {
					continue
				}
				streamed[v.Key()] = true
				d := Detection{Violation: v, Class: v.Class, InputIndex: i + 1, Input: s.Clone(), Elapsed: out.elapsed}
				c.emitDetection(u, idx, &d)
			}
			streamMu.Unlock()
		}(i, s)
	}
	wg.Wait()

	seen := make(map[string]bool)
	for i := range outcomes {
		if !outcomes[i].executed {
			continue
		}
		res.InputsExplored++
		res.DisclosedBytes += outcomes[i].disclosed
		for _, v := range outcomes[i].violations {
			if seen[v.Key()] {
				continue
			}
			seen[v.Key()] = true
			res.Detections = append(res.Detections, Detection{
				Violation:  v,
				Class:      v.Class,
				InputIndex: i + 1,
				Input:      seeds[i].Clone(),
				Elapsed:    outcomes[i].elapsed,
			})
		}
	}
	return firstErr
}
