package dice

import (
	"testing"

	"github.com/dice-project/dice/internal/topology"
)

// tieTopo builds a topology whose equal-degree nodes are deliberately listed
// in non-lexicographic order, so the tie-break cannot hide behind iteration
// order.
func tieTopo(t *testing.T) *topology.Topology {
	t.Helper()
	topo := topology.Line(4) // R1-R2-R3-R4: R2 and R3 both have degree 2
	// Reverse the node list so R3 is visited before R2.
	for i, j := 0, len(topo.Nodes)-1; i < j; i, j = i+1, j-1 {
		topo.Nodes[i], topo.Nodes[j] = topo.Nodes[j], topo.Nodes[i]
	}
	return topo
}

func TestHighestDegreeTieBreak(t *testing.T) {
	topo := tieTopo(t)
	if got := highestDegreeNode(topo); got != "R2" {
		t.Errorf("highestDegreeNode = %s, want lexicographically smallest equal-degree node R2", got)
	}
	// The legacy engine default goes through the same fixed code path.
	eng := New(nil, topo, Options{})
	if got := eng.chooseExplorer(); got != "R2" {
		t.Errorf("engine default explorer = %s, want R2", got)
	}
	// An explicit explorer always wins.
	eng = New(nil, topo, Options{Explorer: "R4"})
	if got := eng.chooseExplorer(); got != "R4" {
		t.Errorf("explicit explorer overridden: got %s", got)
	}
}

func TestDegreeStrategyPlan(t *testing.T) {
	topo := topology.Star(4) // hub R1 with leaves R2..R4
	units, err := DegreeStrategy{}.Plan(topo, nil)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(units) != 1 || units[0].Explorer != "R1" || units[0].FromPeer != "R2" {
		t.Errorf("degree plan = %+v, want one unit R1<-R2", units)
	}
	units, err = DegreeStrategy{PeersPerExplorer: -1}.Plan(topo, nil)
	if err != nil {
		t.Fatalf("Plan all peers: %v", err)
	}
	if len(units) != 3 {
		t.Errorf("all-peers plan = %d units, want 3", len(units))
	}
	if _, err := (DegreeStrategy{}).Plan(topo, []string{"R99"}); err == nil {
		t.Errorf("unknown explorer must fail planning")
	}
}

func TestRoundRobinStrategyPlan(t *testing.T) {
	topo := topology.Ring(4)
	units, err := RoundRobinStrategy{Units: 6}.Plan(topo, []string{"R1", "R2"})
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(units) != 6 {
		t.Fatalf("round-robin planned %d units, want 6", len(units))
	}
	// Explorers alternate; peers rotate per explorer without repeating until
	// the neighbor set is exhausted.
	for i, u := range units {
		wantEx := []string{"R1", "R2"}[i%2]
		if u.Explorer != wantEx {
			t.Errorf("unit %d explorer = %s, want %s", i, u.Explorer, wantEx)
		}
	}
	if units[0].FromPeer == units[2].FromPeer {
		t.Errorf("round-robin did not rotate peers for R1: %+v", units)
	}
}

func TestAllNodesStrategyPlan(t *testing.T) {
	topo := topology.Line(3)
	units, err := AllNodesStrategy{}.Plan(topo, nil)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if len(units) != 3 {
		t.Fatalf("all-nodes planned %d units, want 3", len(units))
	}
	seen := map[string]bool{}
	for _, u := range units {
		seen[u.Explorer] = true
		if u.FromPeer == "" {
			t.Errorf("unit %v missing peer", u)
		}
	}
	for _, name := range topo.NodeNames() {
		if !seen[name] {
			t.Errorf("all-nodes skipped %s", name)
		}
	}
}

func TestFixedStrategyFillsPeer(t *testing.T) {
	topo := topology.Line(3)
	units, err := (fixedStrategy{units: []Unit{{Explorer: "R2"}}}).Plan(topo, nil)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if units[0].FromPeer != "R1" {
		t.Errorf("fixed strategy peer default = %s, want R1", units[0].FromPeer)
	}
	if _, err := (fixedStrategy{}).Plan(topo, nil); err == nil {
		t.Errorf("fixed strategy with no units must fail")
	}
}
