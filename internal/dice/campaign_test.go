package dice

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/topology"
)

// hijackedLine builds a converged Line(n) deployment with a mis-origination
// planted on the last router.
func hijackedLine(t *testing.T, n int) (*topology.Topology, *cluster.Cluster, cluster.Options) {
	t.Helper()
	topo := topology.Line(n)
	victim := topo.Nodes[0].Prefixes[0]
	last := topo.Nodes[n-1].Name
	opts := cluster.Options{Seed: 1, ConfigOverride: faults.ApplyConfigFaults(faults.MisOrigination{Router: last, Prefix: victim})}
	c := cluster.MustBuild(topo, opts)
	c.Converge()
	return topo, c, opts
}

func detectionKeys(ds []Detection) []string {
	keys := make([]string, 0, len(ds))
	for _, d := range ds {
		keys = append(keys, d.Violation.Key())
	}
	sort.Strings(keys)
	return keys
}

func TestCampaignOptionDefaults(t *testing.T) {
	c := NewCampaign(nil, nil)
	if c.cfg.workers != runtime.NumCPU() {
		t.Errorf("default workers = %d, want NumCPU %d", c.cfg.workers, runtime.NumCPU())
	}
	if _, ok := c.cfg.strategy.(DegreeStrategy); !ok {
		t.Errorf("default strategy = %T, want DegreeStrategy", c.cfg.strategy)
	}
	if !c.cfg.useConcolic {
		t.Errorf("concolic should be on by default")
	}
	if c.cfg.fuzzSeeds != 8 || c.cfg.shadowMaxEvents != 20000 {
		t.Errorf("budget defaults wrong: %+v", c.cfg)
	}
	// WithWorkers(0) selects NumCPU, not zero.
	c = NewCampaign(nil, nil, WithWorkers(0))
	if c.cfg.workers != runtime.NumCPU() {
		t.Errorf("WithWorkers(0) = %d workers, want NumCPU", c.cfg.workers)
	}
	// Run without a topology fails like the legacy engine.
	if _, err := NewCampaign(nil, nil).Run(context.Background()); !errors.Is(err, ErrNoTopology) {
		t.Errorf("Run without topology = %v, want ErrNoTopology", err)
	}
}

func TestCampaignDefaultUnitBudget(t *testing.T) {
	topo := topology.Star(4)
	c := NewCampaign(nil, topo)
	units, err := c.planUnits()
	if err != nil {
		t.Fatalf("planUnits: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("degree strategy planned %d units, want 1", len(units))
	}
	if units[0].Explorer != "R1" {
		t.Errorf("default explorer = %s, want hub R1", units[0].Explorer)
	}
	if units[0].MaxInputs != 64 || units[0].FuzzSeeds != 8 {
		t.Errorf("unit defaults = %+v, want 64 inputs / 8 seeds", units[0])
	}
}

func TestCampaignBudgetSplit(t *testing.T) {
	topo := topology.Ring(3)
	c := NewCampaign(nil, topo,
		WithStrategy(AllNodesStrategy{}),
		WithBudget(Budget{TotalInputs: 10}))
	units, err := c.planUnits()
	if err != nil {
		t.Fatalf("planUnits: %v", err)
	}
	if len(units) != 3 {
		t.Fatalf("all-nodes on Ring(3) planned %d units, want 3", len(units))
	}
	total := 0
	for _, u := range units {
		total += u.MaxInputs
	}
	if total != 10 {
		t.Errorf("budget split sums to %d, want 10 (units %+v)", total, units)
	}
	if units[0].MaxInputs != 4 || units[1].MaxInputs != 3 || units[2].MaxInputs != 3 {
		t.Errorf("uneven split should favor earlier units: %+v", units)
	}
	// Distinct units must get distinct derived seeds.
	if units[0].Seed == units[1].Seed || units[1].Seed == units[2].Seed {
		t.Errorf("per-unit seeds not derived: %+v", units)
	}

	// Units that pin MaxInputs keep it and only the remainder is split, so
	// the campaign-wide bound holds when pinned and unpinned units mix.
	c = NewCampaign(nil, topo,
		WithUnits(
			Unit{Explorer: "R1", FromPeer: "R2", MaxInputs: 6},
			Unit{Explorer: "R2"},
			Unit{Explorer: "R3"},
		),
		WithBudget(Budget{TotalInputs: 10}))
	units, err = c.planUnits()
	if err != nil {
		t.Fatalf("planUnits with pinned unit: %v", err)
	}
	if units[0].MaxInputs != 6 {
		t.Errorf("pinned unit lost its MaxInputs: %+v", units[0])
	}
	if units[1].MaxInputs+units[2].MaxInputs != 4 {
		t.Errorf("unpinned units should split the remaining budget (10-6=4): %+v", units)
	}
}

func TestEngineShimEmptyPropertiesDisablesChecking(t *testing.T) {
	topo, live, copts := hijackedLine(t, 3)
	res, err := New(live, topo, Options{
		Explorer:       "R2",
		MaxInputs:      4,
		FuzzSeeds:      2,
		Seed:           1,
		Properties:     []checker.Property{}, // explicitly: check nothing
		ClusterOptions: copts,
	}).Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Detections) != 0 {
		t.Errorf("empty (non-nil) Properties must disable checking, got %d detections", len(res.Detections))
	}
}

func TestCampaignDetectsHijackAndStreams(t *testing.T) {
	topo, live, copts := hijackedLine(t, 3)
	// The callback observes emission time: it runs synchronously on worker
	// goroutines, so a detection callback before Run returns proves
	// streaming; the channel consumer verifies delivery and close.
	var runReturned atomic.Bool
	var earlyDetections atomic.Int64
	campaign := NewCampaign(live, topo,
		WithUnits(Unit{Explorer: "R2", FromPeer: "R3"}),
		WithBudget(Budget{TotalInputs: 8}),
		WithFuzzSeeds(4),
		WithSeed(1),
		WithClusterOptions(copts),
		WithWorkers(2),
		WithOnEvent(func(ev Event) {
			if ev.Kind == EventDetection && !runReturned.Load() {
				earlyDetections.Add(1)
			}
		}))
	events := campaign.Events()

	type streamed struct {
		kind           EventKind
		detectionClass checker.FaultClass
	}
	collected := make(chan []streamed, 1)
	go func() {
		var got []streamed
		for ev := range events {
			s := streamed{kind: ev.Kind}
			if ev.Detection != nil {
				s.detectionClass = ev.Detection.Class
			}
			got = append(got, s)
		}
		collected <- got
	}()

	res, err := campaign.Run(context.Background())
	runReturned.Store(true)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := <-collected

	if !res.Detected(checker.ClassOperatorMistake) {
		t.Fatalf("hijack not detected; detections=%v", res.Detections)
	}
	if res.InputsExplored == 0 || res.SnapshotBytes == 0 || res.SnapshotNodes != 3 {
		t.Errorf("campaign accounting incomplete: %+v", res)
	}
	kinds := map[EventKind]int{}
	for _, s := range got {
		kinds[s.kind]++
	}
	if kinds[EventCampaignStart] != 1 || kinds[EventSnapshot] != 1 || kinds[EventCampaignEnd] != 1 {
		t.Errorf("lifecycle events wrong: %v", kinds)
	}
	if kinds[EventUnitStart] != 1 || kinds[EventUnitEnd] != 1 {
		t.Errorf("unit events wrong: %v", kinds)
	}
	if kinds[EventDetection] == 0 {
		t.Fatalf("no detection events streamed")
	}
	if earlyDetections.Load() == 0 {
		t.Errorf("detections must stream before Run returns")
	}
	// A campaign is single-shot.
	if _, err := campaign.Run(context.Background()); !errors.Is(err, ErrCampaignReused) {
		t.Errorf("second Run = %v, want ErrCampaignReused", err)
	}
}

func TestCampaignWorkersDeterministic(t *testing.T) {
	for _, concolic := range []bool{true, false} {
		t.Run(fmt.Sprintf("concolic=%v", concolic), func(t *testing.T) {
			run := func(workers int) *CampaignResult {
				topo, live, copts := hijackedLine(t, 4)
				campaign := NewCampaign(live, topo,
					WithStrategy(AllNodesStrategy{}),
					WithBudget(Budget{TotalInputs: 24}),
					WithFuzzSeeds(4),
					WithSeed(3),
					WithConcolic(concolic),
					WithClusterOptions(copts),
					WithWorkers(workers))
				res, err := campaign.Run(context.Background())
				if err != nil {
					t.Fatalf("Run(workers=%d): %v", workers, err)
				}
				return res
			}
			serial := run(1)
			parallel := run(4)
			if serial.InputsExplored != parallel.InputsExplored {
				t.Errorf("inputs explored differ: serial=%d parallel=%d", serial.InputsExplored, parallel.InputsExplored)
			}
			sk, pk := detectionKeys(serial.Detections), detectionKeys(parallel.Detections)
			if len(sk) == 0 {
				t.Fatalf("expected detections from the hijacked line")
			}
			if fmt.Sprint(sk) != fmt.Sprint(pk) {
				t.Errorf("detections differ across worker counts:\n  serial   %v\n  parallel %v", sk, pk)
			}
			for i, u := range serial.Units {
				pu := parallel.Units[i]
				if u == nil || pu == nil {
					t.Fatalf("unit %d missing result", i)
				}
				if fmt.Sprint(detectionKeys(u.Detections)) != fmt.Sprint(detectionKeys(pu.Detections)) {
					t.Errorf("unit %d detections differ across worker counts", i)
				}
				if u.InputsExplored != pu.InputsExplored {
					t.Errorf("unit %d inputs differ: %d vs %d", i, u.InputsExplored, pu.InputsExplored)
				}
			}
		})
	}
}

func TestCampaignContextCancellation(t *testing.T) {
	// Pre-cancelled context: no unit runs, partial result comes back with
	// the context error.
	topo, live, copts := hijackedLine(t, 3)
	campaign := NewCampaign(live, topo, WithClusterOptions(copts), WithSeed(1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := campaign.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
	if res == nil || !res.Cancelled {
		t.Fatalf("cancelled campaign should return a partial result marked Cancelled")
	}
	if res.InputsExplored != 0 {
		t.Errorf("pre-cancelled campaign explored %d inputs, want 0", res.InputsExplored)
	}

	// Cancellation mid-campaign: cancel on the first detection event; the
	// campaign must stop well before its (huge) budget.
	topo2, live2, copts2 := hijackedLine(t, 3)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	campaign2 := NewCampaign(live2, topo2,
		WithStrategy(AllNodesStrategy{}),
		WithBudget(Budget{TotalInputs: 100000}),
		WithSeed(1),
		WithClusterOptions(copts2),
		WithWorkers(2),
		WithOnEvent(func(ev Event) {
			if ev.Kind == EventDetection {
				cancel2()
			}
		}))
	res2, err2 := campaign2.Run(ctx2)
	if !errors.Is(err2, context.Canceled) {
		t.Fatalf("mid-campaign cancel = %v, want context.Canceled", err2)
	}
	if !res2.Cancelled {
		t.Errorf("result not marked cancelled")
	}
	if res2.InputsExplored >= 100000 {
		t.Errorf("cancellation did not stop exploration early (%d inputs)", res2.InputsExplored)
	}

	// Cancellation must not read as budget exhaustion.
	if res.BudgetExhausted || res2.BudgetExhausted {
		t.Errorf("cancelled campaigns reported BudgetExhausted")
	}
}

// TestCampaignBudgetExhaustionIsNotCancellation is the regression test for
// the Cancelled/budget conflation: Run wraps the context for
// Budget.MaxDuration, so a campaign that merely runs out of its own time
// budget used to come back Cancelled with a DeadlineExceeded error. Budget
// expiry is a normal completion: nil error, BudgetExhausted set, Cancelled
// clear.
//
// The budget timer is injected, so expiry is driven by the test rather than
// the wall clock: the timer "fires" right after the first clone executes,
// deterministically on any machine. (The earlier version used a real
// 1ms MaxDuration, which raced both ways — a loaded CI runner could expire
// the budget before anything ran, and a fast machine could drain the whole
// explorer frontier before the deadline, leaving BudgetExhausted unset.)
func TestCampaignBudgetExhaustionIsNotCancellation(t *testing.T) {
	topo, live, copts := hijackedLine(t, 3)
	campaign := NewCampaign(live, topo,
		WithBudget(Budget{TotalInputs: 100000, MaxDuration: time.Hour}),
		WithSeed(1),
		WithClusterOptions(copts))
	// Hand-driven budget timer: fires once the first clone has run.
	fire := make(chan time.Time)
	campaign.cfg.budgetTimer = func(d time.Duration) <-chan time.Time {
		if d != time.Hour {
			t.Errorf("budget timer armed with %v, want the configured MaxDuration", d)
		}
		return fire
	}
	var once sync.Once
	campaign.testCloneFault = func() error {
		once.Do(func() { close(fire) })
		return nil
	}
	res, err := campaign.Run(context.Background())
	if err != nil {
		t.Fatalf("budget expiry must be a normal completion, got error %v", err)
	}
	if !res.BudgetExhausted {
		t.Errorf("result not marked BudgetExhausted")
	}
	if res.Cancelled {
		t.Errorf("budget expiry misreported as cancellation")
	}
	if res.InputsExplored >= 100000 {
		t.Errorf("budget expiry did not stop exploration early (%d inputs)", res.InputsExplored)
	}

	// A caller deadline tighter than the budget is the caller's doing:
	// Cancelled, with the context error surfaced. The clone hook blocks
	// until the caller's deadline has actually passed, so the campaign can
	// neither finish before the deadline nor exhaust its frontier first —
	// the outcome is the same on any machine; only the (generous) deadline
	// bounds the test's duration.
	topo2, live2, copts2 := hijackedLine(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	campaign2 := NewCampaign(live2, topo2,
		WithBudget(Budget{TotalInputs: 100000, MaxDuration: time.Hour}),
		WithSeed(1),
		WithClusterOptions(copts2))
	campaign2.testCloneFault = func() error {
		<-ctx.Done() // hold the first clone until the caller deadline fires
		return nil
	}
	res2, err2 := campaign2.Run(ctx)
	if !errors.Is(err2, context.DeadlineExceeded) {
		t.Fatalf("caller deadline = %v, want context.DeadlineExceeded", err2)
	}
	if !res2.Cancelled || res2.BudgetExhausted {
		t.Errorf("caller deadline misclassified: Cancelled=%v BudgetExhausted=%v", res2.Cancelled, res2.BudgetExhausted)
	}
}

func TestCampaignMultiUnitMergesDetections(t *testing.T) {
	topo, live, copts := hijackedLine(t, 3)
	campaign := NewCampaign(live, topo,
		WithUnits(
			Unit{Explorer: "R2", FromPeer: "R3"},
			Unit{Explorer: "R1", FromPeer: "R2"},
		),
		WithBudget(Budget{TotalInputs: 16}),
		WithSeed(1),
		WithClusterOptions(copts),
		WithWorkers(2))
	res, err := campaign.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Units) != 2 || res.Units[0] == nil || res.Units[1] == nil {
		t.Fatalf("expected 2 unit results, got %+v", res.Units)
	}
	if res.Units[0].Explorer != "R2" || res.Units[1].Explorer != "R1" {
		t.Errorf("unit results out of plan order: %s, %s", res.Units[0].Explorer, res.Units[1].Explorer)
	}
	// Merged detections are deduplicated by violation key.
	seen := map[string]bool{}
	for _, d := range res.Detections {
		if seen[d.Violation.Key()] {
			t.Errorf("duplicate merged detection %s", d.Violation.Key())
		}
		seen[d.Violation.Key()] = true
	}
	if res.InputsExplored != res.Units[0].InputsExplored+res.Units[1].InputsExplored {
		t.Errorf("campaign inputs %d != sum of unit inputs", res.InputsExplored)
	}
}

func TestEngineShimMatchesCampaign(t *testing.T) {
	runEngine := func() *Result {
		topo, live, copts := hijackedLine(t, 3)
		res, err := New(live, topo, Options{Explorer: "R2", FromPeer: "R3", MaxInputs: 8, FuzzSeeds: 4, UseConcolic: true, Seed: 1, ClusterOptions: copts}).Run()
		if err != nil {
			t.Fatalf("engine Run: %v", err)
		}
		return res
	}
	runCampaign := func() *CampaignResult {
		topo, live, copts := hijackedLine(t, 3)
		res, err := NewCampaign(live, topo,
			WithUnits(Unit{Explorer: "R2", FromPeer: "R3", MaxInputs: 8, FuzzSeeds: 4, Seed: 1}),
			WithWorkers(1),
			WithClusterOptions(copts)).Run(context.Background())
		if err != nil {
			t.Fatalf("campaign Run: %v", err)
		}
		return res
	}
	er, cr := runEngine(), runCampaign()
	if er.InputsExplored != cr.InputsExplored {
		t.Errorf("shim explored %d inputs, campaign %d", er.InputsExplored, cr.InputsExplored)
	}
	if fmt.Sprint(detectionKeys(er.Detections)) != fmt.Sprint(detectionKeys(cr.Detections)) {
		t.Errorf("shim and campaign detections differ:\n  engine   %v\n  campaign %v",
			detectionKeys(er.Detections), detectionKeys(cr.Detections))
	}
}

// TestCampaignPooledClonesEquivalentToCold verifies the clone-lifecycle
// overhaul end to end: the same campaign run on the pooled shadow-cluster
// runtime and on per-input cold rebuilds must explore the same inputs and
// find the same detections at the same input indices — pooling is purely a
// performance property.
func TestCampaignPooledClonesEquivalentToCold(t *testing.T) {
	topo, live, opts := hijackedLine(t, 4)
	run := func(pooled bool, workers int) *CampaignResult {
		campaign := NewCampaign(live, topo,
			WithUnits(Unit{Explorer: "R2", FromPeer: "R1", MaxInputs: 12, FuzzSeeds: 4, Seed: 1}),
			WithSeed(1),
			WithClusterOptions(opts),
			WithPooledClones(pooled),
			WithWorkers(workers))
		res, err := campaign.Run(context.Background())
		if err != nil {
			t.Fatalf("campaign (pooled=%v): %v", pooled, err)
		}
		return res
	}
	cold := run(false, 1)
	pooled := run(true, 1)
	pooledParallel := run(true, 4)

	if len(cold.Detections) == 0 {
		t.Fatal("campaign found nothing; equivalence test is vacuous")
	}
	for _, other := range []*CampaignResult{pooled, pooledParallel} {
		if other.InputsExplored != cold.InputsExplored {
			t.Errorf("inputs explored %d, cold %d", other.InputsExplored, cold.InputsExplored)
		}
		if fmt.Sprint(detectionKeys(other.Detections)) != fmt.Sprint(detectionKeys(cold.Detections)) {
			t.Errorf("detections differ from cold run")
		}
		for i := range cold.Detections {
			if i < len(other.Detections) && other.Detections[i].InputIndex != cold.Detections[i].InputIndex {
				t.Errorf("detection %d at input %d, cold at %d", i, other.Detections[i].InputIndex, cold.Detections[i].InputIndex)
			}
		}
	}

	// Lifecycle accounting: the cold run never resets, the pooled serial run
	// cold-builds exactly once.
	if cold.PooledClones || cold.CloneStats.Resets != 0 || cold.CloneStats.ColdBuilds != cold.InputsExplored {
		t.Errorf("cold run clone stats %+v (pooled=%v)", cold.CloneStats, cold.PooledClones)
	}
	if !pooled.PooledClones || pooled.CloneStats.ColdBuilds != 1 {
		t.Errorf("pooled serial run clone stats %+v (pooled=%v)", pooled.CloneStats, pooled.PooledClones)
	}
	if got := pooled.CloneStats.Resets + pooled.CloneStats.ColdBuilds; got != pooled.InputsExplored {
		t.Errorf("pooled leases %d != inputs explored %d", got, pooled.InputsExplored)
	}
	if pooledParallel.CloneStats.ColdBuilds > 4 {
		t.Errorf("parallel pooled run built %d clones for 4 workers", pooledParallel.CloneStats.ColdBuilds)
	}
}
