package dice

import (
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/topology"
)

// deployedLine builds and converges a small deployed cluster with the given
// faults planted.
func deployedLine(t *testing.T, n int, cfgFaults []faults.ConfigFault, codeFaults []faults.CodeFault) (*topology.Topology, *cluster.Cluster, cluster.Options) {
	t.Helper()
	topo := topology.Line(n)
	opts := cluster.Options{Seed: 1}
	if len(cfgFaults) > 0 {
		opts.ConfigOverride = faults.ApplyConfigFaults(cfgFaults...)
	}
	c := cluster.MustBuild(topo, opts)
	faults.InstallCodeFaults(c.Routers, codeFaults...)
	c.Converge()
	return topo, c, opts
}

func TestRunDetectsMisOrigination(t *testing.T) {
	victim := topology.Line(3).Nodes[0].Prefixes[0]
	topo, live, copts := deployedLine(t, 3,
		[]faults.ConfigFault{faults.MisOrigination{Router: "R3", Prefix: victim}}, nil)
	eng := New(live, topo, Options{Explorer: "R2", MaxInputs: 4, FuzzSeeds: 2, UseConcolic: true, Seed: 1, ClusterOptions: copts})
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Detected(checker.ClassOperatorMistake) {
		t.Fatalf("mis-origination not detected; detections=%v", res.Detections)
	}
	d := res.FirstDetection(checker.ClassOperatorMistake)
	if d.InputIndex < 1 || d.Input == nil {
		t.Errorf("detection metadata incomplete: %+v", d)
	}
	if res.SnapshotNodes != 3 || res.SnapshotBytes == 0 {
		t.Errorf("snapshot accounting missing: %+v", res)
	}
	if res.DisclosedBytes == 0 || res.FullStateBytes == 0 {
		t.Errorf("disclosure accounting missing")
	}
	// The deployed cluster itself was not modified by exploration.
	if crashed, _ := live.Router("R2").Panicked(); crashed {
		t.Errorf("exploration crashed the deployed router")
	}
}

func TestRunDetectsProgrammingErrorViaConcolic(t *testing.T) {
	trigger := bgp.NewCommunity(65001, 666)
	bug := faults.CommunityCrash("R2", trigger)
	topo, live, copts := deployedLine(t, 3, nil, []faults.CodeFault{bug})

	eng := New(live, topo, Options{
		Explorer:       "R2",
		FromPeer:       "R1",
		MaxInputs:      48,
		FuzzSeeds:      6,
		UseConcolic:    true,
		Seed:           7,
		CodeFaults:     []faults.CodeFault{bug},
		ClusterOptions: copts,
	})
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Detected(checker.ClassProgrammingError) {
		t.Fatalf("programming error not detected in %d inputs; stats=%+v", res.InputsExplored, res.ExplorerStats)
	}
	// The deployed router never crashed: only shadow clones did.
	if crashed, _ := live.Router("R2").Panicked(); crashed {
		t.Errorf("deployed router crashed — isolation violated")
	}
}

func TestRunDetectsHijackThroughMissingFilter(t *testing.T) {
	topo, live, copts := deployedLine(t, 3,
		[]faults.ConfigFault{faults.MissingImportFilter{Router: "R2", Peer: "R1"}}, nil)
	// The deployed system is currently clean: the mistake is latent.
	if !checker.CheckAll(live, checker.DefaultProperties(topo)).OK() {
		t.Fatalf("fault should be latent before exploration")
	}
	eng := New(live, topo, Options{Explorer: "R2", FromPeer: "R1", MaxInputs: 32, FuzzSeeds: 10, UseConcolic: true, Seed: 3, ClusterOptions: copts})
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Detected(checker.ClassOperatorMistake) {
		t.Fatalf("latent missing-filter mistake not detected; detections=%v", res.Detections)
	}
}

func TestFuzzOnlyModeRuns(t *testing.T) {
	topo, live, copts := deployedLine(t, 2, nil, nil)
	eng := New(live, topo, Options{MaxInputs: 6, FuzzSeeds: 3, UseConcolic: false, Seed: 2, ClusterOptions: copts})
	res, err := eng.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.InputsExplored != 6 {
		t.Errorf("fuzz-only mode explored %d inputs, want 6", res.InputsExplored)
	}
}

func TestExplorerSelectionDefaults(t *testing.T) {
	topo := topology.Star(4) // R1 is the hub with 3 neighbors
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	c.Converge()
	eng := New(c, topo, Options{})
	if got := eng.chooseExplorer(); got != "R1" {
		t.Errorf("default explorer = %s, want the highest-degree router R1", got)
	}
	peer, err := eng.choosePeer("R1")
	if err != nil || peer == "" {
		t.Errorf("choosePeer failed: %v %q", err, peer)
	}
	if _, err := New(c, nil, Options{}).Run(); err == nil {
		t.Errorf("Run without topology must fail")
	}
}

func TestResultGrouping(t *testing.T) {
	res := &Result{Detections: []Detection{
		{Class: checker.ClassOperatorMistake},
		{Class: checker.ClassOperatorMistake},
		{Class: checker.ClassProgrammingError},
	}}
	groups := res.DetectionsByClass()
	if len(groups[checker.ClassOperatorMistake]) != 2 || len(groups[checker.ClassProgrammingError]) != 1 {
		t.Errorf("grouping broken: %v", groups)
	}
	if res.Detected(checker.ClassPolicyConflict) {
		t.Errorf("false positive class detection")
	}
}
