package dice

import (
	"fmt"

	"github.com/dice-project/dice/internal/checker"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/federation"
)

// WithFederation runs the campaign federated: the topology is split into the
// partition's administrative domains, units are planned per domain, and each
// explored clone is checked through one Coordinator per domain — every
// coordinator sees only its own domain's routers, and what other domains
// learn of its findings is exactly the checker.Summary digests it publishes
// on the federation bus. CampaignResult gains the Disclosed accounting and a
// per-domain breakdown; EventSummary events stream the digests that crossed
// a boundary.
//
// Planning per domain keeps the configured Strategy's semantics within each
// domain: the default DegreeStrategy explores from each domain's
// best-connected router; other strategies plan over the domain's node set
// (intersected with WithExplorers, when given). WithUnits bypasses planning
// as in centralized campaigns — each pinned unit is assigned to the domain
// owning its explorer.
func WithFederation(p *federation.Partition) CampaignOption {
	return func(c *campaignConfig) { c.partition = p }
}

// DisclosureStats aggregates what a federated campaign exchanged across
// domain boundaries: the number of checker.Summary messages published on the
// bus and their total serialized size. The bus charges each publish its
// Summary.Size(), so Bytes is by construction the bytes actually exchanged —
// the federation privacy test re-serializes the bus log to prove it.
type DisclosureStats struct {
	Summaries int
	Bytes     int
}

// DomainResult is one domain's slice of a federated campaign.
type DomainResult struct {
	// Domain is the administrative domain name; Nodes how many routers it
	// administers.
	Domain string
	Nodes  int
	// Units and InputsExplored cover the exploration this domain ran.
	Units          int
	InputsExplored int
	// Detections counts merged campaign detections first found by this
	// domain's exploration.
	Detections int
	// SummariesSent/BytesSent is what the domain disclosed to others;
	// SummariesReceived/BytesReceived what it learned from them.
	SummariesSent, SummariesReceived int
	BytesSent, BytesReceived         int
}

// fedState is a federated campaign's runtime: the partition, the summary
// bus, and one coordinator per domain.
type fedState struct {
	partition *federation.Partition
	bus       *federation.Bus
	coords    map[string]*federation.Coordinator
}

func newFedState(c *Campaign) (*fedState, error) {
	// Rebuild the partition against the campaign's topology and adopt the
	// result: the caller's value may have been built for a different
	// topology, or as a bare struct literal whose node index was never
	// populated.
	p, err := federation.NewPartition(c.topo, c.cfg.partition.Domains)
	if err != nil {
		return nil, err
	}
	fs := &fedState{
		partition: p,
		bus:       federation.NewBus(),
		coords:    make(map[string]*federation.Coordinator, len(p.Domains)),
	}
	if c.testRetainBusLog {
		fs.bus.SetRetain(true)
	}
	if c.cfg.fedTransport != nil {
		fs.bus.SetTransport(c.cfg.fedTransport)
	}
	for _, d := range p.Domains {
		fs.coords[d.Name] = federation.NewCoordinator(c.topo, d, fs.bus)
	}
	return fs, nil
}

// planFederatedUnits plans the campaign's units domain by domain in
// partition order, so unit indices — and the per-unit seeds derived from
// them — are deterministic for a given partition. It runs after newFedState,
// so it plans over the validated, adopted partition.
func (c *Campaign) planFederatedUnits() ([]Unit, error) {
	p := c.fed.partition
	if _, ok := c.cfg.strategy.(fixedStrategy); ok {
		units, err := c.cfg.strategy.Plan(c.topo, c.cfg.explorers)
		if err != nil {
			return nil, err
		}
		for i := range units {
			d := p.DomainOf(units[i].Explorer)
			if d == "" {
				return nil, fmt.Errorf("dice: explorer %s belongs to no federation domain", units[i].Explorer)
			}
			units[i].Domain = d
		}
		return units, nil
	}

	configured := make(map[string]bool, len(c.cfg.explorers))
	for _, name := range c.cfg.explorers {
		if c.topo.Node(name) == nil {
			return nil, fmt.Errorf("dice: unknown explorer %q", name)
		}
		configured[name] = true
	}
	var units []Unit
	for _, d := range p.Domains {
		var explorers []string
		switch {
		case len(configured) > 0:
			for _, n := range d.Nodes {
				if configured[n] {
					explorers = append(explorers, n)
				}
			}
			if len(explorers) == 0 {
				continue // the configured explorer set skips this domain
			}
		default:
			if _, ok := c.cfg.strategy.(DegreeStrategy); ok {
				// Preserve degree semantics inside the domain: one default
				// explorer, the domain's best-connected router.
				explorers = []string{highestDegreeNodeOf(c.topo, d.Nodes)}
			} else {
				explorers = append([]string(nil), d.Nodes...)
			}
		}
		du, err := c.cfg.strategy.Plan(c.topo, explorers)
		if err != nil {
			return nil, fmt.Errorf("dice: domain %s: %w", d.Name, err)
		}
		for i := range du {
			du[i].Domain = d.Name
		}
		units = append(units, du...)
	}
	return units, nil
}

// validateFederatedProps rejects property sets a federated campaign cannot
// evaluate faithfully: coordinators extract one forwarding projection per
// clone and every ProjectionProperty is checked over it, so at most one
// distinct projection-based property may be configured (several instances
// of the same property are fine — they share the projection by definition).
func validateFederatedProps(props []checker.Property) error {
	first := ""
	for _, p := range props {
		if _, ok := p.(checker.ProjectionProperty); ok {
			if first != "" && first != p.Name() {
				return fmt.Errorf("dice: federated campaigns support one projection-based property, got both %s and %s", first, p.Name())
			}
			first = p.Name()
		}
	}
	return nil
}

// checkCloneFederated is the federated replacement for the centralized
// checker.CheckAll call on an explored clone. Every domain's coordinator
// checks its own scoped view of the clone; the domain that ran the
// exploration keeps its full local report, while every other domain
// discloses only its summary over the bus. Cross-domain properties (loop
// freedom) are evaluated at the exploring domain over the forwarding
// projection assembled from the summaries. The returned violations are the
// union the exploring domain ends up knowing about, and disclosed is the
// bytes that crossed domain boundaries for this input.
func (c *Campaign) checkCloneFederated(shadow *cluster.Cluster, u Unit) ([]checker.Violation, int) {
	home := u.Domain
	if home == "" {
		home = c.fed.partition.DomainOf(u.Explorer)
	}
	var violations []checker.Violation
	var edges []checker.ForwardingEdge
	disclosed := 0
	for _, d := range c.fed.partition.Domains {
		co := c.fed.coords[d.Name]
		rep, sum := co.CheckLocal(shadow, c.props)
		edges = append(edges, sum.Edges...)
		if d.Name == home {
			violations = append(violations, rep.Violations()...)
			continue
		}
		// Only the summary leaves the domain; the local report stays behind.
		disclosed += co.Publish(home, sum)
		for _, dg := range sum.Digests {
			violations = append(violations, dg.Violation())
		}
		if len(sum.Digests) > 0 {
			s := sum
			c.em.emit(Event{Kind: EventSummary, Unit: u, Domain: d.Name, Summary: &s})
		}
	}
	// The exploring domain evaluates projection-based properties over the
	// assembled cross-domain view.
	for _, p := range c.props {
		if pp, ok := p.(checker.ProjectionProperty); ok {
			violations = append(violations, pp.CheckProjection(edges, c.topo.NodeNames()).Violations...)
		}
	}
	return violations, disclosed
}

// aggregateFederation fills the federated fields of the campaign result:
// bus-level disclosure totals and the per-domain breakdown. detsByUnit is
// the merge loop's attribution — how many campaign-unique detections each
// unit contributed first — so the per-domain counts always sum to
// len(res.Detections).
func (c *Campaign) aggregateFederation(res *CampaignResult, units []Unit, detsByUnit []int) {
	stats := c.fed.bus.Stats()
	res.Federated = true
	res.Disclosed = DisclosureStats{Summaries: stats.Summaries, Bytes: stats.Bytes}

	byDomain := make(map[string]*DomainResult, len(c.fed.partition.Domains))
	for _, d := range c.fed.partition.Domains {
		traffic := c.fed.bus.Traffic(d.Name)
		dr := &DomainResult{
			Domain:            d.Name,
			Nodes:             len(d.Nodes),
			SummariesSent:     traffic.SummariesSent,
			SummariesReceived: traffic.SummariesReceived,
			BytesSent:         traffic.BytesSent,
			BytesReceived:     traffic.BytesReceived,
		}
		byDomain[d.Name] = dr
	}
	for i, u := range units {
		dr := byDomain[u.Domain]
		if dr == nil {
			continue
		}
		dr.Units++
		dr.Detections += detsByUnit[i]
		if r := res.Units[i]; r != nil {
			dr.InputsExplored += r.InputsExplored
		}
	}
	for _, d := range c.fed.partition.Domains {
		res.Domains = append(res.Domains, *byDomain[d.Name])
	}
}
