// Package checkpoint defines the consistent snapshot that DiCE explores over:
// a set of lightweight per-node checkpoints (opaque node.Checkpoint values,
// possibly from different router implementations) plus the channel state —
// the messages that were in flight when the cut was taken.
//
// Snapshots are taken between emulator events, so the cut is consistent by
// construction: no node state reflects the receipt of a message that is not
// either recorded as delivered or captured in InFlight. The package also
// provides a gob-based codec so a snapshot can be measured (checkpoint sizes
// for the overhead experiment) and moved across process boundaries, and an
// option to deliberately drop the channel state, which the experiments use as
// the "naive, inconsistent per-node checkpoints" baseline.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

// bufPool recycles the scratch buffers gob encoding writes into. Snapshot
// measurement encodes every node of every campaign snapshot; without reuse
// each encoding grows a fresh buffer from scratch.
var bufPool = sync.Pool{
	New: func() interface{} { return new(bytes.Buffer) },
}

// encodeInto gob-encodes v into a pooled buffer and returns a copy of the
// bytes (the buffer goes back to the pool).
func encodeInto(v interface{}) ([]byte, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		bufPool.Put(buf)
	}()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// encodedLen gob-encodes v into a pooled buffer and returns only the encoded
// length, avoiding the copy when callers need size accounting, not bytes.
func encodedLen(v interface{}) (int, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		bufPool.Put(buf)
	}()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return 0, err
	}
	return buf.Len(), nil
}

// Snapshot is a consistent cut of the emulated system.
type Snapshot struct {
	// At is the virtual time at which the cut was taken.
	At time.Duration
	// Nodes maps router names to their checkpoints. Checkpoints are opaque
	// backend values; each names the implementation that can restore it, so
	// one snapshot may mix implementations. Backends gob-register their
	// concrete checkpoint types, which is what lets the interface-typed map
	// cross process boundaries.
	Nodes map[string]node.Checkpoint
	// InFlight is the channel state: messages sent but not yet delivered at
	// the cut.
	InFlight []netem.QueuedMessage
	// Consistent records whether the channel state was captured. The
	// inconsistent-cut ablation sets it to false and drops InFlight.
	Consistent bool
}

// Clone returns a deep copy of the snapshot's structure. Node checkpoints are
// shared: they are immutable once taken (restoring builds new routers).
func (s *Snapshot) Clone() *Snapshot {
	out := &Snapshot{At: s.At, Consistent: s.Consistent}
	out.Nodes = make(map[string]node.Checkpoint, len(s.Nodes))
	for k, v := range s.Nodes {
		out.Nodes[k] = v
	}
	out.InFlight = make([]netem.QueuedMessage, len(s.InFlight))
	for i, m := range s.InFlight {
		m.Payload = append([]byte(nil), m.Payload...)
		out.InFlight[i] = m
	}
	return out
}

// NodeNames returns the checkpointed node names, sorted.
func (s *Snapshot) NodeNames() []string {
	names := make([]string, 0, len(s.Nodes))
	for name := range s.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DropChannelState returns a copy of the snapshot without the in-flight
// messages, modelling naive per-node checkpoints that ignore channel state.
func (s *Snapshot) DropChannelState() *Snapshot {
	out := s.Clone()
	out.InFlight = nil
	out.Consistent = false
	return out
}

// Encode serializes the snapshot with encoding/gob. The result is what the
// overhead experiment reports as "snapshot size"; per-node sizes are
// available via EncodeNode.
func Encode(s *Snapshot) ([]byte, error) {
	data, err := encodeInto(s)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return data, nil
}

// Decode deserializes a snapshot produced by Encode.
func Decode(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return &s, nil
}

// EncodeNode serializes a single node checkpoint, for per-node size
// accounting.
func EncodeNode(cp node.Checkpoint) ([]byte, error) {
	data, err := encodeInto(cp)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode node %s: %w", cp.NodeName(), err)
	}
	return data, nil
}

// Sizes summarizes a snapshot's encoded footprint.
type Sizes struct {
	// TotalBytes is the snapshot's total encoded footprint: the sum of the
	// per-node encodings plus the channel-state envelope. (Each part is
	// encoded exactly once; a single-stream gob encoding of the whole
	// snapshot is a few hundred bytes smaller because type descriptors are
	// shared, but requires encoding every node a second time to also get
	// per-node sizes.)
	TotalBytes   int
	PerNodeBytes map[string]int
	Messages     int
}

// channelEnvelope is the non-node remainder of a snapshot, encoded separately
// so Measure can size the whole snapshot without encoding any node twice.
type channelEnvelope struct {
	At         time.Duration
	InFlight   []netem.QueuedMessage
	Consistent bool
}

// Measure reports the snapshot's encoded footprint. Every node checkpoint and
// the channel state are each encoded exactly once: the per-node sizes come
// from those encodings and TotalBytes is their sum — the full snapshot is
// never encoded a second time just to size it.
func Measure(s *Snapshot) (Sizes, error) {
	perNode, err := MeasureNodes(s)
	if err != nil {
		return Sizes{}, err
	}
	out := Sizes{PerNodeBytes: perNode, Messages: len(s.InFlight)}
	env, err := encodedLen(channelEnvelope{At: s.At, InFlight: s.InFlight, Consistent: s.Consistent})
	if err != nil {
		return Sizes{}, fmt.Errorf("checkpoint: encode channel state: %w", err)
	}
	out.TotalBytes = env
	for _, n := range perNode {
		out.TotalBytes += n
	}
	return out, nil
}

// MeasureNodes reports each node checkpoint's encoded size without paying for
// a full-snapshot encoding — the call for code that only needs per-node size
// accounting.
func MeasureNodes(s *Snapshot) (map[string]int, error) {
	perNode := make(map[string]int, len(s.Nodes))
	for name, cp := range s.Nodes {
		n, err := encodedLen(cp)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: encode node %s: %w", cp.NodeName(), err)
		}
		perNode[name] = n
	}
	return perNode, nil
}
