// Package checkpoint defines the consistent snapshot that DiCE explores over:
// a set of lightweight per-node checkpoints (opaque node.Checkpoint values,
// possibly from different router implementations) plus the channel state —
// the messages that were in flight when the cut was taken.
//
// Snapshots are taken between emulator events, so the cut is consistent by
// construction: no node state reflects the receipt of a message that is not
// either recorded as delivered or captured in InFlight.
//
// Serialization uses the deterministic binary codec (subpackage codec): a
// versioned header, varint fields, length-prefixed flat slabs and
// always-sorted map iteration, with each node's payload produced by its
// backend's registered canonical encoder. Identical state always encodes to
// identical bytes, which is what makes the content-addressed store (SHA-256
// of the canonical node encoding), the ring's byte-level delta accounting
// and the distributed snapshot patches sound. Artifacts written by earlier
// releases used encoding/gob; Decode and DecodeNode detect the missing codec
// header and fall back to the gob decoder, so old artifacts still load. The
// gob encoders survive as the benchmark baseline (EncodeGob, MeasureGob) and
// as the fallback for backends that register no canonical codec.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/checkpoint/codec"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

// bufPool recycles the scratch buffers gob encoding writes into (the legacy
// paths still materialize encodings).
var bufPool = sync.Pool{
	New: func() interface{} { return new(bytes.Buffer) },
}

// encodeInto gob-encodes v into a pooled buffer and returns a copy of the
// bytes (the buffer goes back to the pool).
func encodeInto(v interface{}) ([]byte, error) {
	buf := bufPool.Get().(*bytes.Buffer)
	defer func() {
		buf.Reset()
		bufPool.Put(buf)
	}()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return nil, err
	}
	return append([]byte(nil), buf.Bytes()...), nil
}

// countingWriter counts bytes written without retaining them.
type countingWriter int

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// encodedLen gob-encodes v into a counting writer and returns only the
// encoded length: size accounting runs per node per snapshot, and streaming
// into a counter never materializes (or grows) an encoding just to read its
// length.
func encodedLen(v interface{}) (int, error) {
	var cw countingWriter
	if err := gob.NewEncoder(&cw).Encode(v); err != nil {
		return 0, err
	}
	return int(cw), nil
}

// gobDecode decodes data into out, converting a decoder panic (gob decodes
// attacker-controllable bytes on the legacy fallback path) into an error.
func gobDecode(data []byte, out interface{}) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("gob decode panicked: %v", rec)
		}
	}()
	return gob.NewDecoder(bytes.NewReader(data)).Decode(out)
}

// Snapshot is a consistent cut of the emulated system.
type Snapshot struct {
	// At is the virtual time at which the cut was taken.
	At time.Duration
	// Nodes maps router names to their checkpoints. Checkpoints are opaque
	// backend values; each names the implementation that can restore it, so
	// one snapshot may mix implementations. Backends register canonical
	// codec encoders (and gob-register their concrete types for the legacy
	// fallback), which is what lets the interface-typed map cross process
	// boundaries.
	Nodes map[string]node.Checkpoint
	// InFlight is the channel state: messages sent but not yet delivered at
	// the cut.
	InFlight []netem.QueuedMessage
	// Consistent records whether the channel state was captured. The
	// inconsistent-cut ablation sets it to false and drops InFlight.
	Consistent bool
}

// Clone returns a deep copy of the snapshot's structure. Node checkpoints are
// shared: they are immutable once taken (restoring builds new routers).
func (s *Snapshot) Clone() *Snapshot {
	out := &Snapshot{At: s.At, Consistent: s.Consistent}
	out.Nodes = make(map[string]node.Checkpoint, len(s.Nodes))
	for k, v := range s.Nodes {
		out.Nodes[k] = v
	}
	out.InFlight = make([]netem.QueuedMessage, len(s.InFlight))
	for i, m := range s.InFlight {
		m.Payload = append([]byte(nil), m.Payload...)
		out.InFlight[i] = m
	}
	return out
}

// NodeNames returns the checkpointed node names, sorted.
func (s *Snapshot) NodeNames() []string {
	names := make([]string, 0, len(s.Nodes))
	for name := range s.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DropChannelState returns a copy of the snapshot without the in-flight
// messages, modelling naive per-node checkpoints that ignore channel state.
func (s *Snapshot) DropChannelState() *Snapshot {
	out := s.Clone()
	out.InFlight = nil
	out.Consistent = false
	return out
}

// Encode serializes the snapshot in the deterministic codec format: header,
// envelope fields, the sorted node table (each entry a name plus the node's
// canonical encoding, byte-identical to EncodeNode's output), and the
// in-flight messages. The result is what the overhead experiment reports as
// "snapshot size".
func Encode(s *Snapshot) ([]byte, error) {
	w := codec.NewWriter()
	w.Header(codec.KindSnapshot)
	w.Varint(int64(s.At))
	w.Bool(s.Consistent)
	names := s.NodeNames()
	w.Uvarint(uint64(len(names)))
	for _, name := range names {
		enc, err := EncodeNode(s.Nodes[name])
		if err != nil {
			return nil, fmt.Errorf("checkpoint: encode: %w", err)
		}
		w.String(name)
		w.Blob(enc)
	}
	putInFlight(w, s.InFlight)
	return w.Bytes(), nil
}

// EncodeGob serializes the snapshot with encoding/gob — the legacy format.
// It exists as the measured baseline the codec is compared against and to
// exercise the compatibility fallback; new artifacts use Encode.
func EncodeGob(s *Snapshot) ([]byte, error) {
	data, err := encodeInto(s)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: gob encode: %w", err)
	}
	return data, nil
}

// Decode deserializes a snapshot produced by Encode. Data without the codec
// header is routed to the legacy gob decoder, so artifacts written before
// the codec existed still load.
func Decode(data []byte) (*Snapshot, error) {
	if !codec.IsEncoded(data) {
		var s Snapshot
		if err := gobDecode(data, &s); err != nil {
			return nil, fmt.Errorf("checkpoint: decode (legacy gob): %w", err)
		}
		return &s, nil
	}
	r := codec.NewReader(data)
	r.Header(codec.KindSnapshot)
	s := &Snapshot{
		At:         time.Duration(r.Varint()),
		Consistent: r.Bool(),
	}
	n := r.Count()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	s.Nodes = make(map[string]node.Checkpoint, n)
	for i := 0; i < n; i++ {
		name := r.String()
		enc := r.Blob()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("checkpoint: decode: %w", err)
		}
		cp, err := DecodeNode("", enc)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decode node %q: %w", name, err)
		}
		s.Nodes[name] = cp
	}
	s.InFlight = inFlight(r)
	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return s, nil
}

// EncodeNode serializes a single node checkpoint in its canonical form: the
// codec header, the implementation tag, and the backend's canonical payload.
// This is the content-addressed unit — Store hashes, ring deltas and shipped
// node patches are all computed over exactly these bytes. Backends that
// register no canonical encoder fall back to the legacy gob form.
func EncodeNode(cp node.Checkpoint) ([]byte, error) {
	be, err := node.BackendFor(cp.Implementation())
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode node %s: %w", cp.NodeName(), err)
	}
	if be.EncodeCanonical == nil {
		return EncodeNodeGob(cp)
	}
	payload, err := be.EncodeCanonical(cp)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: encode node %s: %w", cp.NodeName(), err)
	}
	w := codec.NewWriter()
	w.Header(codec.KindNode)
	w.String(cp.Implementation())
	w.Blob(payload)
	return w.Bytes(), nil
}

// EncodeNodeGob serializes a single node checkpoint with encoding/gob (the
// legacy concrete-typed form) — the benchmark baseline and the fallback for
// backends without a canonical codec.
func EncodeNodeGob(cp node.Checkpoint) ([]byte, error) {
	data, err := encodeInto(cp)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: gob encode node %s: %w", cp.NodeName(), err)
	}
	return data, nil
}

// putInFlight writes the in-flight message list.
func putInFlight(w *codec.Writer, msgs []netem.QueuedMessage) {
	w.Uvarint(uint64(len(msgs)))
	for i := range msgs {
		m := &msgs[i]
		w.String(string(m.From))
		w.String(string(m.To))
		w.Blob(m.Payload)
		w.Varint(int64(m.Deliver))
	}
}

// inFlight reads the in-flight message list; zero count decodes to nil.
func inFlight(r *codec.Reader) []netem.QueuedMessage {
	n := r.Count()
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]netem.QueuedMessage, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		out = append(out, netem.QueuedMessage{
			From:    netem.NodeID(r.String()),
			To:      netem.NodeID(r.String()),
			Payload: r.Blob(),
			Deliver: time.Duration(r.Varint()),
		})
	}
	return out
}

// inFlightLen returns the encoded size of the in-flight message list,
// byte-exact with putInFlight.
func inFlightLen(msgs []netem.QueuedMessage) int {
	n := codec.UvarintLen(uint64(len(msgs)))
	for i := range msgs {
		m := &msgs[i]
		n += codec.StringLen(string(m.From)) + codec.StringLen(string(m.To)) +
			codec.BlobLen(m.Payload) + codec.VarintLen(int64(m.Deliver))
	}
	return n
}

// Sizes summarizes a snapshot's encoded footprint.
type Sizes struct {
	// TotalBytes is the snapshot's total encoded footprint: byte-exact with
	// len(Encode(s)) — the per-node canonical encodings plus the envelope
	// (header, cut metadata, node table framing, in-flight messages).
	TotalBytes   int
	PerNodeBytes map[string]int
	Messages     int
}

// Measure reports the snapshot's encoded footprint. Every node checkpoint is
// encoded exactly once (the canonical codec form); the envelope's size is
// computed arithmetically, so TotalBytes equals len(Encode(s)) without ever
// materializing the full snapshot encoding.
func Measure(s *Snapshot) (Sizes, error) {
	perNode, err := MeasureNodes(s)
	if err != nil {
		return Sizes{}, err
	}
	return measureFromEncodedLens(s, perNode), nil
}

// measureFromEncodedLens assembles Sizes from per-node canonical encoding
// lengths, adding the envelope arithmetic shared with Encode.
func measureFromEncodedLens(s *Snapshot, perNode map[string]int) Sizes {
	out := Sizes{PerNodeBytes: perNode, Messages: len(s.InFlight)}
	total := codec.HeaderLen + codec.VarintLen(int64(s.At)) + 1 +
		codec.UvarintLen(uint64(len(s.Nodes))) + inFlightLen(s.InFlight)
	for name, n := range perNode {
		total += codec.StringLen(name) + codec.UvarintLen(uint64(n)) + n
	}
	out.TotalBytes = total
	return out
}

// MeasureNodes reports each node checkpoint's canonical encoded size without
// paying for a full-snapshot encoding — the call for code that only needs
// per-node size accounting.
func MeasureNodes(s *Snapshot) (map[string]int, error) {
	perNode := make(map[string]int, len(s.Nodes))
	//dice:allow detrange each node is encoded independently and stored keyed by name; no cross-entry byte stream exists
	for name, cp := range s.Nodes {
		enc, err := EncodeNode(cp)
		if err != nil {
			return nil, err
		}
		perNode[name] = len(enc)
	}
	return perNode, nil
}

// gobChannelEnvelope is the non-node remainder of a snapshot under the
// legacy gob accounting.
type gobChannelEnvelope struct {
	At         time.Duration
	InFlight   []netem.QueuedMessage
	Consistent bool
}

// MeasureGob reports the snapshot's footprint under the legacy gob encoding
// (per-node gob encodings plus a gob channel-state envelope) — the measured
// baseline the codec's Measure is benchmarked against.
func MeasureGob(s *Snapshot) (Sizes, error) {
	out := Sizes{PerNodeBytes: make(map[string]int, len(s.Nodes)), Messages: len(s.InFlight)}
	env, err := encodedLen(gobChannelEnvelope{At: s.At, InFlight: s.InFlight, Consistent: s.Consistent})
	if err != nil {
		return Sizes{}, fmt.Errorf("checkpoint: gob encode channel state: %w", err)
	}
	out.TotalBytes = env
	//dice:allow detrange per-node gob lengths are summed and keyed by name; addition commutes, no bytes concatenate
	for name, cp := range s.Nodes {
		n, err := encodedLen(cp)
		if err != nil {
			return Sizes{}, fmt.Errorf("checkpoint: gob encode node %s: %w", cp.NodeName(), err)
		}
		out.PerNodeBytes[name] = n
		out.TotalBytes += n
	}
	return out, nil
}
