// Package checkpoint defines the consistent snapshot that DiCE explores over:
// a set of lightweight per-node checkpoints (from package bird) plus the
// channel state — the messages that were in flight when the cut was taken.
//
// Snapshots are taken between emulator events, so the cut is consistent by
// construction: no node state reflects the receipt of a message that is not
// either recorded as delivered or captured in InFlight. The package also
// provides a gob-based codec so a snapshot can be measured (checkpoint sizes
// for the overhead experiment) and moved across process boundaries, and an
// option to deliberately drop the channel state, which the experiments use as
// the "naive, inconsistent per-node checkpoints" baseline.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"github.com/dice-project/dice/internal/bird"
	"github.com/dice-project/dice/internal/netem"
)

// Snapshot is a consistent cut of the emulated system.
type Snapshot struct {
	// At is the virtual time at which the cut was taken.
	At time.Duration
	// Nodes maps router names to their checkpoints.
	Nodes map[string]*bird.Checkpoint
	// InFlight is the channel state: messages sent but not yet delivered at
	// the cut.
	InFlight []netem.QueuedMessage
	// Consistent records whether the channel state was captured. The
	// inconsistent-cut ablation sets it to false and drops InFlight.
	Consistent bool
}

// Clone returns a deep copy of the snapshot's structure. Node checkpoints are
// shared: they are immutable once taken (restoring builds new routers).
func (s *Snapshot) Clone() *Snapshot {
	out := &Snapshot{At: s.At, Consistent: s.Consistent}
	out.Nodes = make(map[string]*bird.Checkpoint, len(s.Nodes))
	for k, v := range s.Nodes {
		out.Nodes[k] = v
	}
	out.InFlight = make([]netem.QueuedMessage, len(s.InFlight))
	for i, m := range s.InFlight {
		m.Payload = append([]byte(nil), m.Payload...)
		out.InFlight[i] = m
	}
	return out
}

// NodeNames returns the checkpointed node names, sorted.
func (s *Snapshot) NodeNames() []string {
	names := make([]string, 0, len(s.Nodes))
	for name := range s.Nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// DropChannelState returns a copy of the snapshot without the in-flight
// messages, modelling naive per-node checkpoints that ignore channel state.
func (s *Snapshot) DropChannelState() *Snapshot {
	out := s.Clone()
	out.InFlight = nil
	out.Consistent = false
	return out
}

// Encode serializes the snapshot with encoding/gob. The result is what the
// overhead experiment reports as "snapshot size"; per-node sizes are
// available via EncodeNode.
func Encode(s *Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("checkpoint: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode deserializes a snapshot produced by Encode.
func Decode(data []byte) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&s); err != nil {
		return nil, fmt.Errorf("checkpoint: decode: %w", err)
	}
	return &s, nil
}

// EncodeNode serializes a single node checkpoint, for per-node size
// accounting.
func EncodeNode(cp *bird.Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(cp); err != nil {
		return nil, fmt.Errorf("checkpoint: encode node %s: %w", cp.Name, err)
	}
	return buf.Bytes(), nil
}

// Sizes summarizes a snapshot's encoded footprint.
type Sizes struct {
	TotalBytes   int
	PerNodeBytes map[string]int
	Messages     int
}

// Measure encodes the snapshot and each node checkpoint and reports their
// sizes.
func Measure(s *Snapshot) (Sizes, error) {
	out := Sizes{PerNodeBytes: make(map[string]int), Messages: len(s.InFlight)}
	total, err := Encode(s)
	if err != nil {
		return Sizes{}, err
	}
	out.TotalBytes = len(total)
	for name, cp := range s.Nodes {
		b, err := EncodeNode(cp)
		if err != nil {
			return Sizes{}, err
		}
		out.PerNodeBytes[name] = len(b)
	}
	return out, nil
}
