package checkpoint

import (
	"bytes"
	"testing"

	"github.com/dice-project/dice/internal/bird"
)

// TestDiffApplyRoundTrip: diffing a diverged snapshot against the baseline
// and applying the delta on a second store over the same baseline must
// reproduce the diverged snapshot byte for byte (per-node encodings), while
// unchanged nodes ship nothing and share the baseline checkpoint value.
func TestDiffApplyRoundTrip(t *testing.T) {
	base := sampleSnapshot(t)
	sender, err := NewStore(base)
	if err != nil {
		t.Fatal(err)
	}

	// Diverge node A; leave B untouched.
	r, err := sender.Restore("A")
	if err != nil {
		t.Fatal(err)
	}
	diverged, ok := r.TakeCheckpoint().(*bird.Checkpoint)
	if !ok {
		t.Fatalf("checkpoint is %T, want *bird.Checkpoint", r.TakeCheckpoint())
	}
	diverged.Stats.UpdatesReceived += 7
	target := base.Clone()
	target.Nodes["A"] = diverged
	target.At += 42

	d, err := sender.DiffSnapshot(target)
	if err != nil {
		t.Fatalf("DiffSnapshot: %v", err)
	}
	if len(d.Patches) != 1 || d.Patches[0].Node != "A" {
		t.Fatalf("patches = %+v, want exactly one for A", d.Patches)
	}
	if d.Empty() {
		t.Fatalf("diverged delta reports Empty")
	}
	// The materialized patch must agree with the long-standing Delta sizing.
	sized, err := sender.Delta("A", diverged)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(d.Patches[0].Patch) + deltaFraming; got != sized.DeltaBytes {
		t.Errorf("patch ships %d bytes, Delta accounting says %d", got, sized.DeltaBytes)
	}

	// The receiver holds its own store over the same baseline.
	receiver, err := NewStore(base)
	if err != nil {
		t.Fatal(err)
	}
	got, err := receiver.ApplyDelta(d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if got.At != target.At || got.Consistent != target.Consistent {
		t.Errorf("envelope mismatch: got (%v,%v) want (%v,%v)", got.At, got.Consistent, target.At, target.Consistent)
	}
	for name := range target.Nodes {
		want, err := EncodeNode(target.Nodes[name])
		if err != nil {
			t.Fatal(err)
		}
		have, err := EncodeNode(got.Nodes[name])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, have) {
			t.Errorf("node %s: applied encoding differs from target", name)
		}
	}
	if got.Nodes["B"] != base.Nodes["B"] {
		t.Errorf("unchanged node B was not shared with the baseline")
	}
}

// TestDiffSnapshotIdentical: a snapshot equal to the baseline deltas to zero
// patches, and applying it shares every node checkpoint.
func TestDiffSnapshotIdentical(t *testing.T) {
	base := sampleSnapshot(t)
	store, err := NewStore(base)
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.DiffSnapshot(base)
	if err != nil {
		t.Fatalf("DiffSnapshot: %v", err)
	}
	if !d.Empty() {
		t.Fatalf("identical snapshot produced patches: %+v", d.Patches)
	}
	if d.WireSize() <= 0 {
		t.Errorf("WireSize = %d, want at least the channel envelope", d.WireSize())
	}
	got, err := store.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	for name := range base.Nodes {
		if got.Nodes[name] != base.Nodes[name] {
			t.Errorf("node %s was rebuilt instead of shared", name)
		}
	}
	if len(got.InFlight) != len(base.InFlight) {
		t.Errorf("in-flight messages lost: got %d want %d", len(got.InFlight), len(base.InFlight))
	}
}

func TestDiffSnapshotCannotDropNode(t *testing.T) {
	base := sampleSnapshot(t)
	store, err := NewStore(base)
	if err != nil {
		t.Fatal(err)
	}
	short := base.Clone()
	delete(short.Nodes, "B")
	if _, err := store.DiffSnapshot(short); err == nil {
		t.Fatalf("dropping a node must fail to diff")
	}
}

// TestApplyDeltaRejectsMalformed: corrupt patch geometry errors instead of
// panicking or producing a corrupt snapshot — the wire feeds this path.
func TestApplyDeltaRejectsMalformed(t *testing.T) {
	base := sampleSnapshot(t)
	store, err := NewStore(base)
	if err != nil {
		t.Fatal(err)
	}
	cases := []NodePatch{
		{Node: "A", PrefixLen: -1, FullLen: 10, Patch: make([]byte, 11)},
		{Node: "A", PrefixLen: 1 << 30, SuffixLen: 1 << 30, FullLen: 4, Patch: nil},
		{Node: "A", PrefixLen: 0, SuffixLen: 0, FullLen: 99, Patch: []byte{1, 2, 3}},
		{Node: "ghost", Impl: "bird", PrefixLen: 4, SuffixLen: 0, FullLen: 4, Patch: nil},         // no baseline to copy from
		{Node: "A", Impl: "bird", PrefixLen: 0, SuffixLen: 0, FullLen: 3, Patch: []byte{1, 2, 3}}, // undecodable content
		{Node: "A", Impl: "no-such-impl", PrefixLen: 0, SuffixLen: 0, FullLen: 0, Patch: nil},     // unknown backend
	}
	for i, p := range cases {
		if _, err := store.ApplyDelta(&SnapshotDelta{Patches: []NodePatch{p}}); err == nil {
			t.Errorf("case %d: malformed patch %+v accepted", i, p)
		}
	}
}
