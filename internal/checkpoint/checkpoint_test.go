package checkpoint

import (
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/bird"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

func sampleSnapshot(t testing.TB) *Snapshot {
	t.Helper()
	mk := func(name string, as bgp.ASN, id bgp.RouterID) *bird.Checkpoint {
		r := bird.MustNew(&bird.Config{
			Name: name, AS: as, RouterID: id,
			Networks: []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16")},
			Policies: map[string]*policy.Policy{"ALL": policy.AcceptAll("ALL")},
			Neighbors: []bird.NeighborConfig{
				{Name: "peer", AS: 65099, Import: "ALL", Export: "ALL"},
			},
		})
		return r.Checkpoint()
	}
	return &Snapshot{
		At: 3 * time.Second,
		Nodes: map[string]node.Checkpoint{
			"A": mk("A", 65001, 1),
			"B": mk("B", 65002, 2),
		},
		InFlight: []netem.QueuedMessage{
			{From: "A", To: "B", Payload: []byte{1, 2, 3}, Deliver: 3100 * time.Millisecond},
		},
		Consistent: true,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSnapshot(t)
	data, err := Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("empty encoding")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.At != s.At || !got.Consistent {
		t.Errorf("metadata lost: %+v", got)
	}
	if len(got.Nodes) != 2 || got.Nodes["A"] == nil || got.Nodes["A"].NodeName() != "A" {
		t.Errorf("nodes lost: %+v", got.NodeNames())
	}
	if impl := got.Nodes["A"].Implementation(); impl != "bird" {
		t.Errorf("decoded checkpoint implementation = %q, want bird", impl)
	}
	if len(got.InFlight) != 1 || string(got.InFlight[0].Payload) != string([]byte{1, 2, 3}) {
		t.Errorf("in-flight messages lost: %+v", got.InFlight)
	}
	// A decoded checkpoint (which lost its in-process config) must still
	// restore via its textual policy form, dispatched through the backend
	// registry.
	if _, err := node.RestoreRouter(got.Nodes["A"]); err != nil {
		t.Errorf("decoded node checkpoint does not restore: %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a gob stream")); err == nil {
		t.Errorf("garbage must not decode")
	}
}

// TestDecodeLegacyGob pins the compatibility fallback: artifacts written with
// the pre-codec gob encoder (no codec header) must still load through Decode,
// and gob-encoded single nodes through DecodeNode.
func TestDecodeLegacyGob(t *testing.T) {
	s := sampleSnapshot(t)
	data, err := EncodeGob(s)
	if err != nil {
		t.Fatalf("EncodeGob: %v", err)
	}
	if codecIs := len(data) >= 2 && data[0] == 0xD1 && data[1] == 0xCE; codecIs {
		t.Fatalf("gob encoding unexpectedly carries the codec magic")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode(legacy gob): %v", err)
	}
	if got.At != s.At || len(got.Nodes) != 2 || got.Nodes["A"].NodeName() != "A" {
		t.Errorf("legacy decode lost state: %+v", got)
	}

	nodeData, err := EncodeNodeGob(s.Nodes["A"])
	if err != nil {
		t.Fatalf("EncodeNodeGob: %v", err)
	}
	cp, err := DecodeNode("bird", nodeData)
	if err != nil {
		t.Fatalf("DecodeNode(legacy gob): %v", err)
	}
	if cp.NodeName() != "A" {
		t.Errorf("legacy node decode = %q", cp.NodeName())
	}
	// Without the in-band tag of the codec form, a gob node encoding is
	// undecodable when no implementation is supplied.
	if _, err := DecodeNode("", nodeData); err == nil {
		t.Errorf("tagless gob node decode must fail")
	}
}

// TestEncodeNodeRoundTrip pins the canonical single-node form: decodable with
// the matching tag, with no tag (in-band), and rejected with a wrong tag.
func TestEncodeNodeRoundTrip(t *testing.T) {
	s := sampleSnapshot(t)
	enc, err := EncodeNode(s.Nodes["A"])
	if err != nil {
		t.Fatalf("EncodeNode: %v", err)
	}
	for _, impl := range []string{"", "bird"} {
		cp, err := DecodeNode(impl, enc)
		if err != nil {
			t.Fatalf("DecodeNode(%q): %v", impl, err)
		}
		if cp.NodeName() != "A" || cp.Implementation() != "bird" {
			t.Errorf("DecodeNode(%q) = %s/%s", impl, cp.NodeName(), cp.Implementation())
		}
	}
	if _, err := DecodeNode("frr", enc); err == nil {
		t.Errorf("mismatched implementation tag must be rejected")
	}
}

// TestMeasureMatchesEncodeExactly pins the arithmetic envelope: Measure
// never materializes the snapshot encoding, yet must agree with it to the
// byte — that identity is what lets stores and rings account for sizes
// without serializing.
func TestMeasureMatchesEncodeExactly(t *testing.T) {
	for _, s := range []*Snapshot{
		sampleSnapshot(t),
		sampleSnapshot(t).DropChannelState(),
	} {
		data, err := Encode(s)
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		sizes, err := Measure(s)
		if err != nil {
			t.Fatalf("Measure: %v", err)
		}
		if sizes.TotalBytes != len(data) {
			t.Errorf("Measure total %d != len(Encode) %d (consistent=%v)", sizes.TotalBytes, len(data), s.Consistent)
		}
	}
}

func TestCloneIsShallowForNodesDeepForMessages(t *testing.T) {
	s := sampleSnapshot(t)
	c := s.Clone()
	c.InFlight[0].Payload[0] = 99
	if s.InFlight[0].Payload[0] == 99 {
		t.Errorf("clone shares in-flight payload backing array")
	}
	if len(c.Nodes) != len(s.Nodes) {
		t.Errorf("clone lost nodes")
	}
}

func TestDropChannelState(t *testing.T) {
	s := sampleSnapshot(t)
	d := s.DropChannelState()
	if d.Consistent || len(d.InFlight) != 0 {
		t.Errorf("DropChannelState did not drop: %+v", d)
	}
	if !s.Consistent || len(s.InFlight) != 1 {
		t.Errorf("original snapshot mutated")
	}
}

func TestMeasure(t *testing.T) {
	s := sampleSnapshot(t)
	sizes, err := Measure(s)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if sizes.TotalBytes <= 0 || sizes.Messages != 1 {
		t.Errorf("sizes = %+v", sizes)
	}
	if len(sizes.PerNodeBytes) != 2 || sizes.PerNodeBytes["A"] <= 0 {
		t.Errorf("per-node sizes = %+v", sizes.PerNodeBytes)
	}
	if sizes.PerNodeBytes["A"]+sizes.PerNodeBytes["B"] > sizes.TotalBytes*2 {
		t.Errorf("per-node sizes inconsistent with total")
	}
}

func TestNodeNamesSorted(t *testing.T) {
	s := sampleSnapshot(t)
	names := s.NodeNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("NodeNames = %v", names)
	}
}

// TestDecodeSubHeaderInputs: the codec-vs-gob sniff must route zero-length
// and sub-header inputs to a clean error on both decode surfaces — a
// truncated artifact can never slice-panic the snapshot loader.
func TestDecodeSubHeaderInputs(t *testing.T) {
	for _, data := range [][]byte{nil, {}, {0xD1}, {0xD1, 0xCE}, {0xD1, 0xCE, 1}} {
		if _, err := Decode(data); err == nil {
			t.Errorf("Decode(%#v): no error", data)
		}
		if _, err := DecodeNode("bird", data); err == nil {
			t.Errorf("DecodeNode(bird, %#v): no error", data)
		}
		if _, err := DecodeNode("", data); err == nil {
			t.Errorf("DecodeNode(untagged, %#v): no error", data)
		}
	}
}
