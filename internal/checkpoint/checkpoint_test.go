package checkpoint

import (
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/bird"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
)

func sampleSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	mk := func(name string, as bgp.ASN, id bgp.RouterID) *bird.Checkpoint {
		r := bird.MustNew(&bird.Config{
			Name: name, AS: as, RouterID: id,
			Networks: []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16")},
			Policies: map[string]*policy.Policy{"ALL": policy.AcceptAll("ALL")},
			Neighbors: []bird.NeighborConfig{
				{Name: "peer", AS: 65099, Import: "ALL", Export: "ALL"},
			},
		})
		return r.Checkpoint()
	}
	return &Snapshot{
		At: 3 * time.Second,
		Nodes: map[string]node.Checkpoint{
			"A": mk("A", 65001, 1),
			"B": mk("B", 65002, 2),
		},
		InFlight: []netem.QueuedMessage{
			{From: "A", To: "B", Payload: []byte{1, 2, 3}, Deliver: 3100 * time.Millisecond},
		},
		Consistent: true,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sampleSnapshot(t)
	data, err := Encode(s)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("empty encoding")
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.At != s.At || !got.Consistent {
		t.Errorf("metadata lost: %+v", got)
	}
	if len(got.Nodes) != 2 || got.Nodes["A"] == nil || got.Nodes["A"].NodeName() != "A" {
		t.Errorf("nodes lost: %+v", got.NodeNames())
	}
	if impl := got.Nodes["A"].Implementation(); impl != "bird" {
		t.Errorf("decoded checkpoint implementation = %q, want bird", impl)
	}
	if len(got.InFlight) != 1 || string(got.InFlight[0].Payload) != string([]byte{1, 2, 3}) {
		t.Errorf("in-flight messages lost: %+v", got.InFlight)
	}
	// A decoded checkpoint (which lost its in-process config) must still
	// restore via its textual policy form, dispatched through the backend
	// registry.
	if _, err := node.RestoreRouter(got.Nodes["A"]); err != nil {
		t.Errorf("decoded node checkpoint does not restore: %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a gob stream")); err == nil {
		t.Errorf("garbage must not decode")
	}
}

func TestCloneIsShallowForNodesDeepForMessages(t *testing.T) {
	s := sampleSnapshot(t)
	c := s.Clone()
	c.InFlight[0].Payload[0] = 99
	if s.InFlight[0].Payload[0] == 99 {
		t.Errorf("clone shares in-flight payload backing array")
	}
	if len(c.Nodes) != len(s.Nodes) {
		t.Errorf("clone lost nodes")
	}
}

func TestDropChannelState(t *testing.T) {
	s := sampleSnapshot(t)
	d := s.DropChannelState()
	if d.Consistent || len(d.InFlight) != 0 {
		t.Errorf("DropChannelState did not drop: %+v", d)
	}
	if !s.Consistent || len(s.InFlight) != 1 {
		t.Errorf("original snapshot mutated")
	}
}

func TestMeasure(t *testing.T) {
	s := sampleSnapshot(t)
	sizes, err := Measure(s)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	if sizes.TotalBytes <= 0 || sizes.Messages != 1 {
		t.Errorf("sizes = %+v", sizes)
	}
	if len(sizes.PerNodeBytes) != 2 || sizes.PerNodeBytes["A"] <= 0 {
		t.Errorf("per-node sizes = %+v", sizes.PerNodeBytes)
	}
	if sizes.PerNodeBytes["A"]+sizes.PerNodeBytes["B"] > sizes.TotalBytes*2 {
		t.Errorf("per-node sizes inconsistent with total")
	}
}

func TestNodeNamesSorted(t *testing.T) {
	s := sampleSnapshot(t)
	names := s.NodeNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Errorf("NodeNames = %v", names)
	}
}
