package checkpoint

import (
	"fmt"
	"sync"

	"github.com/dice-project/dice/internal/node"
)

// Store holds a campaign snapshot in decoded, restore-ready form: an
// immutable per-node image (validated config, parsed policies) and a decoded
// baseline State for every node, built once when the store is created. Clone
// construction and pooled-clone resets restore from the store instead of
// re-parsing the snapshot's serialized records for every explored input.
//
// Every per-node operation dispatches through the node backend registry, so
// a store over a mixed-implementation snapshot decodes and restores each
// node with its own backend.
//
// The store also owns the snapshot's size accounting: Sizes caches one
// measurement, and Delta sizes a later checkpoint of a node against the
// baseline encoding, for delta-based footprint reporting.
//
// A Store is immutable after NewStore (lazily computed caches are
// synchronized) and safe for concurrent use by many workers.
type Store struct {
	snap     *Snapshot
	backends map[string]node.Backend
	images   map[string]node.Image
	states   map[string]node.State

	baselineOnce sync.Once
	baselineErr  error
	baseline     map[string][]byte
	hashes       map[string]Hash

	sizesOnce sync.Once
	sizesErr  error
	sizes     Sizes
}

// NewStore decodes every node checkpoint of the snapshot once and returns the
// restore-ready store. The snapshot is retained by reference and must not be
// mutated afterwards (snapshots are immutable by convention once taken).
func NewStore(snap *Snapshot) (*Store, error) {
	s := &Store{
		snap:     snap,
		backends: make(map[string]node.Backend, len(snap.Nodes)),
		images:   make(map[string]node.Image, len(snap.Nodes)),
		states:   make(map[string]node.State, len(snap.Nodes)),
	}
	for name, cp := range snap.Nodes {
		be, err := node.BackendFor(cp.Implementation())
		if err != nil {
			return nil, fmt.Errorf("checkpoint: store: %w", err)
		}
		im, err := be.ImageOf(cp)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: store: %w", err)
		}
		st, err := be.DecodeState(cp)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: store: %w", err)
		}
		s.backends[name] = be
		s.images[name] = im
		s.states[name] = st
	}
	return s, nil
}

// newStoreShared builds a store whose decoded forms and baseline encodings
// were already produced elsewhere (the ring's content-addressed blobs). The
// lazy caches are pre-completed, so a ring-built store never re-encodes or
// re-decodes anything: an unchanged node's image, state, canonical bytes and
// hash are the same objects across every epoch that retains it.
func newStoreShared(snap *Snapshot, backends map[string]node.Backend,
	images map[string]node.Image, states map[string]node.State,
	baseline map[string][]byte, hashes map[string]Hash) *Store {
	s := &Store{snap: snap, backends: backends, images: images, states: states}
	s.baselineOnce.Do(func() {
		s.baseline = baseline
		s.hashes = hashes
	})
	s.sizesOnce.Do(func() {
		perNode := make(map[string]int, len(baseline))
		for name, data := range baseline {
			perNode[name] = len(data)
		}
		s.sizes = measureFromEncodedLens(snap, perNode)
	})
	return s
}

// Snapshot returns the underlying snapshot.
func (s *Store) Snapshot() *Snapshot { return s.snap }

// NodeNames returns the stored node names, sorted.
func (s *Store) NodeNames() []string { return s.snap.NodeNames() }

// Image returns the named node's immutable router image, or nil.
func (s *Store) Image(name string) node.Image { return s.images[name] }

// State returns the named node's decoded baseline state, or nil.
func (s *Store) State(name string) node.State { return s.states[name] }

// Restore builds a fresh router for the named node from its image and
// baseline state, using the backend that produced the checkpoint.
func (s *Store) Restore(name string) (node.Router, error) {
	be, ok := s.backends[name]
	if !ok {
		return nil, fmt.Errorf("checkpoint: store has no node %q", name)
	}
	return be.Restore(s.images[name], s.states[name])
}

// Sizes measures the snapshot's encoded footprint once and caches the result;
// every later call is free. This replaces ad-hoc Encode/Measure calls that
// re-serialized the snapshot at each site.
func (s *Store) Sizes() (Sizes, error) {
	s.sizesOnce.Do(func() {
		s.sizes, s.sizesErr = Measure(s.snap)
	})
	return s.sizes, s.sizesErr
}

// NodeHash returns the content hash of the named node's baseline checkpoint:
// the SHA-256 of its canonical encoding. Equal state has equal hash across
// processes, so these hashes are exchangeable identities — the control plane
// uses the combined form to let agents verify a fetched baseline.
func (s *Store) NodeHash(name string) (Hash, error) {
	if err := s.encodeBaselines(); err != nil {
		return Hash{}, err
	}
	h, ok := s.hashes[name]
	if !ok {
		return Hash{}, fmt.Errorf("checkpoint: store has no node %q", name)
	}
	return h, nil
}

// Hashes returns the content hash of every node's baseline checkpoint. The
// returned map is shared; callers must not mutate it.
func (s *Store) Hashes() (map[string]Hash, error) {
	if err := s.encodeBaselines(); err != nil {
		return nil, err
	}
	return s.hashes, nil
}

// Delta summarizes how a node checkpoint's encoding compares with the
// baseline captured in the store.
type Delta struct {
	Node string
	// BaselineBytes and FullBytes are the encoded sizes of the baseline and
	// the new checkpoint.
	BaselineBytes int
	FullBytes     int
	// DeltaBytes is the size of a naive binary delta against the baseline
	// encoding: the differing middle section (common prefix and suffix
	// trimmed) plus a small framing header. It bounds what a delta-encoded
	// checkpoint transfer would cost.
	DeltaBytes int
}

// deltaFraming is the fixed cost of describing a contiguous binary patch
// (prefix length, suffix length, patch length as varints, generously sized).
const deltaFraming = 16

// Delta encodes the given checkpoint of the named node and sizes it as a
// binary delta against the node's baseline encoding. Exploration uses it to
// account for how much smaller "ship the changes" is than "ship the state"
// once a clone has diverged from the snapshot.
func (s *Store) Delta(name string, cp node.Checkpoint) (Delta, error) {
	if err := s.encodeBaselines(); err != nil {
		return Delta{}, err
	}
	base, ok := s.baseline[name]
	if !ok {
		return Delta{}, fmt.Errorf("checkpoint: store has no node %q", name)
	}
	full, err := EncodeNode(cp)
	if err != nil {
		return Delta{}, err
	}
	prefix := commonPrefix(base, full)
	suffix := commonSuffix(base[prefix:], full[prefix:])
	d := Delta{
		Node:          name,
		BaselineBytes: len(base),
		FullBytes:     len(full),
		DeltaBytes:    len(full) - prefix - suffix + deltaFraming,
	}
	return d, nil
}

// encodeBaselines lazily encodes every node's baseline checkpoint exactly
// once and content-addresses each encoding, for delta comparisons and hash
// lookups. Stores built by the ring skip this entirely: their encodings and
// hashes are pre-filled from the content-addressed blobs.
func (s *Store) encodeBaselines() error {
	s.baselineOnce.Do(func() {
		s.baseline = make(map[string][]byte, len(s.snap.Nodes))
		s.hashes = make(map[string]Hash, len(s.snap.Nodes))
		//dice:allow detrange each node is encoded and hashed independently into name-keyed maps; no cross-entry byte stream exists
		for name, cp := range s.snap.Nodes {
			data, err := EncodeNode(cp)
			if err != nil {
				s.baselineErr = err
				return
			}
			s.baseline[name] = data
			s.hashes[name] = HashBytes(data)
		}
	})
	return s.baselineErr
}

func commonPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func commonSuffix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[len(a)-1-i] != b[len(b)-1-i] {
			return i
		}
	}
	return n
}
