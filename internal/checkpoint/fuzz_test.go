package checkpoint

import (
	"bytes"
	"testing"

	"github.com/dice-project/dice/internal/checkpoint/codec"
)

// FuzzCheckpointCodecDecode hammers the codec's decode surface with mutated
// bytes: whole snapshots, single-node encodings, flipped headers, truncated
// slabs, and the legacy gob fallback path. The contract under fuzzing is the
// codec's core safety property — malformed input returns an error, it never
// panics and never decodes into a value that re-encodes differently. The
// checked-in seed corpus (testdata/fuzz/FuzzCheckpointCodecDecode) starts
// the mutator from valid encodings so it spends its budget inside the slab
// parsers, not on the magic check.
func FuzzCheckpointCodecDecode(f *testing.F) {
	s := sampleSnapshot(f)
	snapEnc, err := Encode(s)
	if err != nil {
		f.Fatal(err)
	}
	nodeEnc, err := EncodeNode(s.Nodes["A"])
	if err != nil {
		f.Fatal(err)
	}
	gobEnc, err := EncodeGob(s)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(snapEnc)
	f.Add(nodeEnc)
	f.Add(gobEnc)
	f.Add([]byte{})
	f.Add([]byte{codec.Magic0})
	f.Add([]byte{codec.Magic0, codec.Magic1})
	f.Add([]byte{codec.Magic0, codec.Magic1, codec.Version, codec.KindSnapshot})
	f.Add([]byte{codec.Magic0, codec.Magic1, codec.Version, codec.KindNode})
	f.Add([]byte{codec.Magic0, codec.Magic1, codec.Version + 1, codec.KindSnapshot})
	f.Add(snapEnc[:len(snapEnc)/2])
	f.Add(nodeEnc[:len(nodeEnc)-1])
	flipped := append([]byte(nil), snapEnc...)
	flipped[len(flipped)/2] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		// Decode must error or produce a snapshot that re-encodes cleanly.
		// The re-encoding is the canonical form (mutated input may carry
		// non-minimal varints or unsorted maps that parse anyway), so it must
		// be a fixed point: decoding it and encoding again is bytewise stable.
		if snap, err := Decode(data); err == nil {
			re, err := Encode(snap)
			if err != nil {
				t.Fatalf("decoded snapshot does not re-encode: %v", err)
			}
			snap2, err := Decode(re)
			if err != nil {
				t.Fatalf("re-encoded snapshot does not decode: %v", err)
			}
			re2, err := Encode(snap2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(re, re2) {
				t.Fatalf("canonical form not a fixed point: %d vs %d bytes", len(re), len(re2))
			}
			sizes, err := Measure(snap)
			if err != nil {
				t.Fatalf("decoded snapshot does not measure: %v", err)
			}
			if sizes.TotalBytes != len(re) {
				t.Fatalf("Measure %d != len(Encode) %d", sizes.TotalBytes, len(re))
			}
		}
		// Same contract for the single-node surface, tagless and tagged.
		for _, impl := range []string{"", "bird", "frr"} {
			if cp, err := DecodeNode(impl, data); err == nil {
				if _, err := EncodeNode(cp); err != nil {
					t.Fatalf("decoded node (impl %q) does not re-encode: %v", impl, err)
				}
			}
		}
	})
}
