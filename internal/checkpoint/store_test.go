package checkpoint

import (
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bird"
)

func TestStoreRestoresNodes(t *testing.T) {
	s := sampleSnapshot(t)
	store, err := NewStore(s)
	if err != nil {
		t.Fatalf("NewStore: %v", err)
	}
	if got := store.NodeNames(); len(got) != 2 || got[0] != "A" {
		t.Fatalf("NodeNames = %v", got)
	}
	if store.Snapshot() != s {
		t.Errorf("Snapshot must return the underlying snapshot")
	}
	r, err := store.Restore("A")
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if r.Config().Name != "A" {
		t.Errorf("restored router %q, want A", r.Config().Name)
	}
	if r.LocRIB().Best(bgp.MustParsePrefix("10.1.0.0/16")) == nil {
		t.Errorf("restored router lost its originated route")
	}
	if _, err := store.Restore("nope"); err == nil {
		t.Errorf("restoring an unknown node must fail")
	}
	if store.Image("nope") != nil || store.State("nope") != nil {
		t.Errorf("unknown node must have no image or state")
	}
}

func TestStoreSizesCachedAndConsistentWithMeasure(t *testing.T) {
	s := sampleSnapshot(t)
	store, err := NewStore(s)
	if err != nil {
		t.Fatal(err)
	}
	first, err := store.Sizes()
	if err != nil {
		t.Fatalf("Sizes: %v", err)
	}
	direct, err := Measure(s)
	if err != nil {
		t.Fatal(err)
	}
	if first.TotalBytes != direct.TotalBytes || first.Messages != direct.Messages {
		t.Errorf("store sizes %+v differ from Measure %+v", first, direct)
	}
	second, err := store.Sizes()
	if err != nil {
		t.Fatal(err)
	}
	if second.TotalBytes != first.TotalBytes {
		t.Errorf("cached Sizes changed between calls")
	}
}

func TestStoreDelta(t *testing.T) {
	s := sampleSnapshot(t)
	store, err := NewStore(s)
	if err != nil {
		t.Fatal(err)
	}

	// A checkpoint identical to the baseline deltas down to framing only.
	same, err := store.Delta("A", s.Nodes["A"])
	if err != nil {
		t.Fatalf("Delta(identical): %v", err)
	}
	if same.DeltaBytes != deltaFraming {
		t.Errorf("identical checkpoint delta = %d bytes, want framing only (%d)", same.DeltaBytes, deltaFraming)
	}
	if same.FullBytes != same.BaselineBytes {
		t.Errorf("identical checkpoint full size %d != baseline %d", same.FullBytes, same.BaselineBytes)
	}

	// A diverged checkpoint must delta smaller than its full encoding (the
	// bulk of the encoding — config, policies, unchanged tables — is shared
	// with the baseline).
	r, err := store.Restore("A")
	if err != nil {
		t.Fatal(err)
	}
	diverged, ok := r.TakeCheckpoint().(*bird.Checkpoint)
	if !ok {
		t.Fatalf("restored router checkpoint is %T, want *bird.Checkpoint", r.TakeCheckpoint())
	}
	diverged.Stats.UpdatesReceived += 3
	d, err := store.Delta("A", diverged)
	if err != nil {
		t.Fatalf("Delta(diverged): %v", err)
	}
	if d.DeltaBytes <= 0 || d.DeltaBytes >= d.FullBytes {
		t.Errorf("diverged delta = %d bytes of %d full; want a real saving", d.DeltaBytes, d.FullBytes)
	}

	if _, err := store.Delta("nope", s.Nodes["A"]); err == nil {
		t.Errorf("delta against an unknown node must fail")
	}
}
