package checkpoint

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/node"
)

// Epoch is one entry of the live runtime's rolling checkpoint history: a
// consistent snapshot decoded into a restore-ready Store, tagged with a
// monotonically increasing sequence number and measured both absolutely (its
// encoded footprint) and as a byte-level delta against the previous epoch.
//
// Delta accounting is content-addressed: each node checkpoint's identity is
// the SHA-256 of its canonical encoding, and a node whose hash matches the
// previous epoch's is unchanged — shipping the epoch as a delta would send
// one hash reference (HashSize bytes) in its place. The deterministic codec
// is what makes this sound: identical state encodes to identical bytes, so
// equal hashes mean equal state, with no caller-supplied fingerprints in the
// loop. (The old gob encoding serialized maps in randomized iteration order,
// which forced exactly that fingerprint workaround.)
type Epoch struct {
	// Seq is the epoch number, 1-based and monotonically increasing across
	// the ring's lifetime (eviction never reuses a sequence number).
	Seq int
	// At is the virtual time the cut was taken at.
	At time.Duration
	// Taken is the wall-clock time the epoch entered the ring.
	Taken time.Time
	// Store holds the snapshot in decoded, restore-ready form; Store.Snapshot
	// recovers the raw cut. Nodes unchanged since earlier retained epochs
	// share their decoded images, states and canonical encodings with them
	// (structural sharing through the ring's content-addressed store).
	Store *Store
	// Bytes is the snapshot's total encoded footprint.
	Bytes int
	// DeltaBytes is what shipping this epoch as a delta against the previous
	// one would cost: the canonical encodings of the changed nodes, a
	// HashSize reference for each unchanged node, and the channel-state
	// envelope (which ships every epoch). The first epoch is a full shipment.
	DeltaBytes int
	// NodesChanged counts the nodes whose content hash differs from the
	// previous epoch (all of them for the first epoch).
	NodesChanged int
	// Fingerprint is a stable digest of the whole captured state, folded from
	// the per-node content hashes and the channel state. Two epochs with
	// equal fingerprints captured identical systems — in any process, on any
	// platform — and the live runtime's cross-epoch dedupe cache keys on it.
	Fingerprint uint64
	// Hashes maps each node to the content address of its checkpoint.
	Hashes map[string]Hash
}

// Ring is a bounded, epoch-tagged history of checkpoints: the live runtime
// pushes one consistent snapshot per checkpoint interval and the ring retains
// the most recent ones, evicting the oldest beyond its capacity. Pushing
// interns every node checkpoint into the ring's content-addressed store and
// builds the epoch's Store from the interned blobs (off the deployment's
// critical path — the snapshot is already immutable), so decoded state is
// shared across epochs and retention cost tracks how much actually changed.
//
// A Ring is safe for concurrent use.
type Ring struct {
	mu       sync.Mutex
	capacity int
	seq      int
	epochs   []*Epoch // oldest first
	cas      *CAS
	clock    func() time.Time
}

// NewRing returns an empty ring retaining at most capacity epochs (8 when
// capacity is not positive).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 8
	}
	return &Ring{capacity: capacity, cas: NewCAS(), clock: time.Now}
}

// SetClock injects the time source stamped into Epoch.Taken — the seam
// deterministic harnesses use so replayed pushes carry reproducible
// wall-clock tags. The default is the real clock.
func (r *Ring) SetClock(clock func() time.Time) {
	if clock != nil {
		r.mu.Lock()
		r.clock = clock
		r.mu.Unlock()
	}
}

// Push interns the snapshot's node checkpoints into the content-addressed
// store, measures the epoch absolutely and as a byte-level delta against the
// previous one, tags it with the next epoch number and appends it, evicting
// (and releasing) the oldest epoch if the ring is full. The snapshot is
// adopted: node checkpoints whose content is already retained are replaced
// with the retained decoded values, deduplicating across epochs.
func (r *Ring) Push(snap *Snapshot) (*Epoch, error) {
	names := snap.NodeNames()
	hashes := make(map[string]Hash, len(names))
	blobs := make(map[string]*casBlob, len(names))
	interned := make([]Hash, 0, len(names))
	fail := func(err error) (*Epoch, error) {
		for _, h := range interned {
			r.cas.release(h)
		}
		return nil, fmt.Errorf("checkpoint: ring push: %w", err)
	}
	for _, name := range names {
		h, b, err := r.cas.intern(snap.Nodes[name])
		if err != nil {
			return fail(err)
		}
		interned = append(interned, h)
		hashes[name] = h
		blobs[name] = b
		// Adopt the retained decoded checkpoint: identical content across
		// epochs collapses to one value.
		snap.Nodes[name] = b.cp
	}

	// Build the epoch's store from the interned blobs — no re-encode, no
	// re-decode, and unchanged nodes share every derived form with the
	// epochs that already hold them.
	stBackends := make(map[string]node.Backend, len(names))
	stImages := make(map[string]node.Image, len(names))
	stStates := make(map[string]node.State, len(names))
	stBaseline := make(map[string][]byte, len(names))
	for name, b := range blobs {
		stBackends[name] = b.be
		stImages[name] = b.image
		stStates[name] = b.state
		stBaseline[name] = b.data
	}
	store := newStoreShared(snap, stBackends, stImages, stStates, stBaseline, hashes)
	sizes, err := store.Sizes()
	if err != nil {
		return fail(err)
	}

	ep := &Epoch{
		At:          snap.At,
		Store:       store,
		Bytes:       sizes.TotalBytes,
		Hashes:      hashes,
		Fingerprint: combineHashes(snap, hashes),
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ep.Seq = r.seq
	ep.Taken = r.clock()

	// Byte-level delta vs the previous epoch: changed nodes ship their full
	// canonical encoding, unchanged nodes ship a HashSize content reference,
	// and the channel-state envelope (total minus the per-node parts) ships
	// every time.
	perNodeTotal := 0
	for _, n := range sizes.PerNodeBytes {
		perNodeTotal += n
	}
	envelope := sizes.TotalBytes - perNodeTotal
	var prev *Epoch
	if n := len(r.epochs); n > 0 {
		prev = r.epochs[n-1]
	}
	ep.DeltaBytes = envelope
	for name, bytes := range sizes.PerNodeBytes {
		changed := true
		if prev != nil {
			pfp, ok := prev.Hashes[name]
			changed = !ok || pfp != hashes[name]
		}
		if changed {
			ep.DeltaBytes += bytes
			ep.NodesChanged++
		} else {
			ep.DeltaBytes += HashSize
		}
	}

	r.epochs = append(r.epochs, ep)
	if len(r.epochs) > r.capacity {
		over := len(r.epochs) - r.capacity
		for i := 0; i < over; i++ {
			for _, h := range r.epochs[i].Hashes {
				r.cas.release(h)
			}
			r.epochs[i] = nil
		}
		r.epochs = append(r.epochs[:0], r.epochs[over:]...)
	}
	return ep, nil
}

// Latest returns the most recent epoch, or nil for an empty ring.
func (r *Ring) Latest() *Epoch {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.epochs) == 0 {
		return nil
	}
	return r.epochs[len(r.epochs)-1]
}

// Get returns the epoch with the given sequence number, or nil when it was
// never pushed or has been evicted.
func (r *Ring) Get(seq int) *Epoch {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ep := range r.epochs {
		if ep.Seq == seq {
			return ep
		}
	}
	return nil
}

// Len returns the number of retained epochs.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.epochs)
}

// Capacity returns the ring's retention bound.
func (r *Ring) Capacity() int { return r.capacity }

// Seqs returns the retained epoch numbers, oldest first.
func (r *Ring) Seqs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, len(r.epochs))
	for i, ep := range r.epochs {
		out[i] = ep.Seq
	}
	return out
}

// RetainedBytes returns the canonical-encoding bytes the ring actually holds
// across all retained epochs: each unique node content counted once, however
// many epochs reference it. For a quiet system this stays near one
// snapshot's footprint no matter the capacity.
func (r *Ring) RetainedBytes() int { return r.cas.Bytes() }

// UniqueBlobs returns the number of distinct node contents retained.
func (r *Ring) UniqueBlobs() int { return r.cas.Len() }

// SharedBytesSaved returns the bytes structural sharing saves across the
// retained epochs (see CAS.SharedBytesSaved).
func (r *Ring) SharedBytesSaved() int { return r.cas.SharedBytesSaved() }

// RefTotal returns the sum of blob reference counts across retained epochs.
func (r *Ring) RefTotal() int { return r.cas.RefTotal() }

// combineHashes folds the per-node content hashes (in sorted node order) and
// the channel state into one epoch digest. Unlike the hashes themselves this
// is a 64-bit convenience key (dedupe caches, campaign seeds), but it
// inherits their cross-process stability.
func combineHashes(snap *Snapshot, hashes map[string]Hash) uint64 {
	h := fnv.New64a()
	for _, name := range snap.NodeNames() {
		h.Write([]byte(name))
		fp := hashes[name]
		h.Write(fp[:])
	}
	for _, m := range snap.InFlight {
		h.Write([]byte(m.From))
		h.Write([]byte{0})
		h.Write([]byte(m.To))
		h.Write([]byte{0})
		h.Write(m.Payload)
	}
	return h.Sum64()
}
