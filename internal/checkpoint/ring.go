package checkpoint

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Epoch is one entry of the live runtime's rolling checkpoint history: a
// consistent snapshot decoded into a restore-ready Store, tagged with a
// monotonically increasing sequence number and measured both absolutely (its
// encoded footprint) and as a delta against the previous epoch.
//
// Delta accounting is fingerprint-driven: the caller supplies a deterministic
// per-node fingerprint of the captured state, and a node whose fingerprint
// matches the previous epoch's is unchanged — shipping the epoch as a delta
// would skip it. (Byte-level diffs of the gob encodings would be noise: gob
// serializes the checkpoint maps in randomized iteration order, so identical
// states do not encode identically.)
type Epoch struct {
	// Seq is the epoch number, 1-based and monotonically increasing across
	// the ring's lifetime (eviction never reuses a sequence number).
	Seq int
	// At is the virtual time the cut was taken at.
	At time.Duration
	// Taken is the wall-clock time the epoch entered the ring.
	Taken time.Time
	// Store holds the snapshot in decoded, restore-ready form; Store.Snapshot
	// recovers the raw cut.
	Store *Store
	// Bytes is the snapshot's total encoded footprint.
	Bytes int
	// DeltaBytes is what shipping this epoch as a delta against the previous
	// one would cost: the encodings of the changed nodes plus the
	// channel-state envelope (which ships every epoch). The first epoch is a
	// full shipment.
	DeltaBytes int
	// NodesChanged counts the nodes whose fingerprint differs from the
	// previous epoch (all of them for the first epoch, or when fingerprints
	// are not supplied).
	NodesChanged int
	// Fingerprint is a stable digest of the whole captured state, combined
	// from the per-node fingerprints and the channel state. Two epochs with
	// equal fingerprints captured behaviorally identical systems; the live
	// runtime's cross-epoch dedupe cache keys on it. Zero when the caller
	// supplied no fingerprints.
	Fingerprint uint64

	// nodeFPs keeps the per-node fingerprints for the next epoch's delta.
	nodeFPs map[string]uint64
}

// Ring is a bounded, epoch-tagged history of checkpoints: the live runtime
// pushes one consistent snapshot per checkpoint interval and the ring retains
// the most recent ones, evicting the oldest beyond its capacity. Pushing
// decodes the snapshot into a Store once (off the deployment's critical
// path — the snapshot is already immutable) and performs the size and delta
// measurements.
//
// A Ring is safe for concurrent use.
type Ring struct {
	mu       sync.Mutex
	capacity int
	seq      int
	epochs   []*Epoch // oldest first
}

// NewRing returns an empty ring retaining at most capacity epochs (8 when
// capacity is not positive).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 8
	}
	return &Ring{capacity: capacity}
}

// Push decodes the snapshot, measures it, tags it with the next epoch number
// and appends it, evicting the oldest epoch if the ring is full. nodeFPs is
// the caller's deterministic per-node state fingerprint; nil disables change
// tracking (every node counts as changed and the epoch fingerprint is zero).
func (r *Ring) Push(snap *Snapshot, nodeFPs map[string]uint64) (*Epoch, error) {
	store, err := NewStore(snap)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: ring push: %w", err)
	}
	sizes, err := store.Sizes()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: ring push: %w", err)
	}
	ep := &Epoch{
		At:    snap.At,
		Taken: time.Now(),
		Store: store,
		Bytes: sizes.TotalBytes,
	}
	if nodeFPs != nil {
		ep.nodeFPs = make(map[string]uint64, len(nodeFPs))
		for k, v := range nodeFPs {
			ep.nodeFPs[k] = v
		}
		ep.Fingerprint = combineFingerprints(snap, ep.nodeFPs)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	ep.Seq = r.seq

	// Delta vs the previous epoch: changed nodes ship their full encoding,
	// unchanged nodes ship nothing, and the channel-state envelope (total
	// minus the per-node parts) ships every time.
	perNodeTotal := 0
	for _, n := range sizes.PerNodeBytes {
		perNodeTotal += n
	}
	envelope := sizes.TotalBytes - perNodeTotal
	var prev *Epoch
	if n := len(r.epochs); n > 0 {
		prev = r.epochs[n-1]
	}
	ep.DeltaBytes = envelope
	for name, bytes := range sizes.PerNodeBytes {
		changed := true
		if prev != nil && prev.nodeFPs != nil && ep.nodeFPs != nil {
			pfp, ok := prev.nodeFPs[name]
			changed = !ok || pfp != ep.nodeFPs[name]
		}
		if changed {
			ep.DeltaBytes += bytes
			ep.NodesChanged++
		}
	}

	r.epochs = append(r.epochs, ep)
	if len(r.epochs) > r.capacity {
		over := len(r.epochs) - r.capacity
		for i := 0; i < over; i++ {
			r.epochs[i] = nil
		}
		r.epochs = append(r.epochs[:0], r.epochs[over:]...)
	}
	return ep, nil
}

// Latest returns the most recent epoch, or nil for an empty ring.
func (r *Ring) Latest() *Epoch {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.epochs) == 0 {
		return nil
	}
	return r.epochs[len(r.epochs)-1]
}

// Get returns the epoch with the given sequence number, or nil when it was
// never pushed or has been evicted.
func (r *Ring) Get(seq int) *Epoch {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ep := range r.epochs {
		if ep.Seq == seq {
			return ep
		}
	}
	return nil
}

// Len returns the number of retained epochs.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.epochs)
}

// Capacity returns the ring's retention bound.
func (r *Ring) Capacity() int { return r.capacity }

// Seqs returns the retained epoch numbers, oldest first.
func (r *Ring) Seqs() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]int, len(r.epochs))
	for i, ep := range r.epochs {
		out[i] = ep.Seq
	}
	return out
}

// combineFingerprints folds the per-node fingerprints (in sorted node order)
// and the channel state into one epoch digest.
func combineFingerprints(snap *Snapshot, nodeFPs map[string]uint64) uint64 {
	h := fnv.New64a()
	for _, name := range snap.NodeNames() {
		h.Write([]byte(name))
		var buf [8]byte
		fp := nodeFPs[name]
		for i := 0; i < 8; i++ {
			buf[i] = byte(fp >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, m := range snap.InFlight {
		h.Write([]byte(m.From))
		h.Write([]byte{0})
		h.Write([]byte(m.To))
		h.Write([]byte{0})
		h.Write(m.Payload)
	}
	return h.Sum64()
}
