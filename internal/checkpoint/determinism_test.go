package checkpoint_test

import (
	"bytes"
	"testing"

	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/topology"
)

// multiPeerSnapshot converges a line cluster whose middle routers hold
// multi-entry AdjIn/AdjOut maps — the shape that exposes any map-iteration
// nondeterminism in the checkpoint encoding.
func multiPeerSnapshot(t *testing.T) *checkpoint.Snapshot {
	t.Helper()
	c := cluster.MustBuild(topology.Line(4), cluster.Options{Seed: 1})
	c.Converge()
	return c.Snapshot()
}

// TestEncodeNodeDeterministic: identical checkpoints must always encode to
// identical bytes. The snapshot-delta wire format patches node encodings
// byte-wise against a baseline both ends compute independently, so a single
// unstable byte would corrupt every shipped shard.
func TestEncodeNodeDeterministic(t *testing.T) {
	snap := multiPeerSnapshot(t)
	for name, cp := range snap.Nodes {
		first, err := checkpoint.EncodeNode(cp)
		if err != nil {
			t.Fatalf("EncodeNode(%s): %v", name, err)
		}
		for i := 0; i < 32; i++ {
			again, err := checkpoint.EncodeNode(cp)
			if err != nil {
				t.Fatalf("EncodeNode(%s) #%d: %v", name, i, err)
			}
			if !bytes.Equal(first, again) {
				t.Fatalf("node %s encoding unstable: run %d differs from first", name, i)
			}
		}
	}
}

// TestDiffSnapshotSelfIsEmpty: a snapshot diffed against a store built from
// that same snapshot must produce zero patches — the control plane relies on
// this to ship empty deltas when the campaign cut is the baseline.
func TestDiffSnapshotSelfIsEmpty(t *testing.T) {
	snap := multiPeerSnapshot(t)
	store, err := checkpoint.NewStore(snap)
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.DiffSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		t.Fatalf("self-diff produced %d patches, want none", len(d.Patches))
	}
}

// TestDeltaSurvivesEncodedBaseline simulates the process boundary: the agent
// side holds a store rebuilt from the *encoded* baseline (decode ∘ encode),
// not the original objects, and a delta computed control-side must still
// apply there. This is exactly the distributed shard path.
func TestDeltaSurvivesEncodedBaseline(t *testing.T) {
	base := multiPeerSnapshot(t)
	controlStore, err := checkpoint.NewStore(base)
	if err != nil {
		t.Fatal(err)
	}

	// The campaign cut: the same node set with drifted state — a hijack
	// changes RIBs (and config text) on several nodes.
	topo := topology.Line(4)
	c := cluster.MustBuild(topo, cluster.Options{
		Seed:           1,
		ConfigOverride: faults.ApplyConfigFaults(faults.MisOrigination{Router: "R4", Prefix: topo.Nodes[0].Prefixes[0]}),
	})
	c.Converge()
	target := c.Snapshot()
	delta, err := controlStore.DiffSnapshot(target)
	if err != nil {
		t.Fatal(err)
	}
	if delta.Empty() {
		t.Fatal("distinct snapshots produced an empty delta; the test is vacuous")
	}

	// Agent side: the baseline crossed the wire as bytes.
	encoded, err := checkpoint.Encode(base)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := checkpoint.Decode(encoded)
	if err != nil {
		t.Fatal(err)
	}
	agentStore, err := checkpoint.NewStore(decoded)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := agentStore.ApplyDelta(delta)
	if err != nil {
		t.Fatalf("delta did not survive the encoded baseline: %v", err)
	}
	for name, cp := range target.Nodes {
		want, err := checkpoint.EncodeNode(cp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := checkpoint.EncodeNode(rebuilt.Nodes[name])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("node %s reconstructed differently across the boundary", name)
		}
	}
}
