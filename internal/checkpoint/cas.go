package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"github.com/dice-project/dice/internal/node"
)

// HashSize is the byte length of a content hash — also what an unchanged
// node costs per epoch in delta accounting: one hash reference in place of
// the full encoding.
const HashSize = sha256.Size

// Hash is the content address of a node checkpoint: the SHA-256 of its
// canonical encoding (the exact bytes EncodeNode produces). Because the
// codec is deterministic, equal router state has equal hash in any process
// on any platform, which is what makes hashes meaningful as identities
// rather than as per-process fingerprints.
type Hash [HashSize]byte

// String renders the hash as lowercase hex.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether the hash is the zero value (no content).
func (h Hash) IsZero() bool { return h == Hash{} }

// HashBytes content-addresses an encoding.
func HashBytes(data []byte) Hash { return sha256.Sum256(data) }

// HashNode content-addresses a node checkpoint: the SHA-256 of its canonical
// encoding.
func HashNode(cp node.Checkpoint) (Hash, error) {
	enc, err := EncodeNode(cp)
	if err != nil {
		return Hash{}, err
	}
	return HashBytes(enc), nil
}

// casBlob is one stored checkpoint: the canonical encoding that defines its
// identity plus everything expensive derived from it exactly once — the
// decoded checkpoint value, its backend, and the restore-ready image and
// state. Re-interning an identical checkpoint returns this blob, so a node
// that did not change between ring epochs shares one decoded form across all
// of them.
type casBlob struct {
	data  []byte
	cp    node.Checkpoint
	be    node.Backend
	image node.Image
	state node.State
	refs  int
}

// CAS is a content-addressed store of node checkpoints with reference
// counting: interning a checkpoint whose canonical encoding is already held
// costs a hash lookup and returns the existing blob (structural sharing —
// no second decode, no second copy of the bytes); releasing drops a
// reference and frees the blob when the last holder is gone. The ring uses
// one CAS across its epochs so retention cost scales with how much state
// actually changed, not with capacity × snapshot size.
//
// A CAS is safe for concurrent use.
type CAS struct {
	mu    sync.Mutex
	blobs map[Hash]*casBlob
}

// NewCAS returns an empty content-addressed store.
func NewCAS() *CAS {
	return &CAS{blobs: make(map[Hash]*casBlob)}
}

// intern stores the checkpoint under its content hash and takes a reference.
// On a hit the existing blob is returned and the argument's decoded forms are
// never computed; on a miss the checkpoint is decoded into its restore-ready
// image and state once.
func (c *CAS) intern(cp node.Checkpoint) (Hash, *casBlob, error) {
	enc, err := EncodeNode(cp)
	if err != nil {
		return Hash{}, nil, err
	}
	h := HashBytes(enc)

	c.mu.Lock()
	if b, ok := c.blobs[h]; ok {
		b.refs++
		c.mu.Unlock()
		return h, b, nil
	}
	c.mu.Unlock()

	// Miss: decode outside the lock (image/state decoding is the expensive
	// part), then re-check — a concurrent intern of the same content wins and
	// this decode is discarded.
	be, err := node.BackendFor(cp.Implementation())
	if err != nil {
		return Hash{}, nil, fmt.Errorf("checkpoint: cas intern: %w", err)
	}
	im, err := be.ImageOf(cp)
	if err != nil {
		return Hash{}, nil, fmt.Errorf("checkpoint: cas intern: %w", err)
	}
	st, err := be.DecodeState(cp)
	if err != nil {
		return Hash{}, nil, fmt.Errorf("checkpoint: cas intern: %w", err)
	}
	nb := &casBlob{data: enc, cp: cp, be: be, image: im, state: st, refs: 1}

	c.mu.Lock()
	defer c.mu.Unlock()
	if b, ok := c.blobs[h]; ok {
		b.refs++
		return h, b, nil
	}
	c.blobs[h] = nb
	return h, nb, nil
}

// release drops one reference to the hash, freeing the blob when no
// references remain. Releasing an absent hash is a no-op (defensive: the
// caller's bookkeeping is the source of truth).
func (c *CAS) release(h Hash) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.blobs[h]
	if !ok {
		return
	}
	b.refs--
	if b.refs <= 0 {
		delete(c.blobs, h)
	}
}

// Len returns the number of unique blobs currently retained.
func (c *CAS) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.blobs)
}

// Bytes returns the total canonical-encoding bytes retained — each unique
// blob counted once however many epochs reference it.
func (c *CAS) Bytes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, b := range c.blobs {
		total += len(b.data)
	}
	return total
}

// SharedBytesSaved returns the canonical-encoding bytes structural sharing
// avoids retaining: for each blob, (refs−1) × its encoded size — what a
// naive per-epoch copy would additionally hold. Zero when nothing is shared.
func (c *CAS) SharedBytesSaved() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, b := range c.blobs {
		if b.refs > 1 {
			total += (b.refs - 1) * len(b.data)
		}
	}
	return total
}

// RefTotal returns the sum of all blob reference counts — the number of
// epoch-slots resolved by the store, shared or not.
func (c *CAS) RefTotal() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, b := range c.blobs {
		total += b.refs
	}
	return total
}

// Contains reports whether the hash is currently retained.
func (c *CAS) Contains(h Hash) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.blobs[h]
	return ok
}

// Refs returns the reference count of the hash (0 when absent) — exposed for
// retention accounting and tests.
func (c *CAS) Refs(h Hash) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.blobs[h]
	if !ok {
		return 0
	}
	return b.refs
}
