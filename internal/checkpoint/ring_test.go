package checkpoint

import (
	"testing"
)

// ringFPs builds a synthetic per-node fingerprint map over the sample
// snapshot's nodes; the ring only compares values, never interprets them.
func ringFPs(s *Snapshot, salt uint64) map[string]uint64 {
	out := make(map[string]uint64)
	for _, name := range s.NodeNames() {
		out[name] = salt
	}
	return out
}

func TestRingSeqAndRetention(t *testing.T) {
	s := sampleSnapshot(t)
	r := NewRing(2)
	if r.Capacity() != 2 {
		t.Fatalf("capacity = %d", r.Capacity())
	}
	for i := 1; i <= 4; i++ {
		ep, err := r.Push(s, ringFPs(s, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if ep.Seq != i {
			t.Fatalf("epoch %d got seq %d", i, ep.Seq)
		}
		if ep.Store == nil || ep.Bytes <= 0 {
			t.Fatalf("epoch %d not measured: store=%v bytes=%d", i, ep.Store, ep.Bytes)
		}
		if ep.At != s.At {
			t.Fatalf("epoch At = %v, want %v", ep.At, s.At)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("retention: len = %d, want 2", r.Len())
	}
	if got := r.Seqs(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("retained seqs = %v, want [3 4]", got)
	}
	if r.Get(1) != nil {
		t.Fatalf("evicted epoch 1 still retrievable")
	}
	if ep := r.Get(4); ep == nil || ep != r.Latest() {
		t.Fatalf("Get(4)/Latest mismatch")
	}
}

func TestRingDeltaAccounting(t *testing.T) {
	s := sampleSnapshot(t)
	r := NewRing(4)

	// First epoch: everything counts as changed (full shipment).
	ep1, err := r.Push(s, ringFPs(s, 7))
	if err != nil {
		t.Fatal(err)
	}
	if ep1.NodesChanged != len(s.Nodes) {
		t.Fatalf("first epoch NodesChanged = %d, want %d", ep1.NodesChanged, len(s.Nodes))
	}
	if ep1.DeltaBytes != ep1.Bytes {
		t.Fatalf("first epoch delta %d != full %d", ep1.DeltaBytes, ep1.Bytes)
	}

	// Unchanged fingerprints: the delta collapses to the channel envelope.
	ep2, err := r.Push(s, ringFPs(s, 7))
	if err != nil {
		t.Fatal(err)
	}
	if ep2.NodesChanged != 0 {
		t.Fatalf("unchanged epoch NodesChanged = %d, want 0", ep2.NodesChanged)
	}
	if ep2.DeltaBytes >= ep2.Bytes/2 {
		t.Fatalf("unchanged epoch delta %d not collapsed (full %d)", ep2.DeltaBytes, ep2.Bytes)
	}
	if ep1.Fingerprint != ep2.Fingerprint {
		t.Fatalf("identical fingerprint inputs produced different epoch fingerprints")
	}

	// One node changed: its bytes (and only its) rejoin the delta.
	fps := ringFPs(s, 7)
	fps["B"] = 99
	ep3, err := r.Push(s, fps)
	if err != nil {
		t.Fatal(err)
	}
	if ep3.NodesChanged != 1 {
		t.Fatalf("NodesChanged = %d, want 1", ep3.NodesChanged)
	}
	if ep3.DeltaBytes <= ep2.DeltaBytes || ep3.DeltaBytes >= ep3.Bytes {
		t.Fatalf("one-node delta %d out of range (envelope %d, full %d)", ep3.DeltaBytes, ep2.DeltaBytes, ep3.Bytes)
	}
	if ep3.Fingerprint == ep2.Fingerprint {
		t.Fatalf("changed state kept the same epoch fingerprint")
	}
}

func TestRingWithoutFingerprints(t *testing.T) {
	s := sampleSnapshot(t)
	r := NewRing(0) // default capacity
	if r.Capacity() != 8 {
		t.Fatalf("default capacity = %d", r.Capacity())
	}
	ep1, err := r.Push(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := r.Push(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	// No fingerprints: change tracking degrades to "everything changed".
	for _, ep := range []*Epoch{ep1, ep2} {
		if ep.Fingerprint != 0 {
			t.Fatalf("fingerprint without node fps = %x, want 0", ep.Fingerprint)
		}
		if ep.NodesChanged != len(s.Nodes) || ep.DeltaBytes != ep.Bytes {
			t.Fatalf("degraded delta tracking: changed=%d delta=%d full=%d", ep.NodesChanged, ep.DeltaBytes, ep.Bytes)
		}
	}
	// An epoch's store restores working routers.
	router, err := r.Latest().Store.Restore("A")
	if err != nil {
		t.Fatal(err)
	}
	if router.Config().Name != "A" {
		t.Fatalf("restored router %q, want A", router.Config().Name)
	}
}
