package checkpoint

import (
	"testing"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/bird"
)

// variantCheckpoint builds a bird checkpoint whose content differs per extra
// originated network — the ring only sees canonical bytes, so distinct
// config means distinct content hash.
func variantCheckpoint(t testing.TB, name string, as bgp.ASN, id bgp.RouterID, extra ...string) *bird.Checkpoint {
	t.Helper()
	nets := []bgp.Prefix{bgp.MustParsePrefix("10.1.0.0/16")}
	for _, e := range extra {
		nets = append(nets, bgp.MustParsePrefix(e))
	}
	r := bird.MustNew(&bird.Config{
		Name: name, AS: as, RouterID: id,
		Networks: nets,
		Policies: map[string]*policy.Policy{"ALL": policy.AcceptAll("ALL")},
		Neighbors: []bird.NeighborConfig{
			{Name: "peer", AS: 65099, Import: "ALL", Export: "ALL"},
		},
	})
	return r.Checkpoint()
}

func TestRingSeqAndRetention(t *testing.T) {
	s := sampleSnapshot(t)
	r := NewRing(2)
	if r.Capacity() != 2 {
		t.Fatalf("capacity = %d", r.Capacity())
	}
	for i := 1; i <= 4; i++ {
		ep, err := r.Push(s.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if ep.Seq != i {
			t.Fatalf("epoch %d got seq %d", i, ep.Seq)
		}
		if ep.Store == nil || ep.Bytes <= 0 {
			t.Fatalf("epoch %d not measured: store=%v bytes=%d", i, ep.Store, ep.Bytes)
		}
		if ep.At != s.At {
			t.Fatalf("epoch At = %v, want %v", ep.At, s.At)
		}
	}
	if r.Len() != 2 {
		t.Fatalf("retention: len = %d, want 2", r.Len())
	}
	if got := r.Seqs(); len(got) != 2 || got[0] != 3 || got[1] != 4 {
		t.Fatalf("retained seqs = %v, want [3 4]", got)
	}
	if r.Get(1) != nil {
		t.Fatalf("evicted epoch 1 still retrievable")
	}
	if ep := r.Get(4); ep == nil || ep != r.Latest() {
		t.Fatalf("Get(4)/Latest mismatch")
	}
}

func TestRingDeltaAccounting(t *testing.T) {
	s := sampleSnapshot(t)
	r := NewRing(4)

	// First epoch: everything counts as changed (full shipment).
	ep1, err := r.Push(s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if ep1.NodesChanged != len(s.Nodes) {
		t.Fatalf("first epoch NodesChanged = %d, want %d", ep1.NodesChanged, len(s.Nodes))
	}
	if ep1.DeltaBytes != ep1.Bytes {
		t.Fatalf("first epoch delta %d != full %d", ep1.DeltaBytes, ep1.Bytes)
	}
	if ep1.Fingerprint == 0 {
		t.Fatalf("content-derived epoch fingerprint is zero")
	}

	// Identical content: the delta collapses to the channel envelope plus one
	// hash reference per node — byte-exact, no fingerprint convention.
	ep2, err := r.Push(s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if ep2.NodesChanged != 0 {
		t.Fatalf("unchanged epoch NodesChanged = %d, want 0", ep2.NodesChanged)
	}
	perNodeTotal := 0
	for _, n := range ep2.Store.sizes.PerNodeBytes {
		perNodeTotal += n
	}
	wantDelta := ep2.Bytes - perNodeTotal + len(s.Nodes)*HashSize
	if ep2.DeltaBytes != wantDelta {
		t.Fatalf("unchanged epoch delta %d, want envelope+refs %d", ep2.DeltaBytes, wantDelta)
	}
	if ep2.DeltaBytes >= ep2.Bytes/2 {
		t.Fatalf("unchanged epoch delta %d not collapsed (full %d)", ep2.DeltaBytes, ep2.Bytes)
	}
	if ep1.Fingerprint != ep2.Fingerprint {
		t.Fatalf("identical content produced different epoch fingerprints")
	}
	for name, h := range ep1.Hashes {
		if ep2.Hashes[name] != h {
			t.Fatalf("node %s content hash drifted between identical epochs", name)
		}
	}

	// One node's state changed: its bytes (and only its) rejoin the delta.
	s3 := s.Clone()
	s3.Nodes["B"] = variantCheckpoint(t, "B", 65002, 2, "10.9.0.0/16")
	ep3, err := r.Push(s3)
	if err != nil {
		t.Fatal(err)
	}
	if ep3.NodesChanged != 1 {
		t.Fatalf("NodesChanged = %d, want 1", ep3.NodesChanged)
	}
	if ep3.DeltaBytes <= ep2.DeltaBytes || ep3.DeltaBytes >= ep3.Bytes {
		t.Fatalf("one-node delta %d out of range (envelope %d, full %d)", ep3.DeltaBytes, ep2.DeltaBytes, ep3.Bytes)
	}
	if ep3.Fingerprint == ep2.Fingerprint {
		t.Fatalf("changed state kept the same epoch fingerprint")
	}
	if ep3.Hashes["A"] != ep2.Hashes["A"] {
		t.Fatalf("unchanged node A's content hash drifted")
	}
	if ep3.Hashes["B"] == ep2.Hashes["B"] {
		t.Fatalf("changed node B kept its content hash")
	}
}

// TestRingStructuralSharing pins the point of content addressing: pushing
// identical state twice retains ONE copy of every node's encoding and the
// later epoch's store shares the earlier epoch's decoded objects outright.
func TestRingStructuralSharing(t *testing.T) {
	s := sampleSnapshot(t)
	r := NewRing(4)
	ep1, err := r.Push(s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := r.Push(s.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.UniqueBlobs(); got != len(s.Nodes) {
		t.Fatalf("unique blobs = %d, want %d (identical epochs must dedupe)", got, len(s.Nodes))
	}
	for _, name := range s.NodeNames() {
		if ep1.Store.State(name) != ep2.Store.State(name) {
			t.Errorf("node %s decoded state not shared across identical epochs", name)
		}
		if ep1.Store.Image(name) != ep2.Store.Image(name) {
			t.Errorf("node %s image not shared across identical epochs", name)
		}
		if ep1.Store.Snapshot().Nodes[name] != ep2.Store.Snapshot().Nodes[name] {
			t.Errorf("node %s checkpoint value not adopted from the CAS", name)
		}
	}
}

// TestRingQuietNodeRetention is the delta-accounting regression test from the
// codec change: a quiet system's retained bytes must stay near ONE snapshot's
// footprint regardless of how many epochs the ring holds — each extra epoch
// of an unchanged node costs a hash reference, not a re-encoded copy.
func TestRingQuietNodeRetention(t *testing.T) {
	s := sampleSnapshot(t)
	r := NewRing(4)
	var perNodeTotal int
	for i := 0; i < 4; i++ {
		ep, err := r.Push(s.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if perNodeTotal == 0 {
			sizes, err := ep.Store.Sizes()
			if err != nil {
				t.Fatal(err)
			}
			for _, n := range sizes.PerNodeBytes {
				perNodeTotal += n
			}
		}
	}
	if r.Len() != 4 {
		t.Fatalf("ring len = %d", r.Len())
	}
	if got := r.RetainedBytes(); got != perNodeTotal {
		t.Fatalf("4 quiet epochs retain %d bytes, want one snapshot's %d", got, perNodeTotal)
	}
}

// TestRingEvictionReleasesContent: when epochs fall off the ring, content
// referenced only by them is freed; content still referenced survives.
func TestRingEvictionReleasesContent(t *testing.T) {
	s := sampleSnapshot(t)
	r := NewRing(2)
	variants := []string{"10.9.0.0/16", "10.10.0.0/16", "10.11.0.0/16", "10.12.0.0/16"}
	var hashes []Hash
	for _, extra := range variants {
		si := s.Clone()
		si.Nodes["B"] = variantCheckpoint(t, "B", 65002, 2, extra)
		ep, err := r.Push(si)
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, ep.Hashes["B"])
	}
	// Node A never changed: one blob, shared by both retained epochs. Node B
	// changed every epoch: only the two retained epochs' blobs survive.
	if got := r.UniqueBlobs(); got != 3 {
		t.Fatalf("unique blobs = %d, want 3 (one A + two retained B variants)", got)
	}
	if r.cas.Contains(hashes[0]) || r.cas.Contains(hashes[1]) {
		t.Fatalf("evicted epochs' B content still retained")
	}
	if !r.cas.Contains(hashes[2]) || !r.cas.Contains(hashes[3]) {
		t.Fatalf("retained epochs' B content missing")
	}
	aHash := r.Latest().Hashes["A"]
	if got := r.cas.Refs(aHash); got != 2 {
		t.Fatalf("shared node A refcount = %d, want 2", got)
	}
}

func TestRingDefaultCapacityAndRestore(t *testing.T) {
	s := sampleSnapshot(t)
	r := NewRing(0) // default capacity
	if r.Capacity() != 8 {
		t.Fatalf("default capacity = %d", r.Capacity())
	}
	if _, err := r.Push(s.Clone()); err != nil {
		t.Fatal(err)
	}
	// An epoch's store restores working routers.
	router, err := r.Latest().Store.Restore("A")
	if err != nil {
		t.Fatal(err)
	}
	if router.Config().Name != "A" {
		t.Fatalf("restored router %q, want A", router.Config().Name)
	}
}
