package codec

import (
	"reflect"
	"testing"

	"github.com/dice-project/dice/internal/node"
)

func sampleRoutes() []node.RouteRecord {
	return []node.RouteRecord{
		{
			Prefix: "10.0.0.0/8", Origin: 1,
			ASPath: []uint32{65001, 65002}, ASSet: []uint32{65100},
			NextHop: 0x0A000001, HasMED: true, MED: 50,
			HasLocalPref: true, LocalPref: 120,
			Communities: []uint32{0xFDE80001},
			Peer:        "R2", PeerAS: 65002, PeerRouterID: 0x02020202,
			EBGP: true, Age: 7,
		},
		{Prefix: "192.168.0.0/16", Local: true, NextHop: 0},
	}
}

func TestRouteRecordsRoundTrip(t *testing.T) {
	recs := sampleRoutes()
	w := NewWriter()
	PutRouteRecords(w, recs)
	r := NewReader(w.Bytes())
	got := RouteRecords(r)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("route records round trip:\n got %+v\nwant %+v", got, recs)
	}

	// Empty slab decodes to nil.
	w2 := NewWriter()
	PutRouteRecords(w2, nil)
	r2 := NewReader(w2.Bytes())
	if got := RouteRecords(r2); got != nil {
		t.Fatalf("empty route slab decoded to %v", got)
	}
	if err := r2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// An unknown flag bit is malformed, not silently dropped.
	bad := append([]byte(nil), w.Bytes()...)
	bad[5] |= 0x80 // first record's flag byte: slab prefix (4) + count (1)
	rb := NewReader(bad)
	RouteRecords(rb)
	if rb.Err() == nil {
		t.Fatal("unknown route flag accepted")
	}
}

func TestPeerRouteMapCanonicalOrder(t *testing.T) {
	m := node.PeerRouteMap{
		"R9": sampleRoutes()[:1],
		"R1": sampleRoutes()[1:],
		"R5": nil,
	}
	w1 := NewWriter()
	PutPeerRouteMap(w1, m)

	// Re-encoding a decoded copy must be byte-identical regardless of map
	// iteration order — that is the canonical-order guarantee.
	r := NewReader(w1.Bytes())
	got := PeerRouteMap(r)
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if len(got) != len(m) {
		t.Fatalf("decoded %d peers, want %d", len(got), len(m))
	}
	w2 := NewWriter()
	PutPeerRouteMap(w2, got)
	if string(w1.Bytes()) != string(w2.Bytes()) {
		t.Fatal("re-encoded peer route map differs from original encoding")
	}
}

func TestSessionAndEventRecordsRoundTrip(t *testing.T) {
	sessions := []node.SessionRecord{
		{Peer: "R2", PeerAS: 65002, State: 5, PeerRouterID: 7, DownCount: 1,
			NotificationsSent: 2, NotificationsReceived: 3},
		{Peer: "R3", State: -1},
	}
	events := []node.EventRecord{
		{AtNanos: 1_000_000, Prefix: "10.0.0.0/8", OldVia: "", NewVia: "R2"},
		{AtNanos: -5, Prefix: "192.168.0.0/16", OldVia: "R2", NewVia: ""},
	}
	w := NewWriter()
	PutSessionRecords(w, sessions)
	PutEventRecords(w, events)
	PutSessionRecords(w, nil)
	PutEventRecords(w, nil)

	r := NewReader(w.Bytes())
	if got := SessionRecords(r); !reflect.DeepEqual(got, sessions) {
		t.Fatalf("sessions round trip: %+v", got)
	}
	if got := EventRecords(r); !reflect.DeepEqual(got, events) {
		t.Fatalf("events round trip: %+v", got)
	}
	if got := SessionRecords(r); got != nil {
		t.Fatalf("empty session slab decoded to %v", got)
	}
	if got := EventRecords(r); got != nil {
		t.Fatalf("empty event slab decoded to %v", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestStatsRoundTripAndFieldCountPin(t *testing.T) {
	s := node.RouterStats{
		UpdatesReceived: 1, UpdatesSent: 2, WithdrawalsSent: 3, OpensSent: 4,
		KeepalivesSent: 5, NotificationsSent: 6, ParseErrors: 7,
		ImportRejected: 8, ExportRejected: 9, ASLoopsIgnored: 10,
		BestChanges: 11, SessionResets: 12, HandlerCrashes: 13,
		ExploredSymbolic: 14, InvariantFailures: 15, RoutesOriginated: 16,
		UpdatesHookDropped: 17,
	}
	w := NewWriter()
	PutStats(w, s)
	r := NewReader(w.Bytes())
	if got := Stats(r); got != s {
		t.Fatalf("stats round trip: %+v", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The field count pins the serialized RouterStats shape: if the struct
	// grows a field without a codec Version bump, this count catches it.
	if n := reflect.TypeOf(node.RouterStats{}).NumField(); n != statsFieldCount {
		t.Fatalf("RouterStats has %d fields, codec pins %d — bump codec Version and statsFieldCount together", n, statsFieldCount)
	}

	// A stream with the wrong field count is malformed.
	wb := NewWriter()
	wb.Uvarint(statsFieldCount - 1)
	rb := NewReader(wb.Bytes())
	Stats(rb)
	if rb.Err() == nil {
		t.Fatal("wrong stats field count accepted")
	}
}

func TestU32sAndStringsRoundTrip(t *testing.T) {
	w := NewWriter()
	PutU32s(w, []uint32{0, 1, 0xFFFFFFFF})
	PutU32s(w, nil)
	PutStrings(w, []string{"", "a", "R12"})
	PutStrings(w, nil)

	r := NewReader(w.Bytes())
	if got := U32s(r); !reflect.DeepEqual(got, []uint32{0, 1, 0xFFFFFFFF}) {
		t.Fatalf("U32s = %v", got)
	}
	if got := U32s(r); got != nil {
		t.Fatalf("empty U32s = %v", got)
	}
	if got := Strings(r); !reflect.DeepEqual(got, []string{"", "a", "R12"}) {
		t.Fatalf("Strings = %v", got)
	}
	if got := Strings(r); got != nil {
		t.Fatalf("empty Strings = %v", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A value past 32 bits is malformed for U32s.
	wb := NewWriter()
	wb.Uvarint(1)
	wb.Uvarint(1 << 33)
	rb := NewReader(wb.Bytes())
	U32s(rb)
	if rb.Err() == nil {
		t.Fatal("u32 overflow accepted")
	}
}

func TestSortStrings(t *testing.T) {
	ss := []string{"R9", "R1", "R10", "R1", ""}
	sortStrings(ss)
	want := []string{"", "R1", "R1", "R10", "R9"}
	if !reflect.DeepEqual(ss, want) {
		t.Fatalf("sortStrings = %v, want %v", ss, want)
	}
}
