// Package codec implements the deterministic binary checkpoint format that
// replaced encoding/gob on the checkpoint hot path.
//
// gob was the original codec and it cost the system twice: its reflection-
// driven encoder dominated snapshot Measure and baseline shipping, and its
// randomized map iteration made byte-level comparisons of encodings useless —
// the live-mode ring had to carry a parallel fingerprint channel just to tell
// whether a node changed, and the distributed shard deltas only worked after
// every checkpoint map grew a sorted GobEncode shim. This package fixes the
// root cause: identical state always encodes to identical bytes, so content
// hashes, binary deltas and cross-process comparisons are sound by
// construction.
//
// The format is deliberately primitive:
//
//   - a 4-byte header (magic 0xD1 0xCE, a format version, a kind byte) gates
//     every artifact, so legacy gob blobs — which can never start with 0xD1,
//     an impossible first byte for a gob stream — are detected and routed to
//     the old decoder;
//   - integers are varints (unsigned or zig-zag), strings and byte blobs are
//     length-prefixed;
//   - repeated records (routes, sessions, events) travel in flat slabs with a
//     fixed 32-bit length prefix, so a decoder can bound-check the whole slab
//     before parsing and a corrupt count can never drive allocation past the
//     buffer;
//   - map-shaped data (per-peer route sets) is always encoded in sorted key
//     order.
//
// Decoding is strictly non-panicking: the Reader carries a sticky error,
// every count is validated against the remaining bytes before it sizes an
// allocation, and truncated or trailing input fails the final EOF check.
//
// The //dice:codec directive below opts this package into dice-vet's
// codecpin field-coverage rule: any external struct these encoders touch
// only partially must carry a //dice:fieldpin, so "added a field, forgot
// the codec" fails vet instead of shipping lossy checkpoints.
//
//dice:codec
package codec

import (
	"encoding/binary"
	"fmt"
)

// Header layout: Magic0 Magic1 Version Kind.
const (
	// Magic0 and Magic1 open every codec artifact. 0xD1 is unreachable as
	// the first byte of a gob stream (gob opens with a message length whose
	// first byte is either < 0x80 or a 0xF8..0xFF byte-count marker), which
	// is what makes the legacy-gob fallback sniff sound.
	Magic0 = 0xD1
	Magic1 = 0xCE
	// Version is the format revision; bump on any incompatible change.
	Version = 1
	// HeaderLen is the fixed header size.
	HeaderLen = 4
)

// Artifact kinds.
const (
	// KindSnapshot frames a whole consistent cut.
	KindSnapshot = 1
	// KindNode frames a single node checkpoint (the content-addressed unit).
	KindNode = 2
	// KindHistory frames a dice-serve soak-history file (per-epoch summary
	// rows plus per-scenario detection analytics).
	KindHistory = 3
)

// IsEncoded reports whether data opens with this package's header magic —
// the gate between the codec decoder and the legacy gob fallback.
func IsEncoded(data []byte) bool {
	return len(data) >= HeaderLen && data[0] == Magic0 && data[1] == Magic1
}

// Writer builds one codec artifact in an append-only buffer. The zero value
// is usable; NewWriter pre-sizes the buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer pre-sized for a small artifact.
func NewWriter() *Writer {
	return &Writer{buf: make([]byte, 0, 512)}
}

// Bytes returns the encoded artifact. The slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Header writes the 4-byte format header for the given artifact kind.
func (w *Writer) Header(kind byte) {
	w.buf = append(w.buf, Magic0, Magic1, Version, kind)
}

// Byte writes one raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool writes a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint writes a signed (zig-zag) varint.
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Blob writes a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.buf = binary.AppendUvarint(w.buf, uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// BeginSlab reserves a fixed 32-bit length prefix and returns a mark for
// EndSlab. Between the two calls the caller writes the slab body.
func (w *Writer) BeginSlab() int {
	w.buf = append(w.buf, 0, 0, 0, 0)
	return len(w.buf)
}

// EndSlab backfills the length prefix reserved by BeginSlab with the number
// of body bytes written since.
func (w *Writer) EndSlab(mark int) {
	binary.LittleEndian.PutUint32(w.buf[mark-4:mark], uint32(len(w.buf)-mark))
}

// UvarintLen returns the encoded size of an unsigned varint, for size
// accounting that must agree byte-for-byte with the encoder without
// materializing an encoding.
func UvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// VarintLen returns the encoded size of a signed (zig-zag) varint.
func VarintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return UvarintLen(uv)
}

// StringLen returns the encoded size of a length-prefixed string.
func StringLen(s string) int { return UvarintLen(uint64(len(s))) + len(s) }

// BlobLen returns the encoded size of a length-prefixed byte slice.
func BlobLen(b []byte) int { return UvarintLen(uint64(len(b))) + len(b) }

// Reader parses one codec artifact. Errors are sticky: after the first
// malformed read every further accessor returns the zero value, so decoders
// can parse a whole structure and check Err once. Nothing in the Reader
// panics on malformed input.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a reader over data. The reader does not copy data;
// accessors that return slices copy out of it.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Rem returns the number of unread bytes.
func (r *Reader) Rem() int { return len(r.data) - r.off }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("codec: "+format+" at offset %d", append(args, r.off)...)
	}
}

// Fail records a decode error at the current offset, for decoders layered
// on the Reader outside this package (backend payloads, wire frames). Like
// every other error path it is sticky: only the first failure is kept.
func (r *Reader) Fail(format string, args ...any) { r.fail(format, args...) }

// Header consumes and validates the 4-byte format header, requiring the
// given artifact kind.
func (r *Reader) Header(wantKind byte) {
	if r.err != nil {
		return
	}
	if r.Rem() < HeaderLen {
		r.fail("truncated header")
		return
	}
	h := r.data[r.off : r.off+HeaderLen]
	r.off += HeaderLen
	switch {
	case h[0] != Magic0 || h[1] != Magic1:
		r.fail("bad magic %#02x %#02x", h[0], h[1])
	case h[2] != Version:
		r.fail("unsupported format version %d (have %d)", h[2], Version)
	case h[3] != wantKind:
		r.fail("artifact kind %d, want %d", h[3], wantKind)
	}
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Rem() < 1 {
		r.fail("truncated byte")
		return 0
	}
	b := r.data[r.off]
	r.off++
	return b
}

// Bool reads a one-byte boolean; any value other than 0 or 1 is malformed.
func (r *Reader) Bool() bool {
	b := r.Byte()
	if r.err == nil && b > 1 {
		r.fail("invalid bool %d", b)
	}
	return b == 1
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail("malformed uvarint")
		return 0
	}
	r.off += n
	return v
}

// Varint reads a signed (zig-zag) varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail("malformed varint")
		return 0
	}
	r.off += n
	return v
}

// Count reads an element count and validates it against the remaining bytes
// (every element costs at least one byte), so a corrupt count can never size
// an allocation past the input.
func (r *Reader) Count() int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(r.Rem()) {
		r.fail("count %d exceeds %d remaining bytes", v, r.Rem())
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Count()
	if r.err != nil {
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// Blob reads a length-prefixed byte slice. The result is a copy, detached
// from the reader's input buffer; zero length decodes to nil.
func (r *Reader) Blob() []byte {
	n := r.Count()
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, r.data[r.off:r.off+n])
	r.off += n
	return b
}

// BeginSlab reads a fixed 32-bit slab length prefix, validates it against
// the remaining input, and returns the offset at which the slab must end.
func (r *Reader) BeginSlab() int {
	if r.err != nil {
		return r.off
	}
	if r.Rem() < 4 {
		r.fail("truncated slab length")
		return r.off
	}
	n := binary.LittleEndian.Uint32(r.data[r.off:])
	r.off += 4
	if n > uint32(r.Rem()) {
		r.fail("slab length %d exceeds %d remaining bytes", n, r.Rem())
		return r.off
	}
	return r.off + int(n)
}

// EndSlab validates that the slab body was consumed exactly to the offset
// BeginSlab returned.
func (r *Reader) EndSlab(end int) {
	if r.err == nil && r.off != end {
		r.fail("slab consumed to offset %d, want %d", r.off, end)
	}
}

// Close finishes the parse: it returns the sticky error, or an error if
// unread bytes remain (an artifact never carries trailing garbage).
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	if r.Rem() != 0 {
		return fmt.Errorf("codec: %d trailing bytes after artifact", r.Rem())
	}
	return nil
}
