package codec

import (
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

func TestPrimitiveRoundTrip(t *testing.T) {
	uvals := []uint64{0, 1, 0x7F, 0x80, 0x3FFF, 0x4000, math.MaxUint32, math.MaxUint64}
	ivals := []int64{0, 1, -1, 63, -64, 64, -65, math.MinInt64, math.MaxInt64}
	strs := []string{"", "a", "R12", strings.Repeat("x", 300)}
	blobs := [][]byte{nil, {0}, []byte("payload"), make([]byte, 1<<12)}

	w := NewWriter()
	w.Header(KindNode)
	w.Byte(0xAB)
	w.Bool(true)
	w.Bool(false)
	for _, v := range uvals {
		w.Uvarint(v)
	}
	for _, v := range ivals {
		w.Varint(v)
	}
	for _, s := range strs {
		w.String(s)
	}
	for _, b := range blobs {
		w.Blob(b)
	}

	r := NewReader(w.Bytes())
	r.Header(KindNode)
	if got := r.Byte(); got != 0xAB {
		t.Fatalf("Byte = %#x, want 0xAB", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool round trip failed")
	}
	for _, v := range uvals {
		if got := r.Uvarint(); got != v {
			t.Fatalf("Uvarint = %d, want %d", got, v)
		}
	}
	for _, v := range ivals {
		if got := r.Varint(); got != v {
			t.Fatalf("Varint = %d, want %d", got, v)
		}
	}
	for _, s := range strs {
		if got := r.String(); got != s {
			t.Fatalf("String = %q, want %q", got, s)
		}
	}
	for _, b := range blobs {
		got := r.Blob()
		if string(got) != string(b) {
			t.Fatalf("Blob length %d, want %d", len(got), len(b))
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestLenHelpersMatchEncoder(t *testing.T) {
	for _, v := range []uint64{0, 1, 0x7F, 0x80, 0x3FFF, 0x4000, 1 << 40, math.MaxUint64} {
		if got, want := UvarintLen(v), len(binary.AppendUvarint(nil, v)); got != want {
			t.Errorf("UvarintLen(%d) = %d, want %d", v, got, want)
		}
	}
	for _, v := range []int64{0, -1, 1, -64, 64, math.MinInt64, math.MaxInt64} {
		if got, want := VarintLen(v), len(binary.AppendVarint(nil, v)); got != want {
			t.Errorf("VarintLen(%d) = %d, want %d", v, got, want)
		}
	}
	for _, s := range []string{"", "a", strings.Repeat("y", 200)} {
		w := NewWriter()
		w.String(s)
		if got := StringLen(s); got != w.Len() {
			t.Errorf("StringLen(%q) = %d, want %d", s, got, w.Len())
		}
		w2 := NewWriter()
		w2.Blob([]byte(s))
		if got := BlobLen([]byte(s)); got != w2.Len() {
			t.Errorf("BlobLen(%d bytes) = %d, want %d", len(s), got, w2.Len())
		}
	}
}

func TestSlabRoundTripAndMisconsumption(t *testing.T) {
	w := NewWriter()
	w.Header(KindSnapshot)
	mark := w.BeginSlab()
	w.Uvarint(7)
	w.String("inner")
	w.EndSlab(mark)
	w.Uvarint(99)

	r := NewReader(w.Bytes())
	r.Header(KindSnapshot)
	end := r.BeginSlab()
	if got := r.Uvarint(); got != 7 {
		t.Fatalf("slab uvarint = %d, want 7", got)
	}
	if got := r.String(); got != "inner" {
		t.Fatalf("slab string = %q", got)
	}
	r.EndSlab(end)
	if got := r.Uvarint(); got != 99 {
		t.Fatalf("post-slab uvarint = %d, want 99", got)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A decoder that under-consumes the slab body must fail at EndSlab.
	r2 := NewReader(w.Bytes())
	r2.Header(KindSnapshot)
	end2 := r2.BeginSlab()
	_ = r2.Uvarint() // leave the string unread
	r2.EndSlab(end2)
	if r2.Err() == nil {
		t.Fatal("EndSlab accepted an under-consumed slab")
	}
}

func TestHeaderValidation(t *testing.T) {
	good := NewWriter()
	good.Header(KindNode)
	enc := good.Bytes()

	cases := map[string][]byte{
		"truncated":    enc[:HeaderLen-1],
		"bad magic0":   {0x00, Magic1, Version, KindNode},
		"bad magic1":   {Magic0, 0x00, Version, KindNode},
		"bad version":  {Magic0, Magic1, Version + 1, KindNode},
		"wrong kind":   {Magic0, Magic1, Version, KindSnapshot},
		"zero version": {Magic0, Magic1, 0, KindNode},
	}
	for name, data := range cases {
		r := NewReader(data)
		r.Header(KindNode)
		if r.Err() == nil {
			t.Errorf("%s: Header accepted %v", name, data)
		}
	}

	r := NewReader(enc)
	r.Header(KindNode)
	if err := r.Close(); err != nil {
		t.Fatalf("valid header rejected: %v", err)
	}
}

func TestIsEncoded(t *testing.T) {
	w := NewWriter()
	w.Header(KindSnapshot)
	if !IsEncoded(w.Bytes()) {
		t.Fatal("IsEncoded false for a codec artifact")
	}
	for _, data := range [][]byte{nil, {Magic0}, {Magic0, Magic1, Version}, {0x3A, 0xFF, 0, 0}} {
		if IsEncoded(data) {
			t.Fatalf("IsEncoded true for %v", data)
		}
	}
}

func TestStickyErrorAndBounds(t *testing.T) {
	// A count larger than the remaining input must fail before allocating.
	w := NewWriter()
	w.Uvarint(1 << 30)
	r := NewReader(w.Bytes())
	if r.Blob() != nil || r.Err() == nil {
		t.Fatal("oversized blob count not rejected")
	}
	// After the first failure every accessor is inert and returns zero values.
	if r.Uvarint() != 0 || r.Varint() != 0 || r.String() != "" || r.Byte() != 0 || r.Bool() {
		t.Fatal("reader not inert after sticky error")
	}
	firstErr := r.Err()
	_ = r.String()
	if r.Err() != firstErr {
		t.Fatal("sticky error was overwritten")
	}

	// Non-canonical bool bytes are malformed.
	rb := NewReader([]byte{2})
	rb.Bool()
	if rb.Err() == nil {
		t.Fatal("Bool accepted byte 2")
	}

	// Trailing bytes fail Close.
	rt := NewReader([]byte{0, 0xEE})
	if rt.Uvarint() != 0 {
		t.Fatal("uvarint")
	}
	if err := rt.Close(); err == nil {
		t.Fatal("Close accepted trailing bytes")
	}

	// A slab length past the end of input is rejected at BeginSlab.
	rs := NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	rs.BeginSlab()
	if rs.Err() == nil {
		t.Fatal("BeginSlab accepted an oversized slab length")
	}
}

// TestSubHeaderInputs: zero-length and one-byte inputs — anything shorter
// than the 4-byte header — must come back as false from IsEncoded or as a
// sticky error from the Reader, never as a slice panic. These are the decoder
// entry points the snapshot sniffer hits on truncated artifacts.
func TestSubHeaderInputs(t *testing.T) {
	for _, data := range [][]byte{nil, {}, {Magic0}, {Magic0, Magic1}, {Magic0, Magic1, Version}} {
		if IsEncoded(data) {
			t.Errorf("IsEncoded(%#v) = true, want false", data)
		}
		r := NewReader(data)
		r.Header(KindSnapshot)
		if r.Err() == nil {
			t.Errorf("Header accepted %d-byte input", len(data))
		}
	}

	// Every accessor on empty and on a lone continuation byte: zero value
	// plus sticky error, no panic.
	accessors := []struct {
		name string
		read func(r *Reader)
	}{
		{"Byte", func(r *Reader) { r.Byte() }},
		{"Bool", func(r *Reader) { r.Bool() }},
		{"Uvarint", func(r *Reader) { r.Uvarint() }},
		{"Varint", func(r *Reader) { r.Varint() }},
		{"Count", func(r *Reader) { r.Count() }},
		{"String", func(r *Reader) { _ = r.String() }},
		{"Blob", func(r *Reader) { r.Blob() }},
		{"BeginSlab", func(r *Reader) { r.BeginSlab() }},
	}
	for _, tc := range accessors {
		for _, data := range [][]byte{nil, {0x80}} {
			r := NewReader(data)
			tc.read(r)
			if len(data) == 0 && r.Err() == nil {
				t.Errorf("%s on empty input: no error", tc.name)
			}
		}
	}
	// A one-byte count that promises more than the remaining input must be
	// rejected before sizing an allocation.
	r := NewReader([]byte{0x02})
	if r.Blob() != nil || r.Err() == nil {
		t.Error("Blob accepted count past end of 1-byte input")
	}
}
