package codec

import (
	"github.com/dice-project/dice/internal/node"
)

// This file encodes the serializable record forms shared by every backend
// (package node's RouteRecord, SessionRecord, EventRecord, RouterStats and
// PeerRouteMap) into the codec's flat slabs. Both backends' canonical
// checkpoint payloads are assembled almost entirely from these helpers; what
// differs per backend is only the configuration dialect wrapped around them.

// Route record flag bits (the four booleans packed into one byte).
const (
	routeHasMED uint8 = 1 << iota
	routeHasLocalPref
	routeEBGP
	routeLocal
)

// statsFieldCount pins the RouterStats field set the codec serializes.
// Changing RouterStats requires bumping the codec Version together with this
// constant — the decoder rejects any other count instead of misaligning.
// dice-vet's codecpin analyzer verifies the pin against the struct.
//
//dice:fieldpin node.RouterStats
const statsFieldCount = 17

// PutU32s writes a counted run of 32-bit values as uvarints.
func PutU32s(w *Writer, vs []uint32) {
	w.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		w.Uvarint(uint64(v))
	}
}

// U32s reads a counted run of 32-bit values; zero count decodes to nil.
func U32s(r *Reader) []uint32 {
	n := r.Count()
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]uint32, n)
	for i := range out {
		v := r.Uvarint()
		if v > 0xFFFFFFFF {
			r.fail("u32 overflow %d", v)
			return nil
		}
		out[i] = uint32(v)
	}
	return out
}

// PutStrings writes a counted run of length-prefixed strings.
func PutStrings(w *Writer, ss []string) {
	w.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

// Strings reads a counted run of strings; zero count decodes to nil.
func Strings(r *Reader) []string {
	n := r.Count()
	if r.Err() != nil || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	return out
}

func putRoute(w *Writer, rec *node.RouteRecord) {
	var flags uint8
	if rec.HasMED {
		flags |= routeHasMED
	}
	if rec.HasLocalPref {
		flags |= routeHasLocalPref
	}
	if rec.EBGP {
		flags |= routeEBGP
	}
	if rec.Local {
		flags |= routeLocal
	}
	w.Byte(flags)
	w.String(rec.Prefix)
	w.Byte(rec.Origin)
	PutU32s(w, rec.ASPath)
	PutU32s(w, rec.ASSet)
	w.Uvarint(uint64(rec.NextHop))
	if rec.HasMED {
		w.Uvarint(uint64(rec.MED))
	}
	if rec.HasLocalPref {
		w.Uvarint(uint64(rec.LocalPref))
	}
	PutU32s(w, rec.Communities)
	w.String(rec.Peer)
	w.Uvarint(uint64(rec.PeerAS))
	w.Uvarint(uint64(rec.PeerRouterID))
	w.Uvarint(rec.Age)
}

func route(r *Reader) node.RouteRecord {
	flags := r.Byte()
	rec := node.RouteRecord{
		HasMED:       flags&routeHasMED != 0,
		HasLocalPref: flags&routeHasLocalPref != 0,
		EBGP:         flags&routeEBGP != 0,
		Local:        flags&routeLocal != 0,
	}
	if flags&^(routeHasMED|routeHasLocalPref|routeEBGP|routeLocal) != 0 {
		r.fail("unknown route flags %#02x", flags)
		return rec
	}
	rec.Prefix = r.String()
	rec.Origin = r.Byte()
	rec.ASPath = U32s(r)
	rec.ASSet = U32s(r)
	rec.NextHop = uint32(r.Uvarint())
	if rec.HasMED {
		rec.MED = uint32(r.Uvarint())
	}
	if rec.HasLocalPref {
		rec.LocalPref = uint32(r.Uvarint())
	}
	rec.Communities = U32s(r)
	rec.Peer = r.String()
	rec.PeerAS = uint32(r.Uvarint())
	rec.PeerRouterID = uint32(r.Uvarint())
	rec.Age = r.Uvarint()
	return rec
}

// PutRouteRecords writes a length-prefixed flat slab of route records.
func PutRouteRecords(w *Writer, recs []node.RouteRecord) {
	mark := w.BeginSlab()
	w.Uvarint(uint64(len(recs)))
	for i := range recs {
		putRoute(w, &recs[i])
	}
	w.EndSlab(mark)
}

// RouteRecords reads a route slab; zero count decodes to nil.
func RouteRecords(r *Reader) []node.RouteRecord {
	end := r.BeginSlab()
	n := r.Count()
	var out []node.RouteRecord
	if r.Err() == nil && n > 0 {
		out = make([]node.RouteRecord, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			out = append(out, route(r))
		}
	}
	r.EndSlab(end)
	if r.Err() != nil {
		return nil
	}
	return out
}

// PutPeerRouteMap writes a per-peer route map in sorted peer order — the
// always-sorted iteration that makes the encoding canonical.
func PutPeerRouteMap(w *Writer, m node.PeerRouteMap) {
	peers := make([]string, 0, len(m))
	for p := range m {
		peers = append(peers, p)
	}
	sortStrings(peers)
	w.Uvarint(uint64(len(peers)))
	for _, p := range peers {
		w.String(p)
		PutRouteRecords(w, m[p])
	}
}

// PeerRouteMap reads a per-peer route map. The result is non-nil even when
// empty, matching how checkpoints build these maps.
func PeerRouteMap(r *Reader) node.PeerRouteMap {
	n := r.Count()
	out := make(node.PeerRouteMap, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		peer := r.String()
		routes := RouteRecords(r)
		if r.Err() == nil {
			out[peer] = routes
		}
	}
	return out
}

// PutSessionRecords writes a length-prefixed flat slab of session records.
func PutSessionRecords(w *Writer, recs []node.SessionRecord) {
	mark := w.BeginSlab()
	w.Uvarint(uint64(len(recs)))
	for i := range recs {
		s := &recs[i]
		w.String(s.Peer)
		w.Uvarint(uint64(s.PeerAS))
		w.Varint(int64(s.State))
		w.Uvarint(uint64(s.PeerRouterID))
		w.Varint(int64(s.DownCount))
		w.Varint(int64(s.NotificationsSent))
		w.Varint(int64(s.NotificationsReceived))
	}
	w.EndSlab(mark)
}

// SessionRecords reads a session slab; zero count decodes to nil.
func SessionRecords(r *Reader) []node.SessionRecord {
	end := r.BeginSlab()
	n := r.Count()
	var out []node.SessionRecord
	if r.Err() == nil && n > 0 {
		out = make([]node.SessionRecord, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			out = append(out, node.SessionRecord{
				Peer:                  r.String(),
				PeerAS:                uint32(r.Uvarint()),
				State:                 int(r.Varint()),
				PeerRouterID:          uint32(r.Uvarint()),
				DownCount:             int(r.Varint()),
				NotificationsSent:     int(r.Varint()),
				NotificationsReceived: int(r.Varint()),
			})
		}
	}
	r.EndSlab(end)
	if r.Err() != nil {
		return nil
	}
	return out
}

// PutEventRecords writes a length-prefixed flat slab of route-event records.
func PutEventRecords(w *Writer, recs []node.EventRecord) {
	mark := w.BeginSlab()
	w.Uvarint(uint64(len(recs)))
	for i := range recs {
		e := &recs[i]
		w.Varint(e.AtNanos)
		w.String(e.Prefix)
		w.String(e.OldVia)
		w.String(e.NewVia)
	}
	w.EndSlab(mark)
}

// EventRecords reads an event slab; zero count decodes to nil.
func EventRecords(r *Reader) []node.EventRecord {
	end := r.BeginSlab()
	n := r.Count()
	var out []node.EventRecord
	if r.Err() == nil && n > 0 {
		out = make([]node.EventRecord, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			out = append(out, node.EventRecord{
				AtNanos: r.Varint(),
				Prefix:  r.String(),
				OldVia:  r.String(),
				NewVia:  r.String(),
			})
		}
	}
	r.EndSlab(end)
	if r.Err() != nil {
		return nil
	}
	return out
}

// PutStats writes the router counter set in declaration order, prefixed with
// the pinned field count.
func PutStats(w *Writer, s node.RouterStats) {
	w.Uvarint(statsFieldCount)
	for _, v := range statsFields(&s) {
		w.Varint(int64(*v))
	}
}

// Stats reads the router counter set; a field count other than the pinned
// one is malformed.
func Stats(r *Reader) node.RouterStats {
	var s node.RouterStats
	if n := r.Uvarint(); r.Err() == nil && n != statsFieldCount {
		r.fail("stats field count %d, want %d", n, statsFieldCount)
		return s
	}
	for _, v := range statsFields(&s) {
		*v = int(r.Varint())
	}
	return s
}

// statsFields enumerates RouterStats fields in their one canonical order.
func statsFields(s *node.RouterStats) [statsFieldCount]*int {
	return [statsFieldCount]*int{
		&s.UpdatesReceived, &s.UpdatesSent, &s.WithdrawalsSent, &s.OpensSent,
		&s.KeepalivesSent, &s.NotificationsSent, &s.ParseErrors,
		&s.ImportRejected, &s.ExportRejected, &s.ASLoopsIgnored,
		&s.BestChanges, &s.SessionResets, &s.HandlerCrashes,
		&s.ExploredSymbolic, &s.InvariantFailures, &s.RoutesOriginated,
		&s.UpdatesHookDropped,
	}
}

// sortStrings is an allocation-free insertion sort; peer sets are tiny.
func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
