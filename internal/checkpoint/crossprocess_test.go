package checkpoint_test

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"

	"github.com/dice-project/dice/internal/checkpoint"
	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/topology"
)

// TestMain doubles as the cross-process determinism check's subprocess: when
// re-executed with DICE_HASH_MODE=1, the test binary builds the golden mixed
// bird+frr snapshot, prints each node's content hash and exits instead of
// running the suite.
func TestMain(m *testing.M) {
	if os.Getenv("DICE_HASH_MODE") == "1" {
		printGoldenHashes()
		return
	}
	os.Exit(m.Run())
}

// goldenMixedSnapshot is the fixture both processes build independently: a
// converged 4-line cluster with one frr node, so the hashes cover both
// backends' canonical codecs and multi-entry RIB maps.
func goldenMixedSnapshot() *checkpoint.Snapshot {
	topo := topology.Line(4).SetImpl("frr", "R2")
	c := cluster.MustBuild(topo, cluster.Options{Seed: 1})
	c.Converge()
	return c.Snapshot()
}

func printGoldenHashes() {
	snap := goldenMixedSnapshot()
	for _, name := range snap.NodeNames() {
		h, err := checkpoint.HashNode(snap.Nodes[name])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%s %s\n", name, h)
	}
	os.Exit(0)
}

// TestMixedBackendEncodeDeterministic: a snapshot mixing bird and frr nodes
// must encode stably — per node and as a whole — across repeated encodings.
// Both backends' canonical payloads share the codec's record slabs, so this
// pins the full cross-backend surface, not just bird's.
func TestMixedBackendEncodeDeterministic(t *testing.T) {
	snap := goldenMixedSnapshot()
	impls := map[string]bool{}
	for _, cp := range snap.Nodes {
		impls[cp.Implementation()] = true
	}
	if !impls["bird"] || !impls["frr"] {
		t.Fatalf("fixture not mixed: %v", impls)
	}
	firstHashes := make(map[string]checkpoint.Hash, len(snap.Nodes))
	for name, cp := range snap.Nodes {
		h, err := checkpoint.HashNode(cp)
		if err != nil {
			t.Fatalf("HashNode(%s): %v", name, err)
		}
		firstHashes[name] = h
	}
	whole, err := checkpoint.Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		for name, cp := range snap.Nodes {
			h, err := checkpoint.HashNode(cp)
			if err != nil {
				t.Fatalf("HashNode(%s) #%d: %v", name, i, err)
			}
			if h != firstHashes[name] {
				t.Fatalf("node %s content hash unstable at iteration %d", name, i)
			}
		}
		again, err := checkpoint.Encode(snap)
		if err != nil {
			t.Fatal(err)
		}
		if string(again) != string(whole) {
			t.Fatalf("whole-snapshot encoding unstable at iteration %d", i)
		}
	}
}

// TestContentHashesStableAcrossProcesses is the golden cross-process check:
// a separate process (this binary re-executed) builds the same mixed
// snapshot from scratch and must compute byte-identical content hashes.
// Per-process stability would be satisfied by any fingerprint; the
// content-addressed store, the dedupe cache and the control plane's baseline
// verification all need hashes that are exchangeable BETWEEN processes,
// which only a deterministic encoding provides.
func TestContentHashesStableAcrossProcesses(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}
	snap := goldenMixedSnapshot()
	want := make(map[string]string, len(snap.Nodes))
	for name, cp := range snap.Nodes {
		h, err := checkpoint.HashNode(cp)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = h.String()
	}

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "DICE_HASH_MODE=1")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("subprocess: %v", err)
	}
	got := make(map[string]string)
	sc := bufio.NewScanner(strings.NewReader(string(out)))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) != 2 {
			t.Fatalf("malformed subprocess line %q", sc.Text())
		}
		got[fields[0]] = fields[1]
	}
	if len(got) != len(want) {
		t.Fatalf("subprocess hashed %d nodes, want %d", len(got), len(want))
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("node %s: cross-process hash mismatch\n  this process: %s\n  subprocess:   %s", name, w, got[name])
		}
	}
}
