package checkpoint

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestWriteFuzzCorpus regenerates the checked-in seed corpus for
// FuzzCheckpointCodecDecode when run with DICE_WRITE_CORPUS=1 (and is a
// no-op skip otherwise). The corpus must track the codec: after a format
// revision, rerun with the env var set and commit the result, so CI's fuzz
// burst starts from valid current-format encodings.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("DICE_WRITE_CORPUS") != "1" {
		t.Skip("corpus generator; run with DICE_WRITE_CORPUS=1 to regenerate")
	}
	s := sampleSnapshot(t)
	snapEnc, err := Encode(s)
	if err != nil {
		t.Fatal(err)
	}
	nodeEnc, err := EncodeNode(s.Nodes["A"])
	if err != nil {
		t.Fatal(err)
	}
	gobEnc, err := EncodeGob(s)
	if err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), snapEnc...)
	flipped[len(flipped)/2] ^= 0xFF
	badver := append([]byte(nil), nodeEnc...)
	badver[2] = 0x7F

	seeds := map[string][]byte{
		"snapshot-valid":     snapEnc,
		"node-valid":         nodeEnc,
		"legacy-gob":         gobEnc,
		"snapshot-truncated": snapEnc[:len(snapEnc)/2],
		"node-truncated":     nodeEnc[:len(nodeEnc)-3],
		"snapshot-bitflip":   flipped,
		"node-bad-version":   badver,
		"header-only":        {0xD1, 0xCE, 1, 1},
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCheckpointCodecDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		content := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
