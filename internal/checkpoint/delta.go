package checkpoint

import (
	"bytes"
	"fmt"

	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
	"time"
)

// DecodeNode deserializes a single node checkpoint produced by EncodeNode.
// Unlike a whole snapshot — whose interface-valued node map gob-encodes with
// type indirection — a single-node encoding is concrete-typed, so the
// implementation tag selects the backend that knows the concrete type to
// decode into.
func DecodeNode(impl string, data []byte) (node.Checkpoint, error) {
	be, err := node.BackendFor(impl)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode node: %w", err)
	}
	if be.DecodeCheckpoint == nil {
		return nil, fmt.Errorf("checkpoint: backend %q cannot decode shipped checkpoints", impl)
	}
	return be.DecodeCheckpoint(data)
}

// NodePatch is the shipping form of one node's divergence from a baseline
// encoding: the bytes both encodings share as a common prefix and suffix are
// referenced by length only, and Patch replaces the differing middle. It is
// the materialization of the binary delta Store.Delta has always *sized* —
// DeltaBytes there is len(Patch) plus framing, so the accounting and the
// wire agree by construction.
type NodePatch struct {
	// Node names the patched node; Impl the backend that decodes the patched
	// encoding.
	Node string
	Impl string
	// PrefixLen and SuffixLen are the byte counts copied verbatim from the
	// baseline encoding's start and end.
	PrefixLen, SuffixLen int
	// Patch is the replacement middle section.
	Patch []byte
	// FullLen is the patched encoding's total length, validated on apply:
	// FullLen == PrefixLen + len(Patch) + SuffixLen.
	FullLen int
}

// SnapshotDelta is the wire shipping form of a snapshot relative to a
// baseline snapshot both sides hold: the channel-state envelope travels
// whole (it is small and has no stable baseline), while node checkpoints —
// the dominant term — travel as per-node binary patches, with unchanged
// nodes omitted entirely. The distributed control plane ships shards as
// deltas against the baseline each agent fetched once; for a single-cut
// campaign the delta is empty, and live-mode epochs pay only for what
// drifted.
type SnapshotDelta struct {
	// At, Consistent and InFlight are the channel-state envelope of the
	// target snapshot.
	At         time.Duration
	Consistent bool
	InFlight   []netem.QueuedMessage
	// Patches covers exactly the nodes whose encoding differs from the
	// baseline, in sorted node order.
	Patches []NodePatch
}

// Empty reports whether applying the delta would reproduce a snapshot with
// the baseline's node states (only the channel envelope travels).
func (d *SnapshotDelta) Empty() bool { return len(d.Patches) == 0 }

// DiffSnapshot expresses snap as a delta against the store's baseline
// snapshot. Every baseline node must appear in snap (a delta cannot express
// node removal); nodes absent from the baseline ship as full-content patches
// (zero-length prefix and suffix). Node checkpoints are compared by their
// encodings, using the same common-prefix/common-suffix trim Store.Delta
// sizes, so DiffSnapshot's wire cost matches the long-standing delta
// accounting.
func (s *Store) DiffSnapshot(snap *Snapshot) (*SnapshotDelta, error) {
	if err := s.encodeBaselines(); err != nil {
		return nil, err
	}
	for name := range s.snap.Nodes {
		if _, ok := snap.Nodes[name]; !ok {
			return nil, fmt.Errorf("checkpoint: delta cannot drop node %q", name)
		}
	}
	d := &SnapshotDelta{At: snap.At, Consistent: snap.Consistent}
	d.InFlight = append(d.InFlight, snap.InFlight...)
	for _, name := range snap.NodeNames() {
		full, err := EncodeNode(snap.Nodes[name])
		if err != nil {
			return nil, err
		}
		base, known := s.baseline[name]
		if known && bytes.Equal(base, full) {
			continue
		}
		prefix := commonPrefix(base, full)
		suffix := commonSuffix(base[prefix:], full[prefix:])
		d.Patches = append(d.Patches, NodePatch{
			Node:      name,
			Impl:      snap.Nodes[name].Implementation(),
			PrefixLen: prefix,
			SuffixLen: suffix,
			Patch:     full[prefix : len(full)-suffix],
			FullLen:   len(full),
		})
	}
	return d, nil
}

// ApplyDelta reconstructs the snapshot DiffSnapshot expressed against this
// store's baseline. Unpatched node checkpoints are shared with the baseline
// snapshot (checkpoints are immutable once taken); patched nodes are rebuilt
// from the baseline encoding plus the patch and decoded through the backend
// registry. Malformed patches — lengths out of bounds or inconsistent with
// FullLen — error rather than producing a corrupt snapshot.
func (s *Store) ApplyDelta(d *SnapshotDelta) (*Snapshot, error) {
	if err := s.encodeBaselines(); err != nil {
		return nil, err
	}
	out := &Snapshot{
		At:         d.At,
		Consistent: d.Consistent,
		Nodes:      make(map[string]node.Checkpoint, len(s.snap.Nodes)),
	}
	out.InFlight = append(out.InFlight, d.InFlight...)
	for name, cp := range s.snap.Nodes {
		out.Nodes[name] = cp
	}
	for _, p := range d.Patches {
		base := s.baseline[p.Node] // nil for nodes new to the baseline
		if p.PrefixLen < 0 || p.SuffixLen < 0 ||
			p.PrefixLen+p.SuffixLen > len(base) ||
			p.FullLen != p.PrefixLen+len(p.Patch)+p.SuffixLen {
			return nil, fmt.Errorf("checkpoint: malformed patch for node %q (prefix %d, suffix %d, patch %d, full %d, baseline %d)",
				p.Node, p.PrefixLen, p.SuffixLen, len(p.Patch), p.FullLen, len(base))
		}
		full := make([]byte, 0, p.FullLen)
		full = append(full, base[:p.PrefixLen]...)
		full = append(full, p.Patch...)
		full = append(full, base[len(base)-p.SuffixLen:]...)
		cp, err := DecodeNode(p.Impl, full)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: apply patch for node %q: %w", p.Node, err)
		}
		out.Nodes[p.Node] = cp
	}
	return out, nil
}

// WireSize approximates the delta's shipping cost: the channel envelope plus
// each patch's content and framing, matching Store.Delta's per-node
// DeltaBytes convention.
func (d *SnapshotDelta) WireSize() int {
	n, err := encodedLen(channelEnvelope{At: d.At, InFlight: d.InFlight, Consistent: d.Consistent})
	if err != nil {
		n = 0
	}
	for _, p := range d.Patches {
		n += len(p.Patch) + deltaFraming
	}
	return n
}
