package checkpoint

import (
	"bytes"
	"fmt"

	"github.com/dice-project/dice/internal/checkpoint/codec"
	"github.com/dice-project/dice/internal/netem"
	"github.com/dice-project/dice/internal/node"
	"time"
)

// DecodeNode deserializes a single node checkpoint produced by EncodeNode.
// Canonical encodings carry their implementation tag in-band, so impl may be
// empty for them; it must match when supplied. Data without the codec header
// is legacy gob, where the tag is essential: the concrete-typed gob bytes
// say nothing about which backend's type to decode into.
func DecodeNode(impl string, data []byte) (node.Checkpoint, error) {
	if codec.IsEncoded(data) {
		r := codec.NewReader(data)
		r.Header(codec.KindNode)
		tagged := r.String()
		payload := r.Blob()
		if err := r.Close(); err != nil {
			return nil, fmt.Errorf("checkpoint: decode node: %w", err)
		}
		if impl != "" && impl != tagged {
			return nil, fmt.Errorf("checkpoint: decode node: encoding is %q, not %q", tagged, impl)
		}
		be, err := node.BackendFor(tagged)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: decode node: %w", err)
		}
		if be.DecodeCanonical == nil {
			return nil, fmt.Errorf("checkpoint: backend %q cannot decode canonical checkpoints", tagged)
		}
		return be.DecodeCanonical(payload)
	}
	if impl == "" {
		return nil, fmt.Errorf("checkpoint: decode node: no codec header and no implementation tag")
	}
	be, err := node.BackendFor(impl)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: decode node: %w", err)
	}
	if be.DecodeCheckpoint == nil {
		return nil, fmt.Errorf("checkpoint: backend %q cannot decode shipped checkpoints", impl)
	}
	return decodeNodeGob(be, data)
}

// decodeNodeGob runs the backend's legacy gob decoder, converting decoder
// panics on malformed bytes into errors.
func decodeNodeGob(be node.Backend, data []byte) (cp node.Checkpoint, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			cp, err = nil, fmt.Errorf("checkpoint: legacy gob decode panicked: %v", rec)
		}
	}()
	return be.DecodeCheckpoint(data)
}

// NodePatch is the shipping form of one node's divergence from a baseline
// encoding: the bytes both encodings share as a common prefix and suffix are
// referenced by length only, and Patch replaces the differing middle. It is
// the materialization of the binary delta Store.Delta has always *sized* —
// DeltaBytes there is len(Patch) plus framing, so the accounting and the
// wire agree by construction.
type NodePatch struct {
	// Node names the patched node; Impl the backend that decodes the patched
	// encoding.
	Node string
	Impl string
	// PrefixLen and SuffixLen are the byte counts copied verbatim from the
	// baseline encoding's start and end.
	PrefixLen, SuffixLen int
	// Patch is the replacement middle section.
	Patch []byte
	// FullLen is the patched encoding's total length, validated on apply:
	// FullLen == PrefixLen + len(Patch) + SuffixLen.
	FullLen int
	// FullHash is the content address of the patched encoding (SHA-256 of
	// the canonical bytes). Apply verifies the reconstruction against it
	// when set, so a patch applied to the wrong baseline fails loudly
	// instead of decoding into a silently wrong snapshot.
	FullHash Hash
}

// SnapshotDelta is the wire shipping form of a snapshot relative to a
// baseline snapshot both sides hold: the channel-state envelope travels
// whole (it is small and has no stable baseline), while node checkpoints —
// the dominant term — travel as per-node binary patches, with unchanged
// nodes omitted entirely. The distributed control plane ships shards as
// deltas against the baseline each agent fetched once; for a single-cut
// campaign the delta is empty, and live-mode epochs pay only for what
// drifted.
type SnapshotDelta struct {
	// At, Consistent and InFlight are the channel-state envelope of the
	// target snapshot.
	At         time.Duration
	Consistent bool
	InFlight   []netem.QueuedMessage
	// Patches covers exactly the nodes whose encoding differs from the
	// baseline, in sorted node order.
	Patches []NodePatch
}

// Empty reports whether applying the delta would reproduce a snapshot with
// the baseline's node states (only the channel envelope travels).
func (d *SnapshotDelta) Empty() bool { return len(d.Patches) == 0 }

// DiffSnapshot expresses snap as a delta against the store's baseline
// snapshot. Every baseline node must appear in snap (a delta cannot express
// node removal); nodes absent from the baseline ship as full-content patches
// (zero-length prefix and suffix). Node checkpoints are compared by their
// encodings, using the same common-prefix/common-suffix trim Store.Delta
// sizes, so DiffSnapshot's wire cost matches the long-standing delta
// accounting.
func (s *Store) DiffSnapshot(snap *Snapshot) (*SnapshotDelta, error) {
	if err := s.encodeBaselines(); err != nil {
		return nil, err
	}
	for name := range s.snap.Nodes {
		if _, ok := snap.Nodes[name]; !ok {
			return nil, fmt.Errorf("checkpoint: delta cannot drop node %q", name)
		}
	}
	d := &SnapshotDelta{At: snap.At, Consistent: snap.Consistent}
	d.InFlight = append(d.InFlight, snap.InFlight...)
	for _, name := range snap.NodeNames() {
		full, err := EncodeNode(snap.Nodes[name])
		if err != nil {
			return nil, err
		}
		base, known := s.baseline[name]
		if known && bytes.Equal(base, full) {
			continue
		}
		prefix := commonPrefix(base, full)
		suffix := commonSuffix(base[prefix:], full[prefix:])
		d.Patches = append(d.Patches, NodePatch{
			Node:      name,
			Impl:      snap.Nodes[name].Implementation(),
			PrefixLen: prefix,
			SuffixLen: suffix,
			Patch:     full[prefix : len(full)-suffix],
			FullLen:   len(full),
			FullHash:  HashBytes(full),
		})
	}
	return d, nil
}

// ApplyDelta reconstructs the snapshot DiffSnapshot expressed against this
// store's baseline. Unpatched node checkpoints are shared with the baseline
// snapshot (checkpoints are immutable once taken); patched nodes are rebuilt
// from the baseline encoding plus the patch and decoded through the backend
// registry. Malformed patches — lengths out of bounds or inconsistent with
// FullLen — error rather than producing a corrupt snapshot.
func (s *Store) ApplyDelta(d *SnapshotDelta) (*Snapshot, error) {
	if err := s.encodeBaselines(); err != nil {
		return nil, err
	}
	out := &Snapshot{
		At:         d.At,
		Consistent: d.Consistent,
		Nodes:      make(map[string]node.Checkpoint, len(s.snap.Nodes)),
	}
	out.InFlight = append(out.InFlight, d.InFlight...)
	for name, cp := range s.snap.Nodes {
		out.Nodes[name] = cp
	}
	for _, p := range d.Patches {
		base := s.baseline[p.Node] // nil for nodes new to the baseline
		if p.PrefixLen < 0 || p.SuffixLen < 0 ||
			p.PrefixLen+p.SuffixLen > len(base) ||
			p.FullLen != p.PrefixLen+len(p.Patch)+p.SuffixLen {
			return nil, fmt.Errorf("checkpoint: malformed patch for node %q (prefix %d, suffix %d, patch %d, full %d, baseline %d)",
				p.Node, p.PrefixLen, p.SuffixLen, len(p.Patch), p.FullLen, len(base))
		}
		full := make([]byte, 0, p.FullLen)
		full = append(full, base[:p.PrefixLen]...)
		full = append(full, p.Patch...)
		full = append(full, base[len(base)-p.SuffixLen:]...)
		if !p.FullHash.IsZero() {
			if got := HashBytes(full); got != p.FullHash {
				return nil, fmt.Errorf("checkpoint: patch for node %q reconstructs content %s, want %s (baseline mismatch or corrupt patch)",
					p.Node, got, p.FullHash)
			}
		}
		cp, err := DecodeNode(p.Impl, full)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: apply patch for node %q: %w", p.Node, err)
		}
		out.Nodes[p.Node] = cp
	}
	return out, nil
}

// WireSize approximates the delta's shipping cost: the codec-sized channel
// envelope plus each patch's content, framing and content hash, matching
// Store.Delta's per-node DeltaBytes convention.
func (d *SnapshotDelta) WireSize() int {
	n := codec.VarintLen(int64(d.At)) + 1 + inFlightLen(d.InFlight)
	for _, p := range d.Patches {
		n += len(p.Patch) + deltaFraming + HashSize
	}
	return n
}
