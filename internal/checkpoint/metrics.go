package checkpoint

import "github.com/dice-project/dice/internal/obs"

// RegisterRingMetrics registers the epoch ring's retention series, reading
// the ring returned by the callback at exposition time (nil exposes zeros,
// so a daemon can register before any soak is attached).
func RegisterRingMetrics(reg *obs.Registry, ring func() *Ring) {
	get := func(f func(*Ring) int) func() float64 {
		return func() float64 {
			if r := ring(); r != nil {
				return float64(f(r))
			}
			return 0
		}
	}
	reg.GaugeFunc("dice_checkpoint_ring_epochs", "Epochs currently retained in the ring.",
		get(func(r *Ring) int { return r.Len() }))
	reg.GaugeFunc("dice_checkpoint_ring_capacity", "Ring retention capacity.",
		get(func(r *Ring) int { return r.Capacity() }))
	reg.GaugeFunc("dice_checkpoint_ring_retained_bytes", "Canonical-encoding bytes retained (each unique blob once).",
		get(func(r *Ring) int { return r.RetainedBytes() }))
	reg.GaugeFunc("dice_checkpoint_cas_blobs", "Distinct node contents in the content-addressed store.",
		get(func(r *Ring) int { return r.UniqueBlobs() }))
	reg.GaugeFunc("dice_checkpoint_cas_refs", "Total blob references across retained epochs.",
		get(func(r *Ring) int { return r.RefTotal() }))
	reg.GaugeFunc("dice_checkpoint_cas_shared_bytes_saved", "Bytes structural sharing avoids retaining ((refs-1)*size summed).",
		get(func(r *Ring) int { return r.SharedBytesSaved() }))
}
