package serve

import (
	"bytes"
	"encoding/gob"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/dice-project/dice/internal/live"
)

func sampleHistory() *History {
	h := &History{}
	h.Soaks = 2
	h.AddEpoch(1, live.EpochSummary{
		Seq: 1, UnixNano: 1700000000000000000,
		Pause: 3 * time.Millisecond, Process: 9 * time.Millisecond,
		Traffic: 2 * time.Second, Explore: 40 * time.Millisecond,
		OverBudget: false, Stride: 1,
		Bytes: 4096, DeltaBytes: 512, NodesChanged: 3,
		Campaigns: 5, CampaignsDeduped: 1, Inputs: 40, InputsSaved: 8,
		Paths: 12, PathsSaved: 2, Findings: 1,
	})
	h.AddEpoch(1, live.EpochSummary{
		Seq: 2, UnixNano: 1700000002000000000,
		Pause: 30 * time.Millisecond, Process: 7 * time.Millisecond,
		Traffic: 2 * time.Second, Explore: 35 * time.Millisecond,
		OverBudget: true, Stride: 2,
		Bytes: 4096, DeltaBytes: 128, NodesChanged: 1,
		Campaigns: 5, CampaignsDeduped: 3, Inputs: 16, InputsSaved: 24,
		Paths: 6, PathsSaved: 8, Findings: 0,
	})
	h.AddEpoch(2, live.EpochSummary{
		Seq: 1, UnixNano: 1700000100000000000,
		Pause: 2 * time.Millisecond, Process: 5 * time.Millisecond,
		Traffic: 2 * time.Second, Explore: 20 * time.Millisecond,
		Stride: 1, Bytes: 4096, Campaigns: 5, Inputs: 40, Paths: 10,
		Findings: 2,
	})
	h.MergeScenario("session-reset", 1, 0.25)
	h.MergeScenario("delay-burst", 2, 0.5)
	h.MergeScenario("session-reset", 2, 0.3)
	return h
}

// TestHistoryRoundTrip is the codec golden round-trip: encode → decode →
// re-encode must be byte-identical, and the decoded structure must equal
// the original.
func TestHistoryRoundTrip(t *testing.T) {
	h := sampleHistory()
	first := h.Encode()
	decoded, err := DecodeHistory(first)
	if err != nil {
		t.Fatalf("DecodeHistory: %v", err)
	}
	if !reflect.DeepEqual(h, decoded) {
		t.Fatalf("decoded history differs:\n got %+v\nwant %+v", decoded, h)
	}
	second := decoded.Encode()
	if !bytes.Equal(first, second) {
		t.Fatalf("re-encode not byte-identical: %d vs %d bytes", len(first), len(second))
	}
}

// TestHistoryEncodeDeterministic re-encodes the same state many times and
// demands identical bytes each time.
func TestHistoryEncodeDeterministic(t *testing.T) {
	h := sampleHistory()
	want := h.Encode()
	for i := 0; i < 32; i++ {
		if got := h.Encode(); !bytes.Equal(got, want) {
			t.Fatalf("encode %d diverged", i)
		}
	}
}

// TestDecodeHistoryRejectsLegacy covers the sniff: gob streams and arbitrary
// bytes are refused with ErrNotHistory rather than misparsed.
func TestDecodeHistoryRejectsLegacy(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(map[string]int{"soaks": 3}); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{
		"gob":     buf.Bytes(),
		"empty":   nil,
		"text":    []byte("soak history v0\n"),
		"short":   {0xD1},
		"nomagic": {0x00, 0x01, 0x02, 0x03},
	} {
		if _, err := DecodeHistory(data); !errors.Is(err, ErrNotHistory) {
			t.Errorf("%s: err = %v, want ErrNotHistory", name, err)
		}
	}
}

// TestDecodeHistoryRejectsCorrupt covers truncation, trailing garbage and
// unsorted scenario rows.
func TestDecodeHistoryRejectsCorrupt(t *testing.T) {
	good := sampleHistory().Encode()

	if _, err := DecodeHistory(good[:len(good)-3]); err == nil {
		t.Error("truncated artifact decoded without error")
	}
	if _, err := DecodeHistory(append(append([]byte(nil), good...), 0xFF)); err == nil {
		t.Error("trailing byte decoded without error")
	}

	unsorted := &History{Soaks: 1, Scenarios: []ScenarioRow{
		{Name: "zz", Findings: 1, Weight: 0.5},
		{Name: "aa", Findings: 1, Weight: 0.5},
	}}
	if _, err := DecodeHistory(unsorted.Encode()); err == nil {
		t.Error("unsorted scenario rows decoded without error")
	}
}

func TestMergeScenarioAccumulates(t *testing.T) {
	h := &History{}
	h.MergeScenario("b", 2, 0.4)
	h.MergeScenario("a", 1, 0.1)
	h.MergeScenario("b", 3, 0.7)
	want := []ScenarioRow{{Name: "a", Findings: 1, Weight: 0.1}, {Name: "b", Findings: 5, Weight: 0.7}}
	if !reflect.DeepEqual(h.Scenarios, want) {
		t.Fatalf("scenarios = %+v, want %+v", h.Scenarios, want)
	}
}

func TestTrendAggregatesPerSoak(t *testing.T) {
	h := sampleHistory()
	trend := h.Trend()
	if len(trend) != 2 {
		t.Fatalf("trend has %d points, want 2", len(trend))
	}
	if trend[0].Soak != 1 || trend[1].Soak != 2 {
		t.Fatalf("trend soak order = %d,%d", trend[0].Soak, trend[1].Soak)
	}
	if trend[0].Epochs != 2 || trend[0].Campaigns != 10 || trend[0].Findings != 1 {
		t.Fatalf("soak 1 aggregate = %+v", trend[0])
	}
	if trend[1].Epochs != 1 || trend[1].Findings != 2 {
		t.Fatalf("soak 2 aggregate = %+v", trend[1])
	}
}
