package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/dice-project/dice/internal/obs"
)

func newServer(t *testing.T, histPath string) *Server {
	t.Helper()
	s, err := New(Config{HistoryPath: histPath, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// runSoak attaches the demo deployment (when needed), runs one bounded soak
// to completion and returns the finished run.
func runSoak(t *testing.T, s *Server, req SoakRequest) *soakRun {
	t.Helper()
	if !s.Status().Attached {
		if err := s.Attach(AttachRequest{Seed: 7}); err != nil {
			t.Fatalf("Attach: %v", err)
		}
	}
	if _, err := s.StartSoak(req); err != nil {
		t.Fatalf("StartSoak: %v", err)
	}
	s.mu.Lock()
	run := s.soak
	s.mu.Unlock()
	<-run.done
	if run.err != nil {
		t.Fatalf("soak: %v", run.err)
	}
	return run
}

func scrape(t *testing.T, reg *obs.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.String()
}

// metricValue extracts an unlabeled sample's value, -1 when absent.
func metricValue(body, name string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

// TestServeSoakEndToEnd drives the daemon through a real soak and checks the
// acceptance points in one pass: findings provenance against live.Report,
// byte-deterministic metrics with every instrumented subsystem reporting,
// persisted history matching the runtime, and span hierarchy population.
func TestServeSoakEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.dice")
	s := newServer(t, path)
	run := runSoak(t, s, SoakRequest{Epochs: 2, InputsPerScenario: 6, FuzzSeeds: 2, Workers: 2})

	// Findings provenance: the JSON API projection must carry exactly the
	// report's (epoch, scenario, unit, input) provenance.
	want := run.rt.Report().Findings()
	got := s.Findings()
	if len(got) == 0 {
		t.Fatal("soak over the planted faults produced no findings")
	}
	if len(got) != len(want) {
		t.Fatalf("API findings = %d, report findings = %d", len(got), len(want))
	}
	for i, f := range want {
		g := got[i]
		if g.Epoch != f.Epoch || g.Scenario != f.Scenario || g.Explorer != f.Explorer ||
			g.FromPeer != f.FromPeer || g.InputIndex != f.InputIndex {
			t.Errorf("finding %d provenance = %+v, want epoch=%d scenario=%s unit=%s<-%s input=%d",
				i, g, f.Epoch, f.Scenario, f.Explorer, f.FromPeer, f.InputIndex)
		}
		if g.Key != f.Violation.Key() || g.Class != f.Class.String() {
			t.Errorf("finding %d identity = (%s,%s), want (%s,%s)",
				i, g.Class, g.Key, f.Class, f.Violation.Key())
		}
	}

	// Metrics: identical state must scrape to identical bytes.
	m1 := scrape(t, s.Registry())
	m2 := scrape(t, s.Registry())
	if m1 != m2 {
		t.Fatal("two scrapes of stable state differ")
	}

	// Every instrumented subsystem reports at least one live (nonzero)
	// series.
	for _, name := range []string{
		"dice_live_epochs_total",                    // runtime loop
		"dice_live_campaigns_total",                 // exploration
		"dice_live_findings_total",                  // detection
		"dice_pool_leases_total",                    // clone pool
		"dice_checkpoint_ring_epochs",               // checkpoint ring/CAS
		"dice_federation_summaries_total",           // federation bus (attach federates by default)
		"dice_serve_soaks_total",                    // daemon history
		"dice_serve_history_epochs",                 // daemon history rows
		"dice_serve_spans_total{kind=\"campaign\"}", // tracer
	} {
		bare := name
		if i := strings.IndexByte(name, '{'); i >= 0 {
			// Labeled series: look the full sample line up directly.
			if !strings.Contains(m1, name+" ") {
				t.Errorf("series %s absent from exposition", name)
			}
			continue
		}
		if v := metricValue(m1, bare); v <= 0 {
			t.Errorf("series %s = %v, want > 0", bare, v)
		}
	}

	// History on disk: decodes, matches the runtime's epoch count, and
	// re-encodes byte-identically.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read history: %v", err)
	}
	h, err := DecodeHistory(data)
	if err != nil {
		t.Fatalf("DecodeHistory: %v", err)
	}
	if h.Soaks != 1 {
		t.Fatalf("history soaks = %d, want 1", h.Soaks)
	}
	if stats := run.rt.Stats(); len(h.Epochs) != stats.Epochs {
		t.Fatalf("history rows = %d, runtime epochs = %d", len(h.Epochs), stats.Epochs)
	}
	if !bytes.Equal(h.Encode(), data) {
		t.Fatal("history file is not a fixed point of encode∘decode")
	}
	if len(h.Scenarios) == 0 {
		t.Fatal("soak end did not merge scenario analytics")
	}

	// Trace: the campaign event feed produced the span hierarchy.
	counts := s.Tracer().Counts()
	for _, kind := range []obs.SpanKind{obs.SpanEpoch, obs.SpanCampaign, obs.SpanUnit} {
		if counts[kind] == 0 {
			t.Errorf("no %s spans recorded", kind)
		}
	}
}

// TestServeRestartResumesHistory kills the daemon (by dropping it) and
// verifies a fresh one resumes the identical trendline: same soak count,
// byte-identical re-encode, and the next soak numbered after the old ones.
func TestServeRestartResumesHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.dice")

	s1 := newServer(t, path)
	runSoak(t, s1, SoakRequest{Epochs: 1, InputsPerScenario: 3, FuzzSeeds: 1, Workers: 2})
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read history: %v", err)
	}

	s2 := newServer(t, path)
	h := s2.History()
	if h.Soaks != 1 {
		t.Fatalf("restarted daemon resumed %d soaks, want 1", h.Soaks)
	}
	if !bytes.Equal(h.Encode(), before) {
		t.Fatal("restart did not resume history byte-identically")
	}

	runSoak(t, s2, SoakRequest{Epochs: 1, InputsPerScenario: 3, FuzzSeeds: 1, Workers: 2})
	h = s2.History()
	if h.Soaks != 2 {
		t.Fatalf("second soak numbered %d soaks, want 2", h.Soaks)
	}
	trend := h.Trend()
	if len(trend) != 2 || trend[0].Soak != 1 || trend[1].Soak != 2 {
		t.Fatalf("trend = %+v, want soaks 1 and 2", trend)
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read history: %v", err)
	}
	h2, err := DecodeHistory(after)
	if err != nil {
		t.Fatalf("DecodeHistory after restart: %v", err)
	}
	if h2.Soaks != 2 || len(h2.Epochs) != len(h.Epochs) {
		t.Fatalf("persisted history = %d soaks %d rows, want 2 soaks %d rows",
			h2.Soaks, len(h2.Epochs), len(h.Epochs))
	}
}

// TestServeRefusesForeignHistoryFile verifies the daemon refuses to start
// over a history path holding something that is not a history artifact.
func TestServeRefusesForeignHistoryFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "history.dice")
	if err := os.WriteFile(path, []byte("not a codec artifact"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{HistoryPath: path}); err == nil {
		t.Fatal("New accepted a foreign history file")
	}
}

// TestHandlerEndpoints exercises the HTTP surface without running a soak.
func TestHandlerEndpoints(t *testing.T) {
	s := newServer(t, "")
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	post := func(path, body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, `"status":"ok"`) {
		t.Fatalf("healthz = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "dice_serve_attached 0") {
		t.Fatalf("metrics = %d (attached gauge missing)", code)
	}
	if code, body := get("/api/v1/findings"); code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("idle findings = %d %q, want empty array", code, body)
	}
	if code, _ := post("/api/v1/detach", ""); code != http.StatusConflict {
		t.Fatalf("detach while idle = %d, want 409", code)
	}
	if code, _ := post("/api/v1/soak/start", "{}"); code != http.StatusConflict {
		t.Fatalf("soak without attachment = %d, want 409", code)
	}
	if code, _ := post("/api/v1/attach", "{bad json"); code != http.StatusBadRequest {
		t.Fatalf("malformed attach = %d, want 400", code)
	}

	plant, fed := false, false
	req, _ := json.Marshal(AttachRequest{Deployment: "demo27", Seed: 3, PlantFaults: &plant, Federated: &fed})
	if code, body := post("/api/v1/attach", string(req)); code != http.StatusOK {
		t.Fatalf("attach = %d %q", code, body)
	}
	if code, _ := post("/api/v1/attach", string(req)); code != http.StatusConflict {
		t.Fatal("double attach accepted")
	}

	var st StatusReply
	if _, body := get("/api/v1/status"); true {
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatalf("status: %v", err)
		}
	}
	if !st.Attached || st.Deployment != "demo27" || st.Federated {
		t.Fatalf("status = %+v", st)
	}

	if code, body := get("/api/v1/history"); code != http.StatusOK || !strings.Contains(body, `"soaks":0`) {
		t.Fatalf("history = %d %q", code, body)
	}
	if code, body := get("/api/v1/trace"); code != http.StatusOK || !strings.Contains(body, `"counts"`) {
		t.Fatalf("trace = %d %q", code, body)
	}
	if code, _ := post("/api/v1/detach", ""); code != http.StatusOK {
		t.Fatal("detach failed")
	}
	if code, _ := post("/api/v1/attach", "{\"deployment\":\"demo9000\"}"); code != http.StatusConflict {
		t.Fatal("unknown deployment accepted")
	}
}
