// Package serve implements the dice-serve daemon: the operational face of
// the live runtime. It holds one attached deployment, runs soaks against it
// on demand, exposes /healthz, Prometheus /metrics and a small JSON API
// (attach/detach, soak start/stop, findings, history, trace), and persists
// soak history through the deterministic checkpoint codec so a restarted
// daemon resumes its trendline exactly where the killed one stopped.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"sync"
	"time"

	"github.com/dice-project/dice/internal/cluster"
	"github.com/dice-project/dice/internal/dice"
	"github.com/dice-project/dice/internal/faults"
	"github.com/dice-project/dice/internal/federation"
	"github.com/dice-project/dice/internal/live"
	"github.com/dice-project/dice/internal/obs"
	"github.com/dice-project/dice/internal/topology"
)

// Config parameterizes a Server.
type Config struct {
	// HistoryPath is the soak-history file (loaded at construction when it
	// exists, saved after every epoch). Empty disables persistence.
	HistoryPath string
	// TraceCapacity bounds the finished-span ring (4096 when unset).
	TraceCapacity int
	// Logf, when set, receives daemon progress lines.
	Logf func(format string, args ...any)
}

// attachment is the deployment the daemon soaks.
type attachment struct {
	name        string
	seed        int64
	topo        *topology.Topology
	cluster     *cluster.Cluster
	clusterOpts cluster.Options
	partition   *federation.Partition
}

// soakRun is one running (or finished) soak.
type soakRun struct {
	soak   int // 1-based soak number within the history
	rt     *live.Runtime
	cancel context.CancelFunc
	done   chan struct{}
	err    error

	// Span bookkeeping for the campaign event feed. Campaign events arrive
	// from the exploring goroutine and (unit events) from campaign workers,
	// so the maps take the soak's own lock.
	mu        sync.Mutex
	campaigns map[string]uint64 // "epoch/scenario" -> campaign span
	units     map[string]uint64 // "epoch/scenario/unitIndex" -> unit span
}

// Server is the dice-serve daemon state. Construct with New, expose
// Handler() on an http.Server.
type Server struct {
	cfg    Config
	reg    *obs.Registry
	tracer *obs.Tracer

	mu    sync.Mutex
	dep   *attachment
	soak  *soakRun
	hist  *History
	start time.Time
}

// New returns a daemon, loading prior soak history from cfg.HistoryPath when
// the file exists. A file that is not a KindHistory codec artifact is
// refused (ErrNotHistory) rather than silently replaced.
func New(cfg Config) (*Server, error) {
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = 4096
	}
	s := &Server{
		cfg:    cfg,
		reg:    obs.NewRegistry(),
		tracer: obs.NewTracer(cfg.TraceCapacity),
		hist:   &History{},
		start:  time.Now(),
	}
	if cfg.HistoryPath != "" {
		data, err := os.ReadFile(cfg.HistoryPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First run: empty history.
		case err != nil:
			return nil, fmt.Errorf("serve: read history: %w", err)
		default:
			h, err := DecodeHistory(data)
			if err != nil {
				return nil, fmt.Errorf("serve: %s: %w", cfg.HistoryPath, err)
			}
			s.hist = h
			s.logf("serve: resumed history: %d soaks, %d epoch rows", h.Soaks, len(h.Epochs))
		}
	}
	s.registerMetrics()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// runtime returns the current soak's runtime, nil when idle — the nil-safe
// seam every metrics collector reads through, so the registry is populated
// once at construction and re-points across soaks without re-registration.
func (s *Server) runtime() *live.Runtime {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.soak == nil {
		return nil
	}
	return s.soak.rt
}

// registerMetrics wires every subsystem's series plus the daemon's own.
func (s *Server) registerMetrics() {
	live.RegisterMetrics(s.reg, s.runtime)
	s.reg.GaugeFunc("dice_serve_attached", "1 when a deployment is attached.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.dep != nil {
				return 1
			}
			return 0
		})
	s.reg.GaugeFunc("dice_serve_soak_running", "1 while a soak is executing.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.soakRunningLocked() {
				return 1
			}
			return 0
		})
	s.reg.CounterFunc("dice_serve_soaks_total", "Soak runs recorded in the history (survives restarts).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.hist.Soaks)
		})
	s.reg.GaugeFunc("dice_serve_history_epochs", "Epoch rows in the persisted soak history.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.hist.Epochs))
		})
	s.reg.CounterVecFunc("dice_serve_spans_total", "Finished trace spans by kind.", "kind",
		func() map[string]float64 {
			out := make(map[string]float64)
			for k, v := range s.tracer.Counts() {
				out[string(k)] = float64(v)
			}
			return out
		})
}

// Registry exposes the daemon's metrics registry (tests scrape it directly).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Tracer exposes the daemon's span tracer.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// History returns a deep-enough copy of the current soak history.
func (s *Server) History() History {
	s.mu.Lock()
	defer s.mu.Unlock()
	return History{
		Soaks:     s.hist.Soaks,
		Epochs:    append([]EpochRow(nil), s.hist.Epochs...),
		Scenarios: append([]ScenarioRow(nil), s.hist.Scenarios...),
	}
}

// soakRunningLocked reports whether a soak is still executing; caller holds
// s.mu.
func (s *Server) soakRunningLocked() bool {
	if s.soak == nil {
		return false
	}
	select {
	case <-s.soak.done:
		return false
	default:
		return true
	}
}

// AttachRequest is the attach endpoint's body. Deployment currently selects
// the built-in 27-router demo ("demo27"); PlantFaults injects the demo's
// mis-origination and missing-import-filter faults (default true — a soak
// that can find something). Federated splits the deployment into per-AS
// administrative domains so campaigns disclose only summaries across them.
//
//dice:boundary
type AttachRequest struct {
	Deployment  string `json:"deployment"`
	Seed        int64  `json:"seed"`
	PlantFaults *bool  `json:"plant_faults,omitempty"`
	Federated   *bool  `json:"federated,omitempty"`
	MaxEvents   int    `json:"max_events,omitempty"`
}

// Attach builds and converges the named deployment. Fails when one is
// already attached (detach first) — the daemon serves one deployment.
func (s *Server) Attach(req AttachRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dep != nil {
		return errors.New("serve: a deployment is already attached")
	}
	if s.soakRunningLocked() {
		return errors.New("serve: a soak is still running")
	}
	if req.Deployment == "" {
		req.Deployment = "demo27"
	}
	if req.Deployment != "demo27" {
		return fmt.Errorf("serve: unknown deployment %q (have: demo27)", req.Deployment)
	}
	topo := topology.Demo27()
	opts := cluster.Options{Seed: req.Seed, MaxEvents: req.MaxEvents}
	if opts.MaxEvents <= 0 {
		opts.MaxEvents = 300000
	}
	if req.PlantFaults == nil || *req.PlantFaults {
		victim := topo.Nodes[26].Prefixes[0]
		opts.ConfigOverride = faults.ApplyConfigFaults(
			faults.MisOrigination{Router: "R12", Prefix: victim},
			faults.MissingImportFilter{Router: "R1", Peer: "R4"},
		)
	}
	dep, err := cluster.Build(topo, opts)
	if err != nil {
		return fmt.Errorf("serve: deploy: %w", err)
	}
	dep.Converge()
	att := &attachment{
		name:        req.Deployment,
		seed:        req.Seed,
		topo:        topo,
		cluster:     dep,
		clusterOpts: opts,
	}
	if req.Federated == nil || *req.Federated {
		att.partition = federation.PartitionByAS(topo)
	}
	s.dep = att
	s.logf("serve: attached %s (seed %d, %d routers, federated=%v)",
		att.name, att.seed, len(topo.Nodes), att.partition != nil)
	return nil
}

// Detach drops the attached deployment. Fails while a soak is running.
func (s *Server) Detach() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dep == nil {
		return errors.New("serve: nothing attached")
	}
	if s.soakRunningLocked() {
		return errors.New("serve: a soak is still running; stop it first")
	}
	s.dep = nil
	s.soak = nil
	s.logf("serve: detached")
	return nil
}

// SoakRequest parameterizes one soak run against the attached deployment.
//
//dice:boundary
type SoakRequest struct {
	Epochs            int  `json:"epochs"`
	InputsPerScenario int  `json:"inputs_per_scenario,omitempty"`
	ScenariosPerEpoch int  `json:"scenarios_per_epoch,omitempty"`
	FuzzSeeds         int  `json:"fuzz_seeds,omitempty"`
	Workers           int  `json:"workers,omitempty"`
	Overlap           bool `json:"overlap,omitempty"`
}

// StartSoak launches a soak on the attached deployment. The soak runs on its
// own goroutine; findings, history rows and spans stream out as it runs.
func (s *Server) StartSoak(req SoakRequest) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dep == nil {
		return 0, errors.New("serve: attach a deployment first")
	}
	if s.soakRunningLocked() {
		return 0, errors.New("serve: a soak is already running")
	}
	if req.Epochs <= 0 {
		req.Epochs = 4
	}
	if req.InputsPerScenario <= 0 {
		req.InputsPerScenario = 8
	}

	s.hist.Soaks++
	run := &soakRun{
		soak:      s.hist.Soaks,
		done:      make(chan struct{}),
		campaigns: make(map[string]uint64),
		units:     make(map[string]uint64),
	}
	att := s.dep
	opts := live.Options{
		Seed:              att.seed,
		ClusterOptions:    att.clusterOpts,
		MaxEpochs:         req.Epochs,
		InputsPerScenario: req.InputsPerScenario,
		ScenariosPerEpoch: req.ScenariosPerEpoch,
		FuzzSeeds:         req.FuzzSeeds,
		Workers:           req.Workers,
		Overlap:           req.Overlap,
		Explorers:         []string{"R1"},
		Partition:         att.partition,
		Trace:             func(line string) { s.logf("soak %d: %s", run.soak, line) },
		OnEpoch: func(sum live.EpochSummary) {
			s.onEpoch(run, sum)
		},
		OnCampaignEvent: func(epoch int, scenario string, ev dice.Event) {
			s.onCampaignEvent(run, epoch, scenario, ev)
		},
	}
	rt, err := live.NewRuntime(att.cluster, att.topo, opts)
	if err != nil {
		s.hist.Soaks--
		return 0, err
	}
	run.rt = rt
	ctx, cancel := context.WithCancel(context.Background())
	run.cancel = cancel
	s.soak = run
	s.logf("serve: soak %d started (%d epochs)", run.soak, req.Epochs)

	go func() {
		defer close(run.done)
		defer cancel()
		_, err := rt.Run(ctx)
		run.err = err
		s.finishSoak(run)
	}()
	return run.soak, nil
}

// onEpoch persists one epoch row and records its span.
func (s *Server) onEpoch(run *soakRun, sum live.EpochSummary) {
	start := time.Unix(0, sum.UnixNano)
	s.tracer.Record(obs.SpanEpoch, fmt.Sprintf("epoch-%d", sum.Seq), 0,
		start, start.Add(sum.Pause+sum.Process+sum.Explore))
	s.mu.Lock()
	s.hist.AddEpoch(run.soak, sum)
	s.mu.Unlock()
	s.saveHistory()
}

// onCampaignEvent turns the campaign event stream into campaign → unit →
// input spans. Unit events arrive from campaign workers concurrently; the
// soak's own lock guards the span maps.
func (s *Server) onCampaignEvent(run *soakRun, epoch int, scenario string, ev dice.Event) {
	ck := fmt.Sprintf("%d/%s", epoch, scenario)
	run.mu.Lock()
	defer run.mu.Unlock()
	switch ev.Kind {
	case dice.EventCampaignStart:
		run.campaigns[ck] = s.tracer.Begin(obs.SpanCampaign, fmt.Sprintf("epoch-%d/%s", epoch, scenario), 0)
	case dice.EventUnitStart:
		uk := fmt.Sprintf("%s/%d", ck, ev.UnitIndex)
		run.units[uk] = s.tracer.Begin(obs.SpanUnit,
			fmt.Sprintf("epoch-%d/%s/%s<-%s", epoch, scenario, ev.Unit.Explorer, ev.Unit.FromPeer), run.campaigns[ck])
	case dice.EventDetection:
		if ev.Detection != nil {
			uk := fmt.Sprintf("%s/%d", ck, ev.UnitIndex)
			now := time.Now()
			s.tracer.Record(obs.SpanInput,
				fmt.Sprintf("epoch-%d/%s/input-%d", epoch, scenario, ev.Detection.InputIndex),
				run.units[uk], now, now)
		}
	case dice.EventUnitEnd:
		uk := fmt.Sprintf("%s/%d", ck, ev.UnitIndex)
		if id, ok := run.units[uk]; ok {
			s.tracer.End(id)
			delete(run.units, uk)
		}
	case dice.EventCampaignEnd:
		if id, ok := run.campaigns[ck]; ok {
			s.tracer.End(id)
			delete(run.campaigns, ck)
		}
	}
}

// finishSoak folds the ended soak's scenario analytics into the history and
// saves it.
func (s *Server) finishSoak(run *soakRun) {
	weights := run.rt.Scheduler().Weights()
	perScenario := make(map[string]int)
	for _, f := range run.rt.Report().Findings() {
		perScenario[f.Scenario]++
	}
	s.mu.Lock()
	for name, w := range weights {
		s.hist.MergeScenario(name, perScenario[name], w)
	}
	s.mu.Unlock()
	s.saveHistory()
	s.logf("serve: soak %d finished (%d findings, err=%v)",
		run.soak, run.rt.Report().Len(), run.err)
}

// StopSoak cancels the running soak and waits for it to wind down.
func (s *Server) StopSoak() error {
	s.mu.Lock()
	run := s.soak
	s.mu.Unlock()
	if run == nil {
		return errors.New("serve: no soak to stop")
	}
	run.cancel()
	<-run.done
	return nil
}

// saveHistory atomically persists the history file (write temp + rename),
// so a kill mid-save never corrupts the trendline.
func (s *Server) saveHistory() {
	if s.cfg.HistoryPath == "" {
		return
	}
	s.mu.Lock()
	data := s.hist.Encode()
	s.mu.Unlock()
	tmp := s.cfg.HistoryPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		s.logf("serve: save history: %v", err)
		return
	}
	if err := os.Rename(tmp, s.cfg.HistoryPath); err != nil {
		s.logf("serve: save history: %v", err)
	}
}

// FindingSummary is a finding projected to summary grade for the JSON API:
// full (epoch, scenario, unit, input) provenance, violation key and rendered
// description — never trace wire bytes or node state.
//
//dice:boundary
type FindingSummary struct {
	Epoch         int    `json:"epoch"`
	Scenario      string `json:"scenario"`
	Explorer      string `json:"explorer"`
	FromPeer      string `json:"from_peer"`
	Domain        string `json:"domain,omitempty"`
	InputIndex    int    `json:"input_index"`
	Class         string `json:"class"`
	Key           string `json:"key"`
	Violation     string `json:"violation"`
	ElapsedNS     int64  `json:"elapsed_ns"`
	TraceSteps    int    `json:"trace_steps"`
	TraceOriginal int    `json:"trace_original"`
	Reverified    bool   `json:"reverified"`
}

// Findings returns the current soak report's findings, summary grade, in
// report order.
func (s *Server) Findings() []FindingSummary {
	rt := s.runtime()
	if rt == nil {
		return nil
	}
	findings := rt.Report().Findings()
	out := make([]FindingSummary, 0, len(findings))
	for _, f := range findings {
		out = append(out, FindingSummary{
			Epoch:         f.Epoch,
			Scenario:      f.Scenario,
			Explorer:      f.Explorer,
			FromPeer:      f.FromPeer,
			Domain:        f.Domain,
			InputIndex:    f.InputIndex,
			Class:         f.Class.String(),
			Key:           f.Violation.Key(),
			Violation:     f.Violation.String(),
			ElapsedNS:     int64(f.Elapsed),
			TraceSteps:    len(f.Trace),
			TraceOriginal: f.TraceOriginal,
			Reverified:    f.Reverified,
		})
	}
	return out
}

// StatusReply is the status endpoint's body.
//
//dice:boundary
type StatusReply struct {
	Attached    bool   `json:"attached"`
	Deployment  string `json:"deployment,omitempty"`
	Federated   bool   `json:"federated"`
	SoakRunning bool   `json:"soak_running"`
	Soak        int    `json:"soak,omitempty"`
	Soaks       int    `json:"soaks"`
	Epochs      int    `json:"epochs"`
	Findings    int    `json:"findings"`
	UptimeNS    int64  `json:"uptime_ns"`
}

// Status reports the daemon's current state.
func (s *Server) Status() StatusReply {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := StatusReply{
		Attached:    s.dep != nil,
		SoakRunning: s.soakRunningLocked(),
		Soaks:       s.hist.Soaks,
		UptimeNS:    int64(time.Since(s.start)),
	}
	if s.dep != nil {
		st.Deployment = s.dep.name
		st.Federated = s.dep.partition != nil
	}
	if s.soak != nil {
		st.Soak = s.soak.soak
		stats := s.soak.rt.Stats()
		st.Epochs = stats.Epochs
		st.Findings = stats.Findings
	}
	return st
}

// SpanReply is one span in the trace endpoint's body.
//
//dice:boundary
type SpanReply struct {
	ID      uint64 `json:"id"`
	Parent  uint64 `json:"parent,omitempty"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	StartNS int64  `json:"start_ns"`
	EndNS   int64  `json:"end_ns,omitempty"`
}

func spanReply(sp obs.Span) SpanReply {
	r := SpanReply{
		ID:      sp.ID,
		Parent:  sp.Parent,
		Kind:    string(sp.Kind),
		Name:    sp.Name,
		StartNS: sp.Start.UnixNano(),
	}
	if !sp.End.IsZero() {
		r.EndNS = sp.End.UnixNano()
	}
	return r
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		st := s.Status()
		replyJSON(w, map[string]any{
			"status":       "ok",
			"attached":     st.Attached,
			"soak_running": st.SoakRunning,
			"soaks":        st.Soaks,
		})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = s.reg.WritePrometheus(w)
	})
	mux.HandleFunc("POST /api/v1/attach", func(w http.ResponseWriter, r *http.Request) {
		var req AttachRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Attach(req); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		replyJSON(w, s.Status())
	})
	mux.HandleFunc("POST /api/v1/detach", func(w http.ResponseWriter, r *http.Request) {
		if err := s.Detach(); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		replyJSON(w, s.Status())
	})
	mux.HandleFunc("POST /api/v1/soak/start", func(w http.ResponseWriter, r *http.Request) {
		var req SoakRequest
		if r.ContentLength != 0 {
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
		soak, err := s.StartSoak(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		replyJSON(w, map[string]any{"soak": soak})
	})
	mux.HandleFunc("POST /api/v1/soak/stop", func(w http.ResponseWriter, r *http.Request) {
		if err := s.StopSoak(); err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		replyJSON(w, s.Status())
	})
	mux.HandleFunc("GET /api/v1/status", func(w http.ResponseWriter, r *http.Request) {
		replyJSON(w, s.Status())
	})
	mux.HandleFunc("GET /api/v1/findings", func(w http.ResponseWriter, r *http.Request) {
		findings := s.Findings()
		if findings == nil {
			findings = []FindingSummary{}
		}
		replyJSON(w, findings)
	})
	mux.HandleFunc("GET /api/v1/history", func(w http.ResponseWriter, r *http.Request) {
		h := s.History()
		replyJSON(w, map[string]any{
			"soaks":     h.Soaks,
			"epochs":    h.Epochs,
			"scenarios": h.Scenarios,
			"trend":     h.Trend(),
		})
	})
	mux.HandleFunc("GET /api/v1/trace", func(w http.ResponseWriter, r *http.Request) {
		active := s.tracer.Active()
		finished := s.tracer.Snapshot()
		reply := struct {
			Active   []SpanReply       `json:"active"`
			Finished []SpanReply       `json:"finished"`
			Counts   map[string]uint64 `json:"counts"`
		}{Counts: make(map[string]uint64)}
		for _, sp := range active {
			reply.Active = append(reply.Active, spanReply(sp))
		}
		for _, sp := range finished {
			reply.Finished = append(reply.Finished, spanReply(sp))
		}
		for k, v := range s.tracer.Counts() {
			reply.Counts[string(k)] = v
		}
		replyJSON(w, reply)
	})
	return mux
}

func replyJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
