package serve

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/dice-project/dice/internal/checkpoint/codec"
	"github.com/dice-project/dice/internal/live"
)

// EpochRow is one epoch's persisted soak-history record: the checkpoint's
// costs and its exploration activity, scalar fields only (it crosses the
// daemon's JSON API, so privleak holds it to summary grade).
//
//dice:boundary
type EpochRow struct {
	// Soak numbers the soak run within the history (1-based, monotonically
	// increasing across daemon restarts); Seq is the epoch's ring sequence
	// within that soak.
	Soak int `json:"soak"`
	Seq  int `json:"seq"`
	// AtNS is the checkpoint's wall-clock time in Unix nanoseconds.
	AtNS int64 `json:"at_ns"`

	PauseNS    int64 `json:"pause_ns"`
	ProcessNS  int64 `json:"process_ns"`
	TrafficNS  int64 `json:"traffic_ns"`
	ExploreNS  int64 `json:"explore_ns"`
	OverBudget bool  `json:"over_budget"`
	Stride     int   `json:"stride"`

	Bytes        int `json:"bytes"`
	DeltaBytes   int `json:"delta_bytes"`
	NodesChanged int `json:"nodes_changed"`

	Campaigns   int `json:"campaigns"`
	Deduped     int `json:"deduped"`
	Inputs      int `json:"inputs"`
	InputsSaved int `json:"inputs_saved"`
	Paths       int `json:"paths"`
	PathsSaved  int `json:"paths_saved"`
	Findings    int `json:"findings"`
}

// ScenarioRow is one scenario's cumulative detection analytics across the
// whole history: how many findings it produced and the scheduler weight it
// ended the latest soak with.
//
//dice:boundary
type ScenarioRow struct {
	Name     string  `json:"name"`
	Findings int     `json:"findings"`
	Weight   float64 `json:"weight"`
}

// History is dice-serve's persisted soak record: per-epoch summary rows and
// per-scenario detection analytics, accumulated across soaks and daemon
// restarts. It encodes through the deterministic checkpoint codec
// (KindHistory artifacts), so identical history state always persists to
// identical bytes and a restart resumes the trendline exactly.
type History struct {
	// Soaks counts soak runs recorded (the next soak takes Soaks+1).
	Soaks     int
	Epochs    []EpochRow
	Scenarios []ScenarioRow // sorted by name
}

// AddEpoch appends one epoch's summary row for the given soak run.
func (h *History) AddEpoch(soak int, s live.EpochSummary) {
	h.Epochs = append(h.Epochs, EpochRow{
		Soak:         soak,
		Seq:          s.Seq,
		AtNS:         s.UnixNano,
		PauseNS:      int64(s.Pause),
		ProcessNS:    int64(s.Process),
		TrafficNS:    int64(s.Traffic),
		ExploreNS:    int64(s.Explore),
		OverBudget:   s.OverBudget,
		Stride:       s.Stride,
		Bytes:        s.Bytes,
		DeltaBytes:   s.DeltaBytes,
		NodesChanged: s.NodesChanged,
		Campaigns:    s.Campaigns,
		Deduped:      s.CampaignsDeduped,
		Inputs:       s.Inputs,
		InputsSaved:  s.InputsSaved,
		Paths:        s.Paths,
		PathsSaved:   s.PathsSaved,
		Findings:     s.Findings,
	})
}

// MergeScenario folds one scenario's latest analytics into the history:
// findings accumulate, the weight is replaced (it is the scheduler's current
// belief, not a counter). Rows stay sorted by name.
func (h *History) MergeScenario(name string, findings int, weight float64) {
	i := sort.Search(len(h.Scenarios), func(i int) bool { return h.Scenarios[i].Name >= name })
	if i < len(h.Scenarios) && h.Scenarios[i].Name == name {
		h.Scenarios[i].Findings += findings
		h.Scenarios[i].Weight = weight
		return
	}
	h.Scenarios = append(h.Scenarios, ScenarioRow{})
	copy(h.Scenarios[i+1:], h.Scenarios[i:])
	h.Scenarios[i] = ScenarioRow{Name: name, Findings: findings, Weight: weight}
}

// TrendPoint is one soak's aggregate in the cross-restart trendline.
//
//dice:boundary
type TrendPoint struct {
	Soak      int   `json:"soak"`
	Epochs    int   `json:"epochs"`
	Campaigns int   `json:"campaigns"`
	Deduped   int   `json:"deduped"`
	Inputs    int   `json:"inputs"`
	Findings  int   `json:"findings"`
	PauseNS   int64 `json:"pause_ns"`
	ExploreNS int64 `json:"explore_ns"`
}

// Trend aggregates the epoch rows per soak, in soak order — the BENCH-style
// trendline the JSON API serves and restarts must resume.
func (h *History) Trend() []TrendPoint {
	bySoak := make(map[int]*TrendPoint)
	var order []int
	for _, e := range h.Epochs {
		tp := bySoak[e.Soak]
		if tp == nil {
			tp = &TrendPoint{Soak: e.Soak}
			bySoak[e.Soak] = tp
			order = append(order, e.Soak)
		}
		tp.Epochs++
		tp.Campaigns += e.Campaigns
		tp.Deduped += e.Deduped
		tp.Inputs += e.Inputs
		tp.Findings += e.Findings
		tp.PauseNS += e.PauseNS
		tp.ExploreNS += e.ExploreNS
	}
	sort.Ints(order)
	out := make([]TrendPoint, 0, len(order))
	for _, soak := range order {
		out = append(out, *bySoak[soak])
	}
	return out
}

// Encode serializes the history as a KindHistory codec artifact. Epoch rows
// encode in stored order and scenario rows in their sorted order, so
// identical history state always yields identical bytes (the kill+restart
// byte-identity test depends on it).
func (h *History) Encode() []byte {
	w := codec.NewWriter()
	w.Header(codec.KindHistory)
	w.Uvarint(uint64(h.Soaks))

	mark := w.BeginSlab()
	w.Uvarint(uint64(len(h.Epochs)))
	for _, e := range h.Epochs {
		w.Uvarint(uint64(e.Soak))
		w.Uvarint(uint64(e.Seq))
		w.Varint(e.AtNS)
		w.Varint(e.PauseNS)
		w.Varint(e.ProcessNS)
		w.Varint(e.TrafficNS)
		w.Varint(e.ExploreNS)
		w.Bool(e.OverBudget)
		w.Uvarint(uint64(e.Stride))
		w.Uvarint(uint64(e.Bytes))
		w.Uvarint(uint64(e.DeltaBytes))
		w.Uvarint(uint64(e.NodesChanged))
		w.Uvarint(uint64(e.Campaigns))
		w.Uvarint(uint64(e.Deduped))
		w.Uvarint(uint64(e.Inputs))
		w.Uvarint(uint64(e.InputsSaved))
		w.Uvarint(uint64(e.Paths))
		w.Uvarint(uint64(e.PathsSaved))
		w.Uvarint(uint64(e.Findings))
	}
	w.EndSlab(mark)

	mark = w.BeginSlab()
	w.Uvarint(uint64(len(h.Scenarios)))
	for _, s := range h.Scenarios {
		w.String(s.Name)
		w.Uvarint(uint64(s.Findings))
		w.Uvarint(math.Float64bits(s.Weight))
	}
	w.EndSlab(mark)
	return w.Bytes()
}

// ErrNotHistory reports data that does not open with the codec magic — a
// legacy or foreign file the daemon must refuse rather than misparse (the
// same sniff that routes legacy gob snapshots away from the codec decoder).
var ErrNotHistory = errors.New("serve: not a codec soak-history artifact")

// DecodeHistory parses a KindHistory artifact.
func DecodeHistory(data []byte) (*History, error) {
	if !codec.IsEncoded(data) {
		return nil, ErrNotHistory
	}
	r := codec.NewReader(data)
	r.Header(codec.KindHistory)
	h := &History{Soaks: int(r.Uvarint())}

	end := r.BeginSlab()
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		var e EpochRow
		e.Soak = int(r.Uvarint())
		e.Seq = int(r.Uvarint())
		e.AtNS = r.Varint()
		e.PauseNS = r.Varint()
		e.ProcessNS = r.Varint()
		e.TrafficNS = r.Varint()
		e.ExploreNS = r.Varint()
		e.OverBudget = r.Bool()
		e.Stride = int(r.Uvarint())
		e.Bytes = int(r.Uvarint())
		e.DeltaBytes = int(r.Uvarint())
		e.NodesChanged = int(r.Uvarint())
		e.Campaigns = int(r.Uvarint())
		e.Deduped = int(r.Uvarint())
		e.Inputs = int(r.Uvarint())
		e.InputsSaved = int(r.Uvarint())
		e.Paths = int(r.Uvarint())
		e.PathsSaved = int(r.Uvarint())
		e.Findings = int(r.Uvarint())
		h.Epochs = append(h.Epochs, e)
	}
	r.EndSlab(end)

	end = r.BeginSlab()
	n = r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		var s ScenarioRow
		s.Name = r.String()
		s.Findings = int(r.Uvarint())
		s.Weight = math.Float64frombits(r.Uvarint())
		h.Scenarios = append(h.Scenarios, s)
	}
	r.EndSlab(end)

	if err := r.Close(); err != nil {
		return nil, fmt.Errorf("serve: history: %w", err)
	}
	for i := 1; i < len(h.Scenarios); i++ {
		if h.Scenarios[i-1].Name >= h.Scenarios[i].Name {
			return nil, fmt.Errorf("serve: history: scenario rows not strictly sorted at %d", i)
		}
	}
	return h, nil
}
