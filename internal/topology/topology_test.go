package topology

import (
	"testing"
	"testing/quick"

	"github.com/dice-project/dice/internal/bgp"
)

func TestDemo27Shape(t *testing.T) {
	topo := Demo27()
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(topo.Nodes) != 27 {
		t.Fatalf("demo topology has %d nodes, want 27 (as in the paper's Figure 1)", len(topo.Nodes))
	}
	if !topo.Connected() {
		t.Fatalf("demo topology must be connected")
	}
	tiers := map[int]int{}
	for _, n := range topo.Nodes {
		tiers[n.Tier]++
		if len(n.Prefixes) == 0 {
			t.Errorf("node %s originates no prefix", n.Name)
		}
	}
	if tiers[1] != 3 || tiers[2] != 9 || tiers[3] != 15 {
		t.Errorf("tier sizes = %v, want 3/9/15", tiers)
	}
	// Every tier-3 stub must have at least two providers (dual homing).
	for _, n := range topo.Nodes {
		if n.Tier != 3 {
			continue
		}
		providers := 0
		for _, l := range topo.LinksOf(n.Name) {
			if l.Rel == RelCustomer && l.A == n.Name {
				providers++
			}
		}
		if providers < 2 {
			t.Errorf("stub %s has %d providers, want >= 2", n.Name, providers)
		}
	}
}

func TestDemo27Deterministic(t *testing.T) {
	a, b := Demo27(), Demo27()
	if len(a.Links) != len(b.Links) {
		t.Fatalf("demo topology not deterministic")
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			t.Fatalf("link %d differs between constructions", i)
		}
	}
}

func TestOwner(t *testing.T) {
	topo := Demo27()
	p := topo.Nodes[5].Prefixes[0]
	name, as, ok := topo.Owner(p)
	if !ok || name != topo.Nodes[5].Name || as != topo.Nodes[5].AS {
		t.Errorf("Owner(%s) = %s/%d/%v", p, name, as, ok)
	}
	if _, _, ok := topo.Owner(bgp.MustParsePrefix("203.0.113.0/24")); ok {
		t.Errorf("unowned prefix reported an owner")
	}
}

func TestGaoRexfordValidAndDeterministic(t *testing.T) {
	a := GaoRexford(3, 6, 12, 7)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !a.Connected() {
		t.Fatalf("generated topology must be connected")
	}
	if len(a.Nodes) != 21 {
		t.Errorf("nodes = %d, want 21", len(a.Nodes))
	}
	b := GaoRexford(3, 6, 12, 7)
	if len(a.Links) != len(b.Links) {
		t.Fatalf("same seed must give the same topology")
	}
	c := GaoRexford(3, 6, 12, 8)
	if len(a.Links) == len(c.Links) {
		same := true
		for i := range a.Links {
			if a.Links[i] != c.Links[i] {
				same = false
				break
			}
		}
		if same {
			t.Errorf("different seeds produced identical topologies")
		}
	}
}

func TestRegularShapes(t *testing.T) {
	for _, tc := range []struct {
		topo      *Topology
		nodes     int
		links     int
		connected bool
	}{
		{Line(5), 5, 4, true},
		{Ring(6), 6, 6, true},
		{Clique(4), 4, 6, true},
		{Star(7), 7, 6, true},
		{Line(1), 1, 0, true},
	} {
		if err := tc.topo.Validate(); err != nil {
			t.Errorf("%s: Validate: %v", tc.topo.Name, err)
		}
		if len(tc.topo.Nodes) != tc.nodes || len(tc.topo.Links) != tc.links {
			t.Errorf("%s: %d nodes %d links, want %d/%d", tc.topo.Name, len(tc.topo.Nodes), len(tc.topo.Links), tc.nodes, tc.links)
		}
		if tc.topo.Connected() != tc.connected {
			t.Errorf("%s: connectivity = %v", tc.topo.Name, tc.topo.Connected())
		}
	}
}

func TestNeighborsAndLookup(t *testing.T) {
	topo := Ring(4)
	nb := topo.NeighborsOf("R1")
	if len(nb) != 2 {
		t.Errorf("R1 neighbors = %v", nb)
	}
	if topo.Node("R3") == nil || topo.Node("R99") != nil {
		t.Errorf("Node lookup broken")
	}
	if len(topo.NodeNames()) != 4 {
		t.Errorf("NodeNames broken")
	}
	if len(topo.LinksOf("R2")) != 2 {
		t.Errorf("LinksOf broken")
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	base := func() *Topology { return Line(3) }

	topo := base()
	topo.Nodes[1].AS = topo.Nodes[0].AS
	if topo.Validate() == nil {
		t.Errorf("duplicate AS not caught")
	}

	topo = base()
	topo.Nodes[1].Name = topo.Nodes[0].Name
	if topo.Validate() == nil {
		t.Errorf("duplicate name not caught")
	}

	topo = base()
	topo.Links = append(topo.Links, Link{A: "R1", B: "R1"})
	if topo.Validate() == nil {
		t.Errorf("self link not caught")
	}

	topo = base()
	topo.Links = append(topo.Links, Link{A: "R1", B: "Rx"})
	if topo.Validate() == nil {
		t.Errorf("unknown endpoint not caught")
	}

	topo = base()
	topo.Links = append(topo.Links, Link{A: "R2", B: "R1"})
	if topo.Validate() == nil {
		t.Errorf("duplicate link not caught")
	}

	topo = base()
	topo.Links[0].Loss = 1.5
	if topo.Validate() == nil {
		t.Errorf("out-of-range loss not caught")
	}

	topo = base()
	topo.Nodes[0].RouterID = 0
	if topo.Validate() == nil {
		t.Errorf("zero router ID not caught")
	}

	topo = base()
	topo.Nodes[0].AS = 0
	if topo.Validate() == nil {
		t.Errorf("zero AS not caught")
	}
}

// Property: every generated Gao–Rexford topology validates, is connected, and
// assigns unique prefixes.
func TestQuickGaoRexfordAlwaysValid(t *testing.T) {
	f := func(seed int64, t2, t3 uint8) bool {
		topo := GaoRexford(3, int(t2%8), int(t3%12), seed)
		if topo.Validate() != nil || !topo.Connected() {
			return false
		}
		seen := make(map[bgp.Prefix]bool)
		for _, n := range topo.Nodes {
			for _, p := range n.Prefixes {
				if seen[p] {
					return false
				}
				seen[p] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestImplementationTagsNormalize(t *testing.T) {
	topo := Line(3)
	if got := topo.Implementations(); len(got) != 1 || got[0] != "bird" {
		t.Errorf("untagged topology implementations = %v, want [bird]", got)
	}
	// Tagging nodes with the default backend explicitly must not make the
	// topology look mixed.
	topo.SetImpl("bird", "R2")
	if topo.Heterogeneous() {
		t.Errorf("explicitly-default tag reported as heterogeneous")
	}
	topo.SetImpl("frr", "R3")
	if !topo.Heterogeneous() {
		t.Errorf("bird+frr topology not reported heterogeneous")
	}
	counts := topo.ImplementationCounts()
	if counts["bird"] != 2 || counts["frr"] != 1 {
		t.Errorf("ImplementationCounts = %v", counts)
	}
	if got := topo.Implementations(); len(got) != 2 || got[0] != "bird" || got[1] != "frr" {
		t.Errorf("Implementations = %v", got)
	}

	hetero := Demo27Hetero()
	if !hetero.Heterogeneous() || hetero.ImplementationCounts()["frr"] != 15 {
		t.Errorf("Demo27Hetero counts = %v", hetero.ImplementationCounts())
	}
	if err := hetero.Validate(); err != nil {
		t.Errorf("Demo27Hetero invalid: %v", err)
	}
}
