// Package topology builds the router-level topologies used by the DiCE
// experiments: the 27-router demo topology from the paper's Figure 1, random
// Internet-like topologies with Gao–Rexford business relationships
// (customer–provider and peer–peer), and small regular shapes (line, ring,
// clique, star) used by unit tests.
//
// A topology only describes structure (nodes, autonomous systems, originated
// prefixes, links, relationships, and link quality). The bird package turns a
// topology into configured router instances and the netem package runs them.
package topology

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/node"
)

// Relation is the business relationship of a link, following the Gao–Rexford
// model.
type Relation int

// Link relationships. For RelCustomer the A endpoint is the customer and the
// B endpoint is the provider.
const (
	RelCustomer Relation = iota
	RelPeer
)

// String renders the relation.
func (r Relation) String() string {
	if r == RelPeer {
		return "peer"
	}
	return "customer-provider"
}

// Node is one router / autonomous system in the topology. The experiments use
// one router per AS, as the paper's demo does.
type Node struct {
	Name     string
	AS       bgp.ASN
	RouterID bgp.RouterID
	// Tier is 1 for the core, growing toward the edge; 0 when tiers do not
	// apply (regular test shapes).
	Tier int
	// Prefixes are the prefixes this AS legitimately originates. The
	// ownership registry used by the hijack checker is derived from them.
	Prefixes []bgp.Prefix
	// Impl names the router implementation (backend) deployed on this node;
	// empty selects the default backend. The topology layer treats the tag
	// as an opaque string — the cluster layer resolves it against the node
	// backend registry when routers are built.
	Impl string
}

// Link is an adjacency between two nodes.
type Link struct {
	A, B string
	Rel  Relation
	// Link quality parameters ("Internet-like conditions").
	Delay  time.Duration
	Jitter time.Duration
	Loss   float64
}

// Topology is a named set of nodes and links.
type Topology struct {
	Name  string
	Nodes []Node
	Links []Link
}

// Node returns the node with the given name, or nil.
func (t *Topology) Node(name string) *Node {
	for i := range t.Nodes {
		if t.Nodes[i].Name == name {
			return &t.Nodes[i]
		}
	}
	return nil
}

// NodeNames returns the names of all nodes in definition order.
func (t *Topology) NodeNames() []string {
	out := make([]string, len(t.Nodes))
	for i, n := range t.Nodes {
		out[i] = n.Name
	}
	return out
}

// NeighborsOf returns the names of nodes adjacent to the named node.
func (t *Topology) NeighborsOf(name string) []string {
	var out []string
	for _, l := range t.Links {
		switch name {
		case l.A:
			out = append(out, l.B)
		case l.B:
			out = append(out, l.A)
		}
	}
	return out
}

// BestConnected returns the router with the most neighbors among names (all
// nodes when names is empty), equal-degree ties broken by lexicographically
// smallest name. Degree counts every neighbor, including ones outside the
// candidate set. Campaign strategies and the live scenario registry share
// this one rule, so scenario targeting stays aligned with campaign planning.
func (t *Topology) BestConnected(names ...string) string {
	if len(names) == 0 {
		names = t.NodeNames()
	}
	best, bestDeg := "", -1
	for _, name := range names {
		deg := len(t.NeighborsOf(name))
		if deg > bestDeg || (deg == bestDeg && name < best) {
			best, bestDeg = name, deg
		}
	}
	return best
}

// LinksOf returns the links incident to the named node.
func (t *Topology) LinksOf(name string) []Link {
	var out []Link
	for _, l := range t.Links {
		if l.A == name || l.B == name {
			out = append(out, l)
		}
	}
	return out
}

// Owner returns the name and AS of the node that legitimately originates the
// prefix, or false when no node owns it.
func (t *Topology) Owner(p bgp.Prefix) (string, bgp.ASN, bool) {
	for _, n := range t.Nodes {
		for _, own := range n.Prefixes {
			if own == p {
				return n.Name, n.AS, true
			}
		}
	}
	return "", 0, false
}

// Validate checks structural consistency: unique names, unique ASes, links
// referencing known nodes, no self links, and loss probabilities in range.
func (t *Topology) Validate() error {
	names := make(map[string]bool)
	ases := make(map[bgp.ASN]bool)
	for _, n := range t.Nodes {
		if n.Name == "" {
			return fmt.Errorf("topology %s: node with empty name", t.Name)
		}
		if names[n.Name] {
			return fmt.Errorf("topology %s: duplicate node name %q", t.Name, n.Name)
		}
		names[n.Name] = true
		if n.AS == 0 {
			return fmt.Errorf("topology %s: node %s has AS 0", t.Name, n.Name)
		}
		if ases[n.AS] {
			return fmt.Errorf("topology %s: duplicate AS %d", t.Name, n.AS)
		}
		ases[n.AS] = true
		if n.RouterID == 0 {
			return fmt.Errorf("topology %s: node %s has zero router ID", t.Name, n.Name)
		}
	}
	seenLink := make(map[string]bool)
	for _, l := range t.Links {
		if l.A == l.B {
			return fmt.Errorf("topology %s: self link on %s", t.Name, l.A)
		}
		if !names[l.A] || !names[l.B] {
			return fmt.Errorf("topology %s: link %s-%s references unknown node", t.Name, l.A, l.B)
		}
		key := l.A + "|" + l.B
		if l.B < l.A {
			key = l.B + "|" + l.A
		}
		if seenLink[key] {
			return fmt.Errorf("topology %s: duplicate link %s-%s", t.Name, l.A, l.B)
		}
		seenLink[key] = true
		if l.Loss < 0 || l.Loss >= 1 {
			return fmt.Errorf("topology %s: link %s-%s loss %.2f out of range", t.Name, l.A, l.B, l.Loss)
		}
	}
	return nil
}

// Induced returns the subgraph induced by the given node set: the named
// nodes plus every link whose two endpoints are both in the set. Unknown
// names are ignored; node order follows the parent topology, so induced
// subgraphs are deterministic regardless of the order names are given in.
// The federation layer uses induced subgraphs as per-domain views.
func (t *Topology) Induced(name string, nodes []string) *Topology {
	want := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		want[n] = true
	}
	sub := &Topology{Name: name}
	for _, n := range t.Nodes {
		if want[n.Name] {
			sub.Nodes = append(sub.Nodes, n)
		}
	}
	for _, l := range t.Links {
		if want[l.A] && want[l.B] {
			sub.Links = append(sub.Links, l)
		}
	}
	return sub
}

// SetImpl tags the named nodes with a router implementation. With no names,
// every node is tagged. Unknown names are ignored; the receiver is returned
// for chaining.
func (t *Topology) SetImpl(impl string, names ...string) *Topology {
	if len(names) == 0 {
		for i := range t.Nodes {
			t.Nodes[i].Impl = impl
		}
		return t
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	for i := range t.Nodes {
		if want[t.Nodes[i].Name] {
			t.Nodes[i].Impl = impl
		}
	}
	return t
}

// Implementations returns the distinct implementations deployed in the
// topology, sorted. The empty tag is normalized to the default backend, so
// tagging a node with the default's name explicitly does not make an
// otherwise-uniform topology look mixed.
func (t *Topology) Implementations() []string {
	counts := t.ImplementationCounts()
	out := make([]string, 0, len(counts))
	for impl := range counts {
		out = append(out, impl)
	}
	sort.Strings(out)
	return out
}

// ImplementationCounts returns how many nodes run each implementation, with
// the empty (default) tag normalized to the default backend's name.
func (t *Topology) ImplementationCounts() map[string]int {
	counts := make(map[string]int)
	for _, n := range t.Nodes {
		impl := n.Impl
		if impl == "" {
			impl = node.DefaultImplementation
		}
		counts[impl]++
	}
	return counts
}

// Heterogeneous reports whether the topology mixes more than one router
// implementation.
func (t *Topology) Heterogeneous() bool { return len(t.Implementations()) > 1 }

// Connected reports whether the topology graph is connected (ignoring link
// direction and relationships).
func (t *Topology) Connected() bool {
	if len(t.Nodes) == 0 {
		return true
	}
	adj := make(map[string][]string)
	for _, l := range t.Links {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	seen := map[string]bool{t.Nodes[0].Name: true}
	stack := []string{t.Nodes[0].Name}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[cur] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return len(seen) == len(t.Nodes)
}

// nodeSpec builds a Node with the conventional naming and addressing scheme:
// router i is named "Ri", uses AS 65000+i, router ID i, and originates
// 10.i.0.0/16.
func nodeSpec(i, tier int) Node {
	return Node{
		Name:     fmt.Sprintf("R%d", i),
		AS:       bgp.ASN(65000 + i),
		RouterID: bgp.RouterID(i),
		Tier:     tier,
		Prefixes: []bgp.Prefix{{Addr: uint32(10)<<24 | uint32(i)<<16, Len: 16}},
	}
}

// Demo27 builds the 27-router, three-tier topology used in the paper's demo
// (Figure 1): 3 tier-1 routers in a full mesh of peer links, 9 tier-2
// routers each multi-homed to two tier-1 providers and peering with one
// tier-2 sibling, and 15 tier-3 stub routers each dual-homed to tier-2
// providers. Link delays follow typical intra/inter-provider latencies.
func Demo27() *Topology {
	t := &Topology{Name: "demo27"}
	const (
		tier1Count = 3
		tier2Count = 9
		tier3Count = 15
	)
	id := 1
	var tier1, tier2, tier3 []string
	for i := 0; i < tier1Count; i++ {
		n := nodeSpec(id, 1)
		t.Nodes = append(t.Nodes, n)
		tier1 = append(tier1, n.Name)
		id++
	}
	for i := 0; i < tier2Count; i++ {
		n := nodeSpec(id, 2)
		t.Nodes = append(t.Nodes, n)
		tier2 = append(tier2, n.Name)
		id++
	}
	for i := 0; i < tier3Count; i++ {
		n := nodeSpec(id, 3)
		t.Nodes = append(t.Nodes, n)
		tier3 = append(tier3, n.Name)
		id++
	}

	// Tier-1 full mesh of peer links (long-haul latencies).
	for i := 0; i < len(tier1); i++ {
		for j := i + 1; j < len(tier1); j++ {
			t.Links = append(t.Links, Link{
				A: tier1[i], B: tier1[j], Rel: RelPeer,
				Delay: 40 * time.Millisecond, Jitter: 10 * time.Millisecond,
			})
		}
	}
	// Each tier-2 router is a customer of two tier-1 providers.
	for i, name := range tier2 {
		p1 := tier1[i%len(tier1)]
		p2 := tier1[(i+1)%len(tier1)]
		t.Links = append(t.Links,
			Link{A: name, B: p1, Rel: RelCustomer, Delay: 20 * time.Millisecond, Jitter: 5 * time.Millisecond},
			Link{A: name, B: p2, Rel: RelCustomer, Delay: 25 * time.Millisecond, Jitter: 5 * time.Millisecond},
		)
	}
	// Tier-2 lateral peerings: pair consecutive tier-2 routers.
	for i := 0; i+1 < len(tier2); i += 2 {
		t.Links = append(t.Links, Link{
			A: tier2[i], B: tier2[i+1], Rel: RelPeer,
			Delay: 15 * time.Millisecond, Jitter: 3 * time.Millisecond,
		})
	}
	// Each tier-3 stub is a customer of two tier-2 providers.
	for i, name := range tier3 {
		p1 := tier2[i%len(tier2)]
		p2 := tier2[(i+4)%len(tier2)]
		t.Links = append(t.Links,
			Link{A: name, B: p1, Rel: RelCustomer, Delay: 8 * time.Millisecond, Jitter: 2 * time.Millisecond},
			Link{A: name, B: p2, Rel: RelCustomer, Delay: 12 * time.Millisecond, Jitter: 2 * time.Millisecond},
		)
	}
	return t
}

// Demo27Hetero is the mixed-implementation variant of the paper's demo: the
// same 27 routers and links, with every tier-3 stub running the "frr"
// backend while the transit tiers stay on the default "bird" backend. The
// heterogeneity is confined to the edge, so safety detections match the
// homogeneous demo while the stubs' dual-homed candidate sets expose the
// backends' different-but-legal decision tie-breaking (experiment E11).
func Demo27Hetero() *Topology {
	t := Demo27()
	t.Name = "demo27-hetero"
	var stubs []string
	for _, n := range t.Nodes {
		if n.Tier == 3 {
			stubs = append(stubs, n.Name)
		}
	}
	return t.SetImpl("frr", stubs...)
}

// Demo27Hetero3 is the three-way mixed variant of the paper's demo: the same
// 27 routers and links with the tier-1 core on "bird", every tier-2 transit
// on "obgpd" and every tier-3 stub on "frr". All three decision policies are
// deployed at once, so the differential conformance oracle sees the full
// vote: disagreements classify as majority-outvoted (2-vs-1) or
// pairwise-legal (three-way) instead of mere pairwise difference
// (experiment E14).
func Demo27Hetero3() *Topology {
	t := Demo27()
	t.Name = "demo27-hetero3"
	var transits, stubs []string
	for _, n := range t.Nodes {
		switch n.Tier {
		case 2:
			transits = append(transits, n.Name)
		case 3:
			stubs = append(stubs, n.Name)
		}
	}
	return t.SetImpl("obgpd", transits...).SetImpl("frr", stubs...)
}

// GaoRexford builds a random three-tier Internet-like topology with the given
// tier sizes. Tier-1 routers form a full peer mesh; every lower-tier router
// picks one or two providers from the tier above; some same-tier pairs peer.
// The construction is deterministic for a given seed.
func GaoRexford(tier1, tier2, tier3 int, seed int64) *Topology {
	if tier1 < 1 {
		tier1 = 1
	}
	rng := rand.New(rand.NewSource(seed))
	t := &Topology{Name: fmt.Sprintf("gao-rexford-%d-%d-%d", tier1, tier2, tier3)}
	id := 1
	var names [4][]string
	addTier := func(count, tier int) {
		for i := 0; i < count; i++ {
			n := nodeSpec(id, tier)
			t.Nodes = append(t.Nodes, n)
			names[tier] = append(names[tier], n.Name)
			id++
		}
	}
	addTier(tier1, 1)
	addTier(tier2, 2)
	addTier(tier3, 3)

	for i := 0; i < len(names[1]); i++ {
		for j := i + 1; j < len(names[1]); j++ {
			t.Links = append(t.Links, Link{
				A: names[1][i], B: names[1][j], Rel: RelPeer,
				Delay:  time.Duration(30+rng.Intn(30)) * time.Millisecond,
				Jitter: 5 * time.Millisecond,
			})
		}
	}
	connectTier := func(lower, upper int, baseDelay int) {
		for _, name := range names[lower] {
			providers := rng.Perm(len(names[upper]))
			count := 1
			if len(names[upper]) > 1 && rng.Float64() < 0.7 {
				count = 2
			}
			for k := 0; k < count; k++ {
				t.Links = append(t.Links, Link{
					A: name, B: names[upper][providers[k]], Rel: RelCustomer,
					Delay:  time.Duration(baseDelay+rng.Intn(baseDelay)) * time.Millisecond,
					Jitter: time.Duration(1+rng.Intn(4)) * time.Millisecond,
				})
			}
		}
	}
	if tier2 > 0 {
		connectTier(2, 1, 15)
	}
	if tier3 > 0 {
		upper := 2
		if tier2 == 0 {
			upper = 1
		}
		connectTier(3, upper, 6)
	}
	// Same-tier peerings in tier 2.
	for i := 0; i+1 < len(names[2]); i += 2 {
		if rng.Float64() < 0.6 {
			t.Links = append(t.Links, Link{
				A: names[2][i], B: names[2][i+1], Rel: RelPeer,
				Delay: time.Duration(8+rng.Intn(10)) * time.Millisecond,
			})
		}
	}
	return t
}

// Line builds a chain R1-R2-...-Rn of customer-provider links (R1 is the
// bottom customer).
func Line(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("line-%d", n)}
	for i := 1; i <= n; i++ {
		t.Nodes = append(t.Nodes, nodeSpec(i, 0))
	}
	for i := 1; i < n; i++ {
		t.Links = append(t.Links, Link{
			A: fmt.Sprintf("R%d", i), B: fmt.Sprintf("R%d", i+1),
			Rel: RelCustomer, Delay: 10 * time.Millisecond,
		})
	}
	return t
}

// Ring builds a cycle of n routers with peer links, the classic substrate for
// policy-dispute (BGP wedgie) scenarios.
func Ring(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("ring-%d", n)}
	for i := 1; i <= n; i++ {
		t.Nodes = append(t.Nodes, nodeSpec(i, 0))
	}
	for i := 1; i <= n; i++ {
		next := i%n + 1
		t.Links = append(t.Links, Link{
			A: fmt.Sprintf("R%d", i), B: fmt.Sprintf("R%d", next),
			Rel: RelPeer, Delay: 10 * time.Millisecond,
		})
	}
	return t
}

// Clique builds a full mesh of n routers with peer links.
func Clique(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("clique-%d", n)}
	for i := 1; i <= n; i++ {
		t.Nodes = append(t.Nodes, nodeSpec(i, 0))
	}
	for i := 1; i <= n; i++ {
		for j := i + 1; j <= n; j++ {
			t.Links = append(t.Links, Link{
				A: fmt.Sprintf("R%d", i), B: fmt.Sprintf("R%d", j),
				Rel: RelPeer, Delay: 10 * time.Millisecond,
			})
		}
	}
	return t
}

// Star builds a hub-and-spoke topology: R1 is the provider of R2..Rn.
func Star(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("star-%d", n)}
	for i := 1; i <= n; i++ {
		t.Nodes = append(t.Nodes, nodeSpec(i, 0))
	}
	for i := 2; i <= n; i++ {
		t.Links = append(t.Links, Link{
			A: fmt.Sprintf("R%d", i), B: "R1",
			Rel: RelCustomer, Delay: 10 * time.Millisecond,
		})
	}
	return t
}
