package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// TestExpositionDeterministic is the satellite-mandated determinism suite:
// a fixed registry state must render to byte-identical exposition on every
// scrape — 32 consecutive scrapes compared byte for byte.
func TestExpositionDeterministic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dice_test_ops_total", "ops")
	c.Add(41)
	c.Inc()
	g := r.Gauge("dice_test_depth", "queue depth")
	g.Set(7.25)
	h := r.Histogram("dice_test_pause_seconds", "pauses", nil)
	h.Observe(0.0004)
	h.Observe(0.02)
	h.Observe(99)
	r.GaugeVecFunc("dice_test_weight", "per-scenario weight", "scenario", func() map[string]float64 {
		return map[string]float64{"link-flap": 1.5, "withdraw": 2, "aspath": 0.25}
	})
	r.CounterFunc("dice_test_reads_total", "reads", func() float64 { return 12 })

	first := r.Expose()
	if len(first) == 0 {
		t.Fatal("empty exposition")
	}
	for i := 0; i < 31; i++ {
		if got := r.Expose(); !bytes.Equal(got, first) {
			t.Fatalf("scrape %d differs from first:\n%s\n---\n%s", i+2, got, first)
		}
	}
}

func TestExpositionContent(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(3)
	r.Gauge("a_depth", "first").Set(-1.5)
	r.GaugeVecFunc("c_vec", "labeled", "domain", func() map[string]float64 {
		return map[string]float64{"zulu": 1, "alpha": 2}
	})
	got := string(r.Expose())
	want := strings.Join([]string{
		"# HELP a_depth first",
		"# TYPE a_depth gauge",
		"a_depth -1.5",
		"# HELP b_total second",
		"# TYPE b_total counter",
		"b_total 3",
		"# HELP c_vec labeled",
		"# TYPE c_vec gauge",
		`c_vec{domain="alpha"} 2`,
		`c_vec{domain="zulu"} 1`,
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestDuplicateNamePanics pins the contract that a name collision is a
// programming error caught at registration.
func TestDuplicateNamePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate name")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestInvalidNamePanics(t *testing.T) {
	for _, bad := range []string{"", "9leading", "has-dash", "sp ace", "uni·code"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic on name %q", bad)
				}
			}()
			NewRegistry().Counter(bad, "")
		}()
	}
	// Colons are legal in metric names but not label names.
	NewRegistry().Counter("ns:ok_total", "")
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on label name with colon")
			}
		}()
		NewRegistry().GaugeVecFunc("ok", "", "bad:label", nil)
	}()
}

// TestDefaultBucketsPinned pins the default histogram boundaries: changing
// them silently re-bins every dashboard.
func TestDefaultBucketsPinned(t *testing.T) {
	want := []float64{1e-5, 1e-4, 1e-3, 5e-3, 2.5e-2, 1e-1, 5e-1, 1, 5, 30}
	r := NewRegistry()
	h := r.Histogram("pin_seconds", "", nil)
	got := h.Buckets()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	h.Observe(0.05) // bucket 0.1
	h.Observe(0.5)  // bucket 1
	h.Observe(0.7)  // bucket 1
	h.Observe(100)  // +Inf only
	got := string(r.Expose())
	want := strings.Join([]string{
		"# HELP lat_seconds latency",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 101.25",
		"lat_seconds_count 4",
		"",
	}, "\n")
	if got != want {
		t.Fatalf("histogram exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if h.Count() != 4 || h.Sum() != 101.25 {
		t.Fatalf("count/sum = %d/%v", h.Count(), h.Sum())
	}
}

func TestHistogramBadBucketsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-increasing buckets")
		}
	}()
	NewRegistry().Histogram("bad_seconds", "", []float64{1, 1})
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mono_total", "")
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %v, want 5", c.Value())
	}
	g := r.Gauge("swing", "")
	g.Add(5)
	g.Add(-3)
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.GaugeVecFunc("esc", "", "k", func() map[string]float64 {
		return map[string]float64{"a\"b\\c\nd": 1}
	})
	got := string(r.Expose())
	if !strings.Contains(got, `esc{k="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", got)
	}
}

func TestWritePrometheusAndNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	r.Counter("a_total", "")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), r.Expose()) {
		t.Fatal("WritePrometheus differs from Expose")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a_total" || names[1] != "z_total" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestFloatFormatting(t *testing.T) {
	// One shortest-round-trip formatter: integers render without exponent
	// noise, and special values stay parseable.
	cases := map[float64]string{
		0:           "0",
		3:           "3",
		2.5:         "2.5",
		1e-5:        "1e-05",
		math.Inf(1): "+Inf",
	}
	for v, want := range cases {
		got := formatFloat(v)
		if v == math.Inf(1) {
			if got != "+Inf" {
				t.Fatalf("formatFloat(+Inf) = %q", got)
			}
			continue
		}
		if got != want {
			t.Fatalf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
