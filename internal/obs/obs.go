// Package obs is the observability core of the long-running DiCE runtimes:
// a stdlib-only metrics registry with named counters, gauges and histograms,
// exposed in Prometheus text format, plus lightweight span tracing
// (epoch → campaign → unit → clone input) fed by the existing campaign
// event streams.
//
// The registry is deliberately deterministic: exposition walks families in
// sorted name order and vector samples in sorted label order, values format
// through one shortest-round-trip float renderer, and nothing in the package
// reads a wall clock — identical internal state always renders to identical
// bytes. That property is what makes /metrics diffable in tests and lets the
// soak smoke assert byte-stable expositions across scrapes; dice-vet's
// detsource analyzer keeps the package honest.
//
// Metrics for the hot subsystems (clone pool, checkpoint ring, federation
// bus, control plane) are registered as *Func collectors reading the
// subsystems' existing stats snapshots at exposition time, so instrumenting
// them adds no locks or atomics to their hot paths.
//
//dice:deterministic
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Kind discriminates metric families.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String renders the kind as its Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// DefBuckets are the default histogram boundaries, in seconds — tuned for
// the runtime's two natural scales: checkpoint pauses (microseconds to tens
// of milliseconds) and campaign/exposition work (milliseconds to seconds).
// The boundaries are pinned by test; changing them is a dashboard-visible
// schema change.
var DefBuckets = []float64{1e-5, 1e-4, 1e-3, 5e-3, 2.5e-2, 1e-1, 5e-1, 1, 5, 30}

// family is one named metric: a static instrument or a collector callback.
type family struct {
	name, help string
	kind       Kind
	label      string // label name for vector families, "" for scalars

	// Exactly one of the following sources is set.
	sample *sample                   // static scalar instrument
	hist   *histogram                // static histogram instrument
	fn     func() float64            // scalar collector
	vecFn  func() map[string]float64 // vector collector
}

// sample is a static scalar value shared by Counter and Gauge handles.
type sample struct {
	mu sync.Mutex
	v  float64
}

// Counter is a monotonically increasing static metric.
type Counter struct{ s *sample }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotone by contract).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	c.s.mu.Lock()
	c.s.v += delta
	c.s.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.s.mu.Lock()
	defer c.s.mu.Unlock()
	return c.s.v
}

// Gauge is a static metric that can move both ways.
type Gauge struct{ s *sample }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.s.mu.Lock()
	g.s.v = v
	g.s.mu.Unlock()
}

// Add adjusts the value by delta (negative deltas allowed).
func (g *Gauge) Add(delta float64) {
	g.s.mu.Lock()
	g.s.v += delta
	g.s.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.s.mu.Lock()
	defer g.s.mu.Unlock()
	return g.s.v
}

// histogram is the static histogram state: cumulative-on-render bucket
// counts, total sum and observation count.
type histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, sorted, +Inf implicit
	counts  []uint64  // per-bucket (non-cumulative) observation counts
	sum     float64
	count   uint64
}

// Histogram is a static distribution metric with fixed bucket boundaries.
type Histogram struct{ h *histogram }

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.h.mu.Lock()
	defer h.h.mu.Unlock()
	idx := len(h.h.buckets)
	for i, ub := range h.h.buckets {
		if v <= ub {
			idx = i
			break
		}
	}
	if idx < len(h.h.counts) {
		h.h.counts[idx]++
	}
	h.h.sum += v
	h.h.count++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.h.mu.Lock()
	defer h.h.mu.Unlock()
	return h.h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.h.mu.Lock()
	defer h.h.mu.Unlock()
	return h.h.sum
}

// Buckets returns a copy of the bucket upper bounds.
func (h *Histogram) Buckets() []float64 {
	return append([]float64(nil), h.h.buckets...)
}

// Registry holds metric families and renders them as Prometheus text
// exposition. Registration panics on duplicate or malformed names (a metric
// name collision is a programming error, not a runtime condition); scraping
// is safe for concurrent use with instrument updates.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register validates and stores a family, panicking on duplicates.
func (r *Registry) register(f *family) {
	if !validName(f.name, true) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	if f.label != "" && !validName(f.label, false) {
		panic(fmt.Sprintf("obs: invalid label name %q on metric %q", f.label, f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric %q", f.name))
	}
	// A histogram's exposition owns the name_bucket/name_sum/name_count
	// series; collisions with other families' base names are caught by the
	// base-name check because every registration goes through it.
	r.families[f.name] = f
}

// validName reports whether s is a legal metric (colons allowed) or label
// name.
func validName(s string, allowColon bool) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c == ':' && allowColon:
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns a static counter.
func (r *Registry) Counter(name, help string) *Counter {
	s := &sample{}
	r.register(&family{name: name, help: help, kind: KindCounter, sample: s})
	return &Counter{s: s}
}

// Gauge registers and returns a static gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	s := &sample{}
	r.register(&family{name: name, help: help, kind: KindGauge, sample: s})
	return &Gauge{s: s}
}

// Histogram registers and returns a static histogram. Nil or empty buckets
// select DefBuckets; boundaries must be strictly increasing.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", name))
		}
	}
	h := &histogram{
		buckets: append([]float64(nil), buckets...),
		counts:  make([]uint64, len(buckets)),
	}
	r.register(&family{name: name, help: help, kind: KindHistogram, hist: h})
	return &Histogram{h: h}
}

// CounterFunc registers a counter whose value is read from fn at exposition
// time — the no-new-locks way to expose an existing cumulative stat.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: KindCounter, fn: fn})
}

// GaugeFunc registers a gauge read from fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: KindGauge, fn: fn})
}

// CounterVecFunc registers a labeled counter family read from fn at
// exposition time; fn maps label values to counts. Samples render in sorted
// label order.
func (r *Registry) CounterVecFunc(name, help, label string, fn func() map[string]float64) {
	r.register(&family{name: name, help: help, kind: KindCounter, label: label, vecFn: fn})
}

// GaugeVecFunc registers a labeled gauge family read from fn at exposition
// time.
func (r *Registry) GaugeVecFunc(name, help, label string, fn func() map[string]float64) {
	r.register(&family{name: name, help: help, kind: KindGauge, label: label, vecFn: fn})
}

// Names returns the registered family names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Expose renders the whole registry as Prometheus text exposition format.
// The output is byte-deterministic for identical registry state: families
// in sorted name order, vector samples in sorted label order.
func (r *Registry) Expose() []byte {
	var b strings.Builder
	r.write(&b)
	return []byte(b.String())
}

// WritePrometheus writes the exposition to w.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	r.write(&b)
	_, err := io.WriteString(w, b.String())
	return err
}

func (r *Registry) write(b *strings.Builder) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
		switch {
		case f.sample != nil:
			f.sample.mu.Lock()
			v := f.sample.v
			f.sample.mu.Unlock()
			writeSample(b, f.name, "", "", v)
		case f.fn != nil:
			writeSample(b, f.name, "", "", f.fn())
		case f.vecFn != nil:
			vals := f.vecFn()
			keys := make([]string, 0, len(vals))
			for k := range vals {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				writeSample(b, f.name, f.label, k, vals[k])
			}
		case f.hist != nil:
			writeHistogram(b, f)
		}
	}
}

// writeSample renders one sample line, with an optional single label.
func writeSample(b *strings.Builder, name, label, labelValue string, v float64) {
	b.WriteString(name)
	if label != "" {
		b.WriteString(`{`)
		b.WriteString(label)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labelValue))
		b.WriteString(`"}`)
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// writeHistogram renders the cumulative _bucket/_sum/_count series.
func writeHistogram(b *strings.Builder, f *family) {
	f.hist.mu.Lock()
	buckets := append([]float64(nil), f.hist.buckets...)
	counts := append([]uint64(nil), f.hist.counts...)
	sum, count := f.hist.sum, f.hist.count
	f.hist.mu.Unlock()

	cum := uint64(0)
	for i, ub := range buckets {
		cum += counts[i]
		fmt.Fprintf(b, "%s_bucket{le=\"%s\"} %d\n", f.name, formatFloat(ub), cum)
	}
	fmt.Fprintf(b, "%s_bucket{le=\"+Inf\"} %d\n", f.name, count)
	fmt.Fprintf(b, "%s_sum %s\n", f.name, formatFloat(sum))
	fmt.Fprintf(b, "%s_count %d\n", f.name, count)
}

// formatFloat renders a value in the shortest round-trip form — one
// formatter for every value keeps the exposition byte-stable.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a help string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
