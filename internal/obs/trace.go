package obs

import (
	"sort"
	"sync"
	"time"
)

// SpanKind names the level of the soak trace hierarchy a span belongs to:
// epoch → campaign → unit → input.
type SpanKind string

// The span kinds emitted by the instrumented runtimes.
const (
	SpanEpoch    SpanKind = "epoch"
	SpanCampaign SpanKind = "campaign"
	SpanUnit     SpanKind = "unit"
	SpanInput    SpanKind = "input"
)

// Span is one timed region of soak work. Parent links spans into the
// epoch → campaign → unit → input tree; a zero Parent marks a root.
type Span struct {
	ID     uint64
	Parent uint64
	Kind   SpanKind
	Name   string
	Start  time.Time
	End    time.Time
}

// Elapsed returns the span duration (zero while still active).
func (s Span) Elapsed() time.Duration {
	if s.End.IsZero() {
		return 0
	}
	return s.End.Sub(s.Start)
}

// Tracer collects spans into a bounded ring of finished spans. Time is read
// through an injectable clock (defaulting to the wall clock) so tests drive
// it deterministically; the hot path never reads time itself — callers stamp
// spans from timings they already measured.
//
// Tracer is safe for concurrent use.
type Tracer struct {
	mu       sync.Mutex
	clock    func() time.Time
	nextID   uint64
	active   map[uint64]Span
	finished []Span // ring, capacity cap
	next     int    // ring write cursor
	full     bool
	capacity int
	counts   map[SpanKind]uint64
}

// NewTracer returns a tracer retaining up to capacity finished spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		clock:    time.Now,
		active:   make(map[uint64]Span),
		finished: make([]Span, capacity),
		capacity: capacity,
		counts:   make(map[SpanKind]uint64),
	}
}

// SetClock replaces the time source; tests inject a deterministic clock.
func (t *Tracer) SetClock(clock func() time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if clock != nil {
		t.clock = clock
	}
}

// Begin opens a span and returns its ID. Parent may be zero for a root span.
func (t *Tracer) Begin(kind SpanKind, name string, parent uint64) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	t.active[id] = Span{ID: id, Parent: parent, Kind: kind, Name: name, Start: t.clock()}
	return id
}

// End closes an active span, moving it into the finished ring. Unknown IDs
// are ignored (the span may have been evicted by a Reset).
func (t *Tracer) End(id uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sp, ok := t.active[id]
	if !ok {
		return
	}
	delete(t.active, id)
	sp.End = t.clock()
	t.push(sp)
}

// Record adds an already-timed span retroactively — the path used when a
// subsystem reports a completed region (an epoch's checkpoint pause, a
// detection's input replay) with timings it measured itself. Returns the
// span's ID for use as a parent.
func (t *Tracer) Record(kind SpanKind, name string, parent uint64, start, end time.Time) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	id := t.nextID
	t.push(Span{ID: id, Parent: parent, Kind: kind, Name: name, Start: start, End: end})
	return id
}

// push appends to the finished ring; caller holds mu.
func (t *Tracer) push(sp Span) {
	t.finished[t.next] = sp
	t.next++
	if t.next == t.capacity {
		t.next = 0
		t.full = true
	}
	t.counts[sp.Kind]++
}

// Snapshot returns the retained finished spans in completion order.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Span
	if t.full {
		out = append(out, t.finished[t.next:]...)
		out = append(out, t.finished[:t.next]...)
	} else {
		out = append(out, t.finished[:t.next]...)
	}
	return out
}

// Active returns the currently open spans, ordered by ID.
func (t *Tracer) Active() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.active))
	for _, sp := range t.active {
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Counts returns the total number of finished spans per kind (including
// spans evicted from the ring).
func (t *Tracer) Counts() map[SpanKind]uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[SpanKind]uint64, len(t.counts))
	for k, v := range t.counts {
		out[k] = v
	}
	return out
}
