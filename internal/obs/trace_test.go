package obs

import (
	"testing"
	"time"
)

// fakeClock is a deterministic time source stepping 1ms per read.
func fakeClock() func() time.Time {
	t0 := time.Unix(1700000000, 0).UTC()
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * time.Millisecond)
	}
}

func TestTracerBeginEnd(t *testing.T) {
	tr := NewTracer(8)
	tr.SetClock(fakeClock())
	epoch := tr.Begin(SpanEpoch, "epoch-1", 0)
	camp := tr.Begin(SpanCampaign, "link-flap", epoch)
	if got := len(tr.Active()); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
	tr.End(camp)
	tr.End(epoch)
	if got := len(tr.Active()); got != 0 {
		t.Fatalf("active after end = %d, want 0", got)
	}
	spans := tr.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("finished = %d, want 2", len(spans))
	}
	// Completion order: campaign ended first.
	if spans[0].Kind != SpanCampaign || spans[1].Kind != SpanEpoch {
		t.Fatalf("order = %v, %v", spans[0].Kind, spans[1].Kind)
	}
	if spans[0].Parent != epoch {
		t.Fatalf("campaign parent = %d, want %d", spans[0].Parent, epoch)
	}
	if spans[0].Elapsed() <= 0 {
		t.Fatal("elapsed should be positive")
	}
}

func TestTracerRecordRetroactive(t *testing.T) {
	tr := NewTracer(4)
	start := time.Unix(1700000000, 0).UTC()
	id := tr.Record(SpanEpoch, "epoch-3", 0, start, start.Add(2*time.Second))
	if id == 0 {
		t.Fatal("zero span ID")
	}
	spans := tr.Snapshot()
	if len(spans) != 1 || spans[0].Elapsed() != 2*time.Second {
		t.Fatalf("spans = %+v", spans)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(3)
	start := time.Unix(1700000000, 0).UTC()
	for i := 0; i < 5; i++ {
		tr.Record(SpanUnit, "u", 0, start, start.Add(time.Duration(i+1)*time.Millisecond))
	}
	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("retained = %d, want 3", len(spans))
	}
	// Oldest two evicted: IDs 3,4,5 remain in completion order.
	for i, sp := range spans {
		if want := uint64(i + 3); sp.ID != want {
			t.Fatalf("span[%d].ID = %d, want %d", i, sp.ID, want)
		}
	}
	// Counts include evicted spans.
	if got := tr.Counts()[SpanUnit]; got != 5 {
		t.Fatalf("counts[unit] = %d, want 5", got)
	}
}

func TestTracerEndUnknownIgnored(t *testing.T) {
	tr := NewTracer(2)
	tr.End(99)
	if len(tr.Snapshot()) != 0 {
		t.Fatal("unexpected finished span")
	}
}
