package bird

import (
	"testing"
	"time"

	"github.com/dice-project/dice/internal/bgp"
	"github.com/dice-project/dice/internal/bgp/policy"
	"github.com/dice-project/dice/internal/netem"
)

// TestRoutersConvergeOverTCP runs two emulated routers over real loopback TCP
// connections (the netem TCPRunner) instead of the virtual-time emulator,
// exercising the same Node implementation over a heterogeneous transport —
// sessions must establish and routes must be exchanged using real sockets,
// real framing and real timers.
func TestRoutersConvergeOverTCP(t *testing.T) {
	mk := func(name string, as bgp.ASN, id bgp.RouterID, peer string, peerAS bgp.ASN, prefix string) *Router {
		return MustNew(&Config{
			Name:              name,
			AS:                as,
			RouterID:          id,
			Networks:          []bgp.Prefix{bgp.MustParsePrefix(prefix)},
			KeepaliveInterval: 200 * time.Millisecond,
			ConnectRetry:      300 * time.Millisecond,
			Neighbors:         []NeighborConfig{{Name: peer, AS: peerAS, Import: "ALL", Export: "ALL"}},
			Policies:          map[string]*policy.Policy{"ALL": policy.AcceptAll("ALL")},
		})
	}
	r1 := mk("A", 65001, 1, "B", 65002, "10.1.0.0/16")
	r2 := mk("B", 65002, 2, "A", 65001, "10.2.0.0/16")

	runner := netem.NewTCPRunner()
	runner.AddNode(r1)
	runner.AddNode(r2)
	runner.Connect("A", "B")
	if err := runner.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer runner.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if r1.LocRIB().Best(bgp.MustParsePrefix("10.2.0.0/16")) != nil &&
			r2.LocRIB().Best(bgp.MustParsePrefix("10.1.0.0/16")) != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if r1.SessionState("B") != StateEstablished || r2.SessionState("A") != StateEstablished {
		t.Fatalf("sessions did not establish over TCP: %v / %v", r1.SessionState("B"), r2.SessionState("A"))
	}
	if r1.LocRIB().Best(bgp.MustParsePrefix("10.2.0.0/16")) == nil {
		t.Errorf("A did not learn B's prefix over TCP")
	}
	if r2.LocRIB().Best(bgp.MustParsePrefix("10.1.0.0/16")) == nil {
		t.Errorf("B did not learn A's prefix over TCP")
	}
	if v := r1.CheckInvariants(); len(v) != 0 {
		t.Errorf("invariant violations over TCP transport: %v", v)
	}
}
